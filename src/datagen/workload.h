// Query workloads: randomly generated query points, averaged over a batch of
// queries exactly like the paper ("Each point in the graph is an average of
// the results for 100 queries").
#ifndef PVERIFY_DATAGEN_WORKLOAD_H_
#define PVERIFY_DATAGEN_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "core/query2d.h"
#include "uncertain/uncertain_object.h"

namespace pverify {
namespace datagen {

/// Uniformly random query points over [lo, hi].
std::vector<double> MakeQueryPoints(size_t count, double lo, double hi,
                                    uint64_t seed = 101);

/// Uniformly random 2-D query points over [lo, hi] × [lo, hi] — the
/// synthetic 2-D workload generator (pairs with MakeSynthetic2D).
std::vector<Point2> MakeQueryPoints2D(size_t count, double lo, double hi,
                                      uint64_t seed = 103);

/// Zipf-skewed hot-spot workload configuration. `num_hotspots` centers are
/// drawn uniformly over the domain from the same seed as the points, and
/// hotspot rank h is chosen with probability ∝ 1/(h+1)^exponent — the
/// classic Zipf law, so the hottest center absorbs a constant fraction of
/// all queries regardless of the hotspot count. Each query point scatters
/// around its chosen center with a Gaussian of stddev
/// `spread_fraction`·(hi − lo), clamped into the domain.
struct ZipfConfig {
  size_t num_hotspots = 16;
  double exponent = 1.0;          ///< 0 degenerates to uniform-over-hotspots
  double spread_fraction = 0.01;  ///< stddev as a fraction of the domain
};

/// Zipf-skewed query points over [lo, hi]. Models the repeated-hot-region
/// access pattern of real query logs: most queries probe a few small
/// regions (stressing the same candidate sets over and over), a long tail
/// probes everywhere.
std::vector<double> MakeQueryPointsZipf(size_t count, double lo, double hi,
                                        const ZipfConfig& config = {},
                                        uint64_t seed = 107);

/// 2-D counterpart of MakeQueryPointsZipf: hotspot centers are uniform over
/// the square, scatter is an isotropic Gaussian, both coordinates clamped.
std::vector<Point2> MakeQueryPointsZipf2D(size_t count, double lo, double hi,
                                          const ZipfConfig& config = {},
                                          uint64_t seed = 109);

/// Aggregated outcome of running a workload with one strategy.
struct WorkloadResult {
  QueryStats totals;          ///< accumulated stats (AccumulateInto)
  size_t queries = 0;
  size_t answers = 0;         ///< total number of returned object ids

  double AvgTotalMs() const { return queries ? totals.total_ms / queries : 0; }
  double AvgFilterMs() const {
    return queries ? totals.filter_ms / queries : 0;
  }
  double AvgInitMs() const { return queries ? totals.init_ms / queries : 0; }
  double AvgVerifyMs() const {
    return queries ? totals.verify_ms / queries : 0;
  }
  double AvgRefineMs() const {
    return queries ? totals.refine_ms / queries : 0;
  }
  double AvgCandidates() const {
    return queries ? static_cast<double>(totals.candidates) / queries : 0;
  }
  double FractionFinishedAfterVerify() const {
    return queries ? static_cast<double>(
                         totals.queries_finished_after_verify) /
                         queries
                   : 0;
  }
};

/// Runs every query point through the executor with the given options.
WorkloadResult RunWorkload(const CpnnExecutor& executor,
                           const std::vector<double>& query_points,
                           const QueryOptions& options);

/// Runs every 2-D query point through the executor with the given options
/// (the 2-D counterpart of RunWorkload).
WorkloadResult RunWorkload2D(const CpnnExecutor2D& executor,
                             const std::vector<Point2>& query_points,
                             const QueryOptions& options);

}  // namespace datagen
}  // namespace pverify

#endif  // PVERIFY_DATAGEN_WORKLOAD_H_
