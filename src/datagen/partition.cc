#include "datagen/partition.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/check.h"
#include "spatial/bounds.h"

namespace pverify {

namespace {

// splitmix64 finalizer: cheap, well-mixed, deterministic across platforms.
uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t HashShard(ObjectId id, size_t num_shards) {
  PV_CHECK_MSG(num_shards >= 1, "num_shards must be positive");
  return static_cast<size_t>(MixId(static_cast<uint64_t>(id)) % num_shards);
}

}  // namespace

size_t HashShardingPolicy::ShardOf(const UncertainObject& obj,
                                   size_t num_shards) const {
  return HashShard(obj.id(), num_shards);
}

size_t HashShardingPolicy::ShardOf2D(const UncertainObject2D& obj,
                                     size_t num_shards) const {
  return HashShard(obj.id(), num_shards);
}

RangeShardingPolicy::RangeShardingPolicy(double domain_lo, double domain_hi)
    : domain_lo_(domain_lo), domain_hi_(domain_hi) {
  PV_CHECK_MSG(domain_lo <= domain_hi, "domain_lo must not exceed domain_hi");
}

RangeShardingPolicy RangeShardingPolicy::ForDataset(const Dataset& dataset) {
  DomainBounds b = ComputeDomainBounds(dataset);
  if (b.empty()) return RangeShardingPolicy(0.0, 0.0);
  return RangeShardingPolicy(b.lo, b.hi);
}

RangeShardingPolicy RangeShardingPolicy::ForDataset2D(
    const Dataset2D& dataset) {
  ShardBounds2D b = ComputeShardBounds2D(dataset);
  if (b.empty()) return RangeShardingPolicy(0.0, 0.0);
  return RangeShardingPolicy(b.mbr.lo[0], b.mbr.hi[0]);
}

size_t RangeShardingPolicy::SlotOf(double mid, size_t num_shards) const {
  PV_CHECK_MSG(num_shards >= 1, "num_shards must be positive");
  const double width = domain_hi_ - domain_lo_;
  if (width <= 0.0) return 0;
  double slot = std::floor((mid - domain_lo_) / width *
                           static_cast<double>(num_shards));
  if (slot < 0.0) slot = 0.0;
  const double last = static_cast<double>(num_shards - 1);
  if (slot > last) slot = last;
  return static_cast<size_t>(slot);
}

size_t RangeShardingPolicy::ShardOf(const UncertainObject& obj,
                                    size_t num_shards) const {
  return SlotOf(0.5 * (obj.lo() + obj.hi()), num_shards);
}

size_t RangeShardingPolicy::ShardOf2D(const UncertainObject2D& obj,
                                      size_t num_shards) const {
  const Mbr<2> box = RegionMbr2D(obj);
  return SlotOf(0.5 * (box.lo[0] + box.hi[0]), num_shards);
}

std::vector<Dataset> PartitionDataset(const Dataset& dataset,
                                      size_t num_shards,
                                      const ShardingPolicy& policy) {
  PV_CHECK_MSG(num_shards >= 1, "num_shards must be positive");
  std::vector<Dataset> shards(num_shards);
  for (const UncertainObject& obj : dataset) {
    const size_t s = policy.ShardOf(obj, num_shards);
    PV_CHECK_MSG(s < num_shards, "policy returned an out-of-range shard");
    shards[s].push_back(obj);
  }
  return shards;
}

std::vector<Dataset2D> PartitionDataset2D(const Dataset2D& dataset,
                                          size_t num_shards,
                                          const ShardingPolicy& policy) {
  PV_CHECK_MSG(num_shards >= 1, "num_shards must be positive");
  std::vector<Dataset2D> shards(num_shards);
  for (const UncertainObject2D& obj : dataset) {
    const size_t s = policy.ShardOf2D(obj, num_shards);
    PV_CHECK_MSG(s < num_shards, "policy returned an out-of-range shard");
    shards[s].push_back(obj);
  }
  return shards;
}

}  // namespace pverify
