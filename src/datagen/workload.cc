#include "datagen/workload.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace pverify {
namespace datagen {

namespace {

/// Cumulative (unnormalized) Zipf weights: cum[h] = Σ_{r<=h} 1/(r+1)^s.
std::vector<double> ZipfCumulative(const ZipfConfig& config) {
  PV_CHECK_MSG(config.num_hotspots >= 1, "need at least one hotspot");
  std::vector<double> cum(config.num_hotspots);
  double acc = 0.0;
  for (size_t h = 0; h < config.num_hotspots; ++h) {
    acc += std::pow(static_cast<double>(h + 1), -config.exponent);
    cum[h] = acc;
  }
  return cum;
}

/// Draws a hotspot rank by inverting the cumulative weights.
size_t DrawRank(Rng& rng, const std::vector<double>& cum) {
  const double u = rng.Uniform(0.0, cum.back());
  return std::upper_bound(cum.begin(), cum.end(), u) - cum.begin();
}

}  // namespace

std::vector<double> MakeQueryPoints(size_t count, double lo, double hi,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<double> points(count);
  for (double& p : points) p = rng.Uniform(lo, hi);
  return points;
}

std::vector<Point2> MakeQueryPoints2D(size_t count, double lo, double hi,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2> points(count);
  for (Point2& p : points) {
    p.x = rng.Uniform(lo, hi);
    p.y = rng.Uniform(lo, hi);
  }
  return points;
}

std::vector<double> MakeQueryPointsZipf(size_t count, double lo, double hi,
                                        const ZipfConfig& config,
                                        uint64_t seed) {
  Rng rng(seed);
  const std::vector<double> cum = ZipfCumulative(config);
  // Centers first, from the same stream: one seed pins the whole workload.
  std::vector<double> centers(config.num_hotspots);
  for (double& c : centers) c = rng.Uniform(lo, hi);
  const double spread = config.spread_fraction * (hi - lo);
  std::vector<double> points(count);
  for (double& p : points) {
    const size_t rank = DrawRank(rng, cum);
    p = std::clamp(rng.Gaussian(centers[rank], spread), lo, hi);
  }
  return points;
}

std::vector<Point2> MakeQueryPointsZipf2D(size_t count, double lo, double hi,
                                          const ZipfConfig& config,
                                          uint64_t seed) {
  Rng rng(seed);
  const std::vector<double> cum = ZipfCumulative(config);
  std::vector<Point2> centers(config.num_hotspots);
  for (Point2& c : centers) {
    c.x = rng.Uniform(lo, hi);
    c.y = rng.Uniform(lo, hi);
  }
  const double spread = config.spread_fraction * (hi - lo);
  std::vector<Point2> points(count);
  for (Point2& p : points) {
    const size_t rank = DrawRank(rng, cum);
    p.x = std::clamp(rng.Gaussian(centers[rank].x, spread), lo, hi);
    p.y = std::clamp(rng.Gaussian(centers[rank].y, spread), lo, hi);
  }
  return points;
}

WorkloadResult RunWorkload2D(const CpnnExecutor2D& executor,
                             const std::vector<Point2>& query_points,
                             const QueryOptions& options) {
  WorkloadResult result;
  for (Point2 q : query_points) {
    QueryAnswer answer = executor.Execute(q, options);
    answer.stats.AccumulateInto(result.totals);
    result.answers += answer.ids.size();
    ++result.queries;
  }
  return result;
}

WorkloadResult RunWorkload(const CpnnExecutor& executor,
                           const std::vector<double>& query_points,
                           const QueryOptions& options) {
  WorkloadResult result;
  for (double q : query_points) {
    QueryAnswer answer = executor.Execute(q, options);
    answer.stats.AccumulateInto(result.totals);
    result.answers += answer.ids.size();
    ++result.queries;
  }
  return result;
}

}  // namespace datagen
}  // namespace pverify
