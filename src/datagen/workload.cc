#include "datagen/workload.h"

#include "common/rng.h"

namespace pverify {
namespace datagen {

std::vector<double> MakeQueryPoints(size_t count, double lo, double hi,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<double> points(count);
  for (double& p : points) p = rng.Uniform(lo, hi);
  return points;
}

std::vector<Point2> MakeQueryPoints2D(size_t count, double lo, double hi,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2> points(count);
  for (Point2& p : points) {
    p.x = rng.Uniform(lo, hi);
    p.y = rng.Uniform(lo, hi);
  }
  return points;
}

WorkloadResult RunWorkload2D(const CpnnExecutor2D& executor,
                             const std::vector<Point2>& query_points,
                             const QueryOptions& options) {
  WorkloadResult result;
  for (Point2 q : query_points) {
    QueryAnswer answer = executor.Execute(q, options);
    answer.stats.AccumulateInto(result.totals);
    result.answers += answer.ids.size();
    ++result.queries;
  }
  return result;
}

WorkloadResult RunWorkload(const CpnnExecutor& executor,
                           const std::vector<double>& query_points,
                           const QueryOptions& options) {
  WorkloadResult result;
  for (double q : query_points) {
    QueryAnswer answer = executor.Execute(q, options);
    answer.stats.AccumulateInto(result.totals);
    result.answers += answer.ids.size();
    ++result.queries;
  }
  return result;
}

}  // namespace datagen
}  // namespace pverify
