#include "datagen/workload.h"

#include "common/rng.h"

namespace pverify {
namespace datagen {

std::vector<double> MakeQueryPoints(size_t count, double lo, double hi,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<double> points(count);
  for (double& p : points) p = rng.Uniform(lo, hi);
  return points;
}

WorkloadResult RunWorkload(const CpnnExecutor& executor,
                           const std::vector<double>& query_points,
                           const QueryOptions& options) {
  WorkloadResult result;
  for (double q : query_points) {
    QueryAnswer answer = executor.Execute(q, options);
    answer.stats.AccumulateInto(result.totals);
    result.answers += answer.ids.size();
    ++result.queries;
  }
  return result;
}

}  // namespace datagen
}  // namespace pverify
