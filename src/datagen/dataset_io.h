// Text serialization of 1-D uncertain datasets.
//
// Format: one object per line. Three supported line shapes:
//   <lo> <hi>                          → uniform pdf on [lo, hi]
//   g <lo> <hi> [bars]                 → truncated Gaussian (paper defaults)
//   h <lo> <hi> <w_1> ... <w_n>        → histogram with n relative weights
// Lines starting with '#' are comments. Object ids are assigned 0..n−1 in
// file order. This is the format a user would produce from e.g. the Long
// Beach TIGER intervals the paper evaluates on.
#ifndef PVERIFY_DATAGEN_DATASET_IO_H_
#define PVERIFY_DATAGEN_DATASET_IO_H_

#include <iosfwd>
#include <string>

#include "uncertain/uncertain_object.h"

namespace pverify {
namespace datagen {

/// Parses a dataset from a stream. Throws std::logic_error with a
/// line-numbered message on malformed input.
Dataset ReadDataset(std::istream& in);

/// Loads a dataset from a file path.
Dataset LoadDataset(const std::string& path);

/// Writes a dataset in the same format (uniform pdfs as bare intervals,
/// everything else as histograms of bar masses). Histograms with
/// equal-width bars — everything the factories in pdf.h produce — round-trip
/// exactly; explicitly constructed unequal-width bars are re-gridded onto an
/// equal-width grid of the same bar count.
void WriteDataset(const Dataset& dataset, std::ostream& out);

/// Saves a dataset to a file path.
void SaveDataset(const Dataset& dataset, const std::string& path);

}  // namespace datagen
}  // namespace pverify

#endif  // PVERIFY_DATAGEN_DATASET_IO_H_
