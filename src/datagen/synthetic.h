// Synthetic dataset generators (paper §V-A).
//
// The paper's evaluation uses the Long Beach TIGER dataset: 53,144 intervals
// distributed in a 10K-unit x-dimension, treated as uncertainty regions with
// uniform pdfs. The census file is not available offline, so
// MakeLongBeachLike() synthesizes a dataset with the published summary
// statistics: the same cardinality and domain, clustered interval centers
// (road segments bunch up in urban blocks) and short, skewed interval
// lengths. Benchmarks validated that the resulting average candidate-set
// size at random query points is close to the paper's reported ~96.
#ifndef PVERIFY_DATAGEN_SYNTHETIC_H_
#define PVERIFY_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "uncertain/distance2d.h"
#include "uncertain/uncertain_object.h"

namespace pverify {
namespace datagen {

/// Which uncertainty pdf each generated object carries.
enum class PdfKind {
  kUniform,
  kGaussian,   ///< 300-bar truncated Gaussian (paper §V-B.5)
  kTriangular,
  kMixed,      ///< uniform / Gaussian / triangular round-robin
};

struct SyntheticConfig {
  size_t count = 53144;        ///< paper's Long Beach cardinality
  double domain_lo = 0.0;
  double domain_hi = 10000.0;  ///< paper's 10K-unit x-dimension
  /// Interval (uncertainty region) length scale. The default is calibrated
  /// so filtering at random query points leaves ≈96 candidates on average —
  /// the figure the paper reports for the Long Beach data.
  double mean_length = 16.5;
  double max_length = 200.0;
  double cluster_fraction = 0.7;  ///< objects placed inside clusters
  int num_clusters = 60;
  double cluster_stddev = 120.0;
  PdfKind pdf = PdfKind::kUniform;
  int gaussian_bars = 300;
  uint64_t seed = 7;
};

/// Generates a dataset following the config. Object ids are 0..count−1.
Dataset MakeSynthetic(const SyntheticConfig& config);

/// The default stand-in for the Long Beach dataset with the given pdf kind.
Dataset MakeLongBeachLike(PdfKind pdf = PdfKind::kUniform, uint64_t seed = 7);

/// Uniformly scattered intervals (used by the Fig. 9 size sweep).
Dataset MakeUniformScatter(size_t count, double domain_hi = 10000.0,
                           double mean_length = 1.2, uint64_t seed = 11);

/// 2-D synthetic dataset: uniform-pdf rectangles and circles scattered over
/// a square domain (for the 2-D extension examples/tests).
struct Synthetic2DConfig {
  size_t count = 2000;
  double domain = 1000.0;
  double mean_extent = 4.0;
  double max_extent = 40.0;
  double circle_fraction = 0.5;
  uint64_t seed = 13;
};
Dataset2D MakeSynthetic2D(const Synthetic2DConfig& config);

/// Clustered 2-D synthetic dataset: Gaussian clusters over the square
/// domain (MakeSynthetic2D is uniform scatter). Cluster centers default to
/// evenly spaced points along the domain diagonal — deterministic and
/// well-separated, so range (x-stripe) sharding keeps each cluster in its
/// own shard and bounds-based scatter pruning has teeth; pass explicit
/// `centers` to place them elsewhere. Each object picks a cluster uniformly
/// and scatters around its center with `cluster_stddev` Gaussian noise per
/// axis (clamped into the domain); extents follow the same skewed
/// (exponential) distribution as the uniform generator.
struct Synthetic2DClusteredConfig {
  size_t count = 2000;
  double domain = 10000.0;
  int num_clusters = 4;
  double cluster_stddev = 150.0;
  /// Explicit cluster centers; empty means evenly spaced on the diagonal
  /// (center i at domain * (i + 0.5) / num_clusters on both axes).
  std::vector<Point2> centers;
  double mean_extent = 6.0;
  double max_extent = 40.0;
  double circle_fraction = 0.5;
  uint64_t seed = 17;
};
Dataset2D MakeSynthetic2DClustered(const Synthetic2DClusteredConfig& config);

}  // namespace datagen
}  // namespace pverify

#endif  // PVERIFY_DATAGEN_SYNTHETIC_H_
