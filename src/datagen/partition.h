// Dataset partitioning for the sharded query engine.
//
// A ShardingPolicy maps each uncertain object — 1-D interval or 2-D region —
// to one of N shards; PartitionDataset / PartitionDataset2D materialize the
// per-shard datasets. Two built-in policies cover the two classic layouts:
// hash sharding (balanced, domain oblivious — every shard sees every query)
// and range sharding (spatial locality — bounds-based pruning lets most
// queries skip most shards). Either way the shard datasets are a disjoint
// cover of the input, which is all the scatter/gather engine needs for
// exact answers.
#ifndef PVERIFY_DATAGEN_PARTITION_H_
#define PVERIFY_DATAGEN_PARTITION_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "uncertain/distance2d.h"
#include "uncertain/uncertain_object.h"

namespace pverify {

/// Maps objects to shards. Implementations must be pure functions of the
/// object (stateless and thread-safe): the engine calls ShardOf concurrently
/// and relies on the assignment being reproducible.
class ShardingPolicy {
 public:
  virtual ~ShardingPolicy() = default;

  /// Shard index in [0, num_shards) for the 1-D object. num_shards >= 1.
  virtual size_t ShardOf(const UncertainObject& obj,
                         size_t num_shards) const = 0;

  /// Shard index in [0, num_shards) for the 2-D object. num_shards >= 1.
  virtual size_t ShardOf2D(const UncertainObject2D& obj,
                           size_t num_shards) const = 0;

  virtual std::string_view name() const = 0;
};

/// Hash sharding on the object id (splitmix64 finalizer) — balanced shard
/// sizes regardless of the id distribution or spatial layout, in any
/// dimensionality.
class HashShardingPolicy final : public ShardingPolicy {
 public:
  size_t ShardOf(const UncertainObject& obj,
                 size_t num_shards) const override;
  size_t ShardOf2D(const UncertainObject2D& obj,
                   size_t num_shards) const override;
  std::string_view name() const override { return "hash"; }
};

/// Range sharding on the region midpoint over a fixed domain: shard i
/// covers the i-th of num_shards equal-width slices of [domain_lo,
/// domain_hi] (midpoints outside the domain clamp to the end shards). Keeps
/// spatially close objects together, so per-shard bounds prune effectively.
/// 2-D objects are sliced along the x-axis by their bounding-box midpoint —
/// stripes, the 2-D analogue of interval ranges.
class RangeShardingPolicy final : public ShardingPolicy {
 public:
  RangeShardingPolicy(double domain_lo, double domain_hi);

  /// Policy over the dataset's own domain (degenerate when empty).
  static RangeShardingPolicy ForDataset(const Dataset& dataset);

  /// Policy over a 2-D dataset's own x-extent (degenerate when empty).
  static RangeShardingPolicy ForDataset2D(const Dataset2D& dataset);

  size_t ShardOf(const UncertainObject& obj,
                 size_t num_shards) const override;
  size_t ShardOf2D(const UncertainObject2D& obj,
                   size_t num_shards) const override;
  std::string_view name() const override { return "range"; }

 private:
  size_t SlotOf(double mid, size_t num_shards) const;

  double domain_lo_;
  double domain_hi_;
};

/// Splits the dataset into num_shards disjoint datasets by policy. Shards
/// preserve the input's relative object order; some may be empty.
std::vector<Dataset> PartitionDataset(const Dataset& dataset,
                                      size_t num_shards,
                                      const ShardingPolicy& policy);

/// 2-D counterpart of PartitionDataset (dispatches through ShardOf2D).
std::vector<Dataset2D> PartitionDataset2D(const Dataset2D& dataset,
                                          size_t num_shards,
                                          const ShardingPolicy& policy);

}  // namespace pverify

#endif  // PVERIFY_DATAGEN_PARTITION_H_
