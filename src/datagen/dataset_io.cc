#include "datagen/dataset_io.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"

namespace pverify {
namespace datagen {
namespace {

[[noreturn]] void ParseError(size_t line_no, const std::string& why) {
  std::ostringstream os;
  os << "dataset parse error at line " << line_no << ": " << why;
  throw std::logic_error(os.str());
}

}  // namespace

Dataset ReadDataset(std::istream& in) {
  Dataset dataset;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and blank lines.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;

    ObjectId id = static_cast<ObjectId>(dataset.size());
    if (first == "g") {
      double lo, hi;
      if (!(ls >> lo >> hi)) ParseError(line_no, "expected 'g <lo> <hi>'");
      int bars = 300;
      ls >> bars;  // optional
      if (hi <= lo) ParseError(line_no, "hi must exceed lo");
      if (bars < 1) ParseError(line_no, "bars must be positive");
      dataset.emplace_back(id, MakeGaussianPdf(lo, hi, bars));
    } else if (first == "h") {
      double lo, hi;
      if (!(ls >> lo >> hi)) {
        ParseError(line_no, "expected 'h <lo> <hi> <weights...>'");
      }
      if (hi <= lo) ParseError(line_no, "hi must exceed lo");
      std::vector<double> weights;
      double w;
      while (ls >> w) {
        if (w < 0.0) ParseError(line_no, "negative histogram weight");
        weights.push_back(w);
      }
      if (weights.empty()) {
        ParseError(line_no, "histogram needs at least one weight");
      }
      double total = 0.0;
      for (double v : weights) total += v;
      if (total <= 0.0) ParseError(line_no, "histogram has zero mass");
      dataset.emplace_back(id, MakeHistogramPdf(lo, hi, weights));
    } else {
      double lo, hi;
      std::istringstream pair(line);
      if (!(pair >> lo >> hi)) {
        ParseError(line_no, "expected '<lo> <hi>' or a 'g'/'h' record");
      }
      if (hi <= lo) ParseError(line_no, "hi must exceed lo");
      dataset.emplace_back(id, MakeUniformPdf(lo, hi));
    }
  }
  return dataset;
}

Dataset LoadDataset(const std::string& path) {
  std::ifstream in(path);
  PV_CHECK_MSG(in.good(), "cannot open dataset file: " + path);
  return ReadDataset(in);
}

void WriteDataset(const Dataset& dataset, std::ostream& out) {
  out << "# pverify dataset: " << dataset.size() << " objects\n";
  out.precision(17);
  for (const UncertainObject& obj : dataset) {
    const Pdf& pdf = obj.pdf();
    if (pdf.name() == "uniform") {
      out << pdf.lo() << ' ' << pdf.hi() << '\n';
      continue;
    }
    // Everything else round-trips exactly as a histogram of bar masses.
    // Non-equal-width bars are preserved by emitting per-bar masses over an
    // equal-width grid only when the grid matches; otherwise fall back to
    // explicit bars via repeated subdivision — for factory pdfs the grid is
    // always equal-width, so emit directly.
    out << "h " << pdf.lo() << ' ' << pdf.hi();
    const StepFunction& f = pdf.density();
    for (size_t i = 0; i < f.num_pieces(); ++i) {
      double mass = f.values()[i] * (f.breaks()[i + 1] - f.breaks()[i]);
      out << ' ' << mass;
    }
    out << '\n';
  }
}

void SaveDataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  PV_CHECK_MSG(out.good(), "cannot write dataset file: " + path);
  WriteDataset(dataset, out);
}

}  // namespace datagen
}  // namespace pverify
