#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pverify {
namespace datagen {
namespace {

Pdf MakeObjectPdf(PdfKind kind, double lo, double hi, int gaussian_bars,
                  size_t index) {
  switch (kind) {
    case PdfKind::kUniform:
      return MakeUniformPdf(lo, hi);
    case PdfKind::kGaussian:
      return MakeGaussianPdf(lo, hi, gaussian_bars);
    case PdfKind::kTriangular:
      return MakeTriangularPdf(lo, hi, 32);
    case PdfKind::kMixed:
      switch (index % 3) {
        case 0:
          return MakeUniformPdf(lo, hi);
        case 1:
          return MakeGaussianPdf(lo, hi, gaussian_bars);
        default:
          return MakeTriangularPdf(lo, hi, 32);
      }
  }
  return MakeUniformPdf(lo, hi);
}

}  // namespace

Dataset MakeSynthetic(const SyntheticConfig& config) {
  PV_CHECK_MSG(config.count > 0, "empty dataset requested");
  PV_CHECK_MSG(config.domain_hi > config.domain_lo, "bad domain");
  PV_CHECK_MSG(config.mean_length > 0.0, "bad mean length");
  Rng rng(config.seed);

  std::vector<double> cluster_centers;
  cluster_centers.reserve(config.num_clusters);
  for (int c = 0; c < config.num_clusters; ++c) {
    cluster_centers.push_back(rng.Uniform(config.domain_lo,
                                          config.domain_hi));
  }

  Dataset dataset;
  dataset.reserve(config.count);
  const double domain_w = config.domain_hi - config.domain_lo;
  for (size_t i = 0; i < config.count; ++i) {
    double center;
    if (!cluster_centers.empty() &&
        rng.Bernoulli(config.cluster_fraction)) {
      double c = cluster_centers[static_cast<size_t>(
          rng.UniformInt(0, config.num_clusters - 1))];
      center = rng.Gaussian(c, config.cluster_stddev);
    } else {
      center = rng.Uniform(config.domain_lo, config.domain_hi);
    }
    center = std::clamp(center, config.domain_lo, config.domain_hi);
    // Skewed (exponential) lengths: most uncertainty regions are short, a
    // few are long — the shape of road-segment extents.
    double len = std::min(config.max_length,
                          rng.Exponential(1.0 / config.mean_length));
    len = std::max(len, domain_w * 1e-9);  // keep regions non-degenerate
    double lo = std::max(config.domain_lo, center - 0.5 * len);
    double hi = std::min(config.domain_hi, lo + len);
    if (hi <= lo) {
      lo = std::max(config.domain_lo, hi - domain_w * 1e-9);
      hi = lo + domain_w * 1e-9;
    }
    dataset.emplace_back(
        static_cast<ObjectId>(i),
        MakeObjectPdf(config.pdf, lo, hi, config.gaussian_bars, i));
  }
  return dataset;
}

Dataset MakeLongBeachLike(PdfKind pdf, uint64_t seed) {
  SyntheticConfig config;
  config.pdf = pdf;
  config.seed = seed;
  return MakeSynthetic(config);
}

Dataset MakeUniformScatter(size_t count, double domain_hi, double mean_length,
                           uint64_t seed) {
  SyntheticConfig config;
  config.count = count;
  config.domain_hi = domain_hi;
  config.mean_length = mean_length;
  config.cluster_fraction = 0.0;
  config.num_clusters = 0;
  config.seed = seed;
  return MakeSynthetic(config);
}

Dataset2D MakeSynthetic2D(const Synthetic2DConfig& config) {
  PV_CHECK_MSG(config.count > 0, "empty dataset requested");
  Rng rng(config.seed);
  Dataset2D dataset;
  dataset.reserve(config.count);
  for (size_t i = 0; i < config.count; ++i) {
    double ext = std::min(config.max_extent,
                          std::max(0.25, rng.Exponential(
                                             1.0 / config.mean_extent)));
    double cx = rng.Uniform(0.0, config.domain);
    double cy = rng.Uniform(0.0, config.domain);
    if (rng.Bernoulli(config.circle_fraction)) {
      dataset.emplace_back(static_cast<ObjectId>(i),
                           Circle2{cx, cy, 0.5 * ext});
    } else {
      double w = ext;
      double h = std::min(config.max_extent,
                          std::max(0.25, rng.Exponential(
                                             1.0 / config.mean_extent)));
      dataset.emplace_back(
          static_cast<ObjectId>(i),
          Rect2{cx - 0.5 * w, cy - 0.5 * h, cx + 0.5 * w, cy + 0.5 * h});
    }
  }
  return dataset;
}

Dataset2D MakeSynthetic2DClustered(
    const Synthetic2DClusteredConfig& config) {
  PV_CHECK_MSG(config.count > 0, "empty dataset requested");
  PV_CHECK_MSG(config.domain > 0.0, "bad domain");
  PV_CHECK_MSG(config.num_clusters > 0 || !config.centers.empty(),
               "clustered dataset needs at least one cluster");
  std::vector<Point2> centers = config.centers;
  if (centers.empty()) {
    // Evenly spaced along the diagonal: deterministic, well separated.
    for (int c = 0; c < config.num_clusters; ++c) {
      const double at = config.domain * (c + 0.5) / config.num_clusters;
      centers.push_back({at, at});
    }
  }

  Rng rng(config.seed);
  Dataset2D dataset;
  dataset.reserve(config.count);
  for (size_t i = 0; i < config.count; ++i) {
    const Point2& center = centers[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(centers.size()) - 1))];
    double cx = std::clamp(rng.Gaussian(center.x, config.cluster_stddev),
                           0.0, config.domain);
    double cy = std::clamp(rng.Gaussian(center.y, config.cluster_stddev),
                           0.0, config.domain);
    double ext = std::min(config.max_extent,
                          std::max(0.25, rng.Exponential(
                                             1.0 / config.mean_extent)));
    if (rng.Bernoulli(config.circle_fraction)) {
      dataset.emplace_back(static_cast<ObjectId>(i),
                           Circle2{cx, cy, 0.5 * ext});
    } else {
      double w = ext;
      double h = std::min(config.max_extent,
                          std::max(0.25, rng.Exponential(
                                             1.0 / config.mean_extent)));
      dataset.emplace_back(
          static_cast<ObjectId>(i),
          Rect2{cx - 0.5 * w, cy - 0.5 * h, cx + 0.5 * w, cy + 0.5 * h});
    }
  }
  return dataset;
}

}  // namespace datagen
}  // namespace pverify
