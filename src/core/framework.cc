#include "core/framework.h"

#include "common/check.h"
#include "common/timer.h"
#include "core/scratch.h"

namespace pverify {

VerificationFramework::VerificationFramework(CandidateSet* candidates,
                                             CpnnParams params,
                                             QueryScratch* scratch)
    : candidates_(candidates), params_(params) {
  PV_CHECK_MSG(candidates_ != nullptr && !candidates_->empty(),
               "verification needs a non-empty candidate set");
  params_.Validate();
  if (scratch == nullptr) {
    owned_scratch_ = std::make_unique<QueryScratch>();
    scratch = owned_scratch_.get();
  }
  Timer timer;
  SubregionTable::BuildInto(*candidates_, &scratch->table);
  scratch->context.Reset(candidates_, &scratch->table);
  table_ = &scratch->table;
  ctx_ = &scratch->context;
  ++scratch->queries_served;
  init_ms_ = timer.ElapsedMs();
}

VerificationFramework::~VerificationFramework() = default;

VerificationStats VerificationFramework::Run(
    const std::vector<std::unique_ptr<Verifier>>& chain) {
  VerificationStats stats;
  stats.init_ms = init_ms_;
  size_t unknown = ClassifyAll(*candidates_, params_);
  for (const auto& verifier : chain) {
    if (unknown == 0) break;
    Timer timer;
    verifier->Apply(*ctx_);
    unknown = ClassifyAll(*candidates_, params_);
    StageStats stage;
    stage.name = std::string(verifier->name());
    stage.ms = timer.ElapsedMs();
    stage.unknown_after = unknown;
    for (const Candidate& c : candidates_->items()) {
      if (c.label == Label::kSatisfy) ++stage.satisfy_after;
      if (c.label == Label::kFail) ++stage.fail_after;
    }
    stats.stages.push_back(std::move(stage));
  }
  stats.unknown_after = unknown;
  return stats;
}

VerificationStats VerificationFramework::RunDefault() {
  return Run(MakeDefaultVerifierChain());
}

}  // namespace pverify
