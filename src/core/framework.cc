#include "core/framework.h"

#include "common/check.h"
#include "common/timer.h"

namespace pverify {

VerificationFramework::VerificationFramework(CandidateSet* candidates,
                                             CpnnParams params)
    : candidates_(candidates), params_(params) {
  PV_CHECK_MSG(candidates_ != nullptr && !candidates_->empty(),
               "verification needs a non-empty candidate set");
  params_.Validate();
  Timer timer;
  table_ = SubregionTable::Build(*candidates_);
  ctx_ = std::make_unique<VerificationContext>(candidates_, &table_);
  init_ms_ = timer.ElapsedMs();
}

VerificationStats VerificationFramework::Run(
    const std::vector<std::unique_ptr<Verifier>>& chain) {
  VerificationStats stats;
  stats.init_ms = init_ms_;
  size_t unknown = ClassifyAll(*candidates_, params_);
  for (const auto& verifier : chain) {
    if (unknown == 0) break;
    Timer timer;
    verifier->Apply(*ctx_);
    unknown = ClassifyAll(*candidates_, params_);
    StageStats stage;
    stage.name = std::string(verifier->name());
    stage.ms = timer.ElapsedMs();
    stage.unknown_after = unknown;
    for (const Candidate& c : candidates_->items()) {
      if (c.label == Label::kSatisfy) ++stage.satisfy_after;
      if (c.label == Label::kFail) ++stage.fail_after;
    }
    stats.stages.push_back(std::move(stage));
  }
  stats.unknown_after = unknown;
  return stats;
}

VerificationStats VerificationFramework::RunDefault() {
  return Run(MakeDefaultVerifierChain());
}

}  // namespace pverify
