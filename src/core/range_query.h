// Probabilistic range queries over 1-D uncertain objects.
//
// A probabilistic range query ([16] in the paper's related work) returns
// each object's probability of lying inside a query interval, optionally
// thresholded like the C-PNN. Unlike nearest-neighbor probabilities these
// are independent per object — two cdf lookups each — so no verifiers are
// needed; the value of the implementation is the shared R-tree filtering
// and the uniform constrained-query semantics.
#ifndef PVERIFY_CORE_RANGE_QUERY_H_
#define PVERIFY_CORE_RANGE_QUERY_H_

#include <vector>

#include "core/types.h"
#include "spatial/rtree.h"
#include "uncertain/uncertain_object.h"

namespace pverify {

struct RangeResult {
  ObjectId id = 0;
  double probability = 0.0;
};

/// Exact appearance probabilities P(X_i ∈ [lo, hi]) for every object whose
/// uncertainty region intersects the query interval, ascending by id.
/// Objects with zero overlap are omitted.
std::vector<RangeResult> EvaluateRangeQuery(const Dataset& dataset,
                                            double lo, double hi);

/// Thresholded variant: only objects with probability >= threshold.
std::vector<RangeResult> EvaluateRangeQuery(const Dataset& dataset,
                                            double lo, double hi,
                                            double threshold);

/// Index-accelerated evaluator for repeated range queries over a fixed
/// dataset.
class RangeQueryExecutor {
 public:
  explicit RangeQueryExecutor(const Dataset& dataset);

  /// Exact probabilities of all intersecting objects (ascending id).
  std::vector<RangeResult> Execute(double lo, double hi,
                                   double threshold = 0.0) const;

 private:
  const Dataset* dataset_;  // not owned
  RTree<1, uint32_t> rtree_;
};

}  // namespace pverify

#endif  // PVERIFY_CORE_RANGE_QUERY_H_
