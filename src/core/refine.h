// Incremental refinement (paper §IV-D).
//
// Candidates still unknown after verification have their per-subregion
// qualification probabilities computed exactly, one subregion at a time:
// after each integration the bound [q_ij.l, q_ij.u] collapses to the exact
// q_ij, the candidate's probability bound is refreshed and the classifier is
// consulted — so most candidates are decided long before every subregion is
// integrated, and each integration covers a subregion rather than the whole
// uncertainty region.
#ifndef PVERIFY_CORE_REFINE_H_
#define PVERIFY_CORE_REFINE_H_

#include <cstdint>

#include "core/verifier.h"

namespace pverify {

/// Quadrature configuration for exact probability computation.
struct IntegrationOptions {
  /// Gauss-Legendre nodes per integration segment (2, 4, 8 or 16).
  int gauss_points = 16;
  /// Extra splits per subregion; the integrand is a degree-(c_j − 1)
  /// polynomial inside a subregion, so one 16-node segment is exact up to
  /// c_j = 32 and additional splits keep larger candidate sets accurate.
  int splits_per_subregion = 2;
};

/// Order in which a candidate's subregions are refined.
enum class RefineOrder {
  /// Largest subregion probability s_ij first (collapses the widest bound
  /// slice first; the library default).
  kBySubregionProbability,
  /// Left-to-right e_0 → f_min (the natural sweep; kept for ablation).
  kLeftToRight,
};

/// Statistics of one refinement pass.
struct RefineStats {
  size_t refined_candidates = 0;    ///< candidates processed
  size_t subregion_integrations = 0;  ///< exact q_ij computations performed
  size_t subregions_available = 0;  ///< total subregions of those candidates
};

/// Exact conditional qualification probability q_ij of candidate i in
/// subregion j: (1/s_ij) ∫_{S_j} d_i(r) Π_{k≠i} (1 − D_k(r)) dr.
/// Requires s_ij > 0 and j < M−1 (the rightmost subregion is identically 0).
/// `cdf_gather`, if non-null, must hold |C| doubles and lends the batched
/// integrand its cdf-row scratch (see core/cdf_batch.h); null allocates a
/// local row per call.
double ExactSubregionProbability(const VerificationContext& ctx, size_t i,
                                 size_t j, const IntegrationOptions& options,
                                 double* cdf_gather = nullptr);

struct QueryScratch;

/// Runs incremental refinement over every still-unknown candidate. On
/// return no candidate is labeled kUnknown. A non-null `scratch` lends the
/// subregion-ordering workspace so repeated queries stop allocating.
RefineStats IncrementalRefine(VerificationContext& ctx,
                              const CpnnParams& params,
                              const IntegrationOptions& options,
                              RefineOrder order =
                                  RefineOrder::kBySubregionProbability,
                              QueryScratch* scratch = nullptr);

}  // namespace pverify

#endif  // PVERIFY_CORE_REFINE_H_
