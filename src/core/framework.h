// The verification framework (paper Fig. 5): initialization, the verifier →
// classifier loop with early exit, and per-stage statistics used to
// reproduce Fig. 12.
#ifndef PVERIFY_CORE_FRAMEWORK_H_
#define PVERIFY_CORE_FRAMEWORK_H_

#include <memory>
#include <vector>

#include "core/classifier.h"
#include "core/stats.h"
#include "core/subregion.h"
#include "core/verifier.h"

namespace pverify {

struct QueryScratch;

/// Runs the verifier → classifier loop for one query: builds (or, with a
/// QueryScratch, rebuilds in place) the subregion table and verification
/// context, then applies a verifier chain with classification after every
/// stage.
class VerificationFramework {
 public:
  /// Builds the subregion table for the candidate set (initialization step).
  /// The candidate set must stay alive for the framework's lifetime.
  ///
  /// When `scratch` is non-null its table/context buffers are reused in
  /// place (no allocation once warm) and must outlive the framework; when
  /// null the framework owns fresh state, which is the seed's
  /// allocate-per-query behavior.
  VerificationFramework(CandidateSet* candidates, CpnnParams params,
                        QueryScratch* scratch = nullptr);
  ~VerificationFramework();

  /// Runs the verifiers in order, classifying after each; stops as soon as
  /// no candidate is unknown. Verifiers are skipped entirely once all
  /// candidates are decided (the paper: "it is not always necessary for all
  /// verifiers to be executed").
  VerificationStats Run(const std::vector<std::unique_ptr<Verifier>>& chain);

  /// Runs the paper's default chain {RS, L-SR, U-SR}.
  VerificationStats RunDefault();

  VerificationContext& context() { return *ctx_; }
  const SubregionTable& table() const { return *table_; }
  const CpnnParams& params() const { return params_; }

 private:
  CandidateSet* candidates_;  // not owned
  CpnnParams params_;
  /// Fallback state, allocated only when no scratch was supplied.
  std::unique_ptr<QueryScratch> owned_scratch_;
  SubregionTable* table_ = nullptr;        // into the scratch
  VerificationContext* ctx_ = nullptr;     // into the scratch
  double init_ms_ = 0.0;
};

}  // namespace pverify

#endif  // PVERIFY_CORE_FRAMEWORK_H_
