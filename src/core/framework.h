// The verification framework (paper Fig. 5): initialization, the verifier →
// classifier loop with early exit, and per-stage statistics used to
// reproduce Fig. 12.
#ifndef PVERIFY_CORE_FRAMEWORK_H_
#define PVERIFY_CORE_FRAMEWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/subregion.h"
#include "core/verifier.h"

namespace pverify {

/// Outcome of one verifier stage.
struct StageStats {
  std::string name;
  double ms = 0.0;
  size_t unknown_after = 0;
  size_t satisfy_after = 0;
  size_t fail_after = 0;
};

/// Outcome of the whole verification phase.
struct VerificationStats {
  double init_ms = 0.0;  ///< subregion-table construction
  std::vector<StageStats> stages;
  size_t unknown_after = 0;  ///< candidates left for refinement
};

/// Owns the subregion table and verification context for one query and runs
/// a verifier chain with classification after every stage.
class VerificationFramework {
 public:
  /// Builds the subregion table for the candidate set (initialization step).
  /// The candidate set must stay alive for the framework's lifetime.
  VerificationFramework(CandidateSet* candidates, CpnnParams params);

  /// Runs the verifiers in order, classifying after each; stops as soon as
  /// no candidate is unknown. Verifiers are skipped entirely once all
  /// candidates are decided (the paper: "it is not always necessary for all
  /// verifiers to be executed").
  VerificationStats Run(const std::vector<std::unique_ptr<Verifier>>& chain);

  /// Runs the paper's default chain {RS, L-SR, U-SR}.
  VerificationStats RunDefault();

  VerificationContext& context() { return *ctx_; }
  const SubregionTable& table() const { return table_; }
  const CpnnParams& params() const { return params_; }

 private:
  CandidateSet* candidates_;  // not owned
  CpnnParams params_;
  SubregionTable table_;
  std::unique_ptr<VerificationContext> ctx_;
  double init_ms_ = 0.0;
};

}  // namespace pverify

#endif  // PVERIFY_CORE_FRAMEWORK_H_
