// Multi-versioned SIMD kernel surface for the verifier chain.
//
// Every runtime-dispatched vector kernel lives behind a table of raw-pointer
// entry points so the whole set can be compiled more than once for different
// ISAs and selected per host. The kernel TU (core/simd_kernels.cc) always
// builds a `base` flavor with the build's default ISA; configuring with
// -DPVERIFY_MULTIARCH=ON compiles the SAME source a second time at
// -march=PVERIFY_SIMD_ARCH into the `arch` flavor, and ActiveKernels()
// (core/simd.cc) picks between them once per call via cpuid — one release
// artifact serves both baseline and wide-vector fleets.
//
// The signatures are deliberately raw pointers + sizes: the kernel TU must
// stay almost header-free so the -march copy emits no out-of-line inline
// functions shared with baseline TUs (the classic fat-binary ODR trap).
// Numerics contract per kernel is noted inline: "bit-identical" kernels
// perform lane-independent arithmetic identical across flavors and to the
// scalar reference; "reduction" kernels may reassociate (a few ULP).
#ifndef PVERIFY_CORE_SIMD_KERNELS_H_
#define PVERIFY_CORE_SIMD_KERNELS_H_

#include <cstddef>

namespace pverify {
namespace simdkern {

/// Mirrors SubregionTable::kEps (static_assert'd in subregion.cc): the
/// participation mask of the pass-B merges.
inline constexpr double kMassEps = 1e-15;

/// Mirrors SubregionTable::DivideOutSafe's factor floor (static_assert'd in
/// subregion.cc): lanes below it take the scalar direct-product fallback.
inline constexpr double kDivideOutMin = 1e-8;

struct KernelTable {
  /// Flavor name for telemetry/tests: "baseline" or the -march target.
  const char* flavor;

  /// Eq. 4 masked bound accumulation over one candidate's s/qlow/qup rows
  /// (sum reduction — may reassociate).
  void (*accumulate_bound)(const double* s_row, const double* ql_row,
                           const double* qu_row, size_t m, double* lower_out,
                           double* upper_out);

  /// L-SR pass A: candidate q_ij.l = min(1, y_j/(1−D_i(e_j)))/c_j into
  /// tmp[0..last) for every numerically safe lane (bit-identical per lane);
  /// returns the FP-domain count of unsafe lanes the caller must fix up.
  double (*lsr_pass_a)(const double* cdf_row, const double* y, const int* cnt,
                       double* tmp, size_t last);
  /// L-SR pass B: participation-masked max-merge of tmp into the qlow row
  /// (bit-identical).
  void (*lsr_pass_b)(const double* s_row, const double* tmp, double* ql,
                     size_t last);

  /// U-SR pass A: prod[j] = divide-out Π_{k≠i}(1 − D_k(e_j)) for j < m
  /// (bit-identical per safe lane); returns the unsafe-lane count — the
  /// caller fixes prod up BEFORE pass B consumes it.
  double (*usr_pass_a)(const double* cdf_row, const double* y, double* prod,
                       size_t m);
  /// U-SR pass B: Eq. 5 blend ½(prod[j+1] + prod[j]) min-merged into the
  /// qup row, masked by participation (bit-identical).
  void (*usr_pass_b)(const double* s_row, const double* prod, double* qu,
                     size_t last);

  /// Π_{k≠skip}(1 − cdfs[k]) over n gathered cdf values — the batched
  /// distance-cdf product of the exact-integration paths (product
  /// reduction — may reassociate).
  double (*product_one_minus_excluding)(const double* cdfs, size_t n,
                                        size_t skip);

  /// y[j] *= 1 − cdf_row[j] for j < count — the subregion table's Y_j
  /// accumulation (independent lanes — bit-identical).
  void (*multiply_one_minus_into)(double* y, const double* cdf_row,
                                  size_t count);
};

namespace base {
extern const KernelTable kTable;
}  // namespace base

#if defined(PVERIFY_MULTIARCH)
namespace arch {
extern const KernelTable kTable;
}  // namespace arch
#endif

}  // namespace simdkern

/// The flavor serving this host: `arch` when the binary carries it, the CPU
/// supports it and it is not overridden (see SetArchKernelsEnabled /
/// PVERIFY_KERNEL_ARCH=baseline), `base` otherwise. Defined in core/simd.cc.
const simdkern::KernelTable& ActiveKernels();

}  // namespace pverify

#endif  // PVERIFY_CORE_SIMD_KERNELS_H_
