#include "core/range_query.h"

#include <algorithm>

#include "common/check.h"
#include "spatial/mbr.h"

namespace pverify {
namespace {

void AppendIfQualifies(const UncertainObject& obj, double lo, double hi,
                       double threshold, std::vector<RangeResult>* out) {
  double p = obj.pdf().ProbIn(lo, hi);
  if (p > 0.0 && p >= threshold) {
    out->push_back(RangeResult{obj.id(), p});
  }
}

}  // namespace

std::vector<RangeResult> EvaluateRangeQuery(const Dataset& dataset, double lo,
                                            double hi) {
  return EvaluateRangeQuery(dataset, lo, hi, 0.0);
}

std::vector<RangeResult> EvaluateRangeQuery(const Dataset& dataset, double lo,
                                            double hi, double threshold) {
  PV_CHECK_MSG(hi >= lo, "empty range");
  std::vector<RangeResult> out;
  for (const UncertainObject& obj : dataset) {
    AppendIfQualifies(obj, lo, hi, threshold, &out);
  }
  std::sort(out.begin(), out.end(),
            [](const RangeResult& a, const RangeResult& b) {
              return a.id < b.id;
            });
  return out;
}

RangeQueryExecutor::RangeQueryExecutor(const Dataset& dataset)
    : dataset_(&dataset) {
  std::vector<RTree<1, uint32_t>::Entry> entries;
  entries.reserve(dataset.size());
  for (uint32_t i = 0; i < dataset.size(); ++i) {
    entries.push_back({MakeInterval(dataset[i].lo(), dataset[i].hi()), i});
  }
  rtree_ = RTree<1, uint32_t>::BulkLoadSTR(std::move(entries));
}

std::vector<RangeResult> RangeQueryExecutor::Execute(double lo, double hi,
                                                     double threshold) const {
  PV_CHECK_MSG(hi >= lo, "empty range");
  std::vector<RangeResult> out;
  for (uint32_t idx : rtree_.CollectIntersecting(MakeInterval(lo, hi))) {
    AppendIfQualifies((*dataset_)[idx], lo, hi, threshold, &out);
  }
  std::sort(out.begin(), out.end(),
            [](const RangeResult& a, const RangeResult& b) {
              return a.id < b.id;
            });
  return out;
}

}  // namespace pverify
