// Per-query execution statistics, mirroring the phase breakdown the paper
// reports (filtering / verification / refinement, Fig. 11) plus verifier
// stage outcomes (Fig. 12). Deliberately free of heavyweight includes so
// that higher layers (the engine, benches) can consume stats without
// pulling in the verification machinery.
#ifndef PVERIFY_CORE_STATS_H_
#define PVERIFY_CORE_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace pverify {

/// Outcome of one verifier stage.
struct StageStats {
  std::string name;
  double ms = 0.0;
  size_t unknown_after = 0;
  size_t satisfy_after = 0;
  size_t fail_after = 0;
};

/// Outcome of the whole verification phase.
struct VerificationStats {
  double init_ms = 0.0;  ///< subregion-table construction
  std::vector<StageStats> stages;
  size_t unknown_after = 0;  ///< candidates left for refinement
};

struct QueryStats {
  // Phase timings (milliseconds).
  double filter_ms = 0.0;
  double init_ms = 0.0;    ///< distance pdfs/cdfs + subregion table
  double verify_ms = 0.0;  ///< verifier chain + classification
  double refine_ms = 0.0;  ///< incremental refinement / exact integration
  double total_ms = 0.0;

  // Sizes.
  size_t dataset_size = 0;
  size_t candidates = 0;       ///< |C| after filtering
  size_t num_subregions = 0;   ///< M

  // Verification outcome.
  VerificationStats verification;
  size_t unknown_after_verification = 0;
  bool finished_after_verification = false;

  // Refinement outcome.
  size_t refined_candidates = 0;
  size_t subregion_integrations = 0;

  /// True when this result was served from a CachingEngine's memo instead
  /// of being recomputed. The phase timings above then describe the
  /// execution that originally produced the cached result.
  bool served_from_cache = false;

  void AccumulateInto(QueryStats& total) const {
    total.filter_ms += filter_ms;
    total.init_ms += init_ms;
    total.verify_ms += verify_ms;
    total.refine_ms += refine_ms;
    total.total_ms += total_ms;
    total.dataset_size += dataset_size;
    total.candidates += candidates;
    total.num_subregions += num_subregions;
    total.unknown_after_verification += unknown_after_verification;
    total.refined_candidates += refined_candidates;
    total.subregion_integrations += subregion_integrations;
    // Folding a per-query stats adds the flag; folding an accumulator (as
    // EngineStats merging does) adds its running counter.
    total.queries_finished_after_verify += queries_finished_after_verify;
    if (finished_after_verification) ++total.queries_finished_after_verify;
  }

  // Aggregation helper (only meaningful on an accumulator object).
  size_t queries_finished_after_verify = 0;
};

}  // namespace pverify

#endif  // PVERIFY_CORE_STATS_H_
