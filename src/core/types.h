// Shared value types for C-PNN evaluation (paper §III-A, Definition 1).
#ifndef PVERIFY_CORE_TYPES_H_
#define PVERIFY_CORE_TYPES_H_

#include <algorithm>
#include <string_view>

#include "common/check.h"

namespace pverify {

/// Classification state of a candidate during verification (paper §III-B).
enum class Label {
  kUnknown,  ///< bounds are not yet conclusive
  kSatisfy,  ///< provably part of the C-PNN answer
  kFail,     ///< provably not part of the answer
};

inline std::string_view ToString(Label label) {
  switch (label) {
    case Label::kUnknown:
      return "unknown";
    case Label::kSatisfy:
      return "satisfy";
    case Label::kFail:
      return "fail";
  }
  return "?";
}

/// The constraint parameters of a C-PNN: threshold P ∈ (0,1] and tolerance
/// Δ ∈ [0,1].
struct CpnnParams {
  double threshold = 0.3;
  double tolerance = 0.01;

  void Validate() const {
    PV_CHECK_MSG(threshold > 0.0 && threshold <= 1.0,
                 "threshold P must be in (0, 1]");
    PV_CHECK_MSG(tolerance >= 0.0 && tolerance <= 1.0,
                 "tolerance must be in [0, 1]");
  }
};

/// A closed interval [lower, upper] known to contain a qualification
/// probability. Verifiers only ever tighten it.
struct ProbabilityBound {
  double lower = 0.0;
  double upper = 1.0;

  double width() const { return upper - lower; }

  /// Intersects with [l, u]; keeps the tighter side of each bound. Small
  /// numerical crossings (lower slightly above upper) are snapped together.
  void Tighten(double l, double u) {
    lower = std::max(lower, l);
    upper = std::min(upper, u);
    if (lower > upper) {
      // Valid bounds can only cross through floating-point noise; collapse
      // to the midpoint to stay a legal interval.
      double mid = 0.5 * (lower + upper);
      lower = upper = mid;
    }
  }

  bool Contains(double p, double slack = 1e-9) const {
    return p >= lower - slack && p <= upper + slack;
  }
};

}  // namespace pverify

#endif  // PVERIFY_CORE_TYPES_H_
