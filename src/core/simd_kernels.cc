// Bodies of the runtime-dispatched vector kernels (see simd_kernels.h).
//
// This TU is compiled once per kernel flavor: always as `base` with the
// build's default ISA, and — under PVERIFY_MULTIARCH — a second time with
// -DPVERIFY_KERNEL_FLAVOR_ARCH and -march=PVERIFY_SIMD_ARCH as `arch`.
// Both copies live in one binary; core/simd.cc's ActiveKernels() selects by
// cpuid. To keep the twice-compiled code from emitting weak (comdat)
// symbols that the linker could then pick from the wrong ISA copy, this
// file includes no inline-heavy project headers — only core/simd.h (macros
// plus a constexpr) and simd_kernels.h (a pure declaration surface). Even
// std::min is spelled as a ternary for that reason.
//
// Numerics: every kernel is written so the per-lane arithmetic matches the
// scalar reference operation for operation; only the reduction kernels
// (accumulate_bound, product_one_minus_excluding) may reassociate when the
// PV_SIMD pragmas are live. The GCC 12 if-converter rules from the verifier
// TUs carry over verbatim: FP-domain fallback counters, blended divisors,
// and one comparison mask per loop.
#include "core/simd_kernels.h"

#include <cstddef>

#include "core/simd.h"

#if defined(PVERIFY_KERNEL_FLAVOR_ARCH)
#define PV_KERNEL_NS arch
#else
#define PV_KERNEL_NS base
#endif

namespace pverify {
namespace simdkern {
namespace PV_KERNEL_NS {

namespace {

#if defined(PVERIFY_KERNEL_FLAVOR_ARCH) && defined(PVERIFY_MULTIARCH_CPU)
constexpr const char kFlavorName[] = PVERIFY_MULTIARCH_CPU;
#else
constexpr const char kFlavorName[] = "baseline";
#endif

}  // namespace

/// Eq. 4 masked accumulation (from verifier_common.cc). Masked-out terms
/// contribute +0.0 — cannot change a non-negative running sum — so with the
/// pragma compiled out this is bit-identical to the scalar skip-on-mask
/// reference; with it live the only divergence is reassociation.
void AccumulateBound(const double* s_row, const double* ql_row,
                     const double* qu_row, size_t m, double* lower_out,
                     double* upper_out) {
  double lower = 0.0;
  double upper = 0.0;
  PV_SIMD_REDUCE(+ : lower, upper)
  for (size_t j = 0; j < m; ++j) {
    const double sij = s_row[j];
    const bool mass = sij > kMassEps;
    lower += mass ? sij * ql_row[j] : 0.0;
    upper += mass ? sij * qu_row[j] : 0.0;
  }
  *lower_out = lower;
  *upper_out = upper;
}

/// L-SR pass A (from verifier_lsr.cc): candidate q_ij.l for every
/// numerically safe lane into the scratch row. Blended divisors keep masked
/// lanes on 1/1 instead of tripping on factor ≈ 0 or c_j = 0; a c_j = 0
/// lane is by definition non-participating, so the inf it produces is never
/// consumed. The fallback counter intentionally counts *every* unsafe lane
/// (participating or not; the caller's fix-up re-filters) and stays in the
/// FP domain — a mixed bool/int reduction de-vectorizes under GCC 12.
double LsrPassA(const double* cdf_row, const double* y, const int* cnt,
                double* tmp, size_t last) {
  double fallback = 0.0;
  PV_SIMD_REDUCE(+ : fallback)
  for (size_t j = 0; j < last; ++j) {
    const double factor = 1.0 - cdf_row[j];
    const bool safe = factor > kDivideOutMin && y[j] > 0.0;
    const double ratio = y[j] / (safe ? factor : 1.0);
    const double pr_e = ratio < 1.0 ? ratio : 1.0;  // std::min(1.0, ratio)
    const double cj = safe ? static_cast<double>(cnt[j]) : 1.0;
    tmp[j] = safe ? pr_e / cj : 0.0;
    fallback += safe ? 0.0 : 1.0;
  }
  return fallback;
}

/// L-SR pass B (from verifier_lsr.cc): participation-masked max-merge of
/// the scratch row into the qlow row. Unsafe lanes hold 0.0 and can never
/// beat a slot (slots start at 0), so they fall through to the caller's
/// scalar fix-up.
void LsrPassB(const double* s_row, const double* tmp, double* ql,
              size_t last) {
  PV_SIMD
  for (size_t j = 0; j < last; ++j) {
    const bool upd = s_row[j] > kMassEps && tmp[j] > ql[j];
    ql[j] = upd ? tmp[j] : ql[j];
  }
}

/// U-SR pass A (from verifier_usr.cc): prod[j] = Π_{k≠i}(1 − D_k(e_j)) by
/// divide-out for every safe lane, placeholder for the rest. Returns the
/// FP-domain unsafe count; the caller must fix unsafe lanes up before pass
/// B consumes prod.
double UsrPassA(const double* cdf_row, const double* y, double* prod,
                size_t m) {
  double fallback = 0.0;
  PV_SIMD_REDUCE(+ : fallback)
  for (size_t j = 0; j < m; ++j) {
    const double factor = 1.0 - cdf_row[j];
    const bool safe = factor > kDivideOutMin && y[j] > 0.0;
    const double ratio = y[j] / (safe ? factor : 1.0);
    prod[j] = ratio < 1.0 ? ratio : 1.0;  // std::min(1.0, ratio)
    fallback += safe ? 0.0 : 1.0;
  }
  return fallback;
}

/// U-SR pass B (from verifier_usr.cc): Eq. 5 blend ½(prod[j+1] + prod[j])
/// min-merged into the qup row, masked by participation. The operand order
/// pr_f + pr_e matches the scalar path, so used lanes are bit-identical.
void UsrPassB(const double* s_row, const double* prod, double* qu,
              size_t last) {
  PV_SIMD
  for (size_t j = 0; j < last; ++j) {
    const bool part = s_row[j] > kMassEps;
    const double qup = 0.5 * (prod[j + 1] + prod[j]);
    qu[j] = part && qup < qu[j] ? qup : qu[j];
  }
}

/// Π_{k≠skip}(1 − cdfs[k]) over a gathered row of distance-cdf values —
/// the inner product of the exact-integration integrands (basic.cc,
/// refine.cc, knn.cc). The excluded lane is blended to a factor of exactly
/// 1.0, which is exact under multiplication, so with the pragma compiled
/// out this matches the scalar skip-loop bit for bit; with it live the
/// product may reassociate. Pass skip >= n to exclude nothing.
double ProductOneMinusExcluding(const double* cdfs, size_t n, size_t skip) {
  double v = 1.0;
  PV_SIMD_REDUCE(* : v)
  for (size_t k = 0; k < n; ++k) {
    v *= k == skip ? 1.0 : 1.0 - cdfs[k];
  }
  return v;
}

/// y[j] *= 1 − cdf_row[j] (from subregion.cc's Y_j build loop). Lanes are
/// independent — bit-identical across flavors and to the scalar loop.
void MultiplyOneMinusInto(double* y, const double* cdf_row, size_t count) {
  PV_SIMD
  for (size_t j = 0; j < count; ++j) {
    y[j] *= 1.0 - cdf_row[j];
  }
}

const KernelTable kTable = {
    kFlavorName,    AccumulateBound,         LsrPassA, LsrPassB,
    UsrPassA,       UsrPassB,                ProductOneMinusExcluding,
    MultiplyOneMinusInto,
};

}  // namespace PV_KERNEL_NS
}  // namespace simdkern
}  // namespace pverify
