// The Rightmost-Subregion (RS) verifier — paper §IV-B.
//
// Any candidate whose distance falls beyond f_min cannot be the nearest
// neighbor (some object's far point equals f_min), so the probability mass a
// candidate places in the rightmost subregion S_M = [f_min, f_max] bounds
// its qualification probability from above: p_i.u <= 1 − s_iM (Lemma 1).
#include "core/verifier.h"

namespace pverify {

void RsVerifier::Apply(VerificationContext& ctx) {
  const SubregionTable& tbl = *ctx.table;
  const size_t m = tbl.num_subregions();
  CandidateSet& cands = *ctx.candidates;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].label != Label::kUnknown) continue;
    const double s_im = tbl.s(i, m - 1);
    cands[i].bound.Tighten(0.0, 1.0 - s_im);
  }
}

}  // namespace pverify
