// The Rightmost-Subregion (RS) verifier — paper §IV-B.
//
// Any candidate whose distance falls beyond f_min cannot be the nearest
// neighbor (some object's far point equals f_min), so the probability mass a
// candidate places in the rightmost subregion S_M = [f_min, f_max] bounds
// its qualification probability from above: p_i.u <= 1 − s_iM (Lemma 1).
#include "core/verifier.h"

namespace pverify {

// RS stays scalar even in SIMD builds: it reads one strided column of the
// s-table (a gather) and runs branchy Tighten once per candidate — O(|C|)
// with no inner subregion loop, so there is nothing for lanes to share.
void RsVerifier::Apply(VerificationContext& ctx) {
  const SubregionTable& tbl = *ctx.table;
  const size_t m = tbl.num_subregions();
  CandidateSet& cands = *ctx.candidates;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].label != Label::kUnknown) continue;
    const double s_im = tbl.SRow(i)[m - 1];
    cands[i].bound.Tighten(0.0, 1.0 - s_im);
  }
}

}  // namespace pverify
