// Page-partitioned layout of the subregion lists (paper §IV-D: "We store
// the subregion probabilities (s_ij) and the distance cdf values (D_i(e_j))
// for all objects in the same subregion as a list. These lists are indexed
// by a hash table... It can be extended to a disk-based structure by
// partitioning the lists into disk pages.").
//
// This module implements that disk layout faithfully in memory: each
// subregion's (candidate, s_ij, D_i(e_j)) entries are packed into
// fixed-size pages, a directory maps subregion → page range, and every page
// access is counted — so the I/O behaviour of a disk-resident deployment
// can be measured without an actual disk (see DESIGN.md, substitution
// rules). Verifier passes can run directly against the store.
#ifndef PVERIFY_CORE_SUBREGION_STORE_H_
#define PVERIFY_CORE_SUBREGION_STORE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/subregion.h"

namespace pverify {

/// One (candidate, s_ij, D_i(e_j)) record of a subregion list.
struct SubregionEntry {
  uint32_t candidate = 0;  ///< index into the candidate set
  double s = 0.0;          ///< s_ij
  double cdf = 0.0;        ///< D_i(e_j)
};

class PagedSubregionStore {
 public:
  struct Options {
    /// Page capacity in bytes; entries never straddle a page boundary.
    size_t page_bytes = 4096;
  };

  /// Packs the table's per-subregion lists into pages. Only candidates with
  /// s_ij > 0 appear in subregion j's list (the paper's list layout).
  static PagedSubregionStore Build(const SubregionTable& table,
                                   const Options& options);

  /// Build with default options (4 KiB pages).
  static PagedSubregionStore Build(const SubregionTable& table) {
    return Build(table, Options{});
  }

  size_t num_subregions() const { return directory_.size(); }
  size_t num_pages() const { return pages_.size(); }
  size_t entries_per_page() const { return entries_per_page_; }

  /// Total bytes of page storage (pages × page size).
  size_t StorageBytes() const { return pages_.size() * page_bytes_; }

  /// Number of entries in subregion j's list (== c_j of the table).
  size_t ListLength(size_t j) const;

  /// Visits every entry of subregion j, charging one page read per page
  /// touched.
  void ForEachEntry(size_t j,
                    const std::function<void(const SubregionEntry&)>& fn)
      const;

  /// Pages read since construction / the last ResetCounters().
  size_t page_reads() const { return page_reads_; }
  void ResetCounters() { page_reads_ = 0; }

 private:
  struct PageRange {
    uint32_t first_page = 0;
    uint32_t num_entries = 0;
  };

  std::vector<PageRange> directory_;          // one per subregion
  std::vector<std::vector<SubregionEntry>> pages_;
  size_t page_bytes_ = 4096;
  size_t entries_per_page_ = 0;
  mutable size_t page_reads_ = 0;
};

/// Runs an RS-equivalent pass against the paged store: for each candidate,
/// upper bound = 1 − s_iM read from the rightmost subregion's list. Returns
/// the per-candidate upper bounds. Demonstrates (and lets benches measure)
/// verifier I/O against the disk layout.
std::vector<double> RsUpperBoundsFromStore(const PagedSubregionStore& store,
                                           size_t num_candidates);

}  // namespace pverify

#endif  // PVERIFY_CORE_SUBREGION_STORE_H_
