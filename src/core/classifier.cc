#include "core/classifier.h"

namespace pverify {

Label Classify(const ProbabilityBound& bound, const CpnnParams& params) {
  if (bound.upper < params.threshold) return Label::kFail;
  if (bound.lower >= params.threshold ||
      bound.width() <= params.tolerance) {
    return Label::kSatisfy;
  }
  return Label::kUnknown;
}

size_t ClassifyAll(CandidateSet& candidates, const CpnnParams& params) {
  size_t unknown = 0;
  for (Candidate& c : candidates.items()) {
    if (c.label != Label::kUnknown) continue;
    c.label = Classify(c.bound, params);
    if (c.label == Label::kUnknown) ++unknown;
  }
  return unknown;
}

}  // namespace pverify
