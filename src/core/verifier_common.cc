#include <algorithm>

#include "core/simd.h"
#include "core/simd_kernels.h"
#include "core/verifier.h"

namespace pverify {
namespace {

/// Seed implementation of the Eq. 4 accumulation, kept verbatim as the
/// scalar reference: skip-on-mask, strictly sequential sums. The vectorized
/// flavor (branch-free masked accumulation) lives in core/simd_kernels.cc
/// as the `accumulate_bound` table entry.
void AccumulateBoundScalar(const double* s_row, const double* ql_row,
                           const double* qu_row, size_t m, double* lower_out,
                           double* upper_out) {
  double lower = 0.0;
  double upper = 0.0;
  for (size_t j = 0; j < m; ++j) {
    const double sij = s_row[j];
    if (sij <= SubregionTable::kEps) continue;
    lower += sij * ql_row[j];
    upper += sij * qu_row[j];
  }
  *lower_out = lower;
  *upper_out = upper;
}

inline void RefreshOne(VerificationContext& ctx, size_t i, size_t m,
                       bool simd) {
  const SubregionTable& tbl = *ctx.table;
  double lower, upper;
  if (simd) {
    ActiveKernels().accumulate_bound(tbl.SRow(i), ctx.QLowRow(i),
                                     ctx.QUpRow(i), m, &lower, &upper);
  } else {
    AccumulateBoundScalar(tbl.SRow(i), ctx.QLowRow(i), ctx.QUpRow(i), m,
                          &lower, &upper);
  }
  // The subregion probabilities of a proper distance distribution sum to 1,
  // but guard against discretization residue pushing the sums out of range.
  lower = std::min(1.0, std::max(0.0, lower));
  upper = std::min(1.0, std::max(lower, upper));
  (*ctx.candidates)[i].bound.Tighten(lower, upper);
}

}  // namespace

void VerificationContext::RefreshBound(size_t i) {
  RefreshOne(*this, i, table->num_subregions(), SimdKernelsEnabled());
}

void VerificationContext::RefreshAllBounds() {
  const size_t m = table->num_subregions();
  const bool simd = SimdKernelsEnabled();
  CandidateSet& cands = *candidates;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].label != Label::kUnknown) continue;
    RefreshOne(*this, i, m, simd);
  }
}

std::vector<std::unique_ptr<Verifier>> MakeDefaultVerifierChain() {
  std::vector<std::unique_ptr<Verifier>> chain;
  chain.push_back(std::make_unique<RsVerifier>());
  chain.push_back(std::make_unique<LsrVerifier>());
  chain.push_back(std::make_unique<UsrVerifier>());
  return chain;
}

}  // namespace pverify
