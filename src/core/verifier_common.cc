#include "core/verifier.h"

namespace pverify {

void VerificationContext::RefreshBound(size_t i) {
  const SubregionTable& tbl = *table;
  const size_t m = tbl.num_subregions();
  double lower = 0.0;
  double upper = 0.0;
  for (size_t j = 0; j < m; ++j) {
    const double sij = tbl.s(i, j);
    if (sij <= SubregionTable::kEps) continue;
    lower += sij * QLow(i, j);
    upper += sij * QUp(i, j);
  }
  // The subregion probabilities of a proper distance distribution sum to 1,
  // but guard against discretization residue pushing the sums out of range.
  lower = std::min(1.0, std::max(0.0, lower));
  upper = std::min(1.0, std::max(lower, upper));
  (*candidates)[i].bound.Tighten(lower, upper);
}

std::vector<std::unique_ptr<Verifier>> MakeDefaultVerifierChain() {
  std::vector<std::unique_ptr<Verifier>> chain;
  chain.push_back(std::make_unique<RsVerifier>());
  chain.push_back(std::make_unique<LsrVerifier>());
  chain.push_back(std::make_unique<UsrVerifier>());
  return chain;
}

}  // namespace pverify
