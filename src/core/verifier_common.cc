#include <algorithm>

#include "core/simd.h"
#include "core/verifier.h"

namespace pverify {
namespace {

/// Seed implementation of the Eq. 4 accumulation, kept verbatim as the
/// scalar reference: skip-on-mask, strictly sequential sums.
void AccumulateBoundScalar(const double* s_row, const double* ql_row,
                           const double* qu_row, size_t m, double* lower_out,
                           double* upper_out) {
  double lower = 0.0;
  double upper = 0.0;
  for (size_t j = 0; j < m; ++j) {
    const double sij = s_row[j];
    if (sij <= SubregionTable::kEps) continue;
    lower += sij * ql_row[j];
    upper += sij * qu_row[j];
  }
  *lower_out = lower;
  *upper_out = upper;
}

/// Vectorized flavor: branch-free masked accumulation so every lane does
/// the same work. Masked-out terms contribute +0.0, which cannot change a
/// non-negative running sum, so with the pragma compiled out this is
/// bit-identical to the scalar reference; with it live the only divergence
/// is the reduction's reassociation (a few ULP).
void AccumulateBoundSimd(const double* s_row, const double* ql_row,
                         const double* qu_row, size_t m, double* lower_out,
                         double* upper_out) {
  double lower = 0.0;
  double upper = 0.0;
  PV_SIMD_REDUCE(+ : lower, upper)
  for (size_t j = 0; j < m; ++j) {
    const double sij = s_row[j];
    const bool mass = sij > SubregionTable::kEps;
    lower += mass ? sij * ql_row[j] : 0.0;
    upper += mass ? sij * qu_row[j] : 0.0;
  }
  *lower_out = lower;
  *upper_out = upper;
}

inline void RefreshOne(VerificationContext& ctx, size_t i, size_t m,
                       bool simd) {
  const SubregionTable& tbl = *ctx.table;
  double lower, upper;
  if (simd) {
    AccumulateBoundSimd(tbl.SRow(i), ctx.QLowRow(i), ctx.QUpRow(i), m, &lower,
                        &upper);
  } else {
    AccumulateBoundScalar(tbl.SRow(i), ctx.QLowRow(i), ctx.QUpRow(i), m,
                          &lower, &upper);
  }
  // The subregion probabilities of a proper distance distribution sum to 1,
  // but guard against discretization residue pushing the sums out of range.
  lower = std::min(1.0, std::max(0.0, lower));
  upper = std::min(1.0, std::max(lower, upper));
  (*ctx.candidates)[i].bound.Tighten(lower, upper);
}

}  // namespace

void VerificationContext::RefreshBound(size_t i) {
  RefreshOne(*this, i, table->num_subregions(), SimdKernelsEnabled());
}

void VerificationContext::RefreshAllBounds() {
  const size_t m = table->num_subregions();
  const bool simd = SimdKernelsEnabled();
  CandidateSet& cands = *candidates;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].label != Label::kUnknown) continue;
    RefreshOne(*this, i, m, simd);
  }
}

std::vector<std::unique_ptr<Verifier>> MakeDefaultVerifierChain() {
  std::vector<std::unique_ptr<Verifier>> chain;
  chain.push_back(std::make_unique<RsVerifier>());
  chain.push_back(std::make_unique<LsrVerifier>());
  chain.push_back(std::make_unique<UsrVerifier>());
  return chain;
}

}  // namespace pverify
