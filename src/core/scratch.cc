#include "core/scratch.h"

namespace pverify {

size_t QueryScratch::ApproxBytes() const {
  return table.ApproxBytes() +
         candidates.ApproxBytes() +
         context.qlow.capacity() * sizeof(double) +
         context.qup.capacity() * sizeof(double) +
         context.prod.capacity() * sizeof(double) +
         refine_order.capacity() * sizeof(size_t) +
         cdf_gather.capacity() * sizeof(double);
}

}  // namespace pverify
