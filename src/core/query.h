// The C-PNN query executor: ties together filtering, verification and
// refinement (paper Fig. 3) and exposes the three evaluation strategies
// compared in §V plus a Monte-Carlo baseline.
#ifndef PVERIFY_CORE_QUERY_H_
#define PVERIFY_CORE_QUERY_H_

#include <optional>
#include <string_view>
#include <vector>

#include "core/basic.h"
#include "core/knn.h"
#include "core/monte_carlo.h"
#include "core/refine.h"
#include "core/stats.h"
#include "spatial/filter.h"
#include "uncertain/uncertain_object.h"

namespace pverify {

struct QueryScratch;

/// How a C-PNN is evaluated.
enum class Strategy {
  kBasic,       ///< exact probabilities for every candidate ([5]'s formula)
  kRefine,      ///< incremental refinement only (no verifiers)
  kVR,          ///< verifiers + incremental refinement (the paper's method)
  kMonteCarlo,  ///< sampling baseline ([9]-style)
};

std::string_view ToString(Strategy s);

struct QueryOptions {
  CpnnParams params;
  Strategy strategy = Strategy::kVR;
  IntegrationOptions integration;
  RefineOrder refine_order = RefineOrder::kBySubregionProbability;
  MonteCarloOptions monte_carlo;
  /// When true, the answer carries each candidate's probability information
  /// (exact for kBasic/kMonteCarlo; final bounds otherwise).
  bool report_probabilities = false;
};

/// One returned object with its probability information.
struct AnswerEntry {
  ObjectId id = 0;
  ProbabilityBound bound;  ///< zero-width when the probability is exact
};

struct QueryAnswer {
  /// IDs of objects satisfying the C-PNN, ascending.
  std::vector<ObjectId> ids;
  QueryStats stats;
  /// Probability info for every candidate (not just answers); populated when
  /// QueryOptions::report_probabilities is set.
  std::vector<AnswerEntry> candidate_probabilities;
};

/// Executor over a fixed 1-D dataset; builds the R-tree once, then serves
/// any number of queries.
class CpnnExecutor {
 public:
  explicit CpnnExecutor(Dataset dataset);

  const Dataset& dataset() const { return dataset_; }

  /// Evaluates a C-PNN at query point q. A non-null `scratch` lends
  /// reusable verification buffers (see engine/scratch.h); answers are
  /// identical either way.
  QueryAnswer Execute(double q, const QueryOptions& options,
                      QueryScratch* scratch = nullptr) const;

  /// Plain PNN: exact qualification probability of every candidate
  /// (id, probability), ascending by id. Objects pruned by filtering have
  /// probability 0 and are omitted.
  std::vector<std::pair<ObjectId, double>> ComputePnn(
      double q, const IntegrationOptions& integration = {}) const;

  /// Runs only the filtering phase (exposed for benchmarks/tests).
  FilterResult Filter(double q) const { return filter_.Filter(q); }

  /// Constrained probabilistic k-NN (the §VI extension): k-th-far-point
  /// filtering, RS-style bound verification, progressive Poisson-binomial
  /// refinement.
  CknnAnswer ExecuteKnn(double q, int k, const CpnnParams& params,
                        const IntegrationOptions& integration = {}) const;

  /// Minimum query: objects likely to hold the smallest value. A PNN with
  /// q = −∞ (paper §I); evaluated at a query point below every region.
  QueryAnswer ExecuteMin(const QueryOptions& options,
                         QueryScratch* scratch = nullptr) const;

  /// Maximum query: objects likely to hold the largest value (q = +∞).
  QueryAnswer ExecuteMax(const QueryOptions& options,
                         QueryScratch* scratch = nullptr) const;

 private:
  Dataset dataset_;
  PnnFilter filter_;
  double domain_lo_ = 0.0;  ///< smallest region endpoint in the dataset
  double domain_hi_ = 0.0;  ///< largest region endpoint in the dataset
};

/// Evaluates a C-PNN over an already-built candidate set (no filtering).
/// This is the entry point for the 2-D pipeline and for tests that
/// construct distance distributions directly. A non-null `scratch` lends
/// reusable verification buffers.
QueryAnswer ExecuteOnCandidates(CandidateSet candidates,
                                const QueryOptions& options,
                                QueryScratch* scratch = nullptr);

}  // namespace pverify

#endif  // PVERIFY_CORE_QUERY_H_
