#include "core/subregion_store.h"

#include <algorithm>

#include "common/check.h"

namespace pverify {

PagedSubregionStore PagedSubregionStore::Build(const SubregionTable& table,
                                               const Options& options) {
  PV_CHECK_MSG(options.page_bytes >= sizeof(SubregionEntry),
               "page must hold at least one entry");
  PagedSubregionStore store;
  store.page_bytes_ = options.page_bytes;
  store.entries_per_page_ = options.page_bytes / sizeof(SubregionEntry);

  const size_t m = table.num_subregions();
  const size_t n = table.num_candidates();
  store.directory_.resize(m);
  for (size_t j = 0; j < m; ++j) {
    PageRange& range = store.directory_[j];
    range.first_page = static_cast<uint32_t>(store.pages_.size());
    std::vector<SubregionEntry> current;
    current.reserve(store.entries_per_page_);
    uint32_t count = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!table.Participates(i, j)) continue;
      current.push_back(SubregionEntry{static_cast<uint32_t>(i),
                                       table.s(i, j), table.cdf(i, j)});
      ++count;
      if (current.size() == store.entries_per_page_) {
        store.pages_.push_back(std::move(current));
        current.clear();
        current.reserve(store.entries_per_page_);
      }
    }
    if (!current.empty()) store.pages_.push_back(std::move(current));
    range.num_entries = count;
  }
  return store;
}

size_t PagedSubregionStore::ListLength(size_t j) const {
  PV_CHECK_MSG(j < directory_.size(), "subregion index out of range");
  return directory_[j].num_entries;
}

void PagedSubregionStore::ForEachEntry(
    size_t j,
    const std::function<void(const SubregionEntry&)>& fn) const {
  PV_CHECK_MSG(j < directory_.size(), "subregion index out of range");
  const PageRange& range = directory_[j];
  size_t remaining = range.num_entries;
  size_t page = range.first_page;
  while (remaining > 0) {
    ++page_reads_;
    const std::vector<SubregionEntry>& entries = pages_[page];
    for (const SubregionEntry& e : entries) {
      fn(e);
    }
    PV_DCHECK(entries.size() <= remaining);
    remaining -= entries.size();
    ++page;
  }
}

std::vector<double> RsUpperBoundsFromStore(const PagedSubregionStore& store,
                                           size_t num_candidates) {
  std::vector<double> upper(num_candidates, 1.0);
  const size_t m = store.num_subregions();
  if (m == 0) return upper;
  store.ForEachEntry(m - 1, [&upper](const SubregionEntry& e) {
    if (e.candidate < upper.size()) upper[e.candidate] = 1.0 - e.s;
  });
  return upper;
}

}  // namespace pverify
