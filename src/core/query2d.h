// First-class 2-D C-PNN execution: the paper's §IV-A extension hook made
// concrete. The executor owns a 2-D R-tree for filtering, converts surviving
// regions into distance distributions via exact geometry, and feeds them to
// the same verification/refinement machinery as the 1-D case.
//
// The stages — filter → distance distributions → verification — are the
// shared core pipeline (PnnFilter2D, CandidateSet::Build2D,
// ExecuteOnCandidates), so the engine layer hosts 2-D point requests
// natively: a QueryEngine routes QueryKind::kPoint2D through this executor
// with its per-worker QueryScratch, and the scratch's candidate arena makes
// the per-query distribution allocations disappear.
#ifndef PVERIFY_CORE_QUERY2D_H_
#define PVERIFY_CORE_QUERY2D_H_

#include <utility>
#include <vector>

#include "core/query.h"
#include "uncertain/distance2d.h"

namespace pverify {

/// Executor over a fixed 2-D dataset of uniform-pdf rectangles and disks.
class CpnnExecutor2D {
 public:
  /// `radial_pieces` controls the resolution of the radial-cdf
  /// discretization (per object, per query).
  explicit CpnnExecutor2D(Dataset2D dataset, int radial_pieces = 64);

  const Dataset2D& dataset() const { return dataset_; }
  int radial_pieces() const { return radial_pieces_; }

  /// Evaluates a C-PNN at query point q. A non-null `scratch` lends
  /// reusable candidate/verification buffers (see engine/scratch.h);
  /// answers are bit-identical either way.
  QueryAnswer Execute(Point2 q, const QueryOptions& options,
                      QueryScratch* scratch = nullptr) const;

  /// Exact qualification probability of every candidate (id, probability).
  std::vector<std::pair<ObjectId, double>> ComputePnn(
      Point2 q, const IntegrationOptions& integration = {}) const;

  /// Constrained probabilistic k-NN at a 2-D query point: k-th-far-point
  /// filtering over exact region distances, then the same RS-style bound +
  /// progressive Poisson-binomial refinement as the 1-D ExecuteKnn (the
  /// radial distance distributions plug straight into the k-NN verifier
  /// machinery).
  CknnAnswer ExecuteKnn(Point2 q, int k, const CpnnParams& params,
                        const IntegrationOptions& integration = {}) const;

  /// Filtering phase only.
  FilterResult Filter(Point2 q) const { return filter_.Filter(q); }

 private:
  /// Filter + distance-distribution stages: the candidate set the
  /// verification stage runs on.
  CandidateSet BuildCandidates(Point2 q, QueryScratch* scratch = nullptr)
      const;

  Dataset2D dataset_;
  PnnFilter2D filter_;
  int radial_pieces_;
};

}  // namespace pverify

#endif  // PVERIFY_CORE_QUERY2D_H_
