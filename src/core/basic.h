// The Basic evaluation method (paper §V-A): computes exact qualification
// probabilities for the whole candidate set by numerically integrating
//
//   p_i = ∫_{n_i}^{min(f_i, f_min)} d_i(r) · Π_{k≠i} (1 − D_k(r)) dr
//
// with the formula of Cheng et al. [5]. This is the expensive baseline the
// verifiers are designed to avoid; it also powers the plain (unconstrained)
// PNN API, which reports every candidate's probability.
#ifndef PVERIFY_CORE_BASIC_H_
#define PVERIFY_CORE_BASIC_H_

#include <vector>

#include "core/candidate.h"
#include "core/refine.h"

namespace pverify {

/// Exact qualification probability of candidate i (index into the set).
double ExactQualificationProbability(const CandidateSet& candidates, size_t i,
                                     const IntegrationOptions& options);

/// Exact qualification probabilities of every candidate, in set order.
/// The probabilities of a full candidate set sum to 1 (up to quadrature
/// error) — a property the tests assert.
std::vector<double> ComputeExactProbabilities(
    const CandidateSet& candidates, const IntegrationOptions& options);

}  // namespace pverify

#endif  // PVERIFY_CORE_BASIC_H_
