// Subregion machinery (paper §IV-A, Fig. 7, Table II).
//
// End-points are the sorted union of: every candidate's near point, every
// distance-pdf change point below f_min, and finally f_min and f_max. The
// adjacent end-point pairs form subregions S_1..S_M; the rightmost subregion
// S_M = [f_min, f_max] is never subdivided. Because a distance-pdf change
// point is always an end-point, every candidate's distance pdf is constant
// inside each subregion below f_min — the property that makes Lemma 3's
// symmetry argument (and hence the L-SR/U-SR bounds) sound.
//
// For each candidate i and subregion j the table stores the subregion
// probability s_ij = P(R_i ∈ S_j) and the cdf value D_i(e_j); it also
// precomputes the per-subregion participant counts c_j and the products
// Y_j = Π_k (1 − D_k(e_j)) used by the verifiers (Eq. 2).
//
// Storage is row-major SoA: one contiguous row per candidate, rows padded
// to cache-line multiples and the buffers 64-byte aligned (common/aligned.h)
// so the verifier kernels stream each row with unit stride.
#ifndef PVERIFY_CORE_SUBREGION_H_
#define PVERIFY_CORE_SUBREGION_H_

#include <cstddef>
#include <vector>

#include "common/aligned.h"
#include "core/candidate.h"

namespace pverify {

class SubregionTable {
 public:
  SubregionTable() = default;

  /// Builds the table for the candidate set. Requires a non-empty set.
  static SubregionTable Build(const CandidateSet& candidates);

  /// Rebuilds `*table` in place for a new candidate set, reusing its
  /// existing buffer capacity. This is the allocation-free hot path used by
  /// the engine's per-worker QueryScratch; Build() is a fresh-table wrapper.
  static void BuildInto(const CandidateSet& candidates, SubregionTable* table);

  /// Number of subregions M (>= 1). Subregion indices are 0-based: the
  /// rightmost subregion of the paper (S_M) is index M-1 here.
  size_t num_subregions() const { return m_; }

  size_t num_candidates() const { return n_; }

  /// j-th end-point e_j, j ∈ [0, M]. endpoint(M-1) == f_min,
  /// endpoint(M) == f_max (they coincide when the rightmost subregion is
  /// degenerate).
  double endpoint(size_t j) const { return endpoints_[j]; }

  double fmin() const { return endpoints_[m_ - 1]; }
  double fmax() const { return endpoints_[m_]; }

  /// Subregion probability s_ij = P(R_i ∈ S_j).
  double s(size_t i, size_t j) const { return s_[i * s_stride_ + j]; }

  /// Distance cdf value D_i(e_j), j ∈ [0, M].
  double cdf(size_t i, size_t j) const { return cdf_[i * cdf_stride_ + j]; }

  /// c_j: number of candidates with s_ij > 0.
  int count(size_t j) const { return count_[j]; }

  /// Y_j = Π_{k} (1 − D_k(e_j)) over all candidates (factors of 1 for
  /// candidates with D_k(e_j) = 0), j ∈ [0, M].
  double Y(size_t j) const { return y_[j]; }

  /// Raw rows for the SoA kernels. Each row starts on a cache line; entries
  /// past the logical row length (M for s, M+1 for cdf) are padding zeros.
  const double* SRow(size_t i) const { return s_.data() + i * s_stride_; }
  const double* CdfRow(size_t i) const { return cdf_.data() + i * cdf_stride_; }
  const double* YData() const { return y_.data(); }
  const int* CountData() const { return count_.data(); }
  /// The M+1 sorted end-points as a contiguous row (for batched cdf
  /// evaluation against the same points the table was built with).
  const double* EndpointData() const { return endpoints_.data(); }

  /// Π_{k ≠ i} (1 − D_k(e_j)): the Pr(E)-style product used by L-SR
  /// (Lemma 2) and U-SR (Eq. 5). Computed by dividing i's factor out of Y_j,
  /// with a direct-product fallback when the factor is too small to divide
  /// by safely.
  double ProductExcluding(size_t i, size_t j) const;

  /// True when s_ij is (numerically) positive.
  bool Participates(size_t i, size_t j) const {
    return s(i, j) > kEps;
  }

  static constexpr double kEps = 1e-15;

  /// Divide-out fast path of ProductExcluding: safe when i's factor is not
  /// too small to divide by and Y_j has not underflowed. The kernels use
  /// this predicate to mask vector lanes and fall back to the scalar
  /// direct product on the rest.
  static bool DivideOutSafe(double factor, double yj) {
    return factor > 1e-8 && yj > 0.0;
  }

  /// Approximate heap footprint of the table's buffers (capacity, not
  /// size). Used by QueryScratch to assert allocation reuse in tests.
  size_t ApproxBytes() const {
    return endpoints_.capacity() * sizeof(double) +
           s_.capacity() * sizeof(double) + cdf_.capacity() * sizeof(double) +
           count_.capacity() * sizeof(int) + y_.capacity() * sizeof(double);
  }

 private:
  size_t n_ = 0;  // number of candidates
  size_t m_ = 0;  // number of subregions M
  size_t s_stride_ = 0;    // padded row length of s_ (>= M)
  size_t cdf_stride_ = 0;  // padded row length of cdf_ (>= M+1)
  std::vector<double> endpoints_;   // M+1 entries; last two may coincide
  AlignedVector<double> s_;    // n rows × s_stride_, logical width M
  AlignedVector<double> cdf_;  // n rows × cdf_stride_, logical width M+1
  AlignedVector<int> count_;   // M
  AlignedVector<double> y_;    // M+1
};

}  // namespace pverify

#endif  // PVERIFY_CORE_SUBREGION_H_
