#include "core/refine.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/integrate.h"
#include "core/cdf_batch.h"
#include "core/classifier.h"
#include "core/scratch.h"

namespace pverify {

double ExactSubregionProbability(const VerificationContext& ctx, size_t i,
                                 size_t j, const IntegrationOptions& options,
                                 double* cdf_gather) {
  const SubregionTable& tbl = *ctx.table;
  PV_CHECK_MSG(j + 1 < tbl.num_subregions() || tbl.num_subregions() == 1,
               "the rightmost subregion needs no integration");
  const double sij = tbl.s(i, j);
  PV_CHECK_MSG(sij > SubregionTable::kEps,
               "q_ij undefined when s_ij is zero");
  const CandidateSet& cands = *ctx.candidates;
  std::vector<double> local_row;
  if (cdf_gather == nullptr) {
    local_row.resize(cands.size());
    cdf_gather = local_row.data();
  }
  const double a = tbl.endpoint(j);
  const double b = tbl.endpoint(j + 1);
  const int splits = std::max(1, options.splits_per_subregion);
  double integral = 0.0;
  double prev = a;
  for (int s = 1; s <= splits; ++s) {
    double next = a + (b - a) * s / splits;
    integral += GaussLegendre(
        [&cands, i, cdf_gather](double r) {
          return NnProductIntegrand(cands, i, r, cdf_gather);
        },
        prev, next, options.gauss_points);
    prev = next;
  }
  return std::clamp(integral / sij, 0.0, 1.0);
}

RefineStats IncrementalRefine(VerificationContext& ctx,
                              const CpnnParams& params,
                              const IntegrationOptions& options,
                              RefineOrder order, QueryScratch* scratch) {
  RefineStats stats;
  const SubregionTable& tbl = *ctx.table;
  const size_t m = tbl.num_subregions();
  CandidateSet& cands = *ctx.candidates;

  // Subregion-ordering and cdf-gather workspaces, shared across candidates
  // (and across queries when a scratch lends them).
  std::vector<size_t> local_js;
  std::vector<size_t>& js = scratch ? scratch->refine_order : local_js;
  std::vector<double> local_gather;
  std::vector<double>& gather = scratch ? scratch->cdf_gather : local_gather;
  gather.resize(cands.size());

  for (size_t i = 0; i < cands.size(); ++i) {
    Candidate& cand = cands[i];
    if (cand.label != Label::kUnknown) continue;
    ++stats.refined_candidates;

    // Subregions with mass for this candidate, excluding the rightmost.
    // The candidate's SoA rows are hoisted once; the collapse loop below
    // rewrites single entries of them, and each RefreshBound re-runs the
    // (vectorizable) Eq. 4 kernel over the full contiguous rows.
    const double* s_row = tbl.SRow(i);
    double* ql_row = ctx.QLowRow(i);
    double* qu_row = ctx.QUpRow(i);
    js.clear();
    for (size_t j = 0; j + 1 < m; ++j) {
      if (s_row[j] > SubregionTable::kEps) js.push_back(j);
    }
    stats.subregions_available += js.size();
    if (order == RefineOrder::kBySubregionProbability) {
      std::stable_sort(js.begin(), js.end(), [&](size_t a, size_t b) {
        return s_row[a] > s_row[b];
      });
    }

    for (size_t j : js) {
      double q = ExactSubregionProbability(ctx, i, j, options, gather.data());
      ++stats.subregion_integrations;
      ql_row[j] = q;
      qu_row[j] = q;
      ctx.RefreshBound(i);
      cand.label = Classify(cand.bound, params);
      if (cand.label != Label::kUnknown) break;
    }
    if (cand.label == Label::kUnknown) {
      // All subregions are exact now; the bound has collapsed to the exact
      // probability and Definition 1 always decides a zero-width bound.
      cand.label = Classify(cand.bound, params);
      PV_DCHECK(cand.label != Label::kUnknown);
    }
  }
  return stats;
}

}  // namespace pverify
