#include "core/query2d.h"

#include <algorithm>

#include "common/check.h"
#include "common/timer.h"
#include "core/basic.h"
#include "core/scratch.h"

namespace pverify {

CpnnExecutor2D::CpnnExecutor2D(Dataset2D dataset, int radial_pieces)
    : dataset_(std::move(dataset)),
      filter_(dataset_),
      radial_pieces_(radial_pieces) {
  PV_CHECK_MSG(radial_pieces_ >= 4, "radial cdf needs at least 4 pieces");
}

CandidateSet CpnnExecutor2D::BuildCandidates(Point2 q,
                                             QueryScratch* scratch) const {
  FilterResult filtered = filter_.Filter(q);
  return CandidateSet::Build2D(
      dataset_, filtered.candidates, q, radial_pieces_, /*k=*/1,
      scratch != nullptr ? &scratch->candidates : nullptr);
}

QueryAnswer CpnnExecutor2D::Execute(Point2 q, const QueryOptions& options,
                                    QueryScratch* scratch) const {
  Timer total;
  Timer t;
  CandidateSet candidates = BuildCandidates(q, scratch);
  double build_ms = t.ElapsedMs();
  QueryAnswer answer =
      ExecuteOnCandidates(std::move(candidates), options, scratch);
  answer.stats.init_ms += build_ms;
  answer.stats.dataset_size = dataset_.size();
  answer.stats.total_ms = total.ElapsedMs();
  return answer;
}

CknnAnswer CpnnExecutor2D::ExecuteKnn(Point2 q, int k,
                                      const CpnnParams& params,
                                      const IntegrationOptions& integration)
    const {
  FilterResult filtered = FilterKByScan2D(dataset_, q, k);
  CandidateSet candidates = CandidateSet::Build2D(
      dataset_, filtered.candidates, q, radial_pieces_, k);
  return EvaluateCknn(candidates, k, params, integration);
}

std::vector<std::pair<ObjectId, double>> CpnnExecutor2D::ComputePnn(
    Point2 q, const IntegrationOptions& integration) const {
  CandidateSet candidates = BuildCandidates(q);
  std::vector<std::pair<ObjectId, double>> result;
  if (candidates.empty()) return result;
  std::vector<double> probs =
      ComputeExactProbabilities(candidates, integration);
  result.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    result.emplace_back(candidates[i].id, probs[i]);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace pverify
