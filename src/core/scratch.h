// Reusable per-query verification state (the engine's zero-allocation hot
// path).
//
// Every C-PNN evaluation needs a subregion table, an n×M pair of
// per-subregion bound arrays and a refinement ordering workspace. Built
// fresh per query (the seed behavior) these dominate the allocation profile
// of a high-throughput workload; a QueryScratch owns them once and the core
// re-initializes them in place, so after a few warm-up queries the buffers
// reach the workload's high-water mark and the hot path stops touching the
// allocator.
//
// The struct lives in core — its members and its consumers (framework,
// refinement, the query executors) are all core — while the engine layer
// wires one instance to each worker thread (see engine/scratch.h).
//
// A QueryScratch is NOT thread-safe; give each thread its own instance.
// Passing nullptr wherever a QueryScratch* is accepted restores the
// allocate-per-query behavior.
#ifndef PVERIFY_CORE_SCRATCH_H_
#define PVERIFY_CORE_SCRATCH_H_

#include <cstddef>
#include <vector>

#include "core/candidate.h"
#include "core/subregion.h"
#include "core/verifier.h"

namespace pverify {

struct QueryScratch {
  QueryScratch() = default;
  QueryScratch(const QueryScratch&) = delete;
  QueryScratch& operator=(const QueryScratch&) = delete;

  /// Subregion table rebuilt in place via SubregionTable::BuildInto.
  SubregionTable table;

  /// Recycled candidate-set construction storage: the items buffer, the
  /// per-candidate distance-distribution storage (1-D folded pdfs and 2-D
  /// radial cdfs alike) and the builders' work buffers. Borrowed by
  /// CandidateSet::Build1D/Build2D and returned by ExecuteOnCandidates.
  CandidateArena candidates;

  /// Verification context whose n×M qlow/qup arrays are re-initialized via
  /// VerificationContext::Reset.
  VerificationContext context;

  /// Refinement's per-candidate subregion ordering (the `js` workspace of
  /// IncrementalRefine).
  std::vector<size_t> refine_order;

  /// Cdf-row gather scratch (|C| doubles) for the batched NN-product
  /// integrand of exact refinement (see core/cdf_batch.h).
  std::vector<double> cdf_gather;

  /// Queries that borrowed this scratch so far (telemetry; bumped by
  /// VerificationFramework when it adopts the scratch).
  size_t queries_served = 0;

  /// Approximate heap footprint of the owned buffers (capacity, not size) —
  /// lets tests assert that reuse reaches a steady state.
  size_t ApproxBytes() const;
};

}  // namespace pverify

#endif  // PVERIFY_CORE_SCRATCH_H_
