// Probabilistic k-NN extension (the paper's §VI future work).
//
// The k-NN qualification probability of candidate X_i is
//
//   p_i^(k) = ∫ d_i(r) · P[at most k−1 of the other R_j are below r] dr,
//
// where the inner probability is a Poisson-binomial tail over the other
// candidates' distance cdfs, evaluated with the standard O(|C|·k) dynamic
// program. Three pruning devices generalize the PNN machinery:
//
//  * k-th far point: with f^(k) the k-th smallest far point, any candidate
//    whose distance exceeds f^(k) certainly has k closer objects, so the
//    integration stops there and mass beyond it bounds p_i^(k) from above —
//    the k-NN analogue of the RS verifier.
//  * filtering: candidates with near point beyond f^(k) are dropped
//    outright.
//  * progressive refinement: the integral accumulates segment by segment,
//    maintaining the bound [partial, partial + unintegrated mass]; the
//    Definition 1 classifier decides most candidates long before the
//    integral completes — the k-NN analogue of incremental refinement.
#ifndef PVERIFY_CORE_KNN_H_
#define PVERIFY_CORE_KNN_H_

#include <vector>

#include "core/candidate.h"
#include "core/refine.h"
#include "core/types.h"

namespace pverify {

/// k-th smallest far point of the candidate set (k >= 1). Requires
/// k <= |C|.
double KthFarPoint(const CandidateSet& candidates, int k);

/// RS-style upper bound for the k-NN probability of every candidate:
/// p_i^(k) <= D_i(f^(k)).
std::vector<double> KnnRsUpperBounds(const CandidateSet& candidates, int k);

/// Exact k-NN qualification probabilities (Poisson-binomial integration).
/// k = 1 reduces to the PNN probabilities.
std::vector<double> ComputeKnnProbabilities(const CandidateSet& candidates,
                                            int k,
                                            const IntegrationOptions& options);

/// Answer of a constrained k-NN query (threshold/tolerance semantics of
/// Definition 1 applied to p_i^(k)).
struct CknnAnswer {
  std::vector<ObjectId> ids;
  /// Final probability bound per candidate (candidate-set order);
  /// zero-width iff the probability was integrated to completion.
  std::vector<ProbabilityBound> bounds;
  size_t pruned_by_bound = 0;   ///< rejected by the RS-style bound alone
  size_t early_decided = 0;     ///< decided before the integral completed
  size_t segments_evaluated = 0;  ///< quadrature segments actually computed
};

/// Evaluates a constrained probabilistic k-NN query over the candidate set:
/// RS-style bound first, then progressive integration with Definition 1
/// classification after every segment.
CknnAnswer EvaluateCknn(const CandidateSet& candidates, int k,
                        const CpnnParams& params,
                        const IntegrationOptions& options);

}  // namespace pverify

#endif  // PVERIFY_CORE_KNN_H_
