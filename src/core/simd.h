// Vectorization control for the verifier kernels.
//
// Builds configured with -DPVERIFY_SIMD=ON (CMake option) compile the hot
// loops with `#pragma omp simd` (via -fopenmp-simd — no OpenMP runtime) and
// default to the vectorized kernels at runtime. The scalar reference
// kernels are always compiled in, and SetSimdKernelsEnabled() switches
// between the two at runtime, which is what lets one bench binary measure
// scalar-vs-SIMD speedups and one test binary assert their equivalence.
//
// Numerics contract: with PVERIFY_SIMD off the pragmas expand to nothing
// and every kernel is bit-identical to the seed implementation. With it on,
// the only permitted divergence is reassociation of the Eq. 4 sum
// reductions (a few ULP); the branch-free masked arithmetic is constructed
// so per-slot q_ij values stay bit-identical either way (adding a masked
// 0.0 to a running sum never changes it, and x/1 of the same operands is
// the same operation scalar or vector).
#ifndef PVERIFY_CORE_SIMD_H_
#define PVERIFY_CORE_SIMD_H_

#if defined(PVERIFY_SIMD)
#define PV_PRAGMA_(directive) _Pragma(#directive)
/// Vectorize the following loop (lanes independent — bit-identical).
#define PV_SIMD PV_PRAGMA_(omp simd)
/// Vectorize with a reduction clause, e.g. PV_SIMD_REDUCE(+ : lo, hi).
/// Reductions reassociate, so results may differ from scalar by a few ULP.
#define PV_SIMD_REDUCE(...) PV_PRAGMA_(omp simd reduction(__VA_ARGS__))
#else
#define PV_SIMD
#define PV_SIMD_REDUCE(...)
#endif

namespace pverify {

/// True when this binary was compiled with PVERIFY_SIMD (the pragmas above
/// are live and the vectorized kernels are actually vector code).
constexpr bool SimdKernelsCompiled() {
#if defined(PVERIFY_SIMD)
  return true;
#else
  return false;
#endif
}

/// Runtime kernel selection. Defaults to SimdKernelsCompiled(); flipping it
/// is cheap (one relaxed atomic) and affects all threads. In PVERIFY_SIMD
/// =OFF builds the "simd" kernels are compiled scalar, so the flag only
/// changes which (numerically equivalent) code path runs.
bool SimdKernelsEnabled();
void SetSimdKernelsEnabled(bool enabled);

/// True when this binary carries a second, -march-targeted copy of the
/// vector kernels (CMake option PVERIFY_MULTIARCH; see simd_kernels.h).
constexpr bool MultiArchCompiled() {
#if defined(PVERIFY_MULTIARCH)
  return true;
#else
  return false;
#endif
}

/// True when the host CPU can run the arch kernel flavor (cpuid probe of
/// the -march level the binary was configured for). Always false when
/// MultiArchCompiled() is false.
bool ArchKernelsSupportedByCpu();

/// Runtime flavor selection for multiarch binaries. Defaults to enabled
/// unless the environment sets PVERIFY_KERNEL_ARCH=baseline (read once, at
/// first use); flipping is one relaxed atomic and affects all threads. The
/// arch flavor only actually runs when the CPU supports it — disabling just
/// forces baseline, e.g. to run the full suite on the portable code path.
bool ArchKernelsEnabled();
void SetArchKernelsEnabled(bool enabled);

/// Name of the kernel flavor ActiveKernels() currently selects: "baseline",
/// or the -march target (e.g. "x86-64-v3") on a supporting host.
const char* ActiveKernelFlavorName();

}  // namespace pverify

#endif  // PVERIFY_CORE_SIMD_H_
