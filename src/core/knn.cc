#include "core/knn.h"

#include <algorithm>

#include "common/check.h"
#include "common/integrate.h"
#include "common/piecewise.h"
#include "core/cdf_batch.h"
#include "core/classifier.h"
#include "core/simd.h"

namespace pverify {
namespace {

// P[at most `limit` of the candidates k≠i have R_k <= r]: Poisson-binomial
// tail via the truncated DP over success probabilities D_k(r). `gather`
// must hold |C| doubles; when the SIMD kernels are enabled the D_k(r) are
// batched into it up front (same Cdf calls in the same order, so the DP
// consumes bit-identical probabilities either way), which keeps the DP
// recurrence on a contiguous row instead of striding through candidates.
double AtMostBelow(const CandidateSet& cands, size_t i, double r, int limit,
                   double* gather) {
  // dp[t] = probability that exactly t of the processed objects are below r,
  // truncated at limit+1 states (anything beyond limit is absorbed/dropped).
  std::vector<double> dp(static_cast<size_t>(limit) + 1, 0.0);
  dp[0] = 1.0;
  const bool batched = SimdKernelsEnabled();
  if (batched) CdfAcrossCandidates(cands, r, gather);
  for (size_t k = 0; k < cands.size(); ++k) {
    if (k == i) continue;
    const double p = batched ? gather[k] : cands[k].dist.Cdf(r);
    if (p <= 0.0) continue;
    for (int t = limit; t >= 1; --t) {
      dp[t] = dp[t] * (1.0 - p) + dp[t - 1] * p;
    }
    dp[0] *= 1.0 - p;
  }
  double sum = 0.0;
  for (double v : dp) sum += v;
  return std::min(1.0, sum);
}

std::vector<double> GlobalBreakpoints(const CandidateSet& candidates) {
  std::vector<double> breaks;
  for (const Candidate& c : candidates.items()) {
    breaks.insert(breaks.end(), c.dist.breakpoints().begin(),
                  c.dist.breakpoints().end());
  }
  return SortedUnique(std::move(breaks), 1e-12);
}

double ExactKnnProbability(const CandidateSet& candidates, size_t i, int k,
                           double fk, const std::vector<double>& breaks,
                           const IntegrationOptions& options) {
  const Candidate& cand = candidates[i];
  const double a = cand.dist.near();
  const double b = std::min(cand.dist.far(), fk);
  if (b <= a) return 0.0;  // certainly beyond the k-th far point
  std::vector<double> gather(candidates.size());  // cdf gather scratch
  auto f = [&candidates, i, k, &gather](double r) {
    double d = candidates[i].dist.Density(r);
    if (d == 0.0) return 0.0;
    return d * AtMostBelow(candidates, i, r, k - 1, gather.data());
  };
  return std::clamp(
      IntegrateWithBreakpoints(f, a, b, breaks, options.gauss_points), 0.0,
      1.0);
}

}  // namespace

double KthFarPoint(const CandidateSet& candidates, int k) {
  PV_CHECK_MSG(k >= 1 && static_cast<size_t>(k) <= candidates.size(),
               "k must be in [1, |C|]");
  std::vector<double> fars;
  fars.reserve(candidates.size());
  for (const Candidate& c : candidates.items()) fars.push_back(c.dist.far());
  std::nth_element(fars.begin(), fars.begin() + (k - 1), fars.end());
  return fars[k - 1];
}

std::vector<double> KnnRsUpperBounds(const CandidateSet& candidates, int k) {
  const double fk = KthFarPoint(candidates, k);
  std::vector<double> ub(candidates.size(), 1.0);
  // p_i^(k) <= P(R_i <= f^(k)) = D_i(f^(k)) — one contiguous gather
  // (bit-identical to the per-candidate Cdf loop it replaces).
  CdfAcrossCandidates(candidates, fk, ub.data());
  return ub;
}

std::vector<double> ComputeKnnProbabilities(
    const CandidateSet& candidates, int k, const IntegrationOptions& options) {
  PV_CHECK_MSG(k >= 1, "k must be positive");
  const size_t n = candidates.size();
  std::vector<double> probs(n, 0.0);
  if (n == 0) return probs;
  if (static_cast<size_t>(k) >= n) {
    // Every candidate is among the k nearest with certainty.
    std::fill(probs.begin(), probs.end(), 1.0);
    return probs;
  }
  const double fk = KthFarPoint(candidates, k);
  std::vector<double> breaks = GlobalBreakpoints(candidates);
  for (size_t i = 0; i < n; ++i) {
    probs[i] = ExactKnnProbability(candidates, i, k, fk, breaks, options);
  }
  return probs;
}

CknnAnswer EvaluateCknn(const CandidateSet& candidates, int k,
                        const CpnnParams& params,
                        const IntegrationOptions& options) {
  params.Validate();
  CknnAnswer answer;
  const size_t n = candidates.size();
  answer.bounds.assign(n, ProbabilityBound{0.0, 1.0});
  if (n == 0) return answer;
  if (static_cast<size_t>(k) >= n) {
    for (size_t i = 0; i < n; ++i) {
      answer.bounds[i] = ProbabilityBound{1.0, 1.0};
      answer.ids.push_back(candidates[i].id);
    }
    return answer;
  }

  const double fk = KthFarPoint(candidates, k);
  const std::vector<double> ub = KnnRsUpperBounds(candidates, k);
  const std::vector<double> breaks = GlobalBreakpoints(candidates);
  std::vector<double> gather(n);  // cdf gather scratch

  for (size_t i = 0; i < n; ++i) {
    ProbabilityBound& bound = answer.bounds[i];
    bound.Tighten(0.0, ub[i]);
    // RS-style verification: reject without integration when even the upper
    // bound misses the threshold.
    if (Classify(bound, params) == Label::kFail) {
      ++answer.pruned_by_bound;
      continue;
    }

    // Progressive integration: accumulate the integral segment by segment,
    // classifying the running bound [partial, partial + remaining mass].
    const Candidate& cand = candidates[i];
    const double a = cand.dist.near();
    const double b = std::min(cand.dist.far(), fk);
    auto f = [&candidates, i, k, &gather](double r) {
      double d = candidates[i].dist.Density(r);
      if (d == 0.0) return 0.0;
      return d * AtMostBelow(candidates, i, r, k - 1, gather.data());
    };
    // The cap below subtracts from P(R_i <= b), which does not change
    // across segments — evaluate it once per candidate.
    const double cdf_b = cand.dist.Cdf(b);

    double partial = 0.0;
    double prev = a;
    Label label = Label::kUnknown;
    auto it = std::upper_bound(breaks.begin(), breaks.end(), a);
    bool done = false;
    while (!done) {
      double next;
      if (it != breaks.end() && *it < b) {
        next = *it;
        ++it;
      } else {
        next = b;
        done = true;
      }
      if (next <= prev) continue;
      partial += GaussLegendre(f, prev, next, options.gauss_points);
      ++answer.segments_evaluated;
      prev = next;
      // Unintegrated probability mass of R_i in (prev, b] caps the rest of
      // the integral (the Poisson-binomial factor is <= 1).
      double remaining = std::max(0.0, cdf_b - cand.dist.Cdf(prev));
      bound.Tighten(std::clamp(partial, 0.0, 1.0),
                    std::clamp(partial + remaining, 0.0, 1.0));
      label = Classify(bound, params);
      if (label != Label::kUnknown) {
        if (!done) ++answer.early_decided;
        break;
      }
    }
    if (label == Label::kUnknown) {
      // Fully integrated → zero-width bound decides.
      bound.Tighten(bound.upper, bound.upper);
      label = Classify(bound, params);
    }
    if (label == Label::kSatisfy) answer.ids.push_back(candidates[i].id);
  }
  return answer;
}

}  // namespace pverify
