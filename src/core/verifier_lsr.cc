// The Lower-Subregion (L-SR) verifier — paper §IV-C, Lemma 2.
//
// For candidate X_i confined to subregion S_j (j < M), the qualification
// probability is at least
//
//   q_ij.l = (1/c_j) · Π_{k≠i, D_k(e_j)>0} (1 − D_k(e_j))
//
// — the probability that no other candidate falls below e_j (event E) times
// the 1/c_j symmetry floor of Lemma 3 (distance pdfs are constant inside a
// subregion by construction, so candidates inside S_j are exchangeable).
// Summing s_ij·q_ij.l over the non-rightmost subregions (Eq. 4) lower-bounds
// p_i. The Y_j products let the whole pass run in O(|C|·M).
//
// The vectorized flavor streams candidate i's contiguous s/cdf/qlow rows in
// two passes: (A) q_ij.l for every numerically safe lane, branch-free, into
// the context's scratch row (the exact operations of the scalar path, so
// slot values stay bit-identical), then (B) a participation-masked merge
// into the qlow row. The rare unsafe lanes are counted in pass A and fixed
// up by a scalar pass that takes ProductExcluding's direct-product fallback.
// The pass bodies live in core/simd_kernels.cc behind ActiveKernels(), so a
// multiarch binary runs them at the widest ISA the host supports; only the
// scalar fix-up (which needs ProductExcluding) stays in this TU.
#include "core/simd.h"
#include "core/simd_kernels.h"
#include "core/verifier.h"

namespace pverify {
namespace {

void ApplyScalar(VerificationContext& ctx) {
  const SubregionTable& tbl = *ctx.table;
  const size_t m = tbl.num_subregions();
  CandidateSet& cands = *ctx.candidates;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].label != Label::kUnknown) continue;
    for (size_t j = 0; j + 1 < m; ++j) {
      if (!tbl.Participates(i, j)) continue;
      const int cj = tbl.count(j);
      const double pr_e = tbl.ProductExcluding(i, j);
      const double qlow = pr_e / static_cast<double>(cj);
      double& slot = ctx.QLow(i, j);
      if (qlow > slot) slot = qlow;
    }
  }
}

void ApplySimd(VerificationContext& ctx) {
  const SubregionTable& tbl = *ctx.table;
  const size_t m = tbl.num_subregions();
  const double* y = tbl.YData();
  const int* cnt = tbl.CountData();
  double* tmp = ctx.prod.data();
  const simdkern::KernelTable& kern = ActiveKernels();
  CandidateSet& cands = *ctx.candidates;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].label != Label::kUnknown) continue;
    const double* s_row = tbl.SRow(i);
    const double* cdf_row = tbl.CdfRow(i);
    double* ql = ctx.QLowRow(i);
    const size_t last = m - 1;  // omp-canonical bound for j + 1 < m
    const double fallback = kern.lsr_pass_a(cdf_row, y, cnt, tmp, last);
    kern.lsr_pass_b(s_row, tmp, ql, last);
    if (fallback != 0.0) {
      for (size_t j = 0; j + 1 < m; ++j) {
        if (s_row[j] <= SubregionTable::kEps) continue;
        if (SubregionTable::DivideOutSafe(1.0 - cdf_row[j], y[j])) continue;
        const double qlow = tbl.ProductExcluding(i, j) /
                            static_cast<double>(cnt[j]);
        if (qlow > ql[j]) ql[j] = qlow;
      }
    }
  }
}

}  // namespace

void LsrVerifier::Apply(VerificationContext& ctx) {
  if (SimdKernelsEnabled()) {
    ApplySimd(ctx);
  } else {
    ApplyScalar(ctx);
  }
  ctx.RefreshAllBounds();
}

}  // namespace pverify
