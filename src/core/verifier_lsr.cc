// The Lower-Subregion (L-SR) verifier — paper §IV-C, Lemma 2.
//
// For candidate X_i confined to subregion S_j (j < M), the qualification
// probability is at least
//
//   q_ij.l = (1/c_j) · Π_{k≠i, D_k(e_j)>0} (1 − D_k(e_j))
//
// — the probability that no other candidate falls below e_j (event E) times
// the 1/c_j symmetry floor of Lemma 3 (distance pdfs are constant inside a
// subregion by construction, so candidates inside S_j are exchangeable).
// Summing s_ij·q_ij.l over the non-rightmost subregions (Eq. 4) lower-bounds
// p_i. The Y_j products let the whole pass run in O(|C|·M).
#include "core/verifier.h"

namespace pverify {

void LsrVerifier::Apply(VerificationContext& ctx) {
  const SubregionTable& tbl = *ctx.table;
  const size_t m = tbl.num_subregions();
  CandidateSet& cands = *ctx.candidates;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].label != Label::kUnknown) continue;
    for (size_t j = 0; j + 1 < m; ++j) {
      if (!tbl.Participates(i, j)) continue;
      const int cj = tbl.count(j);
      const double pr_e = tbl.ProductExcluding(i, j);
      const double qlow = pr_e / static_cast<double>(cj);
      double& slot = ctx.QLow(i, j);
      if (qlow > slot) slot = qlow;
    }
    ctx.RefreshBound(i);
  }
}

}  // namespace pverify
