#include "core/monte_carlo.h"

#include <limits>

#include "common/check.h"
#include "common/rng.h"

namespace pverify {

std::vector<double> MonteCarloProbabilities(const CandidateSet& candidates,
                                            const MonteCarloOptions& options) {
  PV_CHECK_MSG(options.samples > 0, "need at least one sample");
  const size_t n = candidates.size();
  std::vector<double> probs(n, 0.0);
  if (n == 0) return probs;
  Rng rng(options.seed);
  std::vector<int> wins(n, 0);
  for (int s = 0; s < options.samples; ++s) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_i = 0;
    for (size_t i = 0; i < n; ++i) {
      double r = candidates[i].dist.Quantile(rng.Uniform(0.0, 1.0));
      if (r < best) {
        best = r;
        best_i = i;
      }
    }
    ++wins[best_i];
  }
  for (size_t i = 0; i < n; ++i) {
    probs[i] = static_cast<double>(wins[i]) / options.samples;
  }
  return probs;
}

}  // namespace pverify
