#include "core/subregion.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/piecewise.h"
#include "core/simd.h"
#include "core/simd_kernels.h"

namespace pverify {

// The kernel TU mirrors these constants locally (it must stay header-free;
// see simd_kernels.h). Pin them together so a drift breaks the build.
static_assert(simdkern::kMassEps == SubregionTable::kEps,
              "simdkern::kMassEps out of sync with SubregionTable::kEps");
static_assert(simdkern::kDivideOutMin == 1e-8,
              "simdkern::kDivideOutMin out of sync with DivideOutSafe");

SubregionTable SubregionTable::Build(const CandidateSet& candidates) {
  SubregionTable table;
  BuildInto(candidates, &table);
  return table;
}

void SubregionTable::BuildInto(const CandidateSet& candidates,
                               SubregionTable* out) {
  PV_CHECK_MSG(!candidates.empty(), "subregion table needs candidates");
  SubregionTable& table = *out;
  const size_t n = candidates.size();
  table.n_ = n;

  const double fmin = candidates.fmin();
  const double fmax = candidates.fmax();

  // Gather end-points strictly below f_min: near points and distance-pdf
  // change points (paper: circled values in Fig. 7). Everything inside
  // [f_min, f_max] belongs to the undivided rightmost subregion. The points
  // are collected straight into endpoints_ so a reused table performs no
  // allocation once its capacity has grown to the workload's high-water
  // mark.
  std::vector<double>& pts = table.endpoints_;
  pts.clear();
  for (size_t i = 0; i < n; ++i) {
    const Candidate& c = candidates[i];
    for (double b : c.dist.breakpoints()) {
      if (b < fmin - 1e-12) pts.push_back(b);
    }
  }
  pts.push_back(fmin);
  // In place: the out-of-place SortedUnique would allocate a fresh vector
  // per query and drop the reused capacity.
  SortedUniqueInPlace(pts, 1e-12);

  // endpoints_ = e_0 < e_1 < ... < e_{M-1} = f_min, then e_M = f_max.
  table.endpoints_.push_back(fmax);
  const size_t m = table.endpoints_.size() - 1;  // number of subregions
  PV_CHECK_MSG(m >= 1, "at least the rightmost subregion must exist");
  table.m_ = m;
  table.s_stride_ = PadStride<double>(m);
  table.cdf_stride_ = PadStride<double>(m + 1);

  // assign() zeros the padding too, so padded s-entries never participate
  // and padded cdf-entries read as 0 if a vector remainder touches them.
  table.s_.assign(n * table.s_stride_, 0.0);
  table.cdf_.assign(n * table.cdf_stride_, 0.0);
  table.count_.assign(m, 0);
  table.y_.assign(m + 1, 1.0);

  for (size_t i = 0; i < n; ++i) {
    const DistanceDistribution& dist = candidates[i].dist;
    double* cdf_row = table.cdf_.data() + i * table.cdf_stride_;
    double* s_row = table.s_.data() + i * table.s_stride_;
    // endpoints_ is sorted, so one merge-scan over the distance pdf's
    // pieces fills the whole row in O(pieces + M) — no per-point binary
    // searches, bit-identical to the pointwise Cdf loop it replaces (see
    // StepFunction::IntegralToSorted), hence unconditional in both kernel
    // flavors.
    dist.CdfSorted(table.endpoints_.data(), m + 1, cdf_row);
    for (size_t j = 0; j < m; ++j) {
      double sij = cdf_row[j + 1] - cdf_row[j];
      sij = std::max(0.0, sij);
      s_row[j] = sij;
      if (sij > kEps) ++table.count_[j];
    }
  }

  // Y_j product, candidate-outer so the inner loop streams one contiguous
  // cdf row. Per j this multiplies the same factors in the same (k-)order
  // as the subregion-outer formulation, so the result is bit-identical;
  // the lanes are independent, so the kernel is too (multiarch builds run
  // it at the host's widest ISA via the flavor table).
  double* y = table.y_.data();
  const simdkern::KernelTable& kern = ActiveKernels();
  for (size_t k = 0; k < n; ++k) {
    const double* cdf_row = table.cdf_.data() + k * table.cdf_stride_;
    kern.multiply_one_minus_into(y, cdf_row, m + 1);
  }
}

double SubregionTable::ProductExcluding(size_t i, size_t j) const {
  PV_DCHECK(i < n_ && j <= m_);
  const double di = cdf(i, j);
  const double factor = 1.0 - di;
  if (DivideOutSafe(factor, y_[j])) {
    return std::min(1.0, y_[j] / factor);
  }
  // Fallback: i's factor is ~0 (or Y_j underflowed); recompute directly.
  double prod = 1.0;
  for (size_t k = 0; k < n_; ++k) {
    if (k == i) continue;
    prod *= 1.0 - cdf(k, j);
    if (prod == 0.0) break;
  }
  return prod;
}

}  // namespace pverify
