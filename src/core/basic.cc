#include "core/basic.h"

#include <algorithm>

#include <vector>

#include "common/integrate.h"
#include "common/piecewise.h"
#include "core/cdf_batch.h"

namespace pverify {
namespace {

// All distance pdf/cdf breakpoints of the candidate set: between two
// consecutive entries every d_i is constant and every D_k linear, so
// per-segment Gauss-Legendre is near-exact.
std::vector<double> GlobalBreakpoints(const CandidateSet& candidates) {
  std::vector<double> breaks;
  for (const Candidate& c : candidates.items()) {
    breaks.insert(breaks.end(), c.dist.breakpoints().begin(),
                  c.dist.breakpoints().end());
  }
  return SortedUnique(std::move(breaks), 1e-12);
}

}  // namespace

double ExactQualificationProbability(const CandidateSet& candidates, size_t i,
                                     const IntegrationOptions& options) {
  std::vector<double> breaks = GlobalBreakpoints(candidates);
  const Candidate& cand = candidates[i];
  const double a = cand.dist.near();
  const double b = std::min(cand.dist.far(), candidates.fmin());
  std::vector<double> row(candidates.size());  // cdf gather scratch
  auto f = [&candidates, i, &row](double r) {
    return NnProductIntegrand(candidates, i, r, row.data());
  };
  double p = IntegrateWithBreakpoints(f, a, b, breaks, options.gauss_points);
  return std::clamp(p, 0.0, 1.0);
}

std::vector<double> ComputeExactProbabilities(
    const CandidateSet& candidates, const IntegrationOptions& options) {
  std::vector<double> breaks = GlobalBreakpoints(candidates);
  std::vector<double> probs(candidates.size(), 0.0);
  const double fmin = candidates.fmin();
  std::vector<double> row(candidates.size());  // cdf gather scratch
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& cand = candidates[i];
    const double a = cand.dist.near();
    const double b = std::min(cand.dist.far(), fmin);
    auto f = [&candidates, i, &row](double r) {
      return NnProductIntegrand(candidates, i, r, row.data());
    };
    probs[i] = std::clamp(
        IntegrateWithBreakpoints(f, a, b, breaks, options.gauss_points), 0.0,
        1.0);
  }
  return probs;
}

}  // namespace pverify
