// Batched distance-cdf evaluation across a candidate set.
//
// The exact-integration paths (basic.cc, refine.cc, knn.cc) all evaluate
// Π_{k≠i} (1 − D_k(r)) inside their integrands — a strided walk that calls
// one binary-searched Cdf per candidate per quadrature point. The helpers
// here restructure that into gather-then-product: fill a contiguous row of
// D_k(r) values, then run the vectorizable product kernel from the flavor
// table (core/simd_kernels.h). The scalar seed loop is kept verbatim behind
// SimdKernelsEnabled(), preserving the repo-wide contract that disabling
// the SIMD kernels reproduces the seed bit for bit.
#ifndef PVERIFY_CORE_CDF_BATCH_H_
#define PVERIFY_CORE_CDF_BATCH_H_

#include <cstddef>

#include "core/candidate.h"

namespace pverify {

/// Gathers out[k] = D_k(r) for every candidate (the excluded index, if any,
/// is handled by the consumer). Same Cdf calls in the same order as the
/// strided loops this replaces — bit-identical values.
void CdfAcrossCandidates(const CandidateSet& cands, double r, double* out);

/// The NN integrand d_i(r) · Π_{k≠i} (1 − D_k(r)) (paper Eq. 2). `row` must
/// hold cands.size() doubles of scratch. With SIMD kernels disabled this
/// runs the seed's early-breaking scalar loop verbatim; enabled, it gathers
/// the cdf row and applies the active flavor's product kernel (a product
/// reduction — may reassociate, a few ULP).
double NnProductIntegrand(const CandidateSet& cands, size_t i, double r,
                          double* row);

}  // namespace pverify

#endif  // PVERIFY_CORE_CDF_BATCH_H_
