// The candidate set: unpruned objects with their distance distributions,
// probability bounds and labels (paper §III-B).
#ifndef PVERIFY_CORE_CANDIDATE_H_
#define PVERIFY_CORE_CANDIDATE_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "uncertain/distance2d.h"
#include "uncertain/distance_distribution.h"
#include "uncertain/uncertain_object.h"

namespace pverify {

/// One member of the candidate set.
struct Candidate {
  ObjectId id = 0;
  DistanceDistribution dist;
  ProbabilityBound bound;
  Label label = Label::kUnknown;
};

class CandidateSet;

/// Recycled candidate-construction storage, owned by a QueryScratch: the
/// CandidateSet items buffer, per-candidate distance-distribution storage
/// and the work buffers the distribution builders fold into. Construction
/// borrows the storage and ExecuteOnCandidates returns it, so a steady-state
/// query stream builds its candidate sets without touching the allocator.
/// Answers are bit-identical with or without an arena — only where the
/// buffers live changes, never the arithmetic.
struct CandidateArena {
  CandidateArena() = default;
  CandidateArena(const CandidateArena&) = delete;
  CandidateArena& operator=(const CandidateArena&) = delete;

  /// Pops the recycled distribution with the most storage (or returns a
  /// fresh one when the pool is empty). Largest-first pairing lets the
  /// pool's capacities converge to the workload's high-water mark.
  DistanceDistribution TakeDistribution();

  /// Returns one distribution's storage to the pool (subject to the demand
  /// cap, see Recycle).
  void RecycleDistribution(DistanceDistribution&& dist);

  /// Returns a finished candidate set's storage (items buffer and every
  /// remaining distribution) to the arena. The distribution pool is capped
  /// at the largest per-query TakeDistribution demand seen so far, so
  /// query paths that recycle without arena-backed construction (sharded
  /// gathers, external kCandidates payloads) do not grow the pool
  /// unboundedly — their distributions are simply freed.
  void Recycle(CandidateSet&& set);

  /// Approximate heap footprint of all pooled storage (capacity, not size).
  size_t ApproxBytes() const;

  /// Recycled items buffer handed to the next CandidateSet construction.
  std::vector<Candidate> items;
  /// Recycled per-candidate distribution storage, kept sorted by ascending
  /// capacity (so TakeDistribution pops the largest in O(1)).
  std::vector<DistanceDistribution> spare;
  /// Breakpoint / piece-value work buffers for distribution builds.
  std::vector<double> work_breaks;
  std::vector<double> work_values;
  /// Split-point workspace of the 2-D radial-cdf batched scan.
  std::vector<double> work_cuts;
  /// Far-point workspace for the k-aware pruning rule.
  std::vector<double> work_fars;
  /// TakeDistribution calls since the last Recycle, and the largest such
  /// demand ever seen — the pool's size cap.
  size_t pending_takes = 0;
  size_t spare_cap = 0;
};

/// Candidate set C, ordered by ascending near point (the paper's X_1..X_|C|
/// renaming). Construction computes every member's distance pdf/cdf — the
/// initialization step of the verification framework (Fig. 5).
class CandidateSet {
 public:
  CandidateSet() = default;

  /// Builds from 1-D objects: computes distance distributions w.r.t. q,
  /// drops objects that provably cannot be among the k nearest neighbors
  /// (near point beyond the k-th smallest far point; k = 1 for a plain
  /// PNN), and sorts by near point. A non-null `arena` lends reusable
  /// construction storage; the result is bit-identical either way.
  static CandidateSet Build1D(const Dataset& dataset,
                              const std::vector<uint32_t>& candidate_indices,
                              double q, int k = 1,
                              CandidateArena* arena = nullptr);

  /// Builds from 2-D objects: radial-cdf distance distributions w.r.t. q at
  /// `radial_pieces` resolution, then the same pruning/ordering as Build1D.
  static CandidateSet Build2D(const Dataset2D& dataset,
                              const std::vector<uint32_t>& candidate_indices,
                              Point2 q, int radial_pieces, int k = 1,
                              CandidateArena* arena = nullptr);

  /// Builds from pre-computed distance distributions (used by tests and by
  /// scatter/gather paths that merge per-shard distributions).
  static CandidateSet FromDistances(
      std::vector<std::pair<ObjectId, DistanceDistribution>> dists, int k = 1);

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  Candidate& operator[](size_t i) { return items_[i]; }
  const Candidate& operator[](size_t i) const { return items_[i]; }

  std::vector<Candidate>& items() { return items_; }
  const std::vector<Candidate>& items() const { return items_; }

  /// Minimum far point f_min over the candidate set (+inf when empty).
  double fmin() const { return fmin_; }
  /// Maximum far point f_max over the candidate set (−inf when empty).
  double fmax() const { return fmax_; }

  /// Number of candidates still labeled kUnknown.
  size_t CountUnknown() const;

  /// IDs of candidates currently labeled kSatisfy.
  std::vector<ObjectId> SatisfyingIds() const;

 private:
  void BorrowItemsBuffer(CandidateArena* arena);
  void FinishConstruction(int k, CandidateArena* arena = nullptr);

  std::vector<Candidate> items_;
  double fmin_ = 0.0;
  double fmax_ = 0.0;
};

}  // namespace pverify

#endif  // PVERIFY_CORE_CANDIDATE_H_
