// The candidate set: unpruned objects with their distance distributions,
// probability bounds and labels (paper §III-B).
#ifndef PVERIFY_CORE_CANDIDATE_H_
#define PVERIFY_CORE_CANDIDATE_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "uncertain/distance_distribution.h"
#include "uncertain/uncertain_object.h"

namespace pverify {

/// One member of the candidate set.
struct Candidate {
  ObjectId id = 0;
  DistanceDistribution dist;
  ProbabilityBound bound;
  Label label = Label::kUnknown;
};

/// Candidate set C, ordered by ascending near point (the paper's X_1..X_|C|
/// renaming). Construction computes every member's distance pdf/cdf — the
/// initialization step of the verification framework (Fig. 5).
class CandidateSet {
 public:
  CandidateSet() = default;

  /// Builds from 1-D objects: computes distance distributions w.r.t. q,
  /// drops objects that provably cannot be among the k nearest neighbors
  /// (near point beyond the k-th smallest far point; k = 1 for a plain
  /// PNN), and sorts by near point.
  static CandidateSet Build1D(const Dataset& dataset,
                              const std::vector<uint32_t>& candidate_indices,
                              double q, int k = 1);

  /// Builds from pre-computed distance distributions (used by the 2-D path
  /// and by tests that construct distributions directly).
  static CandidateSet FromDistances(
      std::vector<std::pair<ObjectId, DistanceDistribution>> dists, int k = 1);

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  Candidate& operator[](size_t i) { return items_[i]; }
  const Candidate& operator[](size_t i) const { return items_[i]; }

  std::vector<Candidate>& items() { return items_; }
  const std::vector<Candidate>& items() const { return items_; }

  /// Minimum far point f_min over the candidate set (+inf when empty).
  double fmin() const { return fmin_; }
  /// Maximum far point f_max over the candidate set (−inf when empty).
  double fmax() const { return fmax_; }

  /// Number of candidates still labeled kUnknown.
  size_t CountUnknown() const;

  /// IDs of candidates currently labeled kSatisfy.
  std::vector<ObjectId> SatisfyingIds() const;

 private:
  void FinishConstruction(int k);

  std::vector<Candidate> items_;
  double fmin_ = 0.0;
  double fmax_ = 0.0;
};

}  // namespace pverify

#endif  // PVERIFY_CORE_CANDIDATE_H_
