#include "core/cdf_batch.h"

#include "core/simd.h"
#include "core/simd_kernels.h"

namespace pverify {

void CdfAcrossCandidates(const CandidateSet& cands, double r, double* out) {
  const size_t n = cands.size();
  for (size_t k = 0; k < n; ++k) {
    out[k] = cands[k].dist.Cdf(r);
  }
}

double NnProductIntegrand(const CandidateSet& cands, size_t i, double r,
                          double* row) {
  double v = cands[i].dist.Density(r);
  if (v == 0.0) return 0.0;
  if (!SimdKernelsEnabled()) {
    // Seed reference, verbatim (including the early break).
    for (size_t k = 0; k < cands.size(); ++k) {
      if (k == i) continue;
      v *= 1.0 - cands[k].dist.Cdf(r);
      if (v == 0.0) break;
    }
    return v;
  }
  // Gather-then-product: all factors are in [0, 1], so skipping the early
  // break cannot overflow — a zero factor still zeroes the product.
  CdfAcrossCandidates(cands, r, row);
  return v * ActiveKernels().product_one_minus_excluding(row, cands.size(), i);
}

}  // namespace pverify
