#include "core/simd.h"

#include <atomic>

namespace pverify {

namespace {
std::atomic<bool> g_simd_enabled{SimdKernelsCompiled()};
}  // namespace

bool SimdKernelsEnabled() {
  return g_simd_enabled.load(std::memory_order_relaxed);
}

void SetSimdKernelsEnabled(bool enabled) {
  g_simd_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace pverify
