#include "core/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "core/simd_kernels.h"

namespace pverify {

namespace {

std::atomic<bool> g_simd_enabled{SimdKernelsCompiled()};

/// Default for the arch-flavor switch: on, unless the environment forces
/// the portable copy (PVERIFY_KERNEL_ARCH=baseline) — the knob CI uses to
/// run the whole suite through the baseline flavor of a multiarch binary.
bool ArchEnabledDefault() {
  const char* env = std::getenv("PVERIFY_KERNEL_ARCH");
  return env == nullptr || std::strcmp(env, "baseline") != 0;
}

std::atomic<bool> g_arch_enabled{ArchEnabledDefault()};

}  // namespace

bool SimdKernelsEnabled() {
  return g_simd_enabled.load(std::memory_order_relaxed);
}

void SetSimdKernelsEnabled(bool enabled) {
  g_simd_enabled.store(enabled, std::memory_order_relaxed);
}

bool ArchKernelsSupportedByCpu() {
#if defined(PVERIFY_MULTIARCH) && defined(PVERIFY_MULTIARCH_CPU) && \
    defined(__x86_64__) && defined(__GNUC__)
  // GCC ≥ 11 accepts micro-architecture level names ("x86-64-v3") here.
  return __builtin_cpu_supports(PVERIFY_MULTIARCH_CPU) > 0;
#else
  return false;
#endif
}

bool ArchKernelsEnabled() {
  return g_arch_enabled.load(std::memory_order_relaxed);
}

void SetArchKernelsEnabled(bool enabled) {
  g_arch_enabled.store(enabled, std::memory_order_relaxed);
}

const simdkern::KernelTable& ActiveKernels() {
#if defined(PVERIFY_MULTIARCH)
  // The cpuid probe resolves to a cached flag lookup after the first call;
  // re-evaluating per call keeps Set/env overrides effective at any time.
  if (ArchKernelsEnabled() && ArchKernelsSupportedByCpu()) {
    return simdkern::arch::kTable;
  }
#endif
  return simdkern::base::kTable;
}

const char* ActiveKernelFlavorName() { return ActiveKernels().flavor; }

}  // namespace pverify
