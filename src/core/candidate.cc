#include "core/candidate.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace pverify {

DistanceDistribution CandidateArena::TakeDistribution() {
  ++pending_takes;
  if (spare.empty()) return DistanceDistribution();
  // spare is sorted by ascending capacity, so the back is the largest.
  DistanceDistribution dist = std::move(spare.back());
  spare.pop_back();
  return dist;
}

void CandidateArena::RecycleDistribution(DistanceDistribution&& dist) {
  if (spare.size() < spare_cap) spare.push_back(std::move(dist));
}

void CandidateArena::Recycle(CandidateSet&& set) {
  spare_cap = std::max(spare_cap, pending_takes);
  pending_takes = 0;
  std::vector<Candidate>& recycled = set.items();
  for (Candidate& c : recycled) {
    if (spare.size() >= spare_cap) break;
    spare.push_back(std::move(c.dist));
  }
  recycled.clear();
  if (recycled.capacity() > items.capacity()) items = std::move(recycled);
  std::sort(spare.begin(), spare.end(),
            [](const DistanceDistribution& a, const DistanceDistribution& b) {
              return a.ApproxBytes() < b.ApproxBytes();
            });
}

size_t CandidateArena::ApproxBytes() const {
  size_t total =
      items.capacity() * sizeof(Candidate) +
      spare.capacity() * sizeof(DistanceDistribution) +
      (work_breaks.capacity() + work_values.capacity() +
       work_cuts.capacity() + work_fars.capacity()) * sizeof(double);
  for (const DistanceDistribution& d : spare) total += d.ApproxBytes();
  return total;
}

void CandidateSet::BorrowItemsBuffer(CandidateArena* arena) {
  if (arena == nullptr) return;
  items_ = std::move(arena->items);
  items_.clear();
}

CandidateSet CandidateSet::Build1D(
    const Dataset& dataset, const std::vector<uint32_t>& candidate_indices,
    double q, int k, CandidateArena* arena) {
  CandidateSet set;
  set.BorrowItemsBuffer(arena);
  set.items_.reserve(candidate_indices.size());
  for (uint32_t idx : candidate_indices) {
    PV_CHECK_MSG(idx < dataset.size(), "candidate index out of range");
    const UncertainObject& obj = dataset[idx];
    Candidate c;
    c.id = obj.id();
    if (arena != nullptr) {
      c.dist = arena->TakeDistribution();
      DistanceDistribution::From1DInto(obj.pdf(), q, &c.dist,
                                       arena->work_breaks,
                                       arena->work_values);
    } else {
      c.dist = DistanceDistribution::From1D(obj.pdf(), q);
    }
    set.items_.push_back(std::move(c));
  }
  set.FinishConstruction(k, arena);
  return set;
}

CandidateSet CandidateSet::Build2D(
    const Dataset2D& dataset, const std::vector<uint32_t>& candidate_indices,
    Point2 q, int radial_pieces, int k, CandidateArena* arena) {
  CandidateSet set;
  set.BorrowItemsBuffer(arena);
  set.items_.reserve(candidate_indices.size());
  for (uint32_t idx : candidate_indices) {
    PV_CHECK_MSG(idx < dataset.size(), "candidate index out of range");
    const UncertainObject2D& obj = dataset[idx];
    Candidate c;
    c.id = obj.id();
    if (arena != nullptr) {
      c.dist = arena->TakeDistribution();
      MakeDistanceDistribution2DInto(obj, q, radial_pieces, &c.dist,
                                     arena->work_breaks, arena->work_values,
                                     &arena->work_cuts);
    } else {
      c.dist = MakeDistanceDistribution2D(obj, q, radial_pieces);
    }
    set.items_.push_back(std::move(c));
  }
  set.FinishConstruction(k, arena);
  return set;
}

CandidateSet CandidateSet::FromDistances(
    std::vector<std::pair<ObjectId, DistanceDistribution>> dists, int k) {
  CandidateSet set;
  set.items_.reserve(dists.size());
  for (auto& [id, dist] : dists) {
    Candidate c;
    c.id = id;
    c.dist = std::move(dist);
    set.items_.push_back(std::move(c));
  }
  set.FinishConstruction(k);
  return set;
}

void CandidateSet::FinishConstruction(int k, CandidateArena* arena) {
  PV_CHECK_MSG(k >= 1, "k must be positive");
  if (items_.empty()) {
    fmin_ = std::numeric_limits<double>::infinity();
    fmax_ = -std::numeric_limits<double>::infinity();
    return;
  }
  double fmin = std::numeric_limits<double>::infinity();
  for (const Candidate& c : items_) fmin = std::min(fmin, c.dist.far());
  // Prune objects whose near point lies beyond the k-th smallest far point:
  // they provably have zero k-NN qualification probability. For k = 1 this
  // is the paper's f_min rule that the verifier math assumes.
  double fprune = fmin;
  if (k > 1 && static_cast<size_t>(k) <= items_.size()) {
    std::vector<double> local_fars;
    std::vector<double>& fars =
        arena != nullptr ? arena->work_fars : local_fars;
    fars.clear();
    fars.reserve(items_.size());
    for (const Candidate& c : items_) fars.push_back(c.dist.far());
    std::nth_element(fars.begin(), fars.begin() + (k - 1), fars.end());
    fprune = fars[k - 1];
  } else if (static_cast<size_t>(k) > items_.size()) {
    fprune = std::numeric_limits<double>::infinity();
  }
  // Stable compaction (same order remove_if/erase would keep); pruned
  // candidates hand their distribution storage back to the arena.
  size_t kept = 0;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].dist.near() > fprune + 1e-12) {
      if (arena != nullptr) {
        arena->RecycleDistribution(std::move(items_[i].dist));
      }
      continue;
    }
    if (kept != i) items_[kept] = std::move(items_[i]);
    ++kept;
  }
  items_.resize(kept);
  std::sort(items_.begin(), items_.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.dist.near() != b.dist.near()) {
                return a.dist.near() < b.dist.near();
              }
              return a.id < b.id;
            });
  fmin_ = fmin;
  fmax_ = -std::numeric_limits<double>::infinity();
  for (const Candidate& c : items_) fmax_ = std::max(fmax_, c.dist.far());
}

size_t CandidateSet::CountUnknown() const {
  size_t n = 0;
  for (const Candidate& c : items_) {
    if (c.label == Label::kUnknown) ++n;
  }
  return n;
}

std::vector<ObjectId> CandidateSet::SatisfyingIds() const {
  std::vector<ObjectId> ids;
  for (const Candidate& c : items_) {
    if (c.label == Label::kSatisfy) ids.push_back(c.id);
  }
  return ids;
}

}  // namespace pverify
