#include "core/candidate.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace pverify {

CandidateSet CandidateSet::Build1D(
    const Dataset& dataset, const std::vector<uint32_t>& candidate_indices,
    double q, int k) {
  CandidateSet set;
  set.items_.reserve(candidate_indices.size());
  for (uint32_t idx : candidate_indices) {
    PV_CHECK_MSG(idx < dataset.size(), "candidate index out of range");
    const UncertainObject& obj = dataset[idx];
    Candidate c;
    c.id = obj.id();
    c.dist = DistanceDistribution::From1D(obj.pdf(), q);
    set.items_.push_back(std::move(c));
  }
  set.FinishConstruction(k);
  return set;
}

CandidateSet CandidateSet::FromDistances(
    std::vector<std::pair<ObjectId, DistanceDistribution>> dists, int k) {
  CandidateSet set;
  set.items_.reserve(dists.size());
  for (auto& [id, dist] : dists) {
    Candidate c;
    c.id = id;
    c.dist = std::move(dist);
    set.items_.push_back(std::move(c));
  }
  set.FinishConstruction(k);
  return set;
}

void CandidateSet::FinishConstruction(int k) {
  PV_CHECK_MSG(k >= 1, "k must be positive");
  if (items_.empty()) {
    fmin_ = std::numeric_limits<double>::infinity();
    fmax_ = -std::numeric_limits<double>::infinity();
    return;
  }
  double fmin = std::numeric_limits<double>::infinity();
  for (const Candidate& c : items_) fmin = std::min(fmin, c.dist.far());
  // Prune objects whose near point lies beyond the k-th smallest far point:
  // they provably have zero k-NN qualification probability. For k = 1 this
  // is the paper's f_min rule that the verifier math assumes.
  double fprune = fmin;
  if (k > 1 && static_cast<size_t>(k) <= items_.size()) {
    std::vector<double> fars;
    fars.reserve(items_.size());
    for (const Candidate& c : items_) fars.push_back(c.dist.far());
    std::nth_element(fars.begin(), fars.begin() + (k - 1), fars.end());
    fprune = fars[k - 1];
  } else if (static_cast<size_t>(k) > items_.size()) {
    fprune = std::numeric_limits<double>::infinity();
  }
  auto out = std::remove_if(items_.begin(), items_.end(),
                            [fprune](const Candidate& c) {
                              return c.dist.near() > fprune + 1e-12;
                            });
  items_.erase(out, items_.end());
  std::sort(items_.begin(), items_.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.dist.near() != b.dist.near()) {
                return a.dist.near() < b.dist.near();
              }
              return a.id < b.id;
            });
  fmin_ = fmin;
  fmax_ = -std::numeric_limits<double>::infinity();
  for (const Candidate& c : items_) fmax_ = std::max(fmax_, c.dist.far());
}

size_t CandidateSet::CountUnknown() const {
  size_t n = 0;
  for (const Candidate& c : items_) {
    if (c.label == Label::kUnknown) ++n;
  }
  return n;
}

std::vector<ObjectId> CandidateSet::SatisfyingIds() const {
  std::vector<ObjectId> ids;
  for (const Candidate& c : items_) {
    if (c.label == Label::kSatisfy) ids.push_back(c.id);
  }
  return ids;
}

}  // namespace pverify
