// Monte-Carlo PNN baseline, in the spirit of Kriegel et al. [9]: each
// uncertain object is represented by samples drawn from its distance
// distribution, and the qualification probability is estimated as the
// fraction of joint draws in which the object is the nearest.
#ifndef PVERIFY_CORE_MONTE_CARLO_H_
#define PVERIFY_CORE_MONTE_CARLO_H_

#include <cstdint>
#include <vector>

#include "core/candidate.h"

namespace pverify {

struct MonteCarloOptions {
  int samples = 1000;
  uint64_t seed = 42;
};

/// Estimated qualification probabilities of every candidate, in set order.
/// Standard error of each estimate is about sqrt(p(1−p)/samples).
std::vector<double> MonteCarloProbabilities(const CandidateSet& candidates,
                                            const MonteCarloOptions& options);

}  // namespace pverify

#endif  // PVERIFY_CORE_MONTE_CARLO_H_
