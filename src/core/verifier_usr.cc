// The Upper-Subregion (U-SR) verifier — paper §IV-C Eq. 5, Appendix I.
//
// Conditioned on R_i ∈ S_j, split on F = "every other candidate is at or
// beyond e_{j+1}". If F holds X_i is certainly the NN; otherwise some other
// candidate shares S_j with X_i (given E) and exchangeability caps the NN
// probability at 1/2. Hence
//
//   q_ij.u = ½ · (Pr(F) + Pr(E))
//          = ½ · ( Π_{k≠i}(1 − D_k(e_{j+1})) + Π_{k≠i}(1 − D_k(e_j)) ).
//
// Both products reuse the precomputed Y_j values (Eq. 11), so the pass is
// O(|C|·M).
#include "core/verifier.h"

namespace pverify {

void UsrVerifier::Apply(VerificationContext& ctx) {
  const SubregionTable& tbl = *ctx.table;
  const size_t m = tbl.num_subregions();
  CandidateSet& cands = *ctx.candidates;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].label != Label::kUnknown) continue;
    double pr_e = tbl.ProductExcluding(i, 0);  // at e_0 this is 1 for all i
    for (size_t j = 0; j + 1 < m; ++j) {
      const double pr_f = tbl.ProductExcluding(i, j + 1);
      if (tbl.Participates(i, j)) {
        const double qup = 0.5 * (pr_f + pr_e);
        double& slot = ctx.QUp(i, j);
        if (qup < slot) slot = qup;
      }
      pr_e = pr_f;  // e_{j+1} becomes the next subregion's left end-point
    }
    ctx.RefreshBound(i);
  }
}

}  // namespace pverify
