// The Upper-Subregion (U-SR) verifier — paper §IV-C Eq. 5, Appendix I.
//
// Conditioned on R_i ∈ S_j, split on F = "every other candidate is at or
// beyond e_{j+1}". If F holds X_i is certainly the NN; otherwise some other
// candidate shares S_j with X_i (given E) and exchangeability caps the NN
// probability at 1/2. Hence
//
//   q_ij.u = ½ · (Pr(F) + Pr(E))
//          = ½ · ( Π_{k≠i}(1 − D_k(e_{j+1})) + Π_{k≠i}(1 − D_k(e_j)) ).
//
// Both products reuse the precomputed Y_j values (Eq. 11), so the pass is
// O(|C|·M).
//
// The vectorized flavor runs per candidate in two passes over contiguous
// rows: (A) materialize Π_{k≠i}(1 − D_k(e_j)) for every end-point into the
// context's `prod` workspace (safe divide-out lanes branch-free, unsafe
// lanes fixed up scalar), then (B) blend ½·(prod[j+1] + prod[j]) into the
// qup row. Used lanes perform the scalar path's exact operations in the
// same order, so slot values stay bit-identical to the reference.
// The pass bodies live in core/simd_kernels.cc behind ActiveKernels(), so a
// multiarch binary runs them at the widest ISA the host supports; only the
// scalar fix-up (which needs ProductExcluding) stays in this TU.
#include "core/simd.h"
#include "core/simd_kernels.h"
#include "core/verifier.h"

namespace pverify {
namespace {

void ApplyScalar(VerificationContext& ctx) {
  const SubregionTable& tbl = *ctx.table;
  const size_t m = tbl.num_subregions();
  CandidateSet& cands = *ctx.candidates;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].label != Label::kUnknown) continue;
    double pr_e = tbl.ProductExcluding(i, 0);  // at e_0 this is 1 for all i
    for (size_t j = 0; j + 1 < m; ++j) {
      const double pr_f = tbl.ProductExcluding(i, j + 1);
      if (tbl.Participates(i, j)) {
        const double qup = 0.5 * (pr_f + pr_e);
        double& slot = ctx.QUp(i, j);
        if (qup < slot) slot = qup;
      }
      pr_e = pr_f;  // e_{j+1} becomes the next subregion's left end-point
    }
  }
}

void ApplySimd(VerificationContext& ctx) {
  const SubregionTable& tbl = *ctx.table;
  const size_t m = tbl.num_subregions();
  const double* y = tbl.YData();
  double* prod = ctx.prod.data();
  const simdkern::KernelTable& kern = ActiveKernels();
  CandidateSet& cands = *ctx.candidates;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].label != Label::kUnknown) continue;
    const double* s_row = tbl.SRow(i);
    const double* cdf_row = tbl.CdfRow(i);
    double* qu = ctx.QUpRow(i);
    // Pass A fills prod for the end-points pass B consumes (j < m); unsafe
    // lanes get a placeholder and this scalar fix-up via ProductExcluding's
    // direct-product fallback, which must land before pass B reads prod.
    const double fallback = kern.usr_pass_a(cdf_row, y, prod, m);
    if (fallback != 0.0) {
      for (size_t j = 0; j < m; ++j) {
        if (!SubregionTable::DivideOutSafe(1.0 - cdf_row[j], y[j])) {
          prod[j] = tbl.ProductExcluding(i, j);
        }
      }
    }
    const size_t last = m - 1;  // omp-canonical bound for j + 1 < m
    kern.usr_pass_b(s_row, prod, qu, last);
  }
}

}  // namespace

void UsrVerifier::Apply(VerificationContext& ctx) {
  if (SimdKernelsEnabled()) {
    ApplySimd(ctx);
  } else {
    ApplyScalar(ctx);
  }
  ctx.RefreshAllBounds();
}

}  // namespace pverify
