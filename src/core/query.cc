#include "core/query.h"

#include <algorithm>

#include "common/check.h"
#include "common/timer.h"
#include "core/classifier.h"
#include "core/framework.h"
#include "core/scratch.h"

namespace pverify {
namespace {

// Labels every candidate from exact (or estimated-exact) probabilities:
// a zero-width bound at p decides Definition 1 directly.
void LabelFromProbabilities(CandidateSet& cands,
                            const std::vector<double>& probs,
                            const CpnnParams& params) {
  for (size_t i = 0; i < cands.size(); ++i) {
    cands[i].bound = ProbabilityBound{probs[i], probs[i]};
    cands[i].label = Classify(cands[i].bound, params);
  }
}

void FillAnswer(const CandidateSet& cands, const QueryOptions& options,
                QueryAnswer* answer) {
  answer->ids = cands.SatisfyingIds();
  std::sort(answer->ids.begin(), answer->ids.end());
  if (options.report_probabilities) {
    answer->candidate_probabilities.reserve(cands.size());
    for (const Candidate& c : cands.items()) {
      answer->candidate_probabilities.push_back(AnswerEntry{c.id, c.bound});
    }
  }
}

}  // namespace

std::string_view ToString(Strategy s) {
  switch (s) {
    case Strategy::kBasic:
      return "Basic";
    case Strategy::kRefine:
      return "Refine";
    case Strategy::kVR:
      return "VR";
    case Strategy::kMonteCarlo:
      return "MonteCarlo";
  }
  return "?";
}

QueryAnswer ExecuteOnCandidates(CandidateSet candidates,
                                const QueryOptions& options,
                                QueryScratch* scratch) {
  options.params.Validate();
  QueryAnswer answer;
  answer.stats.candidates = candidates.size();
  if (candidates.empty()) {
    // Even an empty set may carry a borrowed items buffer — hand it back.
    if (scratch != nullptr) scratch->candidates.Recycle(std::move(candidates));
    return answer;
  }
  Timer total;

  switch (options.strategy) {
    case Strategy::kBasic: {
      Timer t;
      std::vector<double> probs =
          ComputeExactProbabilities(candidates, options.integration);
      LabelFromProbabilities(candidates, probs, options.params);
      answer.stats.refine_ms = t.ElapsedMs();
      answer.stats.refined_candidates = candidates.size();
      break;
    }
    case Strategy::kMonteCarlo: {
      Timer t;
      std::vector<double> probs =
          MonteCarloProbabilities(candidates, options.monte_carlo);
      LabelFromProbabilities(candidates, probs, options.params);
      answer.stats.refine_ms = t.ElapsedMs();
      break;
    }
    case Strategy::kRefine:
    case Strategy::kVR: {
      VerificationFramework framework(&candidates, options.params, scratch);
      answer.stats.init_ms = 0.0;
      answer.stats.num_subregions = framework.table().num_subregions();
      if (options.strategy == Strategy::kVR) {
        Timer t;
        answer.stats.verification = framework.RunDefault();
        answer.stats.verify_ms = t.ElapsedMs();
      } else {
        // Refine skips verification but still classifies trivial bounds.
        ClassifyAll(candidates, options.params);
        answer.stats.verification.unknown_after = candidates.CountUnknown();
      }
      answer.stats.init_ms = answer.stats.verification.init_ms;
      answer.stats.unknown_after_verification =
          answer.stats.verification.unknown_after;
      answer.stats.finished_after_verification =
          answer.stats.unknown_after_verification == 0;
      if (answer.stats.unknown_after_verification > 0) {
        Timer t;
        RefineStats rs =
            IncrementalRefine(framework.context(), options.params,
                              options.integration, options.refine_order,
                              scratch);
        answer.stats.refine_ms = t.ElapsedMs();
        answer.stats.refined_candidates = rs.refined_candidates;
        answer.stats.subregion_integrations = rs.subregion_integrations;
      }
      break;
    }
  }

  answer.stats.total_ms = total.ElapsedMs();
  FillAnswer(candidates, options, &answer);
  // The answer is extracted; the candidate storage (items buffer and every
  // distribution) goes back to the scratch for the next query.
  if (scratch != nullptr) scratch->candidates.Recycle(std::move(candidates));
  return answer;
}

CpnnExecutor::CpnnExecutor(Dataset dataset)
    : dataset_(std::move(dataset)), filter_(dataset_) {
  if (!dataset_.empty()) {
    domain_lo_ = dataset_.front().lo();
    domain_hi_ = dataset_.front().hi();
    for (const UncertainObject& obj : dataset_) {
      domain_lo_ = std::min(domain_lo_, obj.lo());
      domain_hi_ = std::max(domain_hi_, obj.hi());
    }
  }
}

QueryAnswer CpnnExecutor::ExecuteMin(const QueryOptions& options,
                                     QueryScratch* scratch) const {
  // Any query point at or below the domain minimum induces the ordering
  // "smaller value = nearer", making the PNN a minimum query.
  return Execute(domain_lo_ - 1.0, options, scratch);
}

QueryAnswer CpnnExecutor::ExecuteMax(const QueryOptions& options,
                                     QueryScratch* scratch) const {
  return Execute(domain_hi_ + 1.0, options, scratch);
}

QueryAnswer CpnnExecutor::Execute(double q, const QueryOptions& options,
                                  QueryScratch* scratch) const {
  Timer total;
  Timer t;
  FilterResult filtered = filter_.Filter(q);
  double filter_ms = t.ElapsedMs();

  t.Restart();
  CandidateSet candidates = CandidateSet::Build1D(
      dataset_, filtered.candidates, q, /*k=*/1,
      scratch != nullptr ? &scratch->candidates : nullptr);
  double build_ms = t.ElapsedMs();

  QueryAnswer answer =
      ExecuteOnCandidates(std::move(candidates), options, scratch);
  answer.stats.filter_ms = filter_ms;
  answer.stats.init_ms += build_ms;
  answer.stats.dataset_size = dataset_.size();
  answer.stats.total_ms = total.ElapsedMs();
  return answer;
}

CknnAnswer CpnnExecutor::ExecuteKnn(double q, int k, const CpnnParams& params,
                                    const IntegrationOptions& integration)
    const {
  FilterResult filtered = FilterKByScan(dataset_, q, k);
  CandidateSet candidates =
      CandidateSet::Build1D(dataset_, filtered.candidates, q, k);
  return EvaluateCknn(candidates, k, params, integration);
}

std::vector<std::pair<ObjectId, double>> CpnnExecutor::ComputePnn(
    double q, const IntegrationOptions& integration) const {
  FilterResult filtered = filter_.Filter(q);
  CandidateSet candidates =
      CandidateSet::Build1D(dataset_, filtered.candidates, q);
  std::vector<std::pair<ObjectId, double>> result;
  if (candidates.empty()) return result;
  std::vector<double> probs =
      ComputeExactProbabilities(candidates, integration);
  result.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    result.emplace_back(candidates[i].id, probs[i]);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace pverify
