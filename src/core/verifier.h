// Probabilistic verifier interface and the verification context shared by
// the verifier chain (paper §IV).
//
// A verifier inspects the subregion table and tightens the probability
// bounds of still-unknown candidates; the classifier then re-labels them.
// Verifiers additionally record per-subregion qualification-probability
// bounds [q_ij.l, q_ij.u] in the context so that incremental refinement
// (§IV-D) can collapse them one subregion at a time.
//
// Like SubregionTable, the context stores q_ij.l / q_ij.u as row-major SoA:
// one cache-line-aligned padded row per candidate, with the row stride
// computed once at Reset() rather than re-derived per access. The bound
// recomputation (Eq. 4) runs as a batched kernel over those rows, in a
// scalar reference flavor and a vectorized flavor selected at runtime (see
// core/simd.h).
#ifndef PVERIFY_CORE_VERIFIER_H_
#define PVERIFY_CORE_VERIFIER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/aligned.h"
#include "core/candidate.h"
#include "core/subregion.h"
#include "core/types.h"

namespace pverify {

/// Mutable state threaded through the verifier chain and into refinement.
struct VerificationContext {
  /// An empty context; Reset() must run before any verifier touches it.
  /// Default-constructible so a QueryScratch can hold one across queries.
  VerificationContext() = default;

  VerificationContext(CandidateSet* cands, const SubregionTable* tbl) {
    Reset(cands, tbl);
  }

  /// Re-targets the context at a (new) candidate set and subregion table,
  /// reinitializing the n×M bound arrays. assign() reuses the vectors'
  /// capacity, so a context reset across queries stops allocating once the
  /// buffers reach the workload's high-water mark.
  void Reset(CandidateSet* cands, const SubregionTable* tbl) {
    candidates = cands;
    table = tbl;
    const size_t n = tbl->num_candidates();
    const size_t m = tbl->num_subregions();
    stride_ = PadStride<double>(m);
    qlow.assign(n * stride_, 0.0);
    qup.assign(n * stride_, 1.0);
    // The rightmost subregion carries zero qualification probability
    // (paper: "the probability of any object in S_M must be zero").
    for (size_t i = 0; i < n; ++i) qup[i * stride_ + (m - 1)] = 0.0;
    // Pr(E)-product workspace for the U-SR kernel (one row, not n×M).
    prod.assign(PadStride<double>(m + 1), 0.0);
  }

  double& QLow(size_t i, size_t j) { return qlow[i * stride_ + j]; }
  double& QUp(size_t i, size_t j) { return qup[i * stride_ + j]; }
  double QLow(size_t i, size_t j) const { return qlow[i * stride_ + j]; }
  double QUp(size_t i, size_t j) const { return qup[i * stride_ + j]; }

  /// Candidate i's contiguous per-subregion bound rows (padded; see
  /// common/aligned.h). The kernels' unit-stride access path.
  double* QLowRow(size_t i) { return qlow.data() + i * stride_; }
  double* QUpRow(size_t i) { return qup.data() + i * stride_; }
  const double* QLowRow(size_t i) const { return qlow.data() + i * stride_; }
  const double* QUpRow(size_t i) const { return qup.data() + i * stride_; }

  /// Padded length of each q-bound row.
  size_t stride() const { return stride_; }

  /// Recomputes candidate i's probability bound from the per-subregion
  /// bounds (Eq. 4 and its upper-bound analogue) and tightens it.
  void RefreshBound(size_t i);

  /// Batched RefreshBound over every still-unknown candidate. The verifier
  /// passes update all rows first and refresh once, which keeps the Eq. 4
  /// reduction streaming over contiguous SoA rows instead of interleaving
  /// with the (branchy) per-subregion tightening.
  void RefreshAllBounds();

  CandidateSet* candidates = nullptr;     // not owned
  const SubregionTable* table = nullptr;  // not owned
  AlignedVector<double> qlow;  // n rows × stride(): q_ij.l, logical width M
  AlignedVector<double> qup;   // n rows × stride(): q_ij.u, logical width M
  AlignedVector<double> prod;  // one row: Π_{k≠i}(1−D_k(e_j)) workspace

 private:
  size_t stride_ = 0;
};

/// Base class for the probabilistic verifiers of §IV.
class Verifier {
 public:
  virtual ~Verifier() = default;

  virtual std::string_view name() const = 0;

  /// Tightens bounds of candidates labeled kUnknown.
  virtual void Apply(VerificationContext& ctx) = 0;
};

/// The Rightmost-Subregion verifier (§IV-B, Lemma 1): p_i.u <= 1 − s_iM.
/// Cost O(|C|).
class RsVerifier : public Verifier {
 public:
  std::string_view name() const override { return "RS"; }
  void Apply(VerificationContext& ctx) override;
};

/// The Lower-Subregion verifier (§IV-C, Lemma 2 + Eq. 4): per-subregion
/// lower bounds q_ij.l = (1/c_j)·Π_{k≠i}(1 − D_k(e_j)). Cost O(|C|·M).
class LsrVerifier : public Verifier {
 public:
  std::string_view name() const override { return "L-SR"; }
  void Apply(VerificationContext& ctx) override;
};

/// The Upper-Subregion verifier (§IV-C, Eq. 5/11 + Appendix I): per-
/// subregion upper bounds q_ij.u = ½(Pr(F) + Pr(E)). Cost O(|C|·M).
class UsrVerifier : public Verifier {
 public:
  std::string_view name() const override { return "U-SR"; }
  void Apply(VerificationContext& ctx) override;
};

/// The paper's default chain {RS, L-SR, U-SR}, ordered by running cost.
std::vector<std::unique_ptr<Verifier>> MakeDefaultVerifierChain();

}  // namespace pverify

#endif  // PVERIFY_CORE_VERIFIER_H_
