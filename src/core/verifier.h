// Probabilistic verifier interface and the verification context shared by
// the verifier chain (paper §IV).
//
// A verifier inspects the subregion table and tightens the probability
// bounds of still-unknown candidates; the classifier then re-labels them.
// Verifiers additionally record per-subregion qualification-probability
// bounds [q_ij.l, q_ij.u] in the context so that incremental refinement
// (§IV-D) can collapse them one subregion at a time.
#ifndef PVERIFY_CORE_VERIFIER_H_
#define PVERIFY_CORE_VERIFIER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/candidate.h"
#include "core/subregion.h"
#include "core/types.h"

namespace pverify {

/// Mutable state threaded through the verifier chain and into refinement.
struct VerificationContext {
  /// An empty context; Reset() must run before any verifier touches it.
  /// Default-constructible so a QueryScratch can hold one across queries.
  VerificationContext() = default;

  VerificationContext(CandidateSet* cands, const SubregionTable* tbl) {
    Reset(cands, tbl);
  }

  /// Re-targets the context at a (new) candidate set and subregion table,
  /// reinitializing the n×M bound arrays. assign() reuses the vectors'
  /// capacity, so a context reset across queries stops allocating once the
  /// buffers reach the workload's high-water mark.
  void Reset(CandidateSet* cands, const SubregionTable* tbl) {
    candidates = cands;
    table = tbl;
    const size_t n = tbl->num_candidates();
    const size_t m = tbl->num_subregions();
    qlow.assign(n * m, 0.0);
    qup.assign(n * m, 1.0);
    // The rightmost subregion carries zero qualification probability
    // (paper: "the probability of any object in S_M must be zero").
    for (size_t i = 0; i < n; ++i) qup[i * m + (m - 1)] = 0.0;
  }

  double& QLow(size_t i, size_t j) {
    return qlow[i * table->num_subregions() + j];
  }
  double& QUp(size_t i, size_t j) {
    return qup[i * table->num_subregions() + j];
  }
  double QLow(size_t i, size_t j) const {
    return qlow[i * table->num_subregions() + j];
  }
  double QUp(size_t i, size_t j) const {
    return qup[i * table->num_subregions() + j];
  }

  /// Recomputes candidate i's probability bound from the per-subregion
  /// bounds (Eq. 4 and its upper-bound analogue) and tightens it.
  void RefreshBound(size_t i);

  CandidateSet* candidates = nullptr;    // not owned
  const SubregionTable* table = nullptr;  // not owned
  std::vector<double> qlow;  // n × M per-subregion lower bounds q_ij.l
  std::vector<double> qup;   // n × M per-subregion upper bounds q_ij.u
};

/// Base class for the probabilistic verifiers of §IV.
class Verifier {
 public:
  virtual ~Verifier() = default;

  virtual std::string_view name() const = 0;

  /// Tightens bounds of candidates labeled kUnknown.
  virtual void Apply(VerificationContext& ctx) = 0;
};

/// The Rightmost-Subregion verifier (§IV-B, Lemma 1): p_i.u <= 1 − s_iM.
/// Cost O(|C|).
class RsVerifier : public Verifier {
 public:
  std::string_view name() const override { return "RS"; }
  void Apply(VerificationContext& ctx) override;
};

/// The Lower-Subregion verifier (§IV-C, Lemma 2 + Eq. 4): per-subregion
/// lower bounds q_ij.l = (1/c_j)·Π_{k≠i}(1 − D_k(e_j)). Cost O(|C|·M).
class LsrVerifier : public Verifier {
 public:
  std::string_view name() const override { return "L-SR"; }
  void Apply(VerificationContext& ctx) override;
};

/// The Upper-Subregion verifier (§IV-C, Eq. 5/11 + Appendix I): per-
/// subregion upper bounds q_ij.u = ½(Pr(F) + Pr(E)). Cost O(|C|·M).
class UsrVerifier : public Verifier {
 public:
  std::string_view name() const override { return "U-SR"; }
  void Apply(VerificationContext& ctx) override;
};

/// The paper's default chain {RS, L-SR, U-SR}, ordered by running cost.
std::vector<std::unique_ptr<Verifier>> MakeDefaultVerifierChain();

}  // namespace pverify

#endif  // PVERIFY_CORE_VERIFIER_H_
