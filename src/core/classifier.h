// The classifier of the verification framework (paper §III-B): labels a
// candidate by checking its probability bound against Definition 1.
#ifndef PVERIFY_CORE_CLASSIFIER_H_
#define PVERIFY_CORE_CLASSIFIER_H_

#include "core/candidate.h"
#include "core/types.h"

namespace pverify {

/// Labels one probability bound against threshold P and tolerance Δ:
///  * kSatisfy iff upper >= P and (lower >= P or upper − lower <= Δ);
///  * kFail    iff upper < P;
///  * kUnknown otherwise.
Label Classify(const ProbabilityBound& bound, const CpnnParams& params);

/// Re-labels every still-unknown candidate from its current bound.
/// Returns the number of candidates that remain kUnknown.
size_t ClassifyAll(CandidateSet& candidates, const CpnnParams& params);

}  // namespace pverify

#endif  // PVERIFY_CORE_CLASSIFIER_H_
