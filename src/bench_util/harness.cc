#include "bench_util/harness.h"

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"

namespace pverify {
namespace bench {

Environment::Environment(Dataset data, size_t num_queries,
                         uint64_t query_seed)
    : dataset(std::move(data)),
      executor(dataset),
      query_points(datagen::MakeQueryPoints(num_queries, 0.0, 10000.0,
                                            query_seed)) {}

Environment MakeDefaultEnvironment(datagen::PdfKind pdf, size_t num_queries,
                                   size_t count) {
  datagen::SyntheticConfig config;
  config.pdf = pdf;
  config.count = count;
  return Environment(datagen::MakeSynthetic(config), num_queries,
                     /*query_seed=*/101);
}

size_t QueriesFromEnv(size_t fallback) {
  const char* v = std::getenv("PVERIFY_QUERIES");
  if (v == nullptr) return fallback;
  long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

size_t DatasetSizeFromEnv(size_t fallback) {
  const char* v = std::getenv("PVERIFY_DATASET");
  if (v == nullptr) return fallback;
  long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

void PrintHeader(const std::string& figure, const std::string& description) {
  std::printf("=== %s ===\n%s\n\n", figure.c_str(), description.c_str());
}

ThroughputPoint TimeSequentialLoop(const CpnnExecutor& executor,
                                   const std::vector<double>& points,
                                   const QueryOptions& options) {
  ThroughputPoint point;
  point.threads = 0;
  point.queries = points.size();
  Timer wall;
  for (double q : points) {
    point.answers += executor.Execute(q, options).ids.size();
  }
  point.wall_ms = wall.ElapsedMs();
  return point;
}

namespace {

// Shared driver behind the batch timers: builds the point requests, runs
// ExecuteBatch and repackages the engine-reported wall time. The engine
// already measures the batch wall time; reuse it rather than keeping a
// second clock that could drift from the reported stats.
template <typename Point>
ThroughputPoint TimeBatchImpl(Engine& engine,
                              const std::vector<Point>& points,
                              const QueryOptions& options,
                              EngineStats* stats) {
  std::vector<QueryRequest> batch;
  batch.reserve(points.size());
  for (Point q : points) batch.push_back(MakePointRequest(q, options));

  EngineStats local_stats;
  std::vector<QueryResult> results =
      engine.ExecuteBatch(std::move(batch), &local_stats);
  ThroughputPoint point;
  point.threads = engine.num_threads();
  point.queries = points.size();
  for (const QueryResult& r : results) point.answers += r.ids.size();
  point.wall_ms = local_stats.wall_ms;
  if (stats != nullptr) *stats = std::move(local_stats);
  return point;
}

}  // namespace

ThroughputPoint TimeSequentialLoop(const CpnnExecutor2D& executor,
                                   const std::vector<Point2>& points,
                                   const QueryOptions& options) {
  ThroughputPoint point;
  point.threads = 0;
  point.queries = points.size();
  Timer wall;
  for (Point2 q : points) {
    point.answers += executor.Execute(q, options).ids.size();
  }
  point.wall_ms = wall.ElapsedMs();
  return point;
}

ThroughputPoint TimeBatch(Engine& engine, const std::vector<double>& points,
                          const QueryOptions& options, EngineStats* stats) {
  return TimeBatchImpl(engine, points, options, stats);
}

ThroughputPoint TimeBatch(Engine& engine, const std::vector<Point2>& points,
                          const QueryOptions& options, EngineStats* stats) {
  return TimeBatchImpl(engine, points, options, stats);
}

std::vector<size_t> ThreadCountsFromEnv(std::vector<size_t> fallback) {
  const char* v = std::getenv("PVERIFY_THREADS");
  if (v == nullptr) return fallback;
  std::vector<size_t> counts;
  const char* p = v;
  while (*p != '\0') {
    char* end = nullptr;
    long n = std::strtol(p, &end, 10);
    if (end == p) break;
    if (n > 0) counts.push_back(static_cast<size_t>(n));
    p = (*end == ',') ? end + 1 : end;
  }
  return counts.empty() ? fallback : counts;
}

}  // namespace bench
}  // namespace pverify
