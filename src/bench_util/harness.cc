#include "bench_util/harness.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/timer.h"

namespace pverify {
namespace bench {

Environment::Environment(Dataset data, size_t num_queries,
                         uint64_t query_seed)
    : dataset(std::move(data)),
      executor(dataset),
      query_points(datagen::MakeQueryPoints(num_queries, 0.0, 10000.0,
                                            query_seed)) {}

Environment MakeDefaultEnvironment(datagen::PdfKind pdf, size_t num_queries,
                                   size_t count) {
  datagen::SyntheticConfig config;
  config.pdf = pdf;
  config.count = count;
  return Environment(datagen::MakeSynthetic(config), num_queries,
                     /*query_seed=*/101);
}

size_t QueriesFromEnv(size_t fallback) {
  const char* v = std::getenv("PVERIFY_QUERIES");
  if (v == nullptr) return fallback;
  long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

size_t DatasetSizeFromEnv(size_t fallback) {
  const char* v = std::getenv("PVERIFY_DATASET");
  if (v == nullptr) return fallback;
  long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

double MinWallMsFromEnv(double fallback) {
  const char* v = std::getenv("PVERIFY_MIN_WALL_MS");
  if (v == nullptr) return fallback;
  char* end = nullptr;
  double ms = std::strtod(v, &end);
  return end != v && ms >= 0.0 ? ms : fallback;
}

void PrintHeader(const std::string& figure, const std::string& description) {
  std::printf("=== %s ===\n%s\n\n", figure.c_str(), description.c_str());
}

ThroughputPoint TimeSequentialLoop(const CpnnExecutor& executor,
                                   const std::vector<double>& points,
                                   const QueryOptions& options) {
  ThroughputPoint point;
  point.threads = 0;
  point.queries = points.size();
  Timer wall;
  for (double q : points) {
    point.answers += executor.Execute(q, options).ids.size();
  }
  point.wall_ms = wall.ElapsedMs();
  return point;
}

namespace {

// Shared driver behind the batch timers: builds the point requests, runs
// ExecuteBatch and repackages the engine-reported wall time. The engine
// already measures the batch wall time; reuse it rather than keeping a
// second clock that could drift from the reported stats.
template <typename Point>
ThroughputPoint TimeBatchImpl(Engine& engine,
                              const std::vector<Point>& points,
                              const QueryOptions& options,
                              EngineStats* stats) {
  std::vector<QueryRequest> batch;
  batch.reserve(points.size());
  for (Point q : points) batch.push_back(MakePointRequest(q, options));

  EngineStats local_stats;
  std::vector<QueryResult> results =
      engine.ExecuteBatch(std::move(batch), &local_stats);
  ThroughputPoint point;
  point.threads = engine.num_threads();
  point.queries = points.size();
  for (const QueryResult& r : results) point.answers += r.ids.size();
  point.wall_ms = local_stats.wall_ms;
  if (stats != nullptr) *stats = std::move(local_stats);
  return point;
}

}  // namespace

ThroughputPoint TimeSequentialLoop(const CpnnExecutor2D& executor,
                                   const std::vector<Point2>& points,
                                   const QueryOptions& options) {
  ThroughputPoint point;
  point.threads = 0;
  point.queries = points.size();
  Timer wall;
  for (Point2 q : points) {
    point.answers += executor.Execute(q, options).ids.size();
  }
  point.wall_ms = wall.ElapsedMs();
  return point;
}

ThroughputPoint TimeBatch(Engine& engine, const std::vector<double>& points,
                          const QueryOptions& options, EngineStats* stats) {
  return TimeBatchImpl(engine, points, options, stats);
}

ThroughputPoint TimeBatch(Engine& engine, const std::vector<Point2>& points,
                          const QueryOptions& options, EngineStats* stats) {
  return TimeBatchImpl(engine, points, options, stats);
}

namespace {

/// Repeats `measure` (one full workload pass returning a ThroughputPoint)
/// until the accumulated wall time reaches the floor, folding every pass
/// into one aggregate point.
template <typename MeasureFn>
ThroughputPoint RepeatToFloor(double min_wall_ms, MeasureFn&& measure) {
  ThroughputPoint total;
  total.reps = 0;
  do {
    ThroughputPoint pass = measure();
    total.threads = pass.threads;
    total.queries += pass.queries;
    total.answers += pass.answers;
    total.wall_ms += pass.wall_ms;
    ++total.reps;
  } while (total.wall_ms < min_wall_ms);
  return total;
}

}  // namespace

ThroughputPoint TimeSequentialLoopFloored(const CpnnExecutor& executor,
                                          const std::vector<double>& points,
                                          const QueryOptions& options,
                                          double min_wall_ms) {
  return RepeatToFloor(min_wall_ms, [&] {
    return TimeSequentialLoop(executor, points, options);
  });
}

ThroughputPoint TimeBatchFloored(Engine& engine,
                                 const std::vector<double>& points,
                                 const QueryOptions& options,
                                 double min_wall_ms, EngineStats* stats) {
  return RepeatToFloor(min_wall_ms, [&] {
    return TimeBatchImpl(engine, points, options, stats);
  });
}

ThroughputPoint TimeBatchFloored(Engine& engine,
                                 const std::vector<Point2>& points,
                                 const QueryOptions& options,
                                 double min_wall_ms, EngineStats* stats) {
  return RepeatToFloor(min_wall_ms, [&] {
    return TimeBatchImpl(engine, points, options, stats);
  });
}

ThroughputPoint TimeSubmitStreamFloored(Engine& engine,
                                        const std::vector<double>& points,
                                        const QueryOptions& options,
                                        double min_wall_ms) {
  return RepeatToFloor(min_wall_ms, [&] {
    return TimeSubmitStream(engine, points, options);
  });
}

ThroughputPoint TimeSubmitStreamFloored(Engine& engine,
                                        const std::vector<Point2>& points,
                                        const QueryOptions& options,
                                        double min_wall_ms) {
  return RepeatToFloor(min_wall_ms, [&] {
    return TimeSubmitStream(engine, points, options);
  });
}

namespace {

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

std::string JsonString(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      continue;
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

BenchJsonWriter::BenchJsonWriter(std::string bench, std::string path)
    : bench_(std::move(bench)), path_(std::move(path)) {}

void BenchJsonWriter::Config(const std::string& key, double value) {
  config_.push_back({key, JsonNumber(value)});
}

void BenchJsonWriter::Config(const std::string& key,
                             const std::string& value) {
  config_.push_back({key, JsonString(value)});
}

void BenchJsonWriter::BeginResult() { results_.emplace_back(); }

void BenchJsonWriter::Field(const std::string& key, double value) {
  results_.back().push_back({key, JsonNumber(value)});
}

void BenchJsonWriter::Field(const std::string& key,
                            const std::string& value) {
  results_.back().push_back({key, JsonString(value)});
}

bool BenchJsonWriter::Write() const {
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
    return false;
  }
  auto print_entries = [f](const std::vector<Entry>& entries) {
    for (size_t i = 0; i < entries.size(); ++i) {
      std::fprintf(f, "%s%s: %s", i == 0 ? "" : ", ",
                   JsonString(entries[i].key).c_str(),
                   entries[i].encoded.c_str());
    }
  };
  std::fprintf(f, "{\n  \"bench\": %s,\n  \"config\": {",
               JsonString(bench_).c_str());
  print_entries(config_);
  std::fprintf(f, "},\n  \"results\": [\n");
  for (size_t r = 0; r < results_.size(); ++r) {
    std::fprintf(f, "    {");
    print_entries(results_[r]);
    std::fprintf(f, "}%s\n", r + 1 < results_.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("json results written to %s\n", path_.c_str());
  return true;
}

std::vector<size_t> ThreadCountsFromEnv(std::vector<size_t> fallback) {
  const char* v = std::getenv("PVERIFY_THREADS");
  if (v == nullptr) return fallback;
  std::vector<size_t> counts;
  const char* p = v;
  while (*p != '\0') {
    char* end = nullptr;
    long n = std::strtol(p, &end, 10);
    if (end == p) break;
    if (n > 0) counts.push_back(static_cast<size_t>(n));
    p = (*end == ',') ? end + 1 : end;
  }
  return counts.empty() ? fallback : counts;
}

}  // namespace bench
}  // namespace pverify
