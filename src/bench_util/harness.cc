#include "bench_util/harness.h"

#include <cstdio>
#include <cstdlib>

namespace pverify {
namespace bench {

Environment::Environment(Dataset data, size_t num_queries,
                         uint64_t query_seed)
    : dataset(std::move(data)),
      executor(dataset),
      query_points(datagen::MakeQueryPoints(num_queries, 0.0, 10000.0,
                                            query_seed)) {}

Environment MakeDefaultEnvironment(datagen::PdfKind pdf, size_t num_queries,
                                   size_t count) {
  datagen::SyntheticConfig config;
  config.pdf = pdf;
  config.count = count;
  return Environment(datagen::MakeSynthetic(config), num_queries,
                     /*query_seed=*/101);
}

size_t QueriesFromEnv(size_t fallback) {
  const char* v = std::getenv("PVERIFY_QUERIES");
  if (v == nullptr) return fallback;
  long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

size_t DatasetSizeFromEnv(size_t fallback) {
  const char* v = std::getenv("PVERIFY_DATASET");
  if (v == nullptr) return fallback;
  long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

void PrintHeader(const std::string& figure, const std::string& description) {
  std::printf("=== %s ===\n%s\n\n", figure.c_str(), description.c_str());
}

}  // namespace bench
}  // namespace pverify
