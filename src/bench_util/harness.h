// Shared scaffolding for the per-figure benchmark binaries: standard
// datasets, workloads and sweep drivers so every figure harness stays short
// and uniform.
#ifndef PVERIFY_BENCH_UTIL_HARNESS_H_
#define PVERIFY_BENCH_UTIL_HARNESS_H_

#include <future>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/timer.h"
#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "engine/engine.h"
#include "engine/query_engine.h"
#include "engine/sharded_engine.h"

namespace pverify {
namespace bench {

/// Standard experiment environment mirroring the paper's §V-A setup.
struct Environment {
  Dataset dataset;
  CpnnExecutor executor;
  std::vector<double> query_points;

  Environment(Dataset data, size_t num_queries, uint64_t query_seed);
};

/// Long-Beach-like environment (53,144 intervals unless `count` overrides)
/// with `num_queries` random query points. Benchmarks default to fewer
/// queries than the paper's 100 to keep the full suite fast; pass 100 for a
/// faithful run.
Environment MakeDefaultEnvironment(datagen::PdfKind pdf,
                                   size_t num_queries = 20,
                                   size_t count = 53144);

/// Number of queries per configuration, overridable via PVERIFY_QUERIES.
size_t QueriesFromEnv(size_t fallback);

/// Dataset size override helper (PVERIFY_DATASET).
size_t DatasetSizeFromEnv(size_t fallback);

/// Minimum wall time of a timed region in milliseconds, overridable via
/// PVERIFY_MIN_WALL_MS. Sub-100ms regions are overhead-dominated noise on
/// shared hosts, so the *Floored timers below repeat the workload until
/// the accumulated region crosses this floor.
double MinWallMsFromEnv(double fallback = 100.0);

/// Prints a standard header naming the figure and its setup.
void PrintHeader(const std::string& figure, const std::string& description);

/// One throughput measurement of a query workload.
struct ThroughputPoint {
  size_t threads = 0;  ///< 0 for the sequential (no-engine) loop
  size_t queries = 0;  ///< total across repetitions
  size_t answers = 0;  ///< total returned ids (cheap equivalence check)
  size_t reps = 1;     ///< workload repetitions folded into this point
  double wall_ms = 0.0;  ///< total across repetitions
  double Qps() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(queries) / wall_ms
                         : 0.0;
  }
};

/// Times a plain sequential loop of CpnnExecutor::Execute over the points
/// (the seed's one-query-at-a-time behavior; the engine's baseline).
ThroughputPoint TimeSequentialLoop(const CpnnExecutor& executor,
                                   const std::vector<double>& points,
                                   const QueryOptions& options);

/// 2-D counterpart: a sequential CpnnExecutor2D::Execute loop.
ThroughputPoint TimeSequentialLoop(const CpnnExecutor2D& executor,
                                   const std::vector<Point2>& points,
                                   const QueryOptions& options);

/// Builds the engine request for a query point of either dimensionality —
/// lets the workload drivers below stay dimension-agnostic.
inline QueryRequest MakePointRequest(double q, const QueryOptions& options) {
  return PointQuery{q, options};
}
inline QueryRequest MakePointRequest(Point2 q, const QueryOptions& options) {
  return Point2DQuery{q, options};
}

/// Times one Engine::ExecuteBatch over the points at the engine's thread
/// count — sharded vs. unsharded is whatever the caller constructed.
/// `stats` (optional) receives the batch aggregate.
ThroughputPoint TimeBatch(Engine& engine, const std::vector<double>& points,
                          const QueryOptions& options,
                          EngineStats* stats = nullptr);
ThroughputPoint TimeBatch(Engine& engine, const std::vector<Point2>& points,
                          const QueryOptions& options,
                          EngineStats* stats = nullptr);

/// Floored variants: repeat the workload until the accumulated timed
/// region reaches `min_wall_ms`, folding every repetition into one point
/// (Qps and per-query averages stay valid; `reps` records the count).
/// Use these for any number that lands in a table — a sub-floor region
/// measures scheduling overhead, not the engine. `stats`, when provided,
/// holds the FINAL repetition's batch aggregate (per-rep quantities like
/// AvgQueryMs stay meaningful; do not mix its wall_ms with the returned
/// point's all-reps total).
ThroughputPoint TimeSequentialLoopFloored(const CpnnExecutor& executor,
                                          const std::vector<double>& points,
                                          const QueryOptions& options,
                                          double min_wall_ms);
ThroughputPoint TimeBatchFloored(Engine& engine,
                                 const std::vector<double>& points,
                                 const QueryOptions& options,
                                 double min_wall_ms,
                                 EngineStats* stats = nullptr);
ThroughputPoint TimeBatchFloored(Engine& engine,
                                 const std::vector<Point2>& points,
                                 const QueryOptions& options,
                                 double min_wall_ms,
                                 EngineStats* stats = nullptr);
ThroughputPoint TimeSubmitStreamFloored(Engine& engine,
                                        const std::vector<double>& points,
                                        const QueryOptions& options,
                                        double min_wall_ms);
ThroughputPoint TimeSubmitStreamFloored(Engine& engine,
                                        const std::vector<Point2>& points,
                                        const QueryOptions& options,
                                        double min_wall_ms);

/// Times an async-submission stream: every point Submit()ed back to back
/// (no explicit batch), then all futures drained. Measures the coalescing
/// path end to end, for any Engine and both dimensionalities.
template <typename Point>
ThroughputPoint TimeSubmitStream(Engine& engine,
                                 const std::vector<Point>& points,
                                 const QueryOptions& options) {
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(points.size());
  ThroughputPoint point;
  point.threads = engine.num_threads();
  point.queries = points.size();
  Timer wall;
  for (Point q : points) {
    futures.push_back(engine.Submit(MakePointRequest(q, options)));
  }
  for (std::future<QueryResult>& f : futures) {
    point.answers += f.get().ids.size();
  }
  point.wall_ms = wall.ElapsedMs();
  return point;
}

/// Worker-thread counts to sweep, overridable via PVERIFY_THREADS
/// (comma-separated list, e.g. "1,2,4,8").
std::vector<size_t> ThreadCountsFromEnv(std::vector<size_t> fallback);

/// Accumulates bench results and writes them as machine-readable JSON
/// (e.g. BENCH_engine.json) alongside the human tables/CSVs, so CI can
/// archive the perf trajectory per PR. Usage:
///
///   BenchJsonWriter json("engine_throughput", "BENCH_engine.json");
///   json.Config("queries", 200);
///   json.BeginResult();
///   json.Field("name", "batch");
///   json.Field("qps", point.Qps());
///   json.Write();
class BenchJsonWriter {
 public:
  BenchJsonWriter(std::string bench, std::string path);

  /// Top-level config scalars (workload shape, host facts).
  void Config(const std::string& key, double value);
  void Config(const std::string& key, const std::string& value);

  /// Starts a new result record; subsequent Field() calls fill it.
  void BeginResult();
  void Field(const std::string& key, double value);
  void Field(const std::string& key, const std::string& value);

  /// Writes the file and reports the path on stdout. Returns false (after
  /// a warning on stderr) when the file cannot be written.
  bool Write() const;

 private:
  struct Entry {
    std::string key;
    std::string encoded;  ///< pre-encoded JSON value
  };
  std::string bench_;
  std::string path_;
  std::vector<Entry> config_;
  std::vector<std::vector<Entry>> results_;
};

}  // namespace bench
}  // namespace pverify

#endif  // PVERIFY_BENCH_UTIL_HARNESS_H_
