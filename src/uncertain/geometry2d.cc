#include "uncertain/geometry2d.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/piecewise.h"

namespace pverify {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Antiderivative of h(x) = sqrt(r² − x²): ∫ h dx = (x·h(x) + r²·asin(x/r))/2.
double HalfDiskAntiderivative(double x, double r) {
  x = std::clamp(x, -r, r);
  double h = std::sqrt(std::max(0.0, r * r - x * x));
  return 0.5 * (x * h + r * r * std::asin(std::clamp(x / r, -1.0, 1.0)));
}

// ∫_{a}^{b} sqrt(r² − x²) dx, exact.
double IntegralOfH(double a, double b, double r) {
  return HalfDiskAntiderivative(b, r) - HalfDiskAntiderivative(a, r);
}

}  // namespace

double Circle2::Area() const { return kPi * r * r; }

double Distance(Point2 a, Point2 b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

double MinDistToRect(Point2 q, const Rect2& rect) {
  double dx = std::max({rect.x1 - q.x, 0.0, q.x - rect.x2});
  double dy = std::max({rect.y1 - q.y, 0.0, q.y - rect.y2});
  return std::hypot(dx, dy);
}

double MaxDistToRect(Point2 q, const Rect2& rect) {
  double dx = std::max(std::abs(q.x - rect.x1), std::abs(q.x - rect.x2));
  double dy = std::max(std::abs(q.y - rect.y1), std::abs(q.y - rect.y2));
  return std::hypot(dx, dy);
}

double MinDistToCircle(Point2 q, const Circle2& c) {
  double d = Distance(q, {c.cx, c.cy});
  return std::max(0.0, d - c.r);
}

double MaxDistToCircle(Point2 q, const Circle2& c) {
  return Distance(q, {c.cx, c.cy}) + c.r;
}

namespace {

// Per-radius kernel shared by the single-shot and batched rect entry
// points: the rect is already translated into the disk frame and `cuts` is
// caller-provided workspace. Keeping one kernel is what makes the batched
// scan bit-identical to per-radius calls by construction.
double RectAreaAtRadius(double r, double x1, double x2, double y1, double y2,
                        std::vector<double>& cuts) {
  const double a = std::max(x1, -r);
  const double b = std::min(x2, r);
  if (b <= a) return 0.0;

  // Split [a, b] wherever the disk boundary crosses y = y1 or y = y2, then
  // integrate the clipped vertical extent exactly on each piece.
  cuts.clear();
  cuts.push_back(a);
  cuts.push_back(b);
  for (double y : {y1, y2}) {
    if (std::abs(y) < r) {
      double xc = std::sqrt(r * r - y * y);
      if (xc > a && xc < b) cuts.push_back(xc);
      if (-xc > a && -xc < b) cuts.push_back(-xc);
    }
  }
  SortedUniqueInPlace(cuts);

  double area = 0.0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double lo = cuts[i];
    const double hi = cuts[i + 1];
    const double xm = 0.5 * (lo + hi);
    const double h = std::sqrt(std::max(0.0, r * r - xm * xm));
    // Within the piece, which of {y2, h} is the upper envelope and which of
    // {y1, −h} is the lower envelope cannot change (no crossings inside).
    const bool top_is_rect = y2 <= h;   // upper = y2, else upper = h(x)
    const bool bot_is_rect = y1 >= -h;  // lower = y1, else lower = −h(x)
    const double upper_mid = top_is_rect ? y2 : h;
    const double lower_mid = bot_is_rect ? y1 : -h;
    if (upper_mid <= lower_mid) continue;  // empty strip
    double piece = 0.0;
    if (top_is_rect && bot_is_rect) {
      piece = (y2 - y1) * (hi - lo);
    } else if (top_is_rect && !bot_is_rect) {
      piece = y2 * (hi - lo) + IntegralOfH(lo, hi, r);
    } else if (!top_is_rect && bot_is_rect) {
      piece = IntegralOfH(lo, hi, r) - y1 * (hi - lo);
    } else {
      piece = 2.0 * IntegralOfH(lo, hi, r);
    }
    area += std::max(0.0, piece);
  }
  return area;
}

// Per-radius kernel of the disk case: the center distance d is the loop
// invariant the batched scan hoists.
double CircleOverlapAtRadius(double r1, double r2, double d) {
  if (r1 == 0.0 || r2 == 0.0) return 0.0;
  if (d >= r1 + r2) return 0.0;  // disjoint
  if (d <= std::abs(r1 - r2)) {  // one inside the other
    double rmin = std::min(r1, r2);
    return kPi * rmin * rmin;
  }
  // Lens area via two circular segments.
  const double d1 = (d * d + r1 * r1 - r2 * r2) / (2.0 * d);
  const double d2 = d - d1;
  auto segment = [](double radius, double dist) {
    double cosv = std::clamp(dist / radius, -1.0, 1.0);
    return radius * radius * std::acos(cosv) -
           dist * std::sqrt(std::max(0.0, radius * radius - dist * dist));
  };
  return segment(r1, d1) + segment(r2, d2);
}

}  // namespace

double CircleRectIntersectionArea(Point2 q, double r, const Rect2& rect) {
  PV_CHECK_MSG(r >= 0.0, "negative radius");
  if (r == 0.0) return 0.0;
  // Translate so the disk is centered at the origin.
  std::vector<double> cuts;
  return RectAreaAtRadius(r, rect.x1 - q.x, rect.x2 - q.x, rect.y1 - q.y,
                          rect.y2 - q.y, cuts);
}

double CircleCircleIntersectionArea(Point2 q, double r, const Circle2& c) {
  PV_CHECK_MSG(r >= 0.0 && c.r >= 0.0, "negative radius");
  return CircleOverlapAtRadius(r, c.r, Distance(q, {c.cx, c.cy}));
}

void CircleRectIntersectionAreas(Point2 q, const double* rs, size_t n,
                                 const Rect2& rect, double* out,
                                 std::vector<double>& cuts) {
  // Hoisted per-call invariants: one translation for the whole grid.
  const double x1 = rect.x1 - q.x;
  const double x2 = rect.x2 - q.x;
  const double y1 = rect.y1 - q.y;
  const double y2 = rect.y2 - q.y;
  for (size_t i = 0; i < n; ++i) {
    PV_CHECK_MSG(rs[i] >= 0.0, "negative radius");
    out[i] = rs[i] == 0.0
                 ? 0.0
                 : RectAreaAtRadius(rs[i], x1, x2, y1, y2, cuts);
  }
}

void CircleCircleIntersectionAreas(Point2 q, const double* rs, size_t n,
                                   const Circle2& c, double* out) {
  const double d = Distance(q, {c.cx, c.cy});  // hoisted
  for (size_t i = 0; i < n; ++i) {
    PV_CHECK_MSG(rs[i] >= 0.0, "negative radius");
    out[i] = CircleOverlapAtRadius(rs[i], c.r, d);
  }
}

}  // namespace pverify
