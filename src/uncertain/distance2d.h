// Distance distributions of 2-D uniform uncertain objects.
//
// The paper focuses on 1-D uncertainty but notes (§IV-A) that "our solution
// only needs distance pdfs and cdfs. Thus, our solution can be extended to
// 2D space, by computing the distance pdf and cdf from the 2D uncertainty
// regions". This module performs that conversion for uniform pdfs over
// rectangles and disks: the radial cdf D(r) = area(region ∩ disk(q,r)) /
// area(region) is computed with exact geometry at a configurable number of
// radii, then differenced into a step-function distance pdf that plugs into
// the same verifier machinery as the 1-D case.
#ifndef PVERIFY_UNCERTAIN_DISTANCE2D_H_
#define PVERIFY_UNCERTAIN_DISTANCE2D_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "uncertain/distance_distribution.h"
#include "uncertain/geometry2d.h"
#include "uncertain/uncertain_object.h"

namespace pverify {

/// A 2-D uncertain object with a uniform pdf over a rectangle or a disk.
class UncertainObject2D {
 public:
  UncertainObject2D(ObjectId id, Rect2 rect) : id_(id), region_(rect) {}
  UncertainObject2D(ObjectId id, Circle2 circle) : id_(id), region_(circle) {}

  ObjectId id() const { return id_; }
  bool is_rect() const { return std::holds_alternative<Rect2>(region_); }
  const Rect2& rect() const { return std::get<Rect2>(region_); }
  const Circle2& circle() const { return std::get<Circle2>(region_); }

  double Area() const;
  double MinDist(Point2 q) const;
  double MaxDist(Point2 q) const;

  /// Exact area of the region clipped to disk(q, r).
  double AreaWithinDistance(Point2 q, double r) const;

  /// Batched variant over an ascending radius grid: `out[i]` =
  /// AreaWithinDistance(q, rs[i]), bit-identical, with the per-call
  /// geometry invariants hoisted out of the loop and `cuts` reused as the
  /// rectangle case's split workspace (unused for disks). This is the
  /// radial-cdf build's merge-scan path — one pass over the grid instead
  /// of one full geometry setup per radius.
  void AreaWithinDistanceSorted(Point2 q, const double* rs, size_t n,
                                double* out, std::vector<double>& cuts) const;

 private:
  ObjectId id_;
  std::variant<Rect2, Circle2> region_;
};

/// Builds the distance distribution of a 2-D object w.r.t. q by evaluating
/// the exact radial cdf at `pieces`+1 radii between the near and far points.
/// The resulting step pdf is exact in total mass and monotone by
/// construction.
DistanceDistribution MakeDistanceDistribution2D(const UncertainObject2D& obj,
                                                Point2 q, int pieces = 64);

/// In-place variant for hot paths: rebuilds `out` (reusing its storage) with
/// `breaks`/`values` as radial-cdf work buffers. Same arithmetic as
/// MakeDistanceDistribution2D, so the result is bit-identical; once the
/// buffer and `out` capacities cover the piece count, no allocation happens.
/// The radial cdf is evaluated through AreaWithinDistanceSorted — one
/// batched scan over the ascending radius grid. `cuts`, when provided, is
/// the scan's split-point workspace (a CandidateArena passes its recycled
/// buffer); nullptr uses a local vector.
void MakeDistanceDistribution2DInto(const UncertainObject2D& obj, Point2 q,
                                    int pieces, DistanceDistribution* out,
                                    std::vector<double>& breaks,
                                    std::vector<double>& values,
                                    std::vector<double>* cuts = nullptr);

using Dataset2D = std::vector<UncertainObject2D>;

}  // namespace pverify

#endif  // PVERIFY_UNCERTAIN_DISTANCE2D_H_
