#include "uncertain/pdf.h"

#include <cmath>
#include <utility>

#include "common/check.h"

namespace pverify {

Pdf::Pdf(StepFunction density, std::string name)
    : density_(std::move(density)), name_(std::move(name)) {
  PV_CHECK_MSG(!density_.empty(), "pdf needs at least one bar");
  density_ = density_.Normalized();
}

double Pdf::Mean() const {
  const auto& b = density_.breaks();
  const auto& v = density_.values();
  double m = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    // ∫ x·v dx over the bar = v · (b1² − b0²)/2.
    m += v[i] * 0.5 * (b[i + 1] * b[i + 1] - b[i] * b[i]);
  }
  return m;
}

double Pdf::Variance() const {
  const auto& b = density_.breaks();
  const auto& v = density_.values();
  double m = Mean();
  double ex2 = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    // ∫ x²·v dx over the bar = v · (b1³ − b0³)/3.
    ex2 += v[i] * (b[i + 1] * b[i + 1] * b[i + 1] - b[i] * b[i] * b[i]) / 3.0;
  }
  return ex2 - m * m;
}

double StandardNormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

Pdf MakeUniformPdf(double lo, double hi) {
  PV_CHECK_MSG(hi > lo, "uniform pdf needs a non-degenerate interval");
  return Pdf(StepFunction::Constant(lo, hi, 1.0 / (hi - lo)), "uniform");
}

Pdf MakeGaussianPdf(double lo, double hi, int bars) {
  double mean = 0.5 * (lo + hi);
  double stddev = (hi - lo) / 6.0;
  return MakeGaussianPdf(lo, hi, mean, stddev, bars);
}

Pdf MakeGaussianPdf(double lo, double hi, double mean, double stddev,
                    int bars) {
  PV_CHECK_MSG(hi > lo, "gaussian pdf needs a non-degenerate interval");
  PV_CHECK_MSG(stddev > 0.0, "gaussian pdf needs positive stddev");
  PV_CHECK_MSG(bars >= 1, "gaussian pdf needs at least one bar");
  std::vector<double> breaks(bars + 1);
  std::vector<double> values(bars);
  const double w = (hi - lo) / bars;
  for (int i = 0; i <= bars; ++i) breaks[i] = lo + i * w;
  breaks.back() = hi;  // avoid accumulation error at the right edge
  double prev = StandardNormalCdf((lo - mean) / stddev);
  for (int i = 0; i < bars; ++i) {
    double next = StandardNormalCdf((breaks[i + 1] - mean) / stddev);
    values[i] = std::max(0.0, next - prev) / w;  // mass → density
    prev = next;
  }
  return Pdf(StepFunction(std::move(breaks), std::move(values)), "gaussian");
}

Pdf MakeHistogramPdf(std::vector<double> breaks, std::vector<double> weights) {
  return Pdf(StepFunction(std::move(breaks), std::move(weights)), "histogram");
}

Pdf MakeHistogramPdf(double lo, double hi,
                     const std::vector<double>& weights) {
  PV_CHECK_MSG(hi > lo, "histogram pdf needs a non-degenerate interval");
  PV_CHECK_MSG(!weights.empty(), "histogram pdf needs at least one bar");
  const size_t n = weights.size();
  std::vector<double> breaks(n + 1);
  const double w = (hi - lo) / static_cast<double>(n);
  for (size_t i = 0; i <= n; ++i) breaks[i] = lo + static_cast<double>(i) * w;
  breaks.back() = hi;
  return MakeHistogramPdf(std::move(breaks), weights);
}

Pdf MakeTriangularPdf(double lo, double hi, int bars) {
  PV_CHECK_MSG(hi > lo && bars >= 1, "bad triangular pdf parameters");
  const double mid = 0.5 * (lo + hi);
  const double half = 0.5 * (hi - lo);
  std::vector<double> breaks(bars + 1);
  std::vector<double> values(bars);
  const double w = (hi - lo) / bars;
  for (int i = 0; i <= bars; ++i) breaks[i] = lo + i * w;
  breaks.back() = hi;
  for (int i = 0; i < bars; ++i) {
    double x = 0.5 * (breaks[i] + breaks[i + 1]);
    values[i] = std::max(0.0, 1.0 - std::abs(x - mid) / half);
  }
  return Pdf(StepFunction(std::move(breaks), std::move(values)), "triangular");
}

Pdf MakeExponentialPdf(double lo, double hi, double lambda, int bars) {
  PV_CHECK_MSG(hi > lo && bars >= 1 && lambda > 0.0,
               "bad exponential pdf parameters");
  std::vector<double> breaks(bars + 1);
  std::vector<double> values(bars);
  const double w = (hi - lo) / bars;
  for (int i = 0; i <= bars; ++i) breaks[i] = lo + i * w;
  breaks.back() = hi;
  double prev = 0.0;  // cdf of Exp(lambda) at offset 0
  for (int i = 0; i < bars; ++i) {
    double next = 1.0 - std::exp(-lambda * (breaks[i + 1] - lo));
    values[i] = std::max(0.0, next - prev) / w;
    prev = next;
  }
  return Pdf(StepFunction(std::move(breaks), std::move(values)),
             "exponential");
}

Pdf MakePdfFromSamples(const std::vector<double>& samples, int bars) {
  PV_CHECK_MSG(samples.size() >= 2, "need at least two samples");
  PV_CHECK_MSG(bars >= 1, "need at least one bar");
  double lo = samples[0], hi = samples[0];
  for (double s : samples) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  PV_CHECK_MSG(hi > lo, "samples must not all be identical");
  std::vector<double> weights(bars, 0.0);
  const double w = (hi - lo) / bars;
  for (double s : samples) {
    int bin = static_cast<int>((s - lo) / w);
    if (bin >= bars) bin = bars - 1;  // hi lands in the last bin
    weights[static_cast<size_t>(bin)] += 1.0;
  }
  return MakeHistogramPdf(lo, hi, weights);
}

}  // namespace pverify
