// The 1-D uncertain object model (paper §III-A): an identified closed
// interval carrying a pdf.
#ifndef PVERIFY_UNCERTAIN_UNCERTAIN_OBJECT_H_
#define PVERIFY_UNCERTAIN_UNCERTAIN_OBJECT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "uncertain/pdf.h"

namespace pverify {

using ObjectId = int64_t;

/// An uncertain 1-D object X_i: the actual value lies in [lo(), hi()] with
/// density pdf(). The uncertainty region is the pdf's support.
class UncertainObject {
 public:
  UncertainObject(ObjectId id, Pdf pdf) : id_(id), pdf_(std::move(pdf)) {}

  ObjectId id() const { return id_; }
  const Pdf& pdf() const { return pdf_; }
  double lo() const { return pdf_.lo(); }
  double hi() const { return pdf_.hi(); }

  /// Minimum possible |X - q| (the near point n_i of Def. 3, for the
  /// distance distribution rooted at q).
  double MinDist(double q) const {
    if (q < lo()) return lo() - q;
    if (q > hi()) return q - hi();
    return 0.0;
  }

  /// Maximum possible |X - q| (the far point f_i of Def. 3).
  double MaxDist(double q) const {
    double a = q - lo();
    double b = hi() - q;
    return a > b ? a : b;
  }

 private:
  ObjectId id_;
  Pdf pdf_;
};

/// A dataset is simply an ordered collection of uncertain objects.
using Dataset = std::vector<UncertainObject>;

}  // namespace pverify

#endif  // PVERIFY_UNCERTAIN_UNCERTAIN_OBJECT_H_
