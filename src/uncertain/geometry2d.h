// Exact 2-D geometry primitives used to derive distance cdfs of 2-D uniform
// uncertain objects: the cdf D(r) at query q is
// area(region ∩ disk(q, r)) / area(region), so we need exact disk–rectangle
// and disk–disk intersection areas plus min/max point-to-region distances.
#ifndef PVERIFY_UNCERTAIN_GEOMETRY2D_H_
#define PVERIFY_UNCERTAIN_GEOMETRY2D_H_

#include <cstddef>
#include <vector>

namespace pverify {

/// A 2-D point.
struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// Axis-aligned rectangle [x1,x2] × [y1,y2].
struct Rect2 {
  double x1 = 0.0;
  double y1 = 0.0;
  double x2 = 0.0;
  double y2 = 0.0;

  double Area() const { return (x2 - x1) * (y2 - y1); }
  bool Contains(Point2 p) const {
    return p.x >= x1 && p.x <= x2 && p.y >= y1 && p.y <= y2;
  }
};

/// Disk of radius r centered at (cx, cy).
struct Circle2 {
  double cx = 0.0;
  double cy = 0.0;
  double r = 0.0;

  double Area() const;
};

/// Euclidean distance between two points.
double Distance(Point2 a, Point2 b);

/// Minimum distance from point q to the rectangle (0 if inside).
double MinDistToRect(Point2 q, const Rect2& rect);

/// Maximum distance from point q to the rectangle (attained at a corner).
double MaxDistToRect(Point2 q, const Rect2& rect);

/// Minimum distance from point q to the disk (0 if inside).
double MinDistToCircle(Point2 q, const Circle2& c);

/// Maximum distance from point q to the disk.
double MaxDistToCircle(Point2 q, const Circle2& c);

/// Exact area of disk(q, r) ∩ rect. Exact closed form (no sampling).
double CircleRectIntersectionArea(Point2 q, double r, const Rect2& rect);

/// Exact area of disk(q, r) ∩ disk(c). Standard lens formula.
double CircleCircleIntersectionArea(Point2 q, double r, const Circle2& c);

/// Batched variants over an ascending radius grid (the radial-cdf build's
/// access pattern): `out[i] = area(disk(q, rs[i]) ∩ region)` for all n
/// radii in one scan. Loop invariants — the rectangle translated into the
/// disk frame, the circle-center distance — are hoisted out of the radius
/// loop, and `cuts` is reused as the boundary-split workspace across radii
/// (the single-shot function allocates it per call). The per-radius
/// arithmetic is verbatim the single-radius function, so every out[i] is
/// bit-identical to CircleRectIntersectionArea(q, rs[i], rect).
void CircleRectIntersectionAreas(Point2 q, const double* rs, size_t n,
                                 const Rect2& rect, double* out,
                                 std::vector<double>& cuts);

/// Disk counterpart: same contract, bit-identical to per-radius calls of
/// CircleCircleIntersectionArea.
void CircleCircleIntersectionAreas(Point2 q, const double* rs, size_t n,
                                   const Circle2& c, double* out);

}  // namespace pverify

#endif  // PVERIFY_UNCERTAIN_GEOMETRY2D_H_
