#include "uncertain/distance2d.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pverify {

double UncertainObject2D::Area() const {
  if (is_rect()) return rect().Area();
  return circle().Area();
}

double UncertainObject2D::MinDist(Point2 q) const {
  if (is_rect()) return MinDistToRect(q, rect());
  return MinDistToCircle(q, circle());
}

double UncertainObject2D::MaxDist(Point2 q) const {
  if (is_rect()) return MaxDistToRect(q, rect());
  return MaxDistToCircle(q, circle());
}

double UncertainObject2D::AreaWithinDistance(Point2 q, double r) const {
  if (is_rect()) return CircleRectIntersectionArea(q, r, rect());
  return CircleCircleIntersectionArea(q, r, circle());
}

DistanceDistribution MakeDistanceDistribution2D(const UncertainObject2D& obj,
                                                Point2 q, int pieces) {
  DistanceDistribution out;
  std::vector<double> breaks;
  std::vector<double> values;
  MakeDistanceDistribution2DInto(obj, q, pieces, &out, breaks, values);
  return out;
}

void MakeDistanceDistribution2DInto(const UncertainObject2D& obj, Point2 q,
                                    int pieces, DistanceDistribution* out,
                                    std::vector<double>& breaks,
                                    std::vector<double>& values) {
  PV_CHECK_MSG(pieces >= 1, "need at least one piece");
  const double near = obj.MinDist(q);
  const double far = obj.MaxDist(q);
  PV_CHECK_MSG(far > near, "degenerate 2-D region");
  const double area = obj.Area();
  PV_CHECK_MSG(area > 0.0, "2-D region must have positive area");

  breaks.assign(static_cast<size_t>(pieces) + 1, 0.0);
  values.assign(static_cast<size_t>(pieces), 0.0);
  const double w = (far - near) / pieces;
  for (int i = 0; i <= pieces; ++i) breaks[i] = near + i * w;
  breaks.back() = far;
  double prev = 0.0;  // cdf at near is 0
  for (int i = 0; i < pieces; ++i) {
    double next = (i + 1 == pieces)
                      ? 1.0
                      : obj.AreaWithinDistance(q, breaks[i + 1]) / area;
    next = std::clamp(next, prev, 1.0);  // enforce monotonicity numerically
    values[i] = (next - prev) / (breaks[i + 1] - breaks[i]);
    prev = next;
  }
  out->AssignFromPieces(breaks.data(), values.data(),
                        static_cast<size_t>(pieces));
}

}  // namespace pverify
