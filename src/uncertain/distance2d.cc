#include "uncertain/distance2d.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pverify {

double UncertainObject2D::Area() const {
  if (is_rect()) return rect().Area();
  return circle().Area();
}

double UncertainObject2D::MinDist(Point2 q) const {
  if (is_rect()) return MinDistToRect(q, rect());
  return MinDistToCircle(q, circle());
}

double UncertainObject2D::MaxDist(Point2 q) const {
  if (is_rect()) return MaxDistToRect(q, rect());
  return MaxDistToCircle(q, circle());
}

double UncertainObject2D::AreaWithinDistance(Point2 q, double r) const {
  if (is_rect()) return CircleRectIntersectionArea(q, r, rect());
  return CircleCircleIntersectionArea(q, r, circle());
}

void UncertainObject2D::AreaWithinDistanceSorted(
    Point2 q, const double* rs, size_t n, double* out,
    std::vector<double>& cuts) const {
  if (is_rect()) {
    CircleRectIntersectionAreas(q, rs, n, rect(), out, cuts);
  } else {
    CircleCircleIntersectionAreas(q, rs, n, circle(), out);
  }
}

DistanceDistribution MakeDistanceDistribution2D(const UncertainObject2D& obj,
                                                Point2 q, int pieces) {
  DistanceDistribution out;
  std::vector<double> breaks;
  std::vector<double> values;
  MakeDistanceDistribution2DInto(obj, q, pieces, &out, breaks, values);
  return out;
}

void MakeDistanceDistribution2DInto(const UncertainObject2D& obj, Point2 q,
                                    int pieces, DistanceDistribution* out,
                                    std::vector<double>& breaks,
                                    std::vector<double>& values,
                                    std::vector<double>* cuts) {
  PV_CHECK_MSG(pieces >= 1, "need at least one piece");
  const double near = obj.MinDist(q);
  const double far = obj.MaxDist(q);
  PV_CHECK_MSG(far > near, "degenerate 2-D region");
  const double area = obj.Area();
  PV_CHECK_MSG(area > 0.0, "2-D region must have positive area");

  breaks.assign(static_cast<size_t>(pieces) + 1, 0.0);
  values.assign(static_cast<size_t>(pieces), 0.0);
  const double w = (far - near) / pieces;
  for (int i = 0; i <= pieces; ++i) breaks[i] = near + i * w;
  breaks.back() = far;

  // Evaluate the radial areas at breaks[1..pieces-1] in one batched scan
  // (the geometry invariants are hoisted once per object, not per radius),
  // staged in `values`: values[i] holds the area at breaks[i+1] and each
  // slot is read before the differencing loop overwrites it. The cdf at
  // far is pinned to 1 exactly, so the last grid point needs no geometry.
  std::vector<double> local_cuts;
  obj.AreaWithinDistanceSorted(q, breaks.data() + 1,
                               static_cast<size_t>(pieces) - 1, values.data(),
                               cuts != nullptr ? *cuts : local_cuts);

  double prev = 0.0;  // cdf at near is 0
  for (int i = 0; i < pieces; ++i) {
    double next = (i + 1 == pieces) ? 1.0 : values[i] / area;
    next = std::clamp(next, prev, 1.0);  // enforce monotonicity numerically
    values[i] = (next - prev) / (breaks[i + 1] - breaks[i]);
    prev = next;
  }
  out->AssignFromPieces(breaks.data(), values.data(),
                        static_cast<size_t>(pieces));
}

}  // namespace pverify
