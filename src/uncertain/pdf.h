// Uncertainty pdfs for 1-D uncertain objects.
//
// Following the paper (§I, Fig. 1), an uncertain value lives in a closed
// interval with an arbitrary pdf whose integral over the interval is 1. We
// represent every pdf as a normalized step function (histogram) — exactly
// the representation the paper uses ("We represent a distance pdf of each
// object as a histogram"; Gaussians are "approximated by a 300-bar
// histogram"). Factory functions build the standard shapes; the histogram
// factory accepts fully arbitrary user-supplied bars.
#ifndef PVERIFY_UNCERTAIN_PDF_H_
#define PVERIFY_UNCERTAIN_PDF_H_

#include <string>
#include <vector>

#include "common/piecewise.h"

namespace pverify {

/// A normalized probability density over a closed interval, stored as a step
/// function. Immutable after construction.
class Pdf {
 public:
  /// Wraps a step function; normalizes it to total mass 1.
  /// Requires positive total mass.
  explicit Pdf(StepFunction density, std::string name = "histogram");

  double lo() const { return density_.support_lo(); }
  double hi() const { return density_.support_hi(); }
  double width() const { return hi() - lo(); }

  /// Density at x (0 outside [lo, hi]).
  double Density(double x) const { return density_.Value(x); }

  /// Cumulative probability P(X <= x).
  double Cdf(double x) const { return density_.IntegralTo(x); }

  /// P(a <= X <= b).
  double ProbIn(double a, double b) const {
    return density_.IntegralBetween(a, b);
  }

  /// Mean of the distribution (exact for the step representation).
  double Mean() const;

  /// Variance of the distribution (exact for the step representation).
  double Variance() const;

  /// Inverse cdf; p in [0, 1].
  double Quantile(double p) const { return density_.InverseIntegral(p); }

  const StepFunction& density() const { return density_; }
  const std::string& name() const { return name_; }
  size_t num_bars() const { return density_.num_pieces(); }

 private:
  StepFunction density_;
  std::string name_;
};

/// Uniform pdf on [lo, hi]; exact (single bar).
Pdf MakeUniformPdf(double lo, double hi);

/// Truncated Gaussian on [lo, hi] discretized into `bars` equal-width bars.
/// Defaults follow the paper's §V-B.5 setup: mean at the interval center,
/// stddev = width/6, 300 bars. Bar masses use the exact Gaussian cdf and are
/// renormalized to the truncation window.
Pdf MakeGaussianPdf(double lo, double hi, int bars = 300);

/// Gaussian with explicit mean/stddev truncated to [lo, hi].
Pdf MakeGaussianPdf(double lo, double hi, double mean, double stddev,
                    int bars);

/// Histogram pdf from explicit breakpoints and (relative) bar weights; the
/// weights are normalized. This is the "arbitrary pdf" entry point.
Pdf MakeHistogramPdf(std::vector<double> breaks, std::vector<double> weights);

/// Histogram with `bars` equal-width bars on [lo, hi] and the given relative
/// weights (one per bar).
Pdf MakeHistogramPdf(double lo, double hi, const std::vector<double>& weights);

/// Symmetric triangular pdf on [lo, hi] discretized into `bars` bars.
Pdf MakeTriangularPdf(double lo, double hi, int bars = 64);

/// Truncated exponential (rate lambda, measured from lo) on [lo, hi].
Pdf MakeExponentialPdf(double lo, double hi, double lambda, int bars = 64);

/// Histogram pdf estimated from raw observations (e.g. a week of sensor
/// readings, paper Fig. 1(b)): `bars` equal-width bins spanning the sample
/// range, bin counts as weights. Requires at least two distinct samples.
Pdf MakePdfFromSamples(const std::vector<double>& samples, int bars = 32);

/// Exact standard-normal cdf (shared helper; exposed for tests).
double StandardNormalCdf(double z);

}  // namespace pverify

#endif  // PVERIFY_UNCERTAIN_PDF_H_
