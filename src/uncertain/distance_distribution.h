// Distance pdf/cdf of an uncertain object with respect to a query point
// (paper §IV-A, Definition 2, Fig. 6).
//
// For a 1-D object with step-function pdf, folding the density around the
// query point q gives the distance pdf d_i(r) — again a step function —
// whose exact integral is the piecewise-linear distance cdf D_i(r).
#ifndef PVERIFY_UNCERTAIN_DISTANCE_DISTRIBUTION_H_
#define PVERIFY_UNCERTAIN_DISTANCE_DISTRIBUTION_H_

#include <vector>

#include "common/piecewise.h"
#include "uncertain/pdf.h"
#include "uncertain/uncertain_object.h"

namespace pverify {

/// The distribution of R_i = |X_i − q| for one uncertain object.
class DistanceDistribution {
 public:
  DistanceDistribution() = default;

  /// Wraps an already-built distance pdf (must have total mass ≈ 1; it is
  /// renormalized to remove discretization residue).
  explicit DistanceDistribution(StepFunction distance_pdf);

  /// Folds a 1-D uncertainty pdf around query point q.
  static DistanceDistribution From1D(const Pdf& pdf, double q);

  /// In-place variant of From1D for hot paths: rebuilds `out` (reusing its
  /// storage) with `rb`/`values` as work buffers. Runs the exact same
  /// arithmetic as From1D, so the result is bit-identical; once the buffer
  /// and `out` capacities cover the workload, no allocation happens.
  static void From1DInto(const Pdf& pdf, double q, DistanceDistribution* out,
                         std::vector<double>& rb, std::vector<double>& values);

  /// Rebuilds this distribution in place from a raw distance pdf given as
  /// `pieces` + 1 breakpoints and `pieces` values — the same validation and
  /// normalization arithmetic as the StepFunction-constructor path, reusing
  /// this object's storage. `values` is normalized in place (it is a work
  /// buffer, not an input to preserve).
  void AssignFromPieces(const double* breaks, double* values, size_t pieces);

  /// Near point n_i: minimum possible distance.
  double near() const { return pdf_.support_lo(); }
  /// Far point f_i: maximum possible distance.
  double far() const { return pdf_.support_hi(); }

  /// Distance pdf d_i(r).
  double Density(double r) const { return pdf_.Value(r); }

  /// Distance cdf D_i(r) = P(R_i <= r); 0 below near(), 1 above far().
  double Cdf(double r) const { return pdf_.IntegralTo(r); }

  /// Batched cdf over a sorted (non-decreasing) batch of radii:
  /// out[j] = Cdf(rs[j]) via one merge-scan over the pdf's pieces —
  /// bit-identical to a per-point Cdf loop, O(pieces + n) instead of
  /// n binary searches (see StepFunction::IntegralToSorted).
  void CdfSorted(const double* rs, size_t n, double* out) const {
    pdf_.IntegralToSorted(rs, n, out);
  }

  /// Batched cdf without the sortedness requirement (per-point fallback).
  void CdfMany(const double* rs, size_t n, double* out) const {
    pdf_.IntegralToMany(rs, n, out);
  }

  /// P(a <= R_i <= b).
  double ProbIn(double a, double b) const {
    return pdf_.IntegralBetween(a, b);
  }

  /// Inverse cdf (for sampling); p in [0, 1].
  double Quantile(double p) const { return pdf_.InverseIntegral(p); }

  /// Breakpoints where the distance pdf changes value. Used as subregion
  /// end-point candidates and as integration split points.
  const std::vector<double>& breakpoints() const { return pdf_.breaks(); }

  const StepFunction& pdf() const { return pdf_; }

  /// Approximate heap footprint of the owned storage (capacity, not size).
  size_t ApproxBytes() const { return pdf_.ApproxBytes(); }

 private:
  StepFunction pdf_;
};

}  // namespace pverify

#endif  // PVERIFY_UNCERTAIN_DISTANCE_DISTRIBUTION_H_
