#include "uncertain/distance_distribution.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pverify {

DistanceDistribution::DistanceDistribution(StepFunction distance_pdf) {
  PV_CHECK_MSG(!distance_pdf.empty(), "distance pdf must be non-empty");
  double mass = distance_pdf.TotalMass();
  PV_CHECK_MSG(std::abs(mass - 1.0) < 1e-6,
               "distance pdf must carry total probability 1");
  pdf_ = distance_pdf.Normalized();
}

void DistanceDistribution::AssignFromPieces(const double* breaks,
                                            double* values, size_t pieces) {
  PV_CHECK_MSG(pieces >= 1, "distance pdf must be non-empty");
  // Total mass accumulated exactly as the StepFunction constructor chains
  // its cumulative integrals, so the normalization factor — and therefore
  // every stored value — matches the construct-then-Normalized path bitwise.
  double mass = 0.0;
  for (size_t i = 0; i < pieces; ++i) {
    mass += values[i] * (breaks[i + 1] - breaks[i]);
  }
  PV_CHECK_MSG(std::abs(mass - 1.0) < 1e-6,
               "distance pdf must carry total probability 1");
  const double factor = 1.0 / mass;
  for (size_t i = 0; i < pieces; ++i) values[i] *= factor;
  pdf_.Assign(breaks, values, pieces);
}

DistanceDistribution DistanceDistribution::From1D(const Pdf& pdf, double q) {
  DistanceDistribution out;
  std::vector<double> rb;
  std::vector<double> values;
  From1DInto(pdf, q, &out, rb, values);
  return out;
}

void DistanceDistribution::From1DInto(const Pdf& pdf, double q,
                                      DistanceDistribution* out,
                                      std::vector<double>& rb,
                                      std::vector<double>& values) {
  const StepFunction& f = pdf.density();
  // Candidate r-breakpoints: the folded images |t − q| of every pdf
  // breakpoint, plus r = 0 when q lies inside the uncertainty region.
  rb.clear();
  rb.reserve(f.breaks().size() + 1);
  for (double t : f.breaks()) rb.push_back(std::abs(t - q));
  if (q > f.support_lo() && q < f.support_hi()) rb.push_back(0.0);
  SortedUniqueInPlace(rb);

  // On each folded piece the density is dens(q + r) + dens(q − r), constant
  // because no pdf breakpoint maps into the piece's interior.
  values.clear();
  values.reserve(rb.size() - 1);
  for (size_t i = 0; i + 1 < rb.size(); ++i) {
    double rm = 0.5 * (rb[i] + rb[i + 1]);
    values.push_back(f.Value(q + rm) + f.Value(q - rm));
  }

  // Trim zero-density pieces at both ends so near()/far() are the true
  // minimum and maximum distances.
  size_t first = 0;
  size_t last = values.size();
  while (first < last && values[first] <= 0.0) ++first;
  while (last > first && values[last - 1] <= 0.0) --last;
  PV_CHECK_MSG(first < last, "folded pdf has no mass");
  out->AssignFromPieces(rb.data() + first, values.data() + first,
                        last - first);
}

}  // namespace pverify
