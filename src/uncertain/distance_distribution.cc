#include "uncertain/distance_distribution.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pverify {

DistanceDistribution::DistanceDistribution(StepFunction distance_pdf) {
  PV_CHECK_MSG(!distance_pdf.empty(), "distance pdf must be non-empty");
  double mass = distance_pdf.TotalMass();
  PV_CHECK_MSG(std::abs(mass - 1.0) < 1e-6,
               "distance pdf must carry total probability 1");
  pdf_ = distance_pdf.Normalized();
}

DistanceDistribution DistanceDistribution::From1D(const Pdf& pdf, double q) {
  const StepFunction& f = pdf.density();
  // Candidate r-breakpoints: the folded images |t − q| of every pdf
  // breakpoint, plus r = 0 when q lies inside the uncertainty region.
  std::vector<double> rb;
  rb.reserve(f.breaks().size() + 1);
  for (double t : f.breaks()) rb.push_back(std::abs(t - q));
  if (q > f.support_lo() && q < f.support_hi()) rb.push_back(0.0);
  rb = SortedUnique(std::move(rb));

  // On each folded piece the density is dens(q + r) + dens(q − r), constant
  // because no pdf breakpoint maps into the piece's interior.
  std::vector<double> values;
  values.reserve(rb.size() - 1);
  for (size_t i = 0; i + 1 < rb.size(); ++i) {
    double rm = 0.5 * (rb[i] + rb[i + 1]);
    values.push_back(f.Value(q + rm) + f.Value(q - rm));
  }

  // Trim zero-density pieces at both ends so near()/far() are the true
  // minimum and maximum distances.
  size_t first = 0;
  size_t last = values.size();
  while (first < last && values[first] <= 0.0) ++first;
  while (last > first && values[last - 1] <= 0.0) --last;
  PV_CHECK_MSG(first < last, "folded pdf has no mass");
  std::vector<double> breaks(rb.begin() + first, rb.begin() + last + 1);
  std::vector<double> vals(values.begin() + first, values.begin() + last);
  return DistanceDistribution(
      StepFunction(std::move(breaks), std::move(vals)));
}

}  // namespace pverify
