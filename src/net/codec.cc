#include "net/codec.h"

#include <limits>
#include <string>
#include <variant>

namespace pverify {
namespace net {

namespace {

// Caps on decoded strings (verifier stage names are a handful of chars;
// anything longer is a corrupt frame, not a real stage).
constexpr uint32_t kMaxNameLen = 256;

template <typename Enum>
Enum CheckedEnum(uint8_t raw, Enum max, const char* what) {
  if (raw > static_cast<uint8_t>(max)) {
    throw WireError(std::string("wire: out-of-range ") + what + " value " +
                    std::to_string(raw));
  }
  return static_cast<Enum>(raw);
}

/// Validates `count` elements of `elem_bytes` each against the remaining
/// body before the caller allocates — a hostile count field must fail here,
/// not in the allocator.
void CheckCount(const WireReader& r, uint64_t count, size_t elem_bytes,
                const char* what) {
  if (count > r.Remaining() / elem_bytes) {
    throw WireError(std::string("wire: ") + what + " count " +
                    std::to_string(count) + " exceeds the message body");
  }
}

void EncodeOptions(const QueryOptions& o, WireWriter& w) {
  w.F64(o.params.threshold);
  w.F64(o.params.tolerance);
  w.U8(static_cast<uint8_t>(o.strategy));
  w.I32(o.integration.gauss_points);
  w.I32(o.integration.splits_per_subregion);
  w.U8(static_cast<uint8_t>(o.refine_order));
  w.I32(o.monte_carlo.samples);
  w.U64(o.monte_carlo.seed);
  w.Bool(o.report_probabilities);
}

QueryOptions DecodeOptions(WireReader& r) {
  QueryOptions o;
  o.params.threshold = r.F64();
  o.params.tolerance = r.F64();
  o.strategy = CheckedEnum(r.U8(), Strategy::kMonteCarlo, "strategy");
  o.integration.gauss_points = r.I32();
  o.integration.splits_per_subregion = r.I32();
  o.refine_order =
      CheckedEnum(r.U8(), RefineOrder::kLeftToRight, "refine order");
  o.monte_carlo.samples = r.I32();
  o.monte_carlo.seed = r.U64();
  o.report_probabilities = r.Bool();
  return o;
}

int32_t DecodeK(WireReader& r) {
  int32_t k = r.I32();
  if (k < 1) throw WireError("wire: k-NN k must be >= 1");
  return k;
}

void EncodeQueryStats(const QueryStats& s, WireWriter& w) {
  w.F64(s.filter_ms);
  w.F64(s.init_ms);
  w.F64(s.verify_ms);
  w.F64(s.refine_ms);
  w.F64(s.total_ms);
  w.U64(s.dataset_size);
  w.U64(s.candidates);
  w.U64(s.num_subregions);
  w.F64(s.verification.init_ms);
  w.U32(static_cast<uint32_t>(s.verification.stages.size()));
  for (const StageStats& st : s.verification.stages) {
    w.String(st.name);
    w.F64(st.ms);
    w.U64(st.unknown_after);
    w.U64(st.satisfy_after);
    w.U64(st.fail_after);
  }
  w.U64(s.verification.unknown_after);
  w.U64(s.unknown_after_verification);
  w.Bool(s.finished_after_verification);
  w.U64(s.refined_candidates);
  w.U64(s.subregion_integrations);
  w.Bool(s.served_from_cache);
}

QueryStats DecodeQueryStats(WireReader& r) {
  QueryStats s;
  s.filter_ms = r.F64();
  s.init_ms = r.F64();
  s.verify_ms = r.F64();
  s.refine_ms = r.F64();
  s.total_ms = r.F64();
  s.dataset_size = r.U64();
  s.candidates = r.U64();
  s.num_subregions = r.U64();
  s.verification.init_ms = r.F64();
  uint32_t stages = r.U32();
  // A stage record is at least name length + ms + 3 counters.
  CheckCount(r, stages, 4 + 8 * 4, "verifier stage");
  s.verification.stages.reserve(stages);
  for (uint32_t i = 0; i < stages; ++i) {
    StageStats st;
    st.name = r.String(kMaxNameLen);
    st.ms = r.F64();
    st.unknown_after = r.U64();
    st.satisfy_after = r.U64();
    st.fail_after = r.U64();
    s.verification.stages.push_back(std::move(st));
  }
  s.verification.unknown_after = r.U64();
  s.unknown_after_verification = r.U64();
  s.finished_after_verification = r.Bool();
  s.refined_candidates = r.U64();
  s.subregion_integrations = r.U64();
  s.served_from_cache = r.Bool();
  return s;
}

void EncodeIds(const std::vector<ObjectId>& ids, WireWriter& w) {
  w.U32(static_cast<uint32_t>(ids.size()));
  for (ObjectId id : ids) w.I64(id);
}

std::vector<ObjectId> DecodeIds(WireReader& r, const char* what) {
  uint32_t n = r.U32();
  CheckCount(r, n, sizeof(int64_t), what);
  std::vector<ObjectId> ids;
  ids.reserve(n);
  for (uint32_t i = 0; i < n; ++i) ids.push_back(r.I64());
  return ids;
}

void EncodeBound(const ProbabilityBound& b, WireWriter& w) {
  w.F64(b.lower);
  w.F64(b.upper);
}

ProbabilityBound DecodeBound(WireReader& r) {
  ProbabilityBound b;
  b.lower = r.F64();
  b.upper = r.F64();
  return b;
}

}  // namespace

void EncodeRequest(const QueryRequest& request, WireWriter& w) {
  if (request.kind() == QueryKind::kCandidates) {
    throw WireError(
        "wire: kCandidates requests carry a process-local payload and are "
        "not serializable");
  }
  w.U8(static_cast<uint8_t>(request.kind()));
  std::visit(
      [&w](const auto& q) {
        using T = std::decay_t<decltype(q)>;
        if constexpr (std::is_same_v<T, PointQuery>) {
          w.F64(q.q);
        } else if constexpr (std::is_same_v<T, KnnQuery>) {
          w.F64(q.q);
          w.I32(q.k);
        } else if constexpr (std::is_same_v<T, Point2DQuery>) {
          w.F64(q.q.x);
          w.F64(q.q.y);
        } else if constexpr (std::is_same_v<T, Knn2DQuery>) {
          w.F64(q.q.x);
          w.F64(q.q.y);
          w.I32(q.k);
        }
        // MinQuery / MaxQuery carry no payload beyond the options;
        // CandidatesQuery was rejected above.
      },
      request.query);
  EncodeOptions(request.options(), w);
}

QueryRequest DecodeRequest(WireReader& r) {
  uint8_t kind = r.U8();
  if (kind > static_cast<uint8_t>(QueryKind::kKnn2D)) {
    throw WireError("wire: unknown query kind " + std::to_string(kind));
  }
  switch (static_cast<QueryKind>(kind)) {
    case QueryKind::kPoint: {
      double q = r.F64();
      return PointQuery{q, DecodeOptions(r)};
    }
    case QueryKind::kMin:
      return MinQuery{DecodeOptions(r)};
    case QueryKind::kMax:
      return MaxQuery{DecodeOptions(r)};
    case QueryKind::kKnn: {
      double q = r.F64();
      int32_t k = DecodeK(r);
      return KnnQuery{q, k, DecodeOptions(r)};
    }
    case QueryKind::kCandidates:
      throw WireError("wire: kCandidates requests are not serializable");
    case QueryKind::kPoint2D: {
      Point2 q;
      q.x = r.F64();
      q.y = r.F64();
      return Point2DQuery{q, DecodeOptions(r)};
    }
    case QueryKind::kKnn2D: {
      Point2 q;
      q.x = r.F64();
      q.y = r.F64();
      int32_t k = DecodeK(r);
      return Knn2DQuery{q, k, DecodeOptions(r)};
    }
  }
  throw WireError("wire: unknown query kind");  // unreachable
}

void EncodeResult(const QueryResult& result, WireWriter& w) {
  EncodeIds(result.ids, w);
  EncodeQueryStats(result.stats, w);
  w.U32(static_cast<uint32_t>(result.candidate_probabilities.size()));
  for (const AnswerEntry& e : result.candidate_probabilities) {
    w.I64(e.id);
    EncodeBound(e.bound, w);
  }
  w.Bool(result.knn.has_value());
  if (result.knn.has_value()) {
    const CknnAnswer& knn = *result.knn;
    EncodeIds(knn.ids, w);
    w.U32(static_cast<uint32_t>(knn.bounds.size()));
    for (const ProbabilityBound& b : knn.bounds) EncodeBound(b, w);
    w.U64(knn.pruned_by_bound);
    w.U64(knn.early_decided);
    w.U64(knn.segments_evaluated);
  }
}

QueryResult DecodeResult(WireReader& r) {
  QueryResult result;
  result.ids = DecodeIds(r, "answer id");
  result.stats = DecodeQueryStats(r);
  uint32_t entries = r.U32();
  CheckCount(r, entries, 8 + 16, "candidate probability");
  result.candidate_probabilities.reserve(entries);
  for (uint32_t i = 0; i < entries; ++i) {
    AnswerEntry e;
    e.id = r.I64();
    e.bound = DecodeBound(r);
    result.candidate_probabilities.push_back(e);
  }
  if (r.Bool()) {
    CknnAnswer knn;
    knn.ids = DecodeIds(r, "knn id");
    uint32_t bounds = r.U32();
    CheckCount(r, bounds, 16, "knn bound");
    knn.bounds.reserve(bounds);
    for (uint32_t i = 0; i < bounds; ++i) knn.bounds.push_back(DecodeBound(r));
    knn.pruned_by_bound = r.U64();
    knn.early_decided = r.U64();
    knn.segments_evaluated = r.U64();
    result.knn = std::move(knn);
  }
  return result;
}

}  // namespace net
}  // namespace pverify
