// Client side of the pverify wire protocol, shared by the CLI's --connect
// mode, the loopback tests and the load generator.
//
// The connection is full duplex: Send() pipelines request frames without
// waiting, ReadNext()/Await() pull response frames back. Sending and
// receiving take separate locks, so one sender thread and one receiver
// thread can drive the same connection concurrently (the load generator's
// open-loop pattern); multiple concurrent receivers are NOT supported —
// ReadNext hands out whole frames in arrival order and a second reader
// would interleave demux state. Await() buffers out-of-order arrivals so
// callers can collect responses in any order they like.
#ifndef PVERIFY_NET_CLIENT_H_
#define PVERIFY_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/request.h"
#include "net/socket.h"
#include "net/wire.h"

namespace pverify {
namespace net {

/// One server reply. `ok` distinguishes a result from a request-level
/// error frame (whose typed code and message land in `code`/`error`;
/// frames from a v1 server always decode as kGeneric).
struct ServeResponse {
  uint64_t request_id = 0;
  bool ok = false;
  ErrorCode code = ErrorCode::kGeneric;
  std::string error;
  QueryResult result;
};

struct ClientOptions {
  uint32_t max_body_bytes = kDefaultMaxBodyBytes;
  /// Bounds every blocking read (SO_RCVTIMEO); a server that stops
  /// answering surfaces as WireTimeout instead of a hang. 0 = wait
  /// forever. Retrying callers should set this: it is what makes the
  /// chaos suite's "never hang" guarantee hold on the client side too.
  uint32_t recv_timeout_ms = 0;
};

class Client {
 public:
  /// Connects to a running pverify_serve. Throws WireError on failure.
  static Client Connect(const std::string& host, uint16_t port,
                        ClientOptions options = {});

  /// Heap-allocating variant for callers that reconnect (the RetryingClient
  /// replaces a dead connection in place; Client itself is not movable).
  static std::unique_ptr<Client> ConnectUnique(const std::string& host,
                                               uint16_t port,
                                               ClientOptions options = {});

  // Not movable (mutex members); Connect returns by guaranteed elision.
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Encodes and sends one request frame, returning the request id the
  /// response will carry. Does not wait for the response — callers pipeline
  /// freely. Thread-safe against a concurrent receiver. `deadline_ms` > 0
  /// rides the v2 extension block: the server answers kDeadlineExceeded
  /// instead of running a request whose budget (counted from the server
  /// reading the frame) ran out.
  uint64_t Send(const QueryRequest& request, uint32_t deadline_ms = 0);

  /// Sends a request frame under a caller-chosen id (the tests use this to
  /// probe id echoing; normal callers use Send()).
  void SendWithId(const QueryRequest& request, uint64_t request_id,
                  uint32_t deadline_ms = 0);

  /// Blocks for the next response frame in arrival order. Throws WireError
  /// when the server closes the connection or sends a malformed frame.
  ServeResponse ReadNext();

  /// Blocks until the response for `request_id` arrives, buffering any
  /// other responses that land first (so out-of-order completion is
  /// transparent to callers awaiting in send order).
  ServeResponse Await(uint64_t request_id);

  /// Pipelines the whole batch, then awaits every response; results come
  /// back in request order. Throws WireError on connection loss.
  /// `deadline_ms` applies per request.
  std::vector<ServeResponse> Call(const std::vector<QueryRequest>& requests,
                                  uint32_t deadline_ms = 0);

  /// Half-closes the write side so the server sees a clean EOF and winds
  /// the connection down; pending responses can still be read.
  void Close();

 private:
  explicit Client(Socket sock, ClientOptions options)
      : sock_(std::move(sock)), options_(options) {}

  Socket sock_;
  ClientOptions options_;

  std::mutex send_mu_;
  uint64_t next_id_ = 1;

  std::mutex recv_mu_;
  std::map<uint64_t, ServeResponse> stash_;  ///< out-of-order arrivals
};

}  // namespace net
}  // namespace pverify

#endif  // PVERIFY_NET_CLIENT_H_
