// pverify_serve's multi-client TCP server.
//
// Serving model: thread-per-connection (one reader + one writer thread per
// accepted socket) behind a hard connection cap — NOT epoll. The trade was
// deliberate: a pverify query costs milliseconds of CPU in the engine, so
// the scalability bottleneck is the worker pool, not socket readiness —
// every connection's requests are funneled through Engine::Submit, where
// the SubmitQueue coalesces traffic from all connections into shared pool
// batches (and an optional CachingEngine wrapper memoizes across
// connections). Blocking reads keep the decode path a straight line with
// strict frame sequencing per connection, and the cap bounds the thread
// count (2 × max_connections) so thread-per-connection stays cheap: at the
// point where thousands of concurrent sockets would demand epoll, the
// engine would be saturated long before the kernel is.
//
// Per connection: the reader thread decodes frames into typed
// QueryRequests and Submits them (so responses to one connection's
// pipelined requests materialize through the engine's coalescer), handing
// each pending future to the writer thread, which streams response frames
// back tagged with the client's request ids. The protocol permits
// out-of-order responses (ids are the correlation tags); this
// implementation drains each connection's futures FIFO, which is
// near-optimal because coalesced batches complete together.
//
// Error discipline:
//  * protocol errors (bad magic/version, oversized length, unknown kind,
//    truncated body) → best-effort kError frame, then the connection is
//    closed. The server itself always stays up.
//  * request-level failures (engine exceptions, e.g. a 2-D query against a
//    1-D-only engine) → kError frame tagged with the request id; the
//    connection stays open.
#ifndef PVERIFY_NET_SERVER_H_
#define PVERIFY_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "engine/engine.h"
#include "net/socket.h"
#include "net/wire.h"

namespace pverify {
namespace net {

struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via Server::port()).
  uint16_t port = 0;
  /// Hard cap on concurrent connections; connection attempts beyond it get
  /// a kError frame and an immediate close. Bounds the server's thread
  /// count at 2 × max_connections + 1.
  size_t max_connections = 64;
  /// Frame-body size cap enforced on every received header.
  uint32_t max_body_bytes = kDefaultMaxBodyBytes;
  int listen_backlog = 64;
};

/// Point-in-time server telemetry.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  ///< over the max_connections cap
  uint64_t requests_served = 0;       ///< response frames sent
  uint64_t request_errors = 0;        ///< kError frames for failed requests
  uint64_t protocol_errors = 0;       ///< malformed frames (connection dropped)
};

/// Serves one Engine over TCP. The engine must outlive the server; Stop()
/// (or destruction) joins every thread before returning.
class Server {
 public:
  explicit Server(Engine& engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept loop. Throws WireError when the
  /// port cannot be bound.
  void Start();

  /// Drains and joins everything; idempotent.
  void Stop();

  /// The bound port (valid after Start(); the ephemeral port when
  /// options.port was 0).
  uint16_t port() const { return listener_.port(); }

  ServerStats stats() const;

 private:
  struct Outgoing {
    MessageType type = MessageType::kResponse;
    uint64_t request_id = 0;
    std::future<QueryResult> future;  ///< engaged for kResponse entries
    std::string error;                ///< message for kError entries
    bool close_after = false;         ///< protocol error: drop the connection
  };

  struct Connection {
    Socket sock;
    std::thread reader;
    std::thread writer;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Outgoing> queue;
    bool reader_done = false;
    std::atomic<bool> finished{false};  ///< writer exited; reapable
  };

  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void WriterLoop(Connection* conn);
  void SendFrame(Connection* conn, MessageType type, uint64_t request_id,
                 const WireWriter& body);
  /// Joins and erases connections whose writer has exited. Called from the
  /// accept loop so a long-lived server does not accumulate dead threads.
  void ReapFinishedLocked();

  Engine& engine_;
  ServerOptions options_;
  Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace net
}  // namespace pverify

#endif  // PVERIFY_NET_SERVER_H_
