// pverify_serve's multi-client TCP server.
//
// Serving model: thread-per-connection (one reader + one writer thread per
// accepted socket) behind a hard connection cap — NOT epoll. The trade was
// deliberate: a pverify query costs milliseconds of CPU in the engine, so
// the scalability bottleneck is the worker pool, not socket readiness —
// every connection's requests are funneled through Engine::Submit, where
// the SubmitQueue coalesces traffic from all connections into shared pool
// batches (and an optional CachingEngine wrapper memoizes across
// connections). Blocking reads keep the decode path a straight line with
// strict frame sequencing per connection, and the cap bounds the thread
// count (2 × max_connections) so thread-per-connection stays cheap: at the
// point where thousands of concurrent sockets would demand epoll, the
// engine would be saturated long before the kernel is.
//
// Per connection: the reader thread decodes frames into typed
// QueryRequests and Submits them (so responses to one connection's
// pipelined requests materialize through the engine's coalescer), handing
// each pending future to the writer thread, which streams response frames
// back tagged with the client's request ids. The protocol permits
// out-of-order responses (ids are the correlation tags); this
// implementation drains each connection's futures FIFO, which is
// near-optimal because coalesced batches complete together.
//
// Overload and failure discipline:
//  * backpressure — a per-connection in-flight cap and a global admission
//    limit on queued-but-unstarted requests. Requests over either cap are
//    answered kOverloaded *immediately by the reader thread* (out of order,
//    which the protocol permits) so a client pipelining into a stalled
//    writer still hears the rejection and can back off; the connection
//    survives. Because rejected requests never enter the writer queue, the
//    in-flight cap is also the bound on the per-connection write backlog.
//  * deadlines — a v2 client can stamp deadline_ms on each request. The
//    budget is anchored when the frame header arrives and checked twice:
//    at decode (an already-expired request is answered kDeadlineExceeded
//    without ever touching the engine) and again at dequeue in the writer
//    (queue time counts; the writer abandons the future and answers
//    kDeadlineExceeded when the budget ran out while the engine worked).
//  * slow readers — response sends run under options.write_timeout_ms
//    (SO_SNDTIMEO) with an optionally shrunk kernel send buffer. A peer
//    that stops draining its socket stalls a send past the timeout and is
//    disconnected (slow_reader_disconnects counts them); other
//    connections are unaffected.
//  * graceful drain — Drain(deadline) stops accepting, answers new
//    requests kShuttingDown, and waits for in-flight ones to finish within
//    the deadline. pverify_serve calls it on SIGTERM.
//  * protocol errors (bad magic/version, checksum mismatch, oversized
//    length, unknown kind, truncated body) → best-effort typed kError
//    frame (kTooLarge for cap violations, else kProtocol), then the
//    connection is closed. The server itself always stays up.
//  * request-level failures (engine exceptions, e.g. a 2-D query against a
//    1-D-only engine) → kError/kInvalidRequest tagged with the request id;
//    the connection stays open.
//
// Wire compatibility: the server speaks both protocol versions — each
// connection is answered in the version of the last request frame its
// client sent (v1 clients get v1 frames, no checksum, string-only errors).
#ifndef PVERIFY_NET_SERVER_H_
#define PVERIFY_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "engine/engine.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"

namespace pverify {
namespace net {

struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via Server::port()).
  uint16_t port = 0;
  /// Hard cap on concurrent connections; connection attempts beyond it get
  /// a kError/kOverloaded frame and an immediate close. Bounds the
  /// server's thread count at 2 × max_connections + 1.
  size_t max_connections = 64;
  /// Frame-body size cap enforced on every received header.
  uint32_t max_body_bytes = kDefaultMaxBodyBytes;
  int listen_backlog = 64;
  /// Requests one connection may have submitted-but-unanswered before the
  /// reader answers kOverloaded instead of Submitting. Also bounds the
  /// writer queue. 0 = unlimited.
  size_t max_inflight_per_conn = 128;
  /// Global admission limit across all connections on
  /// submitted-but-unanswered requests; over it the reader answers
  /// kOverloaded. 0 = unlimited.
  size_t max_pending = 1024;
  /// SO_SNDTIMEO on every response send; a send blocked past this is the
  /// slow-reader signal and drops the connection. 0 = wait forever.
  uint32_t write_timeout_ms = 5000;
  /// When > 0, shrink each accepted socket's kernel send buffer so a slow
  /// reader's backlog is bounded by the kernel too (tests use this to
  /// trip the write timeout quickly).
  int send_buffer_bytes = 0;
};

/// Point-in-time server telemetry.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  ///< over the max_connections cap
  uint64_t requests_served = 0;       ///< response frames sent
  uint64_t request_errors = 0;        ///< kError frames for failed requests
  uint64_t protocol_errors = 0;       ///< malformed frames (connection dropped)
  uint64_t overload_rejections = 0;   ///< kOverloaded answers (either cap)
  uint64_t deadline_expirations = 0;  ///< kDeadlineExceeded answers
  uint64_t slow_reader_disconnects = 0;  ///< write-timeout teardowns
  uint64_t shutdown_rejections = 0;   ///< kShuttingDown answers while draining
};

/// Serves one Engine over TCP. The engine must outlive the server; Stop()
/// (or destruction) joins every thread before returning.
class Server {
 public:
  explicit Server(Engine& engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept loop. Throws WireError when the
  /// port cannot be bound.
  void Start();

  /// Graceful shutdown, phase 1: stop accepting, answer new requests with
  /// kShuttingDown, wait up to `deadline_ms` for in-flight requests to be
  /// answered. Returns true when everything drained, false on deadline.
  /// Call Stop() afterwards either way; callable before Start() (no-op).
  bool Drain(uint32_t deadline_ms);

  /// Hard stop: shuts every socket down and joins every thread. Responses
  /// still in flight are dropped (writers waiting on engine futures give
  /// up promptly, even if the engine never resolves them). Idempotent.
  void Stop();

  /// The bound port (valid after Start(); the ephemeral port when
  /// options.port was 0).
  uint16_t port() const { return listener_.port(); }

  /// Adjusts the frame-body cap; only valid before Start().
  void set_max_body_bytes(uint32_t bytes) { options_.max_body_bytes = bytes; }

  ServerStats stats() const;

 private:
  struct Outgoing {
    MessageType type = MessageType::kResponse;
    uint64_t request_id = 0;
    std::future<QueryResult> future;  ///< engaged for kResponse entries
    ErrorCode code = ErrorCode::kGeneric;  ///< for kError entries
    std::string error;                ///< message for kError entries
    bool close_after = false;         ///< protocol error: drop the connection
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  struct Connection {
    Socket sock;
    std::thread reader;
    std::thread writer;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Outgoing> queue;
    bool reader_done = false;
    bool writer_exited = false;  ///< guarded by mu; reader stops queueing
    std::atomic<bool> finished{false};  ///< writer exited; reapable
    /// Frame layout the peer speaks; responses mirror it. Atomic because
    /// the reader re-pins it per frame while the writer encodes with it.
    std::atomic<uint16_t> peer_version{kWireVersion};
    /// Submitted-but-unanswered requests on this connection.
    std::atomic<size_t> inflight{0};
    /// Serializes reader-side immediate error frames against writer-side
    /// response frames on the one socket.
    std::mutex write_mu;
  };

  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void WriterLoop(Connection* conn);
  /// Sends one frame under the connection's write lock. Returns false when
  /// the send failed (timeout counts a slow reader) — the connection is
  /// already shut down then.
  bool SendOnConn(Connection* conn, MessageType type, uint64_t request_id,
                  const WireWriter& body);
  /// Reader-side immediate rejection (kOverloaded / kDeadlineExceeded /
  /// kShuttingDown): bypasses the writer queue so backpressure answers
  /// cannot sit behind blocked futures.
  bool RejectNow(Connection* conn, uint64_t request_id, ErrorCode code,
                 const std::string& message);
  /// Queues the final typed error frame for a malformed frame; the writer
  /// sends it after earlier responses drain, then closes.
  void QueueProtocolError(Connection* conn, uint64_t request_id,
                          ErrorCode code, const std::string& message);
  /// Finishes one popped kResponse entry: waits for the future (bounded by
  /// the deadline and the stop flag), encodes the response or a typed
  /// error, sends it. Returns false when the connection must close.
  bool DeliverResponse(Connection* conn, Outgoing& out);
  /// Joins and erases connections whose writer has exited. Called from the
  /// accept loop so a long-lived server does not accumulate dead threads.
  void ReapFinishedLocked();

  Engine& engine_;
  ServerOptions options_;
  Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  bool started_ = false;

  /// Submitted-but-unanswered requests across all connections (the
  /// admission-limit gauge; also Drain's "work left" signal).
  std::atomic<size_t> global_pending_{0};

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace net
}  // namespace pverify

#endif  // PVERIFY_NET_SERVER_H_
