// Whole-frame I/O over a Socket, shared by the server, the client and the
// tests: one place that knows a version ≥ 2 frame carries a CRC-32 trailer
// and a version 1 frame does not. Centralizing this is what makes the
// fault-injection story sound — every byte a peer sends flows through
// ReceiveFrame's checksum verification, so injected corruption surfaces as
// a WireError at the connection boundary instead of decoding into a wrong
// answer.
#ifndef PVERIFY_NET_FRAME_H_
#define PVERIFY_NET_FRAME_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"

namespace pverify {
namespace net {

/// One received frame plus the instant its header finished arriving —
/// the server anchors per-request deadlines here, so a peer that trickles
/// the body burns its own deadline budget, not the engine's.
struct ReceivedFrame {
  FrameHeader header;
  std::vector<uint8_t> body;
  std::chrono::steady_clock::time_point header_at{};
};

/// Writes a complete frame (header, body, and — for version ≥ 2 — the
/// CRC-32 trailer over both). Callers serialize concurrent senders on one
/// socket themselves; a frame must never interleave with another.
void SendFrameOn(Socket& sock, MessageType type, uint64_t request_id,
                 const WireWriter& body, uint16_t version = kWireVersion);

/// Reads the next complete frame. Returns false on a clean EOF between
/// frames; throws WireError on truncation, header violations, an oversized
/// body (WireTooLarge) or a checksum mismatch, and WireTimeout when the
/// socket has a receive timeout configured and it expires.
bool ReceiveFrame(Socket& sock, uint32_t max_body_bytes, ReceivedFrame* out);

}  // namespace net
}  // namespace pverify

#endif  // PVERIFY_NET_FRAME_H_
