// The pverify wire format: length-prefixed binary frames.
//
// Every message on a pverify_serve connection is one frame — a fixed
// 20-byte header followed by a body whose layout depends on the frame type
// (see net/codec.h for the request/result codecs):
//
//   offset  size  field
//        0     4  magic      0x50564659 ("PVFY")
//        4     2  version    kWireVersion (bumped on any layout change)
//        6     2  type       MessageType (request / response / error)
//        8     8  request_id client-chosen tag echoed in the response
//       16     4  body_bytes bytes following the header
//
// Version 2 frames append a 4-byte CRC-32 trailer computed over the header
// and body, so a corrupted byte anywhere in the frame is detected at the
// receiver as a protocol error instead of decoding into a wrong answer.
// Version 2 request bodies additionally open with an extension block
// ([u32 ext_bytes][u32 deadline_ms][unknown trailing extension bytes are
// skipped]) ahead of the encoded request, which is how per-request
// deadlines travel without breaking version 1 peers: both frame layouts
// are accepted on decode (kMinWireVersion..kWireVersion) and the server
// answers each connection in the version its client speaks.
//
// All integers are little-endian; doubles travel as their raw IEEE-754
// bits, so a decoded request re-executes with bit-identical arithmetic and
// a decoded result compares bit-identical to the local answer. Frames are
// self-delimiting (the header carries the body length), so requests pipeline
// back to back and responses may come back in any order — the request_id is
// the correlation tag, not the position.
//
// Decoding is strict and bounds-checked end to end: WireReader throws
// WireError instead of reading past the end, DecodeFrameHeader rejects bad
// magic/version/type and oversized lengths before any allocation, and the
// per-kind codecs validate counts against the remaining bytes before
// resizing anything. A malformed peer can terminate its own connection,
// never the process.
#ifndef PVERIFY_NET_WIRE_H_
#define PVERIFY_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pverify {
namespace net {

/// Any protocol violation: truncated or oversized frames, bad magic or
/// version, unknown enum values, trailing bytes, socket errors mid-frame.
/// Handlers catch it at the connection boundary and drop the connection.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A socket operation exceeded its configured timeout (SO_SNDTIMEO /
/// SO_RCVTIMEO). The server's slow-reader policy and the client's bounded
/// reads both key off this subtype to tell "peer is too slow" apart from
/// "peer is gone".
class WireTimeout : public WireError {
 public:
  using WireError::WireError;
};

/// A frame announced a body larger than the receiver's cap. Split out so
/// the server can answer with ErrorCode::kTooLarge instead of a generic
/// protocol error before closing.
class WireTooLarge : public WireError {
 public:
  using WireError::WireError;
};

inline constexpr uint32_t kWireMagic = 0x50564659;  // "PVFY"
/// Current protocol version: v2 adds the CRC-32 frame trailer, the
/// request-body extension block (deadline_ms) and typed error codes.
inline constexpr uint16_t kWireVersion = 2;
/// Oldest version still accepted on decode. v1 frames have no trailer, no
/// extension block and string-only error bodies.
inline constexpr uint16_t kMinWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 20;
/// Bytes of CRC-32 trailer on a version ≥ 2 frame.
inline constexpr size_t kFrameChecksumBytes = 4;
/// Default cap on a frame body. Large enough for any realistic result
/// (ids + per-candidate bounds + k-NN answer); small enough that a hostile
/// length field cannot make the peer allocate unbounded memory.
inline constexpr uint32_t kDefaultMaxBodyBytes = 1u << 20;

/// What a frame carries.
enum class MessageType : uint16_t {
  kRequest = 1,   ///< client → server: one encoded QueryRequest
  kResponse = 2,  ///< server → client: the encoded QueryResult
  kError = 3,     ///< server → client: typed code + UTF-8 message;
                  ///< request-level errors keep the connection, protocol
                  ///< errors close it
};

/// Typed failure classes carried in version ≥ 2 error frames (u16 ahead of
/// the message string). Values are wire-stable; add new codes at the end.
/// Version 1 error bodies carry only the string and decode as kGeneric.
enum class ErrorCode : uint16_t {
  kGeneric = 0,           ///< unclassified failure (also every v1 error)
  kProtocol = 1,          ///< malformed frame; the connection is closing
  kInvalidRequest = 2,    ///< engine rejected the request; connection lives
  kOverloaded = 3,        ///< admission/in-flight/connection cap hit; back
                          ///< off and retry
  kDeadlineExceeded = 4,  ///< the request's deadline_ms expired (checked at
                          ///< receipt and again at dequeue)
  kTooLarge = 5,          ///< frame body over the receiver's cap
  kShuttingDown = 6,      ///< server is draining; retry against a replica
};

/// Stable lower-case token for logs and stats lines.
const char* ErrorCodeName(ErrorCode code);

/// Codes a client may safely retry for idempotent requests (pverify queries
/// are pure reads): the server either never ran the request (kOverloaded,
/// kShuttingDown) or abandoned it on a deadline the client chose.
inline bool IsRetryable(ErrorCode code) {
  return code == ErrorCode::kOverloaded || code == ErrorCode::kShuttingDown ||
         code == ErrorCode::kDeadlineExceeded;
}

struct FrameHeader {
  uint16_t version = kWireVersion;
  MessageType type = MessageType::kRequest;
  uint64_t request_id = 0;
  uint32_t body_bytes = 0;
};

/// Appends little-endian primitives to a growing byte buffer. The writer
/// never fails; framing (header + cap check) happens at send time.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { AppendLe(v); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void I32(int32_t v) { AppendLe(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { AppendLe(static_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  /// Raw IEEE-754 bits — the exact double round-trips.
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  /// u32 length + bytes.
  void String(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  void Clear() { buf_.clear(); }

 private:
  template <typename T>
  void AppendLe(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
};

/// Cursor over a received body. Every accessor bounds-checks and throws
/// WireError on overrun; Remaining() lets codecs validate element counts
/// before allocating.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : p_(data), n_(size) {}

  uint8_t U8() {
    Need(1);
    return p_[pos_++];
  }
  uint16_t U16() { return ReadLe<uint16_t>(); }
  uint32_t U32() { return ReadLe<uint32_t>(); }
  uint64_t U64() { return ReadLe<uint64_t>(); }
  int32_t I32() { return static_cast<int32_t>(ReadLe<uint32_t>()); }
  int64_t I64() { return static_cast<int64_t>(ReadLe<uint64_t>()); }
  bool Bool() {
    uint8_t v = U8();
    if (v > 1) throw WireError("wire: boolean byte out of range");
    return v != 0;
  }
  double F64() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string String(uint32_t max_len) {
    uint32_t len = U32();
    if (len > max_len) throw WireError("wire: string length over cap");
    Need(len);
    std::string s(reinterpret_cast<const char*>(p_ + pos_), len);
    pos_ += len;
    return s;
  }

  /// Skips k bytes (bounds-checked) — how unknown trailing extension bytes
  /// from a newer peer are passed over without understanding them.
  void Skip(size_t k) {
    Need(k);
    pos_ += k;
  }

  size_t Remaining() const { return n_ - pos_; }
  bool AtEnd() const { return pos_ == n_; }
  /// Codecs call this after the last field: trailing bytes mean the peer
  /// and we disagree about the layout, which must not pass silently.
  void ExpectEnd() const {
    if (!AtEnd()) throw WireError("wire: trailing bytes after message");
  }

 private:
  void Need(size_t k) const {
    if (n_ - pos_ < k) throw WireError("wire: truncated message body");
  }
  template <typename T>
  T ReadLe() {
    Need(sizeof(T));
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(p_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* p_;
  size_t n_;
  size_t pos_ = 0;
};

/// Serializes a frame header into `out[kFrameHeaderBytes]`. `version`
/// selects the layout the rest of the frame follows (v1 peers get v1
/// frames back).
void EncodeFrameHeader(MessageType type, uint64_t request_id,
                       uint32_t body_bytes, uint8_t* out,
                       uint16_t version = kWireVersion);

/// Parses and validates a frame header: magic, a version in
/// kMinWireVersion..kWireVersion, known type, body length within
/// `max_body_bytes` (violations of the cap throw WireTooLarge, everything
/// else plain WireError).
FrameHeader DecodeFrameHeader(const uint8_t* in, uint32_t max_body_bytes);

/// Incremental IEEE CRC-32 (the trailer on version ≥ 2 frames). Chain
/// calls by passing the previous return value as `crc` (start at 0).
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

/// Per-request metadata carried in the version ≥ 2 extension block at the
/// head of a request body. All fields default to "absent".
struct RequestExtensions {
  uint32_t deadline_ms = 0;  ///< 0 = no deadline; else budget from the
                             ///< moment the server read the frame header
};

/// Appends the extension block: [u32 ext_bytes][u32 deadline_ms].
void EncodeRequestExtensions(const RequestExtensions& ext, WireWriter& out);

/// Reads the extension block, skipping trailing extension bytes a newer
/// peer may have appended. Throws WireError when ext_bytes overruns the
/// body or is implausibly large.
RequestExtensions DecodeRequestExtensions(WireReader& in);

/// One decoded error-frame body.
struct DecodedError {
  ErrorCode code = ErrorCode::kGeneric;
  std::string message;
};

/// Error-frame body: v2 is [u16 code][string message]; v1 is the bare
/// string (decoded as kGeneric). Unknown future codes decode verbatim.
void EncodeErrorBody(uint16_t version, ErrorCode code, std::string_view message,
                     WireWriter& out);
DecodedError DecodeErrorBody(uint16_t version, WireReader& in,
                             uint32_t max_message_bytes);

}  // namespace net
}  // namespace pverify

#endif  // PVERIFY_NET_WIRE_H_
