#include "net/client.h"

#include <sys/socket.h>

#include <utility>

#include "net/codec.h"
#include "net/frame.h"

namespace pverify {
namespace net {

namespace {

void EncodeRequestBody(const QueryRequest& request, uint32_t deadline_ms,
                       WireWriter& body) {
  RequestExtensions ext;
  ext.deadline_ms = deadline_ms;
  EncodeRequestExtensions(ext, body);
  EncodeRequest(request, body);
}

}  // namespace

Client Client::Connect(const std::string& host, uint16_t port,
                       ClientOptions options) {
  Socket sock = ConnectTcp(host, port);
  if (options.recv_timeout_ms > 0) {
    sock.SetRecvTimeoutMs(options.recv_timeout_ms);
  }
  return Client(std::move(sock), options);
}

std::unique_ptr<Client> Client::ConnectUnique(const std::string& host,
                                              uint16_t port,
                                              ClientOptions options) {
  Socket sock = ConnectTcp(host, port);
  if (options.recv_timeout_ms > 0) {
    sock.SetRecvTimeoutMs(options.recv_timeout_ms);
  }
  return std::unique_ptr<Client>(new Client(std::move(sock), options));
}

uint64_t Client::Send(const QueryRequest& request, uint32_t deadline_ms) {
  std::lock_guard<std::mutex> lock(send_mu_);
  uint64_t id = next_id_++;
  WireWriter body;
  EncodeRequestBody(request, deadline_ms, body);
  SendFrameOn(sock_, MessageType::kRequest, id, body);
  return id;
}

void Client::SendWithId(const QueryRequest& request, uint64_t request_id,
                        uint32_t deadline_ms) {
  std::lock_guard<std::mutex> lock(send_mu_);
  WireWriter body;
  EncodeRequestBody(request, deadline_ms, body);
  SendFrameOn(sock_, MessageType::kRequest, request_id, body);
}

ServeResponse Client::ReadNext() {
  std::lock_guard<std::mutex> lock(recv_mu_);
  ReceivedFrame frame;
  if (!ReceiveFrame(sock_, options_.max_body_bytes, &frame)) {
    throw WireError("wire: server closed the connection");
  }
  WireReader reader(frame.body.data(), frame.body.size());
  ServeResponse response;
  response.request_id = frame.header.request_id;
  switch (frame.header.type) {
    case MessageType::kResponse:
      response.ok = true;
      response.result = DecodeResult(reader);
      reader.ExpectEnd();
      break;
    case MessageType::kError: {
      response.ok = false;
      DecodedError err = DecodeErrorBody(frame.header.version, reader,
                                         options_.max_body_bytes);
      reader.ExpectEnd();
      response.code = err.code;
      response.error = std::move(err.message);
      break;
    }
    case MessageType::kRequest:
      throw WireError("wire: unexpected request frame from the server");
  }
  return response;
}

ServeResponse Client::Await(uint64_t request_id) {
  {
    std::lock_guard<std::mutex> lock(recv_mu_);
    auto it = stash_.find(request_id);
    if (it != stash_.end()) {
      ServeResponse response = std::move(it->second);
      stash_.erase(it);
      return response;
    }
  }
  for (;;) {
    ServeResponse response = ReadNext();
    if (response.request_id == request_id) return response;
    std::lock_guard<std::mutex> lock(recv_mu_);
    stash_[response.request_id] = std::move(response);
  }
}

std::vector<ServeResponse> Client::Call(
    const std::vector<QueryRequest>& requests, uint32_t deadline_ms) {
  std::vector<uint64_t> ids;
  ids.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    ids.push_back(Send(request, deadline_ms));
  }
  std::vector<ServeResponse> responses;
  responses.reserve(ids.size());
  for (uint64_t id : ids) responses.push_back(Await(id));
  return responses;
}

void Client::Close() {
  if (sock_.valid()) ::shutdown(sock_.fd(), SHUT_WR);
}

}  // namespace net
}  // namespace pverify
