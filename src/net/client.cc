#include "net/client.h"

#include <sys/socket.h>

#include <utility>

#include "net/codec.h"

namespace pverify {
namespace net {

Client Client::Connect(const std::string& host, uint16_t port,
                       ClientOptions options) {
  return Client(ConnectTcp(host, port), options);
}

uint64_t Client::Send(const QueryRequest& request) {
  std::lock_guard<std::mutex> lock(send_mu_);
  uint64_t id = next_id_++;
  WireWriter body;
  EncodeRequest(request, body);
  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(MessageType::kRequest, id,
                    static_cast<uint32_t>(body.size()), header);
  sock_.WriteAll(header, sizeof(header));
  sock_.WriteAll(body.bytes().data(), body.size());
  return id;
}

void Client::SendWithId(const QueryRequest& request, uint64_t request_id) {
  std::lock_guard<std::mutex> lock(send_mu_);
  WireWriter body;
  EncodeRequest(request, body);
  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(MessageType::kRequest, request_id,
                    static_cast<uint32_t>(body.size()), header);
  sock_.WriteAll(header, sizeof(header));
  sock_.WriteAll(body.bytes().data(), body.size());
}

ServeResponse Client::ReadNext() {
  std::lock_guard<std::mutex> lock(recv_mu_);
  uint8_t header_bytes[kFrameHeaderBytes];
  if (!sock_.ReadExact(header_bytes, sizeof(header_bytes))) {
    throw WireError("wire: server closed the connection");
  }
  FrameHeader header =
      DecodeFrameHeader(header_bytes, options_.max_body_bytes);
  std::vector<uint8_t> body(header.body_bytes);
  if (header.body_bytes > 0 && !sock_.ReadExact(body.data(), body.size())) {
    throw WireError("wire: connection closed before the frame body");
  }
  WireReader reader(body.data(), body.size());
  ServeResponse response;
  response.request_id = header.request_id;
  switch (header.type) {
    case MessageType::kResponse:
      response.ok = true;
      response.result = DecodeResult(reader);
      reader.ExpectEnd();
      break;
    case MessageType::kError:
      response.ok = false;
      response.error = reader.String(options_.max_body_bytes);
      reader.ExpectEnd();
      break;
    case MessageType::kRequest:
      throw WireError("wire: unexpected request frame from the server");
  }
  return response;
}

ServeResponse Client::Await(uint64_t request_id) {
  {
    std::lock_guard<std::mutex> lock(recv_mu_);
    auto it = stash_.find(request_id);
    if (it != stash_.end()) {
      ServeResponse response = std::move(it->second);
      stash_.erase(it);
      return response;
    }
  }
  for (;;) {
    ServeResponse response = ReadNext();
    if (response.request_id == request_id) return response;
    std::lock_guard<std::mutex> lock(recv_mu_);
    stash_[response.request_id] = std::move(response);
  }
}

std::vector<ServeResponse> Client::Call(
    const std::vector<QueryRequest>& requests) {
  std::vector<uint64_t> ids;
  ids.reserve(requests.size());
  for (const QueryRequest& request : requests) ids.push_back(Send(request));
  std::vector<ServeResponse> responses;
  responses.reserve(ids.size());
  for (uint64_t id : ids) responses.push_back(Await(id));
  return responses;
}

void Client::Close() {
  if (sock_.valid()) ::shutdown(sock_.fd(), SHUT_WR);
}

}  // namespace net
}  // namespace pverify
