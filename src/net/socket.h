// Thin RAII wrappers over POSIX TCP sockets, shared by the server and the
// client library. Blocking I/O only: the serving model is
// thread-per-connection (see net/server.h for why), so nothing here needs
// readiness notification. All failures throw net::WireError with errno
// context; SIGPIPE is avoided via MSG_NOSIGNAL on every send (plus
// SO_NOSIGPIPE where the platform has it) rather than a global signal
// disposition. Optional per-socket send/receive timeouts (SO_SNDTIMEO /
// SO_RCVTIMEO) surface as net::WireTimeout — the server's slow-reader
// policy and the client's bounded reads are built on them. Every transfer
// consults the process-global FaultInjector (net/fault.h); with faults
// disabled that costs one relaxed atomic load.
#ifndef PVERIFY_NET_SOCKET_H_
#define PVERIFY_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/wire.h"

namespace pverify {
namespace net {

/// One connected TCP socket. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void Close();
  /// shutdown(SHUT_RDWR): unblocks any thread parked in ReadExact/WriteAll
  /// on this socket (used to tear down reader/writer thread pairs) without
  /// racing the close of the descriptor itself.
  void ShutdownBoth();

  /// Writes all n bytes; throws WireError on any error or peer reset, and
  /// WireTimeout when a send timeout is configured and the peer stops
  /// draining (the slow-reader signal).
  void WriteAll(const void* data, size_t n);

  /// Reads exactly n bytes. Returns false on EOF before the first byte (a
  /// clean peer close between frames); throws WireError on EOF mid-buffer
  /// (a truncated frame) or any socket error, and WireTimeout when a
  /// receive timeout is configured and expires.
  bool ReadExact(void* data, size_t n);

  /// Bounds how long one send may block on a full socket buffer
  /// (SO_SNDTIMEO); 0 disables. A blocked send past the timeout throws
  /// WireTimeout from WriteAll.
  void SetSendTimeoutMs(uint32_t timeout_ms);
  /// Bounds how long one recv may block waiting for bytes (SO_RCVTIMEO);
  /// 0 disables.
  void SetRecvTimeoutMs(uint32_t timeout_ms);
  /// Shrinks/grows the kernel send buffer (SO_SNDBUF) — with the send
  /// timeout this bounds how much a slow reader can buffer server-side.
  void SetSendBufferBytes(int bytes);

 private:
  int fd_ = -1;
};

/// Connects to host:port (numeric IP or name). Throws WireError on failure.
/// `recv_buffer_bytes` > 0 shrinks SO_RCVBUF before connecting (before the
/// TCP window is negotiated) — the tests use it to simulate slow readers.
Socket ConnectTcp(const std::string& host, uint16_t port,
                  int recv_buffer_bytes = 0);

/// A listening TCP socket bound to the loopback-reachable wildcard address.
class Listener {
 public:
  Listener() = default;
  /// Binds and listens; port 0 picks an ephemeral port (read it back via
  /// port() — tools print it and tests connect to it).
  static Listener Bind(uint16_t port, int backlog);

  bool valid() const { return fd_.valid(); }
  uint16_t port() const { return port_; }

  /// Blocks for the next connection. Returns an invalid Socket once the
  /// listener was Shutdown() (the accept-loop exit signal).
  Socket Accept();

  /// Unblocks Accept() and prevents further connections.
  void Shutdown() { fd_.ShutdownBoth(); }

 private:
  Socket fd_;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace pverify

#endif  // PVERIFY_NET_SOCKET_H_
