// Request/response codecs for the pverify wire protocol.
//
// One encoder/decoder pair per message body: QueryRequest (every variant
// alternative except CandidatesQuery — its payload is a process-local
// candidate set and is rejected at encode AND decode time) and QueryResult
// (ids, per-query stats including the verifier stage breakdown, candidate
// probability bounds, and the optional k-NN answer). Doubles travel as raw
// bits (see net/wire.h), so a round-tripped request executes bit-identically
// and a round-tripped result compares bit-identically — the property the
// loopback differential tests pin.
//
// Decoders are strict: every enum is range-checked, every element count is
// validated against the remaining body bytes BEFORE any allocation, and
// callers are expected to ExpectEnd() afterwards so trailing bytes fail
// loudly. Anything off throws net::WireError.
#ifndef PVERIFY_NET_CODEC_H_
#define PVERIFY_NET_CODEC_H_

#include "engine/request.h"
#include "net/wire.h"

namespace pverify {
namespace net {

/// Serializes a request body (kind byte, per-kind payload, options).
/// Throws WireError for CandidatesQuery — pre-built candidate sets do not
/// travel over the wire.
void EncodeRequest(const QueryRequest& request, WireWriter& w);

/// Decodes a request body. Throws WireError on unknown kind bytes,
/// out-of-range enums or structurally invalid fields (e.g. k < 1). The
/// caller still runs semantic validation (CpnnParams::Validate) at
/// execution time and reports failures as request-level errors.
QueryRequest DecodeRequest(WireReader& r);

/// Serializes a result body (ids, stats, candidate bounds, k-NN answer).
void EncodeResult(const QueryResult& result, WireWriter& w);

/// Decodes a result body; element counts are bounds-checked against the
/// remaining bytes before anything is allocated.
QueryResult DecodeResult(WireReader& r);

}  // namespace net
}  // namespace pverify

#endif  // PVERIFY_NET_CODEC_H_
