#include "net/fault.h"

#include <cstdlib>
#include <stdexcept>

namespace pverify {
namespace net {

namespace {

double ParseProb(const std::string& key, const std::string& value) {
  size_t pos = 0;
  double p = std::stod(value, &pos);
  if (pos != value.size() || p < 0.0 || p > 1.0) {
    throw std::invalid_argument("PVERIFY_FAULTS: " + key +
                                " must be a probability in [0,1], got '" +
                                value + "'");
  }
  return p;
}

}  // namespace

FaultConfig FaultInjector::ParseSpec(const std::string& spec) {
  FaultConfig config;
  if (spec.empty() || spec == "0" || spec == "off") return config;
  config.enabled = true;
  if (spec == "1" || spec == "on") {
    // Mild defaults: enough churn to exercise every failure path without
    // drowning a smoke run in retries.
    config.delay_p = 0.01;
    config.corrupt_p = 0.005;
    config.truncate_p = 0.005;
    config.sever_p = 0.002;
    config.delay_ms = 1;
    return config;
  }
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string item = spec.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("PVERIFY_FAULTS: expected key=value, got '" +
                                  item + "'");
    }
    std::string key = item.substr(0, eq);
    std::string value = item.substr(eq + 1);
    if (key == "seed") {
      config.seed = std::stoull(value);
    } else if (key == "delay_p") {
      config.delay_p = ParseProb(key, value);
    } else if (key == "corrupt_p") {
      config.corrupt_p = ParseProb(key, value);
    } else if (key == "truncate_p") {
      config.truncate_p = ParseProb(key, value);
    } else if (key == "sever_p") {
      config.sever_p = ParseProb(key, value);
    } else if (key == "delay_ms") {
      config.delay_ms = static_cast<uint32_t>(std::stoul(value));
    } else {
      throw std::invalid_argument("PVERIFY_FAULTS: unknown key '" + key + "'");
    }
  }
  return config;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = [] {
    auto* injector = new FaultInjector();
    if (const char* env = std::getenv("PVERIFY_FAULTS")) {
      injector->Configure(ParseSpec(env));
    }
    return injector;
  }();
  return *instance;
}

void FaultInjector::Configure(const FaultConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  rng_.seed(config.seed);
  forced_ = FaultKind::kNone;
  enabled_.store(config.enabled, std::memory_order_relaxed);
}

void FaultInjector::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = FaultConfig{};
  forced_ = FaultKind::kNone;
  enabled_.store(false, std::memory_order_relaxed);
}

void FaultInjector::ForceOnce(FaultKind kind, size_t at) {
  std::lock_guard<std::mutex> lock(mu_);
  forced_ = kind;
  forced_at_ = at;
  enabled_.store(true, std::memory_order_relaxed);
}

FaultPlan FaultInjector::PlanWrite(size_t n) { return Plan(n, true); }

FaultPlan FaultInjector::PlanRead(size_t n) { return Plan(n, false); }

FaultPlan FaultInjector::Plan(size_t n, bool is_write) {
  std::lock_guard<std::mutex> lock(mu_);
  FaultPlan plan;
  if (forced_ != FaultKind::kNone && is_write) {
    plan.kind = forced_;
    plan.at = n > 0 ? forced_at_ % n : 0;
    plan.delay_ms = plan.kind == FaultKind::kDelay ? config_.delay_ms : 0;
    forced_ = FaultKind::kNone;
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    return plan;
  }
  if (!config_.enabled) return plan;
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  if (config_.delay_p > 0.0 && uniform(rng_) < config_.delay_p) {
    plan.delay_ms = config_.delay_ms;
  }
  double roll = uniform(rng_);
  if (roll < config_.sever_p) {
    plan.kind = FaultKind::kSever;
  } else if (roll < config_.sever_p + config_.truncate_p) {
    // A read-side truncation is indistinguishable from a severed peer, so
    // reads fold it into kSever.
    plan.kind = is_write ? FaultKind::kTruncate : FaultKind::kSever;
  } else if (roll < config_.sever_p + config_.truncate_p + config_.corrupt_p) {
    plan.kind = FaultKind::kCorrupt;
  }
  if (plan.kind == FaultKind::kCorrupt || plan.kind == FaultKind::kTruncate) {
    plan.at = n > 0 ? rng_() % n : 0;
  }
  if (plan.kind != FaultKind::kNone || plan.delay_ms > 0) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return plan;
}

}  // namespace net
}  // namespace pverify
