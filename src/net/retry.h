// Retry/backoff client wrapper: the polite response to kOverloaded.
//
// The server's backpressure story (net/server.h) only works if clients
// back off instead of dying, so this is the client half: RetryingClient
// owns a (re)connectable Client and re-runs failed requests under a
// RetryPolicy — exponential backoff with deterministic jitter (seeded, so
// a failing run replays exactly and tests assert the schedule), transparent
// reconnect after connection loss, and retry only where it is safe:
// connect failures, kOverloaded/kShuttingDown rejections (the server
// never started the request), deadline expirations and connection-level
// errors (pverify queries are pure reads, so re-running one at most wastes
// work — it cannot double-apply anything).
//
// pverify_cli --connect and bench/serve_loadgen surface this through
// --retries/--deadline-ms; chaos_test drives a full differential batch
// through a fault-injecting server with it.
#ifndef PVERIFY_NET_RETRY_H_
#define PVERIFY_NET_RETRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/client.h"

namespace pverify {
namespace net {

struct RetryPolicy {
  /// Total tries per request (first attempt included). 1 = never retry.
  int max_attempts = 3;
  uint32_t initial_backoff_ms = 10;
  uint32_t max_backoff_ms = 1000;
  double multiplier = 2.0;
  /// Seed for the deterministic jitter (attempt k sleeps
  /// backoff_k × U[0.5, 1.0) where U is a pure function of seed and k).
  uint64_t jitter_seed = 1;
  /// Whether kDeadlineExceeded answers are retried. Safe for pverify's
  /// read-only queries; turn off for latency-budgeted callers that prefer
  /// the typed error over a late answer.
  bool retry_timeouts = true;
};

/// Client-side counterpart of ServerStats.
struct ClientStats {
  uint64_t send_attempts = 0;      ///< request frames sent, retries included
  uint64_t retries = 0;            ///< re-sends beyond a request's first try
  uint64_t reconnects = 0;         ///< successful reconnects after a loss
  uint64_t connect_failures = 0;   ///< failed connection attempts
  uint64_t overloaded = 0;         ///< kOverloaded answers seen
  uint64_t deadline_exceeded = 0;  ///< kDeadlineExceeded answers seen
  uint64_t connection_errors = 0;  ///< WireError-level failures (sever, ...)
  uint64_t exhausted = 0;          ///< requests failed after max_attempts
};

/// The backoff before attempt `attempt` (2 = first retry): exponential in
/// the policy with deterministic jitter. Exposed for tests.
uint32_t RetryBackoffMs(const RetryPolicy& policy, int attempt);

/// A Client that survives faults. Connects lazily on first use; any
/// connection-level failure tears the Client down and the next attempt
/// reconnects. NOT thread-safe — one RetryingClient per driving thread.
class RetryingClient {
 public:
  RetryingClient(std::string host, uint16_t port, ClientOptions options = {},
                 RetryPolicy policy = {});

  /// Runs the whole batch, retrying retryable failures per policy.
  /// Returns one response per request, in request order: `ok` on success,
  /// else the last typed error (never throws for per-request failures —
  /// exhausted retries surface as that request's final error response).
  std::vector<ServeResponse> Call(const std::vector<QueryRequest>& requests,
                                  uint32_t deadline_ms = 0);

  /// One request, retried per policy. Throws WireError when every attempt
  /// failed.
  QueryResult Execute(const QueryRequest& request, uint32_t deadline_ms = 0);

  const ClientStats& stats() const { return stats_; }
  bool connected() const { return client_ != nullptr; }

 private:
  /// True when a usable connection exists afterwards.
  bool EnsureConnected();
  void DropConnection();
  void Backoff(int attempt);

  std::string host_;
  uint16_t port_;
  ClientOptions options_;
  RetryPolicy policy_;
  std::unique_ptr<Client> client_;
  bool ever_connected_ = false;
  ClientStats stats_;
};

}  // namespace net
}  // namespace pverify

#endif  // PVERIFY_NET_RETRY_H_
