// Byte-granular fault injection for the socket layer.
//
// The chaos suite's contract is that the serving path never hangs, never
// crashes and never returns a wrong answer — only clean typed errors — no
// matter what the network does to it. To test that, every Socket read and
// write consults the process-global FaultInjector, which can delay the
// operation, corrupt a byte, truncate the transfer or sever the connection
// outright, driven by a seeded RNG so a failing run replays exactly.
//
// The hook is compiled in unconditionally (the disabled fast path is one
// relaxed atomic load, so production pays nothing) and enabled two ways:
//
//   * the PVERIFY_FAULTS environment variable, parsed once on first use —
//     "seed=42,delay_p=0.01,delay_ms=2,corrupt_p=0.01,truncate_p=0.005,
//     sever_p=0.005" (any subset; "1"/"on" picks mild defaults) — which is
//     how ci/chaos_smoke.sh torments a real daemon; and
//   * the Configure()/ForceOnce() test API, which chaos_test uses for both
//     statistical runs and deterministic single-fault scenarios.
#ifndef PVERIFY_NET_FAULT_H_
#define PVERIFY_NET_FAULT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>

namespace pverify {
namespace net {

enum class FaultKind : uint8_t {
  kNone = 0,
  kDelay,     ///< sleep delay_ms before the operation
  kCorrupt,   ///< flip one byte of the transfer
  kTruncate,  ///< transfer a prefix, then sever (writes only)
  kSever,     ///< shut the connection down instead of transferring
};

struct FaultConfig {
  bool enabled = false;
  uint64_t seed = 1;
  double delay_p = 0.0;
  double corrupt_p = 0.0;
  double truncate_p = 0.0;
  double sever_p = 0.0;
  uint32_t delay_ms = 1;
};

/// What the injector decided for one socket operation.
struct FaultPlan {
  uint32_t delay_ms = 0;           ///< sleep this long first (0 = none)
  FaultKind kind = FaultKind::kNone;  ///< then apply this fault
  size_t at = 0;                   ///< byte offset for corrupt/truncate
};

class FaultInjector {
 public:
  /// The process-wide instance every Socket consults. First call loads
  /// PVERIFY_FAULTS (when set) exactly once.
  static FaultInjector& Global();

  void Configure(const FaultConfig& config);
  void Disable();

  /// Queues one deterministic fault for the next write operation, ahead of
  /// any probabilistic decision. `at` is the byte offset for
  /// kCorrupt/kTruncate.
  void ForceOnce(FaultKind kind, size_t at = 0);

  /// Fast path for the disabled case — one relaxed load, no lock.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Decides the fate of one n-byte write / read. Only called when
  /// enabled().
  FaultPlan PlanWrite(size_t n);
  FaultPlan PlanRead(size_t n);

  uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }

  /// Parses the PVERIFY_FAULTS spec ("key=value,..." or "1"/"on" for mild
  /// defaults). Throws std::invalid_argument on malformed input.
  static FaultConfig ParseSpec(const std::string& spec);

 private:
  FaultPlan Plan(size_t n, bool is_write);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> faults_injected_{0};
  std::mutex mu_;
  FaultConfig config_;
  std::mt19937_64 rng_;
  FaultKind forced_ = FaultKind::kNone;
  size_t forced_at_ = 0;
};

}  // namespace net
}  // namespace pverify

#endif  // PVERIFY_NET_FAULT_H_
