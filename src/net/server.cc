#include "net/server.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "net/codec.h"

namespace pverify {
namespace net {

using Clock = std::chrono::steady_clock;

Server::Server(Engine& engine, ServerOptions options)
    : engine_(engine), options_(options) {}

Server::~Server() { Stop(); }

void Server::Start() {
  listener_ = Listener::Bind(options_.port, options_.listen_backlog);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
}

bool Server::Drain(uint32_t deadline_ms) {
  if (!started_) return true;
  draining_.store(true, std::memory_order_release);
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // In-flight work is everything submitted-but-unanswered
  // (global_pending_) plus queued error frames the writers still owe;
  // readers reject anything new with kShuttingDown from here on.
  Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  for (;;) {
    bool idle = global_pending_.load(std::memory_order_acquire) == 0;
    if (idle) {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& conn : conns_) {
        std::lock_guard<std::mutex> conn_lock(conn->mu);
        if (!conn->queue.empty()) {
          idle = false;
          break;
        }
      }
    }
    if (idle) return true;
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void Server::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();

  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& conn : conns_) {
    conn->sock.ShutdownBoth();
    conn->cv.notify_all();
  }
  for (auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
  conns_.clear();
  started_ = false;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Server::ReapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& conn = **it;
    if (conn.finished.load(std::memory_order_acquire)) {
      if (conn.reader.joinable()) conn.reader.join();
      if (conn.writer.joinable()) conn.writer.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire)) {
    Socket sock = listener_.Accept();
    if (!sock.valid()) continue;  // shutdown or a racing client; re-check
    try {
      if (options_.write_timeout_ms > 0) {
        sock.SetSendTimeoutMs(options_.write_timeout_ms);
      }
      if (options_.send_buffer_bytes > 0) {
        sock.SetSendBufferBytes(options_.send_buffer_bytes);
      }
    } catch (const WireError&) {
      // Losing the options degrades the slow-reader bound, nothing else.
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    ReapFinishedLocked();
    if (conns_.size() >= options_.max_connections) {
      // Over the cap: tell the client why, then hang up. A best-effort
      // write — a peer that already vanished only costs us the syscall.
      WireWriter body;
      EncodeErrorBody(kWireVersion, ErrorCode::kOverloaded,
                      "server connection limit reached", body);
      {
        // Count before the write: a client that has read the rejection
        // frame must already observe the counter.
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.connections_rejected;
      }
      try {
        SendFrameOn(sock, MessageType::kError, 0, body);
      } catch (const WireError&) {
      }
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(sock);
    Connection* raw = conn.get();
    conn->reader = std::thread([this, raw] { ReaderLoop(raw); });
    conn->writer = std::thread([this, raw] { WriterLoop(raw); });
    conns_.push_back(std::move(conn));
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.connections_accepted;
  }
}

bool Server::SendOnConn(Connection* conn, MessageType type,
                        uint64_t request_id, const WireWriter& body) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  try {
    SendFrameOn(conn->sock, type, request_id, body,
                conn->peer_version.load(std::memory_order_relaxed));
    return true;
  } catch (const WireTimeout&) {
    // The peer stopped draining its socket: the slow-reader policy cuts it
    // loose rather than let one stalled connection pin a writer thread and
    // an unbounded backlog.
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.slow_reader_disconnects;
    }
    conn->sock.ShutdownBoth();
    return false;
  } catch (const WireError&) {
    conn->sock.ShutdownBoth();
    return false;
  }
}

bool Server::RejectNow(Connection* conn, uint64_t request_id, ErrorCode code,
                       const std::string& message) {
  WireWriter body;
  EncodeErrorBody(conn->peer_version.load(std::memory_order_relaxed), code,
                  message, body);
  return SendOnConn(conn, MessageType::kError, request_id, body);
}

void Server::QueueProtocolError(Connection* conn, uint64_t request_id,
                                ErrorCode code, const std::string& message) {
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.protocol_errors;
  }
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->writer_exited) return;
  Outgoing out;
  out.type = MessageType::kError;
  out.request_id = request_id;
  out.code = code;
  out.error = message;
  out.close_after = true;
  conn->queue.push_back(std::move(out));
  conn->cv.notify_one();
}

void Server::ReaderLoop(Connection* conn) {
  for (;;) {
    ReceivedFrame frame;
    uint64_t request_id = 0;
    try {
      if (!ReceiveFrame(conn->sock, options_.max_body_bytes, &frame)) {
        break;  // clean EOF between frames: client is done
      }
      request_id = frame.header.request_id;
      if (frame.header.type != MessageType::kRequest) {
        throw WireError("wire: expected a request frame");
      }
      conn->peer_version.store(frame.header.version,
                               std::memory_order_relaxed);
      WireReader reader(frame.body.data(), frame.body.size());
      RequestExtensions ext;
      if (frame.header.version >= 2) ext = DecodeRequestExtensions(reader);
      QueryRequest request = DecodeRequest(reader);
      reader.ExpectEnd();

      // Admission control, in rejection-priority order. Every rejection is
      // sent by this thread directly (the protocol allows out-of-order
      // frames), so a client whose responses are stuck behind a full
      // writer queue still hears the backpressure immediately.
      bool has_deadline = ext.deadline_ms > 0;
      Clock::time_point deadline =
          frame.header_at + std::chrono::milliseconds(ext.deadline_ms);
      if (has_deadline && Clock::now() >= deadline) {
        // Expired on arrival (or while the body trickled in): answer
        // without ever running the engine.
        {
          std::lock_guard<std::mutex> stats_lock(stats_mu_);
          ++stats_.deadline_expirations;
        }
        if (!RejectNow(conn, request_id, ErrorCode::kDeadlineExceeded,
                       "deadline expired before execution")) {
          break;
        }
        continue;
      }
      if (draining_.load(std::memory_order_acquire)) {
        {
          std::lock_guard<std::mutex> stats_lock(stats_mu_);
          ++stats_.shutdown_rejections;
        }
        if (!RejectNow(conn, request_id, ErrorCode::kShuttingDown,
                       "server is draining")) {
          break;
        }
        continue;
      }
      if (options_.max_pending > 0 &&
          global_pending_.load(std::memory_order_acquire) >=
              options_.max_pending) {
        {
          std::lock_guard<std::mutex> stats_lock(stats_mu_);
          ++stats_.overload_rejections;
        }
        if (!RejectNow(conn, request_id, ErrorCode::kOverloaded,
                       "server admission limit reached")) {
          break;
        }
        continue;
      }
      if (options_.max_inflight_per_conn > 0 &&
          conn->inflight.load(std::memory_order_acquire) >=
              options_.max_inflight_per_conn) {
        {
          std::lock_guard<std::mutex> stats_lock(stats_mu_);
          ++stats_.overload_rejections;
        }
        if (!RejectNow(conn, request_id, ErrorCode::kOverloaded,
                       "per-connection in-flight limit reached")) {
          break;
        }
        continue;
      }

      global_pending_.fetch_add(1, std::memory_order_acq_rel);
      conn->inflight.fetch_add(1, std::memory_order_acq_rel);
      Outgoing out;
      out.type = MessageType::kResponse;
      out.request_id = request_id;
      out.has_deadline = has_deadline;
      out.deadline = deadline;
      out.future = engine_.Submit(std::move(request));
      bool writer_gone = false;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->writer_exited) {
          writer_gone = true;
        } else {
          conn->queue.push_back(std::move(out));
          conn->cv.notify_one();
        }
      }
      if (writer_gone) {
        conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
        global_pending_.fetch_sub(1, std::memory_order_acq_rel);
        break;
      }
    } catch (const WireTooLarge& e) {
      // Oversized frame: answer kTooLarge (after earlier responses drain),
      // then close — resynchronizing with an unread multi-megabyte body is
      // not worth trusting the peer's framing again.
      QueueProtocolError(conn, request_id, ErrorCode::kTooLarge, e.what());
      break;
    } catch (const WireError& e) {
      // Malformed frame (or socket error): queue a final error frame and
      // drop the connection once earlier responses have drained. The frame
      // is best effort — if the socket itself died, the writer's send just
      // fails and the teardown path is the same.
      QueueProtocolError(conn, request_id, ErrorCode::kProtocol, e.what());
      break;
    }
  }
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->reader_done = true;
  conn->cv.notify_all();
}

bool Server::DeliverResponse(Connection* conn, Outgoing& out) {
  // Bounded wait: poll the stop flag so a hard Stop() never deadlocks on
  // an engine future that will not resolve, and cut over to the deadline
  // answer the moment the request's budget runs out (queue time counted —
  // the budget was anchored when the frame header arrived).
  bool expired = false;
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) return false;
    std::chrono::milliseconds wait(50);
    if (out.has_deadline) {
      Clock::time_point now = Clock::now();
      if (now >= out.deadline) {
        expired = true;
        break;
      }
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      out.deadline - now) +
                  std::chrono::milliseconds(1);
      wait = std::min(wait, left);
    }
    if (out.future.wait_for(wait) == std::future_status::ready) break;
  }
  uint16_t version = conn->peer_version.load(std::memory_order_relaxed);
  WireWriter body;
  MessageType type = MessageType::kResponse;
  if (expired) {
    type = MessageType::kError;
    EncodeErrorBody(version, ErrorCode::kDeadlineExceeded,
                    "deadline exceeded while queued or executing", body);
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.deadline_expirations;
  } else {
    try {
      // The future resolves even while this connection's peer pipelines
      // more frames — the reader keeps Submitting concurrently.
      QueryResult result = out.future.get();
      EncodeResult(result, body);
    } catch (const std::exception& e) {
      // Request-level failure (engine rejected the query): report it on
      // this request id and keep the connection alive.
      type = MessageType::kError;
      body.Clear();
      EncodeErrorBody(version, ErrorCode::kInvalidRequest, e.what(), body);
    }
  }
  if (!SendOnConn(conn, type, out.request_id, body)) return false;
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  if (type == MessageType::kResponse) {
    ++stats_.requests_served;
  } else if (!expired) {
    ++stats_.request_errors;
  }
  return true;
}

void Server::WriterLoop(Connection* conn) {
  bool close = false;
  while (!close) {
    Outgoing out;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv.wait(lock, [conn] {
        return !conn->queue.empty() || conn->reader_done;
      });
      if (conn->queue.empty()) break;  // reader done and nothing pending
      out = std::move(conn->queue.front());
      conn->queue.pop_front();
    }
    close = out.close_after;
    if (out.type == MessageType::kResponse) {
      bool sent = DeliverResponse(conn, out);
      conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
      global_pending_.fetch_sub(1, std::memory_order_acq_rel);
      if (!sent) break;
    } else {
      WireWriter body;
      EncodeErrorBody(conn->peer_version.load(std::memory_order_relaxed),
                      out.code, out.error, body);
      if (!SendOnConn(conn, MessageType::kError, out.request_id, body)) break;
    }
  }
  // Account for anything still queued (and stop the reader from queueing
  // more) so Drain's pending gauge cannot leak entries this writer will
  // never send.
  std::deque<Outgoing> leftovers;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->writer_exited = true;
    leftovers.swap(conn->queue);
  }
  for (const Outgoing& left : leftovers) {
    if (left.type == MessageType::kResponse) {
      conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
      global_pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  // Unblock the reader if it is still parked in recv, then let the accept
  // loop (or Stop) reap both threads.
  conn->sock.ShutdownBoth();
  conn->finished.store(true, std::memory_order_release);
}

}  // namespace net
}  // namespace pverify
