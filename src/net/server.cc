#include "net/server.h"

#include <utility>
#include <vector>

#include "net/codec.h"

namespace pverify {
namespace net {

Server::Server(Engine& engine, ServerOptions options)
    : engine_(engine), options_(options) {}

Server::~Server() { Stop(); }

void Server::Start() {
  listener_ = Listener::Bind(options_.port, options_.listen_backlog);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
}

void Server::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();

  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& conn : conns_) {
    conn->sock.ShutdownBoth();
    conn->cv.notify_all();
  }
  for (auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
  conns_.clear();
  started_ = false;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Server::ReapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& conn = **it;
    if (conn.finished.load(std::memory_order_acquire)) {
      if (conn.reader.joinable()) conn.reader.join();
      if (conn.writer.joinable()) conn.writer.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Socket sock = listener_.Accept();
    if (!sock.valid()) continue;  // shutdown or a racing client; re-check
    std::lock_guard<std::mutex> lock(conns_mu_);
    ReapFinishedLocked();
    if (conns_.size() >= options_.max_connections) {
      // Over the cap: tell the client why, then hang up. A best-effort
      // write — a peer that already vanished only costs us the syscall.
      WireWriter body;
      body.String("server connection limit reached");
      uint8_t header[kFrameHeaderBytes];
      EncodeFrameHeader(MessageType::kError, 0,
                        static_cast<uint32_t>(body.size()), header);
      try {
        sock.WriteAll(header, sizeof(header));
        sock.WriteAll(body.bytes().data(), body.size());
      } catch (const WireError&) {
      }
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.connections_rejected;
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(sock);
    Connection* raw = conn.get();
    conn->reader = std::thread([this, raw] { ReaderLoop(raw); });
    conn->writer = std::thread([this, raw] { WriterLoop(raw); });
    conns_.push_back(std::move(conn));
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.connections_accepted;
  }
}

void Server::ReaderLoop(Connection* conn) {
  std::vector<uint8_t> body;
  for (;;) {
    uint8_t header_bytes[kFrameHeaderBytes];
    uint64_t request_id = 0;
    try {
      if (!conn->sock.ReadExact(header_bytes, sizeof(header_bytes))) {
        break;  // clean EOF between frames: client is done
      }
      FrameHeader header =
          DecodeFrameHeader(header_bytes, options_.max_body_bytes);
      request_id = header.request_id;
      if (header.type != MessageType::kRequest) {
        throw WireError("wire: expected a request frame");
      }
      body.resize(header.body_bytes);
      if (header.body_bytes > 0 &&
          !conn->sock.ReadExact(body.data(), body.size())) {
        throw WireError("wire: connection closed before the frame body");
      }
      WireReader reader(body.data(), body.size());
      QueryRequest request = DecodeRequest(reader);
      reader.ExpectEnd();
      std::future<QueryResult> future = engine_.Submit(std::move(request));
      std::lock_guard<std::mutex> lock(conn->mu);
      Outgoing out;
      out.type = MessageType::kResponse;
      out.request_id = request_id;
      out.future = std::move(future);
      conn->queue.push_back(std::move(out));
      conn->cv.notify_one();
    } catch (const WireError& e) {
      // Malformed frame (or socket error): queue a final error frame and
      // drop the connection once earlier responses have drained. The frame
      // is best effort — if the socket itself died, the writer's send just
      // fails and the teardown path is the same.
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      std::lock_guard<std::mutex> lock(conn->mu);
      Outgoing out;
      out.type = MessageType::kError;
      out.request_id = request_id;
      out.error = e.what();
      out.close_after = true;
      conn->queue.push_back(std::move(out));
      conn->cv.notify_one();
      break;
    }
  }
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->reader_done = true;
  conn->cv.notify_all();
}

void Server::SendFrame(Connection* conn, MessageType type, uint64_t request_id,
                       const WireWriter& body) {
  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(type, request_id, static_cast<uint32_t>(body.size()),
                    header);
  conn->sock.WriteAll(header, sizeof(header));
  if (body.size() > 0) conn->sock.WriteAll(body.bytes().data(), body.size());
}

void Server::WriterLoop(Connection* conn) {
  bool close = false;
  while (!close) {
    Outgoing out;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv.wait(lock, [conn] {
        return !conn->queue.empty() || conn->reader_done;
      });
      if (conn->queue.empty()) break;  // reader done and nothing pending
      out = std::move(conn->queue.front());
      conn->queue.pop_front();
    }
    close = out.close_after;
    WireWriter body;
    MessageType type = out.type;
    if (type == MessageType::kResponse) {
      try {
        // The future resolves even while this connection's peer pipelines
        // more frames — the reader keeps Submitting concurrently.
        QueryResult result = out.future.get();
        EncodeResult(result, body);
      } catch (const std::exception& e) {
        // Request-level failure (engine rejected the query): report it on
        // this request id and keep the connection alive.
        type = MessageType::kError;
        body.Clear();
        body.String(e.what());
      }
    } else {
      body.String(out.error);
    }
    try {
      SendFrame(conn, type, out.request_id, body);
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      if (type == MessageType::kResponse) {
        ++stats_.requests_served;
      } else if (!out.close_after) {  // protocol errors have their own count
        ++stats_.request_errors;
      }
    } catch (const WireError&) {
      break;  // peer went away; drain by exiting
    }
  }
  // Unblock the reader if it is still parked in recv, then let the accept
  // loop (or Stop) reap both threads.
  conn->sock.ShutdownBoth();
  conn->finished.store(true, std::memory_order_release);
}

}  // namespace net
}  // namespace pverify
