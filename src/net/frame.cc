#include "net/frame.h"

namespace pverify {
namespace net {

namespace {

void PutLe32(uint8_t* out, uint32_t v) {
  for (size_t i = 0; i < 4; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t GetLe32(const uint8_t* in) {
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) v |= static_cast<uint32_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

void SendFrameOn(Socket& sock, MessageType type, uint64_t request_id,
                 const WireWriter& body, uint16_t version) {
  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(type, request_id, static_cast<uint32_t>(body.size()),
                    header, version);
  sock.WriteAll(header, sizeof(header));
  if (body.size() > 0) sock.WriteAll(body.bytes().data(), body.size());
  if (version >= 2) {
    uint32_t crc = Crc32(header, sizeof(header));
    crc = Crc32(body.bytes().data(), body.size(), crc);
    uint8_t trailer[kFrameChecksumBytes];
    PutLe32(trailer, crc);
    sock.WriteAll(trailer, sizeof(trailer));
  }
}

bool ReceiveFrame(Socket& sock, uint32_t max_body_bytes, ReceivedFrame* out) {
  uint8_t header_bytes[kFrameHeaderBytes];
  if (!sock.ReadExact(header_bytes, sizeof(header_bytes))) return false;
  out->header_at = std::chrono::steady_clock::now();
  out->header = DecodeFrameHeader(header_bytes, max_body_bytes);
  out->body.resize(out->header.body_bytes);
  if (out->header.body_bytes > 0 &&
      !sock.ReadExact(out->body.data(), out->body.size())) {
    throw WireError("wire: connection closed before the frame body");
  }
  if (out->header.version >= 2) {
    uint8_t trailer[kFrameChecksumBytes];
    if (!sock.ReadExact(trailer, sizeof(trailer))) {
      throw WireError("wire: connection closed before the frame checksum");
    }
    uint32_t crc = Crc32(header_bytes, sizeof(header_bytes));
    crc = Crc32(out->body.data(), out->body.size(), crc);
    if (crc != GetLe32(trailer)) {
      throw WireError("wire: frame checksum mismatch");
    }
  }
  return true;
}

}  // namespace net
}  // namespace pverify
