#include "net/wire.h"

namespace pverify {
namespace net {

namespace {

template <typename T>
void PutLe(uint8_t* out, T v) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

template <typename T>
T GetLe(const uint8_t* in) {
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v = static_cast<T>(v | (static_cast<T>(in[i]) << (8 * i)));
  }
  return v;
}

// The extension block is u32 ext_bytes + payload; this cap bounds what a
// hostile peer can make us skip. Far above any plausible extension growth.
constexpr uint32_t kMaxExtensionBytes = 4096;

}  // namespace

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kGeneric:
      return "generic";
    case ErrorCode::kProtocol:
      return "protocol";
    case ErrorCode::kInvalidRequest:
      return "invalid-request";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ErrorCode::kTooLarge:
      return "too-large";
    case ErrorCode::kShuttingDown:
      return "shutting-down";
  }
  return "unknown";
}

void EncodeFrameHeader(MessageType type, uint64_t request_id,
                       uint32_t body_bytes, uint8_t* out, uint16_t version) {
  PutLe<uint32_t>(out + 0, kWireMagic);
  PutLe<uint16_t>(out + 4, version);
  PutLe<uint16_t>(out + 6, static_cast<uint16_t>(type));
  PutLe<uint64_t>(out + 8, request_id);
  PutLe<uint32_t>(out + 16, body_bytes);
}

FrameHeader DecodeFrameHeader(const uint8_t* in, uint32_t max_body_bytes) {
  if (GetLe<uint32_t>(in + 0) != kWireMagic) {
    throw WireError("wire: bad frame magic");
  }
  FrameHeader h;
  h.version = GetLe<uint16_t>(in + 4);
  if (h.version < kMinWireVersion || h.version > kWireVersion) {
    throw WireError("wire: unsupported protocol version " +
                    std::to_string(h.version));
  }
  uint16_t type = GetLe<uint16_t>(in + 6);
  if (type < static_cast<uint16_t>(MessageType::kRequest) ||
      type > static_cast<uint16_t>(MessageType::kError)) {
    throw WireError("wire: unknown frame type " + std::to_string(type));
  }
  h.type = static_cast<MessageType>(type);
  h.request_id = GetLe<uint64_t>(in + 8);
  h.body_bytes = GetLe<uint32_t>(in + 16);
  if (h.body_bytes > max_body_bytes) {
    throw WireTooLarge("wire: frame body of " + std::to_string(h.body_bytes) +
                       " bytes exceeds the " + std::to_string(max_body_bytes) +
                       "-byte cap");
  }
  return h;
}

uint32_t Crc32(const void* data, size_t n, uint32_t crc) {
  // Standard IEEE 802.3 polynomial (reflected: 0xEDB88320), table built on
  // first use.
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

void EncodeRequestExtensions(const RequestExtensions& ext, WireWriter& out) {
  out.U32(4);  // ext_bytes: just deadline_ms today
  out.U32(ext.deadline_ms);
}

RequestExtensions DecodeRequestExtensions(WireReader& in) {
  uint32_t ext_bytes = in.U32();
  if (ext_bytes > kMaxExtensionBytes) {
    throw WireError("wire: extension block of " + std::to_string(ext_bytes) +
                    " bytes is implausibly large");
  }
  if (ext_bytes > in.Remaining()) {
    throw WireError("wire: extension block overruns the frame body");
  }
  RequestExtensions ext;
  uint32_t consumed = 0;
  if (ext_bytes >= 4) {
    ext.deadline_ms = in.U32();
    consumed = 4;
  }
  in.Skip(ext_bytes - consumed);  // fields we do not know about yet
  return ext;
}

void EncodeErrorBody(uint16_t version, ErrorCode code, std::string_view message,
                     WireWriter& out) {
  if (version >= 2) out.U16(static_cast<uint16_t>(code));
  out.String(message);
}

DecodedError DecodeErrorBody(uint16_t version, WireReader& in,
                             uint32_t max_message_bytes) {
  DecodedError err;
  if (version >= 2) err.code = static_cast<ErrorCode>(in.U16());
  err.message = in.String(max_message_bytes);
  return err;
}

}  // namespace net
}  // namespace pverify
