#include "net/wire.h"

namespace pverify {
namespace net {

namespace {

template <typename T>
void PutLe(uint8_t* out, T v) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

template <typename T>
T GetLe(const uint8_t* in) {
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v = static_cast<T>(v | (static_cast<T>(in[i]) << (8 * i)));
  }
  return v;
}

}  // namespace

void EncodeFrameHeader(MessageType type, uint64_t request_id,
                       uint32_t body_bytes, uint8_t* out) {
  PutLe<uint32_t>(out + 0, kWireMagic);
  PutLe<uint16_t>(out + 4, kWireVersion);
  PutLe<uint16_t>(out + 6, static_cast<uint16_t>(type));
  PutLe<uint64_t>(out + 8, request_id);
  PutLe<uint32_t>(out + 16, body_bytes);
}

FrameHeader DecodeFrameHeader(const uint8_t* in, uint32_t max_body_bytes) {
  if (GetLe<uint32_t>(in + 0) != kWireMagic) {
    throw WireError("wire: bad frame magic");
  }
  FrameHeader h;
  h.version = GetLe<uint16_t>(in + 4);
  if (h.version != kWireVersion) {
    throw WireError("wire: unsupported protocol version " +
                    std::to_string(h.version));
  }
  uint16_t type = GetLe<uint16_t>(in + 6);
  if (type < static_cast<uint16_t>(MessageType::kRequest) ||
      type > static_cast<uint16_t>(MessageType::kError)) {
    throw WireError("wire: unknown frame type " + std::to_string(type));
  }
  h.type = static_cast<MessageType>(type);
  h.request_id = GetLe<uint64_t>(in + 8);
  h.body_bytes = GetLe<uint32_t>(in + 16);
  if (h.body_bytes > max_body_bytes) {
    throw WireError("wire: frame body of " + std::to_string(h.body_bytes) +
                    " bytes exceeds the " + std::to_string(max_body_bytes) +
                    "-byte cap");
  }
  return h;
}

}  // namespace net
}  // namespace pverify
