#include "net/socket.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "net/fault.h"

namespace pverify {
namespace net {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  if (errno == EAGAIN || errno == EWOULDBLOCK) {
    // Only surfaces when the caller armed SO_SNDTIMEO/SO_RCVTIMEO: the
    // socket is blocking, so EAGAIN means the timeout fired.
    throw WireTimeout(what + ": timed out");
  }
  throw WireError(what + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  // Query frames are small (tens of bytes); Nagle would add a full RTT of
  // batching delay to every pipelined request, which is exactly the latency
  // the load generator measures.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
#ifdef SO_NOSIGPIPE
  // BSD/macOS: belt on top of the per-send MSG_NOSIGNAL braces (which
  // those platforms lack).
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
}

#ifndef MSG_NOSIGNAL
// Platforms with SO_NOSIGPIPE instead of the per-call flag.
#define MSG_NOSIGNAL 0
#endif

void SetTimeoutOpt(int fd, int opt, uint32_t timeout_ms,
                   const char* what) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv)) < 0) {
    ThrowErrno(what);
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::WriteAll(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  std::vector<uint8_t> mangled;  // only allocated when a fault corrupts
  FaultInjector& faults = FaultInjector::Global();
  if (faults.enabled() && n > 0) {
    FaultPlan plan = faults.PlanWrite(n);
    if (plan.delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
    }
    switch (plan.kind) {
      case FaultKind::kNone:
      case FaultKind::kDelay:
        break;
      case FaultKind::kCorrupt:
        mangled.assign(p, p + n);
        mangled[plan.at] ^= 0x80;
        p = mangled.data();
        break;
      case FaultKind::kTruncate: {
        // Deliver a prefix so the peer sees a frame cut off mid-flight,
        // then kill the connection from this side.
        size_t prefix = plan.at;
        const uint8_t* q = static_cast<const uint8_t*>(data);
        while (prefix > 0) {
          ssize_t written = ::send(fd_, q, prefix, MSG_NOSIGNAL);
          if (written <= 0) break;
          q += written;
          prefix -= static_cast<size_t>(written);
        }
        ShutdownBoth();
        throw WireError("fault injection: write truncated");
      }
      case FaultKind::kSever:
        ShutdownBoth();
        throw WireError("fault injection: connection severed");
    }
  }
  while (n > 0) {
    ssize_t written = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("socket write");
    }
    if (written == 0) throw WireError("socket write: connection closed");
    p += written;
    n -= static_cast<size_t>(written);
  }
}

bool Socket::ReadExact(void* data, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(data);
  FaultPlan plan;
  FaultInjector& faults = FaultInjector::Global();
  if (faults.enabled() && n > 0) {
    plan = faults.PlanRead(n);
    if (plan.delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
    }
    if (plan.kind == FaultKind::kSever ||
        plan.kind == FaultKind::kTruncate) {
      ShutdownBoth();
      throw WireError("fault injection: connection severed");
    }
  }
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("socket read");
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF between frames
      throw WireError("socket read: connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  if (plan.kind == FaultKind::kCorrupt) p[plan.at] ^= 0x80;
  return true;
}

void Socket::SetSendTimeoutMs(uint32_t timeout_ms) {
  SetTimeoutOpt(fd_, SO_SNDTIMEO, timeout_ms, "set send timeout");
}

void Socket::SetRecvTimeoutMs(uint32_t timeout_ms) {
  SetTimeoutOpt(fd_, SO_RCVTIMEO, timeout_ms, "set recv timeout");
}

void Socket::SetSendBufferBytes(int bytes) {
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) < 0) {
    ThrowErrno("set send buffer");
  }
}

Socket ConnectTcp(const std::string& host, uint16_t port,
                  int recv_buffer_bytes) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &res);
  if (rc != 0) {
    throw WireError("resolve " + host + ": " + ::gai_strerror(rc));
  }
  int fd = -1;
  int saved_errno = 0;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      saved_errno = errno;
      continue;
    }
    if (recv_buffer_bytes > 0) {
      // Must land before connect() so the negotiated TCP window honors it.
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &recv_buffer_bytes,
                   sizeof(recv_buffer_bytes));
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    saved_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    errno = saved_errno;
    ThrowErrno("connect " + host + ":" + std::to_string(port));
  }
  SetNoDelay(fd);
  return Socket(fd);
}

Listener Listener::Bind(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    ThrowErrno("bind port " + std::to_string(port));
  }
  if (::listen(fd, backlog) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    ThrowErrno("listen");
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    ThrowErrno("getsockname");
  }

  Listener listener;
  listener.fd_ = Socket(fd);
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Socket Listener::Accept() {
  for (;;) {
    int fd = ::accept(fd_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      SetNoDelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    // EINVAL/EBADF after Shutdown(), ECONNABORTED on a racing client —
    // either way the accept loop treats an invalid socket as "check the
    // stop flag".
    return Socket();
  }
}

}  // namespace net
}  // namespace pverify
