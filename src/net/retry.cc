#include "net/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace pverify {
namespace net {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

uint32_t RetryBackoffMs(const RetryPolicy& policy, int attempt) {
  if (attempt <= 1) return 0;
  double base = static_cast<double>(policy.initial_backoff_ms);
  for (int k = 2; k < attempt; ++k) base *= policy.multiplier;
  base = std::min(base, static_cast<double>(policy.max_backoff_ms));
  // Deterministic jitter in [0.5, 1.0): a pure function of (seed, attempt),
  // so two clients with different seeds desynchronize their retry storms
  // while any single run replays exactly.
  uint64_t h = SplitMix64(policy.jitter_seed ^
                          (static_cast<uint64_t>(attempt) *
                           0x9E3779B97F4A7C15ull));
  double frac = 0.5 + 0.5 * (static_cast<double>(h >> 11) *
                             (1.0 / 9007199254740992.0));  // 2^53
  return static_cast<uint32_t>(base * frac);
}

RetryingClient::RetryingClient(std::string host, uint16_t port,
                               ClientOptions options, RetryPolicy policy)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      policy_(policy) {}

bool RetryingClient::EnsureConnected() {
  if (client_) return true;
  try {
    client_ = Client::ConnectUnique(host_, port_, options_);
  } catch (const WireError&) {
    ++stats_.connect_failures;
    return false;
  }
  if (ever_connected_) ++stats_.reconnects;
  ever_connected_ = true;
  return true;
}

void RetryingClient::DropConnection() { client_.reset(); }

void RetryingClient::Backoff(int attempt) {
  uint32_t ms = RetryBackoffMs(policy_, attempt);
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

namespace {

/// Retry decision for a typed server answer (connection-level WireErrors
/// are always retryable — the request may never have been read).
bool ShouldRetry(const RetryPolicy& policy, ErrorCode code) {
  if (!IsRetryable(code)) return false;
  if (code == ErrorCode::kDeadlineExceeded && !policy.retry_timeouts) {
    return false;
  }
  return true;
}

}  // namespace

std::vector<ServeResponse> RetryingClient::Call(
    const std::vector<QueryRequest>& requests, uint32_t deadline_ms) {
  const size_t n = requests.size();
  std::vector<ServeResponse> out(n);
  std::vector<bool> done(n, false);
  std::vector<bool> sent_once(n, false);
  std::vector<size_t> remaining(n);
  for (size_t i = 0; i < n; ++i) remaining[i] = i;

  for (int attempt = 1;
       attempt <= policy_.max_attempts && !remaining.empty(); ++attempt) {
    if (attempt > 1) Backoff(attempt);
    if (!EnsureConnected()) {
      for (size_t idx : remaining) {
        out[idx] = ServeResponse{};
        out[idx].error = "connect to " + host_ + ":" +
                         std::to_string(port_) + " failed";
      }
      continue;
    }
    try {
      std::vector<uint64_t> ids;
      ids.reserve(remaining.size());
      for (size_t idx : remaining) {
        ids.push_back(client_->Send(requests[idx], deadline_ms));
        ++stats_.send_attempts;
        if (sent_once[idx]) ++stats_.retries;
        sent_once[idx] = true;
      }
      std::vector<size_t> still;
      for (size_t k = 0; k < ids.size(); ++k) {
        size_t idx = remaining[k];
        ServeResponse response = client_->Await(ids[k]);
        if (response.ok) {
          done[idx] = true;
        } else {
          if (response.code == ErrorCode::kOverloaded) ++stats_.overloaded;
          if (response.code == ErrorCode::kDeadlineExceeded) {
            ++stats_.deadline_exceeded;
          }
          if (ShouldRetry(policy_, response.code)) {
            still.push_back(idx);
          } else {
            done[idx] = true;  // typed, final: surface it as-is
          }
        }
        out[idx] = std::move(response);
      }
      remaining.swap(still);
    } catch (const WireError& e) {
      // Connection-level failure (severed, corrupted framing, timeout):
      // the connection is useless; reconnect next attempt and re-run
      // everything not yet answered. Queries are pure reads, so a request
      // the server did manage to execute is merely recomputed.
      ++stats_.connection_errors;
      DropConnection();
      std::vector<size_t> still;
      for (size_t idx : remaining) {
        if (done[idx]) continue;
        out[idx] = ServeResponse{};
        out[idx].error = std::string("connection failure: ") + e.what();
        still.push_back(idx);
      }
      remaining.swap(still);
    }
  }
  stats_.exhausted += remaining.size();
  return out;
}

QueryResult RetryingClient::Execute(const QueryRequest& request,
                                    uint32_t deadline_ms) {
  std::string last_error = "never attempted";
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (attempt > 1) Backoff(attempt);
    if (!EnsureConnected()) {
      last_error = "connect to " + host_ + ":" + std::to_string(port_) +
                   " failed";
      continue;
    }
    try {
      uint64_t id = client_->Send(request, deadline_ms);
      ++stats_.send_attempts;
      if (attempt > 1) ++stats_.retries;
      ServeResponse response = client_->Await(id);
      if (response.ok) return std::move(response.result);
      if (response.code == ErrorCode::kOverloaded) ++stats_.overloaded;
      if (response.code == ErrorCode::kDeadlineExceeded) {
        ++stats_.deadline_exceeded;
      }
      last_error = response.error;
      if (!ShouldRetry(policy_, response.code)) break;
    } catch (const WireError& e) {
      ++stats_.connection_errors;
      DropConnection();
      last_error = e.what();
    }
  }
  ++stats_.exhausted;
  throw WireError("request failed after " +
                  std::to_string(policy_.max_attempts) + " attempts: " +
                  last_error);
}

}  // namespace net
}  // namespace pverify
