// Work-stealing worker pool with a nesting-safe ParallelFor.
//
// Layout: every worker owns a deque accessed Chase–Lev-style — the owner
// pushes and pops at the BOTTOM (LIFO, so the hottest, most recently
// spawned work runs first and nested loops unwind innermost-first), thieves
// take from the TOP (FIFO, so they grab the oldest and therefore typically
// largest pending work). External threads inject through a shared FIFO
// queue that workers poll between their own deque and stealing. Each deque
// is guarded by its own mutex rather than the lock-free Chase–Lev
// protocol: at engine task granularity (tasks are whole queries or whole
// shard scans, tens of microseconds and up) an uncontended lock is noise,
// and the locked form is provably data-race-free — the TSan CI job runs
// the entire engine suite over this pool.
//
// Nesting: ParallelFor called from inside a pool worker does NOT block on a
// condition variable (that would deadlock once every worker waits on an
// inner loop). Instead the calling worker spawns the loop's runner tasks
// onto its own deque and then PARTICIPATES: it claims loop indices itself
// and, whenever the loop still has unfinished runners it cannot execute
// (because thieves hold them), it drains its own deque and steals from the
// other workers — executing whatever task it finds, including other
// queries — until the inner loop's completion latch trips. Fan-out from
// inside pool workers is therefore deadlock-free by construction, and idle
// workers are never idle while any loop anywhere has unclaimed indices.
//
// Worker ids are stable: each OS worker thread keeps one id in [0, size())
// for the pool's lifetime, every callback (nested or not) reports the id of
// the thread executing it, and a worker participating in its own inner
// loop runs those iterations under its outer id — per-worker scratch
// arenas keyed by the id therefore keep working across nesting and
// stealing.
#ifndef PVERIFY_ENGINE_WORK_STEAL_POOL_H_
#define PVERIFY_ENGINE_WORK_STEAL_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "engine/worker_pool.h"

namespace pverify {

/// Move-only type-erased callable used for every queued pool task. Unlike
/// std::function it (a) never allocates for captures up to kInlineBytes —
/// the pool's own loop-runner tasks are a couple of pointers, so the hot
/// path stays allocation-free — and (b) passes the executing worker's id
/// to callables that want it: f(worker) when invocable, plain f()
/// otherwise.
class PoolTask {
 public:
  static constexpr size_t kInlineBytes = 48;

  PoolTask() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, PoolTask>>>
  PoolTask(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    constexpr bool kInline = sizeof(Fn) <= kInlineBytes &&
                             alignof(Fn) <= alignof(std::max_align_t) &&
                             std::is_nothrow_move_constructible_v<Fn>;
    if constexpr (kInline) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  PoolTask(PoolTask&& other) noexcept { MoveFrom(other); }
  PoolTask& operator=(PoolTask&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  PoolTask(const PoolTask&) = delete;
  PoolTask& operator=(const PoolTask&) = delete;
  ~PoolTask() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Invokes the callable (which must be engaged) with the executing
  /// worker's id.
  void operator()(size_t worker) { ops_->invoke(storage_, worker); }

 private:
  struct Ops {
    void (*invoke)(void* storage, size_t worker);
    void (*relocate)(void* from, void* to) noexcept;  // move + destroy from
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static void Invoke(void* storage, size_t worker) {
    Fn& f = *static_cast<Fn*>(storage);
    if constexpr (std::is_invocable_v<Fn&, size_t>) {
      f(worker);
    } else {
      f();
    }
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      &Invoke<Fn>,
      [](void* from, void* to) noexcept {
        Fn* f = static_cast<Fn*>(from);
        ::new (to) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* storage) noexcept { static_cast<Fn*>(storage)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* storage, size_t worker) {
        Invoke<Fn>(*static_cast<Fn**>(storage), worker);
      },
      [](void* from, void* to) noexcept {
        ::new (to) Fn*(*static_cast<Fn**>(from));
      },
      [](void* storage) noexcept { delete *static_cast<Fn**>(storage); },
  };

  void MoveFrom(PoolTask& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// The work-stealing pool. See the file comment for the scheduling model.
class WorkStealingPool : public WorkerPool {
 public:
  /// Spawns `num_threads` workers (0 means hardware concurrency; clamped
  /// to >= 1).
  explicit WorkStealingPool(size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~WorkStealingPool() override;

  size_t size() const override { return deques_.size(); }
  PoolKind kind() const override { return PoolKind::kWorkStealing; }
  bool SupportsNestedParallelFor() const override { return true; }

  /// Enqueues a task for any worker: onto the calling worker's own deque
  /// when called from inside the pool, through the injection queue
  /// otherwise. Fire-and-forget; pair with WaitIdle() to synchronize.
  void Submit(PoolTask task);

  /// Blocks until every Submit()ted task has finished. (ParallelFor is
  /// self-synchronizing and does not count.)
  void WaitIdle();

  /// Nesting-safe ParallelFor (see WorkerPool::ParallelFor for the index
  /// and worker-id contract). From an external thread the caller blocks on
  /// the loop's latch; from a pool worker the caller participates.
  void ParallelFor(size_t n,
                   const std::function<void(size_t worker, size_t index)>& fn)
      override;

  /// Sentinel returned by CurrentWorkerId on non-worker threads.
  static constexpr size_t kNotAWorker = ~static_cast<size_t>(0);

  /// The calling thread's stable worker id in this pool, or kNotAWorker.
  size_t CurrentWorkerId() const;

  /// Time this thread spent running drained/stolen foreign tasks while
  /// blocked in nested ParallelFor calls (see WorkerPool). Maintained in
  /// the drain loop of ParallelFor: each foreign task's wall time is added
  /// net of the bumps its own nested drains made, so a stolen whole-query
  /// task that itself steals is charged exactly once.
  double ForeignWorkMsOnThisThread() const override;

  /// Lifetime telemetry: tasks executed from the owner's own deque vs.
  /// stolen from another worker's (approximate; relaxed counters).
  size_t TasksRunLocally() const {
    return local_runs_.load(std::memory_order_relaxed);
  }
  size_t TasksStolen() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  /// One worker's task deque: owner at the bottom, thieves at the top.
  struct TaskDeque {
    std::mutex mu;
    std::deque<PoolTask> tasks;
    /// Maintained alongside tasks.size() so scans can skip empty deques
    /// without taking the lock.
    std::atomic<size_t> approx_size{0};
  };

  /// State of one ParallelFor, on the caller's stack. Runner tasks hold a
  /// pointer to it; every runner has finished (and been popped) by the
  /// time ParallelFor returns, so no queued task outlives its loop.
  struct LoopState;

  void WorkerLoop(size_t worker_id);
  /// Pops own deque (LIFO) / injection queue / steals (FIFO); runs at most
  /// one task. Returns false when nothing was runnable anywhere.
  bool RunOneTask(size_t self);
  /// Claims loop indices until the cursor is exhausted (one "runner").
  static void RunLoopBody(LoopState& state, size_t worker);
  void PushToOwnDeque(size_t self, PoolTask task);
  void Inject(PoolTask task);
  /// Bumps the work epoch and wakes sleepers; call after any push.
  void SignalWork();

  std::vector<std::unique_ptr<TaskDeque>> deques_;
  std::mutex inject_mu_;
  std::deque<PoolTask> injected_;
  std::atomic<size_t> injected_size_{0};

  /// Sleep management: workers that find every queue empty wait for the
  /// epoch to move. Pushers bump the epoch, then acquire-release sleep_mu_
  /// so a worker between its last failed scan and its wait cannot miss the
  /// bump (the empty critical section serializes against the predicate
  /// check).
  std::atomic<uint64_t> work_epoch_{0};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stopping_{false};

  /// Submit() accounting for WaitIdle.
  std::atomic<size_t> submitted_in_flight_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  std::atomic<size_t> local_runs_{0};
  std::atomic<size_t> steals_{0};

  std::vector<std::thread> workers_;  ///< last: threads see members above
};

}  // namespace pverify

#endif  // PVERIFY_ENGINE_WORK_STEAL_POOL_H_
