// The engines' typed request model.
//
// Each query family the engines serve has a payload struct of its own —
// PointQuery, MinQuery, MaxQuery, KnnQuery, CandidatesQuery, Point2DQuery —
// and a QueryRequest is a thin wrapper over a std::variant of them. The
// request kind is derived from the engaged alternative, never stored, so a
// request cannot carry fields that contradict its kind.
//
// CandidatesQuery owns a pre-built candidate set that is CONSUMED when the
// request executes; it is move-only, so the type system rules out the
// accidental payload copies the old fat-struct API had to police at
// runtime. Executing a consumed CandidatesQuery throws at execution time
// (wrapping one into a QueryRequest is unchecked — the error surfaces when
// the engine takes the payload; see has_payload() to check earlier).
// Because one variant alternative is move-only, the whole QueryRequest is
// move-only: build a fresh payload struct per submission (they are a
// couple of words each; the candidate-set payload is exactly the thing
// that must not be duplicated silently).
#ifndef PVERIFY_ENGINE_REQUEST_H_
#define PVERIFY_ENGINE_REQUEST_H_

#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "core/candidate.h"
#include "core/query.h"
#include "uncertain/geometry2d.h"

namespace pverify {

/// Which query family a request runs. Derived from a QueryRequest's engaged
/// variant alternative (see QueryRequest::kind), never stored.
enum class QueryKind {
  kPoint,       ///< C-PNN at a 1-D query point
  kMin,         ///< minimum query (PNN with q = −∞)
  kMax,         ///< maximum query (PNN with q = +∞)
  kKnn,         ///< constrained probabilistic k-NN
  kCandidates,  ///< C-PNN over a pre-built candidate set
  kPoint2D,     ///< C-PNN at a 2-D query point (needs a 2-D dataset)
  kKnn2D,       ///< constrained k-NN at a 2-D query point (needs 2-D data)
};

std::string_view ToString(QueryKind kind);

/// C-PNN at a 1-D query point.
struct PointQuery {
  double q = 0.0;
  QueryOptions options;
};

/// Minimum query: PNN evaluated below every uncertainty interval.
struct MinQuery {
  QueryOptions options;
};

/// Maximum query: PNN evaluated above every uncertainty interval.
struct MaxQuery {
  QueryOptions options;
};

/// Constrained probabilistic k-NN at a 1-D query point.
struct KnnQuery {
  double q = 0.0;
  int k = 2;
  QueryOptions options;
};

/// C-PNN at a 2-D query point (the engine must own a 2-D dataset).
struct Point2DQuery {
  Point2 q;
  QueryOptions options;
};

/// Constrained probabilistic k-NN at a 2-D query point (the engine must
/// own a 2-D dataset).
struct Knn2DQuery {
  Point2 q;
  int k = 2;
  QueryOptions options;
};

/// C-PNN over a pre-built candidate set. The payload is consumed when the
/// query executes, so the type is move-only: copying would silently
/// duplicate a potentially large candidate set, and the old API's runtime
/// consumption flag existed only to catch what the type system now rejects
/// at compile time. Moving transfers the payload and leaves the source
/// without one; executing a payload-less CandidatesQuery throws.
class CandidatesQuery {
 public:
  CandidatesQuery() = default;
  explicit CandidatesQuery(CandidateSet candidates, QueryOptions options = {});

  CandidatesQuery(const CandidatesQuery&) = delete;
  CandidatesQuery& operator=(const CandidatesQuery&) = delete;
  CandidatesQuery(CandidatesQuery&&) noexcept = default;
  CandidatesQuery& operator=(CandidatesQuery&&) noexcept = default;

  /// True until the payload is taken (by execution or TakeCandidates).
  bool has_payload() const { return candidates_ != nullptr; }

  /// Moves the payload out; throws std::logic_error when it was already
  /// consumed — a re-submitted request is rejected, never answered over a
  /// silently empty set.
  CandidateSet TakeCandidates();

  QueryOptions options;

 private:
  std::unique_ptr<CandidateSet> candidates_;
};

/// One query to execute: a variant over the per-kind payload structs.
/// Constructs implicitly from any payload, so callers write
/// `engine.Execute(PointQuery{12.0, options})`.
struct QueryRequest {
  using Variant = std::variant<PointQuery, MinQuery, MaxQuery, KnnQuery,
                               CandidatesQuery, Point2DQuery, Knn2DQuery>;

  /// The engaged payload. Defaults to PointQuery{} (kind() == kPoint).
  Variant query;

  QueryRequest() = default;
  QueryRequest(PointQuery q) : query(std::move(q)) {}       // NOLINT
  QueryRequest(MinQuery q) : query(std::move(q)) {}         // NOLINT
  QueryRequest(MaxQuery q) : query(std::move(q)) {}         // NOLINT
  QueryRequest(KnnQuery q) : query(std::move(q)) {}         // NOLINT
  QueryRequest(CandidatesQuery q) : query(std::move(q)) {}  // NOLINT
  QueryRequest(Point2DQuery q) : query(std::move(q)) {}     // NOLINT
  QueryRequest(Knn2DQuery q) : query(std::move(q)) {}       // NOLINT

  /// The request kind, derived from the engaged alternative.
  QueryKind kind() const { return static_cast<QueryKind>(query.index()); }

  /// The engaged payload's options (every payload carries one).
  const QueryOptions& options() const;
};

// kind() reads the variant index as a QueryKind; pin the mapping.
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<size_t>(QueryKind::kPoint),
                       QueryRequest::Variant>,
                   PointQuery> &&
        std::is_same_v<std::variant_alternative_t<
                           static_cast<size_t>(QueryKind::kMin),
                           QueryRequest::Variant>,
                       MinQuery> &&
        std::is_same_v<std::variant_alternative_t<
                           static_cast<size_t>(QueryKind::kMax),
                           QueryRequest::Variant>,
                       MaxQuery> &&
        std::is_same_v<std::variant_alternative_t<
                           static_cast<size_t>(QueryKind::kKnn),
                           QueryRequest::Variant>,
                       KnnQuery> &&
        std::is_same_v<std::variant_alternative_t<
                           static_cast<size_t>(QueryKind::kCandidates),
                           QueryRequest::Variant>,
                       CandidatesQuery> &&
        std::is_same_v<std::variant_alternative_t<
                           static_cast<size_t>(QueryKind::kPoint2D),
                           QueryRequest::Variant>,
                       Point2DQuery> &&
        std::is_same_v<std::variant_alternative_t<
                           static_cast<size_t>(QueryKind::kKnn2D),
                           QueryRequest::Variant>,
                       Knn2DQuery>,
    "QueryKind values must mirror the variant alternative order");

/// Result of one request, in the same shape regardless of kind.
struct QueryResult {
  /// IDs of objects satisfying the query, ascending.
  std::vector<ObjectId> ids;
  QueryStats stats;
  /// Per-candidate bounds (kPoint/kMin/kMax/kCandidates when
  /// options.report_probabilities is set).
  std::vector<AnswerEntry> candidate_probabilities;
  /// Full k-NN answer; engaged only for kKnn / kKnn2D requests.
  std::optional<CknnAnswer> knn;
};

/// Repackages a core QueryAnswer as an engine QueryResult.
QueryResult ToQueryResult(QueryAnswer&& answer);

}  // namespace pverify

#endif  // PVERIFY_ENGINE_REQUEST_H_
