// The memoizing verification tier behind the Engine interface.
//
// A CachingEngine is a decorator over any backend Engine — the unsharded
// QueryEngine or the scatter/gather ShardedQueryEngine — that remembers
// verification results and serves repeated queries from a sharded LRU
// instead of re-running the filter/verify/refine pipeline. The motivating
// workloads (LBS tracking, sensor monitoring) have heavily clustered query
// points — popular places, repeated patrols — so under Zipf-skewed traffic
// the common case becomes a lookup.
//
// Exactness contract — answers are BIT-IDENTICAL to the wrapped backend:
//
//  * Results are indexed by a coarse key (query kind, quantized query
//    point, bucketed threshold, k) but each entry also stores the EXACT
//    request fingerprint: the raw query-point bits and every
//    answer-affecting option (threshold, tolerance, strategy, refinement
//    order, integration and Monte-Carlo settings, report_probabilities).
//    A hit is served only when the incoming request's fingerprint matches
//    the entry's bit for bit; a same-cell request with a different exact
//    point or any differing option falls through to an exact recheck on
//    the backend (counted in CacheStats::rechecks) and refreshes the
//    entry. Quantization therefore never changes an answer — it only
//    bounds cache cardinality: all queries inside one cell share a slot,
//    so a hot cluster cannot grow the cache without bound.
//  * Guard band: an entry whose cached probability bound lies within
//    CachingEngineOptions::guard_band of its decision threshold is marked
//    borderline at insertion and always rechecks on the backend instead of
//    hitting — a belt-and-suspenders knob for callers who want near-the-
//    threshold answers recomputed every time (default 0: exact-fingerprint
//    matching alone already guarantees bit-identical results).
//  * CandidatesQuery requests carry a consumed-on-execute payload and pass
//    straight through (CacheStats::bypasses), as does everything when
//    capacity == 0 — a capacity-0 CachingEngine is a pure pass-through.
//  * BumpEpoch() invalidates the whole cache wholesale — the hook for
//    dataset updates (streaming ingest will call it per batch); in-flight
//    results computed under the old epoch are discarded, not inserted.
//
// Concurrency: the LRU is striped over CachingEngineOptions::num_shards
// shards, each guarded by its own mutex, so concurrent Execute/Submit
// streams from work-stealing pool workers contend only per shard. The
// Engine contract is preserved: ExecuteBatch from one thread at a time,
// Execute and Submit from anywhere (an internal SubmitQueue coalesces
// submissions exactly like the wrapped engines' own queues, so cached
// hits resolve without waking the backend pool).
#ifndef PVERIFY_ENGINE_CACHING_ENGINE_H_
#define PVERIFY_ENGINE_CACHING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"

namespace pverify {

class SubmitQueue;

struct CachingEngineOptions {
  /// Total cached results across all cache shards; 0 disables caching
  /// entirely (every request bypasses to the backend).
  size_t capacity = 4096;
  /// Mutex-striped cache shards (clamped to [1, capacity]). More shards
  /// mean less contention between concurrent submit streams.
  size_t num_shards = 8;
  /// Query-point quantization cell. Queries whose points fall in the same
  /// cell share one cache slot (the latest exact point owns it); 0 keys on
  /// the exact point bits, so distinct points never collide.
  double point_quantum = 0.0;
  /// Threshold bucketing width for the coarse key; 0 keys on exact bits.
  /// Like point_quantum this only bounds cache cardinality — serving still
  /// requires an exact threshold match.
  double threshold_quantum = 0.0;
  /// An entry whose cached probability bound lies within this distance of
  /// its decision threshold is marked borderline and always rechecks on
  /// the backend instead of serving the memoized copy.
  double guard_band = 0.0;
};

/// Memoizing decorator over any Engine backend. See the header comment for
/// the exactness and concurrency contracts.
class CachingEngine : public Engine {
 public:
  /// Decorates `backend`, which must outlive this engine.
  explicit CachingEngine(Engine& backend, CachingEngineOptions options = {});
  /// Owning variant: the backend is destroyed with the cache tier.
  explicit CachingEngine(std::unique_ptr<Engine> backend,
                         CachingEngineOptions options = {});
  ~CachingEngine() override;

  Engine& backend() { return backend_; }
  const CachingEngineOptions& options() const { return options_; }

  size_t num_threads() const override { return backend_.num_threads(); }

  /// Executes one request: served from the cache when an exact-fingerprint,
  /// non-borderline entry exists, recomputed on the backend (and memoized)
  /// otherwise. Answers match the backend bit for bit either way.
  QueryResult Execute(QueryRequest request) override;

  /// Executes a batch: hits are answered from the cache, the misses are
  /// forwarded to the backend as ONE sub-batch (keeping its pool fan-out),
  /// and results come back in request order. `stats` additionally carries
  /// this batch's exact CacheStats delta in EngineStats::cache.
  std::vector<QueryResult> ExecuteBatch(std::vector<QueryRequest> requests,
                                        EngineStats* stats = nullptr) override;

  /// Non-blocking submission with coalescing; cached requests in a
  /// coalesced batch resolve without re-running the backend pipeline.
  std::future<QueryResult> Submit(QueryRequest request) override;
  SubmitQueueStats SubmitStats() const override;
  size_t ScratchQueriesServed() const override;
  size_t ScratchBytes() const override;

  /// Dataset-epoch hook: advances the epoch and drops every cached result.
  /// Call after any dataset mutation; in-flight queries keyed under the old
  /// epoch recheck instead of hitting and are not re-inserted.
  void BumpEpoch();
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Lifetime cache telemetry (counters since construction plus the
  /// current entries/bytes gauges).
  CacheStats GetCacheStats() const;

 private:
  /// Exact request fingerprint — every answer-affecting input, compared
  /// bit for bit before an entry may serve.
  struct Fingerprint {
    QueryKind kind = QueryKind::kPoint;
    uint64_t qx_bits = 0;  ///< raw bits of the query point (0 for min/max)
    uint64_t qy_bits = 0;  ///< raw bits of the y coordinate (2-D kinds)
    int k = 0;             ///< k-NN arity (0 otherwise)
    uint64_t threshold_bits = 0;
    uint64_t tolerance_bits = 0;
    int strategy = 0;
    int refine_order = 0;
    int gauss_points = 0;
    int splits_per_subregion = 0;
    int mc_samples = 0;
    uint64_t mc_seed = 0;
    bool report_probabilities = false;

    bool operator==(const Fingerprint& other) const;
  };

  /// Key + fingerprint of one cacheable request, built before the request
  /// is moved into the backend.
  struct CacheQuery {
    uint64_t key = 0;  ///< hash of the quantized/bucketed coarse key
    Fingerprint fp;
    uint64_t epoch = 0;  ///< epoch snapshot at lookup time
  };

  struct Entry {
    uint64_t key = 0;
    Fingerprint fp;
    uint64_t epoch = 0;
    bool borderline = false;  ///< a bound sits inside the guard band
    size_t bytes = 0;         ///< approximate heap held by `result`
    QueryResult result;
  };

  struct CacheShard {
    std::mutex mu;
    /// Front = most recently used. The index maps the coarse key to the
    /// list node; key collisions are resolved by the fingerprint check at
    /// hit time (a colliding entry rechecks and is overwritten).
    std::list<Entry> lru;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    size_t bytes = 0;
  };

  /// Builds the coarse key + exact fingerprint. False when the request is
  /// uncacheable (CandidatesQuery, or capacity 0).
  bool BuildCacheQuery(const QueryRequest& request, CacheQuery* out) const;
  CacheShard& ShardFor(uint64_t key) {
    return *shards_[key % shards_.size()];
  }
  /// Returns the memoized result on an exact, current-epoch, non-borderline
  /// hit; nullopt otherwise (with hit/miss/recheck counters updated).
  std::optional<QueryResult> Lookup(const CacheQuery& cq);
  /// Memoizes `result` under `cq`, evicting LRU entries over capacity.
  /// Skipped when the epoch moved since the lookup.
  void Insert(const CacheQuery& cq, const QueryResult& result);

  /// Shared serving core of ExecuteBatch and the submit-queue drain.
  /// Requires batch_mu_. Appends served results to `results` in request
  /// order; `backend_stats` (optional) receives the miss sub-batch's
  /// aggregate from the backend.
  void ServeBatch(std::vector<QueryRequest>&& requests,
                  std::vector<QueryResult>& results,
                  EngineStats* backend_stats);
  void RunSubmitted(std::vector<PendingQuery>& batch);
  SubmitQueue* EnsureSubmitQueue();
  /// Snapshot of the monotone counters (for per-batch deltas).
  CacheStats CounterSnapshot() const;

  std::unique_ptr<Engine> owned_;  ///< engaged for the owning constructor
  Engine& backend_;
  CachingEngineOptions options_;
  size_t shard_capacity_ = 0;  ///< per-shard entry cap

  std::vector<std::unique_ptr<CacheShard>> shards_;
  std::atomic<uint64_t> epoch_{0};

  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
  std::atomic<size_t> rechecks_{0};
  std::atomic<size_t> bypasses_{0};
  std::atomic<size_t> evictions_{0};
  std::atomic<size_t> invalidations_{0};

  /// Serializes this tier's ExecuteBatch (mirroring the wrapped engines),
  /// so the backend's one-batch-at-a-time contract holds no matter how
  /// callers interleave. The submit drain never takes it: coalesced misses
  /// are re-submitted to the backend's own queue, which is safe against
  /// everything.
  mutable std::mutex batch_mu_;
  std::once_flag submit_once_;
  std::atomic<SubmitQueue*> submit_queue_ptr_{nullptr};
  std::unique_ptr<SubmitQueue> submit_queue_;  ///< last: drains first
};

/// MakeWorkerPool-style factory: wraps an owned backend in a caching tier.
std::unique_ptr<CachingEngine> MakeCachingEngine(
    std::unique_ptr<Engine> backend, CachingEngineOptions options = {});

}  // namespace pverify

#endif  // PVERIFY_ENGINE_CACHING_ENGINE_H_
