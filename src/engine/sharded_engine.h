// The sharded scatter/gather query engine.
//
// A ShardedQueryEngine partitions one Dataset (1-D intervals, 2-D regions,
// or both) across N QueryEngine shards (hash or range on the object domain,
// pluggable via ShardingPolicy) so filtering and candidate construction
// scale past one R-tree. It is the scatter/gather implementation of the
// pverify::Engine interface: each request is scattered only to the shards
// that can contribute candidates — per-shard domain bounds prune the rest
// exactly: 1-D interval bounds for point/min/max/k-NN, 2-D Mbr bounds for
// Point2DQuery (see spatial/bounds.h) — and the per-shard answers are
// gathered back into the same QueryResult shape the unsharded engine
// produces.
//
// Every request kind runs through ONE scatter/gather driver
// (ScatterGather): phase 0 caps the reachable distance per shard and prunes
// by bounds, phase 1 runs the shards' local filters, the exact global cut
// is recovered from the local results, phase 2 rechecks each surviving
// shard's objects against that cut and builds their distance
// distributions, and the gather merges the survivors and evaluates once.
// The point (1-D), point (2-D) and k-NN (1-D and 2-D) paths are policy
// instantiations of that driver, differing only in bounds metric, local
// filter and final evaluation — not in scatter/gather structure.
//
// Parallelism is two-level: batches fan requests across the worker pool,
// and each request's phase-1/phase-2 shard loops fan out again. On the
// work-stealing pool (ShardedEngineOptions::pool default) the inner loops
// are real nested ParallelFors even inside batch workers — idle workers
// steal shard tasks, so a single high-latency query scatters across every
// core. On the global-queue pool nested loops would deadlock, so requests
// executing inside batch workers scan their shards sequentially (the
// pre-work-stealing behavior).
//
// Exactness: a PNN qualification probability depends on EVERY candidate
// jointly (the Π(1 − D_k) term), so shards cannot verify independently.
// The gather phase merges the shards' survivors into one CandidateSet —
// whose construction order-normalizes by (near point, id), making the
// merge order irrelevant — and runs verification/refinement once on the
// merged set. Answers (ids, probability bounds, k-NN answers) are
// bit-identical to the unsharded QueryEngine; only timings differ.
#ifndef PVERIFY_ENGINE_SHARDED_ENGINE_H_
#define PVERIFY_ENGINE_SHARDED_ENGINE_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "datagen/partition.h"
#include "engine/query_engine.h"
#include "spatial/bounds.h"

namespace pverify {

struct ShardedEngineOptions {
  /// Number of shards the dataset is partitioned into (clamped to >= 1).
  size_t num_shards = 2;
  /// Object-to-shard assignment; null means hash sharding on object id.
  std::shared_ptr<const ShardingPolicy> policy;
  /// Scatter/gather worker threads; 0 means hardware concurrency. Shard
  /// engines themselves run single-threaded — parallelism lives here.
  size_t num_threads = 0;
  /// Radial-cdf resolution of the 2-D pipeline (Point2DQuery requests).
  int radial_pieces = 64;
  /// Worker-pool implementation. With the work-stealing pool (default) a
  /// request executing inside a batch worker scatters its shards through a
  /// real nested ParallelFor, so ONE high-latency query can use every
  /// core; the global-queue pool cannot nest, so batch workers fall back
  /// to the sequential per-request shard loop. Answers are bit-identical
  /// either way.
  PoolKind pool = PoolKind::kWorkStealing;
};

/// Per-batch statistics of the sharded engine.
struct ShardedBatchStats {
  /// Aggregate over the batch's final per-request stats — the same
  /// semantics as the EngineStats QueryEngine::ExecuteBatch fills.
  EngineStats gathered;
  /// Scatter-phase contribution of each shard: queries that visited it,
  /// its filter/candidate-build time and the candidates it contributed.
  std::vector<EngineStats> per_shard;
  /// MergeEngineStats(per_shard): the scatter phases summed across shards.
  EngineStats scatter_totals;
  size_t shard_visits = 0;   ///< shard scatter executions in this batch
  size_t shards_pruned = 0;  ///< scatter executions skipped via bounds
};

/// Serves queries over a dataset partitioned across N QueryEngine shards.
/// Same concurrency contract as QueryEngine: ExecuteBatch from one thread
/// at a time; Execute and Submit from anywhere.
class ShardedQueryEngine : public Engine {
 public:
  explicit ShardedQueryEngine(Dataset dataset,
                              ShardedEngineOptions options = {});
  /// 2-D engine: partitions a Dataset2D via ShardingPolicy::ShardOf2D and
  /// serves Point2DQuery requests with Mbr-based shard pruning.
  explicit ShardedQueryEngine(Dataset2D dataset,
                              ShardedEngineOptions options = {});
  /// Dual-mode engine: both datasets partitioned by the same policy.
  ShardedQueryEngine(Dataset dataset, Dataset2D dataset2d,
                     ShardedEngineOptions options = {});
  ~ShardedQueryEngine() override;

  size_t num_shards() const { return shards_.size(); }
  size_t num_threads() const override { return pool_->size(); }
  const WorkerPool& pool() const { return *pool_; }
  size_t total_objects() const { return total_objects_; }
  const ShardingPolicy& policy() const { return *policy_; }
  /// The i-th shard's engine (its dataset is the i-th partition).
  const QueryEngine& shard(size_t i) const { return *shards_[i].engine; }
  /// The i-th shard's domain bounds (empty for an empty shard).
  const DomainBounds& shard_bounds(size_t i) const {
    return shards_[i].bounds;
  }
  /// The i-th shard's 2-D domain bounds (empty for an empty shard or a
  /// 1-D-only engine).
  const ShardBounds2D& shard_bounds2d(size_t i) const {
    return shards_[i].bounds2d;
  }

  /// Executes one request, scattering across shards in parallel on the
  /// worker pool. Results match QueryEngine::Execute bit for bit.
  QueryResult Execute(QueryRequest request) override;

  /// Executes a batch: requests fan out across the worker pool, each
  /// scattering over the shards it needs. Results are in request order.
  std::vector<QueryResult> ExecuteBatch(std::vector<QueryRequest> requests,
                                        EngineStats* stats = nullptr) override;
  std::vector<QueryResult> ExecuteBatch(std::vector<QueryRequest> requests,
                                        ShardedBatchStats* stats);

  /// Non-blocking submission with coalescing, as QueryEngine::Submit.
  std::future<QueryResult> Submit(QueryRequest request) override;
  SubmitQueueStats SubmitStats() const override;

  /// Lifetime telemetry: scatter executions reaching a shard vs. skipped
  /// outright by its domain bounds.
  size_t ShardVisits() const;
  size_t ShardsPruned() const;

  size_t ScratchQueriesServed() const override;
  size_t ScratchBytes() const override;

 private:
  struct Shard {
    std::unique_ptr<QueryEngine> engine;
    DomainBounds bounds;
    ShardBounds2D bounds2d;
  };
  /// Per-shard scatter contribution of one request (stats only).
  struct ShardContrib {
    double filter_ms = 0.0;
    double init_ms = 0.0;
    size_t candidates = 0;
    bool visited = false;
  };
  struct ScatterRecord {
    std::vector<ShardContrib> shards;  ///< size num_shards when recording
    size_t visits = 0;                 ///< shards that collected candidates
    size_t pruned = 0;                 ///< shards skipped via bounds
  };

  /// Scatter/gather policies instantiating the one driver below: point
  /// C-PNN and constrained k-NN, each generic over dimensionality. Defined
  /// in the .cc (every instantiation lives there).
  template <int Dim>
  struct PointScatterPolicy;
  template <int Dim>
  struct KnnScatterPolicy;

  /// Shared constructor body; `serve_2d` distinguishes "no 2-D dataset"
  /// (Point2DQuery throws, like the 1-D-only QueryEngine) from "2-D
  /// dataset that happens to be empty" (Point2DQuery answers empty, like
  /// the unsharded 2-D engine).
  ShardedQueryEngine(Dataset dataset, Dataset2D dataset2d,
                     ShardedEngineOptions options, bool serve_2d);

  QueryResult ExecuteOne(QueryRequest&& request, QueryScratch* scratch,
                         bool parallel_scatter, ScatterRecord* record);
  /// Per-kind dispatch, one overload per variant alternative; each builds
  /// its policy and runs the one ScatterGather driver (CandidatesQuery is
  /// the exception: its payload already is the gathered set).
  QueryResult Run(PointQuery&& q, QueryScratch* scratch,
                  bool parallel_scatter, ScatterRecord* record);
  QueryResult Run(MinQuery&& q, QueryScratch* scratch, bool parallel_scatter,
                  ScatterRecord* record);
  QueryResult Run(MaxQuery&& q, QueryScratch* scratch, bool parallel_scatter,
                  ScatterRecord* record);
  QueryResult Run(KnnQuery&& q, QueryScratch* scratch, bool parallel_scatter,
                  ScatterRecord* record);
  QueryResult Run(CandidatesQuery&& q, QueryScratch* scratch,
                  bool parallel_scatter, ScatterRecord* record);
  QueryResult Run(Point2DQuery&& q, QueryScratch* scratch,
                  bool parallel_scatter, ScatterRecord* record);
  QueryResult Run(Knn2DQuery&& q, QueryScratch* scratch,
                  bool parallel_scatter, ScatterRecord* record);

  /// THE scatter/gather driver — the only place the phase-0 cap → local
  /// filter → exact global recheck → merge skeleton exists. `policy`
  /// supplies the kind-specific pieces (bounds metric, local filter,
  /// global cut, survivor construction, final evaluation).
  template <typename Policy>
  QueryResult ScatterGather(Policy& policy, QueryScratch* scratch,
                            bool parallel_scatter, ScatterRecord* record);

  /// Runs fn(i) for i in [0, n), on the pool when parallel.
  void ForEachIndex(bool parallel, size_t n,
                    const std::function<void(size_t)>& fn);
  void RunSubmitted(std::vector<PendingQuery>& batch);
  SubmitQueue* EnsureSubmitQueue();
  std::vector<QueryResult> ExecuteBatchLocked(
      std::vector<QueryRequest>&& requests, EngineStats* gathered,
      ShardedBatchStats* sharded);

  std::vector<Shard> shards_;
  std::shared_ptr<const ShardingPolicy> policy_;
  size_t total_objects_ = 0;
  size_t total_objects2d_ = 0;
  bool has_2d_ = false;
  int radial_pieces_ = 64;
  /// Global domain endpoints (same accumulation as the unsharded executor,
  /// so min/max queries evaluate at bit-identical virtual query points).
  double domain_lo_ = 0.0;
  double domain_hi_ = 0.0;

  std::unique_ptr<WorkerPool> pool_;
  std::vector<std::unique_ptr<QueryScratch>> worker_scratches_;
  QueryScratch serial_scratch_;  ///< used by Execute()
  mutable std::mutex serial_mu_;
  mutable std::mutex batch_mu_;

  std::atomic<size_t> shard_visits_{0};
  std::atomic<size_t> shards_pruned_{0};

  std::once_flag submit_once_;
  /// Published (release) once submit_queue_ is constructed so SubmitStats
  /// can read it lock-free from any thread.
  std::atomic<SubmitQueue*> submit_queue_ptr_{nullptr};
  std::unique_ptr<SubmitQueue> submit_queue_;  ///< last: drains first
};

}  // namespace pverify

#endif  // PVERIFY_ENGINE_SHARDED_ENGINE_H_
