// Batch-level statistics shared by every Engine implementation.
//
// EngineStats aggregates the per-query QueryStats of one batch (phase
// totals, verifier stage totals, derived rates); MergeEngineStats folds
// per-part aggregates — e.g. one EngineStats per shard — into one.
// SubmitQueueStats is the async submission queue's coalescing telemetry.
#ifndef PVERIFY_ENGINE_ENGINE_STATS_H_
#define PVERIFY_ENGINE_ENGINE_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/stats.h"

namespace pverify {

/// Telemetry of a CachingEngine's memoization tier. Counters describe an
/// interval (a batch delta or the cache's lifetime); entries/bytes are
/// point-in-time gauges of the cache contents.
struct CacheStats {
  size_t hits = 0;       ///< requests served straight from the cache
  size_t misses = 0;     ///< no entry for the request's key
  size_t rechecks = 0;   ///< entry found but unusable (borderline hit,
                         ///< fingerprint mismatch, stale epoch) — the
                         ///< backend recomputed and the entry was refreshed
  size_t bypasses = 0;   ///< uncacheable requests (consumed candidate-set
                         ///< payloads, capacity 0) passed straight through
  size_t evictions = 0;      ///< entries dropped by the LRU policy
  size_t invalidations = 0;  ///< entries dropped by dataset-epoch bumps
  size_t entries = 0;        ///< gauge: results currently cached
  size_t bytes = 0;          ///< gauge: approximate heap held by them

  /// Fraction of cacheable lookups served from the cache.
  double HitRate() const {
    const size_t lookups = hits + misses + rechecks;
    return lookups > 0 ? static_cast<double>(hits) / lookups : 0.0;
  }
};

/// Aggregate outcome of one ExecuteBatch call.
struct EngineStats {
  size_t queries = 0;
  size_t threads = 0;
  double wall_ms = 0.0;  ///< end-to-end batch wall time
  /// Per-phase totals accumulated over every query (QueryStats semantics).
  QueryStats totals;

  /// Verifier stage time/run totals aggregated by stage name, in chain
  /// order of first appearance (reproduces the paper's Fig. 12 fractions
  /// at engine level).
  struct StageTotal {
    std::string name;
    double ms = 0.0;
    size_t runs = 0;
  };
  std::vector<StageTotal> verifier_stages;

  /// Cache telemetry of the batch: zero unless a CachingEngine served it.
  /// AccumulateBatchResult counts hits from each result's served_from_cache
  /// flag; CachingEngine::ExecuteBatch overwrites the whole struct with its
  /// exact per-batch counter deltas plus the entries/bytes gauges.
  CacheStats cache;

  double QueriesPerSec() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(queries) / wall_ms
                         : 0.0;
  }
  double AvgQueryMs() const {
    return queries > 0 ? totals.total_ms / static_cast<double>(queries) : 0.0;
  }
  /// Fraction of summed per-query time spent in a phase (filter / init /
  /// verify / refine).
  double PhaseFraction(double QueryStats::*phase) const {
    return totals.total_ms > 0.0 ? totals.*phase / totals.total_ms : 0.0;
  }
};

/// Folds one query's stats into an aggregate's verifier stage totals
/// (matching stages by name, appending in order of first appearance).
void AccumulateVerifierStages(const QueryStats& stats, EngineStats* agg);

/// Folds one query's outcome (phase totals + verifier stages + query count)
/// into a batch aggregate. wall_ms/threads are left to the caller.
void AccumulateBatchResult(const QueryStats& stats, EngineStats* agg);

/// Merges per-part aggregates (e.g. one EngineStats per shard) into one:
/// queries, phase totals, verifier stage totals and cache counters sum
/// exactly (stages matched by name, ordered by first appearance across
/// parts); threads, wall_ms and the cache entries/bytes gauges take the
/// max, since parts run concurrently (per-batch gauges from one cache are
/// snapshots of the same contents, not disjoint shares). Merging an empty
/// vector yields a zero aggregate whose derived rates are all finite.
EngineStats MergeEngineStats(const std::vector<EngineStats>& parts);

/// Telemetry of an engine's async submission queue.
struct SubmitQueueStats {
  size_t requests = 0;       ///< total Submit calls
  size_t batches = 0;        ///< dispatches to the worker pool
  size_t max_coalesced = 0;  ///< largest single coalesced batch
};

}  // namespace pverify

#endif  // PVERIFY_ENGINE_ENGINE_STATS_H_
