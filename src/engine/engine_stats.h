// Batch-level statistics shared by every Engine implementation.
//
// EngineStats aggregates the per-query QueryStats of one batch (phase
// totals, verifier stage totals, derived rates); MergeEngineStats folds
// per-part aggregates — e.g. one EngineStats per shard — into one.
// SubmitQueueStats is the async submission queue's coalescing telemetry.
#ifndef PVERIFY_ENGINE_ENGINE_STATS_H_
#define PVERIFY_ENGINE_ENGINE_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/stats.h"

namespace pverify {

/// Aggregate outcome of one ExecuteBatch call.
struct EngineStats {
  size_t queries = 0;
  size_t threads = 0;
  double wall_ms = 0.0;  ///< end-to-end batch wall time
  /// Per-phase totals accumulated over every query (QueryStats semantics).
  QueryStats totals;

  /// Verifier stage time/run totals aggregated by stage name, in chain
  /// order of first appearance (reproduces the paper's Fig. 12 fractions
  /// at engine level).
  struct StageTotal {
    std::string name;
    double ms = 0.0;
    size_t runs = 0;
  };
  std::vector<StageTotal> verifier_stages;

  double QueriesPerSec() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(queries) / wall_ms
                         : 0.0;
  }
  double AvgQueryMs() const {
    return queries > 0 ? totals.total_ms / static_cast<double>(queries) : 0.0;
  }
  /// Fraction of summed per-query time spent in a phase (filter / init /
  /// verify / refine).
  double PhaseFraction(double QueryStats::*phase) const {
    return totals.total_ms > 0.0 ? totals.*phase / totals.total_ms : 0.0;
  }
};

/// Folds one query's stats into an aggregate's verifier stage totals
/// (matching stages by name, appending in order of first appearance).
void AccumulateVerifierStages(const QueryStats& stats, EngineStats* agg);

/// Folds one query's outcome (phase totals + verifier stages + query count)
/// into a batch aggregate. wall_ms/threads are left to the caller.
void AccumulateBatchResult(const QueryStats& stats, EngineStats* agg);

/// Merges per-part aggregates (e.g. one EngineStats per shard) into one:
/// queries, phase totals and verifier stage totals sum exactly (stages
/// matched by name, ordered by first appearance across parts); threads and
/// wall_ms take the max, since parts run concurrently. Merging an empty
/// vector yields a zero aggregate whose derived rates are all finite.
EngineStats MergeEngineStats(const std::vector<EngineStats>& parts);

/// Telemetry of an engine's async submission queue.
struct SubmitQueueStats {
  size_t requests = 0;       ///< total Submit calls
  size_t batches = 0;        ///< dispatches to the worker pool
  size_t max_coalesced = 0;  ///< largest single coalesced batch
};

}  // namespace pverify

#endif  // PVERIFY_ENGINE_ENGINE_STATS_H_
