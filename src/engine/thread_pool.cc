#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace pverify {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push([t = std::move(task)](size_t) { t(); });
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t worker, size_t index)>& fn) {
  if (n == 0) return;

  std::atomic<size_t> cursor{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  const size_t spawned = std::min(size(), n);
  size_t pending = spawned;

  // One runner per worker; each pulls the next unprocessed index until the
  // batch is exhausted, so stragglers never serialize the whole batch.
  auto runner = [&](size_t worker) {
    for (;;) {
      const size_t index = cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= n) break;
      try {
        fn(worker, index);
      } catch (...) {
        std::lock_guard<std::mutex> g(done_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
    // Notify while holding the lock: the waiter owns done_cv's stack frame
    // and may destroy it the instant pending reaches 0 unlocked.
    std::lock_guard<std::mutex> g(done_mu);
    --pending;
    done_cv.notify_one();
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t t = 0; t < spawned; ++t) {
      tasks_.push(runner);
      ++in_flight_;
    }
  }
  task_ready_.notify_all();

  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return pending == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  for (;;) {
    std::function<void(size_t)> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task(worker_id);
    } catch (...) {
      // Submit() tasks own their error handling (ParallelFor runners catch
      // internally); swallowing here keeps one bad task from terminating
      // the process via an escaping exception.
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace pverify
