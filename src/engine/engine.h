// The abstract query-engine interface.
//
// Everything that serves QueryRequests — the single-process QueryEngine and
// the scatter/gather ShardedQueryEngine today, any future backend
// (work-stealing pool, caching tier) tomorrow — implements pverify::Engine.
// Callers are written once against `Engine&`; whether the dataset lives in
// one R-tree or is partitioned across shards is decided only at
// construction. Every implementation honors the same contracts:
//
//  * Execute runs one request on the calling thread and ExecuteBatch fans a
//    batch across the implementation's worker pool, returning results in
//    request order; answers are bit-identical across implementations and to
//    the sequential executors (only timings differ).
//  * Submit enqueues a request and returns a future; requests submitted
//    while a batch is in flight coalesce into the next pool batch.
//  * ExecuteBatch may be called from one thread at a time; Execute and
//    Submit may be called concurrently with everything.
//  * Scratch telemetry (ScratchQueriesServed / ScratchBytes) exposes the
//    per-worker arenas so callers can pin steady-state footprint.
#ifndef PVERIFY_ENGINE_ENGINE_H_
#define PVERIFY_ENGINE_ENGINE_H_

#include <future>
#include <vector>

#include "engine/engine_stats.h"
#include "engine/request.h"

namespace pverify {

class Engine {
 public:
  virtual ~Engine();

  /// Worker threads the batch paths fan out over.
  virtual size_t num_threads() const = 0;

  /// Executes one request on the calling thread (no pool dispatch).
  virtual QueryResult Execute(QueryRequest request) = 0;

  /// Executes a batch across the worker pool; results are in request
  /// order. When `stats` is non-null it receives the batch aggregate.
  virtual std::vector<QueryResult> ExecuteBatch(
      std::vector<QueryRequest> requests, EngineStats* stats = nullptr) = 0;

  /// Non-blocking submission: queues the request and returns a future that
  /// resolves to the same result Execute would produce. Thread-safe.
  virtual std::future<QueryResult> Submit(QueryRequest request) = 0;

  /// Submission-queue telemetry (zeros until the first Submit).
  virtual SubmitQueueStats SubmitStats() const = 0;

  /// Total queries served from the per-worker scratches (telemetry).
  virtual size_t ScratchQueriesServed() const = 0;
  /// Approximate heap footprint of all scratch arenas.
  virtual size_t ScratchBytes() const = 0;

 protected:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
};

/// One queued async request with the promise its future was minted from
/// (shared between the engines and the SubmitQueue).
struct PendingQuery {
  QueryRequest request;
  std::promise<QueryResult> promise;
};

}  // namespace pverify

#endif  // PVERIFY_ENGINE_ENGINE_H_
