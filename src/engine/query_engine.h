// The batched multi-threaded query engine.
//
// A QueryEngine owns a CpnnExecutor (dataset + R-tree) and/or a
// CpnnExecutor2D (2-D dataset + 2-D R-tree), a fixed-size worker pool
// (spawned on first batched use) and one QueryScratch per worker. It exposes
// a unified request/result API over every query family the library
// evaluates — point C-PNN (1-D and native 2-D), min/max, constrained k-NN,
// and pre-built candidate sets — and fans request batches across the
// workers with dynamic load balancing. Results are returned in request
// order and are bit-identical to running the same requests sequentially
// through the executors: workers share nothing but the read-only executors,
// and each query's arithmetic is unchanged.
//
// Besides ExecuteBatch, interactive callers can Submit single requests and
// get a future back: an internal submission queue coalesces everything
// in flight into batches for the worker pool (see engine/submit_queue.h).
#ifndef PVERIFY_ENGINE_QUERY_ENGINE_H_
#define PVERIFY_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/query.h"
#include "core/query2d.h"
#include "engine/scratch.h"
#include "engine/thread_pool.h"

namespace pverify {

class SubmitQueue;

/// Which query family a request runs.
enum class QueryKind {
  kPoint,       ///< C-PNN at a 1-D query point
  kMin,         ///< minimum query (PNN with q = −∞)
  kMax,         ///< maximum query (PNN with q = +∞)
  kKnn,         ///< constrained probabilistic k-NN
  kCandidates,  ///< C-PNN over a pre-built candidate set
  kPoint2D,     ///< C-PNN at a 2-D query point (needs a 2-D dataset)
};

std::string_view ToString(QueryKind kind);

/// One query to execute. Build with the factory helpers.
///
/// A kCandidates request CONSUMES its payload when it executes: the engine
/// moves `candidates` out, so the same request cannot be re-submitted.
/// Moving a QueryRequest transfers the payload and marks the moved-from
/// source as consumed; re-submitting a consumed kCandidates request fails a
/// PV_DCHECK in debug builds (release builds evaluate the now-empty set and
/// return an empty result).
struct QueryRequest {
  QueryKind kind = QueryKind::kPoint;
  double q = 0.0;  ///< query point (kPoint, kKnn)
  Point2 q2;       ///< query point (kPoint2D)
  int k = 2;       ///< neighbor count (kKnn)
  QueryOptions options;
  /// Payload for kCandidates; consumed when the request executes.
  CandidateSet candidates;
  /// Set once the payload has been moved out (meaningful for kCandidates
  /// only; other kinds remain re-submittable after a move).
  bool payload_consumed = false;

  QueryRequest() = default;
  QueryRequest(const QueryRequest&) = default;
  QueryRequest& operator=(const QueryRequest&) = default;
  QueryRequest(QueryRequest&& other) noexcept;
  QueryRequest& operator=(QueryRequest&& other) noexcept;

  static QueryRequest Point(double q, QueryOptions options = {});
  static QueryRequest Point2D(pverify::Point2 q, QueryOptions options = {});
  static QueryRequest Min(QueryOptions options = {});
  static QueryRequest Max(QueryOptions options = {});
  static QueryRequest Knn(double q, int k, QueryOptions options = {});
  static QueryRequest Candidates(CandidateSet candidates,
                                 QueryOptions options = {});
};

/// Result of one request, in the same shape regardless of kind.
struct QueryResult {
  /// IDs of objects satisfying the query, ascending.
  std::vector<ObjectId> ids;
  QueryStats stats;
  /// Per-candidate bounds (kPoint/kMin/kMax/kCandidates when
  /// options.report_probabilities is set).
  std::vector<AnswerEntry> candidate_probabilities;
  /// Full k-NN answer; engaged only for kKnn requests.
  std::optional<CknnAnswer> knn;
};

/// Repackages a core QueryAnswer as an engine QueryResult.
QueryResult ToQueryResult(QueryAnswer&& answer);

struct EngineOptions {
  /// Worker threads; 0 means hardware concurrency.
  size_t num_threads = 0;
  /// Radial-cdf resolution of the 2-D executor (kPoint2D requests).
  int radial_pieces = 64;
};

/// Aggregate outcome of one ExecuteBatch call.
struct EngineStats {
  size_t queries = 0;
  size_t threads = 0;
  double wall_ms = 0.0;  ///< end-to-end batch wall time
  /// Per-phase totals accumulated over every query (QueryStats semantics).
  QueryStats totals;

  /// Verifier stage time/run totals aggregated by stage name, in chain
  /// order of first appearance (reproduces the paper's Fig. 12 fractions
  /// at engine level).
  struct StageTotal {
    std::string name;
    double ms = 0.0;
    size_t runs = 0;
  };
  std::vector<StageTotal> verifier_stages;

  double QueriesPerSec() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(queries) / wall_ms
                         : 0.0;
  }
  double AvgQueryMs() const {
    return queries > 0 ? totals.total_ms / static_cast<double>(queries) : 0.0;
  }
  /// Fraction of summed per-query time spent in a phase (filter / init /
  /// verify / refine).
  double PhaseFraction(double QueryStats::*phase) const {
    return totals.total_ms > 0.0 ? totals.*phase / totals.total_ms : 0.0;
  }
};

/// Folds one query's stats into an aggregate's verifier stage totals
/// (matching stages by name, appending in order of first appearance).
void AccumulateVerifierStages(const QueryStats& stats, EngineStats* agg);

/// Folds one query's outcome (phase totals + verifier stages + query count)
/// into a batch aggregate. wall_ms/threads are left to the caller.
void AccumulateBatchResult(const QueryStats& stats, EngineStats* agg);

/// Merges per-part aggregates (e.g. one EngineStats per shard) into one:
/// queries, phase totals and verifier stage totals sum exactly (stages
/// matched by name, ordered by first appearance across parts); threads and
/// wall_ms take the max, since parts run concurrently. Merging an empty
/// vector yields a zero aggregate whose derived rates are all finite.
EngineStats MergeEngineStats(const std::vector<EngineStats>& parts);

/// One queued async request with the promise its future was minted from
/// (shared between the engines and the SubmitQueue).
struct PendingQuery {
  QueryRequest request;
  std::promise<QueryResult> promise;
};

/// Telemetry of an engine's async submission queue.
struct SubmitQueueStats {
  size_t requests = 0;       ///< total Submit calls
  size_t batches = 0;        ///< dispatches to the worker pool
  size_t max_coalesced = 0;  ///< largest single coalesced batch
};

/// Serves any number of queries over one dataset, sequentially or batched.
/// ExecuteBatch is safe to call from one thread at a time; Execute and
/// Submit may be called concurrently with everything (they serialize on
/// internal state).
class QueryEngine {
 public:
  explicit QueryEngine(Dataset dataset, EngineOptions options = {});
  /// 2-D-only engine: serves kPoint2D (and kCandidates) requests.
  explicit QueryEngine(Dataset2D dataset, EngineOptions options = {});
  /// Dual-mode engine: one engine serving both workload shapes.
  QueryEngine(Dataset dataset, Dataset2D dataset2d,
              EngineOptions options = {});
  ~QueryEngine();

  const CpnnExecutor& executor() const { return executor_; }
  /// The 2-D executor, or nullptr when the engine has no 2-D dataset.
  const CpnnExecutor2D* executor2d() const {
    return executor2d_.has_value() ? &*executor2d_ : nullptr;
  }
  size_t num_threads() const { return num_threads_; }

  /// Executes one request on the calling thread (no pool dispatch).
  QueryResult Execute(QueryRequest request);

  /// Executes a batch across the worker pool; results are in request
  /// order. When `stats` is non-null it receives the batch aggregate.
  std::vector<QueryResult> ExecuteBatch(std::vector<QueryRequest> requests,
                                        EngineStats* stats = nullptr);

  /// Non-blocking submission: queues the request and returns a future that
  /// resolves to the same result Execute would produce. Requests submitted
  /// while a previous coalesced batch is executing are batched together for
  /// the worker pool. Thread-safe; serializes with ExecuteBatch.
  std::future<QueryResult> Submit(QueryRequest request);

  /// Submission-queue telemetry (zeros until the first Submit).
  SubmitQueueStats SubmitStats() const;

  /// Total queries served from the per-worker scratches (telemetry).
  size_t ScratchQueriesServed() const;
  /// Approximate heap footprint of all scratch arenas.
  size_t ScratchBytes() const;

 private:
  QueryResult ExecuteOne(QueryRequest&& request, QueryScratch* scratch) const;
  void RunSubmitted(std::vector<PendingQuery>& batch);
  /// Spawns the worker pool on first use. Callers must hold batch_mu_ —
  /// the pool is only ever driven from the batch paths, so engines that
  /// never batch (e.g. the sharded engine's per-shard executors) never
  /// park idle worker threads.
  ThreadPool& BatchPool();
  SubmitQueue* EnsureSubmitQueue();

  CpnnExecutor executor_;
  /// Engaged when the engine owns a 2-D dataset (kPoint2D requests).
  std::optional<CpnnExecutor2D> executor2d_;
  size_t num_threads_;
  std::unique_ptr<ThreadPool> pool_;  ///< lazy; guarded by batch_mu_
  std::vector<std::unique_ptr<QueryScratch>> worker_scratches_;
  QueryScratch serial_scratch_;  ///< used by Execute()
  /// Mutable so the const telemetry accessors can exclude in-flight
  /// queries mutating the scratches.
  mutable std::mutex serial_mu_;
  /// One batch at a time owns the pool + worker scratches.
  mutable std::mutex batch_mu_;
  /// Lazily started on first Submit; declared last so it drains (and stops
  /// using the pool/scratches) before anything above is destroyed.
  std::once_flag submit_once_;
  /// Published (release) once submit_queue_ is constructed so SubmitStats
  /// can read it lock-free from any thread.
  std::atomic<SubmitQueue*> submit_queue_ptr_{nullptr};
  std::unique_ptr<SubmitQueue> submit_queue_;
};

}  // namespace pverify

#endif  // PVERIFY_ENGINE_QUERY_ENGINE_H_
