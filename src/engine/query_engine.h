// The batched multi-threaded query engine.
//
// A QueryEngine owns a CpnnExecutor (dataset + R-tree) and/or a
// CpnnExecutor2D (2-D dataset + 2-D R-tree), a fixed-size worker pool
// (spawned on first batched use) and one QueryScratch per worker. It is the
// single-process implementation of the pverify::Engine interface (see
// engine/engine.h): one request/result surface over every query family the
// library evaluates — point C-PNN (1-D and native 2-D), min/max,
// constrained k-NN, and pre-built candidate sets — with batches fanned
// across the workers under dynamic load balancing. Results are returned in
// request order and are bit-identical to running the same requests
// sequentially through the executors: workers share nothing but the
// read-only executors, and each query's arithmetic is unchanged.
//
// Besides ExecuteBatch, interactive callers can Submit single requests and
// get a future back: an internal submission queue coalesces everything
// in flight into batches for the worker pool (see engine/submit_queue.h).
#ifndef PVERIFY_ENGINE_QUERY_ENGINE_H_
#define PVERIFY_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/query.h"
#include "core/query2d.h"
#include "engine/engine.h"
#include "engine/scratch.h"
#include "engine/worker_pool.h"

namespace pverify {

class SubmitQueue;

struct EngineOptions {
  /// Worker threads; 0 means hardware concurrency.
  size_t num_threads = 0;
  /// Radial-cdf resolution of the 2-D executor (Point2DQuery requests).
  int radial_pieces = 64;
  /// Worker-pool implementation the batch paths schedule on. The
  /// work-stealing pool is the default (it additionally supports nested
  /// ParallelFor); kGlobalQueue selects the simple shared-queue pool.
  /// Answers are bit-identical either way — only scheduling differs.
  PoolKind pool = PoolKind::kWorkStealing;
};

/// Serves any number of queries over one dataset, sequentially or batched.
/// See engine/engine.h for the interface contracts.
class QueryEngine : public Engine {
 public:
  explicit QueryEngine(Dataset dataset, EngineOptions options = {});
  /// 2-D-only engine: serves Point2DQuery (and CandidatesQuery) requests.
  explicit QueryEngine(Dataset2D dataset, EngineOptions options = {});
  /// Dual-mode engine: one engine serving both workload shapes.
  QueryEngine(Dataset dataset, Dataset2D dataset2d,
              EngineOptions options = {});
  ~QueryEngine() override;

  const CpnnExecutor& executor() const { return executor_; }
  /// The 2-D executor, or nullptr when the engine has no 2-D dataset.
  const CpnnExecutor2D* executor2d() const {
    return executor2d_.has_value() ? &*executor2d_ : nullptr;
  }
  size_t num_threads() const override { return num_threads_; }

  QueryResult Execute(QueryRequest request) override;
  std::vector<QueryResult> ExecuteBatch(std::vector<QueryRequest> requests,
                                        EngineStats* stats = nullptr) override;
  std::future<QueryResult> Submit(QueryRequest request) override;
  SubmitQueueStats SubmitStats() const override;
  size_t ScratchQueriesServed() const override;
  size_t ScratchBytes() const override;

 private:
  QueryResult ExecuteOne(QueryRequest&& request, QueryScratch* scratch) const;
  /// Per-kind execution, one overload per variant alternative.
  QueryResult Run(PointQuery&& q, QueryScratch* scratch) const;
  QueryResult Run(MinQuery&& q, QueryScratch* scratch) const;
  QueryResult Run(MaxQuery&& q, QueryScratch* scratch) const;
  QueryResult Run(KnnQuery&& q, QueryScratch* scratch) const;
  QueryResult Run(CandidatesQuery&& q, QueryScratch* scratch) const;
  QueryResult Run(Point2DQuery&& q, QueryScratch* scratch) const;
  QueryResult Run(Knn2DQuery&& q, QueryScratch* scratch) const;

  void RunSubmitted(std::vector<PendingQuery>& batch);
  /// Spawns the worker pool on first use. Callers must hold batch_mu_ —
  /// the pool is only ever driven from the batch paths, so engines that
  /// never batch (e.g. the sharded engine's per-shard executors) never
  /// park idle worker threads.
  WorkerPool& BatchPool();
  SubmitQueue* EnsureSubmitQueue();

  CpnnExecutor executor_;
  /// Engaged when the engine owns a 2-D dataset (Point2DQuery requests).
  std::optional<CpnnExecutor2D> executor2d_;
  size_t num_threads_;
  PoolKind pool_kind_;
  std::unique_ptr<WorkerPool> pool_;  ///< lazy; guarded by batch_mu_
  std::vector<std::unique_ptr<QueryScratch>> worker_scratches_;
  QueryScratch serial_scratch_;  ///< used by Execute()
  /// Mutable so the const telemetry accessors can exclude in-flight
  /// queries mutating the scratches.
  mutable std::mutex serial_mu_;
  /// One batch at a time owns the pool + worker scratches.
  mutable std::mutex batch_mu_;
  /// Lazily started on first Submit; declared last so it drains (and stops
  /// using the pool/scratches) before anything above is destroyed.
  std::once_flag submit_once_;
  /// Published (release) once submit_queue_ is constructed so SubmitStats
  /// can read it lock-free from any thread.
  std::atomic<SubmitQueue*> submit_queue_ptr_{nullptr};
  std::unique_ptr<SubmitQueue> submit_queue_;
};

}  // namespace pverify

#endif  // PVERIFY_ENGINE_QUERY_ENGINE_H_
