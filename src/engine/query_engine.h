// The batched multi-threaded query engine.
//
// A QueryEngine owns a CpnnExecutor (dataset + R-tree), a fixed-size worker
// pool and one QueryScratch per worker. It exposes a unified request/result
// API over every query family the library evaluates — point C-PNN, min/max,
// constrained k-NN, and pre-built candidate sets (the 2-D pipeline's entry
// point) — and fans request batches across the workers with dynamic load
// balancing. Results are returned in request order and are bit-identical to
// running the same requests sequentially through CpnnExecutor: workers
// share nothing but the read-only executor, and each query's arithmetic is
// unchanged.
#ifndef PVERIFY_ENGINE_QUERY_ENGINE_H_
#define PVERIFY_ENGINE_QUERY_ENGINE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/query.h"
#include "engine/scratch.h"
#include "engine/thread_pool.h"

namespace pverify {

/// Which query family a request runs.
enum class QueryKind {
  kPoint,       ///< C-PNN at a query point
  kMin,         ///< minimum query (PNN with q = −∞)
  kMax,         ///< maximum query (PNN with q = +∞)
  kKnn,         ///< constrained probabilistic k-NN
  kCandidates,  ///< C-PNN over a pre-built candidate set (2-D pipeline)
};

std::string_view ToString(QueryKind kind);

/// One query to execute. Build with the factory helpers.
struct QueryRequest {
  QueryKind kind = QueryKind::kPoint;
  double q = 0.0;  ///< query point (kPoint, kKnn)
  int k = 2;       ///< neighbor count (kKnn)
  QueryOptions options;
  /// Payload for kCandidates; consumed when the request executes.
  CandidateSet candidates;

  static QueryRequest Point(double q, QueryOptions options = {});
  static QueryRequest Min(QueryOptions options = {});
  static QueryRequest Max(QueryOptions options = {});
  static QueryRequest Knn(double q, int k, QueryOptions options = {});
  static QueryRequest Candidates(CandidateSet candidates,
                                 QueryOptions options = {});
};

/// Result of one request, in the same shape regardless of kind.
struct QueryResult {
  /// IDs of objects satisfying the query, ascending.
  std::vector<ObjectId> ids;
  QueryStats stats;
  /// Per-candidate bounds (kPoint/kMin/kMax/kCandidates when
  /// options.report_probabilities is set).
  std::vector<AnswerEntry> candidate_probabilities;
  /// Full k-NN answer; engaged only for kKnn requests.
  std::optional<CknnAnswer> knn;
};

struct EngineOptions {
  /// Worker threads; 0 means hardware concurrency.
  size_t num_threads = 0;
};

/// Aggregate outcome of one ExecuteBatch call.
struct EngineStats {
  size_t queries = 0;
  size_t threads = 0;
  double wall_ms = 0.0;  ///< end-to-end batch wall time
  /// Per-phase totals accumulated over every query (QueryStats semantics).
  QueryStats totals;

  /// Verifier stage time/run totals aggregated by stage name, in chain
  /// order of first appearance (reproduces the paper's Fig. 12 fractions
  /// at engine level).
  struct StageTotal {
    std::string name;
    double ms = 0.0;
    size_t runs = 0;
  };
  std::vector<StageTotal> verifier_stages;

  double QueriesPerSec() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(queries) / wall_ms
                         : 0.0;
  }
  double AvgQueryMs() const {
    return queries > 0 ? totals.total_ms / static_cast<double>(queries) : 0.0;
  }
  /// Fraction of summed per-query time spent in a phase (filter / init /
  /// verify / refine).
  double PhaseFraction(double QueryStats::*phase) const {
    return totals.total_ms > 0.0 ? totals.*phase / totals.total_ms : 0.0;
  }
};

/// Serves any number of queries over one dataset, sequentially or batched.
/// ExecuteBatch is safe to call from one thread at a time; Execute may be
/// called concurrently with itself (it serializes on an internal scratch).
class QueryEngine {
 public:
  explicit QueryEngine(Dataset dataset, EngineOptions options = {});

  const CpnnExecutor& executor() const { return executor_; }
  size_t num_threads() const { return pool_.size(); }

  /// Executes one request on the calling thread (no pool dispatch).
  QueryResult Execute(QueryRequest request);

  /// Executes a batch across the worker pool; results are in request
  /// order. When `stats` is non-null it receives the batch aggregate.
  std::vector<QueryResult> ExecuteBatch(std::vector<QueryRequest> requests,
                                        EngineStats* stats = nullptr);

  /// Total queries served from the per-worker scratches (telemetry).
  size_t ScratchQueriesServed() const;
  /// Approximate heap footprint of all scratch arenas.
  size_t ScratchBytes() const;

 private:
  QueryResult ExecuteOne(QueryRequest&& request, QueryScratch* scratch) const;

  CpnnExecutor executor_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<QueryScratch>> worker_scratches_;
  QueryScratch serial_scratch_;  ///< used by Execute()
  /// Mutable so the const telemetry accessors can exclude in-flight
  /// queries mutating the scratches.
  mutable std::mutex serial_mu_;
  /// One batch at a time owns the pool + worker scratches.
  mutable std::mutex batch_mu_;
};

}  // namespace pverify

#endif  // PVERIFY_ENGINE_QUERY_ENGINE_H_
