#include "engine/submit_queue.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace pverify {

SubmitQueue::SubmitQueue(BatchRunner runner) : runner_(std::move(runner)) {
  PV_CHECK_MSG(runner_ != nullptr, "SubmitQueue requires a batch runner");
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

SubmitQueue::~SubmitQueue() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  dispatcher_.join();
}

std::future<QueryResult> SubmitQueue::Submit(QueryRequest request) {
  std::future<QueryResult> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PV_CHECK_MSG(!stopping_, "Submit after shutdown");
    pending_.push_back(PendingQuery{std::move(request), {}});
    future = pending_.back().promise.get_future();
    ++stats_.requests;
  }
  work_ready_.notify_one();
  return future;
}

SubmitQueueStats SubmitQueue::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SubmitQueue::DispatcherLoop() {
  for (;;) {
    std::vector<PendingQuery> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping_ and fully drained
      batch.swap(pending_);
      ++stats_.batches;
      stats_.max_coalesced = std::max(stats_.max_coalesced, batch.size());
    }
    try {
      runner_(batch);
    } catch (...) {
      // The runner is expected to fulfill promises itself; if it threw
      // midway, fail whatever is left so no future sees broken_promise.
      for (PendingQuery& item : batch) {
        try {
          item.promise.set_exception(std::current_exception());
        } catch (const std::future_error&) {
          // Already fulfilled before the runner threw.
        }
      }
    }
  }
}

}  // namespace pverify
