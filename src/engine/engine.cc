#include "engine/engine.h"

namespace pverify {

// Out-of-line so the interface has a home TU for its vtable.
Engine::~Engine() = default;

}  // namespace pverify
