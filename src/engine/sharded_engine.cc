#include "engine/sharded_engine.h"

#include <algorithm>
#include <limits>
#include <type_traits>
#include <utility>
#include <variant>

#include "common/check.h"
#include "common/timer.h"
#include "engine/submit_queue.h"
#include "spatial/filter.h"
#include "uncertain/distance_distribution.h"

namespace pverify {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The gather currency: each shard's surviving (id, distance distribution)
/// pairs, merged before the single verification pass.
using Survivors = std::vector<std::pair<ObjectId, DistanceDistribution>>;

}  // namespace

// ------------------------------------------------------------------------
// Scatter/gather policies. Each supplies the kind-specific pieces of the
// one ScatterGather driver below:
//
//   using Local = ...;                 per-shard phase-1 result
//   static bool HasData(shard)        does the shard participate at all
//   double Phase0Cap(shards)          upper bound on the reachable cut
//   double MinDist(shard)             bound checked against cap and cut
//   Local LocalFilter(shard)          phase 1 (runs concurrently; const)
//   double GlobalCut(locals)          exact global cut from the locals
//   bool Survives(shard, cut)         phase-2 shard recheck
//   void CollectSurvivors(shard, local, cut, out)
//   QueryResult Finish(merged, scratch, filter_total, build_total, total)
// ------------------------------------------------------------------------

/// Point C-PNN scatter, generic over dimensionality. Phase 0: U := min over
/// shards of MAXDIST(q, bounds) upper-bounds the global f_min (each shard's
/// local f_min is at most its bounds MAXDIST), so a shard whose bounds
/// MINDIST exceeds U can neither lower f_min nor hold a candidate. The
/// global f_min is the min of the local ones (each local f_min is an exact
/// min over that shard's entries), so the phase-2 per-object predicate
/// reproduces the unsharded filter's cut bit for bit.
template <int Dim>
struct ShardedQueryEngine::PointScatterPolicy {
  static_assert(Dim == 1 || Dim == 2, "point scatter is 1-D or 2-D");
  using Point = std::conditional_t<Dim == 1, double, Point2>;
  using Local = FilterResult;

  const ShardedQueryEngine& engine;
  Point q;
  const QueryOptions& options;

  static bool HasData(const Shard& shard) {
    if constexpr (Dim == 1) {
      return !shard.bounds.empty();
    } else {
      return !shard.bounds2d.empty();
    }
  }

  double MinDist(const Shard& shard) const {
    if constexpr (Dim == 1) {
      return MbrMinDistToBounds(q, shard.bounds);
    } else {
      return MbrMinDistToBounds2D(q, shard.bounds2d);
    }
  }

  double MaxDist(const Shard& shard) const {
    if constexpr (Dim == 1) {
      return MbrMaxDistToBounds(q, shard.bounds);
    } else {
      return MbrMaxDistToBounds2D(q, shard.bounds2d);
    }
  }

  double Phase0Cap(const std::vector<Shard>& shards) const {
    double cap = kInf;
    for (const Shard& shard : shards) {
      if (!HasData(shard)) continue;
      cap = std::min(cap, MaxDist(shard));
    }
    return cap;
  }

  Local LocalFilter(const Shard& shard) const {
    if constexpr (Dim == 1) {
      return shard.engine->executor().Filter(q);
    } else {
      return shard.engine->executor2d()->Filter(q);
    }
  }

  double GlobalCut(const std::vector<Local>& locals) const {
    double fmin = kInf;
    for (const Local& fr : locals) fmin = std::min(fmin, fr.fmin);
    return fmin;
  }

  bool Survives(const Shard& shard, double cut) const {
    return MinDist(shard) <= cut + kFilterBoundarySlack;
  }

  void CollectSurvivors(const Shard& shard, const Local& local, double cut,
                        Survivors* out) const {
    if constexpr (Dim == 1) {
      const Dataset& objects = shard.engine->executor().dataset();
      for (uint32_t idx : local.candidates) {
        const UncertainObject& obj = objects[idx];
        if (MakeInterval(obj.lo(), obj.hi()).MinDist({q}) <=
            cut + kFilterBoundarySlack) {
          out->emplace_back(obj.id(),
                            DistanceDistribution::From1D(obj.pdf(), q));
        }
      }
    } else {
      const Dataset2D& objects = shard.engine->executor2d()->dataset();
      for (uint32_t idx : local.candidates) {
        const UncertainObject2D& obj = objects[idx];
        if (obj.MinDist(q) <= cut + kFilterBoundarySlack) {
          out->emplace_back(
              obj.id(),
              MakeDistanceDistribution2D(obj, q, engine.radial_pieces_));
        }
      }
    }
  }

  QueryResult Finish(Survivors&& merged, QueryScratch* scratch,
                     double filter_total, double build_total,
                     const Timer& total) const {
    // FromDistances re-sorts by (near point, id) — a total order — so the
    // merge order is irrelevant and the set is identical to the unsharded
    // CandidateSet::Build1D / Build2D result.
    Timer gather_timer;
    CandidateSet candidates = CandidateSet::FromDistances(std::move(merged));
    const double gather_ms = gather_timer.ElapsedMs();

    QueryAnswer answer =
        ExecuteOnCandidates(std::move(candidates), options, scratch);
    answer.stats.filter_ms = filter_total;
    answer.stats.init_ms += build_total + gather_ms;
    answer.stats.dataset_size =
        Dim == 1 ? engine.total_objects_ : engine.total_objects2d_;
    answer.stats.total_ms = total.ElapsedMs();
    return ToQueryResult(std::move(answer));
  }
};

/// Constrained k-NN scatter, generic over dimensionality. Phase 0: walk
/// shards by ascending bounds MAXDIST until they cover k objects; that
/// MAXDIST upper-bounds the global k-th far point, so shards whose bounds
/// MINDIST exceeds it hold none of the k smallest far points and no
/// candidates. Phase 1 collects each shard's k smallest far points; their
/// merge contains the k smallest global ones (each lives in its shard's
/// local top-k), so the k-th order statistic of the merge equals the
/// unsharded FilterKByScan / FilterKByScan2D value exactly. Phase 2 scans
/// survivors with the same per-object arithmetic those filters use.
template <int Dim>
struct ShardedQueryEngine::KnnScatterPolicy {
  static_assert(Dim == 1 || Dim == 2, "knn scatter is 1-D or 2-D");
  using Point = std::conditional_t<Dim == 1, double, Point2>;
  using Local = std::vector<double>;

  const ShardedQueryEngine& engine;
  Point q;
  int k;
  const QueryOptions& options;
  size_t want;
  /// All shards' far points, merged by GlobalCut; empty means no objects
  /// anywhere, so no shard survives.
  std::vector<double> fars;

  KnnScatterPolicy(const ShardedQueryEngine& engine, Point q, int k,
                   const QueryOptions& options)
      : engine(engine),
        q(q),
        k(k),
        options(options),
        want(static_cast<size_t>(k)) {}

  static bool HasData(const Shard& shard) {
    if constexpr (Dim == 1) {
      return !shard.bounds.empty();
    } else {
      return !shard.bounds2d.empty();
    }
  }

  static size_t ShardSize(const Shard& shard) {
    if constexpr (Dim == 1) {
      return shard.engine->executor().dataset().size();
    } else {
      return shard.engine->executor2d()->dataset().size();
    }
  }

  double MinDist(const Shard& shard) const {
    if constexpr (Dim == 1) {
      // Interval arithmetic, mirroring UncertainObject::MinDist — the
      // per-object quantity phase 2 compares against the cut.
      return IntervalMinDistToBounds(q, shard.bounds);
    } else {
      // The Mbr<2> metric lower-bounds every contained region's exact
      // MinDist (box contains region, shard MBR contains box).
      return MbrMinDistToBounds2D(q, shard.bounds2d);
    }
  }

  double MaxDist(const Shard& shard) const {
    if constexpr (Dim == 1) {
      return IntervalMaxDistToBounds(q, shard.bounds);
    } else {
      return MbrMaxDistToBounds2D(q, shard.bounds2d);
    }
  }

  double Phase0Cap(const std::vector<Shard>& shards) const {
    std::vector<std::pair<double, size_t>> caps;
    caps.reserve(shards.size());
    for (size_t i = 0; i < shards.size(); ++i) {
      if (!HasData(shards[i])) continue;
      caps.emplace_back(MaxDist(shards[i]), i);
    }
    std::sort(caps.begin(), caps.end());
    size_t covered = 0;
    for (const std::pair<double, size_t>& cap : caps) {
      covered += ShardSize(shards[cap.second]);
      if (covered >= want) return cap.first;
    }
    return kInf;
  }

  Local LocalFilter(const Shard& shard) const {
    if constexpr (Dim == 1) {
      return SmallestFarPoints(shard.engine->executor().dataset(), q, want);
    } else {
      return SmallestFarPoints2D(shard.engine->executor2d()->dataset(), q,
                                 want);
    }
  }

  double GlobalCut(const std::vector<Local>& locals) {
    for (const Local& part : locals) {
      fars.insert(fars.end(), part.begin(), part.end());
    }
    if (fars.empty()) return 0.0;
    const size_t total =
        Dim == 1 ? engine.total_objects_ : engine.total_objects2d_;
    const size_t kth = std::min(total, want) - 1;
    std::nth_element(fars.begin(), fars.begin() + kth, fars.end());
    return fars[kth];
  }

  bool Survives(const Shard& shard, double cut) const {
    return !fars.empty() && MinDist(shard) <= cut + kFilterBoundarySlack;
  }

  void CollectSurvivors(const Shard& shard, const Local&, double cut,
                        Survivors* out) const {
    if constexpr (Dim == 1) {
      for (const UncertainObject& obj : shard.engine->executor().dataset()) {
        if (obj.MinDist(q) <= cut + kFilterBoundarySlack) {
          out->emplace_back(obj.id(),
                            DistanceDistribution::From1D(obj.pdf(), q));
        }
      }
    } else {
      for (const UncertainObject2D& obj :
           shard.engine->executor2d()->dataset()) {
        if (obj.MinDist(q) <= cut + kFilterBoundarySlack) {
          out->emplace_back(
              obj.id(),
              MakeDistanceDistribution2D(obj, q, engine.radial_pieces_));
        }
      }
    }
  }

  QueryResult Finish(Survivors&& merged, QueryScratch*, double filter_total,
                     double build_total, const Timer& total) const {
    // Rebuild the (order-normalized) candidate set with the k-aware
    // pruning rule and evaluate the constrained k-NN once.
    CandidateSet candidates =
        CandidateSet::FromDistances(std::move(merged), k);
    CknnAnswer answer =
        EvaluateCknn(candidates, k, options.params, options.integration);

    QueryResult result;
    result.stats.total_ms = total.ElapsedMs();
    result.stats.filter_ms = filter_total;
    result.stats.init_ms = build_total;
    result.stats.dataset_size =
        Dim == 1 ? engine.total_objects_ : engine.total_objects2d_;
    result.stats.candidates = answer.bounds.size();
    result.ids = answer.ids;
    result.knn = std::move(answer);
    return result;
  }
};

// ------------------------------------------------------------------------
// Engine implementation.
// ------------------------------------------------------------------------

ShardedQueryEngine::ShardedQueryEngine(Dataset dataset,
                                       ShardedEngineOptions options)
    : ShardedQueryEngine(std::move(dataset), Dataset2D{}, std::move(options),
                         /*serve_2d=*/false) {}

ShardedQueryEngine::ShardedQueryEngine(Dataset2D dataset,
                                       ShardedEngineOptions options)
    : ShardedQueryEngine(Dataset{}, std::move(dataset), std::move(options),
                         /*serve_2d=*/true) {}

ShardedQueryEngine::ShardedQueryEngine(Dataset dataset, Dataset2D dataset2d,
                                       ShardedEngineOptions options)
    : ShardedQueryEngine(std::move(dataset), std::move(dataset2d),
                         std::move(options), /*serve_2d=*/true) {}

ShardedQueryEngine::ShardedQueryEngine(Dataset dataset, Dataset2D dataset2d,
                                       ShardedEngineOptions options,
                                       bool serve_2d)
    : policy_(options.policy != nullptr
                  ? std::move(options.policy)
                  : std::make_shared<const HashShardingPolicy>()),
      pool_(MakeWorkerPool(options.pool, options.num_threads)) {
  total_objects_ = dataset.size();
  total_objects2d_ = dataset2d.size();
  has_2d_ = serve_2d;
  radial_pieces_ = options.radial_pieces;
  const DomainBounds global = ComputeDomainBounds(dataset);
  if (!global.empty()) {
    domain_lo_ = global.lo;
    domain_hi_ = global.hi;
  }
  const size_t num_shards = std::max<size_t>(1, options.num_shards);
  std::vector<Dataset> parts =
      PartitionDataset(dataset, num_shards, *policy_);
  std::vector<Dataset2D> parts2d =
      PartitionDataset2D(dataset2d, num_shards, *policy_);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    Shard shard;
    shard.bounds = ComputeDomainBounds(parts[s]);
    shard.bounds2d = ComputeShardBounds2D(parts2d[s]);
    // Shard engines run single-threaded (and never spawn their pool: the
    // scatter path drives their executors directly) — cross-shard and
    // cross-request parallelism belongs to this engine's own pool.
    EngineOptions eopt;
    eopt.num_threads = 1;
    eopt.radial_pieces = options.radial_pieces;
    shard.engine = has_2d_
                       ? std::make_unique<QueryEngine>(
                             std::move(parts[s]), std::move(parts2d[s]), eopt)
                       : std::make_unique<QueryEngine>(std::move(parts[s]),
                                                       eopt);
    shards_.push_back(std::move(shard));
  }
  worker_scratches_.reserve(pool_->size());
  for (size_t i = 0; i < pool_->size(); ++i) {
    worker_scratches_.push_back(std::make_unique<QueryScratch>());
  }
}

ShardedQueryEngine::~ShardedQueryEngine() = default;

QueryResult ShardedQueryEngine::Execute(QueryRequest request) {
  std::lock_guard<std::mutex> lock(serial_mu_);
  return ExecuteOne(std::move(request), &serial_scratch_,
                    /*parallel_scatter=*/true, nullptr);
}

std::vector<QueryResult> ShardedQueryEngine::ExecuteBatch(
    std::vector<QueryRequest> requests, EngineStats* stats) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  return ExecuteBatchLocked(std::move(requests), stats, nullptr);
}

std::vector<QueryResult> ShardedQueryEngine::ExecuteBatch(
    std::vector<QueryRequest> requests, ShardedBatchStats* stats) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  return ExecuteBatchLocked(std::move(requests), nullptr, stats);
}

SubmitQueue* ShardedQueryEngine::EnsureSubmitQueue() {
  SubmitQueue* queue = submit_queue_ptr_.load(std::memory_order_acquire);
  if (queue != nullptr) return queue;
  std::call_once(submit_once_, [this] {
    submit_queue_ = std::make_unique<SubmitQueue>(
        [this](std::vector<PendingQuery>& batch) { RunSubmitted(batch); });
    submit_queue_ptr_.store(submit_queue_.get(), std::memory_order_release);
  });
  return submit_queue_ptr_.load(std::memory_order_acquire);
}

std::future<QueryResult> ShardedQueryEngine::Submit(QueryRequest request) {
  return EnsureSubmitQueue()->Submit(std::move(request));
}

SubmitQueueStats ShardedQueryEngine::SubmitStats() const {
  SubmitQueue* queue = submit_queue_ptr_.load(std::memory_order_acquire);
  return queue != nullptr ? queue->GetStats() : SubmitQueueStats{};
}

size_t ShardedQueryEngine::ShardVisits() const {
  return shard_visits_.load(std::memory_order_relaxed);
}

size_t ShardedQueryEngine::ShardsPruned() const {
  return shards_pruned_.load(std::memory_order_relaxed);
}

size_t ShardedQueryEngine::ScratchQueriesServed() const {
  std::scoped_lock lock(serial_mu_, batch_mu_);
  size_t total = serial_scratch_.queries_served;
  for (const auto& s : worker_scratches_) total += s->queries_served;
  return total;
}

size_t ShardedQueryEngine::ScratchBytes() const {
  std::scoped_lock lock(serial_mu_, batch_mu_);
  size_t total = serial_scratch_.ApproxBytes();
  for (const auto& s : worker_scratches_) total += s->ApproxBytes();
  return total;
}

void ShardedQueryEngine::RunSubmitted(std::vector<PendingQuery>& batch) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  // Submitted (dispatcher-coalesced) batches land on the same pool as
  // explicit batches; on the work-stealing pool each request's shard loop
  // nests, so even a coalesced batch of ONE expensive query fans out.
  const bool nested = pool_->SupportsNestedParallelFor();
  pool_->ParallelFor(batch.size(), [&](size_t worker, size_t index) {
    PendingQuery& item = batch[index];
    try {
      item.promise.set_value(ExecuteOne(std::move(item.request),
                                        worker_scratches_[worker].get(),
                                        /*parallel_scatter=*/nested, nullptr));
    } catch (...) {
      item.promise.set_exception(std::current_exception());
    }
  });
}

std::vector<QueryResult> ShardedQueryEngine::ExecuteBatchLocked(
    std::vector<QueryRequest>&& requests, EngineStats* gathered,
    ShardedBatchStats* sharded) {
  std::vector<QueryResult> results(requests.size());
  std::vector<ScatterRecord> records;
  if (sharded != nullptr) records.resize(requests.size());
  Timer wall;
  // Requests fan out over the pool; on the work-stealing pool each one
  // additionally scatters its shards through a nested ParallelFor (idle
  // workers steal the shard tasks), while the global-queue pool cannot
  // nest and scans shards sequentially inside the batch worker.
  const bool nested = pool_->SupportsNestedParallelFor();
  pool_->ParallelFor(requests.size(), [&](size_t worker, size_t index) {
    ScatterRecord* record = nullptr;
    if (sharded != nullptr) {
      records[index].shards.resize(shards_.size());
      record = &records[index];
    }
    results[index] =
        ExecuteOne(std::move(requests[index]), worker_scratches_[worker].get(),
                   /*parallel_scatter=*/nested, record);
  });
  const double wall_ms = wall.ElapsedMs();

  if (gathered == nullptr && sharded == nullptr) return results;
  EngineStats agg;
  agg.threads = pool_->size();
  agg.wall_ms = wall_ms;
  for (const QueryResult& r : results) AccumulateBatchResult(r.stats, &agg);
  if (gathered != nullptr) *gathered = std::move(agg);
  if (sharded != nullptr) {
    *sharded = ShardedBatchStats{};
    sharded->gathered = std::move(agg);
    sharded->per_shard.assign(shards_.size(), EngineStats{});
    for (const ScatterRecord& record : records) {
      sharded->shard_visits += record.visits;
      sharded->shards_pruned += record.pruned;
      for (size_t s = 0; s < shards_.size(); ++s) {
        const ShardContrib& contrib = record.shards[s];
        if (!contrib.visited) continue;
        EngineStats& ps = sharded->per_shard[s];
        ++ps.queries;
        ps.threads = 1;
        ps.totals.filter_ms += contrib.filter_ms;
        ps.totals.init_ms += contrib.init_ms;
        ps.totals.total_ms += contrib.filter_ms + contrib.init_ms;
        ps.totals.candidates += contrib.candidates;
        ps.totals.dataset_size +=
            shards_[s].engine->executor().dataset().size();
      }
    }
    sharded->scatter_totals = MergeEngineStats(sharded->per_shard);
  }
  return results;
}

QueryResult ShardedQueryEngine::ExecuteOne(QueryRequest&& request,
                                           QueryScratch* scratch,
                                           bool parallel_scatter,
                                           ScatterRecord* record) {
  return std::visit(
      [&](auto&& payload) {
        return Run(std::move(payload), scratch, parallel_scatter, record);
      },
      std::move(request.query));
}

QueryResult ShardedQueryEngine::Run(PointQuery&& q, QueryScratch* scratch,
                                    bool parallel_scatter,
                                    ScatterRecord* record) {
  PointScatterPolicy<1> policy{*this, q.q, q.options};
  return ScatterGather(policy, scratch, parallel_scatter, record);
}

QueryResult ShardedQueryEngine::Run(MinQuery&& q, QueryScratch* scratch,
                                    bool parallel_scatter,
                                    ScatterRecord* record) {
  // The global domain makes this bit-identical to the unsharded executor's
  // virtual query point (per-shard domains would not be).
  PointScatterPolicy<1> policy{*this, domain_lo_ - 1.0, q.options};
  return ScatterGather(policy, scratch, parallel_scatter, record);
}

QueryResult ShardedQueryEngine::Run(MaxQuery&& q, QueryScratch* scratch,
                                    bool parallel_scatter,
                                    ScatterRecord* record) {
  PointScatterPolicy<1> policy{*this, domain_hi_ + 1.0, q.options};
  return ScatterGather(policy, scratch, parallel_scatter, record);
}

QueryResult ShardedQueryEngine::Run(KnnQuery&& q, QueryScratch* scratch,
                                    bool parallel_scatter,
                                    ScatterRecord* record) {
  PV_CHECK_MSG(q.k >= 1, "k must be positive");
  KnnScatterPolicy<1> policy(*this, q.q, q.k, q.options);
  return ScatterGather(policy, scratch, parallel_scatter, record);
}

QueryResult ShardedQueryEngine::Run(CandidatesQuery&& q,
                                    QueryScratch* scratch, bool,
                                    ScatterRecord*) {
  // The payload already is the gathered candidate set — no scatter.
  // TakeCandidates throws on a consumed (re-submitted) request.
  return ToQueryResult(
      ExecuteOnCandidates(q.TakeCandidates(), q.options, scratch));
}

QueryResult ShardedQueryEngine::Run(Point2DQuery&& q, QueryScratch* scratch,
                                    bool parallel_scatter,
                                    ScatterRecord* record) {
  PV_CHECK_MSG(has_2d_,
               "Point2DQuery on an engine without a 2-D dataset");
  PointScatterPolicy<2> policy{*this, q.q, q.options};
  return ScatterGather(policy, scratch, parallel_scatter, record);
}

QueryResult ShardedQueryEngine::Run(Knn2DQuery&& q, QueryScratch* scratch,
                                    bool parallel_scatter,
                                    ScatterRecord* record) {
  PV_CHECK_MSG(has_2d_, "Knn2DQuery on an engine without a 2-D dataset");
  PV_CHECK_MSG(q.k >= 1, "k must be positive");
  KnnScatterPolicy<2> policy(*this, q.q, q.k, q.options);
  return ScatterGather(policy, scratch, parallel_scatter, record);
}

void ShardedQueryEngine::ForEachIndex(bool parallel, size_t n,
                                      const std::function<void(size_t)>& fn) {
  if (parallel && n > 1 && pool_->size() > 1) {
    pool_->ParallelFor(n, [&fn](size_t, size_t index) { fn(index); });
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

template <typename Policy>
QueryResult ShardedQueryEngine::ScatterGather(Policy& policy,
                                              QueryScratch* scratch,
                                              bool parallel_scatter,
                                              ScatterRecord* record) {
  // Reentrancy invariant for nested scatter: a batch worker waiting on one
  // of the ForEachIndex loops below may STEAL another request's task and
  // execute it to completion on its own stack, reusing its per-worker
  // QueryScratch. That is safe only because `scratch` is untouched until
  // policy.Finish() — the phases that fan out (local filter, survivor
  // construction) never borrow scratch state, so at every possible steal
  // point the worker's scratch is quiescent. Keep it that way: no nested
  // ParallelFor may ever run while scratch buffers are borrowed.
  //
  // Telemetry companion of the same mechanism: the wall timer below keeps
  // running while the worker drains/steals, so the pool's per-thread
  // foreign-work clock is snapshotted around this request and its delta —
  // time this thread spent executing OTHER requests' stolen tasks —
  // subtracted from stats.total_ms. Without the correction, batch
  // aggregates of per-query totals over-report whenever multiple requests
  // are in flight on the work-stealing pool (the phase timings, measured
  // inside the loop bodies, were always accurate).
  const double foreign0 = pool_->ForeignWorkMsOnThisThread();
  Timer total;
  // Shard pruning, phase 0: shards whose bounds MINDIST exceeds the
  // policy's reachable-cut cap cannot contribute — skip them before any
  // filtering.
  const double cap = policy.Phase0Cap(shards_);
  std::vector<size_t> eligible;
  size_t pruned = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!Policy::HasData(shards_[i])) continue;
    if (policy.MinDist(shards_[i]) <= cap + kFilterBoundarySlack) {
      eligible.push_back(i);
    } else {
      ++pruned;
    }
  }

  // Scatter, phase 1: the eligible shards' local filters.
  std::vector<typename Policy::Local> locals(eligible.size());
  std::vector<double> filter_ms(eligible.size(), 0.0);
  ForEachIndex(parallel_scatter, eligible.size(), [&](size_t j) {
    Timer t;
    locals[j] = policy.LocalFilter(shards_[eligible[j]]);
    filter_ms[j] = t.ElapsedMs();
  });
  // The exact global cut recovered from the locals (f_min for point
  // queries, the k-th far point for k-NN).
  const double cut = policy.GlobalCut(locals);

  // Scatter, phase 2: shards surviving the now-exact cut build their
  // survivors' (id, distance distribution) pairs.
  std::vector<Survivors> parts(eligible.size());
  std::vector<double> build_ms(eligible.size(), 0.0);
  std::vector<char> contributed(eligible.size(), 0);
  ForEachIndex(parallel_scatter, eligible.size(), [&](size_t j) {
    const Shard& shard = shards_[eligible[j]];
    if (!policy.Survives(shard, cut)) {
      return;  // counted as pruned below
    }
    contributed[j] = 1;
    Timer t;
    policy.CollectSurvivors(shard, locals[j], cut, &parts[j]);
    build_ms[j] = t.ElapsedMs();
  });

  // Gather: merge the parts (order irrelevant — the candidate-set
  // construction order-normalizes) and let the policy evaluate once.
  size_t visits = 0;
  size_t total_pairs = 0;
  for (size_t j = 0; j < eligible.size(); ++j) {
    if (contributed[j]) {
      ++visits;
      total_pairs += parts[j].size();
    } else {
      ++pruned;
    }
  }
  Survivors merged;
  merged.reserve(total_pairs);
  for (Survivors& part : parts) {
    for (std::pair<ObjectId, DistanceDistribution>& item : part) {
      merged.push_back(std::move(item));
    }
  }
  double filter_total = 0.0;
  for (double ms : filter_ms) filter_total += ms;
  double build_total = 0.0;
  for (double ms : build_ms) build_total += ms;
  QueryResult result = policy.Finish(std::move(merged), scratch,
                                     filter_total, build_total, total);
  const double foreign = pool_->ForeignWorkMsOnThisThread() - foreign0;
  if (foreign > 0.0) {
    result.stats.total_ms = std::max(0.0, result.stats.total_ms - foreign);
  }

  shard_visits_.fetch_add(visits, std::memory_order_relaxed);
  shards_pruned_.fetch_add(pruned, std::memory_order_relaxed);
  if (record != nullptr) {
    record->visits += visits;
    record->pruned += pruned;
    for (size_t j = 0; j < eligible.size(); ++j) {
      ShardContrib& contrib = record->shards[eligible[j]];
      contrib.visited = true;
      contrib.filter_ms += filter_ms[j];
      contrib.init_ms += build_ms[j];
      contrib.candidates += parts[j].size();
    }
  }
  return result;
}

}  // namespace pverify
