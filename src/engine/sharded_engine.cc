#include "engine/sharded_engine.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "engine/submit_queue.h"
#include "spatial/filter.h"
#include "uncertain/distance_distribution.h"

namespace pverify {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

ShardedQueryEngine::ShardedQueryEngine(Dataset dataset,
                                       ShardedEngineOptions options)
    : ShardedQueryEngine(std::move(dataset), Dataset2D{}, std::move(options),
                         /*serve_2d=*/false) {}

ShardedQueryEngine::ShardedQueryEngine(Dataset2D dataset,
                                       ShardedEngineOptions options)
    : ShardedQueryEngine(Dataset{}, std::move(dataset), std::move(options),
                         /*serve_2d=*/true) {}

ShardedQueryEngine::ShardedQueryEngine(Dataset dataset, Dataset2D dataset2d,
                                       ShardedEngineOptions options)
    : ShardedQueryEngine(std::move(dataset), std::move(dataset2d),
                         std::move(options), /*serve_2d=*/true) {}

ShardedQueryEngine::ShardedQueryEngine(Dataset dataset, Dataset2D dataset2d,
                                       ShardedEngineOptions options,
                                       bool serve_2d)
    : policy_(options.policy != nullptr
                  ? std::move(options.policy)
                  : std::make_shared<const HashShardingPolicy>()),
      pool_(options.num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                     : options.num_threads) {
  total_objects_ = dataset.size();
  total_objects2d_ = dataset2d.size();
  has_2d_ = serve_2d;
  radial_pieces_ = options.radial_pieces;
  const DomainBounds global = ComputeDomainBounds(dataset);
  if (!global.empty()) {
    domain_lo_ = global.lo;
    domain_hi_ = global.hi;
  }
  const size_t num_shards = std::max<size_t>(1, options.num_shards);
  std::vector<Dataset> parts =
      PartitionDataset(dataset, num_shards, *policy_);
  std::vector<Dataset2D> parts2d =
      PartitionDataset2D(dataset2d, num_shards, *policy_);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    Shard shard;
    shard.bounds = ComputeDomainBounds(parts[s]);
    shard.bounds2d = ComputeShardBounds2D(parts2d[s]);
    // Shard engines run single-threaded (and never spawn their pool: the
    // scatter path drives their executors directly) — cross-shard and
    // cross-request parallelism belongs to this engine's own pool.
    EngineOptions eopt;
    eopt.num_threads = 1;
    eopt.radial_pieces = options.radial_pieces;
    shard.engine = has_2d_
                       ? std::make_unique<QueryEngine>(
                             std::move(parts[s]), std::move(parts2d[s]), eopt)
                       : std::make_unique<QueryEngine>(std::move(parts[s]),
                                                       eopt);
    shards_.push_back(std::move(shard));
  }
  worker_scratches_.reserve(pool_.size());
  for (size_t i = 0; i < pool_.size(); ++i) {
    worker_scratches_.push_back(std::make_unique<QueryScratch>());
  }
}

ShardedQueryEngine::~ShardedQueryEngine() = default;

QueryResult ShardedQueryEngine::Execute(QueryRequest request) {
  std::lock_guard<std::mutex> lock(serial_mu_);
  return ExecuteOne(std::move(request), &serial_scratch_,
                    /*parallel_scatter=*/true, nullptr);
}

std::vector<QueryResult> ShardedQueryEngine::ExecuteBatch(
    std::vector<QueryRequest> requests, EngineStats* stats) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  return ExecuteBatchLocked(std::move(requests), stats, nullptr);
}

std::vector<QueryResult> ShardedQueryEngine::ExecuteBatch(
    std::vector<QueryRequest> requests, ShardedBatchStats* stats) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  return ExecuteBatchLocked(std::move(requests), nullptr, stats);
}

SubmitQueue* ShardedQueryEngine::EnsureSubmitQueue() {
  SubmitQueue* queue = submit_queue_ptr_.load(std::memory_order_acquire);
  if (queue != nullptr) return queue;
  std::call_once(submit_once_, [this] {
    submit_queue_ = std::make_unique<SubmitQueue>(
        [this](std::vector<PendingQuery>& batch) { RunSubmitted(batch); });
    submit_queue_ptr_.store(submit_queue_.get(), std::memory_order_release);
  });
  return submit_queue_ptr_.load(std::memory_order_acquire);
}

std::future<QueryResult> ShardedQueryEngine::Submit(QueryRequest request) {
  return EnsureSubmitQueue()->Submit(std::move(request));
}

SubmitQueueStats ShardedQueryEngine::SubmitStats() const {
  SubmitQueue* queue = submit_queue_ptr_.load(std::memory_order_acquire);
  return queue != nullptr ? queue->GetStats() : SubmitQueueStats{};
}

size_t ShardedQueryEngine::ShardVisits() const {
  return shard_visits_.load(std::memory_order_relaxed);
}

size_t ShardedQueryEngine::ShardsPruned() const {
  return shards_pruned_.load(std::memory_order_relaxed);
}

size_t ShardedQueryEngine::ScratchQueriesServed() const {
  std::scoped_lock lock(serial_mu_, batch_mu_);
  size_t total = serial_scratch_.queries_served;
  for (const auto& s : worker_scratches_) total += s->queries_served;
  return total;
}

size_t ShardedQueryEngine::ScratchBytes() const {
  std::scoped_lock lock(serial_mu_, batch_mu_);
  size_t total = serial_scratch_.ApproxBytes();
  for (const auto& s : worker_scratches_) total += s->ApproxBytes();
  return total;
}

void ShardedQueryEngine::RunSubmitted(std::vector<PendingQuery>& batch) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  pool_.ParallelFor(batch.size(), [&](size_t worker, size_t index) {
    PendingQuery& item = batch[index];
    try {
      item.promise.set_value(ExecuteOne(std::move(item.request),
                                        worker_scratches_[worker].get(),
                                        /*parallel_scatter=*/false, nullptr));
    } catch (...) {
      item.promise.set_exception(std::current_exception());
    }
  });
}

std::vector<QueryResult> ShardedQueryEngine::ExecuteBatchLocked(
    std::vector<QueryRequest>&& requests, EngineStats* gathered,
    ShardedBatchStats* sharded) {
  std::vector<QueryResult> results(requests.size());
  std::vector<ScatterRecord> records;
  if (sharded != nullptr) records.resize(requests.size());
  Timer wall;
  // Requests fan out over the pool; each one scatters over its shards
  // sequentially (nesting ParallelFor inside a pool worker would deadlock).
  pool_.ParallelFor(requests.size(), [&](size_t worker, size_t index) {
    ScatterRecord* record = nullptr;
    if (sharded != nullptr) {
      records[index].shards.resize(shards_.size());
      record = &records[index];
    }
    results[index] =
        ExecuteOne(std::move(requests[index]), worker_scratches_[worker].get(),
                   /*parallel_scatter=*/false, record);
  });
  const double wall_ms = wall.ElapsedMs();

  if (gathered == nullptr && sharded == nullptr) return results;
  EngineStats agg;
  agg.threads = pool_.size();
  agg.wall_ms = wall_ms;
  for (const QueryResult& r : results) AccumulateBatchResult(r.stats, &agg);
  if (gathered != nullptr) *gathered = std::move(agg);
  if (sharded != nullptr) {
    *sharded = ShardedBatchStats{};
    sharded->gathered = std::move(agg);
    sharded->per_shard.assign(shards_.size(), EngineStats{});
    for (const ScatterRecord& record : records) {
      sharded->shard_visits += record.visits;
      sharded->shards_pruned += record.pruned;
      for (size_t s = 0; s < shards_.size(); ++s) {
        const ShardContrib& contrib = record.shards[s];
        if (!contrib.visited) continue;
        EngineStats& ps = sharded->per_shard[s];
        ++ps.queries;
        ps.threads = 1;
        ps.totals.filter_ms += contrib.filter_ms;
        ps.totals.init_ms += contrib.init_ms;
        ps.totals.total_ms += contrib.filter_ms + contrib.init_ms;
        ps.totals.candidates += contrib.candidates;
        ps.totals.dataset_size +=
            shards_[s].engine->executor().dataset().size();
      }
    }
    sharded->scatter_totals = MergeEngineStats(sharded->per_shard);
  }
  return results;
}

QueryResult ShardedQueryEngine::ExecuteOne(QueryRequest&& request,
                                           QueryScratch* scratch,
                                           bool parallel_scatter,
                                           ScatterRecord* record) {
  switch (request.kind) {
    case QueryKind::kPoint:
      return ExecutePoint(request.q, request.options, scratch,
                          parallel_scatter, record);
    case QueryKind::kMin:
      // The global domain makes this bit-identical to the unsharded
      // executor's virtual query point (per-shard domains would not be).
      return ExecutePoint(domain_lo_ - 1.0, request.options, scratch,
                          parallel_scatter, record);
    case QueryKind::kMax:
      return ExecutePoint(domain_hi_ + 1.0, request.options, scratch,
                          parallel_scatter, record);
    case QueryKind::kKnn:
      return ExecuteKnn(request.q, request.k, request.options,
                        parallel_scatter, record);
    case QueryKind::kCandidates:
      // A moved-from kCandidates request carries no payload; evaluating it
      // would silently answer over an empty set.
      PV_DCHECK(!request.payload_consumed);
      // The payload already is the gathered candidate set — no scatter.
      return ToQueryResult(ExecuteOnCandidates(std::move(request.candidates),
                                               request.options, scratch));
    case QueryKind::kPoint2D:
      PV_CHECK_MSG(has_2d_,
                   "kPoint2D request on an engine without a 2-D dataset");
      return ExecutePoint2D(request.q2, request.options, scratch,
                            parallel_scatter, record);
  }
  return QueryResult{};
}

void ShardedQueryEngine::ForEachIndex(bool parallel, size_t n,
                                      const std::function<void(size_t)>& fn) {
  if (parallel && n > 1 && pool_.size() > 1) {
    pool_.ParallelFor(n, [&fn](size_t, size_t index) { fn(index); });
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

QueryResult ShardedQueryEngine::ExecutePoint(double q,
                                             const QueryOptions& options,
                                             QueryScratch* scratch,
                                             bool parallel_scatter,
                                             ScatterRecord* record) {
  Timer total;
  // Shard pruning, phase 0: U := min over shards of MAXDIST(q, bounds)
  // upper-bounds the global f_min (each shard's local f_min is at most its
  // bounds MAXDIST), so a shard whose bounds MINDIST exceeds U can neither
  // lower f_min nor hold a candidate — skip it before any filtering.
  double fmin_cap = kInf;
  for (const Shard& shard : shards_) {
    if (shard.bounds.empty()) continue;
    fmin_cap = std::min(fmin_cap, MbrMaxDistToBounds(q, shard.bounds));
  }
  std::vector<size_t> eligible;
  size_t pruned = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].bounds.empty()) continue;
    if (MbrMinDistToBounds(q, shards_[i].bounds) <=
        fmin_cap + kFilterBoundarySlack) {
      eligible.push_back(i);
    } else {
      ++pruned;
    }
  }

  // Scatter, phase 1: local filtering. The global f_min is the min of the
  // local ones (each local f_min is an exact min over that shard's
  // entries, so the min over shards equals the unsharded R-tree's value).
  std::vector<FilterResult> filtered(eligible.size());
  std::vector<double> filter_ms(eligible.size(), 0.0);
  ForEachIndex(parallel_scatter, eligible.size(), [&](size_t j) {
    Timer t;
    filtered[j] = shards_[eligible[j]].engine->executor().Filter(q);
    filter_ms[j] = t.ElapsedMs();
  });
  double fmin = kInf;
  for (const FilterResult& fr : filtered) fmin = std::min(fmin, fr.fmin);

  // Scatter, phase 2: shards surviving the now-exact f_min cut build
  // (id, distance distribution) pairs for their survivors. The per-object
  // predicate reproduces the unsharded filter's cut bit for bit.
  std::vector<std::vector<std::pair<ObjectId, DistanceDistribution>>> parts(
      eligible.size());
  std::vector<double> build_ms(eligible.size(), 0.0);
  std::vector<char> contributed(eligible.size(), 0);
  ForEachIndex(parallel_scatter, eligible.size(), [&](size_t j) {
    const Shard& shard = shards_[eligible[j]];
    if (MbrMinDistToBounds(q, shard.bounds) >
        fmin + kFilterBoundarySlack) {
      return;  // counted as pruned below
    }
    contributed[j] = 1;
    Timer t;
    const Dataset& objects = shard.engine->executor().dataset();
    std::vector<std::pair<ObjectId, DistanceDistribution>>& out = parts[j];
    for (uint32_t idx : filtered[j].candidates) {
      const UncertainObject& obj = objects[idx];
      if (MakeInterval(obj.lo(), obj.hi()).MinDist({q}) <=
          fmin + kFilterBoundarySlack) {
        out.emplace_back(obj.id(),
                         DistanceDistribution::From1D(obj.pdf(), q));
      }
    }
    build_ms[j] = t.ElapsedMs();
  });

  // Gather: merge and verify once. FromDistances re-sorts by (near point,
  // id) — a total order — so the merge order is irrelevant and the set is
  // identical to the unsharded CandidateSet::Build1D result.
  size_t visits = 0;
  size_t total_pairs = 0;
  for (size_t j = 0; j < eligible.size(); ++j) {
    if (contributed[j]) {
      ++visits;
      total_pairs += parts[j].size();
    } else {
      ++pruned;
    }
  }
  std::vector<std::pair<ObjectId, DistanceDistribution>> merged;
  merged.reserve(total_pairs);
  for (std::vector<std::pair<ObjectId, DistanceDistribution>>& part : parts) {
    for (std::pair<ObjectId, DistanceDistribution>& item : part) {
      merged.push_back(std::move(item));
    }
  }
  Timer gather_timer;
  CandidateSet candidates = CandidateSet::FromDistances(std::move(merged));
  const double gather_ms = gather_timer.ElapsedMs();

  QueryAnswer answer = ExecuteOnCandidates(std::move(candidates), options,
                                           scratch);
  double filter_total = 0.0;
  for (double ms : filter_ms) filter_total += ms;
  double build_total = gather_ms;
  for (double ms : build_ms) build_total += ms;
  answer.stats.filter_ms = filter_total;
  answer.stats.init_ms += build_total;
  answer.stats.dataset_size = total_objects_;
  answer.stats.total_ms = total.ElapsedMs();

  shard_visits_.fetch_add(visits, std::memory_order_relaxed);
  shards_pruned_.fetch_add(pruned, std::memory_order_relaxed);
  if (record != nullptr) {
    record->visits += visits;
    record->pruned += pruned;
    for (size_t j = 0; j < eligible.size(); ++j) {
      ShardContrib& contrib = record->shards[eligible[j]];
      contrib.visited = true;
      contrib.filter_ms += filter_ms[j];
      contrib.init_ms += build_ms[j];
      contrib.candidates += parts[j].size();
    }
  }
  return ToQueryResult(std::move(answer));
}

QueryResult ShardedQueryEngine::ExecutePoint2D(Point2 q,
                                               const QueryOptions& options,
                                               QueryScratch* scratch,
                                               bool parallel_scatter,
                                               ScatterRecord* record) {
  Timer total;
  // Shard pruning, phase 0: U := min over shards of MAXDIST(q, Mbr) upper-
  // bounds the global f_min (each shard's local f_min is at most its Mbr
  // MAXDIST, since every region sits inside the shard Mbr), so a shard
  // whose Mbr MINDIST exceeds U can neither lower f_min nor hold a
  // candidate — skip it before any filtering.
  double fmin_cap = kInf;
  for (const Shard& shard : shards_) {
    if (shard.bounds2d.empty()) continue;
    fmin_cap = std::min(fmin_cap, MbrMaxDistToBounds2D(q, shard.bounds2d));
  }
  std::vector<size_t> eligible;
  size_t pruned = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].bounds2d.empty()) continue;
    if (MbrMinDistToBounds2D(q, shards_[i].bounds2d) <=
        fmin_cap + kFilterBoundarySlack) {
      eligible.push_back(i);
    } else {
      ++pruned;
    }
  }

  // Scatter, phase 1: local 2-D filtering. Each local f_min is the exact
  // minimum of MaxDist over the shard's regions (PnnFilter2D refines its
  // MBR bound with exact region distances), so the min over shards equals
  // the unsharded filter's f_min bit for bit.
  std::vector<FilterResult> filtered(eligible.size());
  std::vector<double> filter_ms(eligible.size(), 0.0);
  ForEachIndex(parallel_scatter, eligible.size(), [&](size_t j) {
    Timer t;
    filtered[j] =
        shards_[eligible[j]].engine->executor2d()->Filter(q);
    filter_ms[j] = t.ElapsedMs();
  });
  double fmin = kInf;
  for (const FilterResult& fr : filtered) fmin = std::min(fmin, fr.fmin);

  // Scatter, phase 2: shards surviving the now-exact f_min cut build
  // (id, radial-cdf distance distribution) pairs for their survivors. The
  // per-object predicate and the distribution arithmetic reproduce the
  // unsharded 2-D pipeline exactly.
  std::vector<std::vector<std::pair<ObjectId, DistanceDistribution>>> parts(
      eligible.size());
  std::vector<double> build_ms(eligible.size(), 0.0);
  std::vector<char> contributed(eligible.size(), 0);
  ForEachIndex(parallel_scatter, eligible.size(), [&](size_t j) {
    const Shard& shard = shards_[eligible[j]];
    if (MbrMinDistToBounds2D(q, shard.bounds2d) >
        fmin + kFilterBoundarySlack) {
      return;  // counted as pruned below
    }
    contributed[j] = 1;
    Timer t;
    const Dataset2D& objects = shard.engine->executor2d()->dataset();
    std::vector<std::pair<ObjectId, DistanceDistribution>>& out = parts[j];
    for (uint32_t idx : filtered[j].candidates) {
      const UncertainObject2D& obj = objects[idx];
      if (obj.MinDist(q) <= fmin + kFilterBoundarySlack) {
        out.emplace_back(obj.id(),
                         MakeDistanceDistribution2D(obj, q, radial_pieces_));
      }
    }
    build_ms[j] = t.ElapsedMs();
  });

  // Gather: merge and verify once. FromDistances re-sorts by (near point,
  // id) — a total order — so the merge order is irrelevant and the set is
  // identical to the unsharded CandidateSet::Build2D result.
  size_t visits = 0;
  size_t total_pairs = 0;
  for (size_t j = 0; j < eligible.size(); ++j) {
    if (contributed[j]) {
      ++visits;
      total_pairs += parts[j].size();
    } else {
      ++pruned;
    }
  }
  std::vector<std::pair<ObjectId, DistanceDistribution>> merged;
  merged.reserve(total_pairs);
  for (std::vector<std::pair<ObjectId, DistanceDistribution>>& part : parts) {
    for (std::pair<ObjectId, DistanceDistribution>& item : part) {
      merged.push_back(std::move(item));
    }
  }
  Timer gather_timer;
  CandidateSet candidates = CandidateSet::FromDistances(std::move(merged));
  const double gather_ms = gather_timer.ElapsedMs();

  QueryAnswer answer = ExecuteOnCandidates(std::move(candidates), options,
                                           scratch);
  double filter_total = 0.0;
  for (double ms : filter_ms) filter_total += ms;
  double build_total = gather_ms;
  for (double ms : build_ms) build_total += ms;
  answer.stats.filter_ms = filter_total;
  answer.stats.init_ms += build_total;
  answer.stats.dataset_size = total_objects2d_;
  answer.stats.total_ms = total.ElapsedMs();

  shard_visits_.fetch_add(visits, std::memory_order_relaxed);
  shards_pruned_.fetch_add(pruned, std::memory_order_relaxed);
  if (record != nullptr) {
    record->visits += visits;
    record->pruned += pruned;
    for (size_t j = 0; j < eligible.size(); ++j) {
      ShardContrib& contrib = record->shards[eligible[j]];
      contrib.visited = true;
      contrib.filter_ms += filter_ms[j];
      contrib.init_ms += build_ms[j];
      contrib.candidates += parts[j].size();
    }
  }
  return ToQueryResult(std::move(answer));
}

QueryResult ShardedQueryEngine::ExecuteKnn(double q, int k,
                                           const QueryOptions& options,
                                           bool parallel_scatter,
                                           ScatterRecord* record) {
  PV_CHECK_MSG(k >= 1, "k must be positive");
  Timer total;
  const size_t want = static_cast<size_t>(k);

  // Shard pruning, phase 0: walk shards by ascending bounds MAXDIST until
  // they cover k objects; that MAXDIST upper-bounds the global k-th far
  // point, so shards whose bounds MINDIST exceeds it hold none of the k
  // smallest far points and no candidates.
  std::vector<std::pair<double, size_t>> caps;
  caps.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].bounds.empty()) continue;
    caps.emplace_back(IntervalMaxDistToBounds(q, shards_[i].bounds), i);
  }
  std::sort(caps.begin(), caps.end());
  double fk_cap = kInf;
  size_t covered = 0;
  for (const std::pair<double, size_t>& cap : caps) {
    covered += shards_[cap.second].engine->executor().dataset().size();
    if (covered >= want) {
      fk_cap = cap.first;
      break;
    }
  }
  std::vector<size_t> eligible;
  size_t pruned = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].bounds.empty()) continue;
    if (IntervalMinDistToBounds(q, shards_[i].bounds) <=
        fk_cap + kFilterBoundarySlack) {
      eligible.push_back(i);
    } else {
      ++pruned;
    }
  }

  // Scatter, phase 1: per-shard k smallest far points. Their merge
  // contains the k smallest global far points (each lives in its shard's
  // local top-k), so the k-th order statistic of the merge equals the
  // unsharded FilterKByScan's value exactly.
  std::vector<std::vector<double>> far_parts(eligible.size());
  std::vector<double> filter_ms(eligible.size(), 0.0);
  ForEachIndex(parallel_scatter, eligible.size(), [&](size_t j) {
    Timer t;
    far_parts[j] = SmallestFarPoints(
        shards_[eligible[j]].engine->executor().dataset(), q, want);
    filter_ms[j] = t.ElapsedMs();
  });
  std::vector<double> fars;
  for (const std::vector<double>& part : far_parts) {
    fars.insert(fars.end(), part.begin(), part.end());
  }
  double fk = 0.0;
  if (!fars.empty()) {
    const size_t kth = std::min(total_objects_, want) - 1;
    std::nth_element(fars.begin(), fars.begin() + kth, fars.end());
    fk = fars[kth];
  }

  // Scatter, phase 2: survivors at the exact global k-th far point, with
  // the same per-object arithmetic FilterKByScan uses.
  std::vector<std::vector<std::pair<ObjectId, DistanceDistribution>>> parts(
      eligible.size());
  std::vector<double> build_ms(eligible.size(), 0.0);
  std::vector<char> contributed(eligible.size(), 0);
  ForEachIndex(parallel_scatter, eligible.size(), [&](size_t j) {
    const Shard& shard = shards_[eligible[j]];
    if (fars.empty() || IntervalMinDistToBounds(q, shard.bounds) >
                            fk + kFilterBoundarySlack) {
      return;
    }
    contributed[j] = 1;
    Timer t;
    std::vector<std::pair<ObjectId, DistanceDistribution>>& out = parts[j];
    for (const UncertainObject& obj : shard.engine->executor().dataset()) {
      if (obj.MinDist(q) <= fk + kFilterBoundarySlack) {
        out.emplace_back(obj.id(),
                         DistanceDistribution::From1D(obj.pdf(), q));
      }
    }
    build_ms[j] = t.ElapsedMs();
  });

  // Gather: merge, rebuild the (order-normalized) candidate set with the
  // k-aware pruning rule, and evaluate the constrained k-NN once.
  size_t visits = 0;
  size_t total_pairs = 0;
  for (size_t j = 0; j < eligible.size(); ++j) {
    if (contributed[j]) {
      ++visits;
      total_pairs += parts[j].size();
    } else {
      ++pruned;
    }
  }
  std::vector<std::pair<ObjectId, DistanceDistribution>> merged;
  merged.reserve(total_pairs);
  for (std::vector<std::pair<ObjectId, DistanceDistribution>>& part : parts) {
    for (std::pair<ObjectId, DistanceDistribution>& item : part) {
      merged.push_back(std::move(item));
    }
  }
  CandidateSet candidates = CandidateSet::FromDistances(std::move(merged), k);
  CknnAnswer answer =
      EvaluateCknn(candidates, k, options.params, options.integration);

  QueryResult result;
  result.stats.total_ms = total.ElapsedMs();
  double filter_total = 0.0;
  for (double ms : filter_ms) filter_total += ms;
  double build_total = 0.0;
  for (double ms : build_ms) build_total += ms;
  result.stats.filter_ms = filter_total;
  result.stats.init_ms = build_total;
  result.stats.dataset_size = total_objects_;
  result.stats.candidates = answer.bounds.size();
  result.ids = answer.ids;
  result.knn = std::move(answer);

  shard_visits_.fetch_add(visits, std::memory_order_relaxed);
  shards_pruned_.fetch_add(pruned, std::memory_order_relaxed);
  if (record != nullptr) {
    record->visits += visits;
    record->pruned += pruned;
    for (size_t j = 0; j < eligible.size(); ++j) {
      ShardContrib& contrib = record->shards[eligible[j]];
      contrib.visited = true;
      contrib.filter_ms += filter_ms[j];
      contrib.init_ms += build_ms[j];
      contrib.candidates += parts[j].size();
    }
  }
  return result;
}

}  // namespace pverify
