// Fixed-size worker pool for the query engine.
//
// Workers are spawned once at construction and live for the pool's
// lifetime; query batches are fanned out with ParallelFor, which hands out
// item indices through an atomic cursor so fast workers steal the slack of
// slow ones (queries vary wildly in refinement cost). Each callback also
// receives a stable worker id in [0, size()) so callers can maintain
// per-worker state — the engine keys its QueryScratch arenas off it.
#ifndef PVERIFY_ENGINE_THREAD_POOL_H_
#define PVERIFY_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pverify {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a task for any worker. Fire-and-forget; pair with WaitIdle()
  /// to synchronize.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  /// Runs fn(worker, index) for every index in [0, n), distributing indices
  /// dynamically over the workers. Blocks until all indices are processed.
  /// `worker` is a stable id in [0, size()). If any callback throws, one of
  /// the exceptions is rethrown here after the loop drains.
  void ParallelFor(size_t n,
                   const std::function<void(size_t worker, size_t index)>& fn);

  /// Hardware concurrency with a safe fallback (>= 1).
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop(size_t worker_id);

  std::vector<std::thread> workers_;
  std::queue<std::function<void(size_t)>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  size_t in_flight_ = 0;  // queued + running tasks
  bool stopping_ = false;
};

}  // namespace pverify

#endif  // PVERIFY_ENGINE_THREAD_POOL_H_
