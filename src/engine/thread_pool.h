// Fixed-size worker pool with one global task queue — the engines'
// PoolKind::kGlobalQueue backend (see engine/worker_pool.h for the
// interface and engine/work_steal_pool.h for the nesting-safe
// alternative).
//
// Workers are spawned once at construction and live for the pool's
// lifetime; query batches are fanned out with ParallelFor, which hands out
// item indices through an atomic cursor so fast workers steal the slack of
// slow ones (queries vary wildly in refinement cost). Each callback also
// receives a stable worker id in [0, size()) so callers can maintain
// per-worker state — the engine keys its QueryScratch arenas off it.
// ParallelFor blocks its caller, so calling it from inside one of this
// pool's own workers deadlocks (SupportsNestedParallelFor() == false);
// engines that need nested fan-out select the work-stealing pool instead.
#ifndef PVERIFY_ENGINE_THREAD_POOL_H_
#define PVERIFY_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "engine/worker_pool.h"

namespace pverify {

class ThreadPool : public WorkerPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool() override;

  size_t size() const override { return workers_.size(); }
  PoolKind kind() const override { return PoolKind::kGlobalQueue; }
  bool SupportsNestedParallelFor() const override { return false; }

  /// Enqueues a task for any worker. Fire-and-forget; pair with WaitIdle()
  /// to synchronize.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  /// Runs fn(worker, index) for every index in [0, n), distributing indices
  /// dynamically over the workers. Blocks until all indices are processed.
  /// `worker` is a stable id in [0, size()). If any callback throws, one of
  /// the exceptions is rethrown here after the loop drains. Must not be
  /// called from inside a worker of this pool (it would deadlock).
  void ParallelFor(size_t n,
                   const std::function<void(size_t worker, size_t index)>& fn)
      override;

  /// Hardware concurrency with a safe fallback (>= 1).
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop(size_t worker_id);

  std::vector<std::thread> workers_;
  std::queue<std::function<void(size_t)>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  size_t in_flight_ = 0;  // queued + running tasks
  bool stopping_ = false;
};

}  // namespace pverify

#endif  // PVERIFY_ENGINE_THREAD_POOL_H_
