// The engines' async submission queue.
//
// Submit(request) returns a future immediately; a dedicated dispatcher
// thread drains everything queued since the last dispatch into ONE batch
// and hands it to the owning engine's batch runner. While a batch executes,
// new submissions pile up and are coalesced into the next batch — so
// interactive callers pipeline single requests and still get batched
// execution across the worker pool, without ever forming a batch
// themselves. The runner fans the batch out on whatever WorkerPool the
// engine was configured with: on the work-stealing pool even a coalesced
// batch of ONE sharded request uses every core, because the request's
// shard loop nests inside the batch worker (see sharded_engine.h).
//
// The runner fulfills each pending promise (value or exception) and must
// not let exceptions escape per request; if the runner itself throws, the
// queue fails every still-unfulfilled promise in the batch so no future is
// left to die with a broken_promise. The destructor drains the queue —
// every future obtained from Submit is eventually resolved.
#ifndef PVERIFY_ENGINE_SUBMIT_QUEUE_H_
#define PVERIFY_ENGINE_SUBMIT_QUEUE_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/engine.h"

namespace pverify {

class SubmitQueue {
 public:
  /// Executes one coalesced batch, fulfilling every promise. Called from
  /// the dispatcher thread with the batch by reference: entries whose
  /// promise is still unfulfilled when the runner returns by exception are
  /// failed by the queue.
  using BatchRunner = std::function<void(std::vector<PendingQuery>&)>;

  explicit SubmitQueue(BatchRunner runner);

  /// Drains every queued request through the runner, then joins.
  ~SubmitQueue();

  SubmitQueue(const SubmitQueue&) = delete;
  SubmitQueue& operator=(const SubmitQueue&) = delete;

  /// Enqueues the request; the future resolves once a dispatched batch
  /// containing it finishes. Safe to call from any number of threads.
  std::future<QueryResult> Submit(QueryRequest request);

  SubmitQueueStats GetStats() const;

 private:
  void DispatcherLoop();

  BatchRunner runner_;
  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::vector<PendingQuery> pending_;
  bool stopping_ = false;
  SubmitQueueStats stats_;
  std::thread dispatcher_;  ///< last member: runs as soon as it starts
};

}  // namespace pverify

#endif  // PVERIFY_ENGINE_SUBMIT_QUEUE_H_
