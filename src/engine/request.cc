#include "engine/request.h"

#include "common/check.h"

namespace pverify {

std::string_view ToString(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPoint:
      return "point";
    case QueryKind::kMin:
      return "min";
    case QueryKind::kMax:
      return "max";
    case QueryKind::kKnn:
      return "knn";
    case QueryKind::kCandidates:
      return "candidates";
    case QueryKind::kPoint2D:
      return "point2d";
    case QueryKind::kKnn2D:
      return "knn2d";
  }
  return "?";
}

CandidatesQuery::CandidatesQuery(CandidateSet candidates,
                                 QueryOptions options)
    : options(std::move(options)),
      candidates_(std::make_unique<CandidateSet>(std::move(candidates))) {}

CandidateSet CandidatesQuery::TakeCandidates() {
  PV_CHECK_MSG(candidates_ != nullptr,
               "CandidatesQuery payload already consumed — a candidate-set "
               "request cannot be re-submitted");
  std::unique_ptr<CandidateSet> taken = std::move(candidates_);
  return std::move(*taken);
}

const QueryOptions& QueryRequest::options() const {
  return std::visit(
      [](const auto& payload) -> const QueryOptions& {
        return payload.options;
      },
      query);
}

QueryResult ToQueryResult(QueryAnswer&& answer) {
  QueryResult result;
  result.ids = std::move(answer.ids);
  result.stats = std::move(answer.stats);
  result.candidate_probabilities =
      std::move(answer.candidate_probabilities);
  return result;
}

}  // namespace pverify
