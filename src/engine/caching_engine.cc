#include "engine/caching_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>
#include <variant>

#include "common/check.h"
#include "common/timer.h"
#include "engine/submit_queue.h"

namespace pverify {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Bits of the quantization cell holding `v`: floor(v / quantum) collapses
/// every point in a cell onto one key; quantum == 0 keeps the exact bits so
/// distinct points never share a slot.
uint64_t QuantizedBits(double v, double quantum) {
  if (quantum <= 0.0) return DoubleBits(v);
  return DoubleBits(std::floor(v / quantum));
}

/// FNV-1a over a word sequence — the coarse-key hash. Collisions are safe:
/// the exact fingerprint check at hit time turns them into rechecks.
uint64_t HashWords(const uint64_t* words, size_t count) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < count; ++i) {
    for (int b = 0; b < 8; ++b) {
      h ^= (words[i] >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

size_t ApproxResultBytes(const QueryResult& result) {
  size_t bytes = sizeof(QueryResult);
  bytes += result.ids.capacity() * sizeof(ObjectId);
  bytes += result.candidate_probabilities.capacity() * sizeof(AnswerEntry);
  for (const StageStats& stage : result.stats.verification.stages) {
    bytes += sizeof(StageStats) + stage.name.capacity();
  }
  if (result.knn.has_value()) {
    bytes += result.knn->ids.capacity() * sizeof(ObjectId);
    bytes += result.knn->bounds.capacity() * sizeof(ProbabilityBound);
  }
  return bytes;
}

/// True when any reported probability bound sits within `band` of the
/// decision threshold — the entry then always rechecks instead of hitting.
bool IsBorderline(const QueryResult& result, double threshold, double band) {
  if (band <= 0.0) return false;
  for (const AnswerEntry& entry : result.candidate_probabilities) {
    if (std::abs(entry.bound.lower - threshold) <= band ||
        std::abs(entry.bound.upper - threshold) <= band) {
      return true;
    }
  }
  if (result.knn.has_value()) {
    for (const ProbabilityBound& bound : result.knn->bounds) {
      if (std::abs(bound.lower - threshold) <= band ||
          std::abs(bound.upper - threshold) <= band) {
        return true;
      }
    }
  }
  return false;
}

Engine& DerefBackend(const std::unique_ptr<Engine>& backend) {
  PV_CHECK_MSG(backend != nullptr, "CachingEngine backend must not be null");
  return *backend;
}

}  // namespace

bool CachingEngine::Fingerprint::operator==(const Fingerprint& other) const {
  return kind == other.kind && qx_bits == other.qx_bits &&
         qy_bits == other.qy_bits && k == other.k &&
         threshold_bits == other.threshold_bits &&
         tolerance_bits == other.tolerance_bits &&
         strategy == other.strategy && refine_order == other.refine_order &&
         gauss_points == other.gauss_points &&
         splits_per_subregion == other.splits_per_subregion &&
         mc_samples == other.mc_samples && mc_seed == other.mc_seed &&
         report_probabilities == other.report_probabilities;
}

CachingEngine::CachingEngine(Engine& backend, CachingEngineOptions options)
    : backend_(backend), options_(options) {
  PV_CHECK_MSG(options_.point_quantum >= 0.0 &&
                   options_.threshold_quantum >= 0.0 &&
                   options_.guard_band >= 0.0,
               "cache quanta and guard band must be non-negative");
  const size_t shards = options_.capacity == 0
                            ? 1
                            : std::max<size_t>(1, std::min(options_.num_shards,
                                                           options_.capacity));
  shard_capacity_ =
      options_.capacity == 0 ? 0 : (options_.capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<CacheShard>());
  }
}

CachingEngine::CachingEngine(std::unique_ptr<Engine> backend,
                             CachingEngineOptions options)
    : CachingEngine(DerefBackend(backend), options) {
  owned_ = std::move(backend);
}

CachingEngine::~CachingEngine() = default;

bool CachingEngine::BuildCacheQuery(const QueryRequest& request,
                                    CacheQuery* out) const {
  if (options_.capacity == 0) return false;
  Fingerprint& fp = out->fp;
  fp.kind = request.kind();
  switch (fp.kind) {
    case QueryKind::kPoint:
      fp.qx_bits = DoubleBits(std::get<PointQuery>(request.query).q);
      break;
    case QueryKind::kMin:
    case QueryKind::kMax:
      break;  // no query point: the kind alone anchors the key
    case QueryKind::kKnn: {
      const KnnQuery& q = std::get<KnnQuery>(request.query);
      fp.qx_bits = DoubleBits(q.q);
      fp.k = q.k;
      break;
    }
    case QueryKind::kPoint2D: {
      const Point2DQuery& q = std::get<Point2DQuery>(request.query);
      fp.qx_bits = DoubleBits(q.q.x);
      fp.qy_bits = DoubleBits(q.q.y);
      break;
    }
    case QueryKind::kKnn2D: {
      const Knn2DQuery& q = std::get<Knn2DQuery>(request.query);
      fp.qx_bits = DoubleBits(q.q.x);
      fp.qy_bits = DoubleBits(q.q.y);
      fp.k = q.k;
      break;
    }
    case QueryKind::kCandidates:
      // The payload is consumed on execution and cannot key a memo.
      return false;
  }

  const QueryOptions& opt = request.options();
  fp.threshold_bits = DoubleBits(opt.params.threshold);
  fp.tolerance_bits = DoubleBits(opt.params.tolerance);
  fp.strategy = static_cast<int>(opt.strategy);
  fp.refine_order = static_cast<int>(opt.refine_order);
  fp.gauss_points = opt.integration.gauss_points;
  fp.splits_per_subregion = opt.integration.splits_per_subregion;
  fp.mc_samples = opt.monte_carlo.samples;
  fp.mc_seed = opt.monte_carlo.seed;
  fp.report_probabilities = opt.report_probabilities;

  // The coarse key: quantized point and bucketed threshold, exact bits for
  // everything else. Entries inside one cell replace each other.
  double qx = 0.0, qy = 0.0;
  switch (fp.kind) {
    case QueryKind::kPoint:
      qx = std::get<PointQuery>(request.query).q;
      break;
    case QueryKind::kKnn:
      qx = std::get<KnnQuery>(request.query).q;
      break;
    case QueryKind::kPoint2D:
      qx = std::get<Point2DQuery>(request.query).q.x;
      qy = std::get<Point2DQuery>(request.query).q.y;
      break;
    case QueryKind::kKnn2D:
      qx = std::get<Knn2DQuery>(request.query).q.x;
      qy = std::get<Knn2DQuery>(request.query).q.y;
      break;
    default:
      break;
  }
  const uint64_t words[] = {
      static_cast<uint64_t>(fp.kind),
      QuantizedBits(qx, options_.point_quantum),
      QuantizedBits(qy, options_.point_quantum),
      static_cast<uint64_t>(fp.k),
      QuantizedBits(opt.params.threshold, options_.threshold_quantum),
      fp.tolerance_bits,
      static_cast<uint64_t>(fp.strategy),
      static_cast<uint64_t>(fp.refine_order),
      static_cast<uint64_t>(fp.gauss_points),
      static_cast<uint64_t>(fp.splits_per_subregion),
      static_cast<uint64_t>(fp.mc_samples),
      fp.mc_seed,
      static_cast<uint64_t>(fp.report_probabilities),
  };
  out->key = HashWords(words, sizeof(words) / sizeof(words[0]));
  out->epoch = epoch_.load(std::memory_order_acquire);
  return true;
}

std::optional<QueryResult> CachingEngine::Lookup(const CacheQuery& cq) {
  CacheShard& shard = ShardFor(cq.key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(cq.key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Entry& entry = *it->second;
  if (entry.epoch != cq.epoch || !(entry.fp == cq.fp) || entry.borderline) {
    // Stale epoch, same-cell-different-request, or a guard-band borderline:
    // recompute exactly on the backend (the fresh result refreshes the
    // entry via Insert).
    rechecks_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch
  QueryResult copy = entry.result;
  copy.stats.served_from_cache = true;
  return copy;
}

void CachingEngine::Insert(const CacheQuery& cq, const QueryResult& result) {
  if (epoch_.load(std::memory_order_acquire) != cq.epoch) {
    // The dataset moved on while this result was computed under the old
    // epoch — discard rather than resurrect pre-bump state.
    return;
  }
  Entry entry;
  entry.key = cq.key;
  entry.fp = cq.fp;
  entry.epoch = cq.epoch;
  entry.borderline = IsBorderline(result, BitsToDouble(cq.fp.threshold_bits),
                                  options_.guard_band);
  entry.result = result;
  entry.result.stats.served_from_cache = false;
  entry.bytes = sizeof(Entry) + ApproxResultBytes(entry.result);

  CacheShard& shard = ShardFor(cq.key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(cq.key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  while (shard.lru.size() >= shard_capacity_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.bytes += entry.bytes;
  shard.lru.push_front(std::move(entry));
  shard.index.emplace(cq.key, shard.lru.begin());
}

QueryResult CachingEngine::Execute(QueryRequest request) {
  CacheQuery cq;
  if (!BuildCacheQuery(request, &cq)) {
    bypasses_.fetch_add(1, std::memory_order_relaxed);
    return backend_.Execute(std::move(request));
  }
  if (std::optional<QueryResult> cached = Lookup(cq)) {
    return std::move(*cached);
  }
  QueryResult result = backend_.Execute(std::move(request));
  Insert(cq, result);
  return result;
}

void CachingEngine::ServeBatch(std::vector<QueryRequest>&& requests,
                               std::vector<QueryResult>& results,
                               EngineStats* backend_stats) {
  results.resize(requests.size());
  std::vector<size_t> miss_index;
  std::vector<CacheQuery> miss_query;
  std::vector<bool> miss_cacheable;
  std::vector<QueryRequest> miss_requests;
  for (size_t i = 0; i < requests.size(); ++i) {
    CacheQuery cq;
    const bool cacheable = BuildCacheQuery(requests[i], &cq);
    if (!cacheable) bypasses_.fetch_add(1, std::memory_order_relaxed);
    if (cacheable) {
      if (std::optional<QueryResult> cached = Lookup(cq)) {
        results[i] = std::move(*cached);
        continue;
      }
    }
    miss_index.push_back(i);
    miss_query.push_back(cq);
    miss_cacheable.push_back(cacheable);
    miss_requests.push_back(std::move(requests[i]));
  }
  std::vector<QueryResult> computed =
      backend_.ExecuteBatch(std::move(miss_requests), backend_stats);
  for (size_t m = 0; m < miss_index.size(); ++m) {
    if (miss_cacheable[m]) Insert(miss_query[m], computed[m]);
    results[miss_index[m]] = std::move(computed[m]);
  }
}

std::vector<QueryResult> CachingEngine::ExecuteBatch(
    std::vector<QueryRequest> requests, EngineStats* stats) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  const CacheStats before = CounterSnapshot();
  Timer wall;
  std::vector<QueryResult> results;
  ServeBatch(std::move(requests), results, nullptr);
  if (stats != nullptr) {
    *stats = EngineStats{};
    stats->threads = backend_.num_threads();
    stats->wall_ms = wall.ElapsedMs();
    for (const QueryResult& r : results) {
      AccumulateBatchResult(r.stats, stats);
    }
    // Replace the flag-derived hit count with the exact per-batch delta
    // (identical for hits; the delta additionally carries misses, rechecks,
    // bypasses and evictions) plus the current gauges.
    const CacheStats after = GetCacheStats();
    stats->cache.hits = after.hits - before.hits;
    stats->cache.misses = after.misses - before.misses;
    stats->cache.rechecks = after.rechecks - before.rechecks;
    stats->cache.bypasses = after.bypasses - before.bypasses;
    stats->cache.evictions = after.evictions - before.evictions;
    stats->cache.invalidations = after.invalidations - before.invalidations;
    stats->cache.entries = after.entries;
    stats->cache.bytes = after.bytes;
  }
  return results;
}

SubmitQueue* CachingEngine::EnsureSubmitQueue() {
  SubmitQueue* queue = submit_queue_ptr_.load(std::memory_order_acquire);
  if (queue != nullptr) return queue;
  std::call_once(submit_once_, [this] {
    submit_queue_ = std::make_unique<SubmitQueue>(
        [this](std::vector<PendingQuery>& batch) { RunSubmitted(batch); });
    submit_queue_ptr_.store(submit_queue_.get(), std::memory_order_release);
  });
  return submit_queue_ptr_.load(std::memory_order_acquire);
}

std::future<QueryResult> CachingEngine::Submit(QueryRequest request) {
  return EnsureSubmitQueue()->Submit(std::move(request));
}

SubmitQueueStats CachingEngine::SubmitStats() const {
  SubmitQueue* queue = submit_queue_ptr_.load(std::memory_order_acquire);
  return queue != nullptr ? queue->GetStats() : SubmitQueueStats{};
}

void CachingEngine::RunSubmitted(std::vector<PendingQuery>& batch) {
  // Hits resolve immediately; misses are re-submitted to the BACKEND's
  // queue, which coalesces them into its own pool batches — so the cache
  // tier costs coalesced traffic none of the backend's fan-out. Submit
  // (rather than one backend ExecuteBatch) also keeps failures isolated: a
  // request with invalid params fails only its own promise instead of
  // poisoning the whole coalesced batch. No batch_mu_ needed — this path
  // never calls the backend's batch interface.
  struct ForwardedMiss {
    size_t index;
    bool cacheable;
    CacheQuery cache_query;
    std::future<QueryResult> future;
  };
  std::vector<ForwardedMiss> misses;
  for (size_t i = 0; i < batch.size(); ++i) {
    CacheQuery cq;
    const bool cacheable = BuildCacheQuery(batch[i].request, &cq);
    if (!cacheable) {
      bypasses_.fetch_add(1, std::memory_order_relaxed);
    } else if (std::optional<QueryResult> cached = Lookup(cq)) {
      batch[i].promise.set_value(std::move(*cached));
      continue;
    }
    misses.push_back(ForwardedMiss{
        i, cacheable, cq, backend_.Submit(std::move(batch[i].request))});
  }
  for (ForwardedMiss& miss : misses) {
    try {
      QueryResult result = miss.future.get();
      if (miss.cacheable) Insert(miss.cache_query, result);
      batch[miss.index].promise.set_value(std::move(result));
    } catch (...) {
      batch[miss.index].promise.set_exception(std::current_exception());
    }
  }
}

size_t CachingEngine::ScratchQueriesServed() const {
  return backend_.ScratchQueriesServed();
}

size_t CachingEngine::ScratchBytes() const { return backend_.ScratchBytes(); }

void CachingEngine::BumpEpoch() {
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  size_t dropped = 0;
  for (const std::unique_ptr<CacheShard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    dropped += shard->lru.size();
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
}

CacheStats CachingEngine::CounterSnapshot() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.rechecks = rechecks_.load(std::memory_order_relaxed);
  stats.bypasses = bypasses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  return stats;
}

CacheStats CachingEngine::GetCacheStats() const {
  CacheStats stats = CounterSnapshot();
  for (const std::unique_ptr<CacheShard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

std::unique_ptr<CachingEngine> MakeCachingEngine(
    std::unique_ptr<Engine> backend, CachingEngineOptions options) {
  return std::make_unique<CachingEngine>(std::move(backend), options);
}

}  // namespace pverify
