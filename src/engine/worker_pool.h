// The engines' worker-pool surface.
//
// Both engine backends fan work out through this interface: ParallelFor
// hands out item indices under dynamic load balancing and reports a stable
// worker id in [0, size()) to every callback, so callers can key per-worker
// state (the engines key their QueryScratch arenas) off it. Two
// implementations exist:
//
//  * ThreadPool (engine/thread_pool.h) — one global task queue. Simple and
//    fast for flat batches, but a worker that starts a ParallelFor of its
//    own would block on tasks that can never be scheduled under it, so
//    nested loops deadlock (SupportsNestedParallelFor() == false).
//  * WorkStealingPool (engine/work_steal_pool.h) — per-worker deques with
//    stealing and a nesting-safe ParallelFor: a worker that reaches an
//    inner loop participates in it instead of blocking, so fan-out from
//    inside pool workers is deadlock-free by construction.
//
// Engines pick the implementation via EngineOptions/ShardedEngineOptions
// (PoolKind); callers never see past this interface.
#ifndef PVERIFY_ENGINE_WORKER_POOL_H_
#define PVERIFY_ENGINE_WORKER_POOL_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string_view>

namespace pverify {

/// Which worker-pool implementation an engine schedules on.
enum class PoolKind {
  kGlobalQueue,   ///< ThreadPool: one shared task queue, no nesting
  kWorkStealing,  ///< WorkStealingPool: per-worker deques, nesting-safe
};

std::string_view ToString(PoolKind kind);

/// Abstract worker pool. Implementations spawn their threads at
/// construction and join them at destruction; ParallelFor may be called
/// from any external thread, and — when SupportsNestedParallelFor() — from
/// inside the pool's own workers as well.
class WorkerPool {
 public:
  virtual ~WorkerPool();

  /// Number of worker threads (>= 1).
  virtual size_t size() const = 0;

  /// The implementation this pool is (telemetry / bench labeling).
  virtual PoolKind kind() const = 0;

  /// True when ParallelFor may be called from inside one of this pool's
  /// own workers without deadlocking (the callback's nested loops then run
  /// with the outer worker's id, so per-worker scratch keys stay valid).
  virtual bool SupportsNestedParallelFor() const = 0;

  /// Runs fn(worker, index) for every index in [0, n), distributing
  /// indices dynamically over the workers. Blocks until every index is
  /// processed. `worker` is a stable id in [0, size()). If any callback
  /// throws, one of the exceptions is rethrown here after the loop drains.
  virtual void ParallelFor(
      size_t n, const std::function<void(size_t worker, size_t index)>& fn) = 0;

  /// Milliseconds the CALLING thread has spent executing other tasks'
  /// work while blocked inside one of this pool's ParallelFor calls (a
  /// nesting-safe pool drains/steals foreign tasks instead of blocking).
  /// Monotone per thread; callers snapshot it around a timed section and
  /// subtract the delta so per-query timings stop charging stolen work to
  /// the query that happened to be blocked. Pools that never run foreign
  /// work on a blocked caller report 0.
  virtual double ForeignWorkMsOnThisThread() const { return 0.0; }

 protected:
  WorkerPool() = default;
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
};

/// Constructs the requested pool; `num_threads` == 0 means hardware
/// concurrency (both implementations clamp to >= 1).
std::unique_ptr<WorkerPool> MakeWorkerPool(PoolKind kind, size_t num_threads);

}  // namespace pverify

#endif  // PVERIFY_ENGINE_WORKER_POOL_H_
