// Per-worker scratch arena — the engine-facing name for core's
// QueryScratch.
//
// The engine gives each worker thread one QueryScratch and routes every
// request executed on that worker through it, so the verification buffers
// (subregion table, n×M bound arrays, refinement workspace) are reused
// across the worker's whole query stream. The type itself lives in core —
// its members and consumers are all core — keeping core free of engine
// includes; this header exists so engine code and engine users name it as
// part of the engine subsystem.
#ifndef PVERIFY_ENGINE_SCRATCH_H_
#define PVERIFY_ENGINE_SCRATCH_H_

#include "core/scratch.h"

#endif  // PVERIFY_ENGINE_SCRATCH_H_
