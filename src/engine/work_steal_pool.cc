#include "engine/work_steal_pool.h"

#include <algorithm>
#include <exception>

#include "common/timer.h"

namespace pverify {

namespace {

/// Worker-thread registration: which pool this thread belongs to (if any)
/// and its stable id there. A thread belongs to at most one pool, so one
/// slot suffices; CurrentWorkerId compares the pool pointer.
thread_local WorkStealingPool* tls_pool = nullptr;
thread_local size_t tls_id = WorkStealingPool::kNotAWorker;

/// Per-thread foreign-work clock (see ForeignWorkMsOnThisThread). Plain
/// thread_local: only this thread writes or reads it.
thread_local double tls_foreign_ms = 0.0;

}  // namespace

/// State of one ParallelFor, living on the caller's stack. Every runner
/// task finishes (and decrements pending) before ParallelFor returns, so
/// no queued task outlives this frame.
struct WorkStealingPool::LoopState {
  std::atomic<size_t> cursor{0};
  size_t n = 0;
  const std::function<void(size_t, size_t)>* fn = nullptr;
  /// Runners not yet finished. The final release-decrement, paired with
  /// the caller's acquire-read, publishes every callback's writes.
  std::atomic<size_t> pending{0};
  /// True when the caller is an external thread blocked on cv (a worker
  /// caller spins-and-helps on `pending` instead). Decides the runner
  /// epilogue: with a cv waiter the decrement must happen under mu, or a
  /// spurious wakeup could observe pending == 0 and free this frame while
  /// the decrementer is still mid-notify.
  bool external_waiter = false;
  std::mutex mu;  ///< guards first_error; latch protocol when external
  std::condition_variable cv;
  std::exception_ptr first_error;
};

WorkStealingPool::WorkStealingPool(size_t num_threads) {
  size_t n = num_threads;
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = hw == 0 ? 1 : static_cast<size_t>(hw);
  }
  n = std::max<size_t>(1, n);
  deques_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    deques_.push_back(std::make_unique<TaskDeque>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  stopping_.store(true, std::memory_order_release);
  // The empty critical section serializes against a worker between its
  // last failed scan and its wait, so the notification cannot be missed.
  { std::lock_guard<std::mutex> g(sleep_mu_); }
  sleep_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

size_t WorkStealingPool::CurrentWorkerId() const {
  return tls_pool == this ? tls_id : kNotAWorker;
}

double WorkStealingPool::ForeignWorkMsOnThisThread() const {
  return tls_foreign_ms;
}

void WorkStealingPool::Submit(PoolTask task) {
  submitted_in_flight_.fetch_add(1, std::memory_order_relaxed);
  PoolTask wrapped = [this, t = std::move(task)](size_t worker) mutable {
    try {
      t(worker);
    } catch (...) {
      // Fire-and-forget tasks own their error handling; swallowing keeps
      // one bad task from terminating the process (same contract as
      // ThreadPool::Submit).
    }
    if (submitted_in_flight_.fetch_sub(1, std::memory_order_release) == 1) {
      std::lock_guard<std::mutex> g(idle_mu_);
      idle_cv_.notify_all();
    }
  };
  const size_t self = CurrentWorkerId();
  if (self != kNotAWorker) {
    PushToOwnDeque(self, std::move(wrapped));
  } else {
    Inject(std::move(wrapped));
  }
  SignalWork();
}

void WorkStealingPool::WaitIdle() {
  std::unique_lock<std::mutex> lk(idle_mu_);
  idle_cv_.wait(lk, [this] {
    return submitted_in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void WorkStealingPool::RunLoopBody(LoopState& state, size_t worker) {
  for (;;) {
    const size_t index = state.cursor.fetch_add(1, std::memory_order_relaxed);
    if (index >= state.n) break;
    try {
      (*state.fn)(worker, index);
    } catch (...) {
      std::lock_guard<std::mutex> g(state.mu);
      if (!state.first_error) state.first_error = std::current_exception();
    }
  }
}

void WorkStealingPool::ParallelFor(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t self = CurrentWorkerId();

  LoopState state;
  state.n = n;
  state.fn = &fn;
  const size_t spawned = std::min(size(), n);
  state.pending.store(spawned, std::memory_order_relaxed);
  state.external_waiter = self == kNotAWorker;

  // One runner per participant; each claims indices through the shared
  // cursor until the loop is exhausted, so stragglers never serialize the
  // batch and a runner that starts late simply finds nothing left.
  auto runner = [&state](size_t worker) {
    RunLoopBody(state, worker);
    if (state.external_waiter) {
      std::lock_guard<std::mutex> g(state.mu);
      if (state.pending.fetch_sub(1, std::memory_order_release) == 1) {
        state.cv.notify_all();
      }
    } else {
      state.pending.fetch_sub(1, std::memory_order_release);
    }
  };

  if (self != kNotAWorker) {
    // Nested call: spawn the other runners onto our own deque (thieves
    // take them FIFO from the top), then participate instead of blocking.
    for (size_t t = 0; t + 1 < spawned; ++t) {
      PushToOwnDeque(self, PoolTask(runner));
    }
    if (spawned > 1) SignalWork();
    runner(self);
    // Our indices are done but thieves may still hold runners (or our own
    // deque may still hold unstolen ones): drain and steal — executing
    // whatever work exists, including other loops' — until the latch
    // trips. Never block: that is what makes nesting deadlock-free.
    //
    // Every task picked up here is foreign to whatever this thread was
    // timing (another query's runner, an injected task — at best a leftover
    // runner of this very loop that finds the cursor exhausted and returns
    // in nanoseconds), so its wall time goes on the thread's foreign-work
    // clock. Writing `before + elapsed` rather than `+= elapsed` makes the
    // charge net of any bumps the task's own nested drains performed —
    // those are already inside `elapsed` — so nested stealing never
    // double-counts.
    while (state.pending.load(std::memory_order_acquire) != 0) {
      const double before = tls_foreign_ms;
      Timer drained;
      if (!RunOneTask(self)) {
        std::this_thread::yield();
        continue;
      }
      tls_foreign_ms = before + drained.ElapsedMs();
    }
  } else {
    for (size_t t = 0; t < spawned; ++t) {
      Inject(PoolTask(runner));
    }
    SignalWork();
    std::unique_lock<std::mutex> lk(state.mu);
    state.cv.wait(lk, [&state] {
      return state.pending.load(std::memory_order_acquire) == 0;
    });
  }
  if (state.first_error) std::rethrow_exception(state.first_error);
}

void WorkStealingPool::WorkerLoop(size_t worker_id) {
  tls_pool = this;
  tls_id = worker_id;
  for (;;) {
    if (RunOneTask(worker_id)) continue;
    const uint64_t epoch = work_epoch_.load(std::memory_order_acquire);
    // Re-scan after reading the epoch: a task pushed between the failed
    // scan above and the epoch read would otherwise be slept through.
    if (RunOneTask(worker_id)) continue;
    if (stopping_.load(std::memory_order_acquire)) return;  // drained
    std::unique_lock<std::mutex> lk(sleep_mu_);
    sleep_cv_.wait(lk, [this, epoch] {
      return stopping_.load(std::memory_order_relaxed) ||
             work_epoch_.load(std::memory_order_relaxed) != epoch;
    });
  }
}

bool WorkStealingPool::RunOneTask(size_t self) {
  PoolTask task;
  bool stolen = false;
  // 1) Own deque, bottom first: LIFO keeps the hottest work local and
  //    unwinds nested loops innermost-first.
  if (self != kNotAWorker) {
    TaskDeque& own = *deques_[self];
    if (own.approx_size.load(std::memory_order_relaxed) != 0) {
      std::lock_guard<std::mutex> g(own.mu);
      if (!own.tasks.empty()) {
        task = std::move(own.tasks.back());
        own.tasks.pop_back();
        own.approx_size.store(own.tasks.size(), std::memory_order_relaxed);
      }
    }
  }
  // 2) Externally injected work (FIFO).
  if (!task && injected_size_.load(std::memory_order_relaxed) != 0) {
    std::lock_guard<std::mutex> g(inject_mu_);
    if (!injected_.empty()) {
      task = std::move(injected_.front());
      injected_.pop_front();
      injected_size_.store(injected_.size(), std::memory_order_relaxed);
    }
  }
  // 3) Steal from the top (FIFO — the victim's oldest, typically largest
  //    pending work), starting past ourselves so victims rotate.
  if (!task) {
    const size_t num = deques_.size();
    const size_t start = (self == kNotAWorker ? 0 : self) + 1;
    for (size_t i = 0; i < num && !task; ++i) {
      const size_t v = (start + i) % num;
      if (v == self) continue;
      TaskDeque& victim = *deques_[v];
      if (victim.approx_size.load(std::memory_order_relaxed) == 0) continue;
      std::lock_guard<std::mutex> g(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        victim.approx_size.store(victim.tasks.size(),
                                 std::memory_order_relaxed);
        stolen = true;
      }
    }
  }
  if (!task) return false;
  (stolen ? steals_ : local_runs_).fetch_add(1, std::memory_order_relaxed);
  task(self);
  return true;
}

void WorkStealingPool::PushToOwnDeque(size_t self, PoolTask task) {
  TaskDeque& own = *deques_[self];
  std::lock_guard<std::mutex> g(own.mu);
  own.tasks.push_back(std::move(task));
  own.approx_size.store(own.tasks.size(), std::memory_order_relaxed);
}

void WorkStealingPool::Inject(PoolTask task) {
  std::lock_guard<std::mutex> g(inject_mu_);
  injected_.push_back(std::move(task));
  injected_size_.store(injected_.size(), std::memory_order_relaxed);
}

void WorkStealingPool::SignalWork() {
  work_epoch_.fetch_add(1, std::memory_order_release);
  // Serialize against sleepers' predicate checks (see ~WorkStealingPool).
  { std::lock_guard<std::mutex> g(sleep_mu_); }
  sleep_cv_.notify_all();
}

}  // namespace pverify
