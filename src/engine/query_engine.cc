#include "engine/query_engine.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "engine/submit_queue.h"

namespace pverify {

std::string_view ToString(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPoint:
      return "point";
    case QueryKind::kMin:
      return "min";
    case QueryKind::kMax:
      return "max";
    case QueryKind::kKnn:
      return "knn";
    case QueryKind::kCandidates:
      return "candidates";
    case QueryKind::kPoint2D:
      return "point2d";
  }
  return "?";
}

QueryRequest::QueryRequest(QueryRequest&& other) noexcept
    : kind(other.kind),
      q(other.q),
      q2(other.q2),
      k(other.k),
      options(std::move(other.options)),
      candidates(std::move(other.candidates)),
      payload_consumed(other.payload_consumed) {
  // The payload travels with this request; the source can no longer
  // produce it, so re-submitting the source is flagged as consumption.
  other.payload_consumed = true;
}

QueryRequest& QueryRequest::operator=(QueryRequest&& other) noexcept {
  if (this != &other) {
    kind = other.kind;
    q = other.q;
    q2 = other.q2;
    k = other.k;
    options = std::move(other.options);
    candidates = std::move(other.candidates);
    payload_consumed = other.payload_consumed;
    other.payload_consumed = true;
  }
  return *this;
}

QueryRequest QueryRequest::Point(double q, QueryOptions options) {
  QueryRequest r;
  r.kind = QueryKind::kPoint;
  r.q = q;
  r.options = std::move(options);
  return r;
}

QueryRequest QueryRequest::Point2D(pverify::Point2 q, QueryOptions options) {
  QueryRequest r;
  r.kind = QueryKind::kPoint2D;
  r.q2 = q;
  r.options = std::move(options);
  return r;
}

QueryRequest QueryRequest::Min(QueryOptions options) {
  QueryRequest r;
  r.kind = QueryKind::kMin;
  r.options = std::move(options);
  return r;
}

QueryRequest QueryRequest::Max(QueryOptions options) {
  QueryRequest r;
  r.kind = QueryKind::kMax;
  r.options = std::move(options);
  return r;
}

QueryRequest QueryRequest::Knn(double q, int k, QueryOptions options) {
  QueryRequest r;
  r.kind = QueryKind::kKnn;
  r.q = q;
  r.k = k;
  r.options = std::move(options);
  return r;
}

QueryRequest QueryRequest::Candidates(CandidateSet candidates,
                                      QueryOptions options) {
  QueryRequest r;
  r.kind = QueryKind::kCandidates;
  r.candidates = std::move(candidates);
  r.options = std::move(options);
  return r;
}

QueryResult ToQueryResult(QueryAnswer&& answer) {
  QueryResult result;
  result.ids = std::move(answer.ids);
  result.stats = std::move(answer.stats);
  result.candidate_probabilities =
      std::move(answer.candidate_probabilities);
  return result;
}

void AccumulateVerifierStages(const QueryStats& stats, EngineStats* agg) {
  for (const StageStats& stage : stats.verification.stages) {
    EngineStats::StageTotal* slot = nullptr;
    for (EngineStats::StageTotal& t : agg->verifier_stages) {
      if (t.name == stage.name) {
        slot = &t;
        break;
      }
    }
    if (slot == nullptr) {
      agg->verifier_stages.push_back(EngineStats::StageTotal{stage.name,
                                                             0.0, 0});
      slot = &agg->verifier_stages.back();
    }
    slot->ms += stage.ms;
    ++slot->runs;
  }
}

void AccumulateBatchResult(const QueryStats& stats, EngineStats* agg) {
  ++agg->queries;
  stats.AccumulateInto(agg->totals);
  AccumulateVerifierStages(stats, agg);
}

EngineStats MergeEngineStats(const std::vector<EngineStats>& parts) {
  EngineStats merged;
  for (const EngineStats& part : parts) {
    merged.queries += part.queries;
    merged.threads = std::max(merged.threads, part.threads);
    merged.wall_ms = std::max(merged.wall_ms, part.wall_ms);
    part.totals.AccumulateInto(merged.totals);
    for (const EngineStats::StageTotal& stage : part.verifier_stages) {
      EngineStats::StageTotal* slot = nullptr;
      for (EngineStats::StageTotal& t : merged.verifier_stages) {
        if (t.name == stage.name) {
          slot = &t;
          break;
        }
      }
      if (slot == nullptr) {
        merged.verifier_stages.push_back(
            EngineStats::StageTotal{stage.name, 0.0, 0});
        slot = &merged.verifier_stages.back();
      }
      slot->ms += stage.ms;
      slot->runs += stage.runs;
    }
  }
  return merged;
}

QueryEngine::QueryEngine(Dataset dataset, EngineOptions options)
    : executor_(std::move(dataset)),
      num_threads_(options.num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                            : options.num_threads) {
  worker_scratches_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    worker_scratches_.push_back(std::make_unique<QueryScratch>());
  }
}

QueryEngine::QueryEngine(Dataset2D dataset, EngineOptions options)
    : QueryEngine(Dataset{}, std::move(dataset), std::move(options)) {}

QueryEngine::QueryEngine(Dataset dataset, Dataset2D dataset2d,
                         EngineOptions options)
    : QueryEngine(std::move(dataset), options) {
  executor2d_.emplace(std::move(dataset2d), options.radial_pieces);
}

QueryEngine::~QueryEngine() = default;

QueryResult QueryEngine::Execute(QueryRequest request) {
  std::lock_guard<std::mutex> lock(serial_mu_);
  return ExecuteOne(std::move(request), &serial_scratch_);
}

ThreadPool& QueryEngine::BatchPool() {
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(num_threads_);
  return *pool_;
}

std::vector<QueryResult> QueryEngine::ExecuteBatch(
    std::vector<QueryRequest> requests, EngineStats* stats) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  std::vector<QueryResult> results(requests.size());
  Timer wall;
  BatchPool().ParallelFor(requests.size(), [&](size_t worker, size_t index) {
    results[index] = ExecuteOne(std::move(requests[index]),
                                worker_scratches_[worker].get());
  });
  if (stats != nullptr) {
    *stats = EngineStats{};
    stats->threads = num_threads_;
    stats->wall_ms = wall.ElapsedMs();
    for (const QueryResult& r : results) {
      AccumulateBatchResult(r.stats, stats);
    }
  }
  return results;
}

SubmitQueue* QueryEngine::EnsureSubmitQueue() {
  SubmitQueue* queue = submit_queue_ptr_.load(std::memory_order_acquire);
  if (queue != nullptr) return queue;
  std::call_once(submit_once_, [this] {
    submit_queue_ = std::make_unique<SubmitQueue>(
        [this](std::vector<PendingQuery>& batch) { RunSubmitted(batch); });
    submit_queue_ptr_.store(submit_queue_.get(), std::memory_order_release);
  });
  return submit_queue_ptr_.load(std::memory_order_acquire);
}

std::future<QueryResult> QueryEngine::Submit(QueryRequest request) {
  return EnsureSubmitQueue()->Submit(std::move(request));
}

SubmitQueueStats QueryEngine::SubmitStats() const {
  SubmitQueue* queue = submit_queue_ptr_.load(std::memory_order_acquire);
  return queue != nullptr ? queue->GetStats() : SubmitQueueStats{};
}

void QueryEngine::RunSubmitted(std::vector<PendingQuery>& batch) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  BatchPool().ParallelFor(batch.size(), [&](size_t worker, size_t index) {
    PendingQuery& item = batch[index];
    try {
      item.promise.set_value(ExecuteOne(std::move(item.request),
                                        worker_scratches_[worker].get()));
    } catch (...) {
      item.promise.set_exception(std::current_exception());
    }
  });
}

size_t QueryEngine::ScratchQueriesServed() const {
  std::scoped_lock lock(serial_mu_, batch_mu_);
  size_t total = serial_scratch_.queries_served;
  for (const auto& s : worker_scratches_) total += s->queries_served;
  return total;
}

size_t QueryEngine::ScratchBytes() const {
  std::scoped_lock lock(serial_mu_, batch_mu_);
  size_t total = serial_scratch_.ApproxBytes();
  for (const auto& s : worker_scratches_) total += s->ApproxBytes();
  return total;
}

QueryResult QueryEngine::ExecuteOne(QueryRequest&& request,
                                    QueryScratch* scratch) const {
  QueryResult result;
  switch (request.kind) {
    case QueryKind::kPoint:
      result = ToQueryResult(
          executor_.Execute(request.q, request.options, scratch));
      break;
    case QueryKind::kMin:
      result = ToQueryResult(executor_.ExecuteMin(request.options, scratch));
      break;
    case QueryKind::kMax:
      result = ToQueryResult(executor_.ExecuteMax(request.options, scratch));
      break;
    case QueryKind::kKnn: {
      Timer t;
      CknnAnswer answer =
          executor_.ExecuteKnn(request.q, request.k, request.options.params,
                               request.options.integration);
      result.stats.total_ms = t.ElapsedMs();
      result.stats.dataset_size = executor_.dataset().size();
      result.stats.candidates = answer.bounds.size();
      result.ids = answer.ids;
      result.knn = std::move(answer);
      break;
    }
    case QueryKind::kCandidates:
      // A moved-from kCandidates request carries no payload; evaluating it
      // would silently answer over an empty set.
      PV_DCHECK(!request.payload_consumed);
      result = ToQueryResult(ExecuteOnCandidates(std::move(request.candidates),
                                                 request.options, scratch));
      break;
    case QueryKind::kPoint2D:
      PV_CHECK_MSG(executor2d_.has_value(),
                   "kPoint2D request on an engine without a 2-D dataset");
      result = ToQueryResult(
          executor2d_->Execute(request.q2, request.options, scratch));
      break;
  }
  return result;
}

}  // namespace pverify
