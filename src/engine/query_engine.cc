#include "engine/query_engine.h"

#include <utility>

#include "common/timer.h"

namespace pverify {

std::string_view ToString(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPoint:
      return "point";
    case QueryKind::kMin:
      return "min";
    case QueryKind::kMax:
      return "max";
    case QueryKind::kKnn:
      return "knn";
    case QueryKind::kCandidates:
      return "candidates";
  }
  return "?";
}

QueryRequest QueryRequest::Point(double q, QueryOptions options) {
  QueryRequest r;
  r.kind = QueryKind::kPoint;
  r.q = q;
  r.options = std::move(options);
  return r;
}

QueryRequest QueryRequest::Min(QueryOptions options) {
  QueryRequest r;
  r.kind = QueryKind::kMin;
  r.options = std::move(options);
  return r;
}

QueryRequest QueryRequest::Max(QueryOptions options) {
  QueryRequest r;
  r.kind = QueryKind::kMax;
  r.options = std::move(options);
  return r;
}

QueryRequest QueryRequest::Knn(double q, int k, QueryOptions options) {
  QueryRequest r;
  r.kind = QueryKind::kKnn;
  r.q = q;
  r.k = k;
  r.options = std::move(options);
  return r;
}

QueryRequest QueryRequest::Candidates(CandidateSet candidates,
                                      QueryOptions options) {
  QueryRequest r;
  r.kind = QueryKind::kCandidates;
  r.candidates = std::move(candidates);
  r.options = std::move(options);
  return r;
}

namespace {

void MoveAnswerInto(QueryAnswer&& answer, QueryResult* result) {
  result->ids = std::move(answer.ids);
  result->stats = std::move(answer.stats);
  result->candidate_probabilities =
      std::move(answer.candidate_probabilities);
}

void AccumulateStages(const QueryStats& stats, EngineStats* agg) {
  for (const StageStats& stage : stats.verification.stages) {
    EngineStats::StageTotal* slot = nullptr;
    for (EngineStats::StageTotal& t : agg->verifier_stages) {
      if (t.name == stage.name) {
        slot = &t;
        break;
      }
    }
    if (slot == nullptr) {
      agg->verifier_stages.push_back(EngineStats::StageTotal{stage.name,
                                                             0.0, 0});
      slot = &agg->verifier_stages.back();
    }
    slot->ms += stage.ms;
    ++slot->runs;
  }
}

}  // namespace

QueryEngine::QueryEngine(Dataset dataset, EngineOptions options)
    : executor_(std::move(dataset)),
      pool_(options.num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                     : options.num_threads) {
  worker_scratches_.reserve(pool_.size());
  for (size_t i = 0; i < pool_.size(); ++i) {
    worker_scratches_.push_back(std::make_unique<QueryScratch>());
  }
}

QueryResult QueryEngine::Execute(QueryRequest request) {
  std::lock_guard<std::mutex> lock(serial_mu_);
  return ExecuteOne(std::move(request), &serial_scratch_);
}

std::vector<QueryResult> QueryEngine::ExecuteBatch(
    std::vector<QueryRequest> requests, EngineStats* stats) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  std::vector<QueryResult> results(requests.size());
  Timer wall;
  pool_.ParallelFor(requests.size(), [&](size_t worker, size_t index) {
    results[index] = ExecuteOne(std::move(requests[index]),
                                worker_scratches_[worker].get());
  });
  if (stats != nullptr) {
    *stats = EngineStats{};
    stats->queries = results.size();
    stats->threads = pool_.size();
    stats->wall_ms = wall.ElapsedMs();
    for (const QueryResult& r : results) {
      r.stats.AccumulateInto(stats->totals);
      AccumulateStages(r.stats, stats);
    }
  }
  return results;
}

size_t QueryEngine::ScratchQueriesServed() const {
  std::scoped_lock lock(serial_mu_, batch_mu_);
  size_t total = serial_scratch_.queries_served;
  for (const auto& s : worker_scratches_) total += s->queries_served;
  return total;
}

size_t QueryEngine::ScratchBytes() const {
  std::scoped_lock lock(serial_mu_, batch_mu_);
  size_t total = serial_scratch_.ApproxBytes();
  for (const auto& s : worker_scratches_) total += s->ApproxBytes();
  return total;
}

QueryResult QueryEngine::ExecuteOne(QueryRequest&& request,
                                    QueryScratch* scratch) const {
  QueryResult result;
  switch (request.kind) {
    case QueryKind::kPoint:
      MoveAnswerInto(executor_.Execute(request.q, request.options, scratch),
                     &result);
      break;
    case QueryKind::kMin:
      MoveAnswerInto(executor_.ExecuteMin(request.options, scratch), &result);
      break;
    case QueryKind::kMax:
      MoveAnswerInto(executor_.ExecuteMax(request.options, scratch), &result);
      break;
    case QueryKind::kKnn: {
      Timer t;
      CknnAnswer answer =
          executor_.ExecuteKnn(request.q, request.k, request.options.params,
                               request.options.integration);
      result.stats.total_ms = t.ElapsedMs();
      result.stats.dataset_size = executor_.dataset().size();
      result.stats.candidates = answer.bounds.size();
      result.ids = answer.ids;
      result.knn = std::move(answer);
      break;
    }
    case QueryKind::kCandidates:
      MoveAnswerInto(ExecuteOnCandidates(std::move(request.candidates),
                                         request.options, scratch),
                     &result);
      break;
  }
  return result;
}

}  // namespace pverify
