#include "engine/query_engine.h"

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/timer.h"
#include "engine/submit_queue.h"
#include "engine/thread_pool.h"

namespace pverify {

QueryEngine::QueryEngine(Dataset dataset, EngineOptions options)
    : executor_(std::move(dataset)),
      num_threads_(options.num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                            : options.num_threads),
      pool_kind_(options.pool) {
  worker_scratches_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    worker_scratches_.push_back(std::make_unique<QueryScratch>());
  }
}

QueryEngine::QueryEngine(Dataset2D dataset, EngineOptions options)
    : QueryEngine(Dataset{}, std::move(dataset), std::move(options)) {}

QueryEngine::QueryEngine(Dataset dataset, Dataset2D dataset2d,
                         EngineOptions options)
    : QueryEngine(std::move(dataset), options) {
  executor2d_.emplace(std::move(dataset2d), options.radial_pieces);
}

QueryEngine::~QueryEngine() = default;

QueryResult QueryEngine::Execute(QueryRequest request) {
  std::lock_guard<std::mutex> lock(serial_mu_);
  return ExecuteOne(std::move(request), &serial_scratch_);
}

WorkerPool& QueryEngine::BatchPool() {
  if (pool_ == nullptr) pool_ = MakeWorkerPool(pool_kind_, num_threads_);
  return *pool_;
}

std::vector<QueryResult> QueryEngine::ExecuteBatch(
    std::vector<QueryRequest> requests, EngineStats* stats) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  std::vector<QueryResult> results(requests.size());
  Timer wall;
  BatchPool().ParallelFor(requests.size(), [&](size_t worker, size_t index) {
    results[index] = ExecuteOne(std::move(requests[index]),
                                worker_scratches_[worker].get());
  });
  if (stats != nullptr) {
    *stats = EngineStats{};
    stats->threads = num_threads_;
    stats->wall_ms = wall.ElapsedMs();
    for (const QueryResult& r : results) {
      AccumulateBatchResult(r.stats, stats);
    }
  }
  return results;
}

SubmitQueue* QueryEngine::EnsureSubmitQueue() {
  SubmitQueue* queue = submit_queue_ptr_.load(std::memory_order_acquire);
  if (queue != nullptr) return queue;
  std::call_once(submit_once_, [this] {
    submit_queue_ = std::make_unique<SubmitQueue>(
        [this](std::vector<PendingQuery>& batch) { RunSubmitted(batch); });
    submit_queue_ptr_.store(submit_queue_.get(), std::memory_order_release);
  });
  return submit_queue_ptr_.load(std::memory_order_acquire);
}

std::future<QueryResult> QueryEngine::Submit(QueryRequest request) {
  return EnsureSubmitQueue()->Submit(std::move(request));
}

SubmitQueueStats QueryEngine::SubmitStats() const {
  SubmitQueue* queue = submit_queue_ptr_.load(std::memory_order_acquire);
  return queue != nullptr ? queue->GetStats() : SubmitQueueStats{};
}

void QueryEngine::RunSubmitted(std::vector<PendingQuery>& batch) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  BatchPool().ParallelFor(batch.size(), [&](size_t worker, size_t index) {
    PendingQuery& item = batch[index];
    try {
      item.promise.set_value(ExecuteOne(std::move(item.request),
                                        worker_scratches_[worker].get()));
    } catch (...) {
      item.promise.set_exception(std::current_exception());
    }
  });
}

size_t QueryEngine::ScratchQueriesServed() const {
  std::scoped_lock lock(serial_mu_, batch_mu_);
  size_t total = serial_scratch_.queries_served;
  for (const auto& s : worker_scratches_) total += s->queries_served;
  return total;
}

size_t QueryEngine::ScratchBytes() const {
  std::scoped_lock lock(serial_mu_, batch_mu_);
  size_t total = serial_scratch_.ApproxBytes();
  for (const auto& s : worker_scratches_) total += s->ApproxBytes();
  return total;
}

QueryResult QueryEngine::ExecuteOne(QueryRequest&& request,
                                    QueryScratch* scratch) const {
  return std::visit(
      [&](auto&& payload) {
        return Run(std::move(payload), scratch);
      },
      std::move(request.query));
}

QueryResult QueryEngine::Run(PointQuery&& q, QueryScratch* scratch) const {
  return ToQueryResult(executor_.Execute(q.q, q.options, scratch));
}

QueryResult QueryEngine::Run(MinQuery&& q, QueryScratch* scratch) const {
  return ToQueryResult(executor_.ExecuteMin(q.options, scratch));
}

QueryResult QueryEngine::Run(MaxQuery&& q, QueryScratch* scratch) const {
  return ToQueryResult(executor_.ExecuteMax(q.options, scratch));
}

QueryResult QueryEngine::Run(KnnQuery&& q, QueryScratch*) const {
  Timer t;
  CknnAnswer answer =
      executor_.ExecuteKnn(q.q, q.k, q.options.params, q.options.integration);
  QueryResult result;
  result.stats.total_ms = t.ElapsedMs();
  result.stats.dataset_size = executor_.dataset().size();
  result.stats.candidates = answer.bounds.size();
  result.ids = answer.ids;
  result.knn = std::move(answer);
  return result;
}

QueryResult QueryEngine::Run(CandidatesQuery&& q,
                             QueryScratch* scratch) const {
  // TakeCandidates throws on a consumed (moved-from) payload, so a
  // re-submitted request is rejected instead of silently answering over an
  // empty set.
  return ToQueryResult(
      ExecuteOnCandidates(q.TakeCandidates(), q.options, scratch));
}

QueryResult QueryEngine::Run(Point2DQuery&& q, QueryScratch* scratch) const {
  PV_CHECK_MSG(executor2d_.has_value(),
               "Point2DQuery on an engine without a 2-D dataset");
  return ToQueryResult(executor2d_->Execute(q.q, q.options, scratch));
}

QueryResult QueryEngine::Run(Knn2DQuery&& q, QueryScratch*) const {
  PV_CHECK_MSG(executor2d_.has_value(),
               "Knn2DQuery on an engine without a 2-D dataset");
  Timer t;
  CknnAnswer answer = executor2d_->ExecuteKnn(q.q, q.k, q.options.params,
                                              q.options.integration);
  QueryResult result;
  result.stats.total_ms = t.ElapsedMs();
  result.stats.dataset_size = executor2d_->dataset().size();
  result.stats.candidates = answer.bounds.size();
  result.ids = answer.ids;
  result.knn = std::move(answer);
  return result;
}

}  // namespace pverify
