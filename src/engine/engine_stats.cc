#include "engine/engine_stats.h"

#include <algorithm>

namespace pverify {

namespace {

EngineStats::StageTotal* StageSlot(const std::string& name,
                                   EngineStats* agg) {
  for (EngineStats::StageTotal& t : agg->verifier_stages) {
    if (t.name == name) return &t;
  }
  agg->verifier_stages.push_back(EngineStats::StageTotal{name, 0.0, 0});
  return &agg->verifier_stages.back();
}

}  // namespace

void AccumulateVerifierStages(const QueryStats& stats, EngineStats* agg) {
  for (const StageStats& stage : stats.verification.stages) {
    EngineStats::StageTotal* slot = StageSlot(stage.name, agg);
    slot->ms += stage.ms;
    ++slot->runs;
  }
}

void AccumulateBatchResult(const QueryStats& stats, EngineStats* agg) {
  ++agg->queries;
  stats.AccumulateInto(agg->totals);
  AccumulateVerifierStages(stats, agg);
  if (stats.served_from_cache) ++agg->cache.hits;
}

EngineStats MergeEngineStats(const std::vector<EngineStats>& parts) {
  EngineStats merged;
  for (const EngineStats& part : parts) {
    merged.queries += part.queries;
    merged.threads = std::max(merged.threads, part.threads);
    merged.wall_ms = std::max(merged.wall_ms, part.wall_ms);
    part.totals.AccumulateInto(merged.totals);
    for (const EngineStats::StageTotal& stage : part.verifier_stages) {
      EngineStats::StageTotal* slot = StageSlot(stage.name, &merged);
      slot->ms += stage.ms;
      slot->runs += stage.runs;
    }
    merged.cache.hits += part.cache.hits;
    merged.cache.misses += part.cache.misses;
    merged.cache.rechecks += part.cache.rechecks;
    merged.cache.bypasses += part.cache.bypasses;
    merged.cache.evictions += part.cache.evictions;
    merged.cache.invalidations += part.cache.invalidations;
    merged.cache.entries = std::max(merged.cache.entries, part.cache.entries);
    merged.cache.bytes = std::max(merged.cache.bytes, part.cache.bytes);
  }
  return merged;
}

}  // namespace pverify
