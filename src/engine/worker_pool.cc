#include "engine/worker_pool.h"

#include "common/check.h"
#include "engine/thread_pool.h"
#include "engine/work_steal_pool.h"

namespace pverify {

std::string_view ToString(PoolKind kind) {
  switch (kind) {
    case PoolKind::kGlobalQueue:
      return "global-queue";
    case PoolKind::kWorkStealing:
      return "work-stealing";
  }
  return "?";
}

WorkerPool::~WorkerPool() = default;

std::unique_ptr<WorkerPool> MakeWorkerPool(PoolKind kind,
                                           size_t num_threads) {
  switch (kind) {
    case PoolKind::kGlobalQueue:
      return std::make_unique<ThreadPool>(
          num_threads == 0 ? ThreadPool::DefaultThreadCount() : num_threads);
    case PoolKind::kWorkStealing:
      return std::make_unique<WorkStealingPool>(num_threads);
  }
  PV_CHECK_MSG(false, "unknown PoolKind");
  return nullptr;
}

}  // namespace pverify
