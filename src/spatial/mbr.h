// Minimum bounding rectangles in D dimensions with the point-to-MBR metrics
// needed by probabilistic NN filtering: MINDIST, MAXDIST and the classic
// MINMAXDIST bound of Roussopoulos et al., which guarantees that some object
// inside the MBR lies within that distance of the query point.
#ifndef PVERIFY_SPATIAL_MBR_H_
#define PVERIFY_SPATIAL_MBR_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace pverify {

template <int Dim>
struct Mbr {
  std::array<double, Dim> lo;
  std::array<double, Dim> hi;

  static Mbr Empty() {
    Mbr m;
    m.lo.fill(std::numeric_limits<double>::infinity());
    m.hi.fill(-std::numeric_limits<double>::infinity());
    return m;
  }

  bool IsEmpty() const { return lo[0] > hi[0]; }

  void Expand(const Mbr& other) {
    for (int d = 0; d < Dim; ++d) {
      lo[d] = std::min(lo[d], other.lo[d]);
      hi[d] = std::max(hi[d], other.hi[d]);
    }
  }

  /// Hyper-volume (length in 1-D, area in 2-D).
  double Volume() const {
    double v = 1.0;
    for (int d = 0; d < Dim; ++d) v *= std::max(0.0, hi[d] - lo[d]);
    return v;
  }

  /// Sum of edge lengths (margin), used as an R*-style tie breaker.
  double Margin() const {
    double m = 0.0;
    for (int d = 0; d < Dim; ++d) m += std::max(0.0, hi[d] - lo[d]);
    return m;
  }

  /// Volume increase if `other` were merged in.
  double Enlargement(const Mbr& other) const {
    Mbr merged = *this;
    merged.Expand(other);
    return merged.Volume() - Volume();
  }

  bool Intersects(const Mbr& other) const {
    for (int d = 0; d < Dim; ++d) {
      if (other.hi[d] < lo[d] || other.lo[d] > hi[d]) return false;
    }
    return true;
  }

  bool Contains(const Mbr& other) const {
    for (int d = 0; d < Dim; ++d) {
      if (other.lo[d] < lo[d] || other.hi[d] > hi[d]) return false;
    }
    return true;
  }

  /// MINDIST: smallest distance from q to any point of the MBR.
  double MinDist(const std::array<double, Dim>& q) const {
    double s = 0.0;
    for (int d = 0; d < Dim; ++d) {
      double diff = std::max({lo[d] - q[d], 0.0, q[d] - hi[d]});
      s += diff * diff;
    }
    return std::sqrt(s);
  }

  /// MAXDIST: largest distance from q to any point of the MBR.
  double MaxDist(const std::array<double, Dim>& q) const {
    double s = 0.0;
    for (int d = 0; d < Dim; ++d) {
      double diff = std::max(std::abs(q[d] - lo[d]), std::abs(q[d] - hi[d]));
      s += diff * diff;
    }
    return std::sqrt(s);
  }

  /// MINMAXDIST: an upper bound on the distance to the nearest object stored
  /// inside this MBR (assuming MBR faces touch objects). For each dimension
  /// k, take the nearer face in k and the farther corner in every other
  /// dimension; the minimum over k is the bound.
  double MinMaxDist(const std::array<double, Dim>& q) const {
    double far_sq_total = 0.0;
    std::array<double, Dim> far_sq;
    for (int d = 0; d < Dim; ++d) {
      double mid = 0.5 * (lo[d] + hi[d]);
      double rM = (q[d] >= mid) ? lo[d] : hi[d];  // farther face
      far_sq[d] = (q[d] - rM) * (q[d] - rM);
      far_sq_total += far_sq[d];
    }
    double best = std::numeric_limits<double>::infinity();
    for (int k = 0; k < Dim; ++k) {
      double mid = 0.5 * (lo[k] + hi[k]);
      double rm = (q[k] <= mid) ? lo[k] : hi[k];  // nearer face
      double s = far_sq_total - far_sq[k] + (q[k] - rm) * (q[k] - rm);
      best = std::min(best, s);
    }
    return std::sqrt(best);
  }
};

/// 1-D MBR from an interval.
inline Mbr<1> MakeInterval(double lo, double hi) {
  Mbr<1> m;
  m.lo[0] = lo;
  m.hi[0] = hi;
  return m;
}

/// 2-D MBR from corner coordinates.
inline Mbr<2> MakeBox(double x1, double y1, double x2, double y2) {
  Mbr<2> m;
  m.lo = {x1, y1};
  m.hi = {x2, y2};
  return m;
}

}  // namespace pverify

#endif  // PVERIFY_SPATIAL_MBR_H_
