// The filtering phase of the C-PNN framework (paper Fig. 3, first stage;
// technique of [8]).
//
// Objects whose minimum distance from q exceeds f_min — the smallest maximum
// distance of any object — can never be the nearest neighbor and are pruned
// with zero I/O over their pdfs. The survivors form the candidate set that
// verification operates on.
#ifndef PVERIFY_SPATIAL_FILTER_H_
#define PVERIFY_SPATIAL_FILTER_H_

#include <cstdint>
#include <vector>

#include "spatial/rtree.h"
#include "uncertain/distance2d.h"
#include "uncertain/uncertain_object.h"

namespace pverify {

/// Numerical slack used when comparing MINDIST against f_min: f_min is a
/// distance to a real object, so boundary objects (n_i == f_min) stay in the
/// candidate set, matching the zero-probability-but-unpruned convention.
/// Exposed so scatter/gather engines can reproduce the filter's cut exactly.
inline constexpr double kFilterBoundarySlack = 1e-12;

/// Result of the filtering phase.
struct FilterResult {
  /// f_min: minimum over all objects of MAXDIST(q, object).
  double fmin = 0.0;
  /// Indices (into the dataset) of objects with MINDIST <= f_min, i.e. the
  /// candidate set C.
  std::vector<uint32_t> candidates;
};

/// Index over a 1-D dataset for repeated PNN filtering.
class PnnFilter {
 public:
  /// Builds an STR-bulk-loaded R-tree over the objects' intervals.
  explicit PnnFilter(const Dataset& dataset);

  /// Runs the filtering phase for query point q.
  FilterResult Filter(double q) const;

  const RTree<1, uint32_t>& rtree() const { return rtree_; }

 private:
  RTree<1, uint32_t> rtree_;
  const Dataset* dataset_;  // not owned
};

/// Index over a 2-D dataset for repeated PNN filtering.
class PnnFilter2D {
 public:
  explicit PnnFilter2D(const Dataset2D& dataset);

  FilterResult Filter(Point2 q) const;

 private:
  RTree<2, uint32_t> rtree_;
  const Dataset2D* dataset_;  // not owned
};

/// Reference implementation: linear scan over the dataset. Used by tests to
/// validate the R-tree-based filter and by benches as an ablation baseline.
FilterResult FilterByScan(const Dataset& dataset, double q);
FilterResult FilterByScan2D(const Dataset2D& dataset, Point2 q);

/// k-NN filtering by scan: fmin becomes the k-th smallest far point and
/// candidates are the objects whose near point does not exceed it. Used by
/// the C-PkNN extension.
FilterResult FilterKByScan(const Dataset& dataset, double q, int k);

/// 2-D analogue: the same k-th-far-point rule over exact region distances
/// (UncertainObject2D::MinDist/MaxDist). Used by the 2-D C-PkNN pipeline.
FilterResult FilterKByScan2D(const Dataset2D& dataset, Point2 q, int k);

}  // namespace pverify

#endif  // PVERIFY_SPATIAL_FILTER_H_
