#include "spatial/bounds.h"

#include <algorithm>

namespace pverify {

DomainBounds ComputeDomainBounds(const Dataset& dataset) {
  DomainBounds b;
  if (dataset.empty()) return b;
  b.lo = dataset.front().lo();
  b.hi = dataset.front().hi();
  for (const UncertainObject& obj : dataset) {
    b.lo = std::min(b.lo, obj.lo());
    b.hi = std::max(b.hi, obj.hi());
  }
  return b;
}

Mbr<2> RegionMbr2D(const UncertainObject2D& obj) {
  if (obj.is_rect()) {
    const Rect2& r = obj.rect();
    return MakeBox(r.x1, r.y1, r.x2, r.y2);
  }
  const Circle2& c = obj.circle();
  return MakeBox(c.cx - c.r, c.cy - c.r, c.cx + c.r, c.cy + c.r);
}

ShardBounds2D ComputeShardBounds2D(const Dataset2D& dataset) {
  ShardBounds2D b;
  for (const UncertainObject2D& obj : dataset) {
    b.mbr.Expand(RegionMbr2D(obj));
  }
  return b;
}

std::vector<double> SmallestFarPoints(const Dataset& dataset, double q,
                                      size_t k) {
  std::vector<double> fars;
  fars.reserve(dataset.size());
  for (const UncertainObject& obj : dataset) fars.push_back(obj.MaxDist(q));
  const size_t keep = std::min(k, fars.size());
  std::partial_sort(fars.begin(), fars.begin() + keep, fars.end());
  fars.resize(keep);
  return fars;
}

std::vector<double> SmallestFarPoints2D(const Dataset2D& dataset, Point2 q,
                                        size_t k) {
  std::vector<double> fars;
  fars.reserve(dataset.size());
  for (const UncertainObject2D& obj : dataset) fars.push_back(obj.MaxDist(q));
  const size_t keep = std::min(k, fars.size());
  std::partial_sort(fars.begin(), fars.begin() + keep, fars.end());
  fars.resize(keep);
  return fars;
}

}  // namespace pverify
