// An in-memory R-tree supporting dynamic insertion (quadratic split) and STR
// bulk loading, with the branch-and-bound searches required by the PNN
// filtering phase of [8]: computing f_min = min_i MAXDIST(q, X_i) and
// collecting every object whose MINDIST is within f_min.
//
// The tree is templated on dimensionality and the leaf payload type so the
// same implementation indexes 1-D uncertainty intervals (the paper's focus)
// and 2-D regions (the extension).
#ifndef PVERIFY_SPATIAL_RTREE_H_
#define PVERIFY_SPATIAL_RTREE_H_

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"
#include "spatial/mbr.h"

namespace pverify {

template <int Dim, typename Value>
class RTree {
 public:
  static constexpr size_t kMaxEntries = 16;
  static constexpr size_t kMinEntries = 6;  // ~40% fill on splits

  struct Entry {
    Mbr<Dim> mbr;
    Value value;
  };

  RTree() = default;

  /// Inserts one entry (R-tree dynamic insertion with quadratic split).
  void Insert(const Mbr<Dim>& mbr, Value value) {
    if (!root_) {
      root_ = std::make_unique<Node>(/*leaf=*/true);
    }
    Node* leaf = ChooseLeaf(root_.get(), mbr);
    leaf->entries.push_back(Entry{mbr, std::move(value)});
    leaf->mbr.Expand(mbr);
    HandleOverflow(leaf);
    ++size_;
  }

  /// Sort-Tile-Recursive bulk load; replaces any existing content.
  static RTree BulkLoadSTR(std::vector<Entry> entries) {
    RTree tree;
    tree.size_ = entries.size();
    if (entries.empty()) return tree;

    // Pack leaves level by level until one node remains.
    std::vector<std::unique_ptr<Node>> level =
        PackLeaves(std::move(entries));
    while (level.size() > 1) {
      level = PackInternal(std::move(level));
    }
    tree.root_ = std::move(level.front());
    return tree;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Tree height (0 for an empty tree, 1 for a single leaf).
  int Height() const {
    int h = 0;
    for (const Node* n = root_.get(); n != nullptr;
         n = n->leaf ? nullptr : n->children.front().get()) {
      ++h;
    }
    return h;
  }

  /// Number of nodes (for structure diagnostics/tests).
  size_t NodeCount() const { return root_ ? CountNodes(root_.get()) : 0; }

  /// Invokes fn(mbr, value) for every entry intersecting `region`.
  void ForEachIntersecting(
      const Mbr<Dim>& region,
      const std::function<void(const Mbr<Dim>&, const Value&)>& fn) const {
    if (root_) ForEachIntersectingImpl(root_.get(), region, fn);
  }

  /// Collects the payloads of all entries intersecting `region`.
  std::vector<Value> CollectIntersecting(const Mbr<Dim>& region) const {
    std::vector<Value> out;
    ForEachIntersecting(region, [&out](const Mbr<Dim>&, const Value& v) {
      out.push_back(v);
    });
    return out;
  }

  /// Branch-and-bound computation of min over entries of MAXDIST(q, entry).
  /// This is the f_min of the PNN filtering step: the far point of the
  /// candidate whose far point is smallest. Returns +inf on an empty tree.
  ///
  /// Note on bounds: leaf entries store the exact uncertainty region, so
  /// their MAXDIST is exact. For internal nodes, every object inside lies
  /// within the node MBR, hence MAXDIST(q, node) upper-bounds the best far
  /// point below it (the point-data MINMAXDIST bound does NOT apply to
  /// extended objects and is deliberately not used here).
  double MinFarPoint(const std::array<double, Dim>& q) const {
    double best = std::numeric_limits<double>::infinity();
    if (!root_) return best;
    using Item = std::pair<double, const Node*>;  // (mindist, node)
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
    heap.emplace(root_->mbr.MinDist(q), root_.get());
    while (!heap.empty()) {
      auto [mind, node] = heap.top();
      heap.pop();
      if (mind > best) continue;  // no entry below can beat best
      if (node->leaf) {
        for (const Entry& e : node->entries) {
          best = std::min(best, e.mbr.MaxDist(q));
        }
      } else {
        for (const auto& child : node->children) {
          best = std::min(best, child->mbr.MaxDist(q));
          double child_mind = child->mbr.MinDist(q);
          if (child_mind <= best) heap.emplace(child_mind, child.get());
        }
      }
    }
    return best;
  }

  /// Entries whose MINDIST(q, entry) <= radius, i.e. the ball-overlap query
  /// used to retrieve the PNN candidate set.
  std::vector<Value> WithinDistance(const std::array<double, Dim>& q,
                                    double radius) const {
    std::vector<Value> out;
    if (!root_) return out;
    std::vector<const Node*> stack = {root_.get()};
    while (!stack.empty()) {
      const Node* node = stack.back();
      stack.pop_back();
      if (node->mbr.MinDist(q) > radius) continue;
      if (node->leaf) {
        for (const Entry& e : node->entries) {
          if (e.mbr.MinDist(q) <= radius) out.push_back(e.value);
        }
      } else {
        for (const auto& child : node->children) {
          stack.push_back(child.get());
        }
      }
    }
    return out;
  }

  /// k nearest entries by MINDIST (best-first). Ties broken arbitrarily.
  std::vector<Value> NearestByMinDist(const std::array<double, Dim>& q,
                                      size_t k) const {
    std::vector<Value> out;
    if (!root_ || k == 0) return out;
    struct Item {
      double dist;
      const Node* node;   // nullptr when this is an entry
      const Entry* entry;
      bool operator>(const Item& o) const { return dist > o.dist; }
    };
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
    heap.push({root_->mbr.MinDist(q), root_.get(), nullptr});
    while (!heap.empty() && out.size() < k) {
      Item item = heap.top();
      heap.pop();
      if (item.entry != nullptr) {
        out.push_back(item.entry->value);
      } else if (item.node->leaf) {
        for (const Entry& e : item.node->entries) {
          heap.push({e.mbr.MinDist(q), nullptr, &e});
        }
      } else {
        for (const auto& child : item.node->children) {
          heap.push({child->mbr.MinDist(q), child.get(), nullptr});
        }
      }
    }
    return out;
  }

  /// Verifies structural invariants (MBR containment, fanout bounds, uniform
  /// leaf depth); used by tests. Returns false on violation.
  bool CheckInvariants() const {
    if (!root_) return true;
    int leaf_depth = -1;
    return CheckNode(root_.get(), 0, &leaf_depth, /*is_root=*/true);
  }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) { mbr = Mbr<Dim>::Empty(); }
    bool leaf;
    Mbr<Dim> mbr;
    std::vector<Entry> entries;                   // leaf payloads
    std::vector<std::unique_ptr<Node>> children;  // internal children
    Node* parent = nullptr;

    size_t Fanout() const { return leaf ? entries.size() : children.size(); }

    void RecomputeMbr() {
      mbr = Mbr<Dim>::Empty();
      if (leaf) {
        for (const Entry& e : entries) mbr.Expand(e.mbr);
      } else {
        for (const auto& c : children) mbr.Expand(c->mbr);
      }
    }
  };

  Node* ChooseLeaf(Node* node, const Mbr<Dim>& mbr) {
    while (!node->leaf) {
      Node* best = nullptr;
      double best_enl = std::numeric_limits<double>::infinity();
      double best_vol = std::numeric_limits<double>::infinity();
      for (const auto& child : node->children) {
        double enl = child->mbr.Enlargement(mbr);
        double vol = child->mbr.Volume();
        if (enl < best_enl || (enl == best_enl && vol < best_vol)) {
          best = child.get();
          best_enl = enl;
          best_vol = vol;
        }
      }
      best->mbr.Expand(mbr);
      node = best;
    }
    return node;
  }

  void HandleOverflow(Node* node) {
    while (node != nullptr && node->Fanout() > kMaxEntries) {
      Node* sibling = SplitNode(node);
      Node* parent = node->parent;
      if (parent == nullptr) {
        // Grow a new root.
        auto new_root = std::make_unique<Node>(/*leaf=*/false);
        auto old_root = std::move(root_);
        old_root->parent = new_root.get();
        sibling->parent = new_root.get();
        new_root->children.push_back(std::move(old_root));
        new_root->children.emplace_back(sibling);
        new_root->RecomputeMbr();
        root_ = std::move(new_root);
        return;
      }
      sibling->parent = parent;
      parent->children.emplace_back(sibling);
      parent->RecomputeMbr();
      node = parent;
    }
    // Refresh ancestor MBRs.
    while (node != nullptr) {
      node->RecomputeMbr();
      node = node->parent;
    }
  }

  // Quadratic split (Guttman). Returns the newly allocated sibling; the
  // caller owns the raw pointer and must attach it to a parent.
  Node* SplitNode(Node* node) {
    Node* sibling = new Node(node->leaf);

    auto mbr_of = [&](size_t i) -> const Mbr<Dim>& {
      return node->leaf ? node->entries[i].mbr : node->children[i]->mbr;
    };
    const size_t n = node->Fanout();

    // Pick the pair of seeds wasting the most volume.
    size_t seed_a = 0, seed_b = 1;
    double worst = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        Mbr<Dim> merged = mbr_of(i);
        merged.Expand(mbr_of(j));
        double waste =
            merged.Volume() - mbr_of(i).Volume() - mbr_of(j).Volume();
        if (waste > worst) {
          worst = waste;
          seed_a = i;
          seed_b = j;
        }
      }
    }

    std::vector<char> assigned(n, 0);  // 0 = pending, 1 = stay, 2 = sibling
    assigned[seed_a] = 1;
    assigned[seed_b] = 2;
    Mbr<Dim> group_a = mbr_of(seed_a);
    Mbr<Dim> group_b = mbr_of(seed_b);
    size_t count_a = 1, count_b = 1;
    size_t pending = n - 2;

    while (pending > 0) {
      // Force-assign when one group must take everything left to reach the
      // minimum fill.
      if (count_a + pending == kMinEntries) {
        for (size_t i = 0; i < n; ++i) {
          if (!assigned[i]) {
            assigned[i] = 1;
            group_a.Expand(mbr_of(i));
          }
        }
        break;
      }
      if (count_b + pending == kMinEntries) {
        for (size_t i = 0; i < n; ++i) {
          if (!assigned[i]) {
            assigned[i] = 2;
            group_b.Expand(mbr_of(i));
          }
        }
        break;
      }
      // Pick the pending item with the greatest preference difference.
      size_t pick = n;
      double best_diff = -1.0;
      double enl_a_pick = 0.0, enl_b_pick = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (assigned[i]) continue;
        double ea = group_a.Enlargement(mbr_of(i));
        double eb = group_b.Enlargement(mbr_of(i));
        double diff = std::abs(ea - eb);
        if (diff > best_diff) {
          best_diff = diff;
          pick = i;
          enl_a_pick = ea;
          enl_b_pick = eb;
        }
      }
      PV_DCHECK(pick < n);
      bool to_a;
      if (enl_a_pick != enl_b_pick) {
        to_a = enl_a_pick < enl_b_pick;
      } else if (group_a.Volume() != group_b.Volume()) {
        to_a = group_a.Volume() < group_b.Volume();
      } else {
        to_a = count_a <= count_b;
      }
      assigned[pick] = to_a ? 1 : 2;
      if (to_a) {
        group_a.Expand(mbr_of(pick));
        ++count_a;
      } else {
        group_b.Expand(mbr_of(pick));
        ++count_b;
      }
      --pending;
    }

    // Move group-2 members into the sibling.
    if (node->leaf) {
      std::vector<Entry> keep;
      keep.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (assigned[i] == 2) {
          sibling->entries.push_back(std::move(node->entries[i]));
        } else {
          keep.push_back(std::move(node->entries[i]));
        }
      }
      node->entries = std::move(keep);
    } else {
      std::vector<std::unique_ptr<Node>> keep;
      keep.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (assigned[i] == 2) {
          node->children[i]->parent = sibling;
          sibling->children.push_back(std::move(node->children[i]));
        } else {
          keep.push_back(std::move(node->children[i]));
        }
      }
      node->children = std::move(keep);
    }
    node->RecomputeMbr();
    sibling->RecomputeMbr();
    return sibling;
  }

  // --- STR bulk loading -----------------------------------------------

  template <typename Item>
  static void StrSort(std::vector<Item>& items,
                      const std::function<Mbr<Dim>(const Item&)>& mbr_of) {
    auto center = [&mbr_of](const Item& it, int d) {
      Mbr<Dim> m = mbr_of(it);
      return 0.5 * (m.lo[d] + m.hi[d]);
    };
    std::sort(items.begin(), items.end(),
              [&](const Item& a, const Item& b) {
                return center(a, 0) < center(b, 0);
              });
    if constexpr (Dim >= 2) {
      // Tile along x, sort tiles along y.
      size_t n = items.size();
      size_t per_node = kMaxEntries;
      size_t num_nodes = (n + per_node - 1) / per_node;
      size_t slices = static_cast<size_t>(
          std::ceil(std::sqrt(static_cast<double>(num_nodes))));
      size_t per_slice = slices == 0 ? n : (n + slices - 1) / slices;
      for (size_t s = 0; s * per_slice < n; ++s) {
        auto begin = items.begin() + static_cast<ptrdiff_t>(s * per_slice);
        auto end = items.begin() +
                   static_cast<ptrdiff_t>(std::min(n, (s + 1) * per_slice));
        std::sort(begin, end, [&](const Item& a, const Item& b) {
          return center(a, 1) < center(b, 1);
        });
      }
    }
  }

  static std::vector<std::unique_ptr<Node>> PackLeaves(
      std::vector<Entry> entries) {
    std::function<Mbr<Dim>(const Entry&)> mbr_of =
        [](const Entry& e) { return e.mbr; };
    StrSort(entries, mbr_of);
    std::vector<std::unique_ptr<Node>> leaves;
    for (size_t i = 0; i < entries.size(); i += kMaxEntries) {
      auto leaf = std::make_unique<Node>(/*leaf=*/true);
      size_t end = std::min(entries.size(), i + kMaxEntries);
      for (size_t j = i; j < end; ++j) {
        leaf->entries.push_back(std::move(entries[j]));
      }
      leaf->RecomputeMbr();
      leaves.push_back(std::move(leaf));
    }
    return leaves;
  }

  static std::vector<std::unique_ptr<Node>> PackInternal(
      std::vector<std::unique_ptr<Node>> level) {
    std::function<Mbr<Dim>(const std::unique_ptr<Node>&)> mbr_of =
        [](const std::unique_ptr<Node>& n) { return n->mbr; };
    StrSort(level, mbr_of);
    std::vector<std::unique_ptr<Node>> parents;
    for (size_t i = 0; i < level.size(); i += kMaxEntries) {
      auto parent = std::make_unique<Node>(/*leaf=*/false);
      size_t end = std::min(level.size(), i + kMaxEntries);
      for (size_t j = i; j < end; ++j) {
        level[j]->parent = parent.get();
        parent->children.push_back(std::move(level[j]));
      }
      parent->RecomputeMbr();
      parents.push_back(std::move(parent));
    }
    return parents;
  }

  // --- misc --------------------------------------------------------------

  static void ForEachIntersectingImpl(
      const Node* node, const Mbr<Dim>& region,
      const std::function<void(const Mbr<Dim>&, const Value&)>& fn) {
    if (!node->mbr.Intersects(region)) return;
    if (node->leaf) {
      for (const Entry& e : node->entries) {
        if (e.mbr.Intersects(region)) fn(e.mbr, e.value);
      }
    } else {
      for (const auto& child : node->children) {
        ForEachIntersectingImpl(child.get(), region, fn);
      }
    }
  }

  static size_t CountNodes(const Node* node) {
    size_t n = 1;
    if (!node->leaf) {
      for (const auto& c : node->children) n += CountNodes(c.get());
    }
    return n;
  }

  bool CheckNode(const Node* node, int depth, int* leaf_depth,
                 bool is_root) const {
    if (node->Fanout() > kMaxEntries) return false;
    if (!is_root && node->Fanout() < 1) return false;
    if (node->leaf) {
      if (*leaf_depth == -1) *leaf_depth = depth;
      if (*leaf_depth != depth) return false;
      Mbr<Dim> agg = Mbr<Dim>::Empty();
      for (const Entry& e : node->entries) agg.Expand(e.mbr);
      for (int d = 0; d < Dim; ++d) {
        if (agg.lo[d] < node->mbr.lo[d] - 1e-9 ||
            agg.hi[d] > node->mbr.hi[d] + 1e-9) {
          return false;
        }
      }
      return true;
    }
    for (const auto& child : node->children) {
      if (!node->mbr.Contains(child->mbr)) return false;
      if (!CheckNode(child.get(), depth + 1, leaf_depth, false)) return false;
    }
    return true;
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace pverify

#endif  // PVERIFY_SPATIAL_RTREE_H_
