// Per-shard domain-bound helpers for scatter/gather query planning.
//
// A sharded engine prunes shards with interval arithmetic over each shard's
// domain bounds (the MBR of its objects' uncertainty intervals). Exactness
// matters: the sharded path must produce bit-identical answers to the
// unsharded one, so every bound here is computed with the *same floating
// point pipeline* as the per-object quantity it prunes against — the
// Mbr-based (sqrt) forms mirror the R-tree filter's entry metrics, the
// interval (plain) forms mirror UncertainObject::MinDist/MaxDist. Because
// an object's interval is contained in its shard's bounds and every
// operation involved is monotone under rounding, shard-level distances
// never exceed object-level ones within the same pipeline, which makes the
// pruning exact rather than merely approximate.
#ifndef PVERIFY_SPATIAL_BOUNDS_H_
#define PVERIFY_SPATIAL_BOUNDS_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "spatial/mbr.h"
#include "uncertain/distance2d.h"
#include "uncertain/uncertain_object.h"

namespace pverify {

/// 1-D domain bounds of a dataset: the MBR of every uncertainty interval.
struct DomainBounds {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  bool empty() const { return lo > hi; }
};

/// Bounds of a dataset, accumulated in dataset order (the same loop shape
/// CpnnExecutor uses for its domain, so the values agree bitwise).
DomainBounds ComputeDomainBounds(const Dataset& dataset);

/// MINDIST from q to the bounds, via the Mbr<1> metric (the R-tree filter's
/// pipeline). Lower-bounds Mbr::MinDist of every contained interval.
inline double MbrMinDistToBounds(double q, const DomainBounds& b) {
  if (b.empty()) return std::numeric_limits<double>::infinity();
  return MakeInterval(b.lo, b.hi).MinDist({q});
}

/// MAXDIST from q to the bounds, via the Mbr<1> metric. Upper-bounds
/// Mbr::MaxDist of every contained interval.
inline double MbrMaxDistToBounds(double q, const DomainBounds& b) {
  if (b.empty()) return -std::numeric_limits<double>::infinity();
  return MakeInterval(b.lo, b.hi).MaxDist({q});
}

/// MINDIST from q to the bounds, via the interval arithmetic of
/// UncertainObject::MinDist. Lower-bounds MinDist of every contained object.
inline double IntervalMinDistToBounds(double q, const DomainBounds& b) {
  if (b.empty()) return std::numeric_limits<double>::infinity();
  if (q < b.lo) return b.lo - q;
  if (q > b.hi) return q - b.hi;
  return 0.0;
}

/// MAXDIST from q to the bounds, via the interval arithmetic of
/// UncertainObject::MaxDist. Upper-bounds MaxDist of every contained object.
inline double IntervalMaxDistToBounds(double q, const DomainBounds& b) {
  if (b.empty()) return -std::numeric_limits<double>::infinity();
  double a = q - b.lo;
  double c = b.hi - q;
  return a > c ? a : c;
}

/// The min(k, |dataset|) smallest far points (UncertainObject::MaxDist) of
/// the dataset w.r.t. q, ascending. A sharded k-NN filter merges these
/// per-shard lists to recover the global k-th far point exactly.
std::vector<double> SmallestFarPoints(const Dataset& dataset, double q,
                                      size_t k);

/// 2-D analogue over exact region far points (UncertainObject2D::MaxDist —
/// the same arithmetic FilterKByScan2D ranks), so the sharded 2-D k-NN
/// merge recovers FilterKByScan2D's k-th far point bit for bit.
std::vector<double> SmallestFarPoints2D(const Dataset2D& dataset, Point2 q,
                                        size_t k);

/// Bounding box of a 2-D uncertainty region — the exact boxes the 2-D
/// R-tree indexes (rectangle as-is, disk as center ± radius), so shard
/// bounds accumulate through the same geometry as the filter.
Mbr<2> RegionMbr2D(const UncertainObject2D& obj);

/// 2-D domain bounds of a shard: the MBR of every region's bounding box.
/// The Mbr<2> MINDIST/MAXDIST metrics sandwich every contained object's
/// exact MinDist/MaxDist (the box contains the region and the shard MBR
/// contains the box), which is what makes 2-D shard pruning safe.
struct ShardBounds2D {
  Mbr<2> mbr = Mbr<2>::Empty();

  bool empty() const { return mbr.IsEmpty(); }
};

/// Bounds of a 2-D dataset, accumulated in dataset order.
ShardBounds2D ComputeShardBounds2D(const Dataset2D& dataset);

/// MINDIST from q to the bounds via the Mbr<2> metric (the 2-D R-tree
/// pipeline). Lower-bounds MinDist of every contained region.
inline double MbrMinDistToBounds2D(Point2 q, const ShardBounds2D& b) {
  if (b.empty()) return std::numeric_limits<double>::infinity();
  return b.mbr.MinDist({q.x, q.y});
}

/// MAXDIST from q to the bounds via the Mbr<2> metric. Upper-bounds
/// MaxDist of every contained region.
inline double MbrMaxDistToBounds2D(Point2 q, const ShardBounds2D& b) {
  if (b.empty()) return -std::numeric_limits<double>::infinity();
  return b.mbr.MaxDist({q.x, q.y});
}

}  // namespace pverify

#endif  // PVERIFY_SPATIAL_BOUNDS_H_
