#include "spatial/filter.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "spatial/bounds.h"

namespace pverify {
namespace {

// See kFilterBoundarySlack in the header for the rationale.
constexpr double kBoundarySlack = kFilterBoundarySlack;

}  // namespace

PnnFilter::PnnFilter(const Dataset& dataset) : dataset_(&dataset) {
  std::vector<RTree<1, uint32_t>::Entry> entries;
  entries.reserve(dataset.size());
  for (uint32_t i = 0; i < dataset.size(); ++i) {
    entries.push_back({MakeInterval(dataset[i].lo(), dataset[i].hi()), i});
  }
  rtree_ = RTree<1, uint32_t>::BulkLoadSTR(std::move(entries));
}

FilterResult PnnFilter::Filter(double q) const {
  FilterResult result;
  if (rtree_.empty()) return result;
  std::array<double, 1> pt = {q};
  result.fmin = rtree_.MinFarPoint(pt);
  result.candidates =
      rtree_.WithinDistance(pt, result.fmin + kBoundarySlack);
  std::sort(result.candidates.begin(), result.candidates.end());
  return result;
}

PnnFilter2D::PnnFilter2D(const Dataset2D& dataset) : dataset_(&dataset) {
  std::vector<RTree<2, uint32_t>::Entry> entries;
  entries.reserve(dataset.size());
  for (uint32_t i = 0; i < dataset.size(); ++i) {
    entries.push_back({RegionMbr2D(dataset[i]), i});
  }
  rtree_ = RTree<2, uint32_t>::BulkLoadSTR(std::move(entries));
}

FilterResult PnnFilter2D::Filter(Point2 q) const {
  FilterResult result;
  if (rtree_.empty()) return result;
  std::array<double, 2> pt = {q.x, q.y};
  // The MBR MAXDIST over-estimates a disk's true far point (corner vs.
  // tangent), so refine f_min with exact region distances over a small
  // superset fetched with the MBR bound.
  double fmin_mbr = rtree_.MinFarPoint(pt);
  double fmin = std::numeric_limits<double>::infinity();
  for (uint32_t idx : rtree_.WithinDistance(pt, fmin_mbr + kBoundarySlack)) {
    fmin = std::min(fmin, (*dataset_)[idx].MaxDist(q));
  }
  result.fmin = fmin;
  std::vector<uint32_t> coarse =
      rtree_.WithinDistance(pt, fmin + kBoundarySlack);
  for (uint32_t idx : coarse) {
    if ((*dataset_)[idx].MinDist(q) <= fmin + kBoundarySlack) {
      result.candidates.push_back(idx);
    }
  }
  std::sort(result.candidates.begin(), result.candidates.end());
  return result;
}

FilterResult FilterByScan(const Dataset& dataset, double q) {
  FilterResult result;
  if (dataset.empty()) return result;
  double fmin = std::numeric_limits<double>::infinity();
  for (const UncertainObject& obj : dataset) {
    fmin = std::min(fmin, obj.MaxDist(q));
  }
  result.fmin = fmin;
  for (uint32_t i = 0; i < dataset.size(); ++i) {
    if (dataset[i].MinDist(q) <= fmin + kBoundarySlack) {
      result.candidates.push_back(i);
    }
  }
  return result;
}

FilterResult FilterKByScan(const Dataset& dataset, double q, int k) {
  PV_CHECK_MSG(k >= 1, "k must be positive");
  FilterResult result;
  if (dataset.empty()) return result;
  std::vector<double> fars;
  fars.reserve(dataset.size());
  for (const UncertainObject& obj : dataset) fars.push_back(obj.MaxDist(q));
  size_t kth = std::min(dataset.size(), static_cast<size_t>(k)) - 1;
  std::nth_element(fars.begin(), fars.begin() + kth, fars.end());
  result.fmin = fars[kth];
  for (uint32_t i = 0; i < dataset.size(); ++i) {
    if (dataset[i].MinDist(q) <= result.fmin + kBoundarySlack) {
      result.candidates.push_back(i);
    }
  }
  return result;
}

FilterResult FilterKByScan2D(const Dataset2D& dataset, Point2 q, int k) {
  PV_CHECK_MSG(k >= 1, "k must be positive");
  FilterResult result;
  if (dataset.empty()) return result;
  std::vector<double> fars;
  fars.reserve(dataset.size());
  for (const UncertainObject2D& obj : dataset) fars.push_back(obj.MaxDist(q));
  size_t kth = std::min(dataset.size(), static_cast<size_t>(k)) - 1;
  std::nth_element(fars.begin(), fars.begin() + kth, fars.end());
  result.fmin = fars[kth];
  for (uint32_t i = 0; i < dataset.size(); ++i) {
    if (dataset[i].MinDist(q) <= result.fmin + kBoundarySlack) {
      result.candidates.push_back(i);
    }
  }
  return result;
}

FilterResult FilterByScan2D(const Dataset2D& dataset, Point2 q) {
  FilterResult result;
  if (dataset.empty()) return result;
  double fmin = std::numeric_limits<double>::infinity();
  for (const UncertainObject2D& obj : dataset) {
    fmin = std::min(fmin, obj.MaxDist(q));
  }
  result.fmin = fmin;
  for (uint32_t i = 0; i < dataset.size(); ++i) {
    if (dataset[i].MinDist(q) <= fmin + kBoundarySlack) {
      result.candidates.push_back(i);
    }
  }
  return result;
}

}  // namespace pverify
