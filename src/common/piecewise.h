// Piecewise-constant step functions with O(log n) point queries and exact
// integrals.
//
// This is the numeric backbone of pverify: uncertainty pdfs are represented
// as step functions (histograms), so distance pdfs obtained by folding around
// a query point stay step functions, and distance cdfs are their exact
// piecewise-linear integrals. All verifier math (subregion probabilities
// s_ij, cdf values D_i(e_j)) reduces to queries on this class.
#ifndef PVERIFY_COMMON_PIECEWISE_H_
#define PVERIFY_COMMON_PIECEWISE_H_

#include <cstddef>
#include <vector>

namespace pverify {

/// A non-negative step function with bounded support.
///
/// The function is described by n+1 strictly increasing breakpoints
/// x_0 < x_1 < ... < x_n and n values v_0..v_{n-1}; it evaluates to v_i on
/// [x_i, x_{i+1}) and to 0 outside [x_0, x_n]. Cumulative integrals are
/// precomputed so Value() and IntegralTo() are O(log n).
class StepFunction {
 public:
  StepFunction() = default;

  /// Builds from breakpoints and per-piece values. Requires breaks strictly
  /// increasing, values.size() + 1 == breaks.size(), values non-negative.
  StepFunction(std::vector<double> breaks, std::vector<double> values);

  /// Rebuilds this function in place from raw ranges, reusing the existing
  /// vectors' capacity: same validation and cumulative-integral arithmetic
  /// as the constructor, but no allocation once the capacities cover the
  /// piece count. `breaks` must hold `pieces` + 1 entries.
  void Assign(const double* breaks, const double* values, size_t pieces);

  /// Convenience: single piece of the given height on [lo, hi].
  static StepFunction Constant(double lo, double hi, double height);

  /// True when the function has no pieces (identically zero).
  bool empty() const { return values_.empty(); }

  size_t num_pieces() const { return values_.size(); }
  double support_lo() const { return breaks_.empty() ? 0.0 : breaks_.front(); }
  double support_hi() const { return breaks_.empty() ? 0.0 : breaks_.back(); }

  const std::vector<double>& breaks() const { return breaks_; }
  const std::vector<double>& values() const { return values_; }

  /// Function value at x (0 outside the support; right-continuous inside,
  /// except the last breakpoint which evaluates to the last piece's value).
  double Value(double x) const;

  /// Integral from the start of the support to x, clamped to the support.
  /// This is the exact piecewise-linear antiderivative.
  double IntegralTo(double x) const;

  /// Batched IntegralTo over a sorted (non-decreasing) batch of query
  /// points: out[i] = IntegralTo(xs[i]). One merge-scan over the
  /// breakpoints evaluates the whole batch in O(num_pieces + n) — no
  /// binary searches — performing for every point the exact arithmetic of
  /// the scalar IntegralTo, so results are bit-identical to a per-point
  /// loop. Duplicate and out-of-support points are fine; `out` may alias
  /// `xs`.
  void IntegralToSorted(const double* xs, size_t n, double* out) const;

  /// Batched IntegralTo without the sortedness requirement: a per-point
  /// binary-search loop, kept as the fallback for unsorted batches.
  /// Bit-identical to calling IntegralTo point by point (it is that loop).
  void IntegralToMany(const double* xs, size_t n, double* out) const;

  /// Integral over [a, b] (exact; a may exceed b, in which case returns 0).
  double IntegralBetween(double a, double b) const;

  /// Total integral over the support.
  double TotalMass() const { return cum_.empty() ? 0.0 : cum_.back(); }

  /// Smallest x with IntegralTo(x) >= p. Requires 0 <= p <= TotalMass().
  /// Used for inverse-cdf sampling by the Monte-Carlo baseline.
  double InverseIntegral(double p) const;

  /// Returns a copy scaled by the (non-negative) factor.
  StepFunction Scaled(double factor) const;

  /// Returns a copy scaled so TotalMass() == 1. Requires positive mass.
  StepFunction Normalized() const;

  /// Index of the piece containing x; requires x within the support.
  size_t PieceIndex(double x) const;

  /// Approximate heap footprint of the owned vectors (capacity, not size).
  size_t ApproxBytes() const {
    return (breaks_.capacity() + values_.capacity() + cum_.capacity()) *
           sizeof(double);
  }

 private:
  void ValidateAndBuildCum();

  std::vector<double> breaks_;  // n+1 breakpoints
  std::vector<double> values_;  // n piece heights
  std::vector<double> cum_;     // n+1 cumulative integrals; cum_[0] == 0
};

/// Merges two sorted breakpoint lists, dropping near-duplicates (within eps).
std::vector<double> MergeBreakpoints(const std::vector<double>& a,
                                     const std::vector<double>& b,
                                     double eps = 1e-12);

/// Sorts, then removes entries closer than eps to their predecessor.
std::vector<double> SortedUnique(std::vector<double> xs, double eps = 1e-12);

/// In-place SortedUnique: same semantics, no allocation — for hot paths
/// that reuse the vector's capacity across calls.
void SortedUniqueInPlace(std::vector<double>& xs, double eps = 1e-12);

}  // namespace pverify

#endif  // PVERIFY_COMMON_PIECEWISE_H_
