#include "common/integrate.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/check.h"

namespace pverify {
namespace {

struct GaussRule {
  const double* nodes;    // on [-1, 1], symmetric
  const double* weights;  // matching weights
  int n;
};

// Nodes/weights from Abramowitz & Stegun, full precision.
constexpr std::array<double, 2> kNodes2 = {-0.5773502691896257,
                                           0.5773502691896257};
constexpr std::array<double, 2> kWeights2 = {1.0, 1.0};

constexpr std::array<double, 4> kNodes4 = {
    -0.8611363115940526, -0.3399810435848563, 0.3399810435848563,
    0.8611363115940526};
constexpr std::array<double, 4> kWeights4 = {
    0.3478548451374538, 0.6521451548625461, 0.6521451548625461,
    0.3478548451374538};

constexpr std::array<double, 8> kNodes8 = {
    -0.9602898564975363, -0.7966664774136267, -0.5255324099163290,
    -0.1834346424956498, 0.1834346424956498,  0.5255324099163290,
    0.7966664774136267,  0.9602898564975363};
constexpr std::array<double, 8> kWeights8 = {
    0.1012285362903763, 0.2223810344533745, 0.3137066458778873,
    0.3626837833783620, 0.3626837833783620, 0.3137066458778873,
    0.2223810344533745, 0.1012285362903763};

constexpr std::array<double, 16> kNodes16 = {
    -0.9894009349916499, -0.9445750230732326, -0.8656312023878318,
    -0.7554044083550030, -0.6178762444026438, -0.4580167776572274,
    -0.2816035507792589, -0.0950125098376374, 0.0950125098376374,
    0.2816035507792589,  0.4580167776572274,  0.6178762444026438,
    0.7554044083550030,  0.8656312023878318,  0.9445750230732326,
    0.9894009349916499};
constexpr std::array<double, 16> kWeights16 = {
    0.0271524594117541, 0.0622535239386479, 0.0951585116824928,
    0.1246289712555339, 0.1495959888165767, 0.1691565193950025,
    0.1826034150449236, 0.1894506104550685, 0.1894506104550685,
    0.1826034150449236, 0.1691565193950025, 0.1495959888165767,
    0.1246289712555339, 0.0951585116824928, 0.0622535239386479,
    0.0271524594117541};

GaussRule PickRule(int points) {
  if (points <= 2) return {kNodes2.data(), kWeights2.data(), 2};
  if (points <= 4) return {kNodes4.data(), kWeights4.data(), 4};
  if (points <= 8) return {kNodes8.data(), kWeights8.data(), 8};
  return {kNodes16.data(), kWeights16.data(), 16};
}

}  // namespace

double GaussLegendre(const std::function<double(double)>& f, double a,
                     double b, int points) {
  if (b <= a) return 0.0;
  GaussRule rule = PickRule(points);
  const double mid = 0.5 * (a + b);
  const double half = 0.5 * (b - a);
  double sum = 0.0;
  for (int i = 0; i < rule.n; ++i) {
    sum += rule.weights[i] * f(mid + half * rule.nodes[i]);
  }
  return sum * half;
}

double IntegrateWithBreakpoints(const std::function<double(double)>& f,
                                double a, double b,
                                const std::vector<double>& breakpoints,
                                int points) {
  if (b <= a) return 0.0;
  double total = 0.0;
  double prev = a;
  auto it = std::upper_bound(breakpoints.begin(), breakpoints.end(), a);
  for (; it != breakpoints.end() && *it < b; ++it) {
    if (*it > prev) {
      total += GaussLegendre(f, prev, *it, points);
      prev = *it;
    }
  }
  total += GaussLegendre(f, prev, b, points);
  return total;
}

double Simpson(const std::function<double(double)>& f, double a, double b,
               int n) {
  PV_CHECK_MSG(n >= 2 && n % 2 == 0, "Simpson needs an even interval count");
  if (b <= a) return 0.0;
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    sum += f(a + i * h) * ((i % 2 == 1) ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

}  // namespace pverify
