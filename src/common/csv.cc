#include "common/csv.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace pverify {

std::string FormatDouble(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

ResultTable::ResultTable(std::vector<std::string> header, std::string csv_path)
    : header_(std::move(header)), csv_path_(std::move(csv_path)) {
  PV_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

void ResultTable::AddRow(const std::vector<std::string>& cells) {
  PV_CHECK_MSG(cells.size() == header_.size(),
               "row width must match header width");
  rows_.push_back(cells);
}

void ResultTable::AddRow(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double c : cells) formatted.push_back(FormatDouble(c, precision));
  AddRow(formatted);
}

void ResultTable::Print() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                  c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    std::printf("%s%s", std::string(widths[c], '-').c_str(),
                c + 1 == header_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) print_row(row);

  if (!csv_path_.empty()) {
    std::ofstream out(csv_path_);
    if (out) {
      auto csv_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
          out << row[c] << (c + 1 == row.size() ? "\n" : ",");
        }
      };
      csv_row(header_);
      for (const auto& row : rows_) csv_row(row);
    }
  }
}

}  // namespace pverify
