// Minimal table emitter for benchmark harnesses: prints aligned columns to
// stdout and optionally mirrors rows into a CSV file so figure data can be
// re-plotted.
#ifndef PVERIFY_COMMON_CSV_H_
#define PVERIFY_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace pverify {

/// Column-aligned result table with optional CSV mirroring.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> header,
                       std::string csv_path = "");

  /// Appends one row; the cell count must match the header.
  void AddRow(const std::vector<std::string>& cells);

  /// Convenience overload formatting doubles with the given precision.
  void AddRow(const std::vector<double>& cells, int precision = 4);

  /// Prints the aligned table to stdout (header + all rows).
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::string csv_path_;
};

/// Formats a double with fixed precision (helper for mixed-type rows).
std::string FormatDouble(double v, int precision = 4);

}  // namespace pverify

#endif  // PVERIFY_COMMON_CSV_H_
