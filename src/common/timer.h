// Wall-clock timing helpers used by the query executor and benchmarks.
#ifndef PVERIFY_COMMON_TIMER_H_
#define PVERIFY_COMMON_TIMER_H_

#include <chrono>

namespace pverify {

/// Monotonic stopwatch reporting elapsed time in milliseconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Microseconds elapsed since construction or the last Restart().
  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed milliseconds into *sink on destruction.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(double* sink) : sink_(sink) {}
  ~ScopedTimerMs() { *sink_ += timer_.ElapsedMs(); }

  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  double* sink_;
  Timer timer_;
};

}  // namespace pverify

#endif  // PVERIFY_COMMON_TIMER_H_
