// Cache-line-aligned vector storage for the SoA verification kernels.
//
// The verifier hot loops stream over per-candidate rows of doubles. Two
// layout properties make those loops vectorizer-friendly:
//   * the base pointer of every buffer is 64-byte aligned (one cache line,
//     and wide enough for any current SIMD register file), and
//   * row strides are padded to a multiple of 8 doubles (64 bytes), so
//     every row starts on its own cache line and rows never share one.
// AlignedVector + PadStride provide exactly that; the accessors of
// SubregionTable / VerificationContext hide the padding from callers.
#ifndef PVERIFY_COMMON_ALIGNED_H_
#define PVERIFY_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace pverify {

inline constexpr size_t kCacheLineBytes = 64;

/// Minimal allocator that over-aligns every allocation to `Align` bytes
/// (C++17 aligned operator new). Interoperates with std::vector.
template <typename T, size_t Align = kCacheLineBytes>
class AlignedAllocator {
 public:
  static_assert(Align >= alignof(T), "alignment must not weaken the type's");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Rounds a row length up so rows of T start on cache-line boundaries
/// (given a cache-line-aligned base). For doubles this pads to a multiple
/// of 8 elements.
template <typename T>
constexpr size_t PadStride(size_t row_len) {
  constexpr size_t per_line = kCacheLineBytes / sizeof(T);
  static_assert(per_line > 0, "type larger than a cache line");
  return (row_len + per_line - 1) / per_line * per_line;
}

}  // namespace pverify

#endif  // PVERIFY_COMMON_ALIGNED_H_
