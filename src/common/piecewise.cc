#include "common/piecewise.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pverify {

StepFunction::StepFunction(std::vector<double> breaks,
                           std::vector<double> values)
    : breaks_(std::move(breaks)), values_(std::move(values)) {
  ValidateAndBuildCum();
}

void StepFunction::Assign(const double* breaks, const double* values,
                          size_t pieces) {
  breaks_.assign(breaks, breaks + pieces + 1);
  values_.assign(values, values + pieces);
  ValidateAndBuildCum();
}

void StepFunction::ValidateAndBuildCum() {
  PV_CHECK_MSG(breaks_.size() == values_.size() + 1,
               "breaks must have one more entry than values");
  PV_CHECK_MSG(breaks_.size() >= 2, "need at least one piece");
  for (size_t i = 0; i + 1 < breaks_.size(); ++i) {
    PV_CHECK_MSG(breaks_[i] < breaks_[i + 1],
                 "breakpoints must be strictly increasing");
  }
  for (double v : values_) {
    PV_CHECK_MSG(v >= 0.0 && std::isfinite(v),
                 "piece values must be finite and non-negative");
  }
  cum_.resize(breaks_.size());
  cum_[0] = 0.0;
  for (size_t i = 0; i < values_.size(); ++i) {
    cum_[i + 1] = cum_[i] + values_[i] * (breaks_[i + 1] - breaks_[i]);
  }
}

StepFunction StepFunction::Constant(double lo, double hi, double height) {
  return StepFunction({lo, hi}, {height});
}

size_t StepFunction::PieceIndex(double x) const {
  PV_DCHECK(!empty());
  PV_DCHECK(x >= breaks_.front() && x <= breaks_.back());
  // upper_bound gives the first break > x; the piece index is one less.
  auto it = std::upper_bound(breaks_.begin(), breaks_.end(), x);
  size_t idx = static_cast<size_t>(it - breaks_.begin());
  if (idx == 0) return 0;
  if (idx >= breaks_.size()) return values_.size() - 1;
  return idx - 1;
}

double StepFunction::Value(double x) const {
  if (empty() || x < breaks_.front() || x > breaks_.back()) return 0.0;
  return values_[PieceIndex(x)];
}

double StepFunction::IntegralTo(double x) const {
  if (empty() || x <= breaks_.front()) return 0.0;
  if (x >= breaks_.back()) return cum_.back();
  size_t i = PieceIndex(x);
  return cum_[i] + values_[i] * (x - breaks_[i]);
}

void StepFunction::IntegralToSorted(const double* xs, size_t n,
                                    double* out) const {
  if (empty()) {
    for (size_t i = 0; i < n; ++i) out[i] = 0.0;
    return;
  }
  const double lo = breaks_.front();
  const double hi = breaks_.back();
  const double total = cum_.back();
  // Merge scan: the piece cursor only ever advances, so the batch costs
  // O(num_pieces + n) instead of n binary searches. For each x the cursor
  // lands on the same piece index PieceIndex(x) would return, and the
  // interpolation below is the scalar IntegralTo arithmetic verbatim —
  // hence bit-identical results.
  size_t p = 0;
  const size_t last_piece = values_.size() - 1;
  double prev_x = -std::numeric_limits<double>::infinity();
  (void)prev_x;  // Only read by the DCHECK below; NDEBUG builds discard it.
  for (size_t i = 0; i < n; ++i) {
    const double x = xs[i];
    // Tracked in a local (not re-read from xs[i-1]) so `out` may alias `xs`.
    PV_DCHECK(x >= prev_x);
    prev_x = x;
    if (x <= lo) {
      out[i] = 0.0;
      continue;
    }
    if (x >= hi) {
      out[i] = total;
      continue;
    }
    while (p < last_piece && breaks_[p + 1] <= x) ++p;
    out[i] = cum_[p] + values_[p] * (x - breaks_[p]);
  }
}

void StepFunction::IntegralToMany(const double* xs, size_t n,
                                  double* out) const {
  for (size_t i = 0; i < n; ++i) out[i] = IntegralTo(xs[i]);
}

double StepFunction::IntegralBetween(double a, double b) const {
  if (b <= a) return 0.0;
  return IntegralTo(b) - IntegralTo(a);
}

double StepFunction::InverseIntegral(double p) const {
  PV_CHECK_MSG(!empty(), "inverse of empty function");
  PV_CHECK_MSG(p >= 0.0 && p <= cum_.back() * (1.0 + 1e-12) + 1e-15,
               "probability outside total mass");
  p = std::min(p, cum_.back());
  auto it = std::lower_bound(cum_.begin(), cum_.end(), p);
  size_t idx = static_cast<size_t>(it - cum_.begin());
  if (idx == 0) return breaks_.front();
  size_t piece = idx - 1;
  // Skip zero-height pieces: land on the left edge of the next mass.
  if (values_[piece] <= 0.0) return breaks_[idx];
  return breaks_[piece] + (p - cum_[piece]) / values_[piece];
}

StepFunction StepFunction::Scaled(double factor) const {
  PV_CHECK_MSG(factor >= 0.0, "negative scale factor");
  std::vector<double> vals = values_;
  for (double& v : vals) v *= factor;
  return StepFunction(breaks_, std::move(vals));
}

StepFunction StepFunction::Normalized() const {
  double mass = TotalMass();
  PV_CHECK_MSG(mass > 0.0, "cannot normalize zero-mass function");
  return Scaled(1.0 / mass);
}

std::vector<double> SortedUnique(std::vector<double> xs, double eps) {
  SortedUniqueInPlace(xs, eps);
  return xs;
}

void SortedUniqueInPlace(std::vector<double>& xs, double eps) {
  std::sort(xs.begin(), xs.end());
  size_t kept = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (kept == 0 || xs[i] - xs[kept - 1] > eps) xs[kept++] = xs[i];
  }
  xs.resize(kept);
}

std::vector<double> MergeBreakpoints(const std::vector<double>& a,
                                     const std::vector<double>& b,
                                     double eps) {
  std::vector<double> merged;
  merged.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(merged));
  return SortedUnique(std::move(merged), eps);
}

}  // namespace pverify
