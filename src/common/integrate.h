// Numerical quadrature used by the Basic evaluator and incremental
// refinement.
//
// The C-PNN integrand d_i(r) · Π_{k≠i}(1 − D_k(r)) is a polynomial between
// consecutive global breakpoints (d_i is a step function, each D_k is
// piecewise-linear), so Gauss-Legendre per breakpoint segment converges very
// fast. The paper evaluates the same integral with generic numerical
// integration; we expose the node count so benchmarks can trade accuracy for
// speed.
#ifndef PVERIFY_COMMON_INTEGRATE_H_
#define PVERIFY_COMMON_INTEGRATE_H_

#include <functional>
#include <vector>

namespace pverify {

/// Fixed-order Gauss-Legendre quadrature on [a, b].
/// Supported orders: 2, 4, 8, 16 (other values round up to the next
/// supported order, capping at 16).
double GaussLegendre(const std::function<double(double)>& f, double a,
                     double b, int points);

/// Integrates f over [a, b], splitting at the supplied sorted breakpoints
/// that fall inside (a, b) and applying `points`-node Gauss-Legendre on each
/// resulting segment.
double IntegrateWithBreakpoints(const std::function<double(double)>& f,
                                double a, double b,
                                const std::vector<double>& breakpoints,
                                int points);

/// Composite Simpson rule with n (even, >= 2) intervals; kept as a simple
/// cross-check implementation for tests and ablations.
double Simpson(const std::function<double(double)>& f, double a, double b,
               int n);

}  // namespace pverify

#endif  // PVERIFY_COMMON_INTEGRATE_H_
