// Lightweight invariant-checking macros for pverify.
//
// PV_CHECK fires in every build type; it guards public-API contract
// violations (bad pdf construction, out-of-range thresholds, ...) where
// continuing would silently corrupt query answers. PV_DCHECK compiles out in
// release builds and guards internal invariants on hot paths.
#ifndef PVERIFY_COMMON_CHECK_H_
#define PVERIFY_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pverify {
namespace internal {

[[noreturn]] inline void CheckFail(const char* expr, const char* file,
                                   int line, const std::string& msg) {
  std::ostringstream os;
  os << "PV_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace internal
}  // namespace pverify

#define PV_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond))                                                      \
      ::pverify::internal::CheckFail(#cond, __FILE__, __LINE__, "");  \
  } while (0)

#define PV_CHECK_MSG(cond, msg)                                        \
  do {                                                                 \
    if (!(cond))                                                       \
      ::pverify::internal::CheckFail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define PV_DCHECK(cond) \
  do {                  \
  } while (0)
#else
#define PV_DCHECK(cond) PV_CHECK(cond)
#endif

#endif  // PVERIFY_COMMON_CHECK_H_
