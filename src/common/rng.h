// Deterministic random-number utilities.
//
// Every stochastic component of pverify (data generation, query workloads,
// Monte-Carlo estimation) draws from an explicitly seeded Rng so that tests
// and benchmark runs are reproducible bit-for-bit.
#ifndef PVERIFY_COMMON_RNG_H_
#define PVERIFY_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace pverify {

/// Thin wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal scaled to (mean, stddev).
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential with the given rate parameter lambda.
  double Exponential(double lambda) {
    return std::exponential_distribution<double>(lambda)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Forked child generator: deterministic function of this state and salt.
  Rng Fork(uint64_t salt) {
    uint64_t s = engine_() ^ (salt * 0xbf58476d1ce4e5b9ULL);
    return Rng(s);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pverify

#endif  // PVERIFY_COMMON_RNG_H_
