// Location-based-services scenario (paper §I): moving objects report
// positions with dead-reckoning uncertainty, so the database knows each
// vehicle only up to a 2-D region. Which vehicle is most likely nearest to
// an incident?
//
// This exercises the 2-D extension path: exact radial cdfs over circles and
// rectangles feed the same subregion verifiers as the 1-D case.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/query.h"
#include "datagen/synthetic.h"
#include "uncertain/distance2d.h"

using namespace pverify;

int main() {
  Rng rng(7);

  // A fleet of 500 vehicles. Dead-reckoning gives circular uncertainty
  // (radius = distance threshold before an update is sent); parked vehicles
  // have small rectangular uncertainty (a parking lot).
  Dataset2D fleet;
  for (int i = 0; i < 500; ++i) {
    double x = rng.Uniform(0.0, 2000.0);
    double y = rng.Uniform(0.0, 2000.0);
    if (rng.Bernoulli(0.8)) {
      fleet.emplace_back(i, Circle2{x, y, rng.Uniform(40.0, 160.0)});
    } else {
      double w = rng.Uniform(60.0, 140.0), h = rng.Uniform(60.0, 140.0);
      fleet.emplace_back(i, Rect2{x, y, x + w, y + h});
    }
  }

  // Incident location.
  Point2 incident{1000.0, 1000.0};

  // Phase 1: R-tree filtering (f_min pruning) over the 2-D regions.
  PnnFilter2D filter(fleet);
  FilterResult filtered = filter.Filter(incident);
  std::printf("filtering: %zu of %zu vehicles survive (f_min = %.1f m)\n",
              filtered.candidates.size(), fleet.size(), filtered.fmin);

  // Phase 2: distance pdfs/cdfs from exact region geometry.
  std::vector<std::pair<ObjectId, DistanceDistribution>> dists;
  for (uint32_t idx : filtered.candidates) {
    dists.emplace_back(fleet[idx].id(),
                       MakeDistanceDistribution2D(fleet[idx], incident, 64));
  }
  CandidateSet candidates = CandidateSet::FromDistances(std::move(dists));

  // Phase 3: C-PNN with verifiers — dispatch vehicles that are nearest with
  // at least 30% confidence.
  QueryOptions options;
  options.params = {0.3, 0.01};
  options.strategy = Strategy::kVR;
  options.report_probabilities = true;
  QueryAnswer answer = ExecuteOnCandidates(candidates, options);

  std::printf("\nvehicles to dispatch (P >= 0.30):\n");
  for (ObjectId id : answer.ids) {
    const UncertainObject2D& v = fleet[static_cast<size_t>(id)];
    std::printf("  vehicle %3lld (%s uncertainty)\n",
                static_cast<long long>(id),
                v.is_rect() ? "rectangular" : "circular");
  }
  if (answer.ids.empty()) {
    std::printf("  (none clears the confidence bar — fall back to top-3 "
                "bounds)\n");
    auto entries = answer.candidate_probabilities;
    std::sort(entries.begin(), entries.end(),
              [](const AnswerEntry& a, const AnswerEntry& b) {
                return a.bound.upper > b.bound.upper;
              });
    for (size_t i = 0; i < entries.size() && i < 3; ++i) {
      std::printf("  vehicle %3lld: P in [%.3f, %.3f]\n",
                  static_cast<long long>(entries[i].id),
                  entries[i].bound.lower, entries[i].bound.upper);
    }
  }

  std::printf(
      "\nverification decided %zu of %zu candidates without integration\n",
      answer.stats.candidates - answer.stats.refined_candidates,
      answer.stats.candidates);
  return 0;
}
