// Biometric-database scenario (paper §I, [4]): stored feature vectors are
// uncertain (Gaussian around the enrolled measurement). Given a probe
// measurement, a C-PNN returns the identities whose stored feature is most
// likely the closest match, with a confidence threshold. A probabilistic
// range query pre-screens the gallery.
//
// Also demonstrates the dataset text format (datagen/dataset_io.h): the
// gallery is written to disk and read back, as a real deployment would.
#include <algorithm>
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "core/query.h"
#include "core/range_query.h"
#include "datagen/dataset_io.h"

using namespace pverify;

int main() {
  Rng rng(99);

  // Enroll 1,000 identities: each stored feature value is a truncated
  // Gaussian (measurement noise around the enrolled value).
  Dataset gallery;
  for (int i = 0; i < 1000; ++i) {
    double enrolled = rng.Uniform(0.0, 1000.0);
    double noise = rng.Uniform(1.5, 6.0);
    gallery.emplace_back(i, MakeGaussianPdf(enrolled - 3.0 * noise,
                                            enrolled + 3.0 * noise,
                                            enrolled, noise, 120));
  }

  // Persist and reload the gallery (text format, round-trips histograms).
  const std::string path = "/tmp/pverify_gallery.txt";
  datagen::SaveDataset(gallery, path);
  Dataset loaded = datagen::LoadDataset(path);
  std::printf("gallery: %zu identities (saved and reloaded from %s)\n",
              loaded.size(), path.c_str());

  const double probe = 512.7;

  // Screening: identities whose stored value has >= 50% probability of
  // lying within ±8 units of the probe.
  RangeQueryExecutor screener(loaded);
  auto screened = screener.Execute(probe - 8.0, probe + 8.0, 0.5);
  std::printf("\nrange screening (±8.0, P >= 0.5): %zu identities\n",
              screened.size());
  for (const RangeResult& r : screened) {
    std::printf("  identity %4lld  P(in window) = %.3f\n",
                static_cast<long long>(r.id), r.probability);
  }

  // Identification: C-PNN at the probe value.
  CpnnExecutor executor(loaded);
  QueryOptions options;
  options.params = {/*threshold=*/0.4, /*tolerance=*/0.01};
  options.strategy = Strategy::kVR;
  options.report_probabilities = true;
  QueryAnswer answer = executor.Execute(probe, options);

  std::printf("\nC-PNN identification (P >= 0.40):\n");
  if (answer.ids.empty()) {
    std::printf("  no identity clears the confidence bar → reject probe\n");
  }
  for (ObjectId id : answer.ids) {
    std::printf("  identity %4lld matches\n", static_cast<long long>(id));
  }
  std::printf("\ncandidates after filtering: %zu; verification decided %zu "
              "without integration\n",
              answer.stats.candidates,
              answer.stats.candidates - answer.stats.refined_candidates);

  // Show the bound picture for the top candidates.
  std::printf("\nbounds of the strongest candidates:\n");
  auto entries = answer.candidate_probabilities;
  std::sort(entries.begin(), entries.end(),
            [](const AnswerEntry& a, const AnswerEntry& b) {
              return a.bound.upper > b.bound.upper;
            });
  for (size_t i = 0; i < entries.size() && i < 4; ++i) {
    std::printf("  identity %4lld: P in [%.3f, %.3f]\n",
                static_cast<long long>(entries[i].id),
                entries[i].bound.lower, entries[i].bound.upper);
  }
  return 0;
}
