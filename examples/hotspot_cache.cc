// Hot-spot caching scenario: a location-based service answers "which
// object is most likely nearest?" for a stream of user queries that keeps
// probing the same few places — a stadium gate, a transit hub, a mall
// entrance. Re-running the full filter/verify/refine pipeline for every
// repeat wastes the work the engine already did, so the service stacks a
// CachingEngine on top: repeated queries become memoized lookups, while the
// exactness contract (exact-fingerprint matching, see caching_engine.h)
// keeps every served answer bit-identical to a fresh computation. When the
// dataset changes — objects move, new readings land — one BumpEpoch() call
// drops the whole memo so no stale answer survives.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "engine/caching_engine.h"
#include "engine/query_engine.h"

using namespace pverify;

int main() {
  // 20,000 uncertain objects on a 1-D road network (Long-Beach-like).
  Dataset objects = datagen::MakeUniformScatter(20000, 5000.0, 2.0,
                                                /*seed=*/7);

  // The query log: 2,000 queries over just 12 hot spots — the classic
  // Zipf-skewed access pattern. MakeQueryPointsZipf scatters every sample,
  // so for an exact-match cache we sample the hot spots themselves.
  const std::vector<double> hotspots =
      datagen::MakeQueryPoints(12, 0.0, 5000.0, /*seed=*/19);
  std::vector<double> query_log;
  for (size_t i = 0; i < 2000; ++i) {
    // Rank-skewed repetition: spot 0 gets ~1/2 of the traffic, spot 1 ~1/4…
    size_t rank = 0;
    for (size_t bits = i; (bits & 1u) == 1u && rank + 1 < hotspots.size();
         bits >>= 1) {
      ++rank;
    }
    query_log.push_back(hotspots[rank]);
  }

  QueryOptions opt;
  opt.params = {0.3, 0.01};  // P = 0.3, Δ = 0.01
  opt.strategy = Strategy::kVR;

  // The backend does the real work; the caching tier memoizes it.
  QueryEngine backend(objects, EngineOptions{4});
  CachingEngineOptions copt;
  copt.capacity = 1024;
  CachingEngine engine(backend, copt);

  // The service drains the log in waves (one batch per tick). The first
  // wave computes everything; later waves find their hot spots memoized.
  // (Within ONE batch all lookups happen before any insert, so repeats
  // only start hitting from the next wave on.)
  const size_t wave_size = 200;
  std::vector<EngineStats> waves;
  size_t served_from_cache = 0;
  for (size_t start = 0; start < query_log.size(); start += wave_size) {
    std::vector<QueryRequest> batch;
    for (size_t i = start; i < std::min(start + wave_size, query_log.size());
         ++i) {
      batch.push_back(PointQuery{query_log[i], opt});
    }
    EngineStats wave_stats;
    std::vector<QueryResult> results =
        engine.ExecuteBatch(std::move(batch), &wave_stats);
    for (const QueryResult& r : results) {
      if (r.stats.served_from_cache) ++served_from_cache;
    }
    waves.push_back(wave_stats);
  }
  // Per-wave deltas merge into the log's aggregate: counters sum, the
  // entries/bytes gauges keep the high-water snapshot.
  EngineStats stats = MergeEngineStats(waves);

  std::printf("query log: %zu queries over %zu hot spots, waves of %zu\n",
              query_log.size(), hotspots.size(), wave_size);
  std::printf("cache:     %zu hits, %zu misses, hit rate %.1f%%, "
              "%zu results held (%zu KiB)\n",
              stats.cache.hits, stats.cache.misses,
              100.0 * stats.cache.HitRate(), stats.cache.entries,
              stats.cache.bytes / 1024);
  std::printf("answers:   %zu of %zu served from the memo — bit-identical "
              "to recomputation\n\n", served_from_cache, stats.queries);

  // New position readings arrive: the dataset is (notionally) mutated, so
  // every memoized answer is suspect. One epoch bump drops them all.
  engine.BumpEpoch();
  CacheStats after = engine.GetCacheStats();
  std::printf("dataset update -> BumpEpoch(): %zu entries invalidated, "
              "%zu now cached\n", after.invalidations, after.entries);

  // The next wave of queries recomputes (cold) and re-populates the memo.
  std::vector<QueryRequest> rewarm;
  for (size_t i = 0; i < hotspots.size(); ++i) {
    rewarm.push_back(PointQuery{hotspots[i], opt});
  }
  EngineStats rewarm_stats;
  engine.ExecuteBatch(std::move(rewarm), &rewarm_stats);
  std::printf("next wave: %zu misses (recomputed fresh), %zu hits\n",
              rewarm_stats.cache.misses, rewarm_stats.cache.hits);
  return 0;
}
