// Sensor-monitoring scenario (paper §I): a habitat network collects noisy
// temperature readings; we ask which district's temperature is closest to a
// given centroid, and which sensor reports the minimum value.
//
// A minimum query is a PNN with q → −∞ (paper: "A minimum (maximum) query is
// essentially a special case of PNN"), which we place just below the domain.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/query.h"

using namespace pverify;

int main() {
  Rng rng(2024);

  // 40 districts, each with a histogram pdf of observed temperatures (like
  // the paper's Fig. 1(b): arbitrary histogram between two bounds).
  Dataset districts;
  for (int i = 0; i < 40; ++i) {
    double base = rng.Uniform(8.0, 24.0);
    double width = rng.Uniform(2.0, 6.0);
    std::vector<double> bars;
    for (int b = 0; b < 8; ++b) bars.push_back(rng.Uniform(0.2, 2.0));
    districts.emplace_back(i, MakeHistogramPdf(base, base + width, bars));
  }
  CpnnExecutor executor(districts);

  // --- Clustering use case: districts closest to a 18.5°C centroid. ------
  const double centroid = 18.5;
  QueryOptions options;
  options.params = {/*threshold=*/0.25, /*tolerance=*/0.01};
  options.strategy = Strategy::kVR;
  QueryAnswer near_centroid = executor.Execute(centroid, options);
  std::printf("districts with >=25%% chance of being closest to %.1f°C:\n",
              centroid);
  for (ObjectId id : near_centroid.ids) {
    const UncertainObject& obj = districts[static_cast<size_t>(id)];
    std::printf("  district %2lld (range %.1f–%.1f°C)\n",
                static_cast<long long>(id), obj.lo(), obj.hi());
  }

  // --- Minimum query: q below every uncertainty region. ------------------
  double qmin = 0.0;  // all regions start above 8°C
  QueryAnswer coldest = executor.Execute(qmin, options);
  std::printf("\nsensors with >=25%% chance of reporting the minimum:\n");
  for (ObjectId id : coldest.ids) {
    const UncertainObject& obj = districts[static_cast<size_t>(id)];
    std::printf("  district %2lld (range %.1f–%.1f°C)\n",
                static_cast<long long>(id), obj.lo(), obj.hi());
  }

  // Raw probabilities for the minimum query, for comparison.
  std::printf("\nexact minimum-value probabilities (top 5):\n");
  auto probs = executor.ComputePnn(qmin);
  std::sort(probs.begin(), probs.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  for (size_t i = 0; i < probs.size() && i < 5; ++i) {
    std::printf("  district %2lld: %.4f\n",
                static_cast<long long>(probs[i].first), probs[i].second);
  }

  // --- Why C-PNN instead of PNN? Show the work saved. ---------------------
  QueryOptions basic = options;
  basic.strategy = Strategy::kBasic;
  QueryAnswer full = executor.Execute(centroid, basic);
  QueryAnswer constrained = executor.Execute(centroid, options);
  std::printf(
      "\nwork comparison at the centroid query:\n"
      "  Basic (exact probabilities): %.3f ms\n"
      "  VR (verifiers + refinement): %.3f ms, %zu of %zu candidates needed "
      "integration\n",
      full.stats.total_ms, constrained.stats.total_ms,
      constrained.stats.refined_candidates, constrained.stats.candidates);
  return 0;
}
