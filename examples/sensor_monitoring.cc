// Sensor-monitoring scenario (paper §I): a habitat network collects noisy
// temperature readings; a monitoring dashboard periodically asks — in one
// engine batch — which district's temperature is closest to each cluster
// centroid and which sensor reports the minimum value.
//
// A minimum query is a PNN with q → −∞ (paper: "A minimum (maximum) query is
// essentially a special case of PNN"); the engine exposes it as a request
// kind of its own.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "engine/query_engine.h"

using namespace pverify;

int main() {
  Rng rng(2024);

  // 40 districts, each with a histogram pdf of observed temperatures (like
  // the paper's Fig. 1(b): arbitrary histogram between two bounds).
  Dataset districts;
  for (int i = 0; i < 40; ++i) {
    double base = rng.Uniform(8.0, 24.0);
    double width = rng.Uniform(2.0, 6.0);
    std::vector<double> bars;
    for (int b = 0; b < 8; ++b) bars.push_back(rng.Uniform(0.2, 2.0));
    districts.emplace_back(i, MakeHistogramPdf(base, base + width, bars));
  }
  QueryEngine engine(districts);

  // --- One monitoring tick = one batch: every centroid plus the minimum. --
  const std::vector<double> centroids = {12.0, 18.5, 22.0};
  QueryOptions options;
  options.params = {/*threshold=*/0.25, /*tolerance=*/0.01};
  options.strategy = Strategy::kVR;

  std::vector<QueryRequest> tick;
  for (double c : centroids) tick.push_back(PointQuery{c, options});
  tick.push_back(MinQuery{options});

  EngineStats stats;
  std::vector<QueryResult> results =
      engine.ExecuteBatch(std::move(tick), &stats);

  for (size_t c = 0; c < centroids.size(); ++c) {
    std::printf("districts with >=25%% chance of being closest to %.1f°C:\n",
                centroids[c]);
    for (ObjectId id : results[c].ids) {
      const UncertainObject& obj = districts[static_cast<size_t>(id)];
      std::printf("  district %2lld (range %.1f–%.1f°C)\n",
                  static_cast<long long>(id), obj.lo(), obj.hi());
    }
  }

  const QueryResult& coldest = results.back();
  std::printf("\nsensors with >=25%% chance of reporting the minimum:\n");
  for (ObjectId id : coldest.ids) {
    const UncertainObject& obj = districts[static_cast<size_t>(id)];
    std::printf("  district %2lld (range %.1f–%.1f°C)\n",
                static_cast<long long>(id), obj.lo(), obj.hi());
  }

  std::printf("\ntick: %zu queries on %zu threads in %.3f ms (%.0f q/s)\n",
              stats.queries, stats.threads, stats.wall_ms,
              stats.QueriesPerSec());

  // Raw probabilities for the minimum query, for comparison. The plain PNN
  // API stays available on the engine's executor.
  std::printf("\nexact minimum-value probabilities (top 5):\n");
  auto probs = engine.executor().ComputePnn(0.0);  // below every region
  std::sort(probs.begin(), probs.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  for (size_t i = 0; i < probs.size() && i < 5; ++i) {
    std::printf("  district %2lld: %.4f\n",
                static_cast<long long>(probs[i].first), probs[i].second);
  }

  // --- Why C-PNN instead of PNN? Show the work saved. ---------------------
  QueryOptions basic = options;
  basic.strategy = Strategy::kBasic;
  QueryResult full = engine.Execute(PointQuery{centroids[1], basic});
  QueryResult constrained =
      engine.Execute(PointQuery{centroids[1], options});
  std::printf(
      "\nwork comparison at the %.1f°C centroid query:\n"
      "  Basic (exact probabilities): %.3f ms\n"
      "  VR (verifiers + refinement): %.3f ms, %zu of %zu candidates needed "
      "integration\n",
      centroids[1], full.stats.total_ms, constrained.stats.total_ms,
      constrained.stats.refined_candidates, constrained.stats.candidates);
  return 0;
}
