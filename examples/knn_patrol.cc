// Probabilistic k-NN (the paper's §VI future-work extension): a dispatcher
// wants the set of patrol units that are among the k closest to a call, each
// with qualification probability above a threshold.
#include <cstdio>

#include "core/query.h"
#include "datagen/synthetic.h"

using namespace pverify;

int main() {
  // 200 patrol units on a 1-D corridor (a highway), each with an
  // uncertainty interval from its last report.
  datagen::SyntheticConfig config;
  config.count = 200;
  config.domain_hi = 5000.0;
  config.mean_length = 30.0;
  config.seed = 3;
  Dataset units = datagen::MakeSynthetic(config);
  CpnnExecutor executor(units);

  const double call_location = 2500.0;
  const CpnnParams params{/*threshold=*/0.5, /*tolerance=*/0.0};

  for (int k : {1, 2, 4, 8}) {
    CknnAnswer ans = executor.ExecuteKnn(call_location, k, params);
    std::printf("k=%d: %zu unit(s) are top-%d with >=50%% probability "
                "(%zu pruned by the k-th-far-point bound)\n",
                k, ans.ids.size(), k, ans.pruned_by_bound);
    for (ObjectId id : ans.ids) {
      std::printf("    unit %lld\n", static_cast<long long>(id));
    }
  }

  // Expected-membership sanity: Σ_i p_i^(k) = k. Demonstrate on the
  // filtered candidate set for k = 4.
  const int k = 4;
  FilterResult filtered = FilterKByScan(units, call_location, k);
  CandidateSet cands =
      CandidateSet::Build1D(units, filtered.candidates, call_location, k);
  std::vector<double> probs = ComputeKnnProbabilities(cands, k, {});
  double sum = 0.0;
  for (double p : probs) sum += p;
  std::printf("\nk=%d candidate set: %zu units, Σ p_i^(k) = %.4f "
              "(expected %d)\n",
              k, cands.size(), sum, k);
  return 0;
}
