// Fleet-dispatch scenario: a city-wide fleet of vehicles reports uncertain
// 1-D positions along a highway (GPS intervals with uniform pdfs). The
// dispatch service runs on a ShardedQueryEngine — the fleet is
// range-partitioned into district shards, so a pickup request only touches
// the shards near it — and serves interactive requests through the async
// Submit path: each incoming pickup submits one query and gets a future,
// while the engine coalesces everything in flight into pool batches.
//
// The serving code only sees pverify::Engine& — swapping the sharded
// engine for an unsharded QueryEngine is a one-line construction change.
#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "engine/sharded_engine.h"

using namespace pverify;

int main() {
  Rng rng(7);

  // 2,000 vehicles spread over a 100 km highway; each position is an
  // uncertainty interval of 40–400 m.
  Dataset fleet;
  for (int i = 0; i < 2000; ++i) {
    double center = rng.Uniform(0.0, 100000.0);
    double radius = rng.Uniform(20.0, 200.0);
    fleet.emplace_back(i, MakeUniformPdf(center - radius, center + radius));
  }

  // Range-shard the fleet into 8 district shards. Each shard owns its own
  // R-tree; per-shard domain bounds let queries skip distant districts.
  ShardedEngineOptions sopt;
  sopt.num_shards = 8;
  sopt.policy = std::make_shared<const RangeShardingPolicy>(
      RangeShardingPolicy::ForDataset(fleet));
  ShardedQueryEngine dispatch(fleet, sopt);
  Engine& service = dispatch;  // everything below is backend-agnostic

  QueryOptions options;
  options.params = {/*threshold=*/0.2, /*tolerance=*/0.01};
  options.strategy = Strategy::kVR;

  // --- Interactive dispatch: pickups arrive one by one; Submit() returns
  // a future immediately and the engine batches whatever is in flight. ----
  Rng pickups(99);
  std::vector<double> locations;
  std::vector<std::future<QueryResult>> futures;
  for (int r = 0; r < 12; ++r) {
    double at = pickups.Uniform(0.0, 100000.0);
    locations.push_back(at);
    futures.push_back(service.Submit(PointQuery{at, options}));
  }

  for (size_t r = 0; r < futures.size(); ++r) {
    QueryResult result = futures[r].get();
    std::printf("pickup at km %6.2f — %zu candidate vehicle(s):",
                locations[r] / 1000.0, result.ids.size());
    for (ObjectId id : result.ids) {
      std::printf(" #%lld", static_cast<long long>(id));
    }
    std::printf("\n");
  }

  SubmitQueueStats qs = service.SubmitStats();
  std::printf("\n%zu requests ran as %zu coalesced batch(es); "
              "%zu shard visits, %zu skipped by district bounds\n",
              qs.requests, qs.batches, dispatch.ShardVisits(),
              dispatch.ShardsPruned());

  // --- Nightly audit: a full batch over fixed checkpoints, with stats. ---
  std::vector<QueryRequest> audit;
  for (double km = 5000.0; km < 100000.0; km += 5000.0) {
    audit.push_back(PointQuery{km, options});
  }
  audit.push_back(MinQuery{options});
  audit.push_back(MaxQuery{options});
  ShardedBatchStats stats;
  std::vector<QueryResult> results =
      dispatch.ExecuteBatch(std::move(audit), &stats);
  std::printf("\naudit: %zu queries in %.2f ms (%.0f q/s); "
              "scatter visited %zu shard(s), pruned %zu\n",
              stats.gathered.queries, stats.gathered.wall_ms,
              stats.gathered.QueriesPerSec(), stats.shard_visits,
              stats.shards_pruned);
  std::printf("vehicles possibly at the start of the highway:");
  for (ObjectId id : results[results.size() - 2].ids) {
    std::printf(" #%lld", static_cast<long long>(id));
  }
  std::printf("\n");
  return 0;
}
