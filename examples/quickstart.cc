// Quickstart: build a few uncertain objects, run C-PNN queries through the
// engine, inspect answers.
//
//   $ ./quickstart
//
// Walks through the library's API: pdfs → objects → engine → requests.
#include <cstdio>

#include "engine/query_engine.h"

using namespace pverify;

int main() {
  // 1. Uncertain objects: closed intervals with a pdf inside (paper §I).
  //    Think of four sensors reporting a 1-D attribute with noise.
  Dataset sensors;
  sensors.emplace_back(/*id=*/1, MakeUniformPdf(10.0, 14.0));
  sensors.emplace_back(/*id=*/2, MakeGaussianPdf(11.0, 17.0));  // 300 bars
  sensors.emplace_back(/*id=*/3, MakeUniformPdf(12.5, 15.5));
  sensors.emplace_back(/*id=*/4, MakeHistogramPdf(20.0, 26.0,
                                                  {1.0, 4.0, 2.0}));

  // 2. The engine owns the executor (dataset + R-tree), a worker pool and
  //    per-worker scratch buffers; it serves single queries and batches.
  QueryEngine engine(sensors);

  // 3. Plain PNN: the exact qualification probability of every candidate.
  //    The underlying executor stays reachable for the unbatched APIs.
  const double q = 12.0;
  std::printf("PNN at q = %.1f\n", q);
  for (const auto& [id, p] : engine.executor().ComputePnn(q)) {
    std::printf("  object %lld: P(nearest) = %.4f\n",
                static_cast<long long>(id), p);
  }

  // 4. C-PNN: only objects with probability >= P, with tolerance Δ — the
  //    constrained query the verifiers accelerate (paper Definition 1).
  QueryOptions options;
  options.params = {/*threshold=*/0.3, /*tolerance=*/0.01};
  options.strategy = Strategy::kVR;  // verifiers + incremental refinement
  options.report_probabilities = true;

  QueryResult answer = engine.Execute(PointQuery{q, options});
  std::printf("\nC-PNN (P=%.2f, tolerance=%.2f) answers:", 0.3, 0.01);
  for (ObjectId id : answer.ids) {
    std::printf(" %lld", static_cast<long long>(id));
  }
  std::printf("\n\nper-candidate probability bounds after evaluation:\n");
  for (const AnswerEntry& e : answer.candidate_probabilities) {
    std::printf("  object %lld: [%.4f, %.4f]\n",
                static_cast<long long>(e.id), e.bound.lower, e.bound.upper);
  }

  // 5. Execution statistics: how much work each phase did.
  const QueryStats& s = answer.stats;
  std::printf(
      "\nphases: filter %.3f ms | init %.3f ms | verify %.3f ms | "
      "refine %.3f ms\n",
      s.filter_ms, s.init_ms, s.verify_ms, s.refine_ms);
  std::printf("candidates: %zu, subregions: %zu, integrations: %zu\n",
              s.candidates, s.num_subregions, s.subregion_integrations);

  // 6. Batches: mixed request kinds (each a typed payload struct wrapped
  //    into the QueryRequest variant) fan out across the worker pool and
  //    come back in request order with an aggregate.
  std::vector<QueryRequest> batch;
  batch.push_back(PointQuery{12.0, options});
  batch.push_back(PointQuery{21.0, options});
  batch.push_back(MinQuery{options});   // likely-smallest sensor
  batch.push_back(MaxQuery{options});   // likely-largest sensor
  batch.push_back(KnnQuery{12.0, 2, options});
  EngineStats stats;
  std::vector<QueryResult> results =
      engine.ExecuteBatch(std::move(batch), &stats);
  std::printf("\nbatch of %zu requests on %zu threads (%.0f q/s):\n",
              stats.queries, stats.threads, stats.QueriesPerSec());
  const char* labels[] = {"point q=12", "point q=21", "min", "max",
                          "2-NN q=12"};
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("  %-10s →", labels[i]);
    for (ObjectId id : results[i].ids) {
      std::printf(" %lld", static_cast<long long>(id));
    }
    std::printf("\n");
  }
  return 0;
}
