// Quickstart: build a few uncertain objects, run a C-PNN, inspect answers.
//
//   $ ./quickstart
//
// Walks through the library's core API: pdfs → objects → executor → query.
#include <cstdio>

#include "core/query.h"

using namespace pverify;

int main() {
  // 1. Uncertain objects: closed intervals with a pdf inside (paper §I).
  //    Think of four sensors reporting a 1-D attribute with noise.
  Dataset sensors;
  sensors.emplace_back(/*id=*/1, MakeUniformPdf(10.0, 14.0));
  sensors.emplace_back(/*id=*/2, MakeGaussianPdf(11.0, 17.0));  // 300 bars
  sensors.emplace_back(/*id=*/3, MakeUniformPdf(12.5, 15.5));
  sensors.emplace_back(/*id=*/4, MakeHistogramPdf(20.0, 26.0,
                                                  {1.0, 4.0, 2.0}));

  // 2. The executor bulk-loads an R-tree for the filtering phase.
  CpnnExecutor executor(sensors);

  // 3. Plain PNN: the exact qualification probability of every candidate.
  const double q = 12.0;
  std::printf("PNN at q = %.1f\n", q);
  for (const auto& [id, p] : executor.ComputePnn(q)) {
    std::printf("  object %lld: P(nearest) = %.4f\n",
                static_cast<long long>(id), p);
  }

  // 4. C-PNN: only objects with probability >= P, with tolerance Δ — the
  //    constrained query the verifiers accelerate (paper Definition 1).
  QueryOptions options;
  options.params = {/*threshold=*/0.3, /*tolerance=*/0.01};
  options.strategy = Strategy::kVR;  // verifiers + incremental refinement
  options.report_probabilities = true;

  QueryAnswer answer = executor.Execute(q, options);
  std::printf("\nC-PNN (P=%.2f, tolerance=%.2f) answers:", 0.3, 0.01);
  for (ObjectId id : answer.ids) {
    std::printf(" %lld", static_cast<long long>(id));
  }
  std::printf("\n\nper-candidate probability bounds after evaluation:\n");
  for (const AnswerEntry& e : answer.candidate_probabilities) {
    std::printf("  object %lld: [%.4f, %.4f]\n",
                static_cast<long long>(e.id), e.bound.lower, e.bound.upper);
  }

  // 5. Execution statistics: how much work each phase did.
  const QueryStats& s = answer.stats;
  std::printf(
      "\nphases: filter %.3f ms | init %.3f ms | verify %.3f ms | "
      "refine %.3f ms\n",
      s.filter_ms, s.init_ms, s.verify_ms, s.refine_ms);
  std::printf("candidates: %zu, subregions: %zu, integrations: %zu\n",
              s.candidates, s.num_subregions, s.subregion_integrations);
  return 0;
}
