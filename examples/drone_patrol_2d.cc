// Drone-patrol scenario: a swarm of drones reports uncertain 2-D positions
// (GPS disks and dead-reckoning rectangles with uniform pdfs). Ground
// control asks "which drone is probably closest to this incident?" — a
// C-PNN over 2-D uncertainty regions, served engine-natively: kPoint2D
// requests batch across worker threads with per-worker scratch reuse, and a
// range-sharded engine shows the same queries pruning distant sectors.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "datagen/workload.h"
#include "engine/query_engine.h"
#include "engine/sharded_engine.h"

using namespace pverify;

int main() {
  Rng rng(19);

  // 1,500 drones over a 20 km × 20 km sector grid: odd ids hold GPS fixes
  // (disks), even ids dead-reckoning estimates (rectangles).
  Dataset2D swarm;
  for (int i = 0; i < 1500; ++i) {
    double cx = rng.Uniform(0.0, 20000.0);
    double cy = rng.Uniform(0.0, 20000.0);
    if (i % 2 == 1) {
      swarm.emplace_back(i, Circle2{cx, cy, rng.Uniform(10.0, 80.0)});
    } else {
      double w = rng.Uniform(20.0, 120.0);
      double h = rng.Uniform(20.0, 120.0);
      swarm.emplace_back(
          i, Rect2{cx - 0.5 * w, cy - 0.5 * h, cx + 0.5 * w, cy + 0.5 * h});
    }
  }

  QueryOptions options;
  options.params = {/*threshold=*/0.25, /*tolerance=*/0.01};
  options.strategy = Strategy::kVR;
  options.report_probabilities = true;

  // One incident: a single engine-native 2-D point query.
  QueryEngine control(swarm, EngineOptions{4});
  Point2 incident{12500.0, 7300.0};
  QueryResult result = control.Execute(Point2DQuery{incident, options});
  std::printf("incident at (%.0f, %.0f): %zu candidate drone(s), %zu likely "
              "responder(s)\n",
              incident.x, incident.y, result.stats.candidates,
              result.ids.size());
  for (ObjectId id : result.ids) {
    std::printf("  drone %lld\n", static_cast<long long>(id));
  }

  // A shift's worth of incidents: one batch across the worker pool. The
  // per-worker scratches recycle the radial-cdf buffers and candidate
  // storage, so the steady state stops allocating.
  std::vector<Point2> incidents =
      datagen::MakeQueryPoints2D(200, 0.0, 20000.0, /*seed=*/23);
  // The shift batch only needs an Engine& — the same call drives the
  // unsharded control engine here and the sharded sector engine below.
  auto run_shift = [&incidents, &options](Engine& engine,
                                          EngineStats* stats) {
    std::vector<QueryRequest> batch;
    for (Point2 p : incidents) {
      batch.push_back(Point2DQuery{p, options});
    }
    return engine.ExecuteBatch(std::move(batch), stats);
  };
  EngineStats stats;
  std::vector<QueryResult> results = run_shift(control, &stats);
  size_t answers = 0;
  for (const QueryResult& r : results) answers += r.ids.size();
  std::printf("\nbatch: %zu incidents on %zu threads in %.2f ms "
              "(%.0f q/s), %zu responders, scratch %zu bytes\n",
              stats.queries, stats.threads, stats.wall_ms,
              stats.QueriesPerSec(), answers, control.ScratchBytes());

  // Same swarm range-sharded into 8 x-stripes: per-shard Mbr bounds let
  // each incident skip distant sectors, and answers stay bit-identical.
  ShardedEngineOptions sopt;
  sopt.num_shards = 8;
  sopt.policy = std::make_shared<const RangeShardingPolicy>(
      RangeShardingPolicy::ForDataset2D(swarm));
  ShardedQueryEngine sectors(swarm, sopt);
  std::vector<QueryResult> sharded_results = run_shift(sectors, nullptr);
  size_t sharded_answers = 0;
  size_t mismatches = 0;
  for (size_t i = 0; i < sharded_results.size(); ++i) {
    sharded_answers += sharded_results[i].ids.size();
    if (sharded_results[i].ids != results[i].ids) ++mismatches;
  }
  std::printf("sharded: %zu shards, %zu visits, %zu pruned by bounds, "
              "%zu responders (%zu mismatches vs unsharded)\n",
              sectors.num_shards(), sectors.ShardVisits(),
              sectors.ShardsPruned(), sharded_answers, mismatches);
  return mismatches == 0 ? 0 : 1;
}
