// Caching-tier throughput: ExecuteBatch queries/sec of a CachingEngine
// over BOTH backends (unsharded QueryEngine, 2-shard ShardedQueryEngine)
// across Zipf exponents × cache capacities.
//
// The workload models a repeated-hot-spot query log: a finite pool of
// distinct query points is sampled with Zipf-rank repetition, so the rank-r
// point recurs with probability ∝ 1/(r+1)^s. Exponent 0 spreads queries
// uniformly over the pool (worst case for a cache, every point equally
// warm); higher exponents concentrate traffic on a few points the cache
// can memoize. Capacity 0 is the pass-through baseline each (backend,
// exponent) row's speedup is measured against; a capacity below the pool
// size exercises LRU eviction under load, a capacity above it reaches the
// steady state where every distinct point is memoized.
//
// The cache serves exact memoized answers (see caching_engine.h for the
// exactness contract), so the speedup column is pure recomputation
// avoided, not an approximation trade.
//
// Timed regions repeat to the PVERIFY_MIN_WALL_MS floor (default 100 ms);
// the cache is warmed with one untimed pass first, so rows measure the
// steady state. Results land in BENCH_cache.json for CI trend tracking.
//
// Environment overrides: PVERIFY_QUERIES, PVERIFY_DATASET,
// PVERIFY_THREADS (first entry = worker threads), PVERIFY_MIN_WALL_MS.
#include <cmath>
#include <cstdio>
#include <memory>
#include <random>
#include <vector>

#include "bench_util/harness.h"
#include "engine/caching_engine.h"

using namespace pverify;

namespace {

/// Samples `count` query points from a finite pool with Zipf-rank
/// repetition: pool rank r is drawn with probability ∝ 1/(r+1)^exponent.
/// Unlike datagen::MakeQueryPointsZipf (which scatters every sample around
/// a hotspot, making each point unique), this repeats EXACT points — the
/// access pattern an exact-match cache can serve.
std::vector<double> SampleZipfStream(const std::vector<double>& pool,
                                     size_t count, double exponent,
                                     uint64_t seed) {
  std::vector<double> weights(pool.size());
  for (size_t r = 0; r < pool.size(); ++r) {
    weights[r] = 1.0 / std::pow(static_cast<double>(r + 1), exponent);
  }
  std::discrete_distribution<size_t> rank(weights.begin(), weights.end());
  std::mt19937_64 rng(seed);
  std::vector<double> stream;
  stream.reserve(count);
  for (size_t i = 0; i < count; ++i) stream.push_back(pool[rank(rng)]);
  return stream;
}

std::unique_ptr<Engine> MakeBackend(const std::string& name,
                                    const Dataset& data, size_t threads) {
  if (name == "sharded") {
    ShardedEngineOptions sopt;
    sopt.num_shards = 2;
    sopt.num_threads = threads;
    return std::make_unique<ShardedQueryEngine>(data, sopt);
  }
  EngineOptions eopt;
  eopt.num_threads = threads;
  return std::make_unique<QueryEngine>(data, eopt);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Caching-tier throughput across Zipf skew and cache capacity",
      "Queries/sec of a CachingEngine over both backends on a Zipf-repeated\n"
      "query stream (finite pool of distinct points, rank-skewed repetition;\n"
      "VR strategy, P=0.3, Δ=0.01). Capacity 0 = pass-through baseline per\n"
      "(backend, exponent); hit_rate is the fraction of cacheable lookups\n"
      "served from memory during the timed region.");

  const size_t queries = bench::QueriesFromEnv(256);
  const size_t dataset_size = bench::DatasetSizeFromEnv(20000);
  const double min_wall_ms = bench::MinWallMsFromEnv();
  const size_t threads = bench::ThreadCountsFromEnv({4})[0];
  const size_t pool_size = 64;  // distinct query points in the workload

  std::printf(
      "dataset: %zu objects, %zu queries/rep over %zu distinct points, "
      "%zu worker threads, floor: %.0f ms\n\n",
      dataset_size, queries, pool_size, threads, min_wall_ms);

  bench::BenchJsonWriter json("cache_throughput", "BENCH_cache.json");
  json.Config("queries", static_cast<double>(queries));
  json.Config("dataset", static_cast<double>(dataset_size));
  json.Config("pool_size", static_cast<double>(pool_size));
  json.Config("threads", static_cast<double>(threads));
  json.Config("min_wall_ms", min_wall_ms);

  bench::Environment env = bench::MakeDefaultEnvironment(
      datagen::PdfKind::kUniform, pool_size, dataset_size);

  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;

  const std::vector<double> exponents = {0.0, 0.5, 1.0};
  // Pass-through baseline, eviction-bound (capacity < pool), steady state.
  const std::vector<size_t> capacities = {0, 16, 4096};

  ResultTable table({"backend", "zipf_s", "capacity", "reps", "wall_ms",
                     "queries_per_sec", "hit_rate", "cache_speedup"},
                    "cache_throughput.csv");

  for (const char* backend_name : {"unsharded", "sharded"}) {
    for (double exponent : exponents) {
      const std::vector<double> stream =
          SampleZipfStream(env.query_points, queries, exponent,
                           /*seed=*/211);
      double baseline_qps = 0.0;
      for (size_t capacity : capacities) {
        std::unique_ptr<Engine> backend =
            MakeBackend(backend_name, env.dataset, threads);
        CachingEngineOptions copt;
        copt.capacity = capacity;
        CachingEngine cached(*backend, copt);

        // Untimed warm-up: spawn the pool, size the scratches, populate
        // the cache so the floored loop measures the steady state.
        bench::TimeBatch(cached, stream, opt);
        const CacheStats before = cached.GetCacheStats();
        bench::ThroughputPoint point =
            bench::TimeBatchFloored(cached, stream, opt, min_wall_ms);
        const CacheStats after = cached.GetCacheStats();

        const size_t lookups = (after.hits - before.hits) +
                               (after.misses - before.misses) +
                               (after.rechecks - before.rechecks);
        const double hit_rate =
            lookups > 0
                ? static_cast<double>(after.hits - before.hits) / lookups
                : 0.0;
        const bool is_base = capacity == 0;
        if (is_base) baseline_qps = point.Qps();
        const double speedup =
            baseline_qps > 0.0 ? point.Qps() / baseline_qps : 0.0;

        table.AddRow({backend_name, FormatDouble(exponent, 1),
                      std::to_string(capacity), std::to_string(point.reps),
                      FormatDouble(point.wall_ms, 2),
                      FormatDouble(point.Qps(), 1),
                      FormatDouble(hit_rate, 3), FormatDouble(speedup, 2)});
        json.BeginResult();
        json.Field("section", "cache_sweep");
        json.Field("backend", backend_name);
        json.Field("zipf_exponent", exponent);
        json.Field("capacity", static_cast<double>(capacity));
        json.Field("threads", static_cast<double>(threads));
        json.Field("reps", static_cast<double>(point.reps));
        json.Field("wall_ms", point.wall_ms);
        json.Field("qps", point.Qps());
        json.Field("hit_rate", hit_rate);
        json.Field("speedup", speedup);
      }
    }
  }
  table.Print();
  json.Write();

  std::printf(
      "\nNote: the capacity-0 rows are the uncached pass-through baseline.\n"
      "Speedup grows with the Zipf exponent (more of the stream repeats the\n"
      "hot ranks) and with capacity up to the pool size; the capacity-16\n"
      "rows pay LRU eviction on the long tail. Answers are bit-identical\n"
      "to the uncached backend in every cell.\n");
  return 0;
}
