// Ablation — disk-paged subregion lists (paper §IV-D implementation note):
// page I/O of verifier access patterns against the paged layout. RS touches
// only the rightmost subregion's pages; a full subregion sweep (the L-SR /
// U-SR access pattern) touches every page once — so the page counts expose
// exactly why the verifier chain is I/O-friendly on disk.
#include "bench_util/harness.h"
#include "core/subregion_store.h"

using namespace pverify;

int main() {
  bench::PrintHeader(
      "Ablation — paged subregion store",
      "Pages and page reads per query for the RS access pattern vs. a full\n"
      "subregion sweep (L-SR/U-SR pattern), per page size. Long-Beach-like\n"
      "dataset, averaged over queries.");

  const size_t queries = bench::QueriesFromEnv(15);
  bench::Environment env = bench::MakeDefaultEnvironment(
      datagen::PdfKind::kUniform, queries, 53144);

  ResultTable table({"page_bytes", "avg_pages", "storage_kb", "rs_reads",
                     "sweep_reads"},
                    "ablation_paged_store.csv");
  for (size_t page_bytes : {512u, 1024u, 4096u, 16384u}) {
    double pages = 0, storage = 0, rs_reads = 0, sweep_reads = 0;
    size_t n = 0;
    for (double q : env.query_points) {
      FilterResult fr = env.executor.Filter(q);
      CandidateSet cands =
          CandidateSet::Build1D(env.dataset, fr.candidates, q);
      if (cands.empty()) continue;
      SubregionTable tbl = SubregionTable::Build(cands);
      PagedSubregionStore::Options opts;
      opts.page_bytes = page_bytes;
      PagedSubregionStore store = PagedSubregionStore::Build(tbl, opts);
      pages += static_cast<double>(store.num_pages());
      storage += static_cast<double>(store.StorageBytes()) / 1024.0;

      store.ResetCounters();
      RsUpperBoundsFromStore(store, cands.size());
      rs_reads += static_cast<double>(store.page_reads());

      store.ResetCounters();
      for (size_t j = 0; j < store.num_subregions(); ++j) {
        store.ForEachEntry(j, [](const SubregionEntry&) {});
      }
      sweep_reads += static_cast<double>(store.page_reads());
      ++n;
    }
    table.AddRow({FormatDouble(page_bytes, 0),
                  FormatDouble(pages / n, 1), FormatDouble(storage / n, 1),
                  FormatDouble(rs_reads / n, 1),
                  FormatDouble(sweep_reads / n, 1)});
  }
  table.Print();
  return 0;
}
