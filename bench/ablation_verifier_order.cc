// Ablation — verifier chain composition: the paper orders verifiers by
// cost ({RS, L-SR, U-SR}). We compare alternative chains by verification
// time and by how many candidates remain unknown.
#include <memory>

#include "bench_util/harness.h"
#include "common/timer.h"
#include "core/framework.h"

using namespace pverify;
namespace {

std::vector<std::unique_ptr<Verifier>> MakeChain(const std::string& spec) {
  std::vector<std::unique_ptr<Verifier>> chain;
  for (char c : spec) {
    if (c == 'R') chain.push_back(std::make_unique<RsVerifier>());
    if (c == 'L') chain.push_back(std::make_unique<LsrVerifier>());
    if (c == 'U') chain.push_back(std::make_unique<UsrVerifier>());
  }
  return chain;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation — verifier chain composition",
      "Verification time and unknown fraction for different verifier\n"
      "chains at P=0.3, Δ=0.01 (R=RS, L=L-SR, U=U-SR). The paper's chain\n"
      "is RLU — cheap verifiers first.");

  const size_t queries = bench::QueriesFromEnv(20);
  const size_t count = bench::DatasetSizeFromEnv(53144);
  bench::Environment env =
      bench::MakeDefaultEnvironment(datagen::PdfKind::kUniform, queries,
                                    count);

  ResultTable table({"chain", "verify_ms", "unknown_fraction"},
                    "ablation_verifier_order.csv");
  for (const std::string spec : {"RLU", "ULR", "RU", "RL", "U", "L", "R"}) {
    double ms = 0.0;
    double unknown_frac = 0.0;
    size_t n = 0;
    for (double q : env.query_points) {
      FilterResult filtered = env.executor.Filter(q);
      CandidateSet cands =
          CandidateSet::Build1D(env.dataset, filtered.candidates, q);
      if (cands.empty()) continue;
      VerificationFramework fw(&cands, CpnnParams{0.3, 0.01});
      Timer t;
      VerificationStats stats = fw.Run(MakeChain(spec));
      ms += t.ElapsedMs();
      unknown_frac += static_cast<double>(stats.unknown_after) /
                      static_cast<double>(cands.size());
      ++n;
    }
    table.AddRow({spec, FormatDouble(ms / n, 4),
                  FormatDouble(unknown_frac / n, 3)});
  }
  table.Print();
  return 0;
}
