// Batched distance-cdf evaluation: per-point binary search vs. merge scan.
//
// The subregion table build evaluates every candidate's piecewise-linear
// cdf at all M+1 sorted end-points. The seed did that as M+1 independent
// IntegralTo calls — each an O(log pieces) binary search; the batched
// StepFunction::IntegralToSorted walks the breakpoints once per row,
// O(pieces + M). This bench pins the crossover across piece counts and
// batch sizes; results land in machine-readable BENCH_piecewise.json
// (fields pointwise_us / merge_us / speedup) for CI trend tracking and
// ci/compare_bench.py.
//
// Every timed region repeats until it crosses the measurement floor
// (PVERIFY_MIN_WALL_MS, default 100 ms).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util/harness.h"
#include "common/piecewise.h"
#include "common/rng.h"
#include "common/timer.h"

using namespace pverify;

namespace {

StepFunction MakeRandomStep(int pieces, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> breaks;
  double x = 0.0;
  breaks.push_back(x);
  for (int i = 0; i < pieces; ++i) {
    x += rng.Uniform(0.01, 1.0);
    breaks.push_back(x);
  }
  std::vector<double> values;
  for (int i = 0; i < pieces; ++i) values.push_back(rng.Uniform(0.0, 2.0));
  return StepFunction(std::move(breaks), std::move(values));
}

/// Sorted batch spanning the support with a little out-of-support spill —
/// the shape of a subregion end-point row.
std::vector<double> MakeSortedBatch(const StepFunction& f, size_t n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  const double lo = f.support_lo();
  const double hi = f.support_hi();
  for (size_t i = 0; i < n; ++i) {
    xs.push_back(lo + rng.Uniform(-0.05, 1.05) * (hi - lo));
  }
  std::sort(xs.begin(), xs.end());
  return xs;
}

template <typename F>
double TimedUs(F&& body, double min_wall_ms) {
  double ms = 0.0;
  size_t reps = 0;
  do {
    Timer t;
    body();
    ms += t.ElapsedMs();
    ++reps;
  } while (ms < min_wall_ms);
  return 1000.0 * ms / static_cast<double>(reps);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Piecewise cdf lookup — per-point binary search vs. merge scan",
      "One batched IntegralToSorted merge scan vs. a loop of scalar\n"
      "IntegralTo binary searches over the same sorted batch. The merge\n"
      "scan is O(pieces + batch) and bit-identical; the scalar loop is\n"
      "O(batch · log pieces).");

  const double min_wall_ms = bench::MinWallMsFromEnv();
  std::printf("floor: %.0f ms per timed region\n\n", min_wall_ms);

  bench::BenchJsonWriter json("piecewise_lookup", "BENCH_piecewise.json");
  json.Config("min_wall_ms", min_wall_ms);

  ResultTable table({"pieces", "batch", "pointwise_us", "merge_us", "speedup"},
                    "piecewise_lookup.csv");

  double sink = 0.0;  // defeats dead-code elimination of the timed loops
  for (int pieces : {8, 64, 512}) {
    const StepFunction f = MakeRandomStep(pieces, 17 + pieces);
    for (size_t batch : {16u, 128u, 1024u}) {
      const std::vector<double> xs = MakeSortedBatch(f, batch, 23 + batch);
      std::vector<double> out(batch);

      const double pointwise_us = TimedUs(
          [&] {
            for (size_t i = 0; i < batch; ++i) out[i] = f.IntegralTo(xs[i]);
            sink += out[batch - 1];
          },
          min_wall_ms);
      const double merge_us = TimedUs(
          [&] {
            f.IntegralToSorted(xs.data(), batch, out.data());
            sink += out[batch - 1];
          },
          min_wall_ms);
      const double speedup = merge_us > 0.0 ? pointwise_us / merge_us : 0.0;

      table.AddRow({FormatDouble(pieces, 0), FormatDouble(batch, 0),
                    FormatDouble(pointwise_us, 3), FormatDouble(merge_us, 3),
                    FormatDouble(speedup, 2) + "x"});
      json.BeginResult();
      json.Field("pieces", static_cast<double>(pieces));
      json.Field("batch", static_cast<double>(batch));
      json.Field("pointwise_us", pointwise_us);
      json.Field("merge_us", merge_us);
      json.Field("speedup", speedup);
    }
  }
  table.Print();
  json.Write();
  std::printf("(checksum %.3f)\n", sink);
  return 0;
}
