// Google-benchmark micro-benchmarks for the core operations: distance-pdf
// folding, subregion-table construction, verifier passes, exact
// integration, R-tree filtering and Monte-Carlo sampling.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/basic.h"
#include "core/framework.h"
#include "core/monte_carlo.h"
#include "core/query.h"
#include "core/refine.h"
#include "datagen/synthetic.h"
#include "spatial/filter.h"

namespace pverify {
namespace {

Dataset MakeOverlapping(size_t n, uint64_t seed) {
  Dataset data;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double lo = rng.Uniform(0.0, 10.0);
    data.emplace_back(static_cast<ObjectId>(i),
                      MakeUniformPdf(lo, lo + rng.Uniform(30.0, 60.0)));
  }
  return data;
}

CandidateSet MakeCandidates(size_t n, uint64_t seed) {
  Dataset data = MakeOverlapping(n, seed);
  std::vector<uint32_t> idx(n);
  for (uint32_t i = 0; i < n; ++i) idx[i] = i;
  return CandidateSet::Build1D(data, idx, 0.0);
}

void BM_DistanceFoldUniform(benchmark::State& state) {
  Pdf pdf = MakeUniformPdf(0.0, 50.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DistanceDistribution::From1D(pdf, 20.0));
  }
}
BENCHMARK(BM_DistanceFoldUniform);

void BM_DistanceFoldGaussian300(benchmark::State& state) {
  Pdf pdf = MakeGaussianPdf(0.0, 50.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DistanceDistribution::From1D(pdf, 20.0));
  }
}
BENCHMARK(BM_DistanceFoldGaussian300);

void BM_SubregionBuild(benchmark::State& state) {
  CandidateSet cands = MakeCandidates(state.range(0), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SubregionTable::Build(cands));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SubregionBuild)->Range(8, 512)->Complexity();

void BM_VerifierRS(benchmark::State& state) {
  CandidateSet cands = MakeCandidates(state.range(0), 5);
  SubregionTable tbl = SubregionTable::Build(cands);
  for (auto _ : state) {
    CandidateSet fresh = cands;
    VerificationContext ctx(&fresh, &tbl);
    RsVerifier().Apply(ctx);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VerifierRS)->Range(8, 512)->Complexity();

void BM_VerifierLSR(benchmark::State& state) {
  CandidateSet cands = MakeCandidates(state.range(0), 7);
  SubregionTable tbl = SubregionTable::Build(cands);
  for (auto _ : state) {
    CandidateSet fresh = cands;
    VerificationContext ctx(&fresh, &tbl);
    LsrVerifier().Apply(ctx);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VerifierLSR)->Range(8, 512)->Complexity();

void BM_VerifierUSR(benchmark::State& state) {
  CandidateSet cands = MakeCandidates(state.range(0), 9);
  SubregionTable tbl = SubregionTable::Build(cands);
  for (auto _ : state) {
    CandidateSet fresh = cands;
    VerificationContext ctx(&fresh, &tbl);
    UsrVerifier().Apply(ctx);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VerifierUSR)->Range(8, 512)->Complexity();

void BM_BasicExactProbabilities(benchmark::State& state) {
  CandidateSet cands = MakeCandidates(state.range(0), 11);
  IntegrationOptions opts;
  opts.gauss_points = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeExactProbabilities(cands, opts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BasicExactProbabilities)->Range(8, 128)->Complexity();

void BM_MonteCarlo1000(benchmark::State& state) {
  CandidateSet cands = MakeCandidates(64, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MonteCarloProbabilities(cands, {1000, 17}));
  }
}
BENCHMARK(BM_MonteCarlo1000);

void BM_RTreeFilter(benchmark::State& state) {
  Dataset data = datagen::MakeUniformScatter(state.range(0), 10000.0, 16.5,
                                             19);
  PnnFilter filter(data);
  Rng rng(21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Filter(rng.Uniform(0.0, 10000.0)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RTreeFilter)->Range(1000, 64000)->Complexity();

void BM_FilterByScan(benchmark::State& state) {
  Dataset data = datagen::MakeUniformScatter(state.range(0), 10000.0, 16.5,
                                             19);
  Rng rng(23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FilterByScan(data, rng.Uniform(0.0, 10000.0)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FilterByScan)->Range(1000, 64000)->Complexity();

void BM_EndToEndVR(benchmark::State& state) {
  Dataset data = datagen::MakeLongBeachLike();
  CpnnExecutor exec(data);
  Rng rng(25);
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;
  opt.integration.gauss_points = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(rng.Uniform(0.0, 10000.0), opt));
  }
}
BENCHMARK(BM_EndToEndVR);

}  // namespace
}  // namespace pverify

BENCHMARK_MAIN();
