// Ablation — quadrature order: accuracy/time trade-off of the
// Gauss-Legendre node count used by the Basic evaluator and refinement.
// The integrand is piecewise-polynomial between global breakpoints, so very
// low orders are already near-exact on uniform pdfs; Gaussian histograms
// stress the segmentation instead.
#include <cmath>

#include "bench_util/harness.h"
#include "common/timer.h"
#include "core/basic.h"

using namespace pverify;

int main() {
  bench::PrintHeader(
      "Ablation — quadrature order",
      "Max |error| of Basic probabilities vs. a 16-node reference, and\n"
      "evaluation time, per Gauss-Legendre node count.");

  const size_t queries = bench::QueriesFromEnv(5);
  bench::Environment env = bench::MakeDefaultEnvironment(
      datagen::PdfKind::kUniform, queries, 20000);

  // Reference probabilities with the highest supported order.
  std::vector<std::vector<double>> reference;
  std::vector<CandidateSet> sets;
  for (double q : env.query_points) {
    FilterResult fr = env.executor.Filter(q);
    CandidateSet cands =
        CandidateSet::Build1D(env.dataset, fr.candidates, q);
    if (cands.empty()) continue;
    IntegrationOptions ref;
    ref.gauss_points = 16;
    reference.push_back(ComputeExactProbabilities(cands, ref));
    sets.push_back(std::move(cands));
  }

  ResultTable table({"gauss_points", "max_abs_error", "sum_error",
                     "avg_ms"},
                    "ablation_quadrature.csv");
  for (int points : {2, 4, 8, 16}) {
    IntegrationOptions opts;
    opts.gauss_points = points;
    double max_err = 0.0;
    double sum_err = 0.0;
    double ms = 0.0;
    for (size_t s = 0; s < sets.size(); ++s) {
      Timer t;
      std::vector<double> probs = ComputeExactProbabilities(sets[s], opts);
      ms += t.ElapsedMs();
      double sum = 0.0;
      for (size_t i = 0; i < probs.size(); ++i) {
        max_err = std::max(max_err, std::abs(probs[i] - reference[s][i]));
        sum += probs[i];
      }
      sum_err = std::max(sum_err, std::abs(sum - 1.0));
    }
    table.AddRow({FormatDouble(points, 0),
                  FormatDouble(max_err, 10),
                  FormatDouble(sum_err, 10),
                  FormatDouble(ms / static_cast<double>(sets.size()), 4)});
  }
  table.Print();
  return 0;
}
