// Table III — verifier complexities: RS is O(|C|), L-SR and U-SR are
// O(|C|·M). We measure per-verifier apply time on candidate sets of growing
// size and report the scaling against |C| and |C|·M.
#include <memory>

#include "bench_util/harness.h"
#include "common/timer.h"
#include "core/framework.h"

using namespace pverify;

int main() {
  bench::PrintHeader(
      "Table III — Verifier costs",
      "Apply time (µs) of each verifier vs. candidate-set size. RS should\n"
      "scale with |C|; L-SR and U-SR with |C|·M (subregion count M grows\n"
      "with |C| here, so their curves bend upward).");

  ResultTable table({"candidates", "M", "rs_us", "lsr_us", "usr_us",
                     "subregion_build_us"},
                    "tab3.csv");

  for (size_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    // Overlapping intervals around a query at 0 so all n survive filtering.
    Dataset data;
    Rng rng(n);
    for (size_t i = 0; i < n; ++i) {
      double lo = rng.Uniform(0.0, 10.0);
      data.emplace_back(static_cast<ObjectId>(i),
                        MakeUniformPdf(lo, lo + rng.Uniform(30.0, 60.0)));
    }
    std::vector<uint32_t> idx(n);
    for (uint32_t i = 0; i < n; ++i) idx[i] = i;
    CandidateSet cands = CandidateSet::Build1D(data, idx, 0.0);

    Timer t;
    SubregionTable tbl = SubregionTable::Build(cands);
    double build_us = t.ElapsedUs();

    const int reps = 20;
    double us[3] = {0, 0, 0};
    std::unique_ptr<Verifier> verifiers[3];
    verifiers[0] = std::make_unique<RsVerifier>();
    verifiers[1] = std::make_unique<LsrVerifier>();
    verifiers[2] = std::make_unique<UsrVerifier>();
    for (int v = 0; v < 3; ++v) {
      for (int rep = 0; rep < reps; ++rep) {
        CandidateSet fresh = cands;  // unlabeled copy
        VerificationContext ctx(&fresh, &tbl);
        Timer tv;
        verifiers[v]->Apply(ctx);
        us[v] += tv.ElapsedUs();
      }
      us[v] /= reps;
    }
    table.AddRow({FormatDouble(cands.size(), 0),
                  FormatDouble(tbl.num_subregions(), 0),
                  FormatDouble(us[0], 2), FormatDouble(us[1], 2),
                  FormatDouble(us[2], 2), FormatDouble(build_us, 2)});
  }
  table.Print();
  return 0;
}
