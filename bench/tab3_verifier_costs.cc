// Table III — verifier complexities: RS is O(|C|), L-SR and U-SR are
// O(|C|·M). We measure per-verifier apply time on candidate sets of growing
// size, in both the scalar reference and the vectorized (PVERIFY_SIMD)
// kernels, plus the batched RefreshAllBounds kernel on its own — the
// Eq. 4 bound refresh is the verifier chain's shared inner loop and the
// headline number for the SIMD build.
//
// Every timed region repeats until it crosses the measurement floor
// (PVERIFY_MIN_WALL_MS, default 100 ms); per-rep setup (candidate-set
// copies, label resets) stays outside the timed region. Results land in
// machine-readable BENCH_verifier.json for CI trend tracking; in a build
// without PVERIFY_SIMD only the scalar columns are measured.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util/harness.h"
#include "common/timer.h"
#include "core/framework.h"
#include "core/simd.h"

using namespace pverify;

namespace {

/// Overlapping intervals around a query at 0 so all n survive filtering.
/// `gaussian` swaps the 1-piece uniform pdfs for 300-bar Gaussian
/// histograms — the many-piece regime where the merge-scan cdf fill beats
/// per-point binary search.
Dataset MakeOverlappingDataset(size_t n, bool gaussian = false) {
  Dataset data;
  Rng rng(n);
  for (size_t i = 0; i < n; ++i) {
    double lo = rng.Uniform(0.0, 10.0);
    double hi = lo + rng.Uniform(30.0, 60.0);
    data.emplace_back(static_cast<ObjectId>(i),
                      gaussian ? MakeGaussianPdf(lo, hi)
                               : MakeUniformPdf(lo, hi));
  }
  return data;
}

/// Average time (µs) to fill all n cdf rows of the subregion table's SoA
/// layout at the M+1 sorted end-points: the seed's per-point Cdf loop vs.
/// the batched merge scan the build now uses (one pass over each distance
/// pdf's pieces; bit-identical results).
void TimedCdfFillUs(const CandidateSet& cands, const SubregionTable& tbl,
                    double min_wall_ms, double* pointwise_us,
                    double* merge_us) {
  const size_t m1 = tbl.num_subregions() + 1;
  const double* endpoints = tbl.EndpointData();
  std::vector<double> row(m1);
  for (int mode = 0; mode < 2; ++mode) {
    double ms = 0.0;
    size_t reps = 0;
    do {
      Timer t;
      for (size_t i = 0; i < cands.size(); ++i) {
        const DistanceDistribution& dist = cands[i].dist;
        if (mode == 0) {
          for (size_t j = 0; j < m1; ++j) row[j] = dist.Cdf(endpoints[j]);
        } else {
          dist.CdfSorted(endpoints, m1, row.data());
        }
      }
      ms += t.ElapsedMs();
      ++reps;
    } while (ms < min_wall_ms);
    *(mode == 0 ? pointwise_us : merge_us) =
        1000.0 * ms / static_cast<double>(reps);
  }
}

/// Average per-apply time (µs), repeated to the floor. Each rep gets an
/// unlabeled candidate-set copy and a fresh context (untimed) so every
/// Apply sees identical work.
double TimedApplyUs(Verifier& verifier, const CandidateSet& cands,
                    const SubregionTable& tbl, double min_wall_ms) {
  double ms = 0.0;
  size_t reps = 0;
  do {
    CandidateSet fresh = cands;
    VerificationContext ctx(&fresh, &tbl);
    Timer t;
    verifier.Apply(ctx);
    ms += t.ElapsedMs();
    ++reps;
  } while (ms < min_wall_ms);
  return 1000.0 * ms / static_cast<double>(reps);
}

/// Average time (µs) of one batched RefreshAllBounds pass over the whole
/// candidate set. The qlow/qup rows are populated once by the L-SR and
/// U-SR verifiers so the Eq. 4 sums run over realistic slot values; labels
/// are reset (untimed) before every rep so the pass always visits every
/// candidate.
double TimedRefreshUs(const CandidateSet& cands, const SubregionTable& tbl,
                      double min_wall_ms) {
  CandidateSet fresh = cands;
  VerificationContext ctx(&fresh, &tbl);
  LsrVerifier().Apply(ctx);
  UsrVerifier().Apply(ctx);
  double ms = 0.0;
  size_t reps = 0;
  do {
    for (size_t i = 0; i < fresh.size(); ++i) {
      fresh[i].label = Label::kUnknown;
    }
    Timer t;
    ctx.RefreshAllBounds();
    ms += t.ElapsedMs();
    ++reps;
  } while (ms < min_wall_ms);
  return 1000.0 * ms / static_cast<double>(reps);
}

std::string SpeedupCell(double scalar_us, double simd_us) {
  if (simd_us <= 0.0) return "-";
  return FormatDouble(scalar_us / simd_us, 2) + "x";
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table III — Verifier costs (scalar vs. SIMD kernels)",
      "Apply time (µs) of each verifier and of the batched Eq. 4 bound\n"
      "refresh vs. candidate-set size. RS should scale with |C|; L-SR,\n"
      "U-SR and the refresh with |C|·M. The *_v columns rerun the same\n"
      "work through the vectorized kernels (only in PVERIFY_SIMD builds).");

  const double min_wall_ms = bench::MinWallMsFromEnv();
  const bool simd = SimdKernelsCompiled();
  std::printf("floor: %.0f ms per timed region, SIMD kernels: %s\n\n",
              min_wall_ms, simd ? "compiled" : "not compiled");

  bench::BenchJsonWriter json("tab3_verifier_costs", "BENCH_verifier.json");
  json.Config("min_wall_ms", min_wall_ms);
  json.Config("simd_compiled", simd ? 1.0 : 0.0);

  ResultTable table(
      {"candidates", "M", "rs_us", "rs_v", "lsr_us", "lsr_v", "lsr_x",
       "usr_us", "usr_v", "usr_x", "refresh_us", "refresh_v", "refresh_x"},
      "tab3.csv");
  ResultTable fill_table(
      {"pdf", "candidates", "M", "pdf_pieces", "pointwise_us", "merge_us",
       "fill_x"},
      "tab3_cdf_fill.csv");

  for (size_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    Dataset data = MakeOverlappingDataset(n);
    std::vector<uint32_t> idx(n);
    for (uint32_t i = 0; i < n; ++i) idx[i] = i;
    CandidateSet cands = CandidateSet::Build1D(data, idx, 0.0);
    SubregionTable tbl = SubregionTable::Build(cands);

    const char* names[3] = {"rs", "lsr", "usr"};
    std::unique_ptr<Verifier> verifiers[3];
    verifiers[0] = std::make_unique<RsVerifier>();
    verifiers[1] = std::make_unique<LsrVerifier>();
    verifiers[2] = std::make_unique<UsrVerifier>();

    // [stage][mode]: stages 0..2 are the verifiers, 3 is RefreshAllBounds;
    // mode 0 scalar, mode 1 vectorized.
    double us[4][2] = {};
    for (int mode = 0; mode < (simd ? 2 : 1); ++mode) {
      SetSimdKernelsEnabled(mode == 1);
      for (int v = 0; v < 3; ++v) {
        us[v][mode] = TimedApplyUs(*verifiers[v], cands, tbl, min_wall_ms);
      }
      us[3][mode] = TimedRefreshUs(cands, tbl, min_wall_ms);
    }
    SetSimdKernelsEnabled(SimdKernelsCompiled());  // restore the default

    table.AddRow({FormatDouble(cands.size(), 0),
                  FormatDouble(tbl.num_subregions(), 0),
                  FormatDouble(us[0][0], 2), FormatDouble(us[0][1], 2),
                  FormatDouble(us[1][0], 2), FormatDouble(us[1][1], 2),
                  SpeedupCell(us[1][0], us[1][1]),
                  FormatDouble(us[2][0], 2), FormatDouble(us[2][1], 2),
                  SpeedupCell(us[2][0], us[2][1]),
                  FormatDouble(us[3][0], 2), FormatDouble(us[3][1], 2),
                  SpeedupCell(us[3][0], us[3][1])});

    for (int s = 0; s < 4; ++s) {
      json.BeginResult();
      json.Field("stage", s < 3 ? names[s] : "refresh_all_bounds");
      json.Field("candidates", static_cast<double>(cands.size()));
      json.Field("subregions", static_cast<double>(tbl.num_subregions()));
      json.Field("scalar_us", us[s][0]);
      if (simd) {
        json.Field("simd_us", us[s][1]);
        json.Field("speedup", us[s][1] > 0.0 ? us[s][0] / us[s][1] : 0.0);
      }
    }
  }
  table.Print();

  // Subregion-table cdf fill: the merge scan is independent of the kernel
  // flavor (bit-identical, always on), so it gets its own stage rows. The
  // uniform pdfs are the 1-piece floor; the 300-bar Gaussian histograms
  // are the many-piece regime the merge scan targets.
  std::printf("\nSubregion cdf fill — per-point binary search vs. merge "
              "scan\n\n");
  for (bool gaussian : {false, true}) {
    for (size_t n : {64u, 256u}) {
      Dataset data = MakeOverlappingDataset(n, gaussian);
      std::vector<uint32_t> idx(n);
      for (uint32_t i = 0; i < n; ++i) idx[i] = i;
      CandidateSet cands = CandidateSet::Build1D(data, idx, 0.0);
      SubregionTable tbl = SubregionTable::Build(cands);
      const size_t pieces = cands[0].dist.pdf().num_pieces();
      double pointwise_us = 0.0, merge_us = 0.0;
      TimedCdfFillUs(cands, tbl, min_wall_ms, &pointwise_us, &merge_us);
      fill_table.AddRow(
          {gaussian ? "gaussian" : "uniform", FormatDouble(cands.size(), 0),
           FormatDouble(tbl.num_subregions(), 0), FormatDouble(pieces, 0),
           FormatDouble(pointwise_us, 2), FormatDouble(merge_us, 2),
           SpeedupCell(pointwise_us, merge_us)});
      json.BeginResult();
      json.Field("stage", "subregion_cdf_fill");
      json.Field("pdf", gaussian ? "gaussian" : "uniform");
      json.Field("candidates", static_cast<double>(cands.size()));
      json.Field("subregions", static_cast<double>(tbl.num_subregions()));
      json.Field("pdf_pieces", static_cast<double>(pieces));
      json.Field("pointwise_us", pointwise_us);
      json.Field("merge_us", merge_us);
      json.Field("speedup", merge_us > 0.0 ? pointwise_us / merge_us : 0.0);
    }
  }
  fill_table.Print();
  json.Write();
  return 0;
}
