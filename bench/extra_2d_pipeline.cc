// Extra experiment (beyond the paper) — the 2-D extension: strategy costs
// over 2-D uncertain regions, validating that the verifier savings carry
// over when distance cdfs come from exact circle/rectangle geometry.
#include "bench_util/harness.h"
#include "core/query2d.h"

using namespace pverify;

int main() {
  bench::PrintHeader(
      "Extra — 2-D pipeline",
      "Average per-query time (ms) over 2-D uniform regions (circles and\n"
      "rectangles) for Basic / Refine / VR, Δ=0.01. The paper only sketches\n"
      "the 2-D extension; this validates the verifiers end to end on it.");

  const size_t queries = bench::QueriesFromEnv(10);
  datagen::Synthetic2DConfig config;
  config.count = 5000;
  config.mean_extent = 40.0;
  config.max_extent = 160.0;
  Dataset2D data = datagen::MakeSynthetic2D(config);
  CpnnExecutor2D exec(std::move(data));
  Rng rng(71);
  std::vector<Point2> points;
  for (size_t i = 0; i < queries; ++i) {
    points.push_back({rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)});
  }

  ResultTable table({"P", "basic_ms", "refine_ms", "vr_ms",
                     "avg_candidates"},
                    "extra_2d.csv");
  for (double P : {0.2, 0.4, 0.6}) {
    double ms[3] = {0, 0, 0};
    double cand = 0.0;
    Strategy strategies[3] = {Strategy::kBasic, Strategy::kRefine,
                              Strategy::kVR};
    for (int s = 0; s < 3; ++s) {
      QueryOptions opt;
      opt.params = {P, 0.01};
      opt.strategy = strategies[s];
      opt.integration.gauss_points = 8;
      for (const Point2& q : points) {
        QueryAnswer ans = exec.Execute(q, opt);
        ms[s] += ans.stats.total_ms;
        if (s == 0) cand += static_cast<double>(ans.stats.candidates);
      }
      ms[s] /= static_cast<double>(points.size());
    }
    table.AddRow({FormatDouble(P, 1), FormatDouble(ms[0], 3),
                  FormatDouble(ms[1], 3), FormatDouble(ms[2], 3),
                  FormatDouble(cand / static_cast<double>(points.size()),
                               1)});
  }
  table.Print();
  return 0;
}
