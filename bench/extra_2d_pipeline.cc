// Extra experiment (beyond the paper) — the 2-D extension: strategy costs
// over 2-D uncertain regions, validating that the verifier savings carry
// over when distance cdfs come from exact circle/rectangle geometry, plus
// the engine-native kPoint2D path: batched throughput at 1/2/4/8 worker
// threads against the sequential executor loop, so the 2-D batching win is
// measurable.
#include "bench_util/harness.h"
#include "core/query2d.h"
#include "datagen/workload.h"
#include "engine/query_engine.h"

using namespace pverify;

int main() {
  bench::PrintHeader(
      "Extra — 2-D pipeline",
      "Average per-query time (ms) over 2-D uniform regions (circles and\n"
      "rectangles) for Basic / Refine / VR, Δ=0.01, followed by the\n"
      "engine-native kPoint2D throughput sweep (scratch-backed batching).\n"
      "The paper only sketches the 2-D extension; this validates the\n"
      "verifiers and the engine path end to end on it.");

  const size_t queries = bench::QueriesFromEnv(10);
  datagen::Synthetic2DConfig config;
  config.count = bench::DatasetSizeFromEnv(5000);
  config.mean_extent = 40.0;
  config.max_extent = 160.0;
  Dataset2D data = datagen::MakeSynthetic2D(config);
  CpnnExecutor2D exec(data);
  Rng rng(71);
  std::vector<Point2> points;
  for (size_t i = 0; i < queries; ++i) {
    points.push_back({rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)});
  }

  ResultTable table({"P", "basic_ms", "refine_ms", "vr_ms",
                     "avg_candidates"},
                    "extra_2d.csv");
  for (double P : {0.2, 0.4, 0.6}) {
    double ms[3] = {0, 0, 0};
    double cand = 0.0;
    Strategy strategies[3] = {Strategy::kBasic, Strategy::kRefine,
                              Strategy::kVR};
    for (int s = 0; s < 3; ++s) {
      QueryOptions opt;
      opt.params = {P, 0.01};
      opt.strategy = strategies[s];
      opt.integration.gauss_points = 8;
      datagen::WorkloadResult run = datagen::RunWorkload2D(exec, points, opt);
      ms[s] = run.AvgTotalMs();
      if (s == 0) cand = run.AvgCandidates();
    }
    table.AddRow({FormatDouble(P, 1), FormatDouble(ms[0], 3),
                  FormatDouble(ms[1], 3), FormatDouble(ms[2], 3),
                  FormatDouble(cand, 1)});
  }
  table.Print();

  // Engine-native 2-D path: one kPoint2D batch per thread count, compared
  // against the sequential executor loop (the pre-engine behavior).
  QueryOptions opt;
  opt.params = {0.4, 0.01};
  opt.strategy = Strategy::kVR;
  opt.integration.gauss_points = 8;
  const std::vector<Point2> workload =
      datagen::MakeQueryPoints2D(queries * 4, 0.0, 1000.0, /*seed=*/103);
  bench::ThroughputPoint seq =
      bench::TimeSequentialLoop(exec, workload, opt);

  ResultTable engine_table({"threads", "wall_ms", "qps", "speedup"},
                           "extra_2d_engine.csv");
  engine_table.AddRow({"seq", FormatDouble(seq.wall_ms, 2),
                       FormatDouble(seq.Qps(), 1), FormatDouble(1.0, 2)});
  for (size_t threads : bench::ThreadCountsFromEnv({1, 2, 4, 8})) {
    EngineOptions eopt;
    eopt.num_threads = threads;
    QueryEngine owned(data, eopt);
    Engine& engine = owned;  // measured through the abstract interface
    // Warm-up batch: lets the per-worker scratch arenas reach the
    // workload's high-water mark before the timed run.
    bench::TimeBatch(engine, workload, opt);
    bench::ThroughputPoint point =
        bench::TimeBatch(engine, workload, opt);
    engine_table.AddRow(
        {std::to_string(threads), FormatDouble(point.wall_ms, 2),
         FormatDouble(point.Qps(), 1),
         FormatDouble(point.wall_ms > 0 ? seq.wall_ms / point.wall_ms : 0.0,
                      2)});
  }
  engine_table.Print();
  return 0;
}
