// Figure 12 — fraction of candidates still labeled `unknown` after each
// verifier in the chain {RS, L-SR, U-SR}, as a function of the threshold.
//
// Paper result: RS and U-SR get stronger at large P (they cut upper
// bounds → objects fail quickly); L-SR helps mostly at small P (it raises
// lower bounds → objects satisfy); U-SR outperforms L-SR on large
// candidate sets because individual probabilities are small.
//
// Two panels: the paper-scale dataset (|C| ≈ 96, where L-SR's 1/c_j floor
// is weak — the paper's own observation), and a small-candidate-set panel
// where the RS → L-SR gap at small P is clearly visible.
//
// A third section times the verifier chain per stage — scalar reference
// vs. the vectorized kernels (PVERIFY_SIMD builds) — with every timed
// region repeated to the measurement floor (PVERIFY_MIN_WALL_MS, default
// 100 ms), and writes the per-stage speedups to machine-readable
// BENCH_verifier_fractions.json for CI trend tracking.
#include <cstdio>
#include <vector>

#include "bench_util/harness.h"
#include "core/framework.h"
#include "core/simd.h"

using namespace pverify;

namespace {

void RunPanel(const char* title, size_t dataset_size, size_t queries) {
  bench::Environment env = bench::MakeDefaultEnvironment(
      datagen::PdfKind::kUniform, queries, dataset_size);
  std::printf("-- %s --\n", title);
  double avg_c = 0.0;
  ResultTable table({"P", "after_RS", "after_L-SR", "after_U-SR"},
                    std::string("fig12_") + std::to_string(dataset_size) +
                        ".csv");
  for (double P : {0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4}) {
    double frac[3] = {0, 0, 0};
    size_t n = 0;
    for (double q : env.query_points) {
      FilterResult filtered = env.executor.Filter(q);
      CandidateSet cands =
          CandidateSet::Build1D(env.dataset, filtered.candidates, q);
      if (cands.empty()) continue;
      avg_c += static_cast<double>(cands.size());
      VerificationFramework fw(&cands, CpnnParams{P, 0.01});
      VerificationStats stats = fw.RunDefault();
      // Stages the framework skipped (early exit) left zero unknowns.
      for (size_t s = 0; s < 3; ++s) {
        double unknown =
            s < stats.stages.size()
                ? static_cast<double>(stats.stages[s].unknown_after)
                : 0.0;
        frac[s] += unknown / static_cast<double>(cands.size());
      }
      ++n;
    }
    table.AddRow({FormatDouble(P, 2), FormatDouble(frac[0] / n, 3),
                  FormatDouble(frac[1] / n, 3),
                  FormatDouble(frac[2] / n, 3)});
  }
  table.Print();
  std::printf("(avg |C| = %.1f)\n\n",
              avg_c / (7.0 * static_cast<double>(env.query_points.size())));
}

/// Accumulated per-stage chain time over one workload pass (the
/// framework's own stage timers), averaged over floored repetitions.
struct StageTimes {
  double us[3] = {0, 0, 0};  ///< RS, L-SR, U-SR, per workload pass
  size_t reps = 0;
};

StageTimes TimeChain(const std::vector<CandidateSet>& base, double P,
                     double min_wall_ms) {
  StageTimes out;
  double wall = 0.0;
  do {
    double pass_ms[3] = {0, 0, 0};
    for (const CandidateSet& cands : base) {
      CandidateSet fresh = cands;  // unlabeled copy, untimed
      VerificationFramework fw(&fresh, CpnnParams{P, 0.01});
      VerificationStats stats = fw.RunDefault();
      for (size_t s = 0; s < stats.stages.size() && s < 3; ++s) {
        pass_ms[s] += stats.stages[s].ms;
      }
    }
    for (int s = 0; s < 3; ++s) {
      out.us[s] += 1000.0 * pass_ms[s];
      wall += pass_ms[s];
    }
    ++out.reps;
  } while (wall < min_wall_ms);
  for (double& u : out.us) u /= static_cast<double>(out.reps);
  return out;
}

void RunStageTiming(size_t dataset_size, size_t queries) {
  const double min_wall_ms = bench::MinWallMsFromEnv();
  const bool simd = SimdKernelsCompiled();
  const double P = 0.3;
  std::printf(
      "-- per-stage chain time, scalar vs. SIMD kernels (P=%.1f, floor "
      "%.0f ms) --\n",
      P, min_wall_ms);

  bench::Environment env = bench::MakeDefaultEnvironment(
      datagen::PdfKind::kUniform, queries, dataset_size);
  // Candidate sets built once; every timed pass copies them (untimed).
  std::vector<CandidateSet> base;
  for (double q : env.query_points) {
    FilterResult filtered = env.executor.Filter(q);
    CandidateSet cands =
        CandidateSet::Build1D(env.dataset, filtered.candidates, q);
    if (!cands.empty()) base.push_back(std::move(cands));
  }

  bench::BenchJsonWriter json("fig12_verifier_fractions",
                              "BENCH_verifier_fractions.json");
  json.Config("min_wall_ms", min_wall_ms);
  json.Config("simd_compiled", simd ? 1.0 : 0.0);
  json.Config("dataset", static_cast<double>(dataset_size));
  json.Config("queries", static_cast<double>(base.size()));
  json.Config("threshold", P);

  StageTimes times[2];
  for (int mode = 0; mode < (simd ? 2 : 1); ++mode) {
    SetSimdKernelsEnabled(mode == 1);
    times[mode] = TimeChain(base, P, min_wall_ms);
  }
  SetSimdKernelsEnabled(SimdKernelsCompiled());  // restore the default

  ResultTable table({"stage", "scalar_us", "simd_us", "speedup"},
                    "fig12_stage_times.csv");
  const char* names[3] = {"rs", "lsr", "usr"};
  for (int s = 0; s < 3; ++s) {
    const double scalar_us = times[0].us[s];
    const double simd_us = simd ? times[1].us[s] : 0.0;
    const double speedup = simd_us > 0.0 ? scalar_us / simd_us : 0.0;
    table.AddRow({names[s], FormatDouble(scalar_us, 2),
                  simd ? FormatDouble(simd_us, 2) : "-",
                  simd ? FormatDouble(speedup, 2) + "x" : "-"});
    json.BeginResult();
    json.Field("stage", names[s]);
    json.Field("scalar_us", scalar_us);
    if (simd) {
      json.Field("simd_us", simd_us);
      json.Field("speedup", speedup);
    }
  }
  table.Print();
  json.Write();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 12 — Fraction of unknown objects after RS / L-SR / U-SR",
      "Average fraction of candidate objects still undecided after each\n"
      "verifier stage (Δ=0.01), plus per-stage scalar-vs-SIMD chain times\n"
      "repeated to the measurement floor.");
  const size_t queries = bench::QueriesFromEnv(20);
  RunPanel("paper-scale dataset (53,144 intervals)",
           bench::DatasetSizeFromEnv(53144), queries);
  RunPanel("small candidate sets (5,000 intervals)", 5000, queries);
  RunStageTiming(bench::DatasetSizeFromEnv(53144), queries);
  return 0;
}
