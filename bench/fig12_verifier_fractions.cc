// Figure 12 — fraction of candidates still labeled `unknown` after each
// verifier in the chain {RS, L-SR, U-SR}, as a function of the threshold.
//
// Paper result: RS and U-SR get stronger at large P (they cut upper
// bounds → objects fail quickly); L-SR helps mostly at small P (it raises
// lower bounds → objects satisfy); U-SR outperforms L-SR on large
// candidate sets because individual probabilities are small.
//
// Two panels: the paper-scale dataset (|C| ≈ 96, where L-SR's 1/c_j floor
// is weak — the paper's own observation), and a small-candidate-set panel
// where the RS → L-SR gap at small P is clearly visible.
#include "bench_util/harness.h"
#include "core/framework.h"

using namespace pverify;

namespace {

void RunPanel(const char* title, size_t dataset_size, size_t queries) {
  bench::Environment env = bench::MakeDefaultEnvironment(
      datagen::PdfKind::kUniform, queries, dataset_size);
  std::printf("-- %s --\n", title);
  double avg_c = 0.0;
  ResultTable table({"P", "after_RS", "after_L-SR", "after_U-SR"},
                    std::string("fig12_") + std::to_string(dataset_size) +
                        ".csv");
  for (double P : {0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4}) {
    double frac[3] = {0, 0, 0};
    size_t n = 0;
    for (double q : env.query_points) {
      FilterResult filtered = env.executor.Filter(q);
      CandidateSet cands =
          CandidateSet::Build1D(env.dataset, filtered.candidates, q);
      if (cands.empty()) continue;
      avg_c += static_cast<double>(cands.size());
      VerificationFramework fw(&cands, CpnnParams{P, 0.01});
      VerificationStats stats = fw.RunDefault();
      // Stages the framework skipped (early exit) left zero unknowns.
      for (size_t s = 0; s < 3; ++s) {
        double unknown =
            s < stats.stages.size()
                ? static_cast<double>(stats.stages[s].unknown_after)
                : 0.0;
        frac[s] += unknown / static_cast<double>(cands.size());
      }
      ++n;
    }
    table.AddRow({FormatDouble(P, 2), FormatDouble(frac[0] / n, 3),
                  FormatDouble(frac[1] / n, 3),
                  FormatDouble(frac[2] / n, 3)});
  }
  table.Print();
  std::printf("(avg |C| = %.1f)\n\n",
              avg_c / (7.0 * static_cast<double>(env.query_points.size())));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 12 — Fraction of unknown objects after RS / L-SR / U-SR",
      "Average fraction of candidate objects still undecided after each\n"
      "verifier stage (Δ=0.01).");
  const size_t queries = bench::QueriesFromEnv(20);
  RunPanel("paper-scale dataset (53,144 intervals)",
           bench::DatasetSizeFromEnv(53144), queries);
  RunPanel("small candidate sets (5,000 intervals)", 5000, queries);
  return 0;
}
