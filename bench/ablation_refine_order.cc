// Ablation — refinement order: collapsing the largest-probability subregion
// first (library default) versus the natural left-to-right sweep.
//
// The design call in DESIGN.md: larger s_ij collapses more bound width per
// integration, so greedy ordering should decide candidates with fewer exact
// integrations.
#include "bench_util/harness.h"

using namespace pverify;

int main() {
  bench::PrintHeader(
      "Ablation — incremental refinement order",
      "Exact subregion integrations per query and refinement time for the\n"
      "two refinement orders (Long-Beach-like dataset, Δ=0.01).");

  const size_t queries = bench::QueriesFromEnv(15);
  const size_t count = bench::DatasetSizeFromEnv(53144);
  bench::Environment env =
      bench::MakeDefaultEnvironment(datagen::PdfKind::kUniform, queries,
                                    count);

  ResultTable table({"P", "greedy_integrations", "ltr_integrations",
                     "greedy_refine_ms", "ltr_refine_ms"},
                    "ablation_refine_order.csv");
  for (double P : {0.1, 0.2, 0.3}) {
    double integ[2] = {0, 0};
    double ms[2] = {0, 0};
    RefineOrder orders[2] = {RefineOrder::kBySubregionProbability,
                             RefineOrder::kLeftToRight};
    for (int o = 0; o < 2; ++o) {
      QueryOptions opt;
      opt.params = {P, 0.01};
      opt.strategy = Strategy::kVR;
      opt.refine_order = orders[o];
      opt.integration.gauss_points = 8;
      datagen::WorkloadResult r =
          datagen::RunWorkload(env.executor, env.query_points, opt);
      integ[o] =
          static_cast<double>(r.totals.subregion_integrations) / r.queries;
      ms[o] = r.AvgRefineMs();
    }
    table.AddRow({FormatDouble(P, 1), FormatDouble(integ[0], 1),
                  FormatDouble(integ[1], 1), FormatDouble(ms[0], 4),
                  FormatDouble(ms[1], 4)});
  }
  table.Print();
  return 0;
}
