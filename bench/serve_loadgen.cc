// Open-loop load generator for pverify_serve: measures service latency and
// saturation throughput over loopback, the way a latency SLO would.
//
// An in-process net::Server is stood up on an ephemeral port; for each
// (cache capacity × connection count × offered QPS) configuration, every
// connection gets a sender thread firing request frames on a FIXED arrival
// schedule (sleep_until the precomputed slot — the sender never waits for
// responses) and a receiver thread draining response frames. Latency is
// measured from each request's *scheduled* send time, not its actual send
// time, so queueing delay when the server falls behind is charged to the
// server rather than silently absorbed (no coordinated omission).
//
// Reported per configuration: p50/p99/p999 latency (µs) and achieved QPS;
// per (connections, cache): the saturation point — the highest offered rate
// the server still sustained at ≥90%. Everything lands in BENCH_serve.json
// for CI to archive and diff.
//
// Environment knobs:
//   PVERIFY_DATASET     synthetic 1-D object count   (default 4000)
//   PVERIFY_SERVE_QPS   offered-rate sweep, comma-sep (default
//                       200,400,800,1600)
//   PVERIFY_SERVE_CONNS connection counts, comma-sep  (default 1,4)
//   PVERIFY_SERVE_CACHE CachingEngine capacities, comma-sep; 0 = none
//                       (default 0,4096)
//   PVERIFY_SERVE_MS    measured duration per configuration in ms
//                       (default 300)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/harness.h"
#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "engine/caching_engine.h"
#include "engine/query_engine.h"
#include "net/client.h"
#include "net/server.h"

using namespace pverify;
using Clock = std::chrono::steady_clock;

namespace {

std::vector<size_t> ListFromEnv(const char* name,
                                std::vector<size_t> fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  std::vector<size_t> values;
  const char* p = raw;
  while (*p != '\0') {
    char* end = nullptr;
    unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) break;
    values.push_back(static_cast<size_t>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return values.empty() ? fallback : values;
}

double DurationMsFromEnv() {
  const char* raw = std::getenv("PVERIFY_SERVE_MS");
  if (raw == nullptr || *raw == '\0') return 300.0;
  double v = std::atof(raw);
  return v > 0 ? v : 300.0;
}

struct SweepPoint {
  size_t conns = 0;
  size_t cache = 0;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  size_t requests = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

double PercentileUs(const std::vector<int64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_ns.size()));
  idx = std::min(idx, sorted_ns.size() - 1);
  return static_cast<double>(sorted_ns[idx]) / 1000.0;
}

/// Drives one (conns × offered) configuration against the server and
/// returns its latency profile. The arrival schedule is deterministic:
/// connection c's request i is due at start + c·interval/conns + i·interval
/// (staggered so connections do not fire in phase), and both the sender and
/// the receiver recompute it — no shared timestamp state.
SweepPoint RunPoint(uint16_t port, size_t conns, double offered_qps,
                    double duration_ms, const std::vector<double>& points,
                    const QueryOptions& opt) {
  using std::chrono::nanoseconds;
  const double interval_ns =
      1e9 * static_cast<double>(conns) / offered_qps;
  const size_t per_conn = std::max<size_t>(
      1, static_cast<size_t>(duration_ms / 1000.0 * offered_qps /
                             static_cast<double>(conns)));

  std::vector<std::vector<int64_t>> latencies(conns);
  std::vector<Clock::time_point> last_response(conns);
  // Give every sender time to connect before the first slot is due.
  const Clock::time_point start =
      Clock::now() + std::chrono::milliseconds(50);
  auto slot = [&](size_t conn, size_t i) {
    return start + nanoseconds(static_cast<int64_t>(
                       interval_ns * static_cast<double>(conn) /
                           static_cast<double>(conns) +
                       interval_ns * static_cast<double>(i)));
  };

  std::vector<std::thread> workers;
  for (size_t c = 0; c < conns; ++c) {
    workers.emplace_back([&, c] {
      net::Client client = net::Client::Connect("127.0.0.1", port);
      latencies[c].reserve(per_conn);
      std::thread receiver([&] {
        for (size_t got = 0; got < per_conn; ++got) {
          net::ServeResponse response = client.ReadNext();
          const Clock::time_point now = Clock::now();
          if (!response.ok) {
            std::fprintf(stderr, "loadgen: server error: %s\n",
                         response.error.c_str());
            std::exit(1);
          }
          // Ids are 1-based send order; charge from the scheduled slot.
          latencies[c].push_back(
              std::chrono::duration_cast<nanoseconds>(
                  now - slot(c, response.request_id - 1))
                  .count());
          last_response[c] = now;
        }
      });
      for (size_t i = 0; i < per_conn; ++i) {
        std::this_thread::sleep_until(slot(c, i));
        const double q = points[(c * per_conn + i) % points.size()];
        client.Send(QueryRequest(PointQuery{q, opt}));
      }
      receiver.join();
      client.Close();
    });
  }
  for (std::thread& t : workers) t.join();

  std::vector<int64_t> merged;
  merged.reserve(conns * per_conn);
  Clock::time_point end = start;
  for (size_t c = 0; c < conns; ++c) {
    merged.insert(merged.end(), latencies[c].begin(), latencies[c].end());
    end = std::max(end, last_response[c]);
  }
  std::sort(merged.begin(), merged.end());

  SweepPoint point;
  point.conns = conns;
  point.offered_qps = offered_qps;
  point.requests = merged.size();
  const double wall_s =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count() /
      1e9;
  point.achieved_qps =
      wall_s > 0 ? static_cast<double>(merged.size()) / wall_s : 0.0;
  point.p50_us = PercentileUs(merged, 0.50);
  point.p99_us = PercentileUs(merged, 0.99);
  point.p999_us = PercentileUs(merged, 0.999);
  return point;
}

}  // namespace

int main() {
  const size_t dataset_size = bench::DatasetSizeFromEnv(4000);
  const std::vector<size_t> qps_sweep =
      ListFromEnv("PVERIFY_SERVE_QPS", {200, 400, 800, 1600});
  const std::vector<size_t> conn_sweep =
      ListFromEnv("PVERIFY_SERVE_CONNS", {1, 4});
  const std::vector<size_t> cache_sweep =
      ListFromEnv("PVERIFY_SERVE_CACHE", {0, 4096});
  const double duration_ms = DurationMsFromEnv();

  bench::PrintHeader("serve_loadgen",
                     "open-loop latency/QPS sweep against pverify_serve "
                     "over loopback");

  datagen::SyntheticConfig config;
  config.count = dataset_size;
  Dataset data = datagen::MakeSynthetic(config);
  // A bounded pool of distinct query points: the cache configurations get
  // a hit-heavy steady state, the uncached ones are unaffected.
  const std::vector<double> points = datagen::MakeQueryPoints(
      256, config.domain_lo, config.domain_hi, /*seed=*/101);
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;

  bench::BenchJsonWriter json("serve_loadgen", "BENCH_serve.json");
  json.Config("dataset", static_cast<double>(dataset_size));
  json.Config("distinct_points", static_cast<double>(points.size()));
  json.Config("duration_ms", duration_ms);
  json.Config("hardware_threads",
              static_cast<double>(std::thread::hardware_concurrency()));

  std::printf("%6s %6s %9s %10s %10s %10s %10s\n", "cache", "conns",
              "offered", "achieved", "p50_us", "p99_us", "p999_us");
  for (size_t cache : cache_sweep) {
    // One server (and engine) per cache configuration, shared by every
    // (conns × qps) point — exactly how a deployed server would see the
    // sweep. A fresh engine per cache size keeps the memo cold at start.
    std::unique_ptr<Engine> engine =
        std::make_unique<QueryEngine>(data, EngineOptions{});
    if (cache > 0) {
      CachingEngineOptions copt;
      copt.capacity = cache;
      engine = MakeCachingEngine(std::move(engine), copt);
    }
    net::Server server(*engine);
    server.Start();

    for (size_t conns : conn_sweep) {
      double saturation_qps = 0.0;
      for (size_t offered : qps_sweep) {
        SweepPoint point =
            RunPoint(server.port(), conns, static_cast<double>(offered),
                     duration_ms, points, opt);
        point.cache = cache;
        std::printf("%6zu %6zu %9.0f %10.1f %10.1f %10.1f %10.1f\n",
                    point.cache, point.conns, point.offered_qps,
                    point.achieved_qps, point.p50_us, point.p99_us,
                    point.p999_us);
        json.BeginResult();
        json.Field("mode", "sweep");
        json.Field("cache", static_cast<double>(point.cache));
        json.Field("conns", static_cast<double>(point.conns));
        json.Field("offered", point.offered_qps);
        json.Field("achieved_qps", point.achieved_qps);
        json.Field("requests", static_cast<double>(point.requests));
        json.Field("p50_us", point.p50_us);
        json.Field("p99_us", point.p99_us);
        json.Field("p999_us", point.p999_us);
        if (point.achieved_qps >= 0.9 * point.offered_qps) {
          saturation_qps = std::max(saturation_qps, point.offered_qps);
        }
      }
      std::printf("# cache=%zu conns=%zu saturation: %.0f q/s\n", cache,
                  conns, saturation_qps);
      json.BeginResult();
      json.Field("mode", "saturation");
      json.Field("cache", static_cast<double>(cache));
      json.Field("conns", static_cast<double>(conns));
      json.Field("saturation_qps", saturation_qps);
    }
    server.Stop();
  }
  return json.Write() ? 0 : 1;
}
