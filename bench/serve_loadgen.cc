// Open-loop load generator for pverify_serve: measures service latency and
// saturation throughput over loopback, the way a latency SLO would.
//
// An in-process net::Server is stood up on an ephemeral port; for each
// (cache capacity × connection count × offered QPS) configuration, every
// connection gets a sender thread firing request frames on a FIXED arrival
// schedule (sleep_until the precomputed slot — the sender never waits for
// responses) and a receiver thread draining response frames. Latency is
// measured from each request's *scheduled* send time, not its actual send
// time, so queueing delay when the server falls behind is charged to the
// server rather than silently absorbed (no coordinated omission).
//
// Reported per configuration: p50/p99/p999 latency (µs) and achieved QPS;
// per (connections, cache): the saturation point — the highest offered rate
// the server still sustained at ≥90%. Everything lands in BENCH_serve.json
// for CI to archive and diff.
//
// Environment knobs:
//   PVERIFY_DATASET     synthetic 1-D object count   (default 4000)
//   PVERIFY_SERVE_QPS   offered-rate sweep, comma-sep (default
//                       200,400,800,1600)
//   PVERIFY_SERVE_CONNS connection counts, comma-sep  (default 1,4)
//   PVERIFY_SERVE_CACHE CachingEngine capacities, comma-sep; 0 = none
//                       (default 0,4096)
//   PVERIFY_SERVE_MS    measured duration per configuration in ms
//                       (default 300)
//   PVERIFY_SERVE_DEADLINE_MS  per-request deadline stamped on every frame
//                       (default 0 = none; expired requests come back as
//                       typed kDeadlineExceeded answers, counted below)
//   PVERIFY_SERVE_RETRIES  re-send budget per request for retryable
//                       failures — kOverloaded/kShuttingDown/deadline
//                       answers (default 2; 0 = fail immediately)
//
// Failure accounting: a retryable rejection is re-sent up to the budget and
// its latency stays charged from the ORIGINAL scheduled slot (coordinated
// omission stays honest — backoff time is server-attributed latency, not
// forgiven). Requests that still fail count as errors; kDeadlineExceeded
// answers count as timeouts. All three land in BENCH_serve.json per point
// and a dead connection marks its outstanding requests as errors instead
// of killing the run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/harness.h"
#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "engine/caching_engine.h"
#include "engine/query_engine.h"
#include "net/client.h"
#include "net/server.h"

using namespace pverify;
using Clock = std::chrono::steady_clock;

namespace {

std::vector<size_t> ListFromEnv(const char* name,
                                std::vector<size_t> fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  std::vector<size_t> values;
  const char* p = raw;
  while (*p != '\0') {
    char* end = nullptr;
    unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) break;
    values.push_back(static_cast<size_t>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return values.empty() ? fallback : values;
}

double DurationMsFromEnv() {
  const char* raw = std::getenv("PVERIFY_SERVE_MS");
  if (raw == nullptr || *raw == '\0') return 300.0;
  double v = std::atof(raw);
  return v > 0 ? v : 300.0;
}

size_t SizeFromEnv(const char* name, size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(raw, &end, 10);
  return end == raw ? fallback : static_cast<size_t>(v);
}

struct SweepPoint {
  size_t conns = 0;
  size_t cache = 0;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  size_t requests = 0;
  size_t errors = 0;    ///< requests that never got an ok answer
  size_t timeouts = 0;  ///< kDeadlineExceeded answers seen (pre-retry)
  size_t retries = 0;   ///< re-sends after a retryable rejection
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

double PercentileUs(const std::vector<int64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_ns.size()));
  idx = std::min(idx, sorted_ns.size() - 1);
  return static_cast<double>(sorted_ns[idx]) / 1000.0;
}

/// Drives one (conns × offered) configuration against the server and
/// returns its latency profile. The arrival schedule is deterministic:
/// connection c's request i is due at start + c·interval/conns + i·interval
/// (staggered so connections do not fire in phase), and both the sender and
/// the receiver recompute it — no shared timestamp state.
SweepPoint RunPoint(uint16_t port, size_t conns, double offered_qps,
                    double duration_ms, const std::vector<double>& points,
                    const QueryOptions& opt) {
  using std::chrono::nanoseconds;
  const double interval_ns =
      1e9 * static_cast<double>(conns) / offered_qps;
  const size_t per_conn = std::max<size_t>(
      1, static_cast<size_t>(duration_ms / 1000.0 * offered_qps /
                             static_cast<double>(conns)));
  const uint32_t deadline_ms = static_cast<uint32_t>(
      SizeFromEnv("PVERIFY_SERVE_DEADLINE_MS", 0));
  const size_t retry_budget = SizeFromEnv("PVERIFY_SERVE_RETRIES", 2);

  std::vector<std::vector<int64_t>> latencies(conns);
  std::vector<Clock::time_point> last_response(conns);
  std::vector<size_t> errors(conns, 0), timeouts(conns, 0),
      retries(conns, 0);
  // Give every sender time to connect before the first slot is due.
  const Clock::time_point start =
      Clock::now() + std::chrono::milliseconds(50);
  auto slot = [&](size_t conn, size_t i) {
    return start + nanoseconds(static_cast<int64_t>(
                       interval_ns * static_cast<double>(conn) /
                           static_cast<double>(conns) +
                       interval_ns * static_cast<double>(i)));
  };

  std::vector<std::thread> workers;
  for (size_t c = 0; c < conns; ++c) {
    workers.emplace_back([&, c] {
      net::Client client = net::Client::Connect("127.0.0.1", port);
      latencies[c].reserve(per_conn);
      // Retries give a request a fresh id, so responses map back to their
      // scheduled slot through this table. Insertions happen under the
      // same lock as the Send so the receiver can never see an id it
      // cannot resolve. Send itself is safe against the concurrent
      // receiver (separate send/recv locks in Client), so the receiver
      // re-sends retryable failures directly.
      std::mutex map_mu;
      std::map<uint64_t, size_t> slot_of;
      std::vector<size_t> tries(per_conn, 0);
      auto send_slot = [&](size_t i) {
        const double q = points[(c * per_conn + i) % points.size()];
        std::lock_guard<std::mutex> lock(map_mu);
        uint64_t id = client.Send(QueryRequest(PointQuery{q, opt}),
                                  deadline_ms);
        slot_of[id] = i;
      };
      std::thread receiver([&] {
        for (size_t got = 0; got < per_conn;) {
          net::ServeResponse response;
          try {
            response = client.ReadNext();
          } catch (const net::WireError& e) {
            // Connection died: everything still outstanding is an error.
            std::fprintf(stderr, "loadgen: connection lost: %s\n", e.what());
            errors[c] += per_conn - got;
            return;
          }
          const Clock::time_point now = Clock::now();
          size_t i;
          {
            std::lock_guard<std::mutex> lock(map_mu);
            auto it = slot_of.find(response.request_id);
            if (it == slot_of.end()) continue;  // should not happen
            i = it->second;
            slot_of.erase(it);
          }
          if (!response.ok) {
            if (response.code == net::ErrorCode::kDeadlineExceeded) {
              ++timeouts[c];
            }
            if (net::IsRetryable(response.code) &&
                tries[i] < retry_budget) {
              try {
                send_slot(i);
                ++tries[i];
                ++retries[c];
                continue;  // same slot, new id; latency charged from it
              } catch (const net::WireError&) {
                // fall through: the re-send found a dead socket
              }
            }
            std::fprintf(stderr, "loadgen: request failed: %s\n",
                         response.error.c_str());
            ++errors[c];
            ++got;
            continue;
          }
          // Charge from the scheduled slot, retries included.
          latencies[c].push_back(
              std::chrono::duration_cast<nanoseconds>(now - slot(c, i))
                  .count());
          last_response[c] = now;
          ++got;
        }
      });
      for (size_t i = 0; i < per_conn; ++i) {
        std::this_thread::sleep_until(slot(c, i));
        try {
          send_slot(i);
        } catch (const net::WireError&) {
          break;  // receiver sees the dead socket and accounts the rest
        }
      }
      receiver.join();
      client.Close();
    });
  }
  for (std::thread& t : workers) t.join();

  std::vector<int64_t> merged;
  merged.reserve(conns * per_conn);
  Clock::time_point end = start;
  SweepPoint point;
  for (size_t c = 0; c < conns; ++c) {
    merged.insert(merged.end(), latencies[c].begin(), latencies[c].end());
    end = std::max(end, last_response[c]);
    point.errors += errors[c];
    point.timeouts += timeouts[c];
    point.retries += retries[c];
  }
  std::sort(merged.begin(), merged.end());

  point.conns = conns;
  point.offered_qps = offered_qps;
  point.requests = merged.size();
  const double wall_s =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count() /
      1e9;
  point.achieved_qps =
      wall_s > 0 ? static_cast<double>(merged.size()) / wall_s : 0.0;
  point.p50_us = PercentileUs(merged, 0.50);
  point.p99_us = PercentileUs(merged, 0.99);
  point.p999_us = PercentileUs(merged, 0.999);
  return point;
}

}  // namespace

int main() {
  const size_t dataset_size = bench::DatasetSizeFromEnv(4000);
  const std::vector<size_t> qps_sweep =
      ListFromEnv("PVERIFY_SERVE_QPS", {200, 400, 800, 1600});
  const std::vector<size_t> conn_sweep =
      ListFromEnv("PVERIFY_SERVE_CONNS", {1, 4});
  const std::vector<size_t> cache_sweep =
      ListFromEnv("PVERIFY_SERVE_CACHE", {0, 4096});
  const double duration_ms = DurationMsFromEnv();

  bench::PrintHeader("serve_loadgen",
                     "open-loop latency/QPS sweep against pverify_serve "
                     "over loopback");

  datagen::SyntheticConfig config;
  config.count = dataset_size;
  Dataset data = datagen::MakeSynthetic(config);
  // A bounded pool of distinct query points: the cache configurations get
  // a hit-heavy steady state, the uncached ones are unaffected.
  const std::vector<double> points = datagen::MakeQueryPoints(
      256, config.domain_lo, config.domain_hi, /*seed=*/101);
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;

  bench::BenchJsonWriter json("serve_loadgen", "BENCH_serve.json");
  json.Config("dataset", static_cast<double>(dataset_size));
  json.Config("distinct_points", static_cast<double>(points.size()));
  json.Config("duration_ms", duration_ms);
  json.Config("hardware_threads",
              static_cast<double>(std::thread::hardware_concurrency()));

  json.Config("deadline_ms", static_cast<double>(SizeFromEnv(
                                 "PVERIFY_SERVE_DEADLINE_MS", 0)));
  json.Config("retry_budget", static_cast<double>(SizeFromEnv(
                                  "PVERIFY_SERVE_RETRIES", 2)));

  std::printf("%6s %6s %9s %10s %10s %10s %10s %7s %7s %7s\n", "cache",
              "conns", "offered", "achieved", "p50_us", "p99_us", "p999_us",
              "errors", "timeout", "retries");
  for (size_t cache : cache_sweep) {
    // One server (and engine) per cache configuration, shared by every
    // (conns × qps) point — exactly how a deployed server would see the
    // sweep. A fresh engine per cache size keeps the memo cold at start.
    std::unique_ptr<Engine> engine =
        std::make_unique<QueryEngine>(data, EngineOptions{});
    if (cache > 0) {
      CachingEngineOptions copt;
      copt.capacity = cache;
      engine = MakeCachingEngine(std::move(engine), copt);
    }
    net::Server server(*engine);
    server.Start();

    for (size_t conns : conn_sweep) {
      double saturation_qps = 0.0;
      for (size_t offered : qps_sweep) {
        SweepPoint point =
            RunPoint(server.port(), conns, static_cast<double>(offered),
                     duration_ms, points, opt);
        point.cache = cache;
        std::printf("%6zu %6zu %9.0f %10.1f %10.1f %10.1f %10.1f %7zu "
                    "%7zu %7zu\n",
                    point.cache, point.conns, point.offered_qps,
                    point.achieved_qps, point.p50_us, point.p99_us,
                    point.p999_us, point.errors, point.timeouts,
                    point.retries);
        json.BeginResult();
        json.Field("mode", "sweep");
        json.Field("cache", static_cast<double>(point.cache));
        json.Field("conns", static_cast<double>(point.conns));
        json.Field("offered", point.offered_qps);
        json.Field("achieved_qps", point.achieved_qps);
        json.Field("requests", static_cast<double>(point.requests));
        json.Field("errors", static_cast<double>(point.errors));
        json.Field("timeouts", static_cast<double>(point.timeouts));
        json.Field("retries", static_cast<double>(point.retries));
        json.Field("p50_us", point.p50_us);
        json.Field("p99_us", point.p99_us);
        json.Field("p999_us", point.p999_us);
        if (point.achieved_qps >= 0.9 * point.offered_qps) {
          saturation_qps = std::max(saturation_qps, point.offered_qps);
        }
      }
      std::printf("# cache=%zu conns=%zu saturation: %.0f q/s\n", cache,
                  conns, saturation_qps);
      json.BeginResult();
      json.Field("mode", "saturation");
      json.Field("cache", static_cast<double>(cache));
      json.Field("conns", static_cast<double>(conns));
      json.Field("saturation_qps", saturation_qps);
    }
    server.Stop();
  }
  return json.Write() ? 0 : 1;
}
