// Figure 10 — query time vs. threshold P for the three evaluation
// strategies (Basic / Refine / VR) on the Long-Beach-like dataset.
//
// Paper result: Refine and VR both beat Basic everywhere; VR is
// consistently the fastest (5× over Refine at P=0.3, ~40× at P=0.7).
#include "bench_util/harness.h"

using namespace pverify;

int main() {
  bench::PrintHeader(
      "Figure 10 — Time vs. P",
      "Average per-query evaluation time (ms, excluding filtering) on the\n"
      "Long-Beach-like dataset (53,144 intervals, uniform pdfs, Δ=0.01).\n"
      "Paper: VR < Refine < Basic for every threshold.");

  const size_t queries = bench::QueriesFromEnv(10);
  const size_t count = bench::DatasetSizeFromEnv(53144);
  bench::Environment env =
      bench::MakeDefaultEnvironment(datagen::PdfKind::kUniform, queries,
                                    count);

  ResultTable table({"P", "basic_ms", "refine_ms", "vr_ms", "vr_speedup"},
                    "fig10.csv");
  for (double P : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    double ms[3] = {0, 0, 0};
    Strategy strategies[3] = {Strategy::kBasic, Strategy::kRefine,
                              Strategy::kVR};
    for (int s = 0; s < 3; ++s) {
      QueryOptions opt;
      opt.params = {P, 0.01};
      opt.strategy = strategies[s];
      opt.integration.gauss_points = 8;
      datagen::WorkloadResult r =
          datagen::RunWorkload(env.executor, env.query_points, opt);
      ms[s] = r.AvgTotalMs() - r.AvgFilterMs();
    }
    table.AddRow({FormatDouble(P, 1), FormatDouble(ms[0], 4),
                  FormatDouble(ms[1], 4), FormatDouble(ms[2], 4),
                  FormatDouble(ms[2] > 0 ? ms[1] / ms[2] : 0.0, 1)});
  }
  table.Print();
  return 0;
}
