// Engine throughput — batched multi-threaded execution vs. the sequential
// query loop.
//
// The workload is the paper's §V-A setup (Long-Beach-like dataset, random
// query points, P=0.3, Δ=0.01, VR strategy); the measurement is queries/sec
// of QueryEngine::ExecuteBatch at 1/2/4/8 worker threads against a plain
// CpnnExecutor::Execute loop over the same points. Speedup scales with
// available cores (queries are independent and the dataset is shared
// read-only); scratch reuse adds a single-digit-percent per-thread gain on
// top (measurable without the pool by passing a QueryScratch* to Execute).
//
// Environment overrides: PVERIFY_QUERIES, PVERIFY_DATASET, PVERIFY_THREADS.
#include <cstdio>
#include <thread>

#include "bench_util/harness.h"

using namespace pverify;

int main() {
  bench::PrintHeader(
      "Engine throughput — ExecuteBatch vs. sequential loop",
      "Queries/sec of the batched engine at 1/2/4/8 worker threads vs. a\n"
      "sequential CpnnExecutor loop (VR strategy, P=0.3, Δ=0.01, uniform\n"
      "pdfs). batch_speedup is relative to the sequential loop.");

  const size_t queries = bench::QueriesFromEnv(200);
  const size_t dataset_size = bench::DatasetSizeFromEnv(20000);
  const std::vector<size_t> thread_counts =
      bench::ThreadCountsFromEnv({1, 2, 4, 8});

  std::printf("dataset: %zu objects, %zu queries, hardware threads: %u\n\n",
              dataset_size, queries, std::thread::hardware_concurrency());

  bench::Environment env = bench::MakeDefaultEnvironment(
      datagen::PdfKind::kUniform, queries, dataset_size);

  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;

  // Warm-up pass so lazy initialization doesn't skew the baseline.
  bench::TimeSequentialLoop(env.executor, env.query_points, opt);

  ResultTable table({"threads", "wall_ms", "queries_per_sec",
                     "batch_speedup", "avg_query_ms"},
                    "engine_throughput.csv");

  bench::ThroughputPoint sequential =
      bench::TimeSequentialLoop(env.executor, env.query_points, opt);
  table.AddRow({"seq", FormatDouble(sequential.wall_ms, 2),
                FormatDouble(sequential.Qps(), 1), FormatDouble(1.0, 2),
                FormatDouble(sequential.wall_ms / queries, 4)});

  for (size_t threads : thread_counts) {
    EngineOptions eopt;
    eopt.num_threads = threads;
    QueryEngine owned(env.dataset, eopt);
    Engine& engine = owned;  // measured through the abstract interface
    // Warm the per-worker scratches, then measure.
    bench::TimeBatch(engine, env.query_points, opt);
    EngineStats stats;
    bench::ThroughputPoint batched =
        bench::TimeBatch(engine, env.query_points, opt, &stats);
    table.AddRow({std::to_string(threads), FormatDouble(batched.wall_ms, 2),
                  FormatDouble(batched.Qps(), 1),
                  FormatDouble(batched.Qps() / sequential.Qps(), 2),
                  FormatDouble(stats.AvgQueryMs(), 4)});
  }
  table.Print();

  std::printf(
      "\nNote: batch speedup is bounded by available cores; on a 1-core\n"
      "host every engine row pays cross-thread handoff without any\n"
      "parallelism to recoup it.\n");
  return 0;
}
