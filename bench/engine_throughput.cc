// Engine throughput + single-query latency — batched execution vs. the
// sequential query loop, and nested shard fan-out vs. the sequential
// per-request shard scan.
//
// Two experiments:
//
//  1. Batch throughput (the paper's §V-A setup: Long-Beach-like dataset,
//     random query points, P=0.3, Δ=0.01, VR strategy): queries/sec of
//     Engine::ExecuteBatch at 1/2/4/8 worker threads on BOTH worker pools
//     (global-queue and work-stealing) against a plain CpnnExecutor loop.
//     Work-stealing must not regress flat-batch throughput.
//
//  2. Single-query latency: ONE expensive 2-D query (point and k-NN) on a
//     4-shard ShardedQueryEngine, executed as a batch of one. On the
//     global-queue pool the batch worker scans its shards sequentially;
//     on the work-stealing pool the same request fans its shards out
//     through a nested ParallelFor, so with 4+ workers the query's
//     filter/candidate-build phases use every core. The speedup column is
//     the direct before/after of the nested fan-out (≈1.0 on a 1-core
//     host — there are no idle cores to steal the shard tasks).
//
// Every timed region is repeated until it crosses the measurement floor
// (PVERIFY_MIN_WALL_MS, default 100 ms) — sub-floor regions measure
// scheduling overhead, not the engine. Results additionally land in
// machine-readable BENCH_engine.json for CI trend tracking.
//
// Environment overrides: PVERIFY_QUERIES, PVERIFY_DATASET,
// PVERIFY_THREADS, PVERIFY_MIN_WALL_MS.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "bench_util/harness.h"

using namespace pverify;

namespace {

// One expensive-query latency measurement: ExecuteBatch over a batch of
// ONE request, repeated to the measurement floor.
struct LatencyPoint {
  double avg_ms = 0.0;
  size_t reps = 0;
  double parallel_fraction = 0.0;  ///< (filter+init) / total query time
};

template <typename MakeRequest>
LatencyPoint TimeSingleQuery(Engine& engine, const MakeRequest& make,
                             double min_wall_ms) {
  // Warm-up: spawn the pool, size the scratches.
  engine.ExecuteBatch([&] {
    std::vector<QueryRequest> one;
    one.push_back(make());
    return one;
  }());
  LatencyPoint point;
  double wall = 0.0;
  double parallel_ms = 0.0;
  double total_ms = 0.0;
  do {
    std::vector<QueryRequest> one;
    one.push_back(make());
    EngineStats stats;
    engine.ExecuteBatch(std::move(one), &stats);
    wall += stats.wall_ms;
    parallel_ms += stats.totals.filter_ms + stats.totals.init_ms;
    total_ms += stats.totals.total_ms;
    ++point.reps;
  } while (wall < min_wall_ms);
  point.avg_ms = wall / static_cast<double>(point.reps);
  point.parallel_fraction = total_ms > 0.0 ? parallel_ms / total_ms : 0.0;
  return point;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Engine throughput + single-query latency",
      "Queries/sec of the batched engine at 1/2/4/8 worker threads on both\n"
      "worker pools vs. a sequential CpnnExecutor loop (VR strategy, P=0.3,\n"
      "Δ=0.01, uniform pdfs), then the latency of ONE expensive sharded 2-D\n"
      "query with nested shard fan-out (work-stealing) vs. the sequential\n"
      "shard scan (global-queue). Timed regions repeat to a ≥100 ms floor.");

  const size_t queries = bench::QueriesFromEnv(200);
  const size_t dataset_size = bench::DatasetSizeFromEnv(20000);
  const double min_wall_ms = bench::MinWallMsFromEnv();
  const std::vector<size_t> thread_counts =
      bench::ThreadCountsFromEnv({1, 2, 4, 8});
  const unsigned hardware = std::thread::hardware_concurrency();

  std::printf(
      "dataset: %zu objects, %zu queries, hardware threads: %u, "
      "floor: %.0f ms\n\n",
      dataset_size, queries, hardware, min_wall_ms);

  bench::BenchJsonWriter json("engine_throughput", "BENCH_engine.json");
  json.Config("queries", static_cast<double>(queries));
  json.Config("dataset", static_cast<double>(dataset_size));
  json.Config("hardware_threads", static_cast<double>(hardware));
  json.Config("min_wall_ms", min_wall_ms);

  bench::Environment env = bench::MakeDefaultEnvironment(
      datagen::PdfKind::kUniform, queries, dataset_size);

  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;

  // ---- Experiment 1: batch throughput --------------------------------
  // Warm-up pass so lazy initialization doesn't skew the baseline.
  bench::TimeSequentialLoop(env.executor, env.query_points, opt);

  ResultTable table({"threads", "pool", "reps", "wall_ms",
                     "queries_per_sec", "batch_speedup", "avg_query_ms"},
                    "engine_throughput.csv");

  bench::ThroughputPoint sequential = bench::TimeSequentialLoopFloored(
      env.executor, env.query_points, opt, min_wall_ms);
  table.AddRow({"seq", "-", std::to_string(sequential.reps),
                FormatDouble(sequential.wall_ms, 2),
                FormatDouble(sequential.Qps(), 1), FormatDouble(1.0, 2),
                FormatDouble(sequential.wall_ms / sequential.queries, 4)});
  json.BeginResult();
  json.Field("section", "batch");
  json.Field("name", "sequential");
  json.Field("threads", 1.0);
  json.Field("reps", static_cast<double>(sequential.reps));
  json.Field("wall_ms", sequential.wall_ms);
  json.Field("qps", sequential.Qps());
  json.Field("speedup", 1.0);

  for (PoolKind pool : {PoolKind::kGlobalQueue, PoolKind::kWorkStealing}) {
    for (size_t threads : thread_counts) {
      EngineOptions eopt;
      eopt.num_threads = threads;
      eopt.pool = pool;
      QueryEngine owned(env.dataset, eopt);
      Engine& engine = owned;  // measured through the abstract interface
      // Warm the per-worker scratches, then measure.
      bench::TimeBatch(engine, env.query_points, opt);
      bench::ThroughputPoint batched = bench::TimeBatchFloored(
          engine, env.query_points, opt, min_wall_ms);
      const double speedup = batched.Qps() / sequential.Qps();
      table.AddRow({std::to_string(threads), std::string(ToString(pool)),
                    std::to_string(batched.reps),
                    FormatDouble(batched.wall_ms, 2),
                    FormatDouble(batched.Qps(), 1), FormatDouble(speedup, 2),
                    FormatDouble(batched.wall_ms / batched.queries, 4)});
      json.BeginResult();
      json.Field("section", "batch");
      json.Field("name", "engine");
      json.Field("pool", std::string(ToString(pool)));
      json.Field("threads", static_cast<double>(threads));
      json.Field("reps", static_cast<double>(batched.reps));
      json.Field("wall_ms", batched.wall_ms);
      json.Field("qps", batched.Qps());
      json.Field("speedup", speedup);
    }
  }
  table.Print();

  // ---- Experiment 2: single-query latency via nested shard fan-out ---
  // Workloads chosen so the PER-SHARD phases dominate (high parallel
  // fraction — that is what nested fan-out can speed up):
  //  * point2d: overlap-heavy regions, so one query has ~40+ candidates
  //    whose exact radial-cdf distributions (the init phase) dwarf the
  //    single merged verification pass (parallel fraction ≈ 0.9).
  //  * knn2d: sparse regions over a large dataset with small k, so the
  //    per-shard O(n) far-point scans and survivor builds dominate the
  //    final (serial) k-NN integration (parallel fraction ≈ 0.7).
  const size_t shards = 4;
  const size_t latency_threads =
      std::max<size_t>(4, hardware == 0 ? 1 : hardware);
  const Point2 center{500.0, 500.0};

  QueryOptions opt2d;
  opt2d.params = {0.3, 0.02};
  opt2d.strategy = Strategy::kVR;

  datagen::Synthetic2DConfig overlap_cfg;
  overlap_cfg.count = 5000;
  overlap_cfg.domain = 1000.0;
  overlap_cfg.mean_extent = 40.0;
  overlap_cfg.max_extent = 160.0;
  overlap_cfg.seed = 11;
  Dataset2D overlap2d = datagen::MakeSynthetic2D(overlap_cfg);

  datagen::Synthetic2DConfig sparse_cfg;
  sparse_cfg.count = 40000;
  sparse_cfg.domain = 1000.0;
  sparse_cfg.mean_extent = 4.0;
  sparse_cfg.max_extent = 12.0;
  sparse_cfg.seed = 11;
  Dataset2D sparse2d = datagen::MakeSynthetic2D(sparse_cfg);

  std::printf(
      "\nSingle-query latency: one expensive 2-D query, %zu shards (hash),\n"
      "%zu workers. sequential-scan pool = global-queue, nested-fan-out\n"
      "pool = work-stealing.\n\n",
      shards, latency_threads);

  ResultTable latency_table({"query", "pool", "reps", "avg_latency_ms",
                             "parallel_fraction", "fanout_speedup"},
                            "engine_latency.csv");

  struct QuerySpec {
    const char* name;
    const Dataset2D* data;
    int radial_pieces;
    std::function<QueryRequest()> make;
  };
  const std::vector<QuerySpec> specs = {
      {"point2d", &overlap2d, 192,
       [&] { return QueryRequest(Point2DQuery{center, opt2d}); }},
      {"knn2d", &sparse2d, 64,
       [&] { return QueryRequest(Knn2DQuery{center, 4, opt2d}); }},
  };

  for (const QuerySpec& spec : specs) {
    double base_ms = 0.0;
    for (PoolKind pool : {PoolKind::kGlobalQueue, PoolKind::kWorkStealing}) {
      ShardedEngineOptions sopt;
      sopt.num_shards = shards;
      sopt.num_threads = latency_threads;
      sopt.radial_pieces = spec.radial_pieces;
      sopt.pool = pool;
      ShardedQueryEngine engine(*spec.data, sopt);
      LatencyPoint point = TimeSingleQuery(engine, spec.make, min_wall_ms);
      const bool is_base = pool == PoolKind::kGlobalQueue;
      if (is_base) base_ms = point.avg_ms;
      const double speedup =
          point.avg_ms > 0.0 ? base_ms / point.avg_ms : 0.0;
      latency_table.AddRow(
          {spec.name, std::string(ToString(pool)),
           std::to_string(point.reps), FormatDouble(point.avg_ms, 3),
           FormatDouble(point.parallel_fraction, 2),
           is_base ? "1.00" : FormatDouble(speedup, 2)});
      json.BeginResult();
      json.Field("section", "single_query_latency");
      json.Field("query", spec.name);
      json.Field("pool", std::string(ToString(pool)));
      json.Field("shards", static_cast<double>(shards));
      json.Field("threads", static_cast<double>(latency_threads));
      json.Field("reps", static_cast<double>(point.reps));
      json.Field("avg_latency_ms", point.avg_ms);
      json.Field("parallel_fraction", point.parallel_fraction);
      json.Field("fanout_speedup", is_base ? 1.0 : speedup);
    }
  }
  latency_table.Print();
  json.Write();

  std::printf(
      "\nNote: speedups are bounded by available cores. On a 1-core host\n"
      "the engine rows pay cross-thread handoff with no parallelism to\n"
      "recoup it and the fan-out speedup stays ~1.0; parallel_fraction\n"
      "(the query time spent in the per-shard filter/build phases) bounds\n"
      "the achievable fan-out speedup via Amdahl.\n");
  return 0;
}
