// Ablation — Monte-Carlo baseline ([9]-style sampling): answer-set accuracy
// versus sample count, compared to exact evaluation, plus running time.
// Shows why the paper prefers verifiers: sampling needs many draws before
// borderline candidates classify correctly.
#include <set>

#include "bench_util/harness.h"

using namespace pverify;

int main() {
  bench::PrintHeader(
      "Ablation — Monte-Carlo baseline",
      "Answer agreement with exact evaluation (fraction of queries whose\n"
      "answer set matches) and time, per sample count (P=0.3, Δ=0).");

  const size_t queries = bench::QueriesFromEnv(15);
  const size_t count = bench::DatasetSizeFromEnv(20000);
  bench::Environment env =
      bench::MakeDefaultEnvironment(datagen::PdfKind::kUniform, queries,
                                    count);

  // Ground truth per query.
  std::vector<std::vector<ObjectId>> truth;
  QueryOptions exact;
  exact.params = {0.3, 0.0};
  exact.strategy = Strategy::kBasic;
  exact.integration.gauss_points = 8;
  for (double q : env.query_points) {
    truth.push_back(env.executor.Execute(q, exact).ids);
  }

  ResultTable table({"samples", "exact_match_fraction", "mc_ms", "vr_ms"},
                    "ablation_monte_carlo.csv");

  QueryOptions vr;
  vr.params = {0.3, 0.0};
  vr.strategy = Strategy::kVR;
  vr.integration.gauss_points = 8;
  datagen::WorkloadResult vr_result =
      datagen::RunWorkload(env.executor, env.query_points, vr);
  double vr_ms = vr_result.AvgTotalMs() - vr_result.AvgFilterMs();

  for (int samples : {100, 500, 1000, 5000, 20000}) {
    QueryOptions mc;
    mc.params = {0.3, 0.0};
    mc.strategy = Strategy::kMonteCarlo;
    mc.monte_carlo.samples = samples;
    double ms = 0.0;
    size_t match = 0;
    for (size_t i = 0; i < env.query_points.size(); ++i) {
      QueryAnswer ans = env.executor.Execute(env.query_points[i], mc);
      ms += ans.stats.total_ms - ans.stats.filter_ms;
      if (ans.ids == truth[i]) ++match;
    }
    table.AddRow(
        {FormatDouble(samples, 0),
         FormatDouble(static_cast<double>(match) / env.query_points.size(),
                      3),
         FormatDouble(ms / env.query_points.size(), 4),
         FormatDouble(vr_ms, 4)});
  }
  table.Print();
  return 0;
}
