// Figure 13 — effect of the tolerance Δ: fraction of queries fully answered
// by verification alone (no refinement needed).
//
// Paper result: as Δ grows from 0 to 0.2, about 10% more queries complete
// after verification (at Δ=0.16 vs Δ=0). The effect shows when bounds
// finish verification narrow-but-straddling P, so we report two thresholds:
// the paper's default P=0.3 (where our verifiers already finish almost all
// queries) and P=0.1 (many straddling bounds).
#include "bench_util/harness.h"

using namespace pverify;

namespace {

void RunPanel(const bench::Environment& env, double P) {
  std::printf("-- threshold P = %.2f --\n", P);
  ResultTable table({"tolerance", "fraction_finished", "avg_unknown",
                     "avg_refine_ms"},
                    std::string("fig13_P") + FormatDouble(P, 2) + ".csv");
  for (double tol : {0.0, 0.04, 0.08, 0.12, 0.16, 0.20}) {
    QueryOptions opt;
    opt.params = {P, tol};
    opt.strategy = Strategy::kVR;
    opt.integration.gauss_points = 8;
    datagen::WorkloadResult r =
        datagen::RunWorkload(env.executor, env.query_points, opt);
    table.AddRow(
        {FormatDouble(tol, 2),
         FormatDouble(r.FractionFinishedAfterVerify(), 3),
         FormatDouble(static_cast<double>(
                          r.totals.unknown_after_verification) /
                          r.queries,
                      2),
         FormatDouble(r.AvgRefineMs(), 4)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 13 — Effect of tolerance",
      "Fraction of queries finished after verification (no refinement)\n"
      "under increasing tolerance Δ (Long-Beach-like dataset).");

  const size_t queries = bench::QueriesFromEnv(40);
  const size_t count = bench::DatasetSizeFromEnv(53144);
  bench::Environment env =
      bench::MakeDefaultEnvironment(datagen::PdfKind::kUniform, queries,
                                    count);
  RunPanel(env, 0.3);
  RunPanel(env, 0.1);
  return 0;
}
