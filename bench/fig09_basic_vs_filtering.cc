// Figure 9 — "Basic vs. Filtering": time of the Basic (exact-probability)
// evaluation versus the filtering phase as the dataset grows.
//
// Paper result: filtering dominates on small sets, but Basic's cost grows
// faster and overtakes filtering beyond roughly 5,000 objects.
#include <vector>

#include "bench_util/harness.h"

using namespace pverify;

int main() {
  bench::PrintHeader(
      "Figure 9 — Basic vs. Filtering",
      "Average per-query time (ms) of the filtering phase and the Basic\n"
      "evaluation, over synthetic datasets of growing size (P=0.3, Δ=0.01,\n"
      "uniform pdfs). Paper: Basic overtakes filtering past ~5K objects.");

  const size_t queries = bench::QueriesFromEnv(10);
  ResultTable table({"total_size", "filter_ms", "basic_ms",
                     "basic_fraction", "avg_candidates"},
                    "fig09.csv");

  for (size_t size : {1000u, 2000u, 5000u, 10000u, 20000u, 50000u}) {
    bench::Environment env = bench::MakeDefaultEnvironment(
        datagen::PdfKind::kUniform, queries, size);
    QueryOptions opt;
    opt.params = {0.3, 0.01};
    opt.strategy = Strategy::kBasic;
    opt.integration.gauss_points = 8;
    datagen::WorkloadResult r =
        datagen::RunWorkload(env.executor, env.query_points, opt);
    double filter_ms = r.AvgFilterMs();
    // "Basic" time = everything after filtering (distance pdfs + exact
    // integration of every candidate).
    double basic_ms = r.AvgInitMs() + r.AvgRefineMs();
    table.AddRow({FormatDouble(size, 0), FormatDouble(filter_ms, 4),
                  FormatDouble(basic_ms, 4),
                  FormatDouble(basic_ms / (filter_ms + basic_ms), 3),
                  FormatDouble(r.AvgCandidates(), 1)});
  }
  table.Print();
  return 0;
}
