// Figure 11 — phase breakdown of the VR strategy: filtering, verification
// and refinement time as the threshold grows.
//
// Paper result: filtering time is fixed, verification stays ~1ms, and
// refinement time shrinks with P — vanishing for P > 0.3.
#include "bench_util/harness.h"

using namespace pverify;

int main() {
  bench::PrintHeader(
      "Figure 11 — Analysis of VR",
      "Per-phase average time (ms) of the VR strategy on the\n"
      "Long-Beach-like dataset (Δ=0.01). Paper: refinement cost decays\n"
      "with P; verification stays tiny and flat.");

  const size_t queries = bench::QueriesFromEnv(10);
  const size_t count = bench::DatasetSizeFromEnv(53144);
  bench::Environment env =
      bench::MakeDefaultEnvironment(datagen::PdfKind::kUniform, queries,
                                    count);

  ResultTable table({"P", "filter_ms", "init_ms", "verify_ms", "refine_ms",
                     "unknown_after_verify", "integrations"},
                    "fig11.csv");
  for (double P : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    QueryOptions opt;
    opt.params = {P, 0.01};
    opt.strategy = Strategy::kVR;
    opt.integration.gauss_points = 8;
    datagen::WorkloadResult r =
        datagen::RunWorkload(env.executor, env.query_points, opt);
    table.AddRow(
        {FormatDouble(P, 1), FormatDouble(r.AvgFilterMs(), 4),
         FormatDouble(r.AvgInitMs(), 4), FormatDouble(r.AvgVerifyMs(), 4),
         FormatDouble(r.AvgRefineMs(), 4),
         FormatDouble(static_cast<double>(
                          r.totals.unknown_after_verification) /
                          r.queries,
                      2),
         FormatDouble(static_cast<double>(r.totals.subregion_integrations) /
                          r.queries,
                      1)});
  }
  table.Print();
  return 0;
}
