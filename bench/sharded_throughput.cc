// Sharded + async throughput — scatter/gather and Submit-stream execution
// vs. the single-engine batch path.
//
// The workload mirrors engine_throughput (Long-Beach-like dataset, random
// query points, P=0.3, Δ=0.01, VR strategy). Three sweeps:
//
//  * ExecuteBatch on ShardedQueryEngine at 1/2/4/8 shards (hash and range
//    policies) against the unsharded QueryEngine at the same thread count.
//    Answers are bit-identical; the interesting numbers are q/s and the
//    bounds-pruning rate (range sharding skips most shards per query,
//    hash sharding cannot).
//  * Both worker pools at 4 shards: the work-stealing pool additionally
//    runs each request's shard loop as a nested ParallelFor inside batch
//    workers; flat-batch throughput must not regress vs. global-queue.
//  * Async Submit streams on both engines: every query submitted
//    individually, coalesced internally into pool batches.
//
// Every timed region repeats until it crosses the measurement floor
// (PVERIFY_MIN_WALL_MS, default 100 ms).
//
// Environment overrides: PVERIFY_QUERIES, PVERIFY_DATASET,
// PVERIFY_THREADS, PVERIFY_MIN_WALL_MS.
#include <cstdio>
#include <memory>
#include <string_view>
#include <thread>

#include "bench_util/harness.h"

using namespace pverify;

namespace {

size_t AnswersPerRep(const bench::ThroughputPoint& p) {
  return p.reps > 0 ? p.answers / p.reps : p.answers;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Sharded + async throughput — scatter/gather vs. one engine",
      "Queries/sec of ShardedQueryEngine::ExecuteBatch at 1/2/4/8 shards\n"
      "(hash and range policies), both worker pools at 4 shards, and the\n"
      "async Submit stream, against the unsharded QueryEngine\n"
      "(VR strategy, P=0.3, Δ=0.01). Timed regions repeat to a ≥100 ms\n"
      "floor.");

  const size_t queries = bench::QueriesFromEnv(200);
  const size_t dataset_size = bench::DatasetSizeFromEnv(20000);
  const double min_wall_ms = bench::MinWallMsFromEnv();
  const std::vector<size_t> shard_counts =
      bench::ThreadCountsFromEnv({1, 2, 4, 8});
  const size_t threads = std::thread::hardware_concurrency() == 0
                             ? 1
                             : std::thread::hardware_concurrency();

  std::printf(
      "dataset: %zu objects, %zu queries, %zu worker threads, "
      "floor: %.0f ms\n\n",
      dataset_size, queries, threads, min_wall_ms);

  bench::Environment env = bench::MakeDefaultEnvironment(
      datagen::PdfKind::kUniform, queries, dataset_size);

  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;

  ResultTable table({"engine", "policy", "pool", "shards", "reps", "wall_ms",
                     "queries_per_sec", "speedup", "visits_per_query",
                     "pruned_per_query"},
                    "sharded_throughput.csv");

  // Both engines are driven through Engine& below; construction is the
  // only place the sharded/unsharded choice exists.
  QueryEngine baseline(env.dataset, EngineOptions{threads});
  bench::TimeBatch(baseline, env.query_points, opt);  // warm-up
  bench::ThroughputPoint base = bench::TimeBatchFloored(
      baseline, env.query_points, opt, min_wall_ms);
  table.AddRow({"single", "-", "-", "-", std::to_string(base.reps),
                FormatDouble(base.wall_ms, 2), FormatDouble(base.Qps(), 1),
                FormatDouble(1.0, 2), "-", "-"});

  // Sharded batch: shards × policies × pools. The policy sweep runs on the
  // work-stealing (default) pool; the global-queue contrast runs at every
  // shard count under hash so the two pools' flat-batch throughput can be
  // compared directly.
  for (const char* policy_name : {"hash", "range"}) {
    for (PoolKind pool :
         {PoolKind::kWorkStealing, PoolKind::kGlobalQueue}) {
      if (pool == PoolKind::kGlobalQueue &&
          std::string_view(policy_name) != "hash") {
        continue;
      }
      for (size_t shards : shard_counts) {
        ShardedEngineOptions sopt;
        sopt.num_shards = shards;
        sopt.num_threads = threads;
        sopt.pool = pool;
        if (std::string_view(policy_name) == "range") {
          sopt.policy = std::make_shared<const RangeShardingPolicy>(
              RangeShardingPolicy::ForDataset(env.dataset));
        }
        ShardedQueryEngine sharded(env.dataset, sopt);
        bench::TimeBatch(sharded, env.query_points, opt);  // warm-up
        const size_t visits0 = sharded.ShardVisits();
        const size_t pruned0 = sharded.ShardsPruned();
        bench::ThroughputPoint point = bench::TimeBatchFloored(
            sharded, env.query_points, opt, min_wall_ms);
        if (AnswersPerRep(point) != AnswersPerRep(base)) {
          std::fprintf(stderr, "error: answer mismatch (%zu vs %zu)\n",
                       AnswersPerRep(point), AnswersPerRep(base));
          return 1;
        }
        const double per_query = static_cast<double>(point.queries);
        table.AddRow(
            {"sharded", policy_name, std::string(ToString(sopt.pool)),
             std::to_string(shards), std::to_string(point.reps),
             FormatDouble(point.wall_ms, 2), FormatDouble(point.Qps(), 1),
             FormatDouble(point.Qps() / base.Qps(), 2),
             FormatDouble((sharded.ShardVisits() - visits0) / per_query, 2),
             FormatDouble((sharded.ShardsPruned() - pruned0) / per_query,
                          2)});
      }
    }
  }

  // Async Submit streams: per-request futures, internal coalescing.
  bench::ThroughputPoint async_single = bench::TimeSubmitStreamFloored(
      baseline, env.query_points, opt, min_wall_ms);
  SubmitQueueStats qs = baseline.SubmitStats();
  table.AddRow({"single+async", "-", "-", "-",
                std::to_string(async_single.reps),
                FormatDouble(async_single.wall_ms, 2),
                FormatDouble(async_single.Qps(), 1),
                FormatDouble(async_single.Qps() / base.Qps(), 2), "-", "-"});
  for (PoolKind pool : {PoolKind::kWorkStealing, PoolKind::kGlobalQueue}) {
    ShardedEngineOptions sopt;
    sopt.num_shards = 4;
    sopt.num_threads = threads;
    sopt.pool = pool;
    ShardedQueryEngine sharded(env.dataset, sopt);
    bench::ThroughputPoint async_sharded = bench::TimeSubmitStreamFloored(
        sharded, env.query_points, opt, min_wall_ms);
    table.AddRow({"sharded+async", "hash", std::string(ToString(pool)), "4",
                  std::to_string(async_sharded.reps),
                  FormatDouble(async_sharded.wall_ms, 2),
                  FormatDouble(async_sharded.Qps(), 1),
                  FormatDouble(async_sharded.Qps() / base.Qps(), 2), "-",
                  "-"});
  }
  table.Print();

  std::printf(
      "\nsubmit coalescing: %zu requests ran as %zu pool batches "
      "(largest %zu)\n",
      qs.requests, qs.batches, qs.max_coalesced);
  std::printf(
      "Note: sharding pays off once filtering/candidate construction is a\n"
      "real fraction of query time or shards map to separate NUMA nodes;\n"
      "range sharding additionally skips distant shards per query\n"
      "(pruned_per_query). On the work-stealing pool a straggler request's\n"
      "shard tasks are stolen by idle workers at the batch tail.\n");
  return 0;
}
