// Figure 14 — Gaussian uncertainty pdfs (300-bar histograms): evaluation
// time of Basic / Refine / VR across thresholds, log-scale regime.
//
// Paper result: probability evaluation over Gaussian histograms is much
// more expensive, so the verifiers' savings widen — VR beats the others by
// orders of magnitude; at P=1 everything is cheap because at most one
// candidate can qualify.
#include "bench_util/harness.h"

using namespace pverify;

int main() {
  bench::PrintHeader(
      "Figure 14 — Gaussian pdf",
      "Average per-query evaluation time (ms, excluding filtering) with\n"
      "300-bar Gaussian pdfs. Smaller default dataset (10K objects) keeps\n"
      "the Basic baseline runnable; set PVERIFY_DATASET=53144 and\n"
      "PVERIFY_QUERIES=100 for the paper-scale run.");

  const size_t queries = bench::QueriesFromEnv(3);
  const size_t count = bench::DatasetSizeFromEnv(10000);
  bench::Environment env =
      bench::MakeDefaultEnvironment(datagen::PdfKind::kGaussian, queries,
                                    count);

  ResultTable table({"P", "basic_ms", "refine_ms", "vr_ms", "vr_speedup"},
                    "fig14.csv");
  for (double P : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    double ms[3] = {0, 0, 0};
    Strategy strategies[3] = {Strategy::kBasic, Strategy::kRefine,
                              Strategy::kVR};
    for (int s = 0; s < 3; ++s) {
      QueryOptions opt;
      opt.params = {P, 0.01};
      opt.strategy = strategies[s];
      opt.integration.gauss_points = 4;  // the integrand is piecewise-linear
      datagen::WorkloadResult r =
          datagen::RunWorkload(env.executor, env.query_points, opt);
      ms[s] = r.AvgTotalMs() - r.AvgFilterMs();
    }
    table.AddRow({FormatDouble(P, 1), FormatDouble(ms[0], 3),
                  FormatDouble(ms[1], 3), FormatDouble(ms[2], 3),
                  FormatDouble(ms[2] > 0 ? ms[0] / ms[2] : 0.0, 1)});
  }
  table.Print();
  return 0;
}
