#!/usr/bin/env bash
# Fat-binary sanity check for PVERIFY_MULTIARCH builds.
#
# Verifies that a linked artifact really carries BOTH kernel flavors:
#   1. nm: the base and arch kernel tables
#      (pverify::simdkern::{base,arch}::kTable) are both defined.
#   2. objdump: the arch flavor's code actually uses wide vectors (>= 1
#      ymm-register instruction inside simdkern::arch:: functions for
#      x86-64-v3/v4), while the simdkern::base:: functions use none — i.e.
#      the two copies were genuinely compiled at different ISAs and the
#      baseline path stays runnable on pre-AVX hosts.
#
# Usage: ci/check_multiarch.sh <binary> [arch]   (default arch: x86-64-v3)
set -u

bin="${1:?usage: ci/check_multiarch.sh <binary> [arch]}"
arch="${2:-x86-64-v3}"
status=0

if [ ! -f "$bin" ]; then
  echo "FAILED: no such binary: $bin"
  exit 1
fi

# --- 1. both flavor tables present -----------------------------------------
for ns in base arch; do
  if nm --defined-only -C "$bin" 2>/dev/null \
      | grep -q "pverify::simdkern::${ns}::kTable"; then
    echo "OK: simdkern::${ns}::kTable defined"
  else
    echo "FAILED: simdkern::${ns}::kTable not defined in $bin"
    status=1
  fi
done
[ "$status" -eq 0 ] || exit "$status"

# --- 2. the flavors were compiled at different ISAs ------------------------
# Count ymm-register uses per flavor by walking the disassembly's symbol
# headers. v2 has no ymm (SSE4.2), so the wide-vector assertion only
# applies to v3/v4; the base-flavor-has-none assertion always applies.
count_ymm() {
  objdump -dC "$bin" 2>/dev/null | awk -v ns="$1" '
    /^[0-9a-f]+ <.*>:$/ { in_ns = (index($0, ns) != 0) }
    in_ns && /%ymm/ { n++ }
    END { print n + 0 }'
}

base_ymm=$(count_ymm "pverify::simdkern::base::")
arch_ymm=$(count_ymm "pverify::simdkern::arch::")
echo "ymm instructions — base flavor: $base_ymm, arch flavor: $arch_ymm"

if [ "$base_ymm" -ne 0 ]; then
  echo "FAILED: baseline flavor uses ymm registers (not portable)"
  status=1
fi
case "$arch" in
  x86-64-v3|x86-64-v4)
    if [ "$arch_ymm" -eq 0 ]; then
      echo "FAILED: $arch flavor emitted no ymm instructions"
      status=1
    fi
    ;;
esac

if [ "$status" -eq 0 ]; then
  echo "OK: $bin carries a portable baseline flavor and a $arch flavor"
fi
exit "$status"
