#!/usr/bin/env sh
# Enforce a line-coverage floor over a path slice of an lcov tracefile.
#
#   ci/check_coverage.sh TRACEFILE PATH_SUBSTR FLOOR_PCT
#
# Sums the LF (lines instrumented) / LH (lines hit) records of every file
# whose SF: path contains PATH_SUBSTR and fails when the aggregate line
# coverage drops below FLOOR_PCT. Parses the tracefile itself instead of
# shelling out to `lcov --summary`, so the check works with any tracefile
# producer (lcov, gcovr --lcov, ...) and its math is testable without lcov
# installed.
set -eu

if [ "$#" -ne 3 ]; then
  echo "usage: $0 TRACEFILE PATH_SUBSTR FLOOR_PCT" >&2
  exit 2
fi

tracefile=$1
slice=$2
floor=$3

if [ ! -r "$tracefile" ]; then
  echo "check_coverage: cannot read tracefile '$tracefile'" >&2
  exit 2
fi

awk -v slice="$slice" -v floor="$floor" '
  /^SF:/  { in_slice = index($0, slice) > 0 }
  /^LF:/  { if (in_slice) lf += substr($0, 4) }
  /^LH:/  { if (in_slice) lh += substr($0, 4) }
  END {
    if (lf == 0) {
      printf "check_coverage: no instrumented lines match \"%s\"\n", slice
      exit 2
    }
    pct = 100.0 * lh / lf
    printf "coverage[%s]: %d/%d lines = %.1f%% (floor %.1f%%)\n", \
           slice, lh, lf, pct, floor
    if (pct < floor) {
      printf "check_coverage: %.1f%% is below the %.1f%% floor\n", pct, floor
      exit 1
    }
  }
' "$tracefile"
