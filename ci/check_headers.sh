#!/usr/bin/env bash
# Header self-containedness check: compile every public header under src/
# standalone (-fsyntax-only on the bare header) so each one keeps carrying
# its own includes. A header that only compiles when included after some
# sibling breaks downstream users and IDE tooling; this gate keeps the new
# engine API headers (engine/request.h, engine/engine.h, ...) includable in
# isolation.
#
# Usage: ci/check_headers.sh [compiler]   (default: c++)
set -u
cd "$(dirname "$0")/.."

CXX="${1:-c++}"
status=0
checked=0
for header in $(find src -name '*.h' | sort); do
  checked=$((checked + 1))
  if ! "$CXX" -std=c++17 -fsyntax-only -Wall -Wextra -Werror -Isrc \
       -x c++ "$header" 2>/tmp/header_check_err; then
    echo "NOT self-contained: $header"
    sed 's/^/    /' /tmp/header_check_err | head -15
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "OK: all $checked headers under src/ compile standalone"
else
  echo "FAILED: some headers do not compile standalone (see above)"
fi
exit "$status"
