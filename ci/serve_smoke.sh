#!/usr/bin/env bash
# Loopback end-to-end smoke test of the network front end.
#
# Exercises the full service stack the way a user would: start a
# pverify_serve daemon on an ephemeral port, run a pverify_cli batch
# against it over TCP (the CLI checks every remote answer against its own
# sequential baseline, so a pass means the served answers are correct, not
# just that bytes moved), run the open-loop load generator twice and diff
# the two BENCH_serve.json artifacts with ci/compare_bench.py (proving the
# artifact is well-formed and the comparer keys its rows), then SIGTERM the
# daemon and require a clean exit.
#
# Usage: ci/serve_smoke.sh <build-dir>
set -eu

build="${1:?usage: ci/serve_smoke.sh <build-dir>}"
build="$(cd "$build" && pwd)"
repo="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
server_pid=

cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -KILL "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT

# --- dataset: 400 uniform intervals in the CLI's query domain --------------
awk 'BEGIN {
  srand(7)
  for (i = 0; i < 400; ++i) {
    lo = rand() * 9990
    printf "%.6f %.6f\n", lo, lo + 0.2 + rand() * 2.0
  }
}' > "$work/data.txt"

# --- start the daemon on an ephemeral port ---------------------------------
"$build/pverify_serve" --dataset="$work/data.txt" --threads=2 \
  --port=0 --port-file="$work/port" > "$work/server.log" 2>&1 &
server_pid=$!

for _ in $(seq 1 100); do
  [ -s "$work/port" ] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "FAILED: server exited during startup"
    cat "$work/server.log"
    exit 1
  fi
  sleep 0.1
done
port="$(cat "$work/port")"
if [ -z "$port" ]; then
  echo "FAILED: server never wrote its port file"
  cat "$work/server.log"
  exit 1
fi
echo "OK: pverify_serve listening on port $port"

# --- CLI batch over the wire (self-checking against local baseline) --------
# --retries exercises the RetryingClient path even on a healthy server.
"$build/pverify_cli" batch "$work/data.txt" 40 2 \
  --connect="127.0.0.1:$port" --retries=3
echo "OK: remote batch matches the CLI's sequential baseline"

# --- load generator, twice; diff the artifacts -----------------------------
for run in 1 2; do
  (cd "$work" &&
    PVERIFY_DATASET=800 PVERIFY_SERVE_QPS=200,400 PVERIFY_SERVE_CONNS=1,2 \
    PVERIFY_SERVE_CACHE=0 PVERIFY_SERVE_MS=150 "$build/serve_loadgen")
  mv "$work/BENCH_serve.json" "$work/BENCH_serve.$run.json"
done
python3 "$repo/ci/compare_bench.py" \
  "$work/BENCH_serve.1.json" "$work/BENCH_serve.2.json"
cp "$work/BENCH_serve.2.json" "$build/BENCH_serve.json"
echo "OK: serve_loadgen artifacts produced and comparable"

# --- clean shutdown on SIGTERM ---------------------------------------------
kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=
if [ "$status" -ne 0 ]; then
  echo "FAILED: server exit status $status after SIGTERM"
  cat "$work/server.log"
  exit 1
fi
echo "OK: daemon shut down cleanly on SIGTERM"
grep "served" "$work/server.log" || true
echo "PASSED: loopback service smoke"
