#!/usr/bin/env bash
# Chaos smoke test: the full service stack under byte-level fault injection.
#
# Starts a real pverify_serve daemon with PVERIFY_FAULTS enabled — every
# socket transfer in the daemon may be delayed, corrupted, truncated or
# severed — and runs a pverify_cli batch against it with retries and a
# per-request deadline. The CLI checks every remote answer against its own
# sequential baseline, so a zero exit means the retry path recovered from
# every injected fault AND never surfaced a wrong answer (a corrupted frame
# that decoded would fail the equivalence check, not just the transport).
# Then SIGTERM must still drain the daemon cleanly, faults and all.
#
# Usage: ci/chaos_smoke.sh <build-dir>
set -eu

build="${1:?usage: ci/chaos_smoke.sh <build-dir>}"
build="$(cd "$build" && pwd)"
work="$(mktemp -d)"
server_pid=

cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -KILL "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT

# --- dataset: 400 uniform intervals in the CLI's query domain --------------
awk 'BEGIN {
  srand(7)
  for (i = 0; i < 400; ++i) {
    lo = rand() * 9990
    printf "%.6f %.6f\n", lo, lo + 0.2 + rand() * 2.0
  }
}' > "$work/data.txt"

# --- daemon with fault injection on every socket transfer ------------------
# The seed makes a failing run replayable; the probabilities are high
# enough that a 40-request batch reliably sees several faults.
PVERIFY_FAULTS="seed=7,delay_p=0.02,delay_ms=2,corrupt_p=0.01,truncate_p=0.01,sever_p=0.005" \
  "$build/pverify_serve" --dataset="$work/data.txt" --threads=2 \
  --port=0 --port-file="$work/port" --drain-ms=3000 \
  > "$work/server.log" 2>&1 &
server_pid=$!

for _ in $(seq 1 100); do
  [ -s "$work/port" ] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "FAILED: server exited during startup"
    cat "$work/server.log"
    exit 1
  fi
  sleep 0.1
done
port="$(cat "$work/port")"
if [ -z "$port" ]; then
  echo "FAILED: server never wrote its port file"
  cat "$work/server.log"
  exit 1
fi
echo "OK: faulty pverify_serve listening on port $port"

# --- retrying CLI batch must fully recover and answer-check ----------------
# Generous retry budget: the batch must complete despite severed
# connections (transparent reconnect) and corrupted frames (checksum
# rejection + re-send). Any wrong answer fails the CLI's equivalence check.
"$build/pverify_cli" batch "$work/data.txt" 40 2 \
  --connect="127.0.0.1:$port" --retries=12 --deadline-ms=5000
echo "OK: retrying batch recovered from injected faults, answers exact"

# --- SIGTERM must still drain cleanly under faults -------------------------
kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=
if [ "$status" -ne 0 ]; then
  echo "FAILED: server exit status $status after SIGTERM"
  cat "$work/server.log"
  exit 1
fi
echo "OK: daemon drained and shut down cleanly under faults"
grep -E "drain|served|backpressure" "$work/server.log" || true
echo "PASSED: chaos smoke"
