#!/usr/bin/env python3
"""Diff two BENCH_*.json artifacts row by row.

The bench harness (src/bench_util/harness.h) emits
    {"bench": <name>, "config": {...}, "results": [{...}, ...]}
where each result row mixes string keys (stage, pdf, ...) and numeric
fields (scalar_us, merge_us, speedup, ...). This tool matches rows between
a baseline and a candidate file by their string keys plus the numeric size
fields (candidates, subregions, pieces, batch, ...) and prints the relative
delta of every timing/speedup field — the quick answer to "did this PR move
the needle, and where".

Usage: ci/compare_bench.py BASELINE.json CANDIDATE.json [--threshold PCT]

Exit code is always 0 unless --threshold is given, in which case any
*_us regression beyond PCT percent fails the run (CI gate mode).
"""

import argparse
import json
import sys

# Fields that identify a row rather than measure it.
KEY_FIELDS = ("stage", "pdf", "mode", "engine", "strategy", "candidates",
              "subregions", "pieces", "pdf_pieces", "batch", "threads",
              "shards", "size", "k", "queries", "conns", "cache", "offered")

# Event counters (serve_loadgen's robustness telemetry): reported as
# absolute deltas, never percentage-gated — a baseline of 0 errors is the
# common case and relative deltas against 0 are meaningless.
COUNT_FIELDS = ("errors", "timeouts", "retries", "requests")


def row_key(row):
    return tuple((k, row[k]) for k in KEY_FIELDS if k in row)


def fmt_key(key):
    return " ".join(
        f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}" for k, v in key)


def load_results(path):
    with open(path) as fh:
        doc = json.load(fh)
    rows = {}
    for row in doc.get("results", []):
        rows[row_key(row)] = row
    return doc.get("bench", path), rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=None,
                        help="fail if any *_us field regresses by more than "
                             "this percentage")
    args = parser.parse_args()

    base_name, base = load_results(args.baseline)
    cand_name, cand = load_results(args.candidate)
    print(f"baseline:  {args.baseline} ({base_name}, {len(base)} rows)")
    print(f"candidate: {args.candidate} ({cand_name}, {len(cand)} rows)")
    print()

    regressions = []
    matched = 0
    for key, brow in sorted(base.items()):
        crow = cand.get(key)
        if crow is None:
            print(f"[only in baseline]  {fmt_key(key)}")
            continue
        matched += 1
        deltas = []
        for field, bval in brow.items():
            if field in KEY_FIELDS or not isinstance(bval, (int, float)):
                continue
            cval = crow.get(field)
            if not isinstance(cval, (int, float)):
                continue
            if field in COUNT_FIELDS:
                if cval != bval:
                    deltas.append(f"{field} {bval:g} -> {cval:g}")
                continue
            if bval == 0:
                continue
            pct = 100.0 * (cval - bval) / bval
            deltas.append(f"{field} {bval:g} -> {cval:g} ({pct:+.1f}%)")
            # For timings lower is better; for speedups higher is better.
            if field.endswith("_us") and args.threshold is not None \
                    and pct > args.threshold:
                regressions.append((key, field, pct))
        if deltas:
            print(f"{fmt_key(key)}")
            for d in deltas:
                print(f"    {d}")
    for key in sorted(set(cand) - set(base)):
        print(f"[only in candidate] {fmt_key(key)}")

    print(f"\n{matched} rows matched")
    if regressions:
        print(f"FAILED: {len(regressions)} timing regressions beyond "
              f"{args.threshold:.1f}%:")
        for key, field, pct in regressions:
            print(f"    {fmt_key(key)}: {field} {pct:+.1f}%")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
