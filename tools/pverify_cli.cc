// pverify command-line tool: run probabilistic queries against a dataset
// file (see datagen/dataset_io.h for the format).
//
//   pverify_cli pnn   <dataset> <q>                 exact probabilities
//   pverify_cli cpnn  <dataset> <q> <P> [tolerance] C-PNN answer (VR)
//   pverify_cli knn   <dataset> <q> <k> <P>         constrained k-NN
//   pverify_cli range <dataset> <lo> <hi> [P]       range probabilities
//   pverify_cli stats <dataset>                     dataset summary
//   pverify_cli batch <dataset> <n> [threads] [P]   batched throughput run
//
// batch also understands flags (anywhere after the positionals):
//   --shards=N         scatter/gather across N QueryEngine shards
//   --policy=hash|range  sharding policy (default hash)
//   --async            drive the run through Submit() futures (coalesced)
//   --pool=steal|queue worker pool: work-stealing (default; nested shard
//                      fan-out) or the simple global queue
//   --cache=N          wrap the engine in a CachingEngine memoizing up to
//                      N results (exact answers; see caching_engine.h) and
//                      replay the batch once warm to show the hit path
//   --dim=2            2-D workload: <dataset> becomes an object count and
//                      a synthetic 2-D dataset + query workload is
//                      generated (engine-native kPoint2D requests); the
//                      other batch flags compose.
//   --connect=H:P      client mode: ship the batch to a running
//                      pverify_serve at host H port P through the net
//                      client library (pipelined frames) instead of
//                      building a local engine; the local sequential loop
//                      still runs as the baseline/equivalence check. The
//                      engine-shape flags (--shards/--async/--pool/
//                      --cache) belong to the server in this mode.
//   --retries=N        (--connect only) total attempts per request through
//                      net::RetryingClient — reconnects and retries
//                      kOverloaded/kShuttingDown/timeout answers with
//                      exponential backoff (default 3; 1 = never retry)
//   --deadline-ms=N    (--connect only) per-request deadline stamped on
//                      each frame; the server answers kDeadlineExceeded
//                      instead of running an expired request (default 0 =
//                      no deadline)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "core/query.h"
#include "core/range_query.h"
#include "datagen/dataset_io.h"
#include "datagen/partition.h"
#include "datagen/workload.h"
#include "common/timer.h"
#include "engine/caching_engine.h"
#include "engine/engine.h"
#include "engine/query_engine.h"
#include "engine/sharded_engine.h"
#include "net/client.h"
#include "net/retry.h"

using namespace pverify;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pverify_cli pnn   <dataset> <q>\n"
      "  pverify_cli cpnn  <dataset> <q> <P> [tolerance]\n"
      "  pverify_cli knn   <dataset> <q> <k> <P>\n"
      "  pverify_cli range <dataset> <lo> <hi> [P]\n"
      "  pverify_cli stats <dataset>\n"
      "  pverify_cli batch <dataset> <num_queries> [threads] [P] "
      "[tolerance]\n"
      "               [--shards=N] [--policy=hash|range] [--async] "
      "[--dim=2] [--pool=steal|queue]\n"
      "               [--cache=N] [--connect=host:port] [--retries=N] "
      "[--deadline-ms=N]\n"
      "               (--dim=2 reads <dataset> as a synthetic 2-D object "
      "count;\n"
      "                --cache=N memoizes up to N results and replays the "
      "batch warm)\n");
  return 2;
}

/// Options carried by the batch mode's --flags.
struct BatchFlags {
  size_t shards = 0;  ///< 0 = unsharded QueryEngine
  std::string policy = "hash";
  bool async = false;
  int dim = 1;  ///< 2 = synthetic 2-D workload through kPoint2D
  PoolKind pool = PoolKind::kWorkStealing;
  bool pool_set = false;
  size_t cache = 0;  ///< 0 = no caching tier; N = CachingEngine capacity
  std::string connect;  ///< "host:port" = remote batch via pverify_serve
  int retries = 3;      ///< --connect: attempts per request (1 = no retry)
  uint32_t deadline_ms = 0;  ///< --connect: per-request deadline (0 = none)
};

double ParseDouble(const char* s) {
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "error: not a number: %s\n", s);
    std::exit(2);
  }
  return v;
}

int RunPnn(const Dataset& data, double q) {
  CpnnExecutor exec(data);
  auto probs = exec.ComputePnn(q);
  std::printf("# %zu candidate(s) at q = %g\n", probs.size(), q);
  for (const auto& [id, p] : probs) {
    std::printf("%lld %.6f\n", static_cast<long long>(id), p);
  }
  return 0;
}

int RunCpnn(const Dataset& data, double q, double threshold,
            double tolerance) {
  CpnnExecutor exec(data);
  QueryOptions opt;
  opt.params = {threshold, tolerance};
  opt.strategy = Strategy::kVR;
  QueryAnswer ans = exec.Execute(q, opt);
  std::printf("# C-PNN q=%g P=%g tolerance=%g — %zu answer(s), "
              "%zu candidate(s), %zu refined\n",
              q, threshold, tolerance, ans.ids.size(), ans.stats.candidates,
              ans.stats.refined_candidates);
  for (ObjectId id : ans.ids) {
    std::printf("%lld\n", static_cast<long long>(id));
  }
  return 0;
}

int RunKnn(const Dataset& data, double q, int k, double threshold) {
  CpnnExecutor exec(data);
  CknnAnswer ans = exec.ExecuteKnn(q, k, {threshold, 0.0});
  std::printf("# C-PkNN q=%g k=%d P=%g — %zu answer(s), %zu pruned by "
              "bound, %zu decided early\n",
              q, k, threshold, ans.ids.size(), ans.pruned_by_bound,
              ans.early_decided);
  for (ObjectId id : ans.ids) {
    std::printf("%lld\n", static_cast<long long>(id));
  }
  return 0;
}

int RunRange(const Dataset& data, double lo, double hi, double threshold) {
  RangeQueryExecutor exec(data);
  auto results = exec.Execute(lo, hi, threshold);
  std::printf("# range [%g, %g] P>=%g — %zu object(s)\n", lo, hi, threshold,
              results.size());
  for (const RangeResult& r : results) {
    std::printf("%lld %.6f\n", static_cast<long long>(r.id), r.probability);
  }
  return 0;
}

// Shared tail of the batch modes: throughput/phase report + the sequential
// vs. batched answer-count equivalence check.
int ReportBatch(const bench::ThroughputPoint& seq,
                const bench::ThroughputPoint& batched,
                const EngineStats& stats, const SubmitQueueStats& submit,
                const BatchFlags& flags, double threshold, double tolerance,
                size_t num_queries, size_t engine_threads) {
  if (flags.async) {
    std::printf("# async: %zu submits coalesced into %zu batches "
                "(largest %zu)\n",
                submit.requests, submit.batches, submit.max_coalesced);
  }

  std::printf("# batch P=%g tolerance=%g queries=%zu threads=%zu dim=%d\n",
              threshold, tolerance, num_queries, engine_threads, flags.dim);
  std::printf("sequential:   %10.2f ms  %10.1f q/s  %zu answers\n",
              seq.wall_ms, seq.Qps(), seq.answers);
  std::printf("batched:      %10.2f ms  %10.1f q/s  %zu answers\n",
              batched.wall_ms, batched.Qps(), batched.answers);
  std::printf("speedup:      %10.2fx\n",
              batched.wall_ms > 0 ? seq.wall_ms / batched.wall_ms : 0.0);
  if (stats.queries > 0) {  // the async stream reports no batch aggregate
    std::printf("phases (of summed query time): filter %.1f%% | init %.1f%% "
                "| verify %.1f%% | refine %.1f%%\n",
                100 * stats.PhaseFraction(&QueryStats::filter_ms),
                100 * stats.PhaseFraction(&QueryStats::init_ms),
                100 * stats.PhaseFraction(&QueryStats::verify_ms),
                100 * stats.PhaseFraction(&QueryStats::refine_ms));
    for (const EngineStats::StageTotal& st : stats.verifier_stages) {
      std::printf("verifier %-5s %10.2f ms over %zu runs\n", st.name.c_str(),
                  st.ms, st.runs);
    }
  }
  if (seq.answers != batched.answers) {
    std::fprintf(stderr, "error: answer mismatch (%zu vs %zu)\n", seq.answers,
                 batched.answers);
    return 1;
  }
  return 0;
}

// Builds the batch-mode engine from the --flags: the ONLY place the batch
// modes distinguish sharded from unsharded. Everything downstream runs
// against Engine&. The optional out-param hands back the concrete sharded
// engine for its scatter telemetry. `range_policy` supplies the
// dimensionality-specific range policy when --policy=range.
std::unique_ptr<Engine> MakeBatchEngine(
    const BatchFlags& flags, size_t threads,
    const std::function<std::shared_ptr<const ShardingPolicy>()>&
        range_policy,
    const std::function<std::unique_ptr<QueryEngine>(EngineOptions)>&
        unsharded,
    const std::function<std::unique_ptr<ShardedQueryEngine>(
        ShardedEngineOptions)>& sharded,
    ShardedQueryEngine** sharded_out) {
  *sharded_out = nullptr;
  if (flags.shards == 0) {
    EngineOptions eopt;
    eopt.num_threads = threads;
    eopt.pool = flags.pool;
    return unsharded(eopt);
  }
  ShardedEngineOptions sopt;
  sopt.num_shards = flags.shards;
  sopt.num_threads = threads;  // 0 = hardware concurrency
  sopt.pool = flags.pool;
  if (flags.policy == "range") {
    sopt.policy = range_policy();
  } else if (flags.policy != "hash") {
    std::fprintf(stderr, "error: unknown policy '%s'\n",
                 flags.policy.c_str());
    return nullptr;
  }
  std::unique_ptr<ShardedQueryEngine> engine = sharded(sopt);
  *sharded_out = engine.get();
  return engine;
}

// Shared tail of the batch modes once the engine exists: timed batched (or
// async-streamed) run against the sequential baseline, sharded telemetry
// when applicable, report. The engine is only ever touched as Engine&.
template <typename Point>
int RunBatchOnEngine(Engine& engine, ShardedQueryEngine* sharded,
                     CachingEngine* cache,
                     const bench::ThroughputPoint& seq,
                     const std::vector<Point>& points,
                     const QueryOptions& opt, const BatchFlags& flags,
                     double threshold, double tolerance) {
  EngineStats stats;
  bench::ThroughputPoint batched =
      flags.async ? bench::TimeSubmitStream(engine, points, opt)
                  : bench::TimeBatch(engine, points, opt, &stats);
  if (sharded != nullptr) {
    std::printf("# sharded: %zu shards (%s policy), %zu shard visits, "
                "%zu pruned by bounds\n",
                sharded->num_shards(), sharded->policy().name().data(),
                sharded->ShardVisits(), sharded->ShardsPruned());
  }
  if (cache != nullptr) {
    // The first pass populated the memo; replay the same workload warm so
    // the hit path shows up (answers stay bit-identical either way).
    bench::ThroughputPoint warm =
        flags.async ? bench::TimeSubmitStream(engine, points, opt)
                    : bench::TimeBatch(engine, points, opt);
    CacheStats cs = cache->GetCacheStats();
    std::printf("# cache: capacity=%zu entries=%zu hits=%zu misses=%zu "
                "rechecks=%zu bypasses=%zu hit_rate=%.3f\n",
                cache->options().capacity, cs.entries, cs.hits, cs.misses,
                cs.rechecks, cs.bypasses, cs.HitRate());
    std::printf("cache replay: %10.2f ms  %10.1f q/s  %zu answers\n",
                warm.wall_ms, warm.Qps(), warm.answers);
    if (warm.answers != batched.answers) {
      std::fprintf(stderr, "error: cached replay answer mismatch "
                   "(%zu vs %zu)\n", batched.answers, warm.answers);
      return 1;
    }
  }
  return ReportBatch(seq, batched, stats, engine.SubmitStats(), flags,
                     threshold, tolerance, points.size(),
                     engine.num_threads());
}

// Client-mode tail of the batch modes (--connect): pipeline the whole
// workload to a running pverify_serve through the net client library and
// report it against the local sequential baseline. The per-query stats the
// server sends back are accumulated exactly as a local batch would, so the
// phase breakdown still prints.
template <typename Point>
int RunRemoteBatch(const bench::ThroughputPoint& seq,
                   const std::vector<Point>& points, const QueryOptions& opt,
                   const BatchFlags& flags, double threshold,
                   double tolerance) {
  const size_t colon = flags.connect.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    std::fprintf(stderr, "error: --connect expects host:port\n");
    return 2;
  }
  const std::string host = flags.connect.substr(0, colon);
  const int port = std::atoi(flags.connect.c_str() + colon + 1);
  if (port < 1 || port > 65535) {
    std::fprintf(stderr, "error: bad port in --connect\n");
    return 2;
  }

  // A bounded recv timeout keeps a stalled/faulty server from hanging the
  // CLI: with a deadline we know how long an answer can legitimately take;
  // without one, fall back to a generous fixed bound.
  net::ClientOptions copt;
  copt.recv_timeout_ms = flags.deadline_ms > 0
                             ? flags.deadline_ms * 2 + 2000
                             : 30000;
  net::RetryPolicy policy;
  policy.max_attempts = flags.retries;
  net::RetryingClient client(host, static_cast<uint16_t>(port), copt,
                             policy);
  std::vector<QueryRequest> requests;
  requests.reserve(points.size());
  for (Point q : points) {
    requests.push_back(bench::MakePointRequest(q, opt));
  }
  bench::ThroughputPoint remote;
  remote.queries = points.size();
  Timer wall;
  std::vector<net::ServeResponse> responses =
      client.Call(requests, flags.deadline_ms);
  remote.wall_ms = wall.ElapsedMs();

  EngineStats stats;
  for (const net::ServeResponse& r : responses) {
    if (!r.ok) {
      std::fprintf(stderr, "error: request failed after %d attempt(s): %s\n",
                   flags.retries, r.error.c_str());
      return 1;
    }
    remote.answers += r.result.ids.size();
    AccumulateBatchResult(r.result.stats, &stats);
  }
  stats.wall_ms = remote.wall_ms;
  const net::ClientStats& cstats = client.stats();
  std::printf("# remote: %s (%zu pipelined requests", flags.connect.c_str(),
              responses.size());
  if (stats.cache.hits > 0) {
    std::printf(", %zu served from the server cache", stats.cache.hits);
  }
  if (cstats.retries > 0 || cstats.reconnects > 0) {
    std::printf(", %llu retries, %llu reconnects",
                static_cast<unsigned long long>(cstats.retries),
                static_cast<unsigned long long>(cstats.reconnects));
  }
  std::printf(")\n");
  return ReportBatch(seq, remote, stats, SubmitQueueStats{}, flags, threshold,
                     tolerance, points.size(), /*engine_threads=*/0);
}

// Batched throughput mode: random query points over the dataset's domain,
// run once as a sequential loop and once through the multi-threaded engine
// (unsharded or sharded, blocking batch or async Submit stream).
int RunBatch(const Dataset& data, size_t num_queries, size_t threads,
             double threshold, double tolerance, const BatchFlags& flags) {
  if (data.empty()) {
    std::fprintf(stderr, "error: empty dataset\n");
    return 1;
  }
  double lo = data.front().lo(), hi = data.front().hi();
  for (const UncertainObject& obj : data) {
    lo = std::min(lo, obj.lo());
    hi = std::max(hi, obj.hi());
  }
  const std::vector<double> points =
      datagen::MakeQueryPoints(num_queries, lo, hi, /*seed=*/101);

  QueryOptions opt;
  opt.params = {threshold, tolerance};
  opt.strategy = Strategy::kVR;

  // Sequential baseline (one-query-at-a-time loop), then the batched
  // engine, both timed by the shared bench helpers.
  CpnnExecutor exec(data);
  bench::ThroughputPoint seq = bench::TimeSequentialLoop(exec, points, opt);

  if (!flags.connect.empty()) {
    return RunRemoteBatch(seq, points, opt, flags, threshold, tolerance);
  }

  ShardedQueryEngine* sharded = nullptr;
  std::unique_ptr<Engine> engine = MakeBatchEngine(
      flags, threads,
      [&] {
        return std::make_shared<const RangeShardingPolicy>(
            RangeShardingPolicy::ForDataset(data));
      },
      [&](EngineOptions eopt) {
        return std::make_unique<QueryEngine>(data, eopt);
      },
      [&](ShardedEngineOptions sopt) {
        return std::make_unique<ShardedQueryEngine>(data, sopt);
      },
      &sharded);
  if (engine == nullptr) return 2;
  CachingEngine* cache = nullptr;
  if (flags.cache > 0) {
    CachingEngineOptions copt;
    copt.capacity = flags.cache;
    std::unique_ptr<CachingEngine> wrapped =
        MakeCachingEngine(std::move(engine), copt);
    cache = wrapped.get();
    engine = std::move(wrapped);
  }
  return RunBatchOnEngine(*engine, sharded, cache, seq, points, opt, flags,
                          threshold, tolerance);
}

// 2-D batched throughput mode (--dim=2): synthesizes `count` uniform-pdf
// rectangles/disks plus a random 2-D query workload and drives them as
// engine-native Point2DQuery requests — sequential executor loop vs.
// batched engine, sharded and async composing exactly as in 1-D.
int RunBatch2D(size_t count, size_t num_queries, size_t threads,
               double threshold, double tolerance, const BatchFlags& flags) {
  datagen::Synthetic2DConfig config;
  config.count = count;
  Dataset2D data = datagen::MakeSynthetic2D(config);
  const std::vector<Point2> points =
      datagen::MakeQueryPoints2D(num_queries, 0.0, config.domain,
                                 /*seed=*/103);

  QueryOptions opt;
  opt.params = {threshold, tolerance};
  opt.strategy = Strategy::kVR;

  CpnnExecutor2D exec(data);
  bench::ThroughputPoint seq = bench::TimeSequentialLoop(exec, points, opt);

  if (!flags.connect.empty()) {
    return RunRemoteBatch(seq, points, opt, flags, threshold, tolerance);
  }

  ShardedQueryEngine* sharded = nullptr;
  std::unique_ptr<Engine> engine = MakeBatchEngine(
      flags, threads,
      [&] {
        return std::make_shared<const RangeShardingPolicy>(
            RangeShardingPolicy::ForDataset2D(data));
      },
      [&](EngineOptions eopt) {
        return std::make_unique<QueryEngine>(data, eopt);
      },
      [&](ShardedEngineOptions sopt) {
        return std::make_unique<ShardedQueryEngine>(data, sopt);
      },
      &sharded);
  if (engine == nullptr) return 2;
  CachingEngine* cache = nullptr;
  if (flags.cache > 0) {
    CachingEngineOptions copt;
    copt.capacity = flags.cache;
    std::unique_ptr<CachingEngine> wrapped =
        MakeCachingEngine(std::move(engine), copt);
    cache = wrapped.get();
    engine = std::move(wrapped);
  }
  return RunBatchOnEngine(*engine, sharded, cache, seq, points, opt, flags,
                          threshold, tolerance);
}

int RunStats(const Dataset& data) {
  if (data.empty()) {
    std::printf("empty dataset\n");
    return 0;
  }
  double lo = data.front().lo(), hi = data.front().hi();
  double total_len = 0.0;
  size_t bars = 0;
  for (const UncertainObject& obj : data) {
    lo = std::min(lo, obj.lo());
    hi = std::max(hi, obj.hi());
    total_len += obj.hi() - obj.lo();
    bars += obj.pdf().num_bars();
  }
  std::printf("objects:        %zu\n", data.size());
  std::printf("domain:         [%g, %g]\n", lo, hi);
  std::printf("mean length:    %.4f\n", total_len / data.size());
  std::printf("mean pdf bars:  %.1f\n",
              static_cast<double>(bars) / data.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Split --flags (batch mode only) from positional arguments.
  BatchFlags flags;
  bool saw_flags = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--", 2) == 0) saw_flags = true;
    if (std::strncmp(a, "--shards=", 9) == 0) {
      double n = ParseDouble(a + 9);
      if (n < 1) {
        std::fprintf(stderr, "error: --shards must be >= 1\n");
        return 2;
      }
      flags.shards = static_cast<size_t>(n);
    } else if (std::strncmp(a, "--policy=", 9) == 0) {
      flags.policy = a + 9;
    } else if (std::strcmp(a, "--async") == 0) {
      flags.async = true;
    } else if (std::strncmp(a, "--pool=", 7) == 0) {
      const std::string name = a + 7;
      flags.pool_set = true;
      if (name == "steal") {
        flags.pool = PoolKind::kWorkStealing;
      } else if (name == "queue") {
        flags.pool = PoolKind::kGlobalQueue;
      } else {
        std::fprintf(stderr, "error: --pool must be steal or queue\n");
        return 2;
      }
    } else if (std::strncmp(a, "--connect=", 10) == 0) {
      flags.connect = a + 10;
    } else if (std::strncmp(a, "--retries=", 10) == 0) {
      double n = ParseDouble(a + 10);
      if (n < 1) {
        std::fprintf(stderr, "error: --retries must be >= 1\n");
        return 2;
      }
      flags.retries = static_cast<int>(n);
    } else if (std::strncmp(a, "--deadline-ms=", 14) == 0) {
      double n = ParseDouble(a + 14);
      if (n < 0) {
        std::fprintf(stderr, "error: --deadline-ms must be >= 0\n");
        return 2;
      }
      flags.deadline_ms = static_cast<uint32_t>(n);
    } else if (std::strncmp(a, "--cache=", 8) == 0) {
      double n = ParseDouble(a + 8);
      if (n < 0) {
        std::fprintf(stderr, "error: --cache must be >= 0\n");
        return 2;
      }
      flags.cache = static_cast<size_t>(n);
    } else if (std::strncmp(a, "--dim=", 6) == 0) {
      double d = ParseDouble(a + 6);
      if (d != 1 && d != 2) {
        std::fprintf(stderr, "error: --dim must be 1 or 2\n");
        return 2;
      }
      flags.dim = static_cast<int>(d);
    } else if (std::strncmp(a, "--", 2) == 0) {
      std::fprintf(stderr, "error: unknown flag %s\n", a);
      return 2;
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  if (saw_flags && cmd != "batch") {
    std::fprintf(stderr,
                 "error: --shards/--policy/--async/--dim/--pool/--cache/"
                 "--connect/--retries/--deadline-ms apply to batch only\n");
    return 2;
  }
  if (flags.connect.empty() &&
      (flags.retries != 3 || flags.deadline_ms != 0)) {
    std::fprintf(stderr,
                 "error: --retries/--deadline-ms only apply with "
                 "--connect\n");
    return 2;
  }
  if (!flags.connect.empty() &&
      (flags.shards != 0 || flags.async || flags.cache != 0 ||
       flags.pool_set || flags.policy != "hash")) {
    std::fprintf(stderr,
                 "error: --connect ships the batch to a server; the engine "
                 "shape (--shards/--policy/--async/--pool/--cache) is the "
                 "server's\n");
    return 2;
  }
  // The 2-D batch mode synthesizes its dataset: <dataset> is an object
  // count, so no file is loaded (and no fallthrough to the file loader —
  // a wrong argument count is a usage error).
  if (cmd == "batch" && flags.dim == 2) {
    if (argc < 4 || argc > 7) return Usage();
    double count = ParseDouble(argv[2]);
    double num_queries = ParseDouble(argv[3]);
    double threads = argc >= 5 ? ParseDouble(argv[4]) : 0.0;
    if (count < 1 || num_queries < 1 || threads < 0) {
      std::fprintf(stderr,
                   "error: count and num_queries must be >= 1, threads >= "
                   "0\n");
      return 2;
    }
    double threshold = argc >= 6 ? ParseDouble(argv[5]) : 0.3;
    double tolerance = argc >= 7 ? ParseDouble(argv[6]) : 0.01;
    try {
      return RunBatch2D(static_cast<size_t>(count),
                        static_cast<size_t>(num_queries),
                        static_cast<size_t>(threads), threshold, tolerance,
                        flags);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  Dataset data;
  try {
    data = datagen::LoadDataset(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  try {
    if (cmd == "pnn" && argc == 4) {
      return RunPnn(data, ParseDouble(argv[3]));
    }
    if (cmd == "cpnn" && (argc == 5 || argc == 6)) {
      double tol = argc == 6 ? ParseDouble(argv[5]) : 0.0;
      return RunCpnn(data, ParseDouble(argv[3]), ParseDouble(argv[4]), tol);
    }
    if (cmd == "knn" && argc == 6) {
      return RunKnn(data, ParseDouble(argv[3]),
                    static_cast<int>(ParseDouble(argv[4])),
                    ParseDouble(argv[5]));
    }
    if (cmd == "range" && (argc == 5 || argc == 6)) {
      double threshold = argc == 6 ? ParseDouble(argv[5]) : 0.0;
      return RunRange(data, ParseDouble(argv[3]), ParseDouble(argv[4]),
                      threshold);
    }
    if (cmd == "stats" && argc == 3) {
      return RunStats(data);
    }
    if (cmd == "batch" && argc >= 4 && argc <= 7) {
      double num_queries = ParseDouble(argv[3]);
      double threads = argc >= 5 ? ParseDouble(argv[4]) : 0.0;
      if (num_queries < 1 || threads < 0) {
        std::fprintf(stderr,
                     "error: num_queries must be >= 1 and threads >= 0\n");
        return 2;
      }
      double threshold = argc >= 6 ? ParseDouble(argv[5]) : 0.3;
      double tolerance = argc >= 7 ? ParseDouble(argv[6]) : 0.01;
      return RunBatch(data, static_cast<size_t>(num_queries),
                      static_cast<size_t>(threads), threshold, tolerance,
                      flags);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
