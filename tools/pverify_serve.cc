// pverify_serve: the network front end. Loads (or synthesizes) a dataset,
// builds the same engine stack the CLI batch mode would (sharded engines,
// worker-pool choice and the caching tier all compose), and serves it over
// the binary wire protocol in src/net/ until SIGINT/SIGTERM.
//
//   pverify_serve --dataset=objects.txt
//   pverify_serve --synthetic=50000 --dim2=2000 --cache=4096 --port=7411
//
// Flags:
//   --port=N        TCP port (default 0 = kernel-assigned; the bound port
//                   is printed on stdout either way)
//   --port-file=F   also write the bound port to F (how scripts find an
//                   ephemeral port without parsing stdout)
//   --dataset=F     1-D dataset file (datagen/dataset_io.h format)
//   --synthetic=N   synthesize N 1-D intervals instead of loading a file
//   --dim2=N        additionally index N synthetic 2-D objects, making the
//                   engine dual-mode (kPoint2D/kKnn2D served too)
//   --threads=N     worker threads (0 = hardware concurrency)
//   --shards=N      scatter/gather across N shards
//   --policy=P      sharding policy: hash (default) or range
//   --pool=P        worker pool: steal (default) or queue
//   --cache=N       wrap the engine in a CachingEngine of capacity N —
//                   repeated identical requests from ANY connection hit
//                   the memo
//   --max-conns=N   concurrent connection cap (default 64)
//   --max-frame=N   frame-body byte cap (oversized requests are answered
//                   with a typed kTooLarge error, then disconnected)
//   --inflight=N    per-connection in-flight cap (0 = unlimited); over it
//                   the server answers kOverloaded without dropping the
//                   connection
//   --admission=N   global queued-request admission limit (0 = unlimited)
//   --write-timeout-ms=N  slow-reader disconnect threshold (0 = never)
//   --drain-ms=N    SIGTERM grace: finish in-flight requests for up to N ms
//                   before stopping (SIGINT always stops immediately)
//
// Clients: pverify_cli batch ... --connect=host:port, the net_server tests
// and bench/serve_loadgen all speak the same src/net/client.h library.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>

#include "datagen/dataset_io.h"
#include "datagen/partition.h"
#include "datagen/synthetic.h"
#include "engine/caching_engine.h"
#include "engine/engine.h"
#include "engine/query_engine.h"
#include "engine/sharded_engine.h"
#include "net/server.h"

using namespace pverify;

namespace {

// SIGINT/SIGTERM land here; the main loop polls it between sleeps. A flag
// rather than direct shutdown because Server::Stop joins threads, which is
// not async-signal-safe. SIGINT stops immediately; SIGTERM asks for a
// graceful drain first (finish in-flight work, reject new requests).
volatile std::sig_atomic_t g_stop = 0;

void HandleInt(int) { g_stop = 1; }
void HandleTerm(int) { g_stop = 2; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: pverify_serve (--dataset=FILE | --synthetic=N) [--dim2=N]\n"
      "                     [--port=N] [--port-file=FILE] [--threads=N]\n"
      "                     [--shards=N] [--policy=hash|range]\n"
      "                     [--pool=steal|queue] [--cache=N] "
      "[--max-conns=N]\n"
      "                     [--max-frame=BYTES] [--inflight=N] "
      "[--admission=N]\n"
      "                     [--write-timeout-ms=N] [--drain-ms=N]\n");
  return 2;
}

struct ServeFlags {
  uint16_t port = 0;
  std::string port_file;
  std::string dataset_path;
  size_t synthetic = 0;
  size_t dim2 = 0;
  size_t threads = 0;
  size_t shards = 0;
  std::string policy = "hash";
  PoolKind pool = PoolKind::kWorkStealing;
  size_t cache = 0;
  size_t max_conns = 64;
  size_t max_frame = 0;  // 0 = keep the library default
  size_t inflight = 128;
  size_t admission = 1024;
  size_t write_timeout_ms = 5000;
  size_t drain_ms = 2000;
};

bool ParseSize(const char* s, size_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<size_t>(v);
  return true;
}

std::unique_ptr<Engine> BuildEngine(const ServeFlags& flags, Dataset data,
                                    Dataset2D data2d) {
  const bool dual = flags.dim2 > 0;
  std::unique_ptr<Engine> engine;
  if (flags.shards == 0) {
    EngineOptions eopt;
    eopt.num_threads = flags.threads;
    eopt.pool = flags.pool;
    engine = dual ? std::make_unique<QueryEngine>(std::move(data),
                                                  std::move(data2d), eopt)
                  : std::make_unique<QueryEngine>(std::move(data), eopt);
  } else {
    ShardedEngineOptions sopt;
    sopt.num_shards = flags.shards;
    sopt.num_threads = flags.threads;
    sopt.pool = flags.pool;
    if (flags.policy == "range") {
      sopt.policy = std::make_shared<const RangeShardingPolicy>(
          RangeShardingPolicy::ForDataset(data));
    } else if (flags.policy != "hash") {
      std::fprintf(stderr, "error: unknown policy '%s'\n",
                   flags.policy.c_str());
      return nullptr;
    }
    engine = dual ? std::make_unique<ShardedQueryEngine>(
                        std::move(data), std::move(data2d), sopt)
                  : std::make_unique<ShardedQueryEngine>(std::move(data),
                                                         sopt);
  }
  if (flags.cache > 0) {
    CachingEngineOptions copt;
    copt.capacity = flags.cache;
    engine = MakeCachingEngine(std::move(engine), copt);
  }
  return engine;
}

}  // namespace

int main(int argc, char** argv) {
  ServeFlags flags;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    size_t n = 0;
    if (std::strncmp(a, "--port=", 7) == 0 && ParseSize(a + 7, &n) &&
        n <= 65535) {
      flags.port = static_cast<uint16_t>(n);
    } else if (std::strncmp(a, "--port-file=", 12) == 0) {
      flags.port_file = a + 12;
    } else if (std::strncmp(a, "--dataset=", 10) == 0) {
      flags.dataset_path = a + 10;
    } else if (std::strncmp(a, "--synthetic=", 12) == 0 &&
               ParseSize(a + 12, &n) && n > 0) {
      flags.synthetic = n;
    } else if (std::strncmp(a, "--dim2=", 7) == 0 && ParseSize(a + 7, &n)) {
      flags.dim2 = n;
    } else if (std::strncmp(a, "--threads=", 10) == 0 &&
               ParseSize(a + 10, &n)) {
      flags.threads = n;
    } else if (std::strncmp(a, "--shards=", 9) == 0 && ParseSize(a + 9, &n)) {
      flags.shards = n;
    } else if (std::strncmp(a, "--policy=", 9) == 0) {
      flags.policy = a + 9;
    } else if (std::strncmp(a, "--pool=", 7) == 0) {
      const std::string name = a + 7;
      if (name == "steal") {
        flags.pool = PoolKind::kWorkStealing;
      } else if (name == "queue") {
        flags.pool = PoolKind::kGlobalQueue;
      } else {
        std::fprintf(stderr, "error: --pool must be steal or queue\n");
        return 2;
      }
    } else if (std::strncmp(a, "--cache=", 8) == 0 && ParseSize(a + 8, &n)) {
      flags.cache = n;
    } else if (std::strncmp(a, "--max-conns=", 12) == 0 &&
               ParseSize(a + 12, &n) && n > 0) {
      flags.max_conns = n;
    } else if (std::strncmp(a, "--max-frame=", 12) == 0 &&
               ParseSize(a + 12, &n) && n > 0) {
      flags.max_frame = n;
    } else if (std::strncmp(a, "--inflight=", 11) == 0 &&
               ParseSize(a + 11, &n)) {
      flags.inflight = n;
    } else if (std::strncmp(a, "--admission=", 12) == 0 &&
               ParseSize(a + 12, &n)) {
      flags.admission = n;
    } else if (std::strncmp(a, "--write-timeout-ms=", 19) == 0 &&
               ParseSize(a + 19, &n)) {
      flags.write_timeout_ms = n;
    } else if (std::strncmp(a, "--drain-ms=", 11) == 0 &&
               ParseSize(a + 11, &n)) {
      flags.drain_ms = n;
    } else {
      std::fprintf(stderr, "error: bad argument %s\n", a);
      return Usage();
    }
  }
  if (flags.dataset_path.empty() == (flags.synthetic == 0)) {
    std::fprintf(stderr,
                 "error: exactly one of --dataset / --synthetic required\n");
    return Usage();
  }

  try {
    Dataset data;
    if (!flags.dataset_path.empty()) {
      data = datagen::LoadDataset(flags.dataset_path);
      std::printf("# loaded %zu objects from %s\n", data.size(),
                  flags.dataset_path.c_str());
    } else {
      datagen::SyntheticConfig config;
      config.count = flags.synthetic;
      data = datagen::MakeSynthetic(config);
      std::printf("# synthesized %zu 1-D objects\n", data.size());
    }
    Dataset2D data2d;
    if (flags.dim2 > 0) {
      datagen::Synthetic2DConfig config;
      config.count = flags.dim2;
      data2d = datagen::MakeSynthetic2D(config);
      std::printf("# synthesized %zu 2-D objects (dual-mode engine)\n",
                  data2d.size());
    }

    std::unique_ptr<Engine> engine =
        BuildEngine(flags, std::move(data), std::move(data2d));
    if (engine == nullptr) return 2;

    net::ServerOptions sopt;
    sopt.port = flags.port;
    sopt.max_connections = flags.max_conns;
    if (flags.max_frame > 0) {
      sopt.max_body_bytes = static_cast<uint32_t>(flags.max_frame);
    }
    sopt.max_inflight_per_conn = flags.inflight;
    sopt.max_pending = flags.admission;
    sopt.write_timeout_ms = static_cast<uint32_t>(flags.write_timeout_ms);
    net::Server server(*engine, sopt);
    server.Start();

    // Scripts watch for this line (or read --port-file) to learn the
    // ephemeral port; flush so it is visible through a pipe immediately.
    std::printf("listening on port %u (threads=%zu shards=%zu cache=%zu "
                "max-conns=%zu)\n",
                server.port(), engine->num_threads(), flags.shards,
                flags.cache, flags.max_conns);
    std::fflush(stdout);
    if (!flags.port_file.empty()) {
      FILE* f = std::fopen(flags.port_file.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     flags.port_file.c_str());
        return 1;
      }
      std::fprintf(f, "%u\n", server.port());
      std::fclose(f);
    }

    std::signal(SIGINT, HandleInt);
    std::signal(SIGTERM, HandleTerm);
    while (g_stop == 0) {
      struct timespec ts = {0, 50 * 1000 * 1000};  // 50 ms
      nanosleep(&ts, nullptr);
    }

    if (g_stop == 2 && flags.drain_ms > 0) {
      bool drained = server.Drain(static_cast<uint32_t>(flags.drain_ms));
      std::printf("# drain: %s\n",
                  drained ? "completed cleanly" : "deadline hit");
    }
    server.Stop();
    net::ServerStats stats = server.stats();
    std::printf("# served %llu requests over %llu connections "
                "(%llu request errors, %llu protocol errors, %llu "
                "rejected)\n",
                static_cast<unsigned long long>(stats.requests_served),
                static_cast<unsigned long long>(stats.connections_accepted),
                static_cast<unsigned long long>(stats.request_errors),
                static_cast<unsigned long long>(stats.protocol_errors),
                static_cast<unsigned long long>(stats.connections_rejected));
    std::printf("# backpressure: %llu overloaded, %llu deadline-expired, "
                "%llu slow-reader disconnects, %llu shutdown-rejected\n",
                static_cast<unsigned long long>(stats.overload_rejections),
                static_cast<unsigned long long>(stats.deadline_expirations),
                static_cast<unsigned long long>(
                    stats.slow_reader_disconnects),
                static_cast<unsigned long long>(stats.shutdown_rejections));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
