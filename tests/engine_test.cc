#include "engine/query_engine.h"

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "differential_testutil.h"

namespace pverify {
namespace {

// Overlap-heavy dataset so verification and refinement both do real work.
Dataset TestDataset(size_t count = 500) {
  return datagen::MakeUniformScatter(count, 250.0, 2.0, /*seed=*/3);
}

std::vector<double> TestQueryPoints(size_t count = 16) {
  return datagen::MakeQueryPoints(count, 0.0, 250.0, /*seed=*/21);
}

QueryOptions OptionsFor(Strategy strategy) {
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = strategy;
  opt.report_probabilities = true;
  return opt;
}

void ExpectIdenticalAnswer(const QueryAnswer& expected,
                           const QueryResult& got, const char* what) {
  EXPECT_EQ(expected.ids, got.ids) << what;
  ASSERT_EQ(expected.candidate_probabilities.size(),
            got.candidate_probabilities.size())
      << what;
  for (size_t i = 0; i < expected.candidate_probabilities.size(); ++i) {
    const AnswerEntry& e = expected.candidate_probabilities[i];
    const AnswerEntry& g = got.candidate_probabilities[i];
    EXPECT_EQ(e.id, g.id) << what << " entry " << i;
    // Bit-identical, not approximately equal: the batched path must run the
    // exact same arithmetic as the sequential one.
    EXPECT_EQ(e.bound.lower, g.bound.lower) << what << " entry " << i;
    EXPECT_EQ(e.bound.upper, g.bound.upper) << what << " entry " << i;
  }
}

// Four-thread batches — under both worker-pool implementations — must
// answer bit for bit like the single-threaded reference for every
// strategy; only scheduling may differ. Ported onto the differential
// harness (tests/differential_testutil.h), max_ulps 0 = bit identity.
TEST(QueryEngineTest, BatchAtFourThreadsMatchesSequentialAllStrategies) {
  Dataset data = TestDataset();
  QueryEngine reference(data, EngineOptions{1});

  EngineOptions queue_opt;
  queue_opt.num_threads = 4;
  queue_opt.pool = PoolKind::kGlobalQueue;
  QueryEngine queue_engine(data, queue_opt);
  EngineOptions steal_opt;
  steal_opt.num_threads = 4;
  steal_opt.pool = PoolKind::kWorkStealing;
  QueryEngine steal_engine(data, steal_opt);
  ASSERT_EQ(queue_engine.num_threads(), 4u);
  ASSERT_EQ(steal_engine.num_threads(), 4u);

  const std::vector<double> points = TestQueryPoints();
  for (Strategy strategy : {Strategy::kBasic, Strategy::kRefine,
                            Strategy::kVR, Strategy::kMonteCarlo}) {
    const QueryOptions opt = OptionsFor(strategy);
    std::vector<testutil::RequestFactory> stream;
    for (double q : points) {
      stream.push_back([q, opt] { return QueryRequest(PointQuery{q, opt}); });
    }
    testutil::RunDifferentialStream(
        reference,
        {{std::string("global-queue ") + ToString(strategy).data(),
          &queue_engine},
         {std::string("work-stealing ") + ToString(strategy).data(),
          &steal_engine}},
        stream);
  }
}

// The full mixed-kind contract across pool kinds: a randomized stream of
// point/min/max/knn requests answers identically on both pools, through
// ExecuteBatch and the coalescing Submit path.
TEST(QueryEngineTest, MixedStreamBitIdenticalAcrossPoolKinds) {
  Dataset data = TestDataset(300);
  QueryEngine reference(data, EngineOptions{1});
  const QueryOptions opt = OptionsFor(Strategy::kVR);
  const std::vector<testutil::RequestFactory> stream =
      testutil::MakeMixedKindStream(TestQueryPoints(12), opt);

  EngineOptions queue_opt;
  queue_opt.num_threads = 4;
  queue_opt.pool = PoolKind::kGlobalQueue;
  QueryEngine queue_engine(data, queue_opt);
  EngineOptions steal_opt;
  steal_opt.num_threads = 4;
  steal_opt.pool = PoolKind::kWorkStealing;
  QueryEngine steal_engine(data, steal_opt);

  testutil::DifferentialConfig config;
  config.exercise_submit = true;
  testutil::RunDifferentialStream(reference,
                                  {{"global-queue", &queue_engine},
                                   {"work-stealing", &steal_engine}},
                                  stream, config);
}

TEST(QueryEngineTest, MixedKindBatchMatchesDirectCalls) {
  Dataset data = TestDataset(200);
  CpnnExecutor sequential(data);
  EngineOptions eopt;
  eopt.num_threads = 4;
  QueryEngine engine(data, eopt);

  QueryOptions opt = OptionsFor(Strategy::kVR);
  const double q = 125.0;

  auto build_candidates = [&] {
    FilterResult filtered = sequential.Filter(q);
    return CandidateSet::Build1D(data, filtered.candidates, q);
  };

  std::vector<QueryRequest> batch;
  batch.push_back(PointQuery{q, opt});
  batch.push_back(MinQuery{opt});
  batch.push_back(MaxQuery{opt});
  batch.push_back(KnnQuery{q, 3, opt});
  batch.push_back(CandidatesQuery(build_candidates(), opt));
  std::vector<QueryResult> results = engine.ExecuteBatch(std::move(batch));
  ASSERT_EQ(results.size(), 5u);

  ExpectIdenticalAnswer(sequential.Execute(q, opt), results[0], "point");
  ExpectIdenticalAnswer(sequential.ExecuteMin(opt), results[1], "min");
  ExpectIdenticalAnswer(sequential.ExecuteMax(opt), results[2], "max");

  CknnAnswer knn = sequential.ExecuteKnn(q, 3, opt.params, opt.integration);
  EXPECT_EQ(knn.ids, results[3].ids);
  ASSERT_TRUE(results[3].knn.has_value());
  ASSERT_EQ(knn.bounds.size(), results[3].knn->bounds.size());
  for (size_t i = 0; i < knn.bounds.size(); ++i) {
    EXPECT_EQ(knn.bounds[i].lower, results[3].knn->bounds[i].lower);
    EXPECT_EQ(knn.bounds[i].upper, results[3].knn->bounds[i].upper);
  }

  ExpectIdenticalAnswer(ExecuteOnCandidates(build_candidates(), opt),
                        results[4], "candidates");
}

TEST(QueryEngineTest, ScratchReusedAcrossHundredQueriesYieldsSameAnswers) {
  Dataset data = TestDataset(300);
  CpnnExecutor exec(data);
  QueryOptions opt = OptionsFor(Strategy::kVR);
  const std::vector<double> points =
      datagen::MakeQueryPoints(100, 0.0, 250.0, /*seed=*/33);

  QueryScratch scratch;
  for (double q : points) {
    QueryAnswer fresh = exec.Execute(q, opt);            // fresh state
    QueryAnswer reused = exec.Execute(q, opt, &scratch);  // borrowed buffers
    EXPECT_EQ(fresh.ids, reused.ids) << "q=" << q;
    ASSERT_EQ(fresh.candidate_probabilities.size(),
              reused.candidate_probabilities.size());
    for (size_t i = 0; i < fresh.candidate_probabilities.size(); ++i) {
      EXPECT_EQ(fresh.candidate_probabilities[i].bound.lower,
                reused.candidate_probabilities[i].bound.lower);
      EXPECT_EQ(fresh.candidate_probabilities[i].bound.upper,
                reused.candidate_probabilities[i].bound.upper);
    }
  }
  EXPECT_EQ(scratch.queries_served, points.size());

  // The arena stops growing once it has seen the workload: replaying the
  // same queries allocates nothing new.
  const size_t high_water = scratch.ApproxBytes();
  EXPECT_GT(high_water, 0u);
  for (double q : points) exec.Execute(q, opt, &scratch);
  EXPECT_EQ(scratch.ApproxBytes(), high_water);
  EXPECT_EQ(scratch.queries_served, 2 * points.size());

  // Candidate-set construction is scratch-backed too: the items buffer and
  // the per-candidate distribution storage were recycled between queries.
  EXPECT_GT(scratch.candidates.ApproxBytes(), 0u);
  EXPECT_FALSE(scratch.candidates.spare.empty());
  EXPECT_GT(scratch.candidates.items.capacity(), 0u);
}

TEST(QueryEngineTest, BatchStatsAggregateThroughputAndStages) {
  Dataset data = TestDataset(300);
  EngineOptions eopt;
  eopt.num_threads = 2;
  QueryEngine engine(data, eopt);

  QueryOptions opt = OptionsFor(Strategy::kVR);
  std::vector<QueryRequest> batch;
  for (double q : TestQueryPoints(12)) {
    batch.push_back(PointQuery{q, opt});
  }
  EngineStats stats;
  std::vector<QueryResult> results =
      engine.ExecuteBatch(std::move(batch), &stats);
  ASSERT_EQ(results.size(), 12u);
  EXPECT_EQ(stats.queries, 12u);
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_GT(stats.wall_ms, 0.0);
  EXPECT_GT(stats.QueriesPerSec(), 0.0);
  EXPECT_GT(stats.totals.candidates, 0u);
  // The VR chain ran, so stage totals carry at least the RS verifier.
  ASSERT_FALSE(stats.verifier_stages.empty());
  EXPECT_EQ(stats.verifier_stages[0].name, "RS");
  EXPECT_GT(stats.verifier_stages[0].runs, 0u);
  // Phase fractions refer to summed per-query time and stay in [0, 1].
  for (double f : {stats.PhaseFraction(&QueryStats::filter_ms),
                   stats.PhaseFraction(&QueryStats::verify_ms),
                   stats.PhaseFraction(&QueryStats::refine_ms)}) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  EXPECT_GE(engine.ScratchQueriesServed(), 12u);
  EXPECT_GT(engine.ScratchBytes(), 0u);
}

TEST(QueryEngineTest, EmptyBatchAndSingleExecute) {
  Dataset data = TestDataset(50);
  QueryEngine engine(data, EngineOptions{1});
  EngineStats stats;
  EXPECT_TRUE(engine.ExecuteBatch({}, &stats).empty());
  EXPECT_EQ(stats.queries, 0u);

  QueryResult r =
      engine.Execute(PointQuery{10.0, OptionsFor(Strategy::kVR)});
  QueryAnswer expected =
      CpnnExecutor(data).Execute(10.0, OptionsFor(Strategy::kVR));
  EXPECT_EQ(expected.ids, r.ids);
}

TEST(QueryEngineTest, InvalidParamsSurfaceFromBatch) {
  Dataset data = TestDataset(50);
  QueryEngine engine(data, EngineOptions{2});
  QueryOptions bad;
  bad.params = {0.0, 0.0};  // threshold must be positive
  std::vector<QueryRequest> batch;
  batch.push_back(PointQuery{10.0, bad});
  EXPECT_THROW(engine.ExecuteBatch(std::move(batch)), std::logic_error);
}

TEST(QueryEngineTest, SubmitResolvesToTheSequentialAnswer) {
  Dataset data = TestDataset(200);
  CpnnExecutor sequential(data);
  QueryEngine engine(data, EngineOptions{2});
  QueryOptions opt = OptionsFor(Strategy::kVR);

  std::vector<double> points = TestQueryPoints(8);
  std::vector<std::future<QueryResult>> futures;
  for (double q : points) {
    futures.push_back(engine.Submit(PointQuery{q, opt}));
  }
  for (size_t i = 0; i < points.size(); ++i) {
    ExpectIdenticalAnswer(sequential.Execute(points[i], opt),
                          futures[i].get(), "submit");
  }
  SubmitQueueStats stats = engine.SubmitStats();
  EXPECT_EQ(stats.requests, points.size());
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.batches, stats.requests);
  EXPECT_GE(stats.max_coalesced, 1u);

  // An invalid request resolves its future with the engine's exception
  // instead of tearing down the queue.
  QueryOptions bad;
  bad.params = {0.0, 0.0};
  std::future<QueryResult> failing = engine.Submit(PointQuery{1.0, bad});
  EXPECT_THROW(failing.get(), std::logic_error);
  // The queue still serves afterwards.
  std::future<QueryResult> after =
      engine.Submit(PointQuery{points[0], opt});
  ExpectIdenticalAnswer(sequential.Execute(points[0], opt), after.get(),
                        "submit after failure");
}

// The async stress test: many threads Submit concurrently while
// ExecuteBatch runs on the same engine. Every future must resolve to the
// sequential-reference answer and nothing may deadlock. (Registered under
// the `engine` CTest label; CI re-runs it under ThreadSanitizer.)
TEST(QueryEngineTest, ConcurrentSubmitAndExecuteBatchStress) {
  Dataset data = TestDataset(200);
  CpnnExecutor sequential(data);
  QueryEngine engine(data, EngineOptions{4});
  QueryOptions opt = OptionsFor(Strategy::kVR);

  const std::vector<double> points = TestQueryPoints(8);
  std::vector<QueryAnswer> expected;
  for (double q : points) expected.push_back(sequential.Execute(q, opt));

  constexpr size_t kThreads = 6;
  constexpr size_t kPerThread = 20;
  std::vector<std::vector<std::future<QueryResult>>> futures(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (size_t i = 0; i < kPerThread; ++i) {
        futures[t].push_back(engine.Submit(
            PointQuery{points[(t + i) % points.size()], opt}));
      }
    });
  }
  go.store(true);
  // Batches race the submissions on the same pool and scratches.
  for (int round = 0; round < 3; ++round) {
    std::vector<QueryRequest> batch;
    for (double q : points) batch.push_back(PointQuery{q, opt});
    std::vector<QueryResult> results = engine.ExecuteBatch(std::move(batch));
    ASSERT_EQ(results.size(), points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      ExpectIdenticalAnswer(expected[i], results[i], "batch under stress");
    }
  }
  for (std::thread& th : submitters) th.join();

  for (size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(futures[t].size(), kPerThread);
    for (size_t i = 0; i < kPerThread; ++i) {
      ExpectIdenticalAnswer(expected[(t + i) % points.size()],
                            futures[t][i].get(), "submit under stress");
    }
  }
  SubmitQueueStats stats = engine.SubmitStats();
  EXPECT_EQ(stats.requests, kThreads * kPerThread);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.batches, stats.requests);
}

// Pins the CandidatesQuery consumption contract: executing the request
// moves the payload out, and re-submitting the moved-from request is
// rejected with an exception in every build type — never answered over a
// silently empty set. (Copy attempts don't compile at all; the
// compile-time side is pinned in tests/request_test.cc.)
TEST(QueryEngineTest, ConsumedCandidatesRequestCannotBeResubmitted) {
  Dataset data = TestDataset(100);
  CpnnExecutor sequential(data);
  QueryEngine engine(data, EngineOptions{1});
  QueryOptions opt = OptionsFor(Strategy::kVR);
  const double q = 50.0;

  FilterResult filtered = sequential.Filter(q);
  auto build_request = [&] {
    return QueryRequest(CandidatesQuery(
        CandidateSet::Build1D(data, filtered.candidates, q), opt));
  };

  QueryRequest request = build_request();
  EXPECT_TRUE(std::get<CandidatesQuery>(request.query).has_payload());

  QueryResult first = engine.Execute(std::move(request));
  EXPECT_GT(first.stats.candidates, 0u);
  // Moving into Execute consumed the caller's payload.
  EXPECT_FALSE(std::get<CandidatesQuery>(request.query).has_payload());

  // Re-submission of the consumed request is rejected, serially and in a
  // batch, in every build type.
  EXPECT_THROW(engine.Execute(std::move(request)), std::logic_error);
  std::vector<QueryRequest> batch;
  batch.push_back(build_request());
  batch.push_back(std::move(request));
  EXPECT_THROW(engine.ExecuteBatch(std::move(batch)), std::logic_error);

  // Two independently built payloads evaluate identically — the one way
  // to "re-run" a candidate-set request is to build the set again.
  QueryResult a = engine.Execute(build_request());
  QueryResult b = engine.Execute(build_request());
  EXPECT_EQ(first.ids, a.ids);
  EXPECT_EQ(a.ids, b.ids);
}

}  // namespace
}  // namespace pverify
