#include "core/monte_carlo.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/basic.h"
#include "uncertain/pdf.h"

namespace pverify {
namespace {

CandidateSet TwoOverlapping() {
  Dataset data;
  data.emplace_back(0, MakeUniformPdf(0.0, 2.0));
  data.emplace_back(1, MakeUniformPdf(1.0, 3.0));
  return CandidateSet::Build1D(data, {0, 1}, 0.0);
}

TEST(MonteCarloTest, ConvergesToExact) {
  CandidateSet cands = TwoOverlapping();
  std::vector<double> exact = ComputeExactProbabilities(cands, {});
  MonteCarloOptions opts;
  opts.samples = 200000;
  std::vector<double> mc = MonteCarloProbabilities(cands, opts);
  ASSERT_EQ(mc.size(), exact.size());
  for (size_t i = 0; i < mc.size(); ++i) {
    double sigma = std::sqrt(exact[i] * (1 - exact[i]) / opts.samples);
    EXPECT_NEAR(mc[i], exact[i], 6.0 * sigma + 1e-4) << "i=" << i;
  }
}

TEST(MonteCarloTest, EstimatesSumToOne) {
  Dataset data;
  for (int i = 0; i < 6; ++i) {
    data.emplace_back(i, MakeUniformPdf(i * 0.5, i * 0.5 + 3.0));
  }
  CandidateSet cands =
      CandidateSet::Build1D(data, {0, 1, 2, 3, 4, 5}, 0.0);
  std::vector<double> mc = MonteCarloProbabilities(cands, {5000, 1});
  double sum = 0.0;
  for (double v : mc) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);  // exactly one winner per draw
}

TEST(MonteCarloTest, DeterministicPerSeed) {
  CandidateSet cands = TwoOverlapping();
  std::vector<double> a = MonteCarloProbabilities(cands, {1000, 7});
  std::vector<double> b = MonteCarloProbabilities(cands, {1000, 7});
  std::vector<double> c = MonteCarloProbabilities(cands, {1000, 8});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(MonteCarloTest, GaussianPdfsSupported) {
  Dataset data;
  data.emplace_back(0, MakeGaussianPdf(0.0, 4.0, 100));
  data.emplace_back(1, MakeGaussianPdf(1.0, 5.0, 100));
  CandidateSet cands = CandidateSet::Build1D(data, {0, 1}, 2.0);
  std::vector<double> exact = ComputeExactProbabilities(cands, {});
  std::vector<double> mc = MonteCarloProbabilities(cands, {100000, 3});
  for (size_t i = 0; i < mc.size(); ++i) {
    EXPECT_NEAR(mc[i], exact[i], 0.02) << "i=" << i;
  }
}

TEST(MonteCarloTest, ValidatesSampleCount) {
  CandidateSet cands = TwoOverlapping();
  EXPECT_THROW(MonteCarloProbabilities(cands, {0, 1}), std::logic_error);
}

TEST(MonteCarloTest, SingleCandidateAlwaysWins) {
  Dataset data;
  data.emplace_back(0, MakeUniformPdf(1.0, 2.0));
  CandidateSet cands = CandidateSet::Build1D(data, {0}, 0.0);
  std::vector<double> mc = MonteCarloProbabilities(cands, {100, 5});
  EXPECT_DOUBLE_EQ(mc[0], 1.0);
}

}  // namespace
}  // namespace pverify
