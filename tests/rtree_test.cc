#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "spatial/mbr.h"

namespace pverify {
namespace {

TEST(MbrTest, Metrics1D) {
  Mbr<1> m = MakeInterval(2.0, 5.0);
  EXPECT_DOUBLE_EQ(m.MinDist({0.0}), 2.0);
  EXPECT_DOUBLE_EQ(m.MinDist({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(m.MinDist({9.0}), 4.0);
  EXPECT_DOUBLE_EQ(m.MaxDist({0.0}), 5.0);
  EXPECT_DOUBLE_EQ(m.MaxDist({3.0}), 2.0);
  EXPECT_DOUBLE_EQ(m.MaxDist({4.0}), 2.0);
  // In 1-D MINMAXDIST is the distance to the nearer face... from outside it
  // is |q − nearer endpoint|.
  EXPECT_DOUBLE_EQ(m.MinMaxDist({0.0}), 2.0);
  EXPECT_DOUBLE_EQ(m.MinMaxDist({9.0}), 4.0);
}

TEST(MbrTest, Metrics2D) {
  Mbr<2> m = MakeBox(0.0, 0.0, 4.0, 2.0);
  EXPECT_DOUBLE_EQ(m.MinDist({{-3.0, 0.0}}), 3.0);
  EXPECT_DOUBLE_EQ(m.MinDist({{2.0, 1.0}}), 0.0);
  EXPECT_DOUBLE_EQ(m.MaxDist({{0.0, 0.0}}), std::hypot(4.0, 2.0));
  // MINMAXDIST <= MAXDIST always; >= MINDIST always.
  for (double x : {-2.0, 0.0, 2.0, 5.0}) {
    for (double y : {-1.0, 1.0, 3.0}) {
      std::array<double, 2> q = {x, y};
      EXPECT_LE(m.MinMaxDist(q), m.MaxDist(q) + 1e-12);
      EXPECT_GE(m.MinMaxDist(q), m.MinDist(q) - 1e-12);
    }
  }
}

TEST(MbrTest, ExpandAndVolume) {
  Mbr<2> m = Mbr<2>::Empty();
  EXPECT_TRUE(m.IsEmpty());
  m.Expand(MakeBox(0, 0, 1, 1));
  m.Expand(MakeBox(2, -1, 3, 0.5));
  EXPECT_DOUBLE_EQ(m.lo[0], 0.0);
  EXPECT_DOUBLE_EQ(m.hi[0], 3.0);
  EXPECT_DOUBLE_EQ(m.lo[1], -1.0);
  EXPECT_DOUBLE_EQ(m.Volume(), 3.0 * 2.0);
  EXPECT_DOUBLE_EQ(m.Enlargement(MakeBox(0, 0, 1, 1)), 0.0);
  EXPECT_GT(m.Enlargement(MakeBox(10, 10, 11, 11)), 0.0);
}

std::vector<RTree<1, int>::Entry> RandomIntervals(int n, Rng& rng) {
  std::vector<RTree<1, int>::Entry> entries;
  for (int i = 0; i < n; ++i) {
    double lo = rng.Uniform(0.0, 1000.0);
    double hi = lo + rng.Uniform(0.01, 20.0);
    entries.push_back({MakeInterval(lo, hi), i});
  }
  return entries;
}

TEST(RTreeTest, EmptyTree) {
  RTree<1, int> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_TRUE(std::isinf(tree.MinFarPoint({5.0})));
  EXPECT_TRUE(tree.WithinDistance({5.0}, 10.0).empty());
}

TEST(RTreeTest, InsertMaintainsInvariants) {
  Rng rng(1);
  RTree<1, int> tree;
  auto entries = RandomIntervals(500, rng);
  for (const auto& e : entries) {
    tree.Insert(e.mbr, e.value);
  }
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_GE(tree.Height(), 2);
}

TEST(RTreeTest, BulkLoadMaintainsInvariants) {
  Rng rng(2);
  auto entries = RandomIntervals(2000, rng);
  auto tree = RTree<1, int>::BulkLoadSTR(entries);
  EXPECT_EQ(tree.size(), 2000u);
  EXPECT_TRUE(tree.CheckInvariants());
  // STR packs nodes full: expect near-minimal node count.
  EXPECT_LE(tree.NodeCount(), 2000u / 16 + 16);
}

class RTreeQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeQueryTest, RangeQueryMatchesBruteForce1D) {
  Rng rng(GetParam());
  auto entries = RandomIntervals(300, rng);
  bool bulk = GetParam() % 2 == 0;
  RTree<1, int> tree;
  if (bulk) {
    tree = RTree<1, int>::BulkLoadSTR(entries);
  } else {
    for (const auto& e : entries) tree.Insert(e.mbr, e.value);
  }
  for (int t = 0; t < 20; ++t) {
    double lo = rng.Uniform(-50.0, 1050.0);
    double hi = lo + rng.Uniform(0.0, 100.0);
    Mbr<1> region = MakeInterval(lo, hi);
    std::vector<int> got = tree.CollectIntersecting(region);
    std::set<int> expect;
    for (const auto& e : entries) {
      if (e.mbr.Intersects(region)) expect.insert(e.value);
    }
    EXPECT_EQ(std::set<int>(got.begin(), got.end()), expect);
  }
}

TEST_P(RTreeQueryTest, MinFarPointMatchesBruteForce) {
  Rng rng(GetParam() + 100);
  auto entries = RandomIntervals(400, rng);
  auto tree = RTree<1, int>::BulkLoadSTR(entries);
  for (int t = 0; t < 25; ++t) {
    std::array<double, 1> q = {rng.Uniform(-100.0, 1100.0)};
    double expect = std::numeric_limits<double>::infinity();
    for (const auto& e : entries) {
      expect = std::min(expect, e.mbr.MaxDist(q));
    }
    EXPECT_NEAR(tree.MinFarPoint(q), expect, 1e-9);
  }
}

TEST_P(RTreeQueryTest, WithinDistanceMatchesBruteForce) {
  Rng rng(GetParam() + 200);
  auto entries = RandomIntervals(400, rng);
  auto tree = RTree<1, int>::BulkLoadSTR(entries);
  for (int t = 0; t < 15; ++t) {
    std::array<double, 1> q = {rng.Uniform(0.0, 1000.0)};
    double radius = rng.Uniform(0.0, 60.0);
    std::vector<int> got = tree.WithinDistance(q, radius);
    std::set<int> expect;
    for (const auto& e : entries) {
      if (e.mbr.MinDist(q) <= radius) expect.insert(e.value);
    }
    EXPECT_EQ(std::set<int>(got.begin(), got.end()), expect);
  }
}

TEST_P(RTreeQueryTest, NearestByMinDistMatchesBruteForce) {
  Rng rng(GetParam() + 300);
  auto entries = RandomIntervals(200, rng);
  auto tree = RTree<1, int>::BulkLoadSTR(entries);
  std::array<double, 1> q = {rng.Uniform(0.0, 1000.0)};
  const size_t k = 10;
  std::vector<int> got = tree.NearestByMinDist(q, k);
  ASSERT_EQ(got.size(), k);
  // Distances must be non-decreasing and match the brute-force k-th value.
  std::vector<double> dists;
  for (const auto& e : entries) dists.push_back(e.mbr.MinDist(q));
  std::sort(dists.begin(), dists.end());
  double prev = -1.0;
  for (size_t i = 0; i < k; ++i) {
    double d = entries[static_cast<size_t>(got[i])].mbr.MinDist(q);
    EXPECT_GE(d, prev - 1e-12);
    EXPECT_NEAR(d, dists[i], 1e-9);
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeQueryTest, ::testing::Range(0, 8));

TEST(RTree2DTest, QueriesMatchBruteForce) {
  Rng rng(77);
  std::vector<RTree<2, int>::Entry> entries;
  for (int i = 0; i < 500; ++i) {
    double x = rng.Uniform(0.0, 500.0);
    double y = rng.Uniform(0.0, 500.0);
    entries.push_back(
        {MakeBox(x, y, x + rng.Uniform(0.1, 20.0), y + rng.Uniform(0.1, 20.0)),
         i});
  }
  auto tree = RTree<2, int>::BulkLoadSTR(entries);
  EXPECT_TRUE(tree.CheckInvariants());
  for (int t = 0; t < 20; ++t) {
    std::array<double, 2> q = {rng.Uniform(0.0, 500.0),
                               rng.Uniform(0.0, 500.0)};
    double expect_fmin = std::numeric_limits<double>::infinity();
    for (const auto& e : entries) {
      expect_fmin = std::min(expect_fmin, e.mbr.MaxDist(q));
    }
    EXPECT_NEAR(tree.MinFarPoint(q), expect_fmin, 1e-9);

    double radius = rng.Uniform(5.0, 80.0);
    std::set<int> expect;
    for (const auto& e : entries) {
      if (e.mbr.MinDist(q) <= radius) expect.insert(e.value);
    }
    auto got = tree.WithinDistance(q, radius);
    EXPECT_EQ(std::set<int>(got.begin(), got.end()), expect);
  }
}

TEST(RTreeTest, DuplicateMbrsSupported) {
  RTree<1, int> tree;
  for (int i = 0; i < 100; ++i) tree.Insert(MakeInterval(1.0, 2.0), i);
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.CollectIntersecting(MakeInterval(1.5, 1.6)).size(), 100u);
}

}  // namespace
}  // namespace pverify
