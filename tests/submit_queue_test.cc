// Unit tests for the async submission queue: coalescing (deterministic via
// a gated runner), FIFO dispatch, drain-on-destruction and runner-failure
// promise hygiene.
#include "engine/submit_queue.h"

#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pverify {
namespace {

QueryResult ResultWithId(ObjectId id) {
  QueryResult r;
  r.ids.push_back(id);
  return r;
}

// The tests' runners echo each request's query point back as an id.
double PointOf(const QueryRequest& request) {
  return std::get<PointQuery>(request.query).q;
}

// A runner the test can block: while the gate is closed the dispatcher sits
// inside the runner, so everything submitted meanwhile must coalesce into
// the next batch.
class GatedRunner {
 public:
  void operator()(std::vector<PendingQuery>& batch) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++calls_;
      batch_sizes_.push_back(batch.size());
      entered_.notify_all();
      gate_open_.wait(lock, [this] { return open_; });
    }
    for (PendingQuery& item : batch) {
      // Echo the request's query point back as an id to check FIFO order.
      item.promise.set_value(ResultWithId(
          static_cast<ObjectId>(PointOf(item.request))));
    }
  }

  void WaitUntilEntered(size_t calls) {
    std::unique_lock<std::mutex> lock(mu_);
    entered_.wait(lock, [&] { return calls_ >= calls; });
  }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    gate_open_.notify_all();
  }

  std::vector<size_t> batch_sizes() {
    std::lock_guard<std::mutex> lock(mu_);
    return batch_sizes_;
  }

 private:
  std::mutex mu_;
  std::condition_variable entered_;
  std::condition_variable gate_open_;
  bool open_ = false;
  size_t calls_ = 0;
  std::vector<size_t> batch_sizes_;
};

TEST(SubmitQueueTest, CoalescesEverythingSubmittedDuringAnInFlightBatch) {
  GatedRunner runner;
  SubmitQueue queue([&runner](std::vector<PendingQuery>& batch) {
    runner(batch);
  });

  std::future<QueryResult> first = queue.Submit(PointQuery{0.0});
  runner.WaitUntilEntered(1);  // dispatcher is now stuck inside batch #1

  std::vector<std::future<QueryResult>> rest;
  for (int i = 1; i <= 10; ++i) {
    rest.push_back(queue.Submit(PointQuery{static_cast<double>(i)}));
  }
  runner.Open();

  EXPECT_EQ(first.get().ids, std::vector<ObjectId>{0});
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(rest[i - 1].get().ids, std::vector<ObjectId>{i});
  }

  std::vector<size_t> sizes = runner.batch_sizes();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 10u);  // the burst coalesced into one batch

  SubmitQueueStats stats = queue.GetStats();
  EXPECT_EQ(stats.requests, 11u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.max_coalesced, 10u);
}

TEST(SubmitQueueTest, DestructorDrainsQueuedRequests) {
  std::vector<std::future<QueryResult>> futures;
  {
    SubmitQueue queue([](std::vector<PendingQuery>& batch) {
      for (PendingQuery& item : batch) {
        item.promise.set_value(
            ResultWithId(static_cast<ObjectId>(PointOf(item.request))));
      }
    });
    for (int i = 0; i < 64; ++i) {
      futures.push_back(queue.Submit(PointQuery{static_cast<double>(i)}));
    }
  }  // destructor must resolve every future before returning
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[i].get().ids, std::vector<ObjectId>{i});
  }
}

TEST(SubmitQueueTest, ThrowingRunnerFailsPromisesInsteadOfBreakingThem) {
  SubmitQueue queue([](std::vector<PendingQuery>& batch) {
    // Fulfill the first entry, then die: the queue must fail the rest.
    batch.front().promise.set_value(ResultWithId(7));
    throw std::runtime_error("runner died");
  });
  std::future<QueryResult> ok = queue.Submit(PointQuery{0.0});
  EXPECT_EQ(ok.get().ids, std::vector<ObjectId>{7});

  // A batch with several entries: entry 0 resolves, the rest get the error.
  SubmitQueue multi([](std::vector<PendingQuery>& batch) {
    batch.front().promise.set_value(ResultWithId(1));
    if (batch.size() > 1) throw std::runtime_error("partial failure");
  });
  // Submit two back to back; whether they land in one batch or two, every
  // future must resolve (value or exception), never broken_promise.
  std::future<QueryResult> a = multi.Submit(PointQuery{0.0});
  std::future<QueryResult> b = multi.Submit(PointQuery{1.0});
  for (std::future<QueryResult>* f : {&a, &b}) {
    try {
      QueryResult r = f->get();
      EXPECT_EQ(r.ids, std::vector<ObjectId>{1});
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "partial failure");
    }
  }
}

TEST(SubmitQueueTest, ManyThreadsSubmitConcurrently) {
  SubmitQueue queue([](std::vector<PendingQuery>& batch) {
    for (PendingQuery& item : batch) {
      item.promise.set_value(
          ResultWithId(static_cast<ObjectId>(PointOf(item.request))));
    }
  });
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::vector<std::future<QueryResult>>> futures(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        futures[t].push_back(queue.Submit(
            PointQuery{static_cast<double>(t * kPerThread + i)}));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_EQ(futures[t][i].get().ids,
                std::vector<ObjectId>{t * kPerThread + i});
    }
  }
  SubmitQueueStats stats = queue.GetStats();
  EXPECT_EQ(stats.requests, static_cast<size_t>(kThreads * kPerThread));
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GE(stats.max_coalesced, 1u);
}

}  // namespace
}  // namespace pverify
