// Unit tests for the Socket layer's failure discipline, on AF_UNIX
// socketpairs (no network, no server): writing into a closed peer throws
// WireError instead of killing the process with SIGPIPE, partial writes
// and EINTR are retried until the full buffer moved, and the configured
// send/receive timeouts surface as WireTimeout.
#include <pthread.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/socket.h"
#include "net/wire.h"

namespace pverify {
namespace {

void MakePair(net::Socket* a, net::Socket* b) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  *a = net::Socket(fds[0]);
  *b = net::Socket(fds[1]);
}

std::vector<uint8_t> Pattern(size_t n) {
  std::vector<uint8_t> buf(n);
  for (size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  return buf;
}

TEST(NetSocketTest, WriteToClosedPeerThrowsInsteadOfSigpipe) {
  net::Socket a, b;
  MakePair(&a, &b);
  b.Close();

  // Without MSG_NOSIGNAL the second write would raise SIGPIPE and kill the
  // process — reaching the EXPECT at all is the point of this test.
  std::vector<uint8_t> buf(64 * 1024, 0xAB);
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) a.WriteAll(buf.data(), buf.size());
      },
      net::WireError);
}

TEST(NetSocketTest, ReadFromClosedPeerIsCleanEofThenError) {
  net::Socket a, b;
  MakePair(&a, &b);
  const std::vector<uint8_t> sent = Pattern(128);
  a.WriteAll(sent.data(), sent.size());
  a.Close();

  // Buffered bytes still arrive intact, then EOF-before-first-byte reports
  // false (a clean close between frames), not an exception.
  std::vector<uint8_t> got(sent.size());
  ASSERT_TRUE(b.ReadExact(got.data(), got.size()));
  EXPECT_EQ(got, sent);
  uint8_t byte = 0;
  EXPECT_FALSE(b.ReadExact(&byte, 1));
}

TEST(NetSocketTest, EofMidBufferIsAnError) {
  net::Socket a, b;
  MakePair(&a, &b);
  const std::vector<uint8_t> sent = Pattern(100);
  a.WriteAll(sent.data(), sent.size());
  a.Close();

  // Asking for more than the peer sent before closing is a truncated
  // frame — an error, not a quiet partial read.
  std::vector<uint8_t> got(200);
  EXPECT_THROW(b.ReadExact(got.data(), got.size()), net::WireError);
}

// A do-nothing handler installed WITHOUT SA_RESTART, so a signal landing
// mid-send/recv makes the syscall fail with EINTR instead of resuming
// transparently — the retry loops in WriteAll/ReadExact must absorb it.
void NoopHandler(int) {}

TEST(NetSocketTest, PartialWritesAndEintrStillDeliverEveryByte) {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = NoopHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old;
  ASSERT_EQ(0, ::sigaction(SIGUSR1, &sa, &old));

  net::Socket a, b;
  MakePair(&a, &b);
  a.SetSendBufferBytes(4096);  // force many partial writes

  const std::vector<uint8_t> sent = Pattern(1 << 20);
  std::vector<uint8_t> got(sent.size());
  std::thread reader([&] {
    // Drain in small chunks so the writer keeps hitting a full buffer.
    size_t off = 0;
    while (off < got.size()) {
      size_t chunk = std::min<size_t>(4096, got.size() - off);
      ASSERT_TRUE(b.ReadExact(got.data() + off, chunk));
      off += chunk;
    }
  });

  const pthread_t writer_tid = pthread_self();
  std::atomic<bool> done{false};
  std::thread interrupter([&] {
    while (!done.load()) {
      pthread_kill(writer_tid, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  a.WriteAll(sent.data(), sent.size());  // one call, many EINTRs
  done.store(true);
  interrupter.join();
  reader.join();
  EXPECT_EQ(got, sent);
  ASSERT_EQ(0, ::sigaction(SIGUSR1, &old, nullptr));
}

TEST(NetSocketTest, RecvTimeoutSurfacesAsWireTimeout) {
  net::Socket a, b;
  MakePair(&a, &b);
  b.SetRecvTimeoutMs(100);

  uint8_t byte = 0;
  EXPECT_THROW(b.ReadExact(&byte, 1), net::WireTimeout);
}

TEST(NetSocketTest, SendTimeoutOnStalledPeerSurfacesAsWireTimeout) {
  net::Socket a, b;
  MakePair(&a, &b);
  a.SetSendBufferBytes(4096);
  a.SetSendTimeoutMs(100);

  // Nobody reads from b: the buffers fill and the blocked send must give
  // up after ~100 ms with the typed timeout, not hang.
  std::vector<uint8_t> buf(64 * 1024, 0xCD);
  EXPECT_THROW(
      {
        for (int i = 0; i < 1024; ++i) a.WriteAll(buf.data(), buf.size());
      },
      net::WireTimeout);
}

}  // namespace
}  // namespace pverify
