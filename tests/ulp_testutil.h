// ULP-distance equivalence helpers, shared by tests that compare the
// scalar reference kernels against the restructured/vectorized
// (PVERIFY_SIMD) kernels. The SIMD contract: per-slot q_ij values are
// bit-identical (the masked kernels perform the scalar path's exact
// operations in the same order); only `omp simd` reduction reassociation
// in the Eq. 4 bound refresh may move a result by a few ULP. Tests that
// pin such values therefore assert ULP distance, not bit equality — and
// keep the budget tight (64 ULP ≈ 1e-14 relative) so a real numerics
// regression still fails.
#ifndef PVERIFY_TESTS_ULP_TESTUTIL_H_
#define PVERIFY_TESTS_ULP_TESTUTIL_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace pverify {
namespace testutil {

/// Maps a double onto the integers so adjacent representable values are
/// adjacent keys (the standard sign-magnitude → offset-binary trick).
inline uint64_t UlpOrderedKey(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  const uint64_t sign = uint64_t{1} << 63;
  return (bits & sign) != 0 ? ~bits : bits | sign;
}

/// Units-in-the-last-place between two doubles. 0 for equal values
/// (including +0 vs -0); the max uint64_t when either input is NaN, so a
/// NaN never slips through a tolerance check.
inline uint64_t UlpDistance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<uint64_t>::max();
  }
  if (a == b) return 0;
  const uint64_t ka = UlpOrderedKey(a);
  const uint64_t kb = UlpOrderedKey(b);
  return ka > kb ? ka - kb : kb - ka;
}

}  // namespace testutil
}  // namespace pverify

/// EXPECT that two doubles are within `max_ulps` units in the last place.
#define EXPECT_ULP_NEAR(val1, val2, max_ulps)                       \
  EXPECT_LE(::pverify::testutil::UlpDistance((val1), (val2)),       \
            static_cast<uint64_t>(max_ulps))                        \
      << #val1 " = " << (val1) << " vs " << #val2 " = " << (val2)

#endif  // PVERIFY_TESTS_ULP_TESTUTIL_H_
