#include "core/query2d.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/synthetic.h"

namespace pverify {
namespace {

Dataset2D SmallFleet() {
  Dataset2D data;
  data.emplace_back(0, Circle2{0.0, 0.0, 5.0});
  data.emplace_back(1, Circle2{8.0, 0.0, 5.0});
  data.emplace_back(2, Rect2{-2.0, 6.0, 4.0, 12.0});
  data.emplace_back(3, Circle2{100.0, 100.0, 2.0});
  return data;
}

TEST(Executor2DTest, PnnProbabilitiesSumToOne) {
  CpnnExecutor2D exec(SmallFleet(), /*radial_pieces=*/128);
  for (Point2 q : {Point2{0.0, 0.0}, Point2{4.0, 2.0}, Point2{50.0, 50.0}}) {
    auto probs = exec.ComputePnn(q);
    ASSERT_FALSE(probs.empty());
    double sum = 0.0;
    for (const auto& [id, p] : probs) sum += p;
    EXPECT_NEAR(sum, 1.0, 2e-2);
  }
}

TEST(Executor2DTest, ObviousNearestWins) {
  CpnnExecutor2D exec(SmallFleet());
  // Query at the center of object 0, far from everything else.
  auto probs = exec.ComputePnn({0.0, 0.0});
  double p0 = 0.0;
  for (const auto& [id, p] : probs) {
    if (id == 0) p0 = p;
  }
  EXPECT_GT(p0, 0.8);
}

TEST(Executor2DTest, FarObjectFilteredOut) {
  CpnnExecutor2D exec(SmallFleet());
  FilterResult fr = exec.Filter({0.0, 0.0});
  std::set<uint32_t> kept(fr.candidates.begin(), fr.candidates.end());
  EXPECT_FALSE(kept.count(3));  // the distant circle cannot qualify
}

TEST(Executor2DTest, CpnnAnswerMatchesExactProbabilities) {
  Dataset2D data = datagen::MakeSynthetic2D({.count = 250, .seed = 21});
  CpnnExecutor2D exec(std::move(data));
  Rng rng(5);
  for (int t = 0; t < 5; ++t) {
    Point2 q{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    QueryOptions opt;
    opt.params = {0.25, 0.02};
    opt.strategy = Strategy::kVR;
    QueryAnswer ans = exec.Execute(q, opt);
    auto probs = exec.ComputePnn(q);
    std::set<ObjectId> answer(ans.ids.begin(), ans.ids.end());
    for (const auto& [id, p] : probs) {
      if (p >= 0.25 + 1e-4) EXPECT_TRUE(answer.count(id)) << "id=" << id;
      if (p < 0.25 - 0.02 - 1e-4) {
        EXPECT_FALSE(answer.count(id)) << "id=" << id;
      }
    }
  }
}

TEST(Executor2DTest, StrategiesAgree) {
  Dataset2D data = datagen::MakeSynthetic2D({.count = 150, .seed = 33});
  CpnnExecutor2D exec(std::move(data));
  QueryOptions vr;
  vr.params = {0.3, 0.0};
  vr.strategy = Strategy::kVR;
  QueryOptions basic = vr;
  basic.strategy = Strategy::kBasic;
  Rng rng(6);
  for (int t = 0; t < 5; ++t) {
    Point2 q{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    EXPECT_EQ(exec.Execute(q, vr).ids, exec.Execute(q, basic).ids);
  }
}

TEST(Executor2DTest, StatsPopulated) {
  CpnnExecutor2D exec(SmallFleet());
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;
  QueryAnswer ans = exec.Execute({1.0, 1.0}, opt);
  EXPECT_EQ(ans.stats.dataset_size, 4u);
  EXPECT_GT(ans.stats.candidates, 0u);
  EXPECT_GT(ans.stats.init_ms, 0.0);
}

TEST(Executor2DTest, ValidatesRadialPieces) {
  EXPECT_THROW(CpnnExecutor2D(SmallFleet(), 2), std::logic_error);
}

}  // namespace
}  // namespace pverify
