#include "core/knn.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/basic.h"
#include "core/monte_carlo.h"
#include "uncertain/pdf.h"

namespace pverify {
namespace {

CandidateSet MakeCandidates(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  for (int i = 0; i < n; ++i) {
    double lo = rng.Uniform(0.0, 20.0);
    data.emplace_back(i, MakeUniformPdf(lo, lo + rng.Uniform(1.0, 10.0)));
  }
  std::vector<uint32_t> idx;
  for (int i = 0; i < n; ++i) idx.push_back(i);
  // Keep k-NN-relevant candidates for every k used in these tests.
  return CandidateSet::Build1D(data, idx, rng.Uniform(0.0, 25.0), /*k=*/5);
}

TEST(KthFarPointTest, OrderStatistics) {
  Dataset data;
  data.emplace_back(0, MakeUniformPdf(1.0, 2.0));  // far 2
  data.emplace_back(1, MakeUniformPdf(0.5, 4.0));  // far 4
  data.emplace_back(2, MakeUniformPdf(1.5, 3.0));  // far 3
  CandidateSet cands = CandidateSet::Build1D(data, {0, 1, 2}, 0.0);
  EXPECT_DOUBLE_EQ(KthFarPoint(cands, 1), 2.0);
  EXPECT_DOUBLE_EQ(KthFarPoint(cands, 2), 3.0);
  EXPECT_DOUBLE_EQ(KthFarPoint(cands, 3), 4.0);
  EXPECT_THROW(KthFarPoint(cands, 0), std::logic_error);
  EXPECT_THROW(KthFarPoint(cands, 4), std::logic_error);
}

TEST(KnnTest, KEqualsOneMatchesPnn) {
  for (uint64_t seed : {3ULL, 7ULL, 11ULL}) {
    CandidateSet cands = MakeCandidates(8, seed);
    if (cands.empty()) continue;
    std::vector<double> pnn = ComputeExactProbabilities(cands, {});
    std::vector<double> knn = ComputeKnnProbabilities(cands, 1, {});
    ASSERT_EQ(pnn.size(), knn.size());
    for (size_t i = 0; i < pnn.size(); ++i) {
      EXPECT_NEAR(knn[i], pnn[i], 1e-6) << "seed=" << seed << " i=" << i;
    }
  }
}

TEST(KnnTest, ProbabilitiesSumToK) {
  // Expected size of the k-NN set is k: Σ_i p_i^(k) = k.
  for (int k : {1, 2, 3, 5}) {
    CandidateSet cands = MakeCandidates(9, 13);
    std::vector<double> p = ComputeKnnProbabilities(cands, k, {});
    double sum = 0.0;
    for (double v : p) sum += v;
    EXPECT_NEAR(sum, std::min<double>(k, cands.size()), 1e-5) << "k=" << k;
  }
}

TEST(KnnTest, MonotoneInK) {
  CandidateSet cands = MakeCandidates(10, 17);
  std::vector<double> prev(cands.size(), 0.0);
  for (int k = 1; k <= 5; ++k) {
    std::vector<double> p = ComputeKnnProbabilities(cands, k, {});
    for (size_t i = 0; i < p.size(); ++i) {
      EXPECT_GE(p[i], prev[i] - 1e-9) << "k=" << k << " i=" << i;
    }
    prev = p;
  }
}

TEST(KnnTest, KAtLeastCandidateCountIsCertain) {
  CandidateSet cands = MakeCandidates(5, 19);
  std::vector<double> p =
      ComputeKnnProbabilities(cands, static_cast<int>(cands.size()), {});
  for (double v : p) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(KnnTest, UpperBoundsHold) {
  for (int k : {1, 2, 3}) {
    CandidateSet cands = MakeCandidates(8, 23);
    std::vector<double> ub = KnnRsUpperBounds(cands, k);
    std::vector<double> p = ComputeKnnProbabilities(cands, k, {});
    for (size_t i = 0; i < p.size(); ++i) {
      EXPECT_LE(p[i], ub[i] + 1e-6) << "k=" << k << " i=" << i;
    }
  }
}

TEST(KnnTest, MatchesMonteCarloRanking) {
  CandidateSet cands = MakeCandidates(6, 29);
  const int k = 2;
  std::vector<double> exact = ComputeKnnProbabilities(cands, k, {});
  // Monte-Carlo estimate of P(in top-k).
  Rng rng(99);
  const int kSamples = 100000;
  std::vector<int> wins(cands.size(), 0);
  std::vector<std::pair<double, size_t>> draws(cands.size());
  for (int s = 0; s < kSamples; ++s) {
    for (size_t i = 0; i < cands.size(); ++i) {
      draws[i] = {cands[i].dist.Quantile(rng.Uniform(0.0, 1.0)), i};
    }
    std::partial_sort(draws.begin(), draws.begin() + k, draws.end());
    for (int t = 0; t < k; ++t) ++wins[draws[t].second];
  }
  for (size_t i = 0; i < cands.size(); ++i) {
    double mc = static_cast<double>(wins[i]) / kSamples;
    EXPECT_NEAR(exact[i], mc, 0.01) << "i=" << i;
  }
}

TEST(CknnTest, AnswersMeetThreshold) {
  CandidateSet cands = MakeCandidates(10, 31);
  CpnnParams params{0.4, 0.0};
  CknnAnswer ans = EvaluateCknn(cands, 2, params, {});
  std::vector<double> exact = ComputeKnnProbabilities(cands, 2, {});
  for (size_t i = 0; i < cands.size(); ++i) {
    bool returned = std::find(ans.ids.begin(), ans.ids.end(),
                              cands[i].id) != ans.ids.end();
    EXPECT_EQ(returned, exact[i] >= params.threshold) << "i=" << i;
  }
}

TEST(CknnTest, BoundPruningIsLossless) {
  CandidateSet cands = MakeCandidates(12, 37);
  CpnnParams params{0.6, 0.0};
  CknnAnswer with_bound = EvaluateCknn(cands, 3, params, {});
  // Recompute without pruning via raw exact probabilities.
  std::vector<double> exact = ComputeKnnProbabilities(cands, 3, {});
  std::vector<ObjectId> expect;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (exact[i] >= params.threshold) expect.push_back(cands[i].id);
  }
  EXPECT_EQ(with_bound.ids, expect);
}

TEST(CknnTest, KCoveringAllCandidates) {
  CandidateSet cands = MakeCandidates(4, 41);
  CknnAnswer ans =
      EvaluateCknn(cands, static_cast<int>(cands.size()), {0.5, 0.0}, {});
  EXPECT_EQ(ans.ids.size(), cands.size());
}

TEST(CknnTest, BoundsContainExactProbabilities) {
  CandidateSet cands = MakeCandidates(10, 47);
  CpnnParams params{0.5, 0.0};
  CknnAnswer ans = EvaluateCknn(cands, 2, params, {});
  std::vector<double> exact = ComputeKnnProbabilities(cands, 2, {});
  ASSERT_EQ(ans.bounds.size(), cands.size());
  for (size_t i = 0; i < cands.size(); ++i) {
    EXPECT_LE(ans.bounds[i].lower, exact[i] + 1e-6) << "i=" << i;
    EXPECT_GE(ans.bounds[i].upper, exact[i] - 1e-6) << "i=" << i;
  }
}

TEST(CknnTest, ProgressiveRefinementSavesSegments) {
  // A strict threshold lets the running bound decide most candidates before
  // the integral completes.
  CandidateSet cands = MakeCandidates(12, 53);
  CknnAnswer strict = EvaluateCknn(cands, 3, {0.9, 0.0}, {});
  CknnAnswer loose = EvaluateCknn(cands, 3, {0.01, 0.0}, {});
  EXPECT_GT(strict.pruned_by_bound + strict.early_decided, 0u);
  // Both settings agree with exact ground truth on membership.
  std::vector<double> exact = ComputeKnnProbabilities(cands, 3, {});
  for (size_t i = 0; i < cands.size(); ++i) {
    bool in_strict = std::find(strict.ids.begin(), strict.ids.end(),
                               cands[i].id) != strict.ids.end();
    bool in_loose = std::find(loose.ids.begin(), loose.ids.end(),
                              cands[i].id) != loose.ids.end();
    EXPECT_EQ(in_strict, exact[i] >= 0.9) << "i=" << i;
    EXPECT_EQ(in_loose, exact[i] >= 0.01) << "i=" << i;
  }
}

TEST(CknnTest, ToleranceAdmitsBorderlineMembers) {
  CandidateSet cands = MakeCandidates(9, 59);
  std::vector<double> exact = ComputeKnnProbabilities(cands, 2, {});
  CknnAnswer ans = EvaluateCknn(cands, 2, {0.4, 0.1}, {});
  for (size_t i = 0; i < cands.size(); ++i) {
    bool returned = std::find(ans.ids.begin(), ans.ids.end(),
                              cands[i].id) != ans.ids.end();
    if (exact[i] >= 0.4 + 1e-6) EXPECT_TRUE(returned) << "i=" << i;
    if (exact[i] < 0.4 - 0.1 - 1e-6) EXPECT_FALSE(returned) << "i=" << i;
  }
}

}  // namespace
}  // namespace pverify
