#include "datagen/dataset_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"

namespace pverify {
namespace {

TEST(DatasetIoTest, ParsesUniformIntervals) {
  std::istringstream in(
      "# a comment\n"
      "0.5 2.5\n"
      "\n"
      "10 20  # trailing comment\n");
  Dataset data = datagen::ReadDataset(in);
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data[0].id(), 0);
  EXPECT_DOUBLE_EQ(data[0].lo(), 0.5);
  EXPECT_DOUBLE_EQ(data[0].hi(), 2.5);
  EXPECT_EQ(data[0].pdf().name(), "uniform");
  EXPECT_EQ(data[1].id(), 1);
  EXPECT_DOUBLE_EQ(data[1].hi(), 20.0);
}

TEST(DatasetIoTest, ParsesGaussianRecords) {
  std::istringstream in(
      "g 0 6\n"
      "g 1 5 50\n");
  Dataset data = datagen::ReadDataset(in);
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data[0].pdf().name(), "gaussian");
  EXPECT_EQ(data[0].pdf().num_bars(), 300u);  // paper default
  EXPECT_EQ(data[1].pdf().num_bars(), 50u);
}

TEST(DatasetIoTest, ParsesHistogramRecords) {
  std::istringstream in("h 0 3 1 2 1\n");
  Dataset data = datagen::ReadDataset(in);
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0].pdf().num_bars(), 3u);
  EXPECT_NEAR(data[0].pdf().ProbIn(1.0, 2.0), 0.5, 1e-12);
}

TEST(DatasetIoTest, RejectsMalformedLines) {
  auto expect_error = [](const std::string& text, const char* what) {
    std::istringstream in(text);
    try {
      datagen::ReadDataset(in);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::logic_error& e) {
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
          << what;
    }
  };
  expect_error("5 2\n", "reversed interval");
  expect_error("abc def\n", "non-numeric");
  expect_error("g 1\n", "incomplete gaussian");
  expect_error("g 3 1\n", "reversed gaussian");
  expect_error("h 0 1\n", "histogram without weights");
  expect_error("h 0 1 -2\n", "negative weight");
  expect_error("h 0 1 0 0\n", "zero-mass histogram");
}

TEST(DatasetIoTest, RoundTripUniform) {
  Dataset original = datagen::MakeUniformScatter(50, 100.0, 5.0, 3);
  std::ostringstream out;
  datagen::WriteDataset(original, out);
  std::istringstream in(out.str());
  Dataset loaded = datagen::ReadDataset(in);
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].lo(), original[i].lo());
    EXPECT_DOUBLE_EQ(loaded[i].hi(), original[i].hi());
  }
}

TEST(DatasetIoTest, RoundTripHistogramPreservesProbabilities) {
  Dataset original;
  original.emplace_back(0, MakeHistogramPdf(2.0, 8.0, {1.0, 3.0, 2.0}));
  original.emplace_back(1, MakeGaussianPdf(0.0, 10.0, 40));
  std::ostringstream out;
  datagen::WriteDataset(original, out);
  std::istringstream in(out.str());
  Dataset loaded = datagen::ReadDataset(in);
  ASSERT_EQ(loaded.size(), 2u);
  for (size_t i = 0; i < loaded.size(); ++i) {
    for (double x = 0.0; x <= 10.0; x += 0.5) {
      EXPECT_NEAR(loaded[i].pdf().Cdf(x), original[i].pdf().Cdf(x), 1e-9)
          << "i=" << i << " x=" << x;
    }
  }
}

TEST(DatasetIoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/pverify_dataset_test.txt";
  Dataset original = datagen::MakeUniformScatter(20, 50.0, 2.0, 5);
  datagen::SaveDataset(original, path);
  Dataset loaded = datagen::LoadDataset(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_DOUBLE_EQ(loaded[7].lo(), original[7].lo());
}

TEST(DatasetIoTest, MissingFileThrows) {
  EXPECT_THROW(datagen::LoadDataset("/nonexistent/nowhere.txt"),
               std::logic_error);
}

}  // namespace
}  // namespace pverify
