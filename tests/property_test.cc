// Cross-module property suites: on randomly generated worlds, the system's
// core invariants must hold regardless of pdf shape, query position or
// constraint parameters.
#include <algorithm>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/basic.h"
#include "core/classifier.h"
#include "core/framework.h"
#include "core/query.h"
#include "core/query2d.h"
#include "core/refine.h"
#include "datagen/synthetic.h"

namespace pverify {
namespace {

Dataset RandomDataset(Rng& rng, int n, int pdf_kind) {
  Dataset data;
  for (int i = 0; i < n; ++i) {
    double lo = rng.Uniform(0.0, 80.0);
    double hi = lo + rng.Uniform(0.3, 25.0);
    switch (pdf_kind % 4) {
      case 0:
        data.emplace_back(i, MakeUniformPdf(lo, hi));
        break;
      case 1:
        data.emplace_back(i, MakeGaussianPdf(lo, hi, 30));
        break;
      case 2:
        data.emplace_back(i, MakeTriangularPdf(lo, hi, 16));
        break;
      default: {
        std::vector<double> w;
        for (int b = 0; b < 6; ++b) w.push_back(rng.Uniform(0.02, 2.0));
        data.emplace_back(i, MakeHistogramPdf(lo, hi, w));
      }
    }
  }
  return data;
}

class PipelinePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

// Invariant 1: at every stage, bounds contain the exact probability and the
// final C-PNN answer respects Definition 1 w.r.t. the exact probabilities.
TEST_P(PipelinePropertyTest, AnswerRespectsDefinition1) {
  auto [seed, pdf_kind] = GetParam();
  Rng rng(seed * 997 + pdf_kind);
  Dataset data = RandomDataset(rng, 3 + static_cast<int>(rng.UniformInt(0, 17)),
                               pdf_kind);
  CpnnExecutor exec(data);
  double q = rng.Uniform(-10.0, 110.0);
  double P = rng.Uniform(0.05, 0.95);
  double tol = rng.Uniform(0.0, 0.2);

  QueryOptions opt;
  opt.params = {P, tol};
  opt.strategy = Strategy::kVR;
  QueryAnswer ans = exec.Execute(q, opt);

  auto probs = exec.ComputePnn(q);
  std::set<ObjectId> answer(ans.ids.begin(), ans.ids.end());
  for (const auto& [id, p] : probs) {
    if (p >= P + 1e-6) {
      EXPECT_TRUE(answer.count(id))
          << "missing certain answer: seed=" << seed << " id=" << id
          << " p=" << p << " P=" << P;
    }
    if (p < P - tol - 1e-6) {
      EXPECT_FALSE(answer.count(id))
          << "tolerance violated: seed=" << seed << " id=" << id << " p=" << p
          << " P=" << P << " tol=" << tol;
    }
  }
}

// Invariant 2: all four strategies agree exactly at zero tolerance.
TEST_P(PipelinePropertyTest, StrategiesAgreeAtZeroTolerance) {
  auto [seed, pdf_kind] = GetParam();
  Rng rng(seed * 131071 + pdf_kind);
  Dataset data = RandomDataset(rng, 10, pdf_kind);
  CpnnExecutor exec(data);
  double q = rng.Uniform(0.0, 100.0);
  // Avoid thresholds that sit on a probability value (flaky classification).
  double P = 0.37;

  std::vector<ObjectId> expected;
  for (Strategy s : {Strategy::kBasic, Strategy::kRefine, Strategy::kVR}) {
    QueryOptions opt;
    opt.params = {P, 0.0};
    opt.strategy = s;
    auto ans = exec.Execute(q, opt);
    if (s == Strategy::kBasic) {
      expected = ans.ids;
    } else {
      EXPECT_EQ(ans.ids, expected) << "strategy=" << ToString(s)
                                   << " seed=" << seed;
    }
  }
}

// Invariant 3: verifier bounds bracket the exact per-subregion probability,
// and the subregion decomposition reconstructs the Basic integral.
TEST_P(PipelinePropertyTest, SubregionDecompositionConsistent) {
  auto [seed, pdf_kind] = GetParam();
  Rng rng(seed * 523 + pdf_kind);
  Dataset data = RandomDataset(rng, 8, pdf_kind);
  std::vector<uint32_t> idx(data.size());
  for (uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
  CandidateSet cands =
      CandidateSet::Build1D(data, idx, rng.Uniform(0.0, 100.0));
  if (cands.empty()) return;
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  LsrVerifier().Apply(ctx);
  UsrVerifier().Apply(ctx);

  std::vector<double> exact = ComputeExactProbabilities(cands, {});
  for (size_t i = 0; i < cands.size(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j + 1 < tbl.num_subregions(); ++j) {
      if (!tbl.Participates(i, j)) continue;
      double qij = ExactSubregionProbability(ctx, i, j, {});
      EXPECT_GE(qij, ctx.QLow(i, j) - 1e-6);
      EXPECT_LE(qij, ctx.QUp(i, j) + 1e-6);
      sum += tbl.s(i, j) * qij;
    }
    EXPECT_NEAR(sum, exact[i], 1e-5) << "i=" << i << " seed=" << seed;
  }
}

// Invariant 4: filtering is lossless — every object with non-zero exact
// probability survives the filter.
TEST_P(PipelinePropertyTest, FilteringIsLossless) {
  auto [seed, pdf_kind] = GetParam();
  Rng rng(seed * 71 + pdf_kind);
  Dataset data = RandomDataset(rng, 25, pdf_kind);
  CpnnExecutor exec(data);
  double q = rng.Uniform(0.0, 100.0);
  FilterResult fr = exec.Filter(q);
  std::set<uint32_t> kept(fr.candidates.begin(), fr.candidates.end());
  // Brute force: every object overlapping [q − fmin, q + fmin] must be kept.
  for (uint32_t i = 0; i < data.size(); ++i) {
    if (data[i].MinDist(q) <= fr.fmin - 1e-9) {
      EXPECT_TRUE(kept.count(i)) << "i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPdfKinds, PipelinePropertyTest,
    ::testing::Combine(::testing::Range(0, 12), ::testing::Range(0, 4)));

// Bounds never widen across the verifier chain, for every pdf kind.
class MonotoneTighteningTest : public ::testing::TestWithParam<int> {};

TEST_P(MonotoneTighteningTest, ChainMonotone) {
  Rng rng(GetParam() * 17 + 1);
  Dataset data = RandomDataset(rng, 12, GetParam() % 4);
  std::vector<uint32_t> idx(data.size());
  for (uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
  CandidateSet cands =
      CandidateSet::Build1D(data, idx, rng.Uniform(0.0, 100.0));
  if (cands.empty()) return;
  SubregionTable tbl = SubregionTable::Build(cands);
  VerificationContext ctx(&cands, &tbl);
  std::vector<double> lo(cands.size(), 0.0), hi(cands.size(), 1.0);
  for (const auto& v : MakeDefaultVerifierChain()) {
    v->Apply(ctx);
    for (size_t i = 0; i < cands.size(); ++i) {
      EXPECT_GE(cands[i].bound.lower, lo[i] - 1e-12);
      EXPECT_LE(cands[i].bound.upper, hi[i] + 1e-12);
      EXPECT_LE(cands[i].bound.lower, cands[i].bound.upper + 1e-12);
      lo[i] = cands[i].bound.lower;
      hi[i] = cands[i].bound.upper;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotoneTighteningTest,
                         ::testing::Range(0, 16));

// 2-D sweep: the same Definition 1 guarantees must hold when distance
// distributions come from exact circle/rectangle geometry.
class Pipeline2DPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(Pipeline2DPropertyTest, AnswerRespectsDefinition1In2D) {
  Rng rng(GetParam() * 389 + 7);
  datagen::Synthetic2DConfig config;
  config.count = 120;
  config.mean_extent = 50.0;
  config.max_extent = 200.0;
  config.seed = static_cast<uint64_t>(GetParam()) + 1;
  CpnnExecutor2D exec(datagen::MakeSynthetic2D(config), 96);
  Point2 q{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
  double P = rng.Uniform(0.1, 0.8);
  double tol = rng.Uniform(0.0, 0.1);

  QueryOptions opt;
  opt.params = {P, tol};
  opt.strategy = Strategy::kVR;
  QueryAnswer ans = exec.Execute(q, opt);
  auto probs = exec.ComputePnn(q);
  std::set<ObjectId> answer(ans.ids.begin(), ans.ids.end());
  // Radial-cdf discretization introduces a small epsilon; allow it in the
  // comparison margins.
  const double disc = 5e-3;
  for (const auto& [id, p] : probs) {
    if (p >= P + disc) EXPECT_TRUE(answer.count(id)) << "id=" << id;
    if (p < P - tol - disc) EXPECT_FALSE(answer.count(id)) << "id=" << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Pipeline2DPropertyTest,
                         ::testing::Range(0, 8));

// QueryStats aggregation used by every workload/bench must be additive.
TEST(QueryStatsTest, AccumulateIntoSums) {
  QueryStats a;
  a.filter_ms = 1.0;
  a.verify_ms = 2.0;
  a.candidates = 10;
  a.finished_after_verification = true;
  QueryStats b;
  b.filter_ms = 0.5;
  b.refine_ms = 3.0;
  b.candidates = 4;
  b.finished_after_verification = false;
  QueryStats total;
  a.AccumulateInto(total);
  b.AccumulateInto(total);
  EXPECT_DOUBLE_EQ(total.filter_ms, 1.5);
  EXPECT_DOUBLE_EQ(total.verify_ms, 2.0);
  EXPECT_DOUBLE_EQ(total.refine_ms, 3.0);
  EXPECT_EQ(total.candidates, 14u);
  EXPECT_EQ(total.queries_finished_after_verify, 1u);
}

// Degenerate and adversarial candidate geometries must not break the
// pipeline.
TEST(EdgeCaseTest, ManyIdenticalObjects) {
  Dataset data;
  for (int i = 0; i < 40; ++i) {
    data.emplace_back(i, MakeUniformPdf(5.0, 8.0));
  }
  CpnnExecutor exec(data);
  auto probs = exec.ComputePnn(6.0);
  ASSERT_EQ(probs.size(), 40u);
  for (const auto& [id, p] : probs) EXPECT_NEAR(p, 1.0 / 40.0, 1e-6);
  QueryOptions opt;
  opt.params = {1.0 / 40.0 + 0.01, 0.0};
  opt.strategy = Strategy::kVR;
  EXPECT_TRUE(exec.Execute(6.0, opt).ids.empty());
}

TEST(EdgeCaseTest, TouchingIntervals) {
  Dataset data;
  data.emplace_back(0, MakeUniformPdf(0.0, 2.0));
  data.emplace_back(1, MakeUniformPdf(2.0, 4.0));  // touches at 2
  data.emplace_back(2, MakeUniformPdf(4.0, 6.0));  // touches at 4
  CpnnExecutor exec(data);
  for (double q : {0.0, 2.0, 3.0, 4.0, 6.0}) {
    auto probs = exec.ComputePnn(q);
    double sum = 0.0;
    for (const auto& [id, p] : probs) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-6) << "q=" << q;
  }
}

TEST(EdgeCaseTest, ExtremeScaleValues) {
  Dataset data;
  data.emplace_back(0, MakeUniformPdf(1e9, 1e9 + 1e-3));
  data.emplace_back(1, MakeUniformPdf(1e9 + 5e-4, 1e9 + 2e-3));
  CpnnExecutor exec(data);
  auto probs = exec.ComputePnn(1e9);
  ASSERT_FALSE(probs.empty());
  double sum = 0.0;
  for (const auto& [id, p] : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(EdgeCaseTest, HeavilySkewedHistogram) {
  // Nearly all mass in one thin bar.
  std::vector<double> w(20, 1e-6);
  w[10] = 1.0;
  Dataset data;
  data.emplace_back(0, MakeHistogramPdf(0.0, 10.0, w));
  data.emplace_back(1, MakeUniformPdf(4.0, 7.0));
  CpnnExecutor exec(data);
  QueryOptions opt;
  opt.params = {0.3, 0.0};
  opt.strategy = Strategy::kVR;
  QueryOptions basic = opt;
  basic.strategy = Strategy::kBasic;
  for (double q : {0.0, 5.2, 9.0}) {
    EXPECT_EQ(exec.Execute(q, opt).ids, exec.Execute(q, basic).ids)
        << "q=" << q;
  }
}

}  // namespace
}  // namespace pverify
