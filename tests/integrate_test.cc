#include "common/integrate.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace pverify {
namespace {

TEST(GaussLegendreTest, ExactForPolynomials) {
  // n-node Gauss-Legendre is exact for degree 2n−1.
  auto poly3 = [](double x) { return 2.0 * x * x * x - x + 1.0; };
  // ∫_0^2 (2x³ − x + 1) dx = 8 − 2 + 2 = 8.
  EXPECT_NEAR(GaussLegendre(poly3, 0.0, 2.0, 2), 8.0, 1e-12);

  auto poly7 = [](double x) { return std::pow(x, 7); };
  // ∫_0^1 x⁷ dx = 1/8.
  EXPECT_NEAR(GaussLegendre(poly7, 0.0, 1.0, 4), 0.125, 1e-12);

  auto poly15 = [](double x) { return std::pow(x, 15); };
  EXPECT_NEAR(GaussLegendre(poly15, 0.0, 1.0, 8), 1.0 / 16.0, 1e-12);

  auto poly31 = [](double x) { return std::pow(x, 31); };
  EXPECT_NEAR(GaussLegendre(poly31, 0.0, 1.0, 16), 1.0 / 32.0, 1e-11);
}

TEST(GaussLegendreTest, TranscendentalAccuracy) {
  auto f = [](double x) { return std::sin(x); };
  EXPECT_NEAR(GaussLegendre(f, 0.0, M_PI, 16), 2.0, 1e-10);
  auto g = [](double x) { return std::exp(-x * x); };
  EXPECT_NEAR(GaussLegendre(g, -3.0, 3.0, 16), std::sqrt(M_PI), 1e-4);
}

TEST(GaussLegendreTest, EmptyOrReversedInterval) {
  auto f = [](double x) { return x; };
  EXPECT_DOUBLE_EQ(GaussLegendre(f, 1.0, 1.0, 8), 0.0);
  EXPECT_DOUBLE_EQ(GaussLegendre(f, 2.0, 1.0, 8), 0.0);
}

TEST(GaussLegendreTest, UnsupportedOrdersRoundUp) {
  auto poly5 = [](double x) { return std::pow(x, 5); };
  // 3 rounds up to 4 nodes, which integrates degree 7 exactly.
  EXPECT_NEAR(GaussLegendre(poly5, 0.0, 1.0, 3), 1.0 / 6.0, 1e-12);
  // Anything above 16 caps at 16.
  EXPECT_NEAR(GaussLegendre(poly5, 0.0, 1.0, 64), 1.0 / 6.0, 1e-12);
}

TEST(IntegrateWithBreakpointsTest, SplitsAtKinks) {
  // |x − 1| has a kink at 1; single-panel Gauss misses it, split is exact.
  auto f = [](double x) { return std::abs(x - 1.0); };
  std::vector<double> breaks = {1.0};
  // ∫_0^2 |x−1| dx = 1.
  EXPECT_NEAR(IntegrateWithBreakpoints(f, 0.0, 2.0, breaks, 4), 1.0, 1e-12);
}

TEST(IntegrateWithBreakpointsTest, IgnoresBreakpointsOutsideRange) {
  auto f = [](double x) { return x; };
  std::vector<double> breaks = {-5.0, 0.5, 7.0};
  EXPECT_NEAR(IntegrateWithBreakpoints(f, 0.0, 1.0, breaks, 4), 0.5, 1e-12);
}

TEST(IntegrateWithBreakpointsTest, StepIntegrandExact) {
  auto f = [](double x) { return x < 2.0 ? 1.0 : 3.0; };
  std::vector<double> breaks = {2.0};
  // ∫_0^4 = 2·1 + 2·3 = 8.
  EXPECT_NEAR(IntegrateWithBreakpoints(f, 0.0, 4.0, breaks, 2), 8.0, 1e-12);
}

TEST(SimpsonTest, MatchesGaussOnSmooth) {
  auto f = [](double x) { return std::cos(x); };
  double gauss = GaussLegendre(f, 0.0, 1.0, 16);
  double simpson = Simpson(f, 0.0, 1.0, 128);
  EXPECT_NEAR(gauss, simpson, 1e-8);
  EXPECT_NEAR(simpson, std::sin(1.0), 1e-8);
}

TEST(SimpsonTest, ValidatesIntervalCount) {
  auto f = [](double x) { return x; };
  EXPECT_THROW(Simpson(f, 0.0, 1.0, 3), std::logic_error);
  EXPECT_THROW(Simpson(f, 0.0, 1.0, 0), std::logic_error);
}

}  // namespace
}  // namespace pverify
