// Engine-native 2-D C-PNN tests: QueryKind::kPoint2D pinned bit-identical
// to CpnnExecutor2D::Execute, sharded-vs-unsharded 2-D equivalence across
// shard counts and policies, a property test that 2-D shard pruning never
// drops a shard that could contribute, and scratch-footprint stability over
// a 100+-query 2-D batch.
#include <future>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "engine/query_engine.h"
#include "engine/sharded_engine.h"
#include "spatial/bounds.h"
#include "spatial/filter.h"

namespace pverify {
namespace {

Dataset2D TestDataset2D(size_t count = 300, uint64_t seed = 21) {
  datagen::Synthetic2DConfig config;
  config.count = count;
  config.mean_extent = 30.0;
  config.max_extent = 120.0;
  config.seed = seed;
  return datagen::MakeSynthetic2D(config);
}

// Well-separated Gaussian clusters along the diagonal (the datagen
// clustered generator's default placement): range (x-stripe) sharding
// keeps each cluster in its own shard, so bounds-based pruning has teeth.
Dataset2D ClusteredDataset2D() {
  datagen::Synthetic2DClusteredConfig config;
  config.count = 160;
  config.domain = 10000.0;
  config.num_clusters = 4;
  config.cluster_stddev = 150.0;
  config.mean_extent = 4.0;
  config.max_extent = 12.0;
  config.seed = 77;
  return datagen::MakeSynthetic2DClustered(config);
}

QueryOptions OptionsFor(Strategy strategy) {
  QueryOptions opt;
  opt.params = {0.25, 0.01};
  opt.strategy = strategy;
  opt.report_probabilities = true;
  return opt;
}

std::shared_ptr<const ShardingPolicy> MakePolicy2D(const std::string& name,
                                                   const Dataset2D& data) {
  if (name == "hash") return std::make_shared<const HashShardingPolicy>();
  return std::make_shared<const RangeShardingPolicy>(
      RangeShardingPolicy::ForDataset2D(data));
}

// Bit-identical, not approximately equal: the engine-native 2-D path must
// run the exact same arithmetic as the executor. `Expected` is QueryAnswer
// (executor reference) or QueryResult (engine reference) — both expose the
// same answer fields.
template <typename Expected>
void ExpectIdentical(const Expected& expected, const QueryResult& got,
               const std::string& what) {
  EXPECT_EQ(expected.ids, got.ids) << what;
  ASSERT_EQ(expected.candidate_probabilities.size(),
            got.candidate_probabilities.size())
      << what;
  for (size_t i = 0; i < expected.candidate_probabilities.size(); ++i) {
    const AnswerEntry& e = expected.candidate_probabilities[i];
    const AnswerEntry& g = got.candidate_probabilities[i];
    EXPECT_EQ(e.id, g.id) << what << " entry " << i;
    EXPECT_EQ(e.bound.lower, g.bound.lower) << what << " entry " << i;
    EXPECT_EQ(e.bound.upper, g.bound.upper) << what << " entry " << i;
  }
  EXPECT_EQ(expected.stats.candidates, got.stats.candidates) << what;
}

TEST(Engine2DTest, BatchedPoint2DBitIdenticalToExecutorAllStrategies) {
  Dataset2D data = TestDataset2D();
  CpnnExecutor2D sequential(data);
  EngineOptions eopt;
  eopt.num_threads = 4;
  QueryEngine engine(data, eopt);
  ASSERT_NE(engine.executor2d(), nullptr);

  const std::vector<Point2> points =
      datagen::MakeQueryPoints2D(12, 0.0, 1000.0, /*seed=*/5);
  for (Strategy strategy : {Strategy::kBasic, Strategy::kRefine,
                            Strategy::kVR, Strategy::kMonteCarlo}) {
    QueryOptions opt = OptionsFor(strategy);
    std::vector<QueryRequest> batch;
    for (Point2 p : points) batch.push_back(Point2DQuery{p, opt});
    std::vector<QueryResult> results = engine.ExecuteBatch(std::move(batch));
    ASSERT_EQ(results.size(), points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      QueryAnswer expected = sequential.Execute(points[i], opt);
      ExpectIdentical(expected, results[i],
                      std::string(ToString(strategy)) + " query " +
                          std::to_string(i));
    }
  }
}

TEST(Engine2DTest, SubmitAndSerialExecuteMatchExecutor) {
  Dataset2D data = TestDataset2D(200, /*seed=*/9);
  CpnnExecutor2D sequential(data);
  QueryEngine engine(data, EngineOptions{2});
  QueryOptions opt = OptionsFor(Strategy::kVR);

  const std::vector<Point2> points =
      datagen::MakeQueryPoints2D(8, 0.0, 1000.0, /*seed=*/17);
  std::vector<std::future<QueryResult>> futures;
  for (Point2 p : points) {
    futures.push_back(engine.Submit(Point2DQuery{p, opt}));
  }
  for (size_t i = 0; i < points.size(); ++i) {
    ExpectIdentical(sequential.Execute(points[i], opt),
                    futures[i].get(), "submit " + std::to_string(i));
  }
  ExpectIdentical(sequential.Execute(points[0], opt),
                  engine.Execute(Point2DQuery{points[0], opt}),
                  "serial execute");
}

TEST(Engine2DTest, DualModeEngineServesMixedBatches) {
  Dataset data1d = datagen::MakeUniformScatter(200, 250.0, 2.0, /*seed=*/3);
  Dataset2D data2d = TestDataset2D(150, /*seed=*/33);
  CpnnExecutor ref1d(data1d);
  CpnnExecutor2D ref2d(data2d);
  QueryEngine engine(data1d, data2d, EngineOptions{4});

  QueryOptions opt = OptionsFor(Strategy::kVR);
  std::vector<QueryRequest> batch;
  batch.push_back(PointQuery{125.0, opt});
  batch.push_back(Point2DQuery{{500.0, 500.0}, opt});
  batch.push_back(MinQuery{opt});
  batch.push_back(Point2DQuery{{120.0, 880.0}, opt});
  std::vector<QueryResult> results = engine.ExecuteBatch(std::move(batch));
  ASSERT_EQ(results.size(), 4u);
  ExpectIdentical(ref1d.Execute(125.0, opt), results[0], "1-D point");
  ExpectIdentical(ref2d.Execute({500.0, 500.0}, opt), results[1],
                  "2-D point");
  ExpectIdentical(ref1d.ExecuteMin(opt), results[2], "min");
  ExpectIdentical(ref2d.Execute({120.0, 880.0}, opt), results[3],
                  "2-D point 2");
}

TEST(Engine2DTest, Point2DWithoutDatasetThrows) {
  Dataset data1d = datagen::MakeUniformScatter(50, 100.0, 2.0, /*seed=*/4);
  QueryOptions opt = OptionsFor(Strategy::kVR);

  QueryEngine engine(data1d, EngineOptions{1});
  EXPECT_EQ(engine.executor2d(), nullptr);
  EXPECT_THROW(engine.Execute(Point2DQuery{{1.0, 1.0}, opt}),
               std::logic_error);

  ShardedQueryEngine sharded(data1d, ShardedEngineOptions{2, nullptr, 2});
  EXPECT_THROW(sharded.Execute(Point2DQuery{{1.0, 1.0}, opt}),
               std::logic_error);
}

// A 2-D dataset that happens to be empty is served (empty answers), and the
// sharded and unsharded engines agree — including the dual-mode ctors.
TEST(Engine2DTest, EmptyDataset2DServesEmptyAnswersConsistently) {
  Dataset data1d = datagen::MakeUniformScatter(50, 100.0, 2.0, /*seed=*/4);
  QueryOptions opt = OptionsFor(Strategy::kVR);
  auto request = [&] { return QueryRequest(Point2DQuery{{1.0, 1.0}, opt}); };

  QueryEngine unsharded(Dataset2D{}, EngineOptions{1});
  QueryResult expected = unsharded.Execute(request());
  EXPECT_TRUE(expected.ids.empty());
  EXPECT_EQ(expected.stats.candidates, 0u);

  QueryEngine dual(data1d, Dataset2D{}, EngineOptions{1});
  ExpectIdentical(expected, dual.Execute(request()), "dual unsharded");

  ShardedQueryEngine sharded(Dataset2D{}, ShardedEngineOptions{2, nullptr, 2});
  ExpectIdentical(expected, sharded.Execute(request()), "sharded 2-D");

  ShardedQueryEngine sharded_dual(data1d, Dataset2D{},
                                  ShardedEngineOptions{2, nullptr, 2});
  ExpectIdentical(expected, sharded_dual.Execute(request()),
                  "sharded dual");
}

// Recycling without arena-backed construction (the sharded gather path)
// must not grow the scratch pools unboundedly: the spare-distribution pool
// is capped at the arena's own take demand, which is zero here.
TEST(Engine2DTest, ShardedGatherDoesNotGrowScratchUnboundedly) {
  Dataset2D data = TestDataset2D(200, /*seed=*/37);
  ShardedEngineOptions sopt;
  sopt.num_shards = 2;
  sopt.num_threads = 1;
  ShardedQueryEngine sharded(data, sopt);
  QueryOptions opt = OptionsFor(Strategy::kVR);
  const std::vector<Point2> points =
      datagen::MakeQueryPoints2D(40, 0.0, 1000.0, /*seed=*/53);

  auto run_batch = [&] {
    std::vector<QueryRequest> batch;
    for (Point2 p : points) batch.push_back(Point2DQuery{p, opt});
    std::vector<QueryResult> results = sharded.ExecuteBatch(std::move(batch));
    ASSERT_EQ(results.size(), points.size());
  };
  run_batch();
  run_batch();
  const size_t after_two = sharded.ScratchBytes();
  run_batch();
  run_batch();
  EXPECT_EQ(sharded.ScratchBytes(), after_two);
  EXPECT_EQ(sharded.ScratchQueriesServed(), 4 * points.size());
}

TEST(Engine2DTest, ShardedPoint2DBitIdenticalAcrossShardCountsAndPolicies) {
  std::vector<Dataset2D> datasets;
  datasets.push_back(TestDataset2D(300, /*seed=*/21));
  datasets.push_back(TestDataset2D(300, /*seed=*/99));
  datasets.push_back(ClusteredDataset2D());

  for (size_t d = 0; d < datasets.size(); ++d) {
    const Dataset2D& data = datasets[d];
    const double domain_hi = d < 2 ? 1000.0 : 10000.0;
    const std::vector<Point2> points =
        datagen::MakeQueryPoints2D(5, 0.0, domain_hi, /*seed=*/41 + d);
    const QueryOptions opt = OptionsFor(Strategy::kVR);

    QueryEngine reference(data, EngineOptions{2});
    std::vector<QueryRequest> ref_batch;
    for (Point2 p : points) ref_batch.push_back(Point2DQuery{p, opt});
    std::vector<QueryResult> expected =
        reference.ExecuteBatch(std::move(ref_batch));

    for (size_t shards : {1u, 2u, 4u}) {
      for (const std::string& policy : {"hash", "range"}) {
        ShardedEngineOptions sopt;
        sopt.num_shards = shards;
        sopt.policy = MakePolicy2D(policy, data);
        sopt.num_threads = 2;
        ShardedQueryEngine sharded(data, sopt);
        ASSERT_EQ(sharded.num_shards(), shards);

        std::vector<QueryRequest> batch;
        for (Point2 p : points) batch.push_back(Point2DQuery{p, opt});
        std::vector<QueryResult> got = sharded.ExecuteBatch(std::move(batch));
        ASSERT_EQ(expected.size(), got.size());
        for (size_t i = 0; i < expected.size(); ++i) {
          ExpectIdentical(
        expected[i], got[i],
        "dataset " + std::to_string(d) + " shards " +
            std::to_string(shards) + " policy " + policy + " query " +
            std::to_string(i));
        }
        // Single Execute and async Submit run the same scatter/gather.
        ExpectIdentical(expected[0],
                        sharded.Execute(Point2DQuery{points[0], opt}),
                        "single execute");
        std::future<QueryResult> f =
            sharded.Submit(Point2DQuery{points[1], opt});
        ExpectIdentical(expected[1], f.get(), "async submit");
      }
    }
  }
}

TEST(Engine2DTest, RangeSharding2DPrunesDistantShards) {
  Dataset2D data = ClusteredDataset2D();
  ShardedEngineOptions sopt;
  sopt.num_shards = 8;
  sopt.policy = MakePolicy2D("range", data);
  sopt.num_threads = 2;
  ShardedQueryEngine sharded(data, sopt);
  QueryEngine reference(data, EngineOptions{1});

  const QueryOptions opt = OptionsFor(Strategy::kVR);
  // Queries inside the clusters (the generator places them at 1250, 3750,
  // 6250, 8750 on the diagonal): each should touch its own neighborhood
  // only, not every shard.
  std::vector<Point2> points = {{1230.0, 1270.0}, {3770.0, 3730.0},
                                {6260.0, 6240.0}, {8730.0, 8770.0}};
  for (Point2 p : points) {
    ExpectIdentical(reference.Execute(Point2DQuery{p, opt}),
                    sharded.Execute(Point2DQuery{p, opt}),
                    "pruned 2-D point query");
  }
  EXPECT_GT(sharded.ShardsPruned(), 0u);
  EXPECT_GT(sharded.ShardVisits(), 0u);
  EXPECT_LT(sharded.ShardVisits(), points.size() * sharded.num_shards());
}

// The pruning-safety property: a shard skipped by the Mbr-based phase-0 cut
// (MINDIST > min-over-shards MAXDIST) must not contain any object that
// could contribute to the answer — no object passing the global-f_min
// filter cut — and the shard bounds must sandwich every contained object's
// exact distances.
TEST(Engine2DTest, Point2DPruningNeverDropsContributingShard) {
  std::vector<Dataset2D> datasets;
  datasets.push_back(TestDataset2D(250, /*seed=*/55));
  datasets.push_back(ClusteredDataset2D());

  for (size_t d = 0; d < datasets.size(); ++d) {
    const Dataset2D& data = datasets[d];
    const double domain_hi = d == 0 ? 1000.0 : 10000.0;
    const std::vector<Point2> points =
        datagen::MakeQueryPoints2D(20, 0.0, domain_hi, /*seed=*/7 + d);

    for (size_t shards : {2u, 4u, 8u}) {
      for (const std::string& policy : {"hash", "range"}) {
        ShardedEngineOptions sopt;
        sopt.num_shards = shards;
        sopt.policy = MakePolicy2D(policy, data);
        sopt.num_threads = 1;
        ShardedQueryEngine engine(data, sopt);

        // Bounds sandwich every contained object's exact distances.
        for (size_t s = 0; s < engine.num_shards(); ++s) {
          const ShardBounds2D& b = engine.shard_bounds2d(s);
          const Dataset2D& part = engine.shard(s).executor2d()->dataset();
          for (Point2 q : points) {
            for (const UncertainObject2D& obj : part) {
              EXPECT_LE(MbrMinDistToBounds2D(q, b), obj.MinDist(q) + 1e-9);
              EXPECT_GE(MbrMaxDistToBounds2D(q, b), obj.MaxDist(q) - 1e-9);
            }
          }
        }

        for (Point2 q : points) {
          const double fmin = FilterByScan2D(data, q).fmin;
          // Replicate the engine's phase-0 decision from its public bounds.
          double cap = std::numeric_limits<double>::infinity();
          for (size_t s = 0; s < engine.num_shards(); ++s) {
            const ShardBounds2D& b = engine.shard_bounds2d(s);
            if (b.empty()) continue;
            cap = std::min(cap, MbrMaxDistToBounds2D(q, b));
          }
          for (size_t s = 0; s < engine.num_shards(); ++s) {
            const ShardBounds2D& b = engine.shard_bounds2d(s);
            if (b.empty()) continue;
            const bool pruned =
                MbrMinDistToBounds2D(q, b) > cap + kFilterBoundarySlack;
            if (!pruned) continue;
            const Dataset2D& part = engine.shard(s).executor2d()->dataset();
            for (const UncertainObject2D& obj : part) {
              // No pruned object survives the global filter cut — the
              // shard could not have contributed a candidate (and, since
              // MinDist <= MaxDist, could not have lowered f_min either).
              EXPECT_GT(obj.MinDist(q), fmin + kFilterBoundarySlack)
                  << "policy " << policy << " shards " << shards
                  << " dropped a contributing shard";
            }
          }
        }
      }
    }
  }
}

TEST(Engine2DTest, ScratchBackedExecutorAnswersBitIdenticalToFresh) {
  Dataset2D data = TestDataset2D(200, /*seed=*/13);
  CpnnExecutor2D exec(data);
  QueryOptions opt = OptionsFor(Strategy::kVR);
  const std::vector<Point2> points =
      datagen::MakeQueryPoints2D(40, 0.0, 1000.0, /*seed=*/61);

  QueryScratch scratch;
  for (Point2 q : points) {
    QueryAnswer fresh = exec.Execute(q, opt);             // fresh buffers
    QueryAnswer reused = exec.Execute(q, opt, &scratch);  // borrowed buffers
    EXPECT_EQ(fresh.ids, reused.ids);
    ASSERT_EQ(fresh.candidate_probabilities.size(),
              reused.candidate_probabilities.size());
    for (size_t i = 0; i < fresh.candidate_probabilities.size(); ++i) {
      EXPECT_EQ(fresh.candidate_probabilities[i].bound.lower,
                reused.candidate_probabilities[i].bound.lower);
      EXPECT_EQ(fresh.candidate_probabilities[i].bound.upper,
                reused.candidate_probabilities[i].bound.upper);
    }
  }
  EXPECT_EQ(scratch.queries_served, points.size());
  // The candidate arena is engaged: distribution storage was recycled.
  EXPECT_GT(scratch.candidates.ApproxBytes(), 0u);
  EXPECT_FALSE(scratch.candidates.spare.empty());
}

// Acceptance pin: a 100+-query 2-D batch reaches a stable scratch footprint
// — replaying the whole batch allocates nothing new (no per-query growth).
TEST(Engine2DTest, HundredQuery2DBatchReachesStableScratchFootprint) {
  Dataset2D data = TestDataset2D(250, /*seed=*/29);
  QueryEngine engine(data, EngineOptions{1});  // one worker, one scratch
  QueryOptions opt = OptionsFor(Strategy::kVR);
  const std::vector<Point2> points =
      datagen::MakeQueryPoints2D(120, 0.0, 1000.0, /*seed=*/71);

  auto run_batch = [&] {
    std::vector<QueryRequest> batch;
    batch.reserve(points.size());
    for (Point2 p : points) batch.push_back(Point2DQuery{p, opt});
    std::vector<QueryResult> results = engine.ExecuteBatch(std::move(batch));
    ASSERT_EQ(results.size(), points.size());
  };

  // Warm up until the arena capacities reach the workload's high-water
  // mark (largest-capacity-first recycling converges in a few passes).
  size_t passes = 0;
  size_t high_water = 0;
  for (int pass = 0; pass < 6; ++pass) {
    run_batch();
    ++passes;
    const size_t bytes = engine.ScratchBytes();
    if (bytes == high_water) break;
    high_water = bytes;
  }
  EXPECT_GT(high_water, 0u);
  // Replaying the same 120 queries grows nothing.
  run_batch();
  EXPECT_EQ(engine.ScratchBytes(), high_water);
  run_batch();
  EXPECT_EQ(engine.ScratchBytes(), high_water);
  passes += 2;
  EXPECT_EQ(engine.ScratchQueriesServed(), passes * points.size());
}

}  // namespace
}  // namespace pverify
