#include "core/classifier.h"

#include <gtest/gtest.h>

namespace pverify {
namespace {

// The four scenarios of the paper's Fig. 4 (P = 0.8, Δ = 0.15).
TEST(ClassifierTest, PaperFig4Scenarios) {
  CpnnParams params{0.8, 0.15};
  // (a) [0.80, 0.96]: lower >= P → satisfy.
  EXPECT_EQ(Classify({0.80, 0.96}, params), Label::kSatisfy);
  // (b) [0.75, 0.85]: upper >= P and width 0.10 <= Δ → satisfy.
  EXPECT_EQ(Classify({0.75, 0.85}, params), Label::kSatisfy);
  // (c) [0.65, 0.78]: upper < P → fail.
  EXPECT_EQ(Classify({0.65, 0.78}, params), Label::kFail);
  // (d) [0.10, 0.85]: upper >= P but wide → unknown.
  EXPECT_EQ(Classify({0.10, 0.85}, params), Label::kUnknown);
  // (d) continued: once the lower bound is raised to 0.81 it satisfies.
  EXPECT_EQ(Classify({0.81, 0.85}, params), Label::kSatisfy);
}

TEST(ClassifierTest, BoundaryValues) {
  CpnnParams params{0.5, 0.0};
  EXPECT_EQ(Classify({0.5, 0.5}, params), Label::kSatisfy);  // p == P
  EXPECT_EQ(Classify({0.499, 0.499}, params), Label::kFail);
  EXPECT_EQ(Classify({0.4, 0.5}, params), Label::kUnknown);
  EXPECT_EQ(Classify({0.0, 1.0}, params), Label::kUnknown);
}

TEST(ClassifierTest, ZeroWidthBoundAlwaysDecided) {
  CpnnParams params{0.3, 0.0};
  for (double p : {0.0, 0.1, 0.29999, 0.3, 0.5, 1.0}) {
    Label l = Classify({p, p}, params);
    EXPECT_NE(l, Label::kUnknown) << "p=" << p;
    EXPECT_EQ(l, p >= 0.3 ? Label::kSatisfy : Label::kFail);
  }
}

TEST(ClassifierTest, ToleranceAdmitsBorderlineObjects) {
  // Paper intro example: P=0.30, Δ=0.02 admits D with p=0.29 when its bound
  // is [0.29, 0.31]-ish.
  CpnnParams params{0.30, 0.02};
  EXPECT_EQ(Classify({0.29, 0.305}, params), Label::kSatisfy);
  EXPECT_EQ(Classify({0.29, 0.298}, params), Label::kFail);  // u < P
}

TEST(ClassifierTest, ThresholdOneOnlyCertainAnswers) {
  CpnnParams params{1.0, 0.0};
  EXPECT_EQ(Classify({1.0, 1.0}, params), Label::kSatisfy);
  EXPECT_EQ(Classify({0.99, 0.999}, params), Label::kFail);
  EXPECT_EQ(Classify({0.99, 1.0}, params), Label::kUnknown);
}

TEST(ClassifyAllTest, OnlyRelabelsUnknown) {
  Dataset data;
  data.emplace_back(0, MakeUniformPdf(0.0, 1.0));
  data.emplace_back(1, MakeUniformPdf(0.5, 1.5));
  CandidateSet cands = CandidateSet::Build1D(data, {0, 1}, 0.0);
  CpnnParams params{0.3, 0.01};
  cands[0].bound = {0.6, 0.7};
  cands[0].label = Label::kFail;  // pre-labeled; must not flip
  cands[1].bound = {0.0, 0.2};
  size_t unknown = ClassifyAll(cands, params);
  EXPECT_EQ(unknown, 0u);
  EXPECT_EQ(cands[0].label, Label::kFail);
  EXPECT_EQ(cands[1].label, Label::kFail);
}

TEST(ProbabilityBoundTest, TightenOnly) {
  ProbabilityBound b;
  b.Tighten(0.2, 0.9);
  EXPECT_DOUBLE_EQ(b.lower, 0.2);
  EXPECT_DOUBLE_EQ(b.upper, 0.9);
  b.Tighten(0.1, 0.95);  // looser — no effect
  EXPECT_DOUBLE_EQ(b.lower, 0.2);
  EXPECT_DOUBLE_EQ(b.upper, 0.9);
  b.Tighten(0.5, 0.6);
  EXPECT_DOUBLE_EQ(b.lower, 0.5);
  EXPECT_DOUBLE_EQ(b.upper, 0.6);
}

TEST(ProbabilityBoundTest, CrossingSnapsToPoint) {
  ProbabilityBound b{0.5, 0.6};
  b.Tighten(0.65, 0.7);  // inconsistent inputs (numerical noise scenario)
  EXPECT_DOUBLE_EQ(b.lower, b.upper);
}

TEST(CpnnParamsTest, Validation) {
  EXPECT_NO_THROW((CpnnParams{0.5, 0.0}).Validate());
  EXPECT_NO_THROW((CpnnParams{1.0, 1.0}).Validate());
  EXPECT_THROW((CpnnParams{0.0, 0.0}).Validate(), std::logic_error);
  EXPECT_THROW((CpnnParams{1.1, 0.0}).Validate(), std::logic_error);
  EXPECT_THROW((CpnnParams{0.5, -0.1}).Validate(), std::logic_error);
  EXPECT_THROW((CpnnParams{0.5, 1.5}).Validate(), std::logic_error);
}

}  // namespace
}  // namespace pverify
