#include "core/basic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "uncertain/pdf.h"

namespace pverify {
namespace {

CandidateSet FromIntervals(const std::vector<std::pair<double, double>>& ivs,
                           double q) {
  Dataset data;
  std::vector<uint32_t> idx;
  for (size_t i = 0; i < ivs.size(); ++i) {
    data.emplace_back(static_cast<ObjectId>(i),
                      MakeUniformPdf(ivs[i].first, ivs[i].second));
    idx.push_back(static_cast<uint32_t>(i));
  }
  return CandidateSet::Build1D(data, idx, q);
}

TEST(BasicTest, TwoIdenticalObjectsSplitEvenly) {
  CandidateSet cands = FromIntervals({{1.0, 3.0}, {1.0, 3.0}}, 0.0);
  std::vector<double> p = ComputeExactProbabilities(cands, {});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0], 0.5, 1e-9);
  EXPECT_NEAR(p[1], 0.5, 1e-9);
}

TEST(BasicTest, ThreeIdenticalObjectsSplitEvenly) {
  CandidateSet cands =
      FromIntervals({{1.0, 3.0}, {1.0, 3.0}, {1.0, 3.0}}, 0.5);
  std::vector<double> p = ComputeExactProbabilities(cands, {});
  for (double v : p) EXPECT_NEAR(v, 1.0 / 3.0, 1e-9);
}

TEST(BasicTest, DisjointDistancesAreCertain) {
  // Object 0's distances lie wholly below object 1's.
  CandidateSet cands = FromIntervals({{1.0, 2.0}, {5.0, 9.0}}, 0.0);
  ASSERT_EQ(cands.size(), 1u);  // far object pruned by the near-point rule
  std::vector<double> p = ComputeExactProbabilities(cands, {});
  EXPECT_NEAR(p[0], 1.0, 1e-12);
}

TEST(BasicTest, HalfOverlapAnalytic) {
  // R_0 uniform on [0,2], R_1 uniform on [1,3] (q at 0).
  // p_1 = P(R_1 < R_0) = ∫_1^2 (1/2)·(2−r)/2 dr = 1/8.
  CandidateSet cands = FromIntervals({{0.0, 2.0}, {1.0, 3.0}}, 0.0);
  std::vector<double> p = ComputeExactProbabilities(cands, {});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
  EXPECT_NEAR(p[1], 1.0 / 8.0, 1e-9);
  EXPECT_NEAR(p[0], 7.0 / 8.0, 1e-9);
}

TEST(BasicTest, QueryInsideObjectDominates) {
  // Object 0 contains q: its distance starts at 0; object 1 starts at 2.
  // R_0 ∈ [0, 1.5], R_1 ∈ [2, 3]: object 1's near point exceeds f_min, so
  // the near-point rule prunes it (p_1 = 0) and p_0 = 1.
  CandidateSet cands = FromIntervals({{-1.0, 1.0}, {2.5, 3.5}}, 0.5);
  ASSERT_EQ(cands.size(), 1u);
  std::vector<double> p = ComputeExactProbabilities(cands, {});
  EXPECT_NEAR(p[0], 1.0, 1e-9);
}

TEST(BasicTest, ProbabilitiesSumToOne) {
  Rng rng(5);
  for (int t = 0; t < 10; ++t) {
    std::vector<std::pair<double, double>> ivs;
    int n = 2 + static_cast<int>(rng.UniformInt(0, 8));
    for (int i = 0; i < n; ++i) {
      double lo = rng.Uniform(0.0, 20.0);
      ivs.emplace_back(lo, lo + rng.Uniform(0.5, 10.0));
    }
    CandidateSet cands = FromIntervals(ivs, rng.Uniform(0.0, 25.0));
    if (cands.empty()) continue;
    std::vector<double> p = ComputeExactProbabilities(cands, {});
    double sum = 0.0;
    for (double v : p) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-6) << "t=" << t;
  }
}

TEST(BasicTest, GaussianPdfProbabilitiesSumToOne) {
  Dataset data;
  data.emplace_back(0, MakeGaussianPdf(0.0, 6.0, 100));
  data.emplace_back(1, MakeGaussianPdf(1.0, 7.0, 100));
  data.emplace_back(2, MakeGaussianPdf(2.0, 9.0, 100));
  CandidateSet cands = CandidateSet::Build1D(data, {0, 1, 2}, 3.0);
  std::vector<double> p = ComputeExactProbabilities(cands, {});
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(BasicTest, SingleCandidateIsCertain) {
  CandidateSet cands = FromIntervals({{3.0, 4.0}}, 0.0);
  std::vector<double> p = ComputeExactProbabilities(cands, {});
  EXPECT_NEAR(p[0], 1.0, 1e-12);
}

TEST(BasicTest, PerCandidateAccessorMatchesBatch) {
  CandidateSet cands =
      FromIntervals({{0.0, 4.0}, {1.0, 5.0}, {2.0, 6.0}}, 1.0);
  std::vector<double> batch = ComputeExactProbabilities(cands, {});
  for (size_t i = 0; i < cands.size(); ++i) {
    EXPECT_NEAR(ExactQualificationProbability(cands, i, {}), batch[i],
                1e-12);
  }
}

TEST(BasicTest, MixedPdfKindsSumToOne) {
  Dataset data;
  data.emplace_back(0, MakeUniformPdf(0.0, 5.0));
  data.emplace_back(1, MakeGaussianPdf(0.5, 6.0, 80));
  data.emplace_back(2, MakeTriangularPdf(1.0, 4.0, 32));
  data.emplace_back(3, MakeExponentialPdf(0.2, 7.0, 0.8, 40));
  CandidateSet cands = CandidateSet::Build1D(data, {0, 1, 2, 3}, 2.0);
  std::vector<double> p = ComputeExactProbabilities(cands, {});
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

}  // namespace
}  // namespace pverify
