// End-to-end tests exercising the full pipeline (filter → verify → refine)
// on realistic workloads, including the 2-D extension path.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/query.h"
#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "uncertain/distance2d.h"

namespace pverify {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::SyntheticConfig config;
    config.count = 5000;
    dataset_ = new Dataset(datagen::MakeSynthetic(config));
    executor_ = new CpnnExecutor(*dataset_);
  }
  static void TearDownTestSuite() {
    delete executor_;
    delete dataset_;
    executor_ = nullptr;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static CpnnExecutor* executor_;
};

Dataset* EndToEndTest::dataset_ = nullptr;
CpnnExecutor* EndToEndTest::executor_ = nullptr;

TEST_F(EndToEndTest, VrAnswersBracketedByExactSets) {
  auto queries = datagen::MakeQueryPoints(15, 0.0, 10000.0, 21);
  const double P = 0.3, tol = 0.02;
  for (double q : queries) {
    QueryOptions vr;
    vr.params = {P, tol};
    vr.strategy = Strategy::kVR;
    auto ans = executor_->Execute(q, vr);
    auto probs = executor_->ComputePnn(q);

    std::set<ObjectId> answer(ans.ids.begin(), ans.ids.end());
    for (const auto& [id, p] : probs) {
      if (p >= P + 1e-6) {
        EXPECT_TRUE(answer.count(id)) << "q=" << q << " id=" << id
                                      << " p=" << p;
      }
      if (p < P - tol - 1e-6) {
        EXPECT_FALSE(answer.count(id)) << "q=" << q << " id=" << id
                                       << " p=" << p;
      }
    }
  }
}

TEST_F(EndToEndTest, VerifiersReduceRefinementWork) {
  auto queries = datagen::MakeQueryPoints(15, 0.0, 10000.0, 22);
  QueryOptions vr;
  vr.params = {0.3, 0.01};
  vr.strategy = Strategy::kVR;
  QueryOptions refine = vr;
  refine.strategy = Strategy::kRefine;
  size_t vr_integrations = 0, refine_integrations = 0;
  for (double q : queries) {
    vr_integrations += executor_->Execute(q, vr).stats.subregion_integrations;
    refine_integrations +=
        executor_->Execute(q, refine).stats.subregion_integrations;
  }
  EXPECT_LT(vr_integrations, refine_integrations);
}

TEST_F(EndToEndTest, HighThresholdUsuallyFinishesAfterVerification) {
  auto queries = datagen::MakeQueryPoints(20, 0.0, 10000.0, 23);
  QueryOptions vr;
  vr.params = {0.7, 0.01};
  vr.strategy = Strategy::kVR;
  auto result = datagen::RunWorkload(*executor_, queries, vr);
  // Paper Fig. 11: for P > 0.3 essentially no probabilities need refining.
  EXPECT_GE(result.FractionFinishedAfterVerify(), 0.8);
}

TEST_F(EndToEndTest, AnswerCountShrinksWithThreshold) {
  auto queries = datagen::MakeQueryPoints(10, 0.0, 10000.0, 24);
  size_t prev = SIZE_MAX;
  for (double P : {0.1, 0.3, 0.6, 0.9}) {
    QueryOptions opt;
    opt.params = {P, 0.0};
    opt.strategy = Strategy::kVR;
    auto result = datagen::RunWorkload(*executor_, queries, opt);
    EXPECT_LE(result.answers, prev);
    prev = result.answers;
  }
}

TEST_F(EndToEndTest, GaussianDatasetPipeline) {
  datagen::SyntheticConfig config;
  config.count = 800;
  config.pdf = datagen::PdfKind::kGaussian;
  config.gaussian_bars = 100;  // trimmed for test speed
  Dataset data = datagen::MakeSynthetic(config);
  CpnnExecutor exec(data);
  auto queries = datagen::MakeQueryPoints(5, 0.0, 10000.0, 25);
  for (double q : queries) {
    QueryOptions vr;
    vr.params = {0.3, 0.01};
    vr.strategy = Strategy::kVR;
    auto ans = exec.Execute(q, vr);
    QueryOptions basic = vr;
    basic.strategy = Strategy::kBasic;
    basic.params.tolerance = 0.0;
    auto truth = exec.Execute(q, basic);
    // VR answers must contain every strict answer.
    std::set<ObjectId> got(ans.ids.begin(), ans.ids.end());
    for (ObjectId id : truth.ids) EXPECT_TRUE(got.count(id)) << "q=" << q;
  }
}

TEST(TwoDimensionalPipelineTest, EndToEnd) {
  Dataset2D data = datagen::MakeSynthetic2D({.count = 400, .seed = 3});
  PnnFilter2D filter(data);
  Point2 q{500.0, 500.0};
  FilterResult filtered = filter.Filter(q);
  ASSERT_FALSE(filtered.candidates.empty());

  std::vector<std::pair<ObjectId, DistanceDistribution>> dists;
  for (uint32_t idx : filtered.candidates) {
    dists.emplace_back(data[idx].id(),
                       MakeDistanceDistribution2D(data[idx], q, 48));
  }
  CandidateSet cands = CandidateSet::FromDistances(std::move(dists));
  ASSERT_FALSE(cands.empty());

  QueryOptions opt;
  opt.params = {0.2, 0.01};
  opt.strategy = Strategy::kVR;
  opt.report_probabilities = true;
  QueryAnswer ans = ExecuteOnCandidates(cands, opt);

  // Exact check against the Basic evaluator on the same candidates.
  std::vector<double> exact = ComputeExactProbabilities(cands, {});
  std::set<ObjectId> answer(ans.ids.begin(), ans.ids.end());
  for (size_t i = 0; i < cands.size(); ++i) {
    if (exact[i] >= 0.2 + 1e-6) EXPECT_TRUE(answer.count(cands[i].id));
    if (exact[i] < 0.2 - 0.01 - 1e-6) {
      EXPECT_FALSE(answer.count(cands[i].id));
    }
  }
}

TEST(TwoDimensionalPipelineTest, ProbabilitiesSumToOne) {
  Dataset2D data = datagen::MakeSynthetic2D({.count = 300, .seed = 8});
  PnnFilter2D filter(data);
  Point2 q{250.0, 700.0};
  FilterResult filtered = filter.Filter(q);
  std::vector<std::pair<ObjectId, DistanceDistribution>> dists;
  for (uint32_t idx : filtered.candidates) {
    dists.emplace_back(data[idx].id(),
                       MakeDistanceDistribution2D(data[idx], q, 64));
  }
  CandidateSet cands = CandidateSet::FromDistances(std::move(dists));
  std::vector<double> exact = ComputeExactProbabilities(cands, {});
  double sum = 0.0;
  for (double p : exact) sum += p;
  EXPECT_NEAR(sum, 1.0, 2e-2);  // radial-cdf discretization tolerance
}

}  // namespace
}  // namespace pverify
