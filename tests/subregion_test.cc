#include "core/subregion.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/candidate.h"
#include "uncertain/pdf.h"

namespace pverify {
namespace {

// Three uniform objects with staggered near points, query at 0 — the shape
// of the paper's Fig. 7 example.
CandidateSet ThreeStaggered() {
  Dataset data;
  data.emplace_back(0, MakeUniformPdf(1.0, 6.0));
  data.emplace_back(1, MakeUniformPdf(2.0, 7.0));
  data.emplace_back(2, MakeUniformPdf(3.0, 8.0));
  return CandidateSet::Build1D(data, {0, 1, 2}, 0.0);
}

TEST(SubregionTest, EndpointsSortedAndAnchored) {
  CandidateSet cands = ThreeStaggered();
  SubregionTable tbl = SubregionTable::Build(cands);
  const size_t m = tbl.num_subregions();
  ASSERT_GE(m, 2u);
  // e_0 = smallest near point, e_{M-1} = f_min, e_M = f_max.
  EXPECT_DOUBLE_EQ(tbl.endpoint(0), 1.0);
  EXPECT_DOUBLE_EQ(tbl.fmin(), 6.0);
  EXPECT_DOUBLE_EQ(tbl.fmax(), 8.0);
  for (size_t j = 0; j + 1 < m; ++j) {
    EXPECT_LT(tbl.endpoint(j), tbl.endpoint(j + 1));
  }
  // Interior end-points are exactly the near points here (uniform pdfs have
  // no internal change points): {1, 2, 3, 6}.
  EXPECT_EQ(m, 4u);  // [1,2], [2,3], [3,6], [6,8]
  EXPECT_DOUBLE_EQ(tbl.endpoint(1), 2.0);
  EXPECT_DOUBLE_EQ(tbl.endpoint(2), 3.0);
}

TEST(SubregionTest, SubregionProbabilitiesSumToOne) {
  CandidateSet cands = ThreeStaggered();
  SubregionTable tbl = SubregionTable::Build(cands);
  for (size_t i = 0; i < cands.size(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < tbl.num_subregions(); ++j) sum += tbl.s(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "candidate " << i;
  }
}

TEST(SubregionTest, KnownProbabilities) {
  CandidateSet cands = ThreeStaggered();
  SubregionTable tbl = SubregionTable::Build(cands);
  // Candidate 0 (uniform on [1,6], width 5): s over [1,2]=0.2, [2,3]=0.2,
  // [3,6]=0.6, [6,8]=0.
  EXPECT_NEAR(tbl.s(0, 0), 0.2, 1e-12);
  EXPECT_NEAR(tbl.s(0, 1), 0.2, 1e-12);
  EXPECT_NEAR(tbl.s(0, 2), 0.6, 1e-12);
  EXPECT_NEAR(tbl.s(0, 3), 0.0, 1e-12);
  // Candidate 2 (uniform on [3,8]): [3,6]=0.6, rightmost [6,8]=0.4.
  EXPECT_NEAR(tbl.s(2, 2), 0.6, 1e-12);
  EXPECT_NEAR(tbl.s(2, 3), 0.4, 1e-12);
}

TEST(SubregionTest, CountsAndCdfTable) {
  CandidateSet cands = ThreeStaggered();
  SubregionTable tbl = SubregionTable::Build(cands);
  EXPECT_EQ(tbl.count(0), 1);  // only candidate 0 in [1,2]
  EXPECT_EQ(tbl.count(1), 2);  // candidates 0,1 in [2,3]
  EXPECT_EQ(tbl.count(2), 3);  // all three in [3,6]
  for (size_t i = 0; i < cands.size(); ++i) {
    for (size_t j = 0; j <= tbl.num_subregions(); ++j) {
      EXPECT_NEAR(tbl.cdf(i, j), cands[i].dist.Cdf(tbl.endpoint(j)), 1e-12);
    }
  }
  // D at e_0 is 0 for everyone; Y_0 = 1.
  EXPECT_DOUBLE_EQ(tbl.Y(0), 1.0);
}

TEST(SubregionTest, YProductsMatchDirectComputation) {
  CandidateSet cands = ThreeStaggered();
  SubregionTable tbl = SubregionTable::Build(cands);
  for (size_t j = 0; j <= tbl.num_subregions(); ++j) {
    double y = 1.0;
    for (size_t k = 0; k < cands.size(); ++k) {
      y *= 1.0 - cands[k].dist.Cdf(tbl.endpoint(j));
    }
    EXPECT_NEAR(tbl.Y(j), y, 1e-12) << "j=" << j;
  }
}

TEST(SubregionTest, ProductExcludingMatchesDirect) {
  CandidateSet cands = ThreeStaggered();
  SubregionTable tbl = SubregionTable::Build(cands);
  for (size_t i = 0; i < cands.size(); ++i) {
    for (size_t j = 0; j <= tbl.num_subregions(); ++j) {
      double direct = 1.0;
      for (size_t k = 0; k < cands.size(); ++k) {
        if (k != i) direct *= 1.0 - cands[k].dist.Cdf(tbl.endpoint(j));
      }
      EXPECT_NEAR(tbl.ProductExcluding(i, j), direct, 1e-9)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(SubregionTest, PdfConstantWithinSubregions) {
  // The purity property Lemma 3 depends on: no candidate's distance pdf
  // changes value inside a subregion below f_min.
  Dataset data;
  data.emplace_back(0, MakeGaussianPdf(1.0, 6.0, 20));
  data.emplace_back(1, MakeHistogramPdf(2.0, 7.0, {1.0, 3.0, 2.0}));
  data.emplace_back(2, MakeUniformPdf(0.5, 8.0));
  CandidateSet cands = CandidateSet::Build1D(data, {0, 1, 2}, 1.2);
  SubregionTable tbl = SubregionTable::Build(cands);
  for (size_t j = 0; j + 1 < tbl.num_subregions(); ++j) {
    double a = tbl.endpoint(j);
    double b = tbl.endpoint(j + 1);
    for (size_t i = 0; i < cands.size(); ++i) {
      double v1 = cands[i].dist.Density(a + (b - a) * 0.25);
      double v2 = cands[i].dist.Density(a + (b - a) * 0.75);
      EXPECT_NEAR(v1, v2, 1e-9) << "i=" << i << " j=" << j;
    }
  }
}

TEST(SubregionTest, SingleCandidate) {
  Dataset data;
  data.emplace_back(0, MakeUniformPdf(3.0, 5.0));
  CandidateSet cands = CandidateSet::Build1D(data, {0}, 0.0);
  SubregionTable tbl = SubregionTable::Build(cands);
  // Rightmost subregion [f_min, f_max] is degenerate (f_min == f_max).
  EXPECT_DOUBLE_EQ(tbl.fmin(), tbl.fmax());
  EXPECT_NEAR(tbl.s(0, tbl.num_subregions() - 1), 0.0, 1e-12);
  double sum = 0.0;
  for (size_t j = 0; j < tbl.num_subregions(); ++j) sum += tbl.s(0, j);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(SubregionTest, GaussianCandidatesLargeM) {
  Dataset data;
  for (int i = 0; i < 5; ++i) {
    data.emplace_back(i, MakeGaussianPdf(10.0 + i, 16.0 + i, 50));
  }
  CandidateSet cands =
      CandidateSet::Build1D(data, {0, 1, 2, 3, 4}, 12.0);
  SubregionTable tbl = SubregionTable::Build(cands);
  EXPECT_GT(tbl.num_subregions(), 10u);
  for (size_t i = 0; i < cands.size(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < tbl.num_subregions(); ++j) sum += tbl.s(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(SubregionTest, RequiresNonEmptyCandidates) {
  CandidateSet empty;
  EXPECT_THROW(SubregionTable::Build(empty), std::logic_error);
}

}  // namespace
}  // namespace pverify
