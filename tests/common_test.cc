#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/timer.h"

namespace pverify {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(PV_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(PV_CHECK_MSG(true, "never shown"));
}

TEST(CheckTest, FailingCheckThrowsWithContext) {
  try {
    PV_CHECK_MSG(false, "the message");
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("common_test.cc"), std::string::npos);
  }
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    double va = a.Uniform(0, 1);
    EXPECT_DOUBLE_EQ(va, b.Uniform(0, 1));
    (void)c.Uniform(0, 1);
  }
  Rng a2(123), c2(124);
  EXPECT_NE(a2.Uniform(0, 1), c2.Uniform(0, 1));
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(1, 6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng rng(17);
  Rng f1 = rng.Fork(1);
  Rng f2 = rng.Fork(2);
  EXPECT_NE(f1.Uniform(0, 1), f2.Uniform(0, 1));
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x += std::sqrt(static_cast<double>(i));
  EXPECT_GT(t.ElapsedUs(), 0.0);
  double before = t.ElapsedMs();
  t.Restart();
  EXPECT_LE(t.ElapsedMs(), before + 1000.0);  // restarted
}

TEST(TimerTest, ScopedTimerAccumulates) {
  double sink = 0.0;
  {
    ScopedTimerMs scoped(&sink);
    volatile double x = 0.0;
    for (int i = 0; i < 10000; ++i) x += i;
  }
  EXPECT_GT(sink, 0.0);
  double first = sink;
  {
    ScopedTimerMs scoped(&sink);
  }
  EXPECT_GE(sink, first);  // accumulates, does not reset
}

TEST(ResultTableTest, RejectsBadRows) {
  ResultTable table({"a", "b"});
  EXPECT_THROW(table.AddRow(std::vector<std::string>{"only-one"}),
               std::logic_error);
  EXPECT_THROW(ResultTable({}), std::logic_error);
}

TEST(ResultTableTest, WritesCsvMirror) {
  std::string path = ::testing::TempDir() + "/pverify_table_test.csv";
  {
    ResultTable table({"x", "y"}, path);
    table.AddRow(std::vector<std::string>{"1", "2"});
    table.AddRow(std::vector<double>{3.5, 4.25}, 2);
    table.Print();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3.50,4.25");
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(0.12349, 3), "0.123");
  EXPECT_EQ(FormatDouble(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace pverify
