// Overload, deadline and shutdown behavior of the serving path, pinned at
// the wire level: the in-flight and admission caps answer kOverloaded
// without dropping the connection, deadlines fire both before submission
// and at writer dequeue, slow readers are disconnected within the write
// timeout while other connections keep serving, Stop() wins races against
// in-flight Submit futures (even ones that never resolve), and Drain()
// finishes in-flight work while rejecting new requests as kShuttingDown.
//
// Most tests use ManualEngine — an Engine whose Submit() parks requests
// until the test resolves them — so "the future is still pending" is a
// controlled state instead of a timing accident.
#include <atomic>
#include <chrono>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "engine/engine.h"
#include "engine/query_engine.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/frame.h"
#include "net/server.h"

namespace pverify {
namespace {

using Clock = std::chrono::steady_clock;

constexpr char kLoopback[] = "127.0.0.1";

Dataset TestDataset() { return datagen::MakeUniformScatter(200, 1000.0); }

QueryOptions TestOptions() {
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;
  return opt;
}

QueryRequest MakePoint(double q) {
  return QueryRequest(PointQuery{q, TestOptions()});
}

/// An Engine whose async path answers only when the test says so: Submit()
/// parks the request, ResolveAll() executes the backlog through a real
/// QueryEngine and fulfills the promises. This makes server states like
/// "N requests in flight" and "future never resolves" deterministic.
class ManualEngine : public Engine {
 public:
  explicit ManualEngine(Dataset data)
      : inner_(std::move(data), EngineOptions{}) {}

  size_t num_threads() const override { return 1; }

  QueryResult Execute(QueryRequest request) override {
    return inner_.Execute(std::move(request));
  }

  std::vector<QueryResult> ExecuteBatch(std::vector<QueryRequest> requests,
                                        EngineStats* stats) override {
    return inner_.ExecuteBatch(std::move(requests), stats);
  }

  std::future<QueryResult> Submit(QueryRequest request) override {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(PendingQuery{std::move(request), {}});
    return pending_.back().promise.get_future();
  }

  size_t PendingCount() {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
  }

  void ResolveAll() {
    std::list<PendingQuery> taken;
    {
      std::lock_guard<std::mutex> lock(mu_);
      taken.swap(pending_);
    }
    for (PendingQuery& p : taken) {
      try {
        p.promise.set_value(inner_.Execute(std::move(p.request)));
      } catch (...) {
        p.promise.set_exception(std::current_exception());
      }
    }
  }

  SubmitQueueStats SubmitStats() const override { return {}; }
  size_t ScratchQueriesServed() const override { return 0; }
  size_t ScratchBytes() const override { return 0; }

 private:
  QueryEngine inner_;
  std::mutex mu_;
  std::list<PendingQuery> pending_;  ///< list: stable promise addresses
};

/// Polls `cond` until true or ~5 s passed.
template <typename Cond>
bool WaitFor(Cond cond) {
  const Clock::time_point limit = Clock::now() + std::chrono::seconds(5);
  while (!cond()) {
    if (Clock::now() > limit) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

TEST(NetRobustnessTest, InflightCapAnswersOverloadedWithoutDropping) {
  ManualEngine engine(TestDataset());
  net::ServerOptions sopt;
  sopt.max_inflight_per_conn = 2;
  sopt.max_pending = 0;  // isolate the per-connection cap
  net::Server server(engine, sopt);
  server.Start();

  net::Client client = net::Client::Connect(kLoopback, server.port());
  uint64_t id1 = client.Send(MakePoint(100.0));
  uint64_t id2 = client.Send(MakePoint(200.0));
  ASSERT_TRUE(WaitFor([&] { return engine.PendingCount() == 2; }));

  // Third request over the cap: rejected by the reader immediately, while
  // both earlier futures are still unresolved (the writer is blocked).
  uint64_t id3 = client.Send(MakePoint(300.0));
  net::ServeResponse rejected = client.Await(id3);
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, net::ErrorCode::kOverloaded);
  EXPECT_EQ(engine.PendingCount(), 2u);

  // The connection survived: resolving the backlog delivers both answers.
  engine.ResolveAll();
  EXPECT_TRUE(client.Await(id1).ok);
  EXPECT_TRUE(client.Await(id2).ok);

  // Capacity freed: a fourth request goes through.
  uint64_t id4 = client.Send(MakePoint(400.0));
  ASSERT_TRUE(WaitFor([&] { return engine.PendingCount() == 1; }));
  engine.ResolveAll();
  EXPECT_TRUE(client.Await(id4).ok);

  EXPECT_EQ(server.stats().overload_rejections, 1u);
  server.Stop();
}

TEST(NetRobustnessTest, GlobalAdmissionLimitSpansConnections) {
  ManualEngine engine(TestDataset());
  net::ServerOptions sopt;
  sopt.max_inflight_per_conn = 0;  // isolate the global limit
  sopt.max_pending = 1;
  net::Server server(engine, sopt);
  server.Start();

  net::Client first = net::Client::Connect(kLoopback, server.port());
  uint64_t id1 = first.Send(MakePoint(100.0));
  ASSERT_TRUE(WaitFor([&] { return engine.PendingCount() == 1; }));

  // A DIFFERENT connection hits the global limit.
  net::Client second = net::Client::Connect(kLoopback, server.port());
  uint64_t id2 = second.Send(MakePoint(200.0));
  net::ServeResponse rejected = second.Await(id2);
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, net::ErrorCode::kOverloaded);

  engine.ResolveAll();
  EXPECT_TRUE(first.Await(id1).ok);
  EXPECT_EQ(server.stats().overload_rejections, 1u);
  server.Stop();
}

TEST(NetRobustnessTest, DeadlineExpiresWhileQueuedBehindStalledEngine) {
  ManualEngine engine(TestDataset());
  net::Server server(engine);
  server.Start();

  net::Client client = net::Client::Connect(kLoopback, server.port());
  const Clock::time_point sent = Clock::now();
  uint64_t id = client.Send(MakePoint(100.0), /*deadline_ms=*/80);
  net::ServeResponse response = client.Await(id);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - sent);

  // Never resolved by the engine: the writer abandons the future when the
  // budget runs out and answers the typed error, promptly.
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, net::ErrorCode::kDeadlineExceeded);
  EXPECT_GE(waited.count(), 70);
  EXPECT_LT(waited.count(), 3000);
  EXPECT_EQ(server.stats().deadline_expirations, 1u);

  // The connection still serves afterwards.
  uint64_t id2 = client.Send(MakePoint(200.0));
  ASSERT_TRUE(WaitFor([&] { return engine.PendingCount() == 2; }));
  engine.ResolveAll();
  EXPECT_TRUE(client.Await(id2).ok);
  server.Stop();
}

TEST(NetRobustnessTest, ExpiredDeadlineNeverReachesTheEngine) {
  ManualEngine engine(TestDataset());
  net::Server server(engine);
  server.Start();

  // Hand-built frame whose header arrives well before its body: the
  // deadline is anchored at the header, so by the time the request decodes
  // its 50 ms budget is gone and the server must answer without
  // Submitting.
  net::Socket sock = net::ConnectTcp(kLoopback, server.port());
  net::WireWriter body;
  net::RequestExtensions ext;
  ext.deadline_ms = 50;
  net::EncodeRequestExtensions(ext, body);
  net::EncodeRequest(MakePoint(100.0), body);

  uint8_t header[net::kFrameHeaderBytes];
  net::EncodeFrameHeader(net::MessageType::kRequest, /*request_id=*/7,
                         static_cast<uint32_t>(body.size()), header);
  sock.WriteAll(header, sizeof(header));
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  sock.WriteAll(body.bytes().data(), body.size());
  uint32_t crc = net::Crc32(header, sizeof(header));
  crc = net::Crc32(body.bytes().data(), body.size(), crc);
  uint8_t trailer[net::kFrameChecksumBytes];
  for (size_t i = 0; i < 4; ++i) {
    trailer[i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  sock.WriteAll(trailer, sizeof(trailer));

  net::ReceivedFrame frame;
  ASSERT_TRUE(net::ReceiveFrame(sock, net::kDefaultMaxBodyBytes, &frame));
  ASSERT_EQ(frame.header.type, net::MessageType::kError);
  EXPECT_EQ(frame.header.request_id, 7u);
  net::WireReader reader(frame.body.data(), frame.body.size());
  net::DecodedError err = net::DecodeErrorBody(frame.header.version, reader,
                                               net::kDefaultMaxBodyBytes);
  EXPECT_EQ(err.code, net::ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(engine.PendingCount(), 0u);
  EXPECT_EQ(server.stats().deadline_expirations, 1u);
  server.Stop();
}

TEST(NetRobustnessTest, SlowReaderIsDisconnectedOthersKeepServing) {
  Dataset data = TestDataset();
  QueryEngine engine(data, EngineOptions{});
  net::ServerOptions sopt;
  sopt.write_timeout_ms = 250;
  sopt.send_buffer_bytes = 4096;
  sopt.max_inflight_per_conn = 512;
  net::Server server(engine, sopt);
  server.Start();

  // The slow reader: shrunk receive buffer, pipelines requests, never
  // reads a byte back. Responses fill the two kernel buffers, the server's
  // writer blocks past the timeout and the connection is torn down.
  net::Socket slow = net::ConnectTcp(kLoopback, server.port(),
                                     /*recv_buffer_bytes=*/4096);
  const QueryOptions opt = TestOptions();
  bool send_failed = false;
  for (uint64_t id = 1; id <= 300 && !send_failed; ++id) {
    net::WireWriter body;
    net::EncodeRequestExtensions(net::RequestExtensions{}, body);
    net::EncodeRequest(QueryRequest(PointQuery{
                           static_cast<double>(id % 200) * 5.0, opt}),
                       body);
    try {
      net::SendFrameOn(slow, net::MessageType::kRequest, id, body);
    } catch (const net::WireError&) {
      send_failed = true;  // server already tore the connection down
    }
  }

  EXPECT_TRUE(WaitFor(
      [&] { return server.stats().slow_reader_disconnects >= 1; }));

  // A well-behaved connection is unaffected while (and after) the slow one
  // is being disconnected.
  net::Client good = net::Client::Connect(kLoopback, server.port());
  std::vector<net::ServeResponse> responses =
      good.Call([&] {
        std::vector<QueryRequest> requests;
        for (int i = 0; i < 5; ++i) {
          requests.push_back(MakePoint(100.0 * (i + 1)));
        }
        return requests;
      }());
  for (const net::ServeResponse& r : responses) EXPECT_TRUE(r.ok);
  server.Stop();
}

TEST(NetRobustnessTest, StopRacesInflightSubmitFutures) {
  Dataset data = TestDataset();
  QueryEngine engine(data, EngineOptions{});
  net::Server server(engine);
  server.Start();

  // Pipeline a burst, stop the server mid-flight. The contract is purely
  // "no hang, no crash": every client outcome (responses, typed errors,
  // connection loss) is legal.
  net::Client client = net::Client::Connect(kLoopback, server.port());
  std::thread pusher([&] {
    try {
      for (int i = 0; i < 50; ++i) client.Send(MakePoint(10.0 * (i + 1)));
    } catch (const net::WireError&) {
      // server went away mid-send; expected
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.Stop();
  pusher.join();
  try {
    for (;;) client.ReadNext();
  } catch (const net::WireError&) {
    // connection wound down — expected
  }
}

TEST(NetRobustnessTest, StopReturnsDespiteNeverResolvingFutures) {
  ManualEngine engine(TestDataset());
  net::Server server(engine);
  server.Start();

  net::Client client = net::Client::Connect(kLoopback, server.port());
  for (int i = 0; i < 5; ++i) client.Send(MakePoint(100.0 * (i + 1)));
  ASSERT_TRUE(WaitFor([&] { return engine.PendingCount() == 5; }));

  // The writer is parked on futures nobody will ever fulfill; Stop() must
  // still return promptly (the wait polls the stop flag).
  const Clock::time_point before = Clock::now();
  server.Stop();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - before)
                .count(),
            3000);
}

TEST(NetRobustnessTest, DrainFinishesInflightAndRejectsNew) {
  ManualEngine engine(TestDataset());
  net::Server server(engine);
  server.Start();

  net::Client client = net::Client::Connect(kLoopback, server.port());
  uint64_t id1 = client.Send(MakePoint(100.0));
  uint64_t id2 = client.Send(MakePoint(200.0));
  ASSERT_TRUE(WaitFor([&] { return engine.PendingCount() == 2; }));

  std::promise<bool> drained_promise;
  std::future<bool> drained = drained_promise.get_future();
  std::thread drainer(
      [&] { drained_promise.set_value(server.Drain(5000)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // While draining: existing connections may not add work.
  uint64_t id3 = client.Send(MakePoint(300.0));
  net::ServeResponse rejected = client.Await(id3);
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, net::ErrorCode::kShuttingDown);
  EXPECT_EQ(engine.PendingCount(), 2u);

  // In-flight work still completes and the drain reports success.
  engine.ResolveAll();
  EXPECT_TRUE(client.Await(id1).ok);
  EXPECT_TRUE(client.Await(id2).ok);
  ASSERT_EQ(drained.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  EXPECT_TRUE(drained.get());
  drainer.join();
  EXPECT_GE(server.stats().shutdown_rejections, 1u);
  server.Stop();
}

TEST(NetRobustnessTest, DrainGivesUpAtItsDeadline) {
  ManualEngine engine(TestDataset());
  net::Server server(engine);
  server.Start();

  net::Client client = net::Client::Connect(kLoopback, server.port());
  client.Send(MakePoint(100.0));
  ASSERT_TRUE(WaitFor([&] { return engine.PendingCount() == 1; }));

  EXPECT_FALSE(server.Drain(150));  // request never resolves
  server.Stop();
}

TEST(NetRobustnessTest, OversizedFrameAnsweredTooLargeThenClosed) {
  ManualEngine engine(TestDataset());
  net::Server server(engine);
  server.set_max_body_bytes(1024);
  server.Start();

  net::Socket sock = net::ConnectTcp(kLoopback, server.port());
  uint8_t header[net::kFrameHeaderBytes];
  net::EncodeFrameHeader(net::MessageType::kRequest, /*request_id=*/1,
                         /*body_bytes=*/2048, header);
  sock.WriteAll(header, sizeof(header));

  net::ReceivedFrame frame;
  ASSERT_TRUE(net::ReceiveFrame(sock, net::kDefaultMaxBodyBytes, &frame));
  ASSERT_EQ(frame.header.type, net::MessageType::kError);
  net::WireReader reader(frame.body.data(), frame.body.size());
  net::DecodedError err = net::DecodeErrorBody(frame.header.version, reader,
                                               net::kDefaultMaxBodyBytes);
  EXPECT_EQ(err.code, net::ErrorCode::kTooLarge);

  // And then the connection is closed — the cap violation is fatal to the
  // connection (the stream position is unrecoverable), not to the server.
  uint8_t byte = 0;
  EXPECT_FALSE(sock.ReadExact(&byte, 1));
  EXPECT_EQ(engine.PendingCount(), 0u);
  server.Stop();
}

TEST(NetRobustnessTest, Version1FramesStillRoundTrip) {
  Dataset data = TestDataset();
  QueryEngine local(data, EngineOptions{});
  QueryEngine served(std::move(data), EngineOptions{});
  net::Server server(served);
  server.Start();

  // A v1 peer: no extension block, no checksum trailer. The server must
  // decode the request and answer in kind — a v1 response frame.
  net::Socket sock = net::ConnectTcp(kLoopback, server.port());
  net::WireWriter body;
  net::EncodeRequest(MakePoint(250.0), body);
  net::SendFrameOn(sock, net::MessageType::kRequest, /*request_id=*/3, body,
                   /*version=*/1);

  net::ReceivedFrame frame;
  ASSERT_TRUE(net::ReceiveFrame(sock, net::kDefaultMaxBodyBytes, &frame));
  EXPECT_EQ(frame.header.version, 1u);
  ASSERT_EQ(frame.header.type, net::MessageType::kResponse);
  EXPECT_EQ(frame.header.request_id, 3u);
  net::WireReader reader(frame.body.data(), frame.body.size());
  QueryResult remote = net::DecodeResult(reader);
  reader.ExpectEnd();

  QueryResult expected = local.Execute(MakePoint(250.0));
  EXPECT_EQ(expected.ids, remote.ids);
  server.Stop();
}

}  // namespace
}  // namespace pverify
