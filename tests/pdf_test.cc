#include "uncertain/pdf.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pverify {
namespace {

TEST(UniformPdfTest, Basics) {
  Pdf pdf = MakeUniformPdf(2.0, 6.0);
  EXPECT_DOUBLE_EQ(pdf.lo(), 2.0);
  EXPECT_DOUBLE_EQ(pdf.hi(), 6.0);
  EXPECT_DOUBLE_EQ(pdf.Density(4.0), 0.25);
  EXPECT_DOUBLE_EQ(pdf.Density(1.0), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(pdf.Cdf(6.0), 1.0);
  EXPECT_NEAR(pdf.Mean(), 4.0, 1e-12);
  EXPECT_NEAR(pdf.Variance(), 16.0 / 12.0, 1e-12);
  EXPECT_EQ(pdf.num_bars(), 1u);
  EXPECT_THROW(MakeUniformPdf(3.0, 3.0), std::logic_error);
}

TEST(GaussianPdfTest, PaperDefaults) {
  // Paper §V-B.5: 300 bars, mean at center, stddev = width/6.
  Pdf pdf = MakeGaussianPdf(0.0, 60.0);
  EXPECT_EQ(pdf.num_bars(), 300u);
  EXPECT_NEAR(pdf.ProbIn(0.0, 60.0), 1.0, 1e-12);
  EXPECT_NEAR(pdf.Mean(), 30.0, 1e-6);
  // ±3σ truncation keeps ~99.7% of the mass inside ±σ·z windows; compare the
  // center ±1σ mass against the truncated analytic value.
  double z = StandardNormalCdf(1.0) - StandardNormalCdf(-1.0);
  double truncation = StandardNormalCdf(3.0) - StandardNormalCdf(-3.0);
  EXPECT_NEAR(pdf.ProbIn(20.0, 40.0), z / truncation, 1e-3);
}

TEST(GaussianPdfTest, ExplicitParameters) {
  Pdf pdf = MakeGaussianPdf(-10.0, 10.0, 2.0, 3.0, 500);
  EXPECT_NEAR(pdf.ProbIn(-10.0, 10.0), 1.0, 1e-12);
  // Mode near the mean.
  EXPECT_GT(pdf.Density(2.0), pdf.Density(-4.0));
  EXPECT_GT(pdf.Density(2.0), pdf.Density(8.0));
  // Truncated mean ≈ mean when the window is wide.
  EXPECT_NEAR(pdf.Mean(), 2.0, 0.05);
}

TEST(GaussianPdfTest, Validation) {
  EXPECT_THROW(MakeGaussianPdf(1.0, 0.0), std::logic_error);
  EXPECT_THROW(MakeGaussianPdf(0.0, 1.0, 0.5, -1.0, 10), std::logic_error);
  EXPECT_THROW(MakeGaussianPdf(0.0, 1.0, 0.5, 1.0, 0), std::logic_error);
}

TEST(HistogramPdfTest, WeightsAreNormalized) {
  Pdf pdf = MakeHistogramPdf(0.0, 4.0, {1.0, 3.0, 3.0, 1.0});
  EXPECT_NEAR(pdf.ProbIn(0.0, 4.0), 1.0, 1e-12);
  EXPECT_NEAR(pdf.ProbIn(0.0, 1.0), 1.0 / 8.0, 1e-12);
  EXPECT_NEAR(pdf.ProbIn(1.0, 2.0), 3.0 / 8.0, 1e-12);
  EXPECT_NEAR(pdf.Mean(), 2.0, 1e-12);  // symmetric
}

TEST(HistogramPdfTest, ExplicitBreaks) {
  Pdf pdf = MakeHistogramPdf({0.0, 1.0, 10.0}, {9.0, 1.0});
  // Bar masses: 9·1 and 1·9 → equal halves.
  EXPECT_NEAR(pdf.Cdf(1.0), 0.5, 1e-12);
  EXPECT_NEAR(pdf.Quantile(0.5), 1.0, 1e-12);
}

TEST(HistogramPdfTest, ZeroWeightBarsAllowed) {
  Pdf pdf = MakeHistogramPdf(0.0, 3.0, {1.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(pdf.Density(1.5), 0.0);
  EXPECT_NEAR(pdf.ProbIn(0.0, 3.0), 1.0, 1e-12);
}

TEST(TriangularPdfTest, ShapeAndMass) {
  Pdf pdf = MakeTriangularPdf(0.0, 2.0, 128);
  EXPECT_NEAR(pdf.ProbIn(0.0, 2.0), 1.0, 1e-12);
  EXPECT_NEAR(pdf.Mean(), 1.0, 1e-3);
  EXPECT_GT(pdf.Density(1.0), pdf.Density(0.2));
  // Triangular cdf at the midpoint is 1/2.
  EXPECT_NEAR(pdf.Cdf(1.0), 0.5, 1e-2);
}

TEST(ExponentialPdfTest, ShapeAndMass) {
  Pdf pdf = MakeExponentialPdf(5.0, 15.0, 0.5, 256);
  EXPECT_NEAR(pdf.ProbIn(5.0, 15.0), 1.0, 1e-12);
  EXPECT_GT(pdf.Density(5.5), pdf.Density(14.5));
  // Renormalized truncated exponential cdf at lo+2: (1−e^{−1})/(1−e^{−5}).
  double expect = (1.0 - std::exp(-1.0)) / (1.0 - std::exp(-5.0));
  EXPECT_NEAR(pdf.Cdf(7.0), expect, 2e-3);
}

TEST(SamplePdfTest, RecoverUnderlyingDistribution) {
  // Samples from a known uniform: the estimated pdf should be flat-ish and
  // span the sample range.
  Rng rng(41);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.Uniform(3.0, 9.0));
  Pdf pdf = MakePdfFromSamples(samples, 12);
  EXPECT_NEAR(pdf.lo(), 3.0, 0.01);
  EXPECT_NEAR(pdf.hi(), 9.0, 0.01);
  EXPECT_NEAR(pdf.Mean(), 6.0, 0.05);
  EXPECT_NEAR(pdf.ProbIn(3.0, 6.0), 0.5, 0.02);
}

TEST(SamplePdfTest, SkewedSamples) {
  Rng rng(43);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(std::min(10.0, rng.Exponential(0.7)));
  }
  Pdf pdf = MakePdfFromSamples(samples, 16);
  // Mass concentrated near the low end.
  EXPECT_GT(pdf.Cdf(2.0), 0.6);
}

TEST(SamplePdfTest, Validation) {
  EXPECT_THROW(MakePdfFromSamples({1.0}), std::logic_error);
  EXPECT_THROW(MakePdfFromSamples({2.0, 2.0, 2.0}), std::logic_error);
  EXPECT_NO_THROW(MakePdfFromSamples({1.0, 2.0}));
}

TEST(PdfQuantileTest, RoundTrip) {
  Pdf pdf = MakeHistogramPdf(0.0, 1.0, {2.0, 1.0, 4.0, 3.0});
  for (double p : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    EXPECT_NEAR(pdf.Cdf(pdf.Quantile(p)), p, 1e-10);
  }
}

// Moments of every factory shape integrate consistently with quadrature.
class PdfMomentTest : public ::testing::TestWithParam<int> {};

TEST_P(PdfMomentTest, MeanMatchesNumericIntegration) {
  int which = GetParam();
  Pdf pdf = [&which]() {
    switch (which) {
      case 0:
        return MakeUniformPdf(1.0, 4.0);
      case 1:
        return MakeGaussianPdf(1.0, 4.0, 100);
      case 2:
        return MakeTriangularPdf(1.0, 4.0, 64);
      case 3:
        return MakeExponentialPdf(1.0, 4.0, 1.0, 64);
      default:
        return MakeHistogramPdf(1.0, 4.0, {1.0, 5.0, 2.0});
    }
  }();
  // Riemann-sum mean over the bars must equal the closed-form Mean().
  const auto& sf = pdf.density();
  double mean = 0.0;
  for (size_t i = 0; i < sf.num_pieces(); ++i) {
    double a = sf.breaks()[i];
    double b = sf.breaks()[i + 1];
    mean += sf.values()[i] * 0.5 * (a + b) * (b - a);
  }
  EXPECT_NEAR(pdf.Mean(), mean, 1e-9);
  EXPECT_GE(pdf.Variance(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllShapes, PdfMomentTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace pverify
