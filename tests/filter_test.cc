#include "spatial/filter.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/synthetic.h"

namespace pverify {
namespace {

Dataset SmallDataset() {
  Dataset data;
  data.emplace_back(0, MakeUniformPdf(0.0, 2.0));
  data.emplace_back(1, MakeUniformPdf(1.0, 3.0));
  data.emplace_back(2, MakeUniformPdf(10.0, 12.0));
  data.emplace_back(3, MakeUniformPdf(4.0, 5.0));
  return data;
}

TEST(FilterTest, FminIsSmallestFarPoint) {
  Dataset data = SmallDataset();
  PnnFilter filter(data);
  FilterResult r = filter.Filter(1.5);
  // Far points from q=1.5: obj0 max(1.5,0.5)=1.5; obj1 max(0.5,1.5)=1.5;
  // obj2 10.5; obj3 3.5. f_min = 1.5.
  EXPECT_NEAR(r.fmin, 1.5, 1e-12);
  // Candidates: mindist <= 1.5 → obj0 (0), obj1 (0), obj3 (2.5 > 1.5 no),
  // obj2 (8.5 no).
  EXPECT_EQ(r.candidates, (std::vector<uint32_t>{0, 1}));
}

TEST(FilterTest, DistantObjectPruned) {
  Dataset data = SmallDataset();
  PnnFilter filter(data);
  FilterResult r = filter.Filter(11.0);
  // q=11: obj2 far = max(1,1) = 1 → fmin=1; only obj2 within distance 1.
  EXPECT_NEAR(r.fmin, 1.0, 1e-12);
  EXPECT_EQ(r.candidates, (std::vector<uint32_t>{2}));
}

TEST(FilterTest, MatchesScanOnSyntheticData) {
  Dataset data = datagen::MakeUniformScatter(3000, 1000.0, 2.0, 5);
  PnnFilter filter(data);
  Rng rng(17);
  for (int t = 0; t < 30; ++t) {
    double q = rng.Uniform(-50.0, 1050.0);
    FilterResult via_tree = filter.Filter(q);
    FilterResult via_scan = FilterByScan(data, q);
    EXPECT_NEAR(via_tree.fmin, via_scan.fmin, 1e-9) << "q=" << q;
    EXPECT_EQ(std::set<uint32_t>(via_tree.candidates.begin(),
                                 via_tree.candidates.end()),
              std::set<uint32_t>(via_scan.candidates.begin(),
                                 via_scan.candidates.end()))
        << "q=" << q;
  }
}

TEST(FilterTest, CandidateSetNeverEmpty) {
  // The object realizing f_min always survives its own bound.
  Dataset data = datagen::MakeUniformScatter(500, 100.0, 1.0, 3);
  PnnFilter filter(data);
  Rng rng(23);
  for (int t = 0; t < 20; ++t) {
    FilterResult r = filter.Filter(rng.Uniform(0.0, 100.0));
    EXPECT_GE(r.candidates.size(), 1u);
  }
}

TEST(FilterTest, SingleObjectDataset) {
  Dataset data;
  data.emplace_back(42, MakeUniformPdf(5.0, 7.0));
  PnnFilter filter(data);
  FilterResult r = filter.Filter(0.0);
  EXPECT_NEAR(r.fmin, 7.0, 1e-12);
  EXPECT_EQ(r.candidates, (std::vector<uint32_t>{0}));
}

TEST(Filter2DTest, MatchesScan) {
  Dataset2D data = datagen::MakeSynthetic2D({.count = 800, .seed = 9});
  PnnFilter2D filter(data);
  Rng rng(31);
  for (int t = 0; t < 15; ++t) {
    Point2 q{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    FilterResult via_tree = filter.Filter(q);
    FilterResult via_scan = FilterByScan2D(data, q);
    EXPECT_NEAR(via_tree.fmin, via_scan.fmin, 1e-9);
    EXPECT_EQ(std::set<uint32_t>(via_tree.candidates.begin(),
                                 via_tree.candidates.end()),
              std::set<uint32_t>(via_scan.candidates.begin(),
                                 via_scan.candidates.end()));
  }
}

TEST(Filter2DTest, CircleFarPointTighterThanMbr) {
  // A large circle's MBR corner distance exceeds its true far point; the 2-D
  // filter must use the exact region distance.
  Dataset2D data;
  data.emplace_back(0, Circle2{0.0, 0.0, 10.0});
  data.emplace_back(1, Rect2{30.0, 30.0, 31.0, 31.0});
  PnnFilter2D filter(data);
  FilterResult r = filter.Filter({0.0, 0.0});
  EXPECT_NEAR(r.fmin, 10.0, 1e-9);  // not 10·√2
  EXPECT_EQ(r.candidates, (std::vector<uint32_t>{0}));
}

}  // namespace
}  // namespace pverify
