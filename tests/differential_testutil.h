// Differential-testing harness: one helper that runs a randomized
// mixed-kind request stream across a set of Engine backends and asserts
// every backend answers exactly like a reference engine — labels/ids
// bit-identical, probability bounds within a configurable ULP budget
// (default 0, i.e. bit-identical) via tests/ulp_testutil.h.
//
// The Engine contract says answers must not depend on the implementation:
// unsharded vs. sharded 1/2/4-way, hash vs. range policy, global-queue vs.
// work-stealing pool, cached vs. uncached — only scheduling may differ.
// This header is that contract as a reusable assertion. Tests build a
// stream of request FACTORIES (requests are move-only, so each engine and
// each round rebuilds its own), hand the harness a reference and a list of
// named variants, and get per-request failure messages naming the variant,
// round and stream position.
#ifndef PVERIFY_TESTS_DIFFERENTIAL_TESTUTIL_H_
#define PVERIFY_TESTS_DIFFERENTIAL_TESTUTIL_H_

#include <algorithm>
#include <functional>
#include <future>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "ulp_testutil.h"

namespace pverify {
namespace testutil {

/// One backend under differential test, with the label used in failures.
struct NamedEngine {
  std::string name;
  Engine* engine = nullptr;
};

/// Rebuilds one request of the stream. Factories are invoked once per
/// engine per round (plus once for the reference), so consumed payloads
/// (CandidatesQuery) must be rebuilt inside the lambda, not captured.
using RequestFactory = std::function<QueryRequest()>;

struct DifferentialConfig {
  /// Times each engine replays the whole stream. Rounds past the first
  /// exercise memoized paths (a CachingEngine serves them from the cache);
  /// every round must still match the reference exactly.
  int rounds = 1;
  /// Also push each round's stream through Submit() and check the futures,
  /// covering the coalescing dispatcher path.
  bool exercise_submit = false;
  /// Probability-bound tolerance in units in the last place. 0 demands
  /// bit-identical bounds (the default contract); SIMD-reassociated
  /// configurations may pass a small budget.
  uint64_t max_ulps = 0;
};

/// Asserts `got` is equivalent to `expected`: ids and entry labels
/// bit-identical, every probability bound within `max_ulps`.
inline void ExpectEquivalentResult(const QueryResult& expected,
                                   const QueryResult& got, uint64_t max_ulps,
                                   const std::string& what) {
  EXPECT_EQ(expected.ids, got.ids) << what;
  ASSERT_EQ(expected.candidate_probabilities.size(),
            got.candidate_probabilities.size())
      << what;
  for (size_t i = 0; i < expected.candidate_probabilities.size(); ++i) {
    const AnswerEntry& e = expected.candidate_probabilities[i];
    const AnswerEntry& g = got.candidate_probabilities[i];
    EXPECT_EQ(e.id, g.id) << what << " entry " << i;
    EXPECT_ULP_NEAR(e.bound.lower, g.bound.lower, max_ulps)
        << " (" << what << " entry " << i << ")";
    EXPECT_ULP_NEAR(e.bound.upper, g.bound.upper, max_ulps)
        << " (" << what << " entry " << i << ")";
  }
  ASSERT_EQ(expected.knn.has_value(), got.knn.has_value()) << what;
  if (expected.knn.has_value()) {
    EXPECT_EQ(expected.knn->ids, got.knn->ids) << what;
    ASSERT_EQ(expected.knn->bounds.size(), got.knn->bounds.size()) << what;
    for (size_t i = 0; i < expected.knn->bounds.size(); ++i) {
      EXPECT_ULP_NEAR(expected.knn->bounds[i].lower, got.knn->bounds[i].lower,
                      max_ulps)
          << " (" << what << " knn bound " << i << ")";
      EXPECT_ULP_NEAR(expected.knn->bounds[i].upper, got.knn->bounds[i].upper,
                      max_ulps)
          << " (" << what << " knn bound " << i << ")";
    }
  }
}

/// Builds a randomized mixed-kind stream: point, min, max and k-NN requests
/// over `points` in a seed-shuffled order, so batches interleave kinds the
/// way production traffic does. Candidate-set requests carry consumed
/// payloads and are the caller's job (append factories that rebuild them).
inline std::vector<RequestFactory> MakeMixedKindStream(
    const std::vector<double>& points, const QueryOptions& opt,
    uint64_t seed = 17) {
  std::vector<RequestFactory> stream;
  for (double q : points) {
    stream.push_back([q, opt] { return QueryRequest(PointQuery{q, opt}); });
    stream.push_back(
        [q, opt] { return QueryRequest(KnnQuery{q, 3, opt}); });
  }
  stream.push_back([opt] { return QueryRequest(MinQuery{opt}); });
  stream.push_back([opt] { return QueryRequest(MaxQuery{opt}); });
  std::mt19937_64 rng(seed);
  std::shuffle(stream.begin(), stream.end(), rng);
  return stream;
}

/// The harness. Computes ground truth by running the stream serially
/// through `reference.Execute`, then replays it `config.rounds` times
/// through every engine's ExecuteBatch (and optionally Submit), asserting
/// every answer equivalent to the reference.
inline void RunDifferentialStream(Engine& reference,
                                  const std::vector<NamedEngine>& engines,
                                  const std::vector<RequestFactory>& stream,
                                  const DifferentialConfig& config = {}) {
  std::vector<QueryResult> expected;
  expected.reserve(stream.size());
  for (const RequestFactory& make : stream) {
    expected.push_back(reference.Execute(make()));
  }

  for (const NamedEngine& named : engines) {
    ASSERT_NE(named.engine, nullptr) << named.name;
    for (int round = 0; round < config.rounds; ++round) {
      const std::string where =
          named.name + " round " + std::to_string(round);
      std::vector<QueryRequest> batch;
      batch.reserve(stream.size());
      for (const RequestFactory& make : stream) batch.push_back(make());
      std::vector<QueryResult> got =
          named.engine->ExecuteBatch(std::move(batch));
      ASSERT_EQ(expected.size(), got.size()) << where;
      for (size_t i = 0; i < expected.size(); ++i) {
        ExpectEquivalentResult(expected[i], got[i], config.max_ulps,
                               where + " request " + std::to_string(i));
      }

      if (config.exercise_submit) {
        std::vector<std::future<QueryResult>> futures;
        futures.reserve(stream.size());
        for (const RequestFactory& make : stream) {
          futures.push_back(named.engine->Submit(make()));
        }
        for (size_t i = 0; i < expected.size(); ++i) {
          ExpectEquivalentResult(expected[i], futures[i].get(),
                                 config.max_ulps,
                                 where + " submit " + std::to_string(i));
        }
      }
    }
  }
}

}  // namespace testutil
}  // namespace pverify

#endif  // PVERIFY_TESTS_DIFFERENTIAL_TESTUTIL_H_
