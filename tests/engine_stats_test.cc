// Property tests for EngineStats aggregation and merging: per-part phase
// totals and verifier-stage totals must sum exactly into the merged
// aggregate, stage order follows first appearance, and the derived rates
// (QueriesPerSec, AvgQueryMs, PhaseFraction) stay finite on empty inputs.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "engine/query_engine.h"

namespace pverify {
namespace {

const char* const kStageNames[] = {"RS", "L-SR", "U-SR"};

// A randomized per-shard aggregate, as the sharded engine would produce.
EngineStats RandomPart(Rng& rng) {
  EngineStats part;
  part.queries = static_cast<size_t>(rng.UniformInt(0, 40));
  part.threads = static_cast<size_t>(rng.UniformInt(1, 8));
  part.wall_ms = rng.Uniform(0.0, 50.0);
  part.totals.filter_ms = rng.Uniform(0.0, 5.0);
  part.totals.init_ms = rng.Uniform(0.0, 5.0);
  part.totals.verify_ms = rng.Uniform(0.0, 5.0);
  part.totals.refine_ms = rng.Uniform(0.0, 5.0);
  part.totals.total_ms = part.totals.filter_ms + part.totals.init_ms +
                         part.totals.verify_ms + part.totals.refine_ms;
  part.totals.dataset_size = static_cast<size_t>(rng.UniformInt(0, 1000));
  part.totals.candidates = static_cast<size_t>(rng.UniformInt(0, 200));
  part.totals.num_subregions = static_cast<size_t>(rng.UniformInt(0, 50));
  part.totals.refined_candidates = static_cast<size_t>(rng.UniformInt(0, 20));
  part.totals.subregion_integrations =
      static_cast<size_t>(rng.UniformInt(0, 100));
  part.totals.queries_finished_after_verify =
      static_cast<size_t>(rng.UniformInt(0, 10));
  // A random subset of stages, in chain order.
  for (const char* name : kStageNames) {
    if (!rng.Bernoulli(0.7)) continue;
    EngineStats::StageTotal stage;
    stage.name = name;
    stage.ms = rng.Uniform(0.0, 3.0);
    stage.runs = static_cast<size_t>(rng.UniformInt(1, 30));
    part.verifier_stages.push_back(stage);
  }
  // Cache telemetry, as a CachingEngine batch delta would carry.
  part.cache.hits = static_cast<size_t>(rng.UniformInt(0, 30));
  part.cache.misses = static_cast<size_t>(rng.UniformInt(0, 30));
  part.cache.rechecks = static_cast<size_t>(rng.UniformInt(0, 10));
  part.cache.bypasses = static_cast<size_t>(rng.UniformInt(0, 10));
  part.cache.evictions = static_cast<size_t>(rng.UniformInt(0, 10));
  part.cache.invalidations = static_cast<size_t>(rng.UniformInt(0, 10));
  part.cache.entries = static_cast<size_t>(rng.UniformInt(0, 100));
  part.cache.bytes = static_cast<size_t>(rng.UniformInt(0, 1 << 20));
  return part;
}

double SumStageMs(const std::vector<EngineStats>& parts,
                  const std::string& name) {
  double ms = 0.0;
  for (const EngineStats& part : parts) {
    for (const EngineStats::StageTotal& stage : part.verifier_stages) {
      if (stage.name == name) ms += stage.ms;
    }
  }
  return ms;
}

size_t SumStageRuns(const std::vector<EngineStats>& parts,
                    const std::string& name) {
  size_t runs = 0;
  for (const EngineStats& part : parts) {
    for (const EngineStats::StageTotal& stage : part.verifier_stages) {
      if (stage.name == name) runs += stage.runs;
    }
  }
  return runs;
}

TEST(EngineStatsTest, MergeSumsPhaseAndStageTotalsExactly) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<EngineStats> parts;
    const size_t num_parts = static_cast<size_t>(rng.UniformInt(1, 6));
    for (size_t i = 0; i < num_parts; ++i) parts.push_back(RandomPart(rng));

    EngineStats merged = MergeEngineStats(parts);

    // Counters and phase totals sum exactly (same accumulation order).
    size_t queries = 0;
    size_t threads = 0;
    double wall = 0.0;
    double filter = 0.0, init = 0.0, verify = 0.0, refine = 0.0, total = 0.0;
    size_t finished = 0;
    for (const EngineStats& part : parts) {
      queries += part.queries;
      threads = std::max(threads, part.threads);
      wall = std::max(wall, part.wall_ms);
      filter += part.totals.filter_ms;
      init += part.totals.init_ms;
      verify += part.totals.verify_ms;
      refine += part.totals.refine_ms;
      total += part.totals.total_ms;
      finished += part.totals.queries_finished_after_verify;
    }
    EXPECT_EQ(merged.queries, queries);
    EXPECT_EQ(merged.threads, threads);
    EXPECT_EQ(merged.wall_ms, wall);
    EXPECT_EQ(merged.totals.filter_ms, filter);
    EXPECT_EQ(merged.totals.init_ms, init);
    EXPECT_EQ(merged.totals.verify_ms, verify);
    EXPECT_EQ(merged.totals.refine_ms, refine);
    EXPECT_EQ(merged.totals.total_ms, total);
    EXPECT_EQ(merged.totals.queries_finished_after_verify, finished);

    // Stage totals: one slot per distinct name, sums exact.
    for (const char* name : kStageNames) {
      const size_t want_runs = SumStageRuns(parts, name);
      size_t slots = 0;
      for (const EngineStats::StageTotal& stage : merged.verifier_stages) {
        if (stage.name == name) {
          ++slots;
          EXPECT_EQ(stage.ms, SumStageMs(parts, name)) << name;
          EXPECT_EQ(stage.runs, want_runs) << name;
        }
      }
      EXPECT_EQ(slots, want_runs > 0 ? 1u : 0u) << name;
    }

    // Cache counters sum exactly; the entries/bytes gauges take the max
    // (per-part gauges snapshot the same cache, not disjoint shares).
    size_t hits = 0, misses = 0, rechecks = 0, bypasses = 0;
    size_t evictions = 0, invalidations = 0, entries = 0, bytes = 0;
    for (const EngineStats& part : parts) {
      hits += part.cache.hits;
      misses += part.cache.misses;
      rechecks += part.cache.rechecks;
      bypasses += part.cache.bypasses;
      evictions += part.cache.evictions;
      invalidations += part.cache.invalidations;
      entries = std::max(entries, part.cache.entries);
      bytes = std::max(bytes, part.cache.bytes);
    }
    EXPECT_EQ(merged.cache.hits, hits);
    EXPECT_EQ(merged.cache.misses, misses);
    EXPECT_EQ(merged.cache.rechecks, rechecks);
    EXPECT_EQ(merged.cache.bypasses, bypasses);
    EXPECT_EQ(merged.cache.evictions, evictions);
    EXPECT_EQ(merged.cache.invalidations, invalidations);
    EXPECT_EQ(merged.cache.entries, entries);
    EXPECT_EQ(merged.cache.bytes, bytes);
    // HitRate is a fraction of cacheable lookups, finite and in [0, 1].
    EXPECT_TRUE(std::isfinite(merged.cache.HitRate()));
    EXPECT_GE(merged.cache.HitRate(), 0.0);
    EXPECT_LE(merged.cache.HitRate(), 1.0);

    // Derived rates are always finite.
    EXPECT_TRUE(std::isfinite(merged.QueriesPerSec()));
    EXPECT_TRUE(std::isfinite(merged.AvgQueryMs()));
    EXPECT_TRUE(std::isfinite(merged.PhaseFraction(&QueryStats::filter_ms)));
    EXPECT_TRUE(std::isfinite(merged.PhaseFraction(&QueryStats::verify_ms)));
  }
}

TEST(EngineStatsTest, MergeKeepsStageOrderOfFirstAppearance) {
  EngineStats a;
  a.verifier_stages.push_back({"RS", 1.0, 1});
  a.verifier_stages.push_back({"L-SR", 2.0, 2});
  EngineStats b;
  b.verifier_stages.push_back({"U-SR", 3.0, 3});
  b.verifier_stages.push_back({"RS", 4.0, 4});

  EngineStats merged = MergeEngineStats({a, b});
  ASSERT_EQ(merged.verifier_stages.size(), 3u);
  EXPECT_EQ(merged.verifier_stages[0].name, "RS");
  EXPECT_EQ(merged.verifier_stages[0].ms, 5.0);
  EXPECT_EQ(merged.verifier_stages[0].runs, 5u);
  EXPECT_EQ(merged.verifier_stages[1].name, "L-SR");
  EXPECT_EQ(merged.verifier_stages[2].name, "U-SR");
}

TEST(EngineStatsTest, EmptyMergeAndEmptyBatchRatesAreFiniteZeros) {
  EngineStats merged = MergeEngineStats({});
  EXPECT_EQ(merged.queries, 0u);
  EXPECT_EQ(merged.wall_ms, 0.0);
  EXPECT_TRUE(merged.verifier_stages.empty());
  EXPECT_EQ(merged.QueriesPerSec(), 0.0);
  EXPECT_EQ(merged.AvgQueryMs(), 0.0);
  EXPECT_EQ(merged.PhaseFraction(&QueryStats::refine_ms), 0.0);
  EXPECT_TRUE(std::isfinite(merged.QueriesPerSec()));

  // Merging only empty parts behaves the same.
  EngineStats still_empty = MergeEngineStats({EngineStats{}, EngineStats{}});
  EXPECT_EQ(still_empty.queries, 0u);
  EXPECT_TRUE(std::isfinite(still_empty.PhaseFraction(&QueryStats::init_ms)));
}

TEST(EngineStatsTest, AccumulateBatchResultMatchesManualFold) {
  // AccumulateBatchResult is the per-query fold both engines use; check it
  // against QueryStats::AccumulateInto plus a stage walk.
  QueryStats qs;
  qs.filter_ms = 0.5;
  qs.verify_ms = 1.5;
  qs.total_ms = 2.0;
  qs.candidates = 7;
  qs.finished_after_verification = true;
  qs.verification.stages.push_back({"RS", 0.25, 0, 0, 0});
  qs.verification.stages.push_back({"L-SR", 0.75, 0, 0, 0});

  EngineStats agg;
  AccumulateBatchResult(qs, &agg);
  AccumulateBatchResult(qs, &agg);
  EXPECT_EQ(agg.queries, 2u);
  EXPECT_EQ(agg.totals.filter_ms, 1.0);
  EXPECT_EQ(agg.totals.candidates, 14u);
  EXPECT_EQ(agg.totals.queries_finished_after_verify, 2u);
  ASSERT_EQ(agg.verifier_stages.size(), 2u);
  EXPECT_EQ(agg.verifier_stages[0].name, "RS");
  EXPECT_EQ(agg.verifier_stages[0].ms, 0.5);
  EXPECT_EQ(agg.verifier_stages[0].runs, 2u);
  // Results that were served from a cache count as hits in the fold.
  EXPECT_EQ(agg.cache.hits, 0u);
  qs.served_from_cache = true;
  AccumulateBatchResult(qs, &agg);
  AccumulateBatchResult(qs, &agg);
  EXPECT_EQ(agg.cache.hits, 2u);
  EXPECT_EQ(agg.queries, 4u);
}

// CacheStats::HitRate edge cases: no lookups at all (only bypasses) keeps
// the rate a finite zero; rechecks count as non-hit lookups.
TEST(EngineStatsTest, CacheHitRateEdgeCases) {
  CacheStats none;
  none.bypasses = 12;
  EXPECT_EQ(none.HitRate(), 0.0);

  CacheStats some;
  some.hits = 3;
  some.misses = 1;
  some.rechecks = 2;
  EXPECT_DOUBLE_EQ(some.HitRate(), 0.5);

  CacheStats all;
  all.hits = 7;
  EXPECT_DOUBLE_EQ(all.HitRate(), 1.0);
}

// End-to-end merge over REAL engine aggregates: two mixed-kind variant
// batches (point / min / max / k-NN / candidates payloads) run on a live
// engine, and MergeEngineStats over their per-batch aggregates must sum
// query counts and phase totals exactly while keeping derived rates
// finite.
TEST(EngineStatsTest, MergeOverMixedKindVariantBatchesSumsExactly) {
  Dataset data = datagen::MakeUniformScatter(200, 250.0, 2.0, /*seed=*/3);
  QueryEngine engine(data, EngineOptions{2});
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;

  auto mixed_batch = [&](double q) {
    std::vector<QueryRequest> batch;
    batch.push_back(PointQuery{q, opt});
    batch.push_back(MinQuery{opt});
    batch.push_back(MaxQuery{opt});
    batch.push_back(KnnQuery{q, 3, opt});
    FilterResult filtered = engine.executor().Filter(q);
    batch.push_back(CandidatesQuery(
        CandidateSet::Build1D(data, filtered.candidates, q), opt));
    return batch;
  };

  EngineStats first, second;
  engine.ExecuteBatch(mixed_batch(60.0), &first);
  engine.ExecuteBatch(mixed_batch(180.0), &second);
  ASSERT_EQ(first.queries, 5u);
  ASSERT_EQ(second.queries, 5u);
  // Every kind contributed candidates, so the totals are non-trivial.
  EXPECT_GT(first.totals.candidates, 0u);

  EngineStats merged = MergeEngineStats({first, second});
  EXPECT_EQ(merged.queries, 10u);
  EXPECT_EQ(merged.threads, 2u);
  EXPECT_EQ(merged.wall_ms, std::max(first.wall_ms, second.wall_ms));
  EXPECT_EQ(merged.totals.candidates,
            first.totals.candidates + second.totals.candidates);
  EXPECT_EQ(merged.totals.filter_ms,
            first.totals.filter_ms + second.totals.filter_ms);
  EXPECT_EQ(merged.totals.total_ms,
            first.totals.total_ms + second.totals.total_ms);
  // The VR chain ran in both batches; stage totals merged by name.
  ASSERT_FALSE(merged.verifier_stages.empty());
  EXPECT_EQ(merged.verifier_stages[0].name, "RS");
  EXPECT_EQ(merged.verifier_stages[0].runs,
            first.verifier_stages[0].runs + second.verifier_stages[0].runs);
  EXPECT_TRUE(std::isfinite(merged.QueriesPerSec()));
  EXPECT_TRUE(std::isfinite(merged.AvgQueryMs()));
}

}  // namespace
}  // namespace pverify
