// The chaos suite: the serving path under byte-level fault injection.
//
// Contract under test (the robustness tentpole): with delays, corruption,
// truncation and severed connections injected into every socket transfer,
// the client/server pair must never hang, never crash and never return a
// wrong answer — every completed response is bit-identical to local
// execution and every failure is a clean typed error. The RetryingClient
// is the recovery mechanism, so this is also its integration test.
//
// Plus deterministic single-fault scenarios (ForceOnce) and unit tests for
// the PVERIFY_FAULTS spec parser and the backoff schedule.
#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "differential_testutil.h"
#include "engine/query_engine.h"
#include "net/client.h"
#include "net/fault.h"
#include "net/retry.h"
#include "net/server.h"

namespace pverify {
namespace {

using Clock = std::chrono::steady_clock;

constexpr char kLoopback[] = "127.0.0.1";

/// Guard that guarantees the process-global injector is off again when a
/// test exits, even on assertion failure.
struct FaultScope {
  explicit FaultScope(const net::FaultConfig& config) {
    net::FaultInjector::Global().Configure(config);
  }
  ~FaultScope() { net::FaultInjector::Global().Disable(); }
};

QueryOptions TestOptions() {
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;
  return opt;
}

TEST(FaultSpecTest, ParsesDisabledAndDefaultForms) {
  EXPECT_FALSE(net::FaultInjector::ParseSpec("").enabled);
  EXPECT_FALSE(net::FaultInjector::ParseSpec("0").enabled);
  EXPECT_FALSE(net::FaultInjector::ParseSpec("off").enabled);

  net::FaultConfig mild = net::FaultInjector::ParseSpec("1");
  EXPECT_TRUE(mild.enabled);
  EXPECT_GT(mild.delay_p, 0.0);
  EXPECT_GT(mild.corrupt_p, 0.0);
  EXPECT_TRUE(net::FaultInjector::ParseSpec("on").enabled);
}

TEST(FaultSpecTest, ParsesKeyValueSpec) {
  net::FaultConfig config = net::FaultInjector::ParseSpec(
      "seed=42,delay_p=0.25,delay_ms=3,corrupt_p=0.5,truncate_p=0.125,"
      "sever_p=0.0625");
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.seed, 42u);
  EXPECT_DOUBLE_EQ(config.delay_p, 0.25);
  EXPECT_EQ(config.delay_ms, 3u);
  EXPECT_DOUBLE_EQ(config.corrupt_p, 0.5);
  EXPECT_DOUBLE_EQ(config.truncate_p, 0.125);
  EXPECT_DOUBLE_EQ(config.sever_p, 0.0625);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW(net::FaultInjector::ParseSpec("bogus_key=1"),
               std::invalid_argument);
  EXPECT_THROW(net::FaultInjector::ParseSpec("corrupt_p=1.5"),
               std::invalid_argument);
  EXPECT_THROW(net::FaultInjector::ParseSpec("delay_p=-0.1"),
               std::invalid_argument);
  EXPECT_THROW(net::FaultInjector::ParseSpec("seed="),
               std::invalid_argument);
}

TEST(RetryBackoffTest, DeterministicExponentialWithCappedJitter) {
  net::RetryPolicy policy;
  policy.initial_backoff_ms = 10;
  policy.max_backoff_ms = 100;
  policy.multiplier = 2.0;
  policy.jitter_seed = 7;

  // First attempt never waits; retries wait base × U[0.5, 1.0).
  EXPECT_EQ(net::RetryBackoffMs(policy, 1), 0u);
  for (int attempt = 2; attempt <= 10; ++attempt) {
    double base = 10.0;
    for (int k = 2; k < attempt; ++k) base *= 2.0;
    base = std::min(base, 100.0);
    uint32_t ms = net::RetryBackoffMs(policy, attempt);
    EXPECT_GE(ms, static_cast<uint32_t>(base * 0.5)) << attempt;
    EXPECT_LT(ms, static_cast<uint32_t>(base) + 1) << attempt;
    // Deterministic: same (policy, attempt) → same schedule.
    EXPECT_EQ(ms, net::RetryBackoffMs(policy, attempt)) << attempt;
  }

  // Different seeds desynchronize the schedules somewhere.
  net::RetryPolicy other = policy;
  other.jitter_seed = 8;
  bool differs = false;
  for (int attempt = 2; attempt <= 10; ++attempt) {
    differs |= net::RetryBackoffMs(policy, attempt) !=
               net::RetryBackoffMs(other, attempt);
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosTest, CorruptedFrameIsDetectedNeverMisdecoded) {
  Dataset data = datagen::MakeUniformScatter(200, 1000.0);
  QueryEngine engine(data, EngineOptions{});
  net::Server server(engine);
  server.Start();

  net::ClientOptions copt;
  copt.recv_timeout_ms = 2000;
  {
    net::Client client = net::Client::Connect(kLoopback, server.port(), copt);
    // Flip one byte of the next write — the request frame. The server's
    // checksum rejects it as a typed protocol error (or the teardown races
    // into a connection error); it can never decode into a wrong answer.
    net::FaultInjector::Global().ForceOnce(net::FaultKind::kCorrupt, 10);
    try {
      uint64_t id = client.Send(QueryRequest(PointQuery{100.0,
                                                        TestOptions()}));
      net::ServeResponse response = client.Await(id);
      EXPECT_FALSE(response.ok);
      EXPECT_EQ(response.code, net::ErrorCode::kProtocol);
    } catch (const net::WireError&) {
      // equally clean: the connection died before the error frame landed
    }
  }
  net::FaultInjector::Global().Disable();

  // The server survived and serves fresh connections correctly.
  net::Client again = net::Client::Connect(kLoopback, server.port(), copt);
  uint64_t id = again.Send(QueryRequest(PointQuery{100.0, TestOptions()}));
  net::ServeResponse response = again.Await(id);
  EXPECT_TRUE(response.ok);
  server.Stop();
}

TEST(ChaosTest, SeveredConnectionIsACleanTypedFailure) {
  Dataset data = datagen::MakeUniformScatter(200, 1000.0);
  QueryEngine engine(data, EngineOptions{});
  net::Server server(engine);
  server.Start();

  net::ClientOptions copt;
  copt.recv_timeout_ms = 2000;
  net::Client client = net::Client::Connect(kLoopback, server.port(), copt);
  net::FaultInjector::Global().ForceOnce(net::FaultKind::kSever);
  try {
    uint64_t id = client.Send(QueryRequest(PointQuery{100.0, TestOptions()}));
    client.Await(id);  // if the send survived, the read must fail cleanly
    FAIL() << "a severed connection cannot produce an answer";
  } catch (const net::WireError&) {
    // the clean typed failure the contract demands
  }
  net::FaultInjector::Global().Disable();
  server.Stop();
}

// The main event: a differential batch through a faulty network. Every
// request retries until it completes; every completed answer must be
// bit-identical (max_ulps = 0) to local execution.
TEST(ChaosTest, DifferentialStreamSurvivesInjectedFaults) {
  Dataset data = datagen::MakeUniformScatter(300, 1000.0);
  QueryEngine local(data, EngineOptions{});
  QueryEngine served(std::move(data), EngineOptions{});
  net::Server server(served);
  server.Start();

  const QueryOptions opt = TestOptions();
  const std::vector<double> points =
      datagen::MakeQueryPoints(5, 0.0, 1000.0, /*seed=*/23);
  std::vector<testutil::RequestFactory> stream =
      testutil::MakeMixedKindStream(points, opt, /*seed=*/29);

  // Ground truth first (local execution never touches a socket).
  std::vector<QueryResult> expected;
  expected.reserve(stream.size());
  for (const testutil::RequestFactory& make : stream) {
    expected.push_back(local.Execute(make()));
  }

  net::FaultConfig faults;
  faults.enabled = true;
  faults.seed = 2024;
  faults.delay_p = 0.05;
  faults.delay_ms = 2;
  faults.corrupt_p = 0.02;
  faults.truncate_p = 0.02;
  faults.sever_p = 0.01;
  FaultScope scope(faults);

  net::ClientOptions copt;
  copt.recv_timeout_ms = 3000;
  net::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ms = 2;
  policy.max_backoff_ms = 50;
  net::RetryingClient client(kLoopback, server.port(), copt, policy);

  std::vector<bool> done(stream.size(), false);
  size_t completed = 0;
  const Clock::time_point give_up = Clock::now() + std::chrono::seconds(60);
  while (completed < stream.size() && Clock::now() < give_up) {
    std::vector<size_t> pending_idx;
    std::vector<QueryRequest> pending;
    for (size_t i = 0; i < stream.size(); ++i) {
      if (done[i]) continue;
      pending_idx.push_back(i);
      pending.push_back(stream[i]());
    }
    std::vector<net::ServeResponse> responses =
        client.Call(pending, /*deadline_ms=*/2000);
    ASSERT_EQ(responses.size(), pending.size());
    for (size_t k = 0; k < responses.size(); ++k) {
      const size_t i = pending_idx[k];
      net::ServeResponse& r = responses[k];
      if (r.ok) {
        testutil::ExpectEquivalentResult(
            expected[i], r.result, /*max_ulps=*/0,
            "chaos request " + std::to_string(i));
        done[i] = true;
        ++completed;
      } else {
        // Not done yet — but the failure must be typed, never silent.
        EXPECT_FALSE(r.error.empty()) << "request " << i;
      }
    }
  }
  EXPECT_EQ(completed, stream.size())
      << "requests still failing after 60 s of retries";

  const net::ClientStats& stats = client.stats();
  EXPECT_GE(stats.send_attempts, stream.size());

  net::FaultInjector::Global().Disable();
  server.Stop();
}

}  // namespace
}  // namespace pverify
