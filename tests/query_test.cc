#include "core/query.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/synthetic.h"

namespace pverify {
namespace {

Dataset SmallWorld() {
  Dataset data;
  data.emplace_back(10, MakeUniformPdf(0.0, 2.0));
  data.emplace_back(11, MakeUniformPdf(1.0, 3.0));
  data.emplace_back(12, MakeUniformPdf(2.5, 4.0));
  data.emplace_back(13, MakeUniformPdf(8.0, 9.0));
  return data;
}

TEST(QueryTest, StrategiesAgreeOnClearAnswers) {
  Dataset data = datagen::MakeUniformScatter(400, 200.0, 2.0, 3);
  CpnnExecutor exec(data);
  Rng rng(5);
  for (int t = 0; t < 10; ++t) {
    double q = rng.Uniform(0.0, 200.0);
    QueryOptions opt;
    opt.params = {0.3, 0.0};  // zero tolerance → identical answer sets
    opt.strategy = Strategy::kBasic;
    auto basic = exec.Execute(q, opt);
    opt.strategy = Strategy::kRefine;
    auto refine = exec.Execute(q, opt);
    opt.strategy = Strategy::kVR;
    auto vr = exec.Execute(q, opt);
    EXPECT_EQ(basic.ids, refine.ids) << "q=" << q;
    EXPECT_EQ(basic.ids, vr.ids) << "q=" << q;
  }
}

TEST(QueryTest, ToleranceOnlyAdmitsBorderline) {
  Dataset data = datagen::MakeUniformScatter(400, 200.0, 2.0, 7);
  CpnnExecutor exec(data);
  Rng rng(9);
  for (int t = 0; t < 10; ++t) {
    double q = rng.Uniform(0.0, 200.0);
    QueryOptions strict;
    strict.params = {0.3, 0.0};
    strict.strategy = Strategy::kBasic;
    auto exact = exec.Execute(q, strict);

    QueryOptions loose;
    loose.params = {0.3, 0.05};
    loose.strategy = Strategy::kVR;
    auto vr = exec.Execute(q, loose);

    // VR with tolerance must return a superset of the strict answers...
    std::set<ObjectId> vr_set(vr.ids.begin(), vr.ids.end());
    for (ObjectId id : exact.ids) {
      EXPECT_TRUE(vr_set.count(id)) << "q=" << q << " id=" << id;
    }
    // ...and only add objects with probability >= P − Δ.
    QueryOptions relaxed;
    relaxed.params = {0.25, 0.0};  // P − Δ
    relaxed.strategy = Strategy::kBasic;
    auto relaxed_ans = exec.Execute(q, relaxed);
    std::set<ObjectId> relaxed_set(relaxed_ans.ids.begin(),
                                   relaxed_ans.ids.end());
    for (ObjectId id : vr.ids) {
      EXPECT_TRUE(relaxed_set.count(id)) << "q=" << q << " id=" << id;
    }
  }
}

TEST(QueryTest, IntroExampleThresholding) {
  // Mirror of the paper's Fig. 2 idea: with P between the best and
  // second-best probability, only the best object comes back.
  Dataset data = SmallWorld();
  CpnnExecutor exec(data);
  const double q = 1.2;  // asymmetric position → unique most-likely NN
  auto probs = exec.ComputePnn(q);
  std::vector<double> sorted;
  for (const auto& [id, p] : probs) sorted.push_back(p);
  std::sort(sorted.rbegin(), sorted.rend());
  ASSERT_GE(sorted.size(), 2u);
  ASSERT_GT(sorted[0], sorted[1] + 1e-6);
  auto best = std::max_element(
      probs.begin(), probs.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  QueryOptions opt;
  opt.params = {0.5 * (sorted[0] + sorted[1]), 0.0};
  opt.strategy = Strategy::kVR;
  auto ans = exec.Execute(q, opt);
  ASSERT_EQ(ans.ids.size(), 1u);
  EXPECT_EQ(ans.ids[0], best->first);
}

TEST(QueryTest, PnnProbabilitiesSumToOne) {
  Dataset data = SmallWorld();
  CpnnExecutor exec(data);
  for (double q : {0.0, 1.0, 2.0, 5.0, 8.5, 20.0}) {
    auto probs = exec.ComputePnn(q);
    double sum = 0.0;
    for (const auto& [id, p] : probs) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-6) << "q=" << q;
  }
}

TEST(QueryTest, ReportProbabilitiesCarriesBounds) {
  Dataset data = SmallWorld();
  CpnnExecutor exec(data);
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;
  opt.report_probabilities = true;
  auto ans = exec.Execute(1.5, opt);
  EXPECT_FALSE(ans.candidate_probabilities.empty());
  for (const AnswerEntry& e : ans.candidate_probabilities) {
    EXPECT_GE(e.bound.lower, -1e-12);
    EXPECT_LE(e.bound.upper, 1.0 + 1e-12);
    EXPECT_LE(e.bound.lower, e.bound.upper + 1e-12);
  }
}

TEST(QueryTest, StatsPhasesArePopulated) {
  Dataset data = datagen::MakeUniformScatter(2000, 1000.0, 2.0, 13);
  CpnnExecutor exec(data);
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;
  auto ans = exec.Execute(500.0, opt);
  EXPECT_EQ(ans.stats.dataset_size, 2000u);
  EXPECT_GT(ans.stats.candidates, 0u);
  EXPECT_GT(ans.stats.num_subregions, 0u);
  EXPECT_GE(ans.stats.total_ms, 0.0);
  EXPECT_FALSE(ans.stats.verification.stages.empty());
}

TEST(QueryTest, MonteCarloStrategyApproximatesBasic) {
  Dataset data = SmallWorld();
  CpnnExecutor exec(data);
  QueryOptions mc;
  mc.params = {0.3, 0.0};
  mc.strategy = Strategy::kMonteCarlo;
  mc.monte_carlo.samples = 50000;
  auto ans_mc = exec.Execute(1.5, mc);
  QueryOptions basic = mc;
  basic.strategy = Strategy::kBasic;
  auto ans_basic = exec.Execute(1.5, basic);
  EXPECT_EQ(ans_mc.ids, ans_basic.ids);
}

TEST(QueryTest, EmptyCandidateRegionsStillAnswer) {
  Dataset data;
  data.emplace_back(0, MakeUniformPdf(100.0, 101.0));
  CpnnExecutor exec(data);
  QueryOptions opt;
  opt.params = {0.9, 0.0};
  auto ans = exec.Execute(0.0, opt);
  ASSERT_EQ(ans.ids.size(), 1u);  // lone object is certain NN
  EXPECT_EQ(ans.ids[0], 0);
}

TEST(QueryTest, ThresholdOneReturnsOnlyCertainObject) {
  Dataset data = SmallWorld();
  CpnnExecutor exec(data);
  QueryOptions opt;
  opt.params = {1.0, 0.0};
  opt.strategy = Strategy::kVR;
  // q = 8.5 is inside object 13 and far from the rest → p = 1.
  auto ans = exec.Execute(8.5, opt);
  ASSERT_EQ(ans.ids.size(), 1u);
  EXPECT_EQ(ans.ids[0], 13);
  // q = 1.5 has no certain winner.
  auto none = exec.Execute(1.5, opt);
  EXPECT_TRUE(none.ids.empty());
}

TEST(QueryTest, KnnExecutorPath) {
  Dataset data = SmallWorld();
  CpnnExecutor exec(data);
  CknnAnswer knn = exec.ExecuteKnn(1.5, 2, {0.5, 0.0});
  // Objects 10 and 11 hug the query; both should be near-certain top-2.
  std::set<ObjectId> got(knn.ids.begin(), knn.ids.end());
  EXPECT_TRUE(got.count(10));
  EXPECT_TRUE(got.count(11));
  EXPECT_FALSE(got.count(13));
}

TEST(QueryTest, KnnKeepsObjectsPrunedByPnnFilter) {
  // Object B would be pruned by 1-NN filtering but matters for k = 2.
  Dataset data;
  data.emplace_back(0, MakeUniformPdf(0.0, 1.0));   // far point 1
  data.emplace_back(1, MakeUniformPdf(2.0, 3.0));   // near 2 > fmin 1
  CpnnExecutor exec(data);
  CknnAnswer knn = exec.ExecuteKnn(0.0, 2, {0.9, 0.0});
  EXPECT_EQ(knn.ids.size(), 2u);
}

TEST(QueryTest, MinimumQueryFindsLowObjects) {
  Dataset data = SmallWorld();
  CpnnExecutor exec(data);
  QueryOptions opt;
  opt.params = {0.3, 0.0};
  opt.strategy = Strategy::kVR;
  QueryAnswer ans = exec.ExecuteMin(opt);
  // Object 10 ([0,2]) dominates the minimum; object 13 ([8,9]) never can.
  ASSERT_FALSE(ans.ids.empty());
  EXPECT_EQ(ans.ids[0], 10);
  for (ObjectId id : ans.ids) EXPECT_NE(id, 13);
}

TEST(QueryTest, MaximumQueryFindsHighObjects) {
  Dataset data = SmallWorld();
  CpnnExecutor exec(data);
  QueryOptions opt;
  opt.params = {0.5, 0.0};
  opt.strategy = Strategy::kVR;
  QueryAnswer ans = exec.ExecuteMax(opt);
  // Object 13 ([8,9]) is certainly the maximum.
  ASSERT_EQ(ans.ids.size(), 1u);
  EXPECT_EQ(ans.ids[0], 13);
}

TEST(QueryTest, MinQueryMatchesBruteForceOrderStatistics) {
  // P(X_i is minimum) via Monte-Carlo over the raw value pdfs.
  Dataset data;
  data.emplace_back(0, MakeUniformPdf(0.0, 3.0));
  data.emplace_back(1, MakeUniformPdf(1.0, 4.0));
  data.emplace_back(2, MakeUniformPdf(2.0, 5.0));
  CpnnExecutor exec(data);
  auto probs = exec.ComputePnn(-1.0);  // below every region
  Rng rng(61);
  std::vector<int> wins(3, 0);
  const int kSamples = 100000;
  for (int s = 0; s < kSamples; ++s) {
    double best = 1e18;
    size_t arg = 0;
    for (size_t i = 0; i < 3; ++i) {
      double v = data[i].pdf().Quantile(rng.Uniform(0.0, 1.0));
      if (v < best) {
        best = v;
        arg = i;
      }
    }
    ++wins[arg];
  }
  for (const auto& [id, p] : probs) {
    double mc = static_cast<double>(wins[static_cast<size_t>(id)]) /
                kSamples;
    EXPECT_NEAR(p, mc, 0.01) << "id=" << id;
  }
}

TEST(QueryTest, StrategyNames) {
  EXPECT_EQ(ToString(Strategy::kBasic), "Basic");
  EXPECT_EQ(ToString(Strategy::kRefine), "Refine");
  EXPECT_EQ(ToString(Strategy::kVR), "VR");
  EXPECT_EQ(ToString(Strategy::kMonteCarlo), "MonteCarlo");
}

TEST(QueryTest, InvalidParamsRejected) {
  Dataset data = SmallWorld();
  CpnnExecutor exec(data);
  QueryOptions opt;
  opt.params = {0.0, 0.0};
  EXPECT_THROW(exec.Execute(1.0, opt), std::logic_error);
}

}  // namespace
}  // namespace pverify
