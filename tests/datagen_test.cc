#include "datagen/synthetic.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "datagen/workload.h"

namespace pverify {
namespace {

TEST(SyntheticTest, RespectsCountAndDomain) {
  datagen::SyntheticConfig config;
  config.count = 1234;
  config.domain_lo = 10.0;
  config.domain_hi = 500.0;
  Dataset data = datagen::MakeSynthetic(config);
  ASSERT_EQ(data.size(), 1234u);
  for (const UncertainObject& obj : data) {
    EXPECT_GE(obj.lo(), 10.0);
    EXPECT_LE(obj.hi(), 500.0);
    EXPECT_LT(obj.lo(), obj.hi());
  }
}

TEST(SyntheticTest, IdsAreSequential) {
  Dataset data = datagen::MakeUniformScatter(100);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i].id(), static_cast<ObjectId>(i));
  }
}

TEST(SyntheticTest, DeterministicPerSeed) {
  datagen::SyntheticConfig config;
  config.count = 50;
  config.seed = 99;
  Dataset a = datagen::MakeSynthetic(config);
  Dataset b = datagen::MakeSynthetic(config);
  config.seed = 100;
  Dataset c = datagen::MakeSynthetic(config);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal = true;
  bool differs_from_c = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].lo() != b[i].lo() || a[i].hi() != b[i].hi()) all_equal = false;
    if (a[i].lo() != c[i].lo()) differs_from_c = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(differs_from_c);
}

TEST(SyntheticTest, PdfKindsApplied) {
  datagen::SyntheticConfig config;
  config.count = 10;
  config.pdf = datagen::PdfKind::kGaussian;
  config.gaussian_bars = 300;
  Dataset data = datagen::MakeSynthetic(config);
  for (const UncertainObject& obj : data) {
    EXPECT_EQ(obj.pdf().name(), "gaussian");
    EXPECT_EQ(obj.pdf().num_bars(), 300u);
  }
  config.pdf = datagen::PdfKind::kUniform;
  data = datagen::MakeSynthetic(config);
  for (const UncertainObject& obj : data) {
    EXPECT_EQ(obj.pdf().name(), "uniform");
  }
  config.pdf = datagen::PdfKind::kMixed;
  data = datagen::MakeSynthetic(config);
  EXPECT_EQ(data[0].pdf().name(), "uniform");
  EXPECT_EQ(data[1].pdf().name(), "gaussian");
  EXPECT_EQ(data[2].pdf().name(), "triangular");
}

TEST(SyntheticTest, LongBeachLikeDefaults) {
  Dataset data = datagen::MakeLongBeachLike();
  EXPECT_EQ(data.size(), 53144u);  // paper §V-A cardinality
  double max_hi = 0.0;
  for (const UncertainObject& obj : data) max_hi = std::max(max_hi, obj.hi());
  EXPECT_LE(max_hi, 10000.0);
}

TEST(SyntheticTest, AverageCandidateSetNearPaper) {
  // The paper reports ~96 candidates on average after filtering. Our
  // synthetic stand-in should be in the same regime (tens to ~200).
  Dataset data = datagen::MakeLongBeachLike();
  CpnnExecutor exec(data);
  auto queries = datagen::MakeQueryPoints(30, 0.0, 10000.0, 55);
  double total = 0.0;
  for (double q : queries) total += exec.Filter(q).candidates.size();
  double avg = total / queries.size();
  EXPECT_GE(avg, 20.0);
  EXPECT_LE(avg, 300.0);
}

TEST(Synthetic2DTest, RegionsInsideDomain) {
  datagen::Synthetic2DConfig config;
  config.count = 300;
  Dataset2D data = datagen::MakeSynthetic2D(config);
  ASSERT_EQ(data.size(), 300u);
  size_t circles = 0;
  for (const UncertainObject2D& obj : data) {
    EXPECT_GT(obj.Area(), 0.0);
    if (!obj.is_rect()) ++circles;
  }
  EXPECT_GT(circles, 50u);
  EXPECT_LT(circles, 250u);
}

TEST(Synthetic2DClusteredTest, ObjectsConcentrateAroundDiagonalCenters) {
  datagen::Synthetic2DClusteredConfig config;
  config.count = 400;
  config.domain = 10000.0;
  config.num_clusters = 4;
  config.cluster_stddev = 150.0;
  Dataset2D data = datagen::MakeSynthetic2DClustered(config);
  ASSERT_EQ(data.size(), 400u);

  // Default centers sit at domain*(i+0.5)/4 on the diagonal. Every object
  // must lie within a few stddevs of SOME center (clamped to the domain),
  // i.e. the scatter is genuinely clustered, not uniform.
  const double centers[] = {1250.0, 3750.0, 6250.0, 8750.0};
  size_t ids = 0;
  for (const UncertainObject2D& obj : data) {
    EXPECT_EQ(obj.id(), static_cast<ObjectId>(ids++));
    EXPECT_GT(obj.Area(), 0.0);
    double best = 1e18;
    for (double c : centers) {
      best = std::min(best, obj.MinDist({c, c}));
    }
    // 6 stddevs of center noise plus the largest extent.
    EXPECT_LT(best, 6.0 * config.cluster_stddev + config.max_extent)
        << "object " << obj.id() << " is not near any cluster";
  }

  // Deterministic per seed, different across seeds.
  Dataset2D again = datagen::MakeSynthetic2DClustered(config);
  ASSERT_EQ(again.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i].MinDist({0.0, 0.0}), again[i].MinDist({0.0, 0.0}));
  }
  config.seed += 1;
  Dataset2D other = datagen::MakeSynthetic2DClustered(config);
  bool all_equal = true;
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i].MinDist({0.0, 0.0}) != other[i].MinDist({0.0, 0.0})) {
      all_equal = false;
      break;
    }
  }
  EXPECT_FALSE(all_equal);

  // Explicit centers are honored.
  datagen::Synthetic2DClusteredConfig pinned = config;
  pinned.centers = {{100.0, 9000.0}};
  pinned.cluster_stddev = 10.0;
  Dataset2D one_cluster = datagen::MakeSynthetic2DClustered(pinned);
  for (const UncertainObject2D& obj : one_cluster) {
    EXPECT_LT(obj.MinDist({100.0, 9000.0}),
              6.0 * pinned.cluster_stddev + pinned.max_extent);
  }
}

TEST(WorkloadTest, QueryPointsInRange) {
  auto pts = datagen::MakeQueryPoints(500, 3.0, 7.0, 1);
  ASSERT_EQ(pts.size(), 500u);
  for (double p : pts) {
    EXPECT_GE(p, 3.0);
    EXPECT_LT(p, 7.0);
  }
}

TEST(WorkloadTest, RunWorkloadAggregates) {
  Dataset data = datagen::MakeUniformScatter(500, 100.0, 1.0, 2);
  CpnnExecutor exec(data);
  auto queries = datagen::MakeQueryPoints(10, 0.0, 100.0, 3);
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;
  datagen::WorkloadResult result = datagen::RunWorkload(exec, queries, opt);
  EXPECT_EQ(result.queries, 10u);
  EXPECT_GT(result.AvgCandidates(), 0.0);
  EXPECT_GE(result.AvgTotalMs(), 0.0);
  EXPECT_GE(result.FractionFinishedAfterVerify(), 0.0);
  EXPECT_LE(result.FractionFinishedAfterVerify(), 1.0);
}

}  // namespace
}  // namespace pverify
