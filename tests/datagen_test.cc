#include "datagen/synthetic.h"

#include <gtest/gtest.h>

#include "datagen/workload.h"

namespace pverify {
namespace {

TEST(SyntheticTest, RespectsCountAndDomain) {
  datagen::SyntheticConfig config;
  config.count = 1234;
  config.domain_lo = 10.0;
  config.domain_hi = 500.0;
  Dataset data = datagen::MakeSynthetic(config);
  ASSERT_EQ(data.size(), 1234u);
  for (const UncertainObject& obj : data) {
    EXPECT_GE(obj.lo(), 10.0);
    EXPECT_LE(obj.hi(), 500.0);
    EXPECT_LT(obj.lo(), obj.hi());
  }
}

TEST(SyntheticTest, IdsAreSequential) {
  Dataset data = datagen::MakeUniformScatter(100);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i].id(), static_cast<ObjectId>(i));
  }
}

TEST(SyntheticTest, DeterministicPerSeed) {
  datagen::SyntheticConfig config;
  config.count = 50;
  config.seed = 99;
  Dataset a = datagen::MakeSynthetic(config);
  Dataset b = datagen::MakeSynthetic(config);
  config.seed = 100;
  Dataset c = datagen::MakeSynthetic(config);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal = true;
  bool differs_from_c = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].lo() != b[i].lo() || a[i].hi() != b[i].hi()) all_equal = false;
    if (a[i].lo() != c[i].lo()) differs_from_c = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(differs_from_c);
}

TEST(SyntheticTest, PdfKindsApplied) {
  datagen::SyntheticConfig config;
  config.count = 10;
  config.pdf = datagen::PdfKind::kGaussian;
  config.gaussian_bars = 300;
  Dataset data = datagen::MakeSynthetic(config);
  for (const UncertainObject& obj : data) {
    EXPECT_EQ(obj.pdf().name(), "gaussian");
    EXPECT_EQ(obj.pdf().num_bars(), 300u);
  }
  config.pdf = datagen::PdfKind::kUniform;
  data = datagen::MakeSynthetic(config);
  for (const UncertainObject& obj : data) {
    EXPECT_EQ(obj.pdf().name(), "uniform");
  }
  config.pdf = datagen::PdfKind::kMixed;
  data = datagen::MakeSynthetic(config);
  EXPECT_EQ(data[0].pdf().name(), "uniform");
  EXPECT_EQ(data[1].pdf().name(), "gaussian");
  EXPECT_EQ(data[2].pdf().name(), "triangular");
}

TEST(SyntheticTest, LongBeachLikeDefaults) {
  Dataset data = datagen::MakeLongBeachLike();
  EXPECT_EQ(data.size(), 53144u);  // paper §V-A cardinality
  double max_hi = 0.0;
  for (const UncertainObject& obj : data) max_hi = std::max(max_hi, obj.hi());
  EXPECT_LE(max_hi, 10000.0);
}

TEST(SyntheticTest, AverageCandidateSetNearPaper) {
  // The paper reports ~96 candidates on average after filtering. Our
  // synthetic stand-in should be in the same regime (tens to ~200).
  Dataset data = datagen::MakeLongBeachLike();
  CpnnExecutor exec(data);
  auto queries = datagen::MakeQueryPoints(30, 0.0, 10000.0, 55);
  double total = 0.0;
  for (double q : queries) total += exec.Filter(q).candidates.size();
  double avg = total / queries.size();
  EXPECT_GE(avg, 20.0);
  EXPECT_LE(avg, 300.0);
}

TEST(Synthetic2DTest, RegionsInsideDomain) {
  datagen::Synthetic2DConfig config;
  config.count = 300;
  Dataset2D data = datagen::MakeSynthetic2D(config);
  ASSERT_EQ(data.size(), 300u);
  size_t circles = 0;
  for (const UncertainObject2D& obj : data) {
    EXPECT_GT(obj.Area(), 0.0);
    if (!obj.is_rect()) ++circles;
  }
  EXPECT_GT(circles, 50u);
  EXPECT_LT(circles, 250u);
}

TEST(WorkloadTest, QueryPointsInRange) {
  auto pts = datagen::MakeQueryPoints(500, 3.0, 7.0, 1);
  ASSERT_EQ(pts.size(), 500u);
  for (double p : pts) {
    EXPECT_GE(p, 3.0);
    EXPECT_LT(p, 7.0);
  }
}

TEST(WorkloadTest, RunWorkloadAggregates) {
  Dataset data = datagen::MakeUniformScatter(500, 100.0, 1.0, 2);
  CpnnExecutor exec(data);
  auto queries = datagen::MakeQueryPoints(10, 0.0, 100.0, 3);
  QueryOptions opt;
  opt.params = {0.3, 0.01};
  opt.strategy = Strategy::kVR;
  datagen::WorkloadResult result = datagen::RunWorkload(exec, queries, opt);
  EXPECT_EQ(result.queries, 10u);
  EXPECT_GT(result.AvgCandidates(), 0.0);
  EXPECT_GE(result.AvgTotalMs(), 0.0);
  EXPECT_GE(result.FractionFinishedAfterVerify(), 0.0);
  EXPECT_LE(result.FractionFinishedAfterVerify(), 1.0);
}

}  // namespace
}  // namespace pverify
